//! # regcube — multi-dimensional regression analysis of time-series data streams
//!
//! A production-quality Rust reproduction of *Chen, Dong, Han, Wah, Wang:
//! "Multi-Dimensional Regression Analysis of Time-Series Data Streams"
//! (VLDB 2002)*: **regression cubes** that warehouse only compact ISB
//! regression measures per cell, aggregate them losslessly across both
//! standard and time dimensions, and keep stream analysis affordable with
//! a **tilt time frame**, two **critical layers** and **exception-driven
//! cubing** (m/o-cubing and popular-path cubing).
//!
//! This crate is an umbrella: it re-exports the workspace's subsystem
//! crates under stable module names and offers a [`prelude`].
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`regress`] | `regcube-regress` | time series, OLS, ISB, Theorems 3.2/3.3, folding, MLR, transforms |
//! | [`linalg`] | `regcube-linalg` | dense matrices, Cholesky/LU/QR, least squares |
//! | [`olap`] | `regcube-olap` | dimensions, hierarchies, cells, cuboid lattices, popular paths, H-tree |
//! | [`tilt`] | `regcube-tilt` | tilt time frames with lossless slot promotion |
//! | [`core`] | `regcube-core` | critical layers, exception policies, Algorithms 1 & 2, drilling |
//! | [`stream`] | `regcube-stream` | raw-record ingestion, the online engine, channel sources |
//! | [`serve`] | `regcube-serve` | multi-tenant serving: snapshot cells, backpressure, shared pools |
//! | [`datagen`] | `regcube-datagen` | `D3L3C10T100K`-style synthetic stream datasets |
//!
//! # Quickstart
//!
//! ```
//! use regcube::prelude::*;
//!
//! // Warehouse two sibling streams as ISBs and aggregate them exactly.
//! let a = TimeSeries::new(0, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
//! let b = TimeSeries::new(0, vec![2.0, 2.0, 2.0, 2.0]).unwrap();
//! let merged = regcube::regress::aggregate::merge_standard(&[
//!     Isb::fit(&a).unwrap(),
//!     Isb::fit(&b).unwrap(),
//! ]).unwrap();
//! assert!((merged.slope() - 1.0).abs() < 1e-12);
//! ```
//!
//! See `examples/` for full scenarios (power grid monitoring, network
//! traffic, sensor fields) and `DESIGN.md` / `EXPERIMENTS.md` for the
//! paper-reproduction map.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub use regcube_core as core;
pub use regcube_datagen as datagen;
pub use regcube_linalg as linalg;
pub use regcube_olap as olap;
pub use regcube_regress as regress;
pub use regcube_serve as serve;
pub use regcube_stream as stream;
pub use regcube_tilt as tilt;

/// Glue between the generator and the online pipeline: turn a generated
/// dataset into a replayable raw-record stream.
pub mod sim {
    use regcube_datagen::Dataset;
    use regcube_stream::{RawRecord, ReplaySource, StreamError};

    /// Expands a dataset's fitted streams into per-tick raw records
    /// (tick-major order) covering the dataset's window, sampling each
    /// stream's fitted line. With `ticks_per_unit` dividing the window,
    /// the records replay as `window / ticks_per_unit` full units.
    pub fn dataset_records(dataset: &Dataset) -> Vec<RawRecord> {
        let (wb, we) = dataset.window();
        let mut records = Vec::with_capacity(dataset.tuples.len() * (we - wb + 1) as usize);
        for t in wb..=we {
            for tuple in &dataset.tuples {
                records.push(RawRecord::new(tuple.ids.clone(), t, tuple.isb.predict(t)));
            }
        }
        records
    }

    /// Builds a ready-to-run replay source from a dataset.
    ///
    /// # Errors
    /// [`StreamError::BadConfig`] for a zero `ticks_per_unit`.
    pub fn dataset_source(
        dataset: &Dataset,
        ticks_per_unit: usize,
    ) -> Result<ReplaySource, StreamError> {
        ReplaySource::new(dataset_records(dataset), ticks_per_unit)
    }
}

/// The most frequently used types, re-exported flat.
pub mod prelude {
    pub use regcube_core::{
        mo_cubing, popular_path, Backend, ColumnarCubingEngine, CriticalLayers, CubeResult,
        CubingEngine, DrillFrontier, ExceptionPolicy, Frontier, MTuple, MoCubingEngine,
        PopularPathEngine, RefMode, RegressionCube, ShardedEngine, WorkerPool,
    };
    pub use regcube_datagen::{Dataset, DatasetSpec};
    pub use regcube_olap::{
        cell::CellKey, CubeSchema, CuboidSpec, Dimension, Hierarchy, Lattice, PopularPath,
    };
    pub use regcube_regress::{aggregate, fold::FoldOp, IntVal, Isb, LinearFit, TimeSeries};
    pub use regcube_serve::{ServeConfig, Server, TenantId};
    pub use regcube_stream::{
        Alarm, CubeSnapshot, EngineConfig, OnlineEngine, RawRecord, ReplaySource, WatermarkPolicy,
    };
    pub use regcube_tilt::{TiltFrame, TiltSpec};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn umbrella_reexports_compose() {
        let schema = CubeSchema::synthetic(2, 2, 2).unwrap();
        let policy = ExceptionPolicy::slope_threshold(0.5);
        let mut cube = RegressionCube::new(
            schema,
            CuboidSpec::new(vec![0, 0]),
            CuboidSpec::new(vec![2, 2]),
            policy,
        )
        .unwrap();
        let z = TimeSeries::from_fn(0, 9, |t| t as f64).unwrap();
        let tuples = vec![MTuple::new(vec![0, 0], Isb::fit(&z).unwrap())];
        cube.recompute(&tuples).unwrap();
        assert_eq!(cube.alarms().unwrap().len(), 1);
    }
}
