//! Multi-tenant serving: many independent cubes behind one server,
//! dashboards reading while the streams flow.
//!
//! Three tenants (a power utility, a CDN, an IoT sensor fleet) share
//! one `Server`. Each gets a private cube engine; all multiplex over
//! the server's two shared worker pools. A dashboard thread polls
//! every tenant's published snapshot — `DashboardSummary`, `drill_at`
//! time travel, alarm inspection — while the ingest loop keeps
//! feeding records and closing units. Readers never take an engine
//! lock: each read clones an `Arc` out of a double-buffered snapshot
//! cell.
//!
//! The example also drives one tenant into backpressure on purpose:
//! its bounded queue fills, producers get the typed
//! `ServeError::Overloaded` (never a silent drop), and the other
//! tenants keep closing units undisturbed.
//!
//! ```text
//! cargo run --example multi_tenant
//! ```

use regcube::prelude::*;
use regcube::serve::{DashboardSummary, ServeError};
use std::sync::Arc;
use std::thread;

/// Ticks per unit for every tenant in the demo.
const TPU: usize = 4;
/// Units to stream.
const UNITS: i64 = 12;

fn tenant_config(shards: usize) -> EngineConfig {
    let schema = CubeSchema::synthetic(2, 2, 3).unwrap();
    EngineConfig::new(
        schema,
        CuboidSpec::new(vec![1, 1]),
        CuboidSpec::new(vec![2, 2]),
    )
    .with_ticks_per_unit(TPU)
    .with_shards(shards)
}

/// One tenant's traffic for one tick: a few cells with
/// tenant-specific slopes, plus a late-day surge on the CDN tenant.
fn records_at(tenant: usize, tick: i64) -> Vec<RawRecord> {
    let unit = tick / TPU as i64;
    (0..6u32)
        .map(|cell| {
            let base = 1.0 + tenant as f64 + 0.1 * f64::from(cell);
            let surge = if tenant == 1 && unit >= 9 {
                3.0 * (tick % TPU as i64) as f64
            } else {
                0.0
            };
            RawRecord::new(vec![cell % 3, cell / 3], tick, base + surge)
        })
        .collect()
}

fn main() {
    let server = Arc::new(Server::new(
        ServeConfig::new()
            .with_max_tenants(16)
            .with_queue_capacity(256),
    ));
    let names = ["power-utility", "cdn-edge", "sensor-fleet"];
    for (i, name) in names.iter().enumerate() {
        server
            .create_tenant(*name, tenant_config(i % 3 + 1))
            .unwrap();
    }
    let ids: Vec<TenantId> = names.iter().map(|n| TenantId::from(*n)).collect();

    // Dashboard thread: polls summaries off published snapshots while
    // ingestion runs. No engine lock is ever taken on this thread.
    let dash_server = Arc::clone(&server);
    let dashboard = thread::spawn(move || {
        let mut polls = 0u64;
        let mut last_epochs = [0u64; 3];
        while last_epochs.iter().any(|&e| e < UNITS as u64) {
            for (i, summary) in dash_server.summaries().into_iter().enumerate() {
                assert!(summary.epoch >= last_epochs[i], "epochs must be monotone");
                last_epochs[i] = summary.epoch;
            }
            polls += 1;
            thread::yield_now();
        }
        polls
    });

    // Ingest loop: feed every tenant tick by tick, closing each unit
    // explicitly — each close publishes a fresh snapshot.
    for unit in 0..UNITS {
        for t in unit * TPU as i64..(unit + 1) * TPU as i64 {
            for (i, id) in ids.iter().enumerate() {
                for record in records_at(i, t) {
                    server.ingest(id, &record).unwrap();
                }
            }
        }
        for id in &ids {
            let pump = server.close_unit(id).unwrap();
            assert!(
                pump.errors.is_empty(),
                "demo feed is clean: {:?}",
                pump.errors
            );
        }
    }
    let polls = dashboard.join().unwrap();

    println!("== fleet overview ({polls} dashboard polls during ingest) ==");
    for summary in server.summaries() {
        print_summary(&summary);
    }

    // Time travel on the surging tenant, straight off its snapshot.
    let reader = server.reader(&ids[1]).unwrap();
    let snapshot = reader.snapshot();
    let key = CellKey::new(vec![0, 0]);
    let hits = snapshot.drill_history(&key).unwrap();
    println!(
        "\n== cdn-edge drill_history({key}) — {} slots ==",
        hits.len()
    );
    for hit in hits.iter().rev().take(4) {
        println!(
            "  {} u{}  slope={:+.3}  score={:.3}{}",
            hit.level_name,
            hit.slot_unit,
            hit.measure.slope(),
            hit.score,
            if hit.exceptional { "  EXCEPTIONAL" } else { "" }
        );
    }

    // Backpressure: saturate the sensor fleet's bounded queue without
    // pumping. Producers get a typed error; nothing accepted is lost,
    // and the other tenants keep serving.
    let victim = &ids[2];
    let mut accepted = 0u64;
    let mut rejected = 0u64;
    let flood_tick = UNITS * TPU as i64;
    loop {
        let record = RawRecord::new(vec![0, 0], flood_tick, 1.0);
        match server.ingest(victim, &record) {
            Ok(()) => accepted += 1,
            Err(ServeError::Overloaded { capacity, .. }) => {
                rejected += 1;
                if rejected == 1 {
                    println!("\n== backpressure: queue full at {capacity} records ==");
                }
                if rejected >= 5 {
                    break;
                }
            }
            Err(e) => panic!("unexpected: {e}"),
        }
    }
    // The other tenants are unaffected by the saturated one.
    let pump = server.close_unit(&ids[0]).unwrap();
    assert!(pump.errors.is_empty());

    // A well-behaved producer responds to `Overloaded` with bounded
    // retry: back off, let the pump drain the queue, try again — and
    // give up with the typed error after `MAX_ATTEMPTS`, instead of
    // spinning forever against a stuck tenant.
    let record = RawRecord::new(vec![1, 1], flood_tick, 2.0);
    match ingest_with_retry(&server, victim, &record) {
        Ok(attempts) => println!("retry producer landed after {attempts} attempt(s)"),
        Err(e) => panic!("queue drains under pumping, so retry must land: {e}"),
    }

    // Draining the victim ingests every accepted record.
    server.close_unit(victim).unwrap();
    let stats = server.tenant_stats(victim).unwrap();
    println!(
        "accepted {accepted}, rejected {rejected} (typed), \
         rejections counted: {}",
        stats.overload_rejections
    );
    // The retry producer's rejected attempts are counted too.
    assert!(stats.overload_rejections >= rejected);
}

/// Bounded retry with backoff: the recommended producer-side response
/// to [`ServeError::Overloaded`]. Each failed attempt pumps the tenant
/// (draining its queue into the engine) and sleeps exponentially
/// longer before retrying; any other error, and exhaustion, surface to
/// the caller typed.
fn ingest_with_retry(
    server: &Server,
    id: &TenantId,
    record: &RawRecord,
) -> Result<u32, ServeError> {
    const MAX_ATTEMPTS: u32 = 5;
    const BASE_BACKOFF: std::time::Duration = std::time::Duration::from_millis(1);
    let mut last = None;
    for attempt in 1..=MAX_ATTEMPTS {
        match server.ingest(id, record) {
            Ok(()) => return Ok(attempt),
            Err(e @ ServeError::Overloaded { .. }) => {
                // Help the queue drain, then back off exponentially:
                // 1ms, 2ms, 4ms, ... before the next attempt.
                server.pump_tenant(id)?;
                thread::sleep(BASE_BACKOFF * 2u32.saturating_pow(attempt - 1));
                last = Some(e);
            }
            Err(e) => return Err(e),
        }
    }
    Err(last.expect("exhaustion implies at least one rejection"))
}

fn print_summary(s: &DashboardSummary) {
    println!(
        "  {:14} epoch {:2}  unit {:?}  m-cells {:3}  exc {:3}  alarms {}{}",
        s.tenant.to_string(),
        s.epoch,
        s.unit,
        s.m_cells,
        s.exceptions,
        s.alarms,
        s.top_alarm
            .as_ref()
            .map(|(k, score)| format!("  top {k} @ {score:.2}"))
            .unwrap_or_default()
    );
}
