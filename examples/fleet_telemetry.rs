//! Fleet telemetry with out-of-order uplinks: vehicles report fuel burn
//! per minute over cellular links that batch, delay and occasionally
//! lose messages. The engine runs with watermark-based reordering
//! (`EngineConfig::with_reordering`), so:
//!
//! * uplinks displaced by up to the allowed lateness are re-sorted into
//!   their hour and produce **bit-identical** analysis to an ordered
//!   feed;
//! * uplinks for an hour that already closed **amend** the warehoused
//!   tilt frames exactly (OLS linearity — the same ISB a refit would
//!   give) and are reported as `LateAmendment`s;
//! * uplinks beyond the lateness are **counted** in `late_dropped` —
//!   never silently lost;
//! * analysts can **time-travel**: `drill_at` re-scores any cell's
//!   warehoused history at any tilt granularity, long after the cube
//!   moved on.
//!
//! ```text
//! cargo run --example fleet_telemetry
//! ```

use regcube::prelude::*;
use regcube::stream::UnitReport;

/// Minutes per hour-unit.
const TPU: usize = 60;
/// Allowed lateness in hours.
const LATENESS: i64 = 2;
/// Hours simulated (a day plus the morning after).
const HOURS: i64 = 26;

/// The sorted telemetry: per-minute fuel burn for 16 vehicles x 4
/// depots with day-scale seasonality (quiet nights, busy middays) and a
/// stuck-throttle vehicle group at depot 2 during hour 25 — the morning
/// after, once the first day's hours have been promoted into a day
/// slot.
fn telemetry() -> Vec<RawRecord> {
    let mut records = Vec::new();
    for minute in 0..HOURS * TPU as i64 {
        let hour = minute / TPU as i64;
        let day_phase = (minute % 1440) as f64 / 1440.0;
        let season = 1.0 + 0.8 * (std::f64::consts::TAU * (day_phase - 0.25)).sin();
        for vehicle in 0..16u32 {
            for depot in 0..4u32 {
                let anomaly = hour == 25 && depot == 2 && vehicle % 4 == 0;
                let burn = if anomaly {
                    4.0 + 2.5 * (minute % TPU as i64) as f64
                } else {
                    season * (1.0 + 0.1 * (vehicle % 3) as f64)
                };
                records.push(RawRecord::new(vec![vehicle, depot], minute, burn));
            }
        }
    }
    records
}

/// A deliverable feed: most uplinks jittered within the lateness, a
/// slice displaced past their hour's close (amendments), a few stuck in
/// a dead zone until the end of the day (drops).
fn uplink_feed(sorted: &[RawRecord]) -> Vec<RawRecord> {
    let span = LATENESS * TPU as i64;
    let mut keyed: Vec<(i64, usize, RawRecord)> = Vec::with_capacity(sorted.len());
    let mut dead_zone = Vec::new();
    for (i, r) in sorted.iter().enumerate() {
        if i % 5000 == 1700 && r.tick < 12 * TPU as i64 {
            // Lost until the vehicle returns to coverage at end of day.
            dead_zone.push(r.clone());
        } else if i % 701 == 0 {
            // Batched uplink flushed (LATENESS + 1) hours late: its hour
            // has closed, still amendable.
            keyed.push((r.tick + (LATENESS + 1) * TPU as i64, i, r.clone()));
        } else {
            // Normal cellular jitter, bounded under the lateness.
            keyed.push((r.tick + (i as i64 * 37) % span, i, r.clone()));
        }
    }
    keyed.sort_by_key(|(k, i, _)| (*k, *i));
    let mut feed: Vec<RawRecord> = keyed.into_iter().map(|(_, _, r)| r).collect();
    feed.extend(dead_zone);
    feed
}

fn main() {
    // vehicle: * > group(4) > vehicle(16);  site: * > region(2) > depot(4)
    let vehicle = Dimension::with_level_names(
        "vehicle",
        Hierarchy::balanced(2, 4).unwrap(),
        vec!["group".into(), "vehicle".into()],
    )
    .unwrap();
    let site = Dimension::with_level_names(
        "site",
        Hierarchy::balanced(2, 2).unwrap(),
        vec!["region".into(), "depot".into()],
    )
    .unwrap();
    let schema = CubeSchema::new(vec![vehicle, site]).unwrap();

    let mut engine = EngineConfig::new(
        schema,
        CuboidSpec::new(vec![0, 1]), // o-layer: (*, region)
        CuboidSpec::new(vec![1, 2]), // m-layer: (group, depot)
    )
    .with_primitive(CuboidSpec::new(vec![2, 2]))
    .with_policy(ExceptionPolicy::slope_threshold(2.0).with_ref_mode(RefMode::OwnSlope))
    .with_tilt(TiltSpec::new(vec![("hour", 24), ("day", 7)]).unwrap())
    .with_ticks_per_unit(TPU)
    .with_history_depth(48)
    .with_reordering(LATENESS as usize + 3, LATENESS)
    .build()
    .unwrap();

    let sorted = telemetry();
    let feed = uplink_feed(&sorted);
    println!(
        "Replaying {} out-of-order uplinks ({} vehicles x {} depots, {} hours, lateness {} h) ...\n",
        feed.len(),
        16,
        4,
        HOURS,
        LATENESS
    );

    // The watermark drives the closes: no external clock needed.
    let mut amendments = 0u64;
    let mut narrate = |watermark: i64, reports: &[UnitReport]| {
        for report in reports {
            amendments += report.late_amendments.len() as u64;
            if !report.alarms.is_empty() || !report.late_amendments.is_empty() {
                println!(
                    "hour {:>2}: {} m-cells, {} alarms, {} late amendments, {} dropped (watermark at hour {watermark})",
                    report.unit,
                    report.m_cells,
                    report.alarms.len(),
                    report.late_amendments.len(),
                    report.late_dropped,
                );
            }
            for alarm in &report.alarms {
                println!(
                    "   ALARM region cell {}: burn slope {:.2}/min (threshold {})",
                    alarm.key,
                    alarm.measure.slope(),
                    alarm.threshold
                );
            }
            for am in &report.late_amendments {
                println!("   AMEND {am}");
            }
        }
    };
    for record in &feed {
        engine.ingest(record).unwrap();
        let ready = engine.drain_ready().unwrap();
        narrate(engine.watermark_unit(), &ready);
    }
    let tail = engine.flush().unwrap();
    narrate(engine.watermark_unit(), &tail);

    println!(
        "\nStream accounting: {} hours closed, {} late amendments applied, {} uplinks beyond lateness dropped (RunStats::late_dropped = {})",
        engine.units_closed(),
        amendments,
        engine.late_dropped(),
        engine.stats().late_dropped
    );

    // ---- Time travel: was depot 2's group exceptional during hour 25? ----
    let hot_cell = CellKey::new(vec![0, 2]); // (group 0, depot 2) at the m-layer
    println!("\nTime-travel drill of m-cell {hot_cell} (hour granularity):");
    for hit in engine.drill_at(0, &hot_cell).unwrap() {
        println!(
            "  {} {:>2}: slope {:>6.2}  score {:>6.2}  {}",
            hit.level_name,
            hit.slot_unit,
            hit.measure.slope(),
            hit.score,
            if hit.exceptional { "EXCEPTIONAL" } else { "ok" }
        );
    }
    println!("Full warehoused ladder of {hot_cell} (coarsest first):");
    for hit in engine.drill_history(&hot_cell).unwrap() {
        println!(
            "  level {} ({}) slot {:>2}: interval [{}, {}], slope {:.2}",
            hit.level,
            hit.level_name,
            hit.slot_unit,
            hit.measure.interval().0,
            hit.measure.interval().1,
            hit.measure.slope()
        );
    }

    // ---- The amended frames match an ordered replay exactly ---------------
    // (The proptest suite proves bit-identity for in-lateness permutations;
    // here we just show the warehoused history is complete.)
    if let Some(frame) = engine.tilt_frame(&hot_cell) {
        println!(
            "\nTilt frame of {hot_cell}: {} slots warehoused over {} hours",
            frame.retained_slots(),
            frame.next_unit()
        );
    }
}
