//! Network-traffic monitoring with **popular-path cubing** and an
//! mpsc-channel pipeline: a producer thread replays flow records,
//! the engine closes one m-layer unit per simulated minute-of-16-ticks,
//! and the consumer inspects alarms and path cuboids.
//!
//! Dimensions: `pop` (point of presence: region > router) and `proto`
//! (class > protocol). A DDoS-like ramp hits one router's UDP traffic.
//!
//! ```text
//! cargo run --example network_monitor
//! ```

use regcube::core::result::Algorithm;
use regcube::olap::Dimension;
use regcube::prelude::*;
use regcube::stream::{run_engine, StreamEvent};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};

fn main() {
    // pop: * > region(3) > router(9); proto: * > class(2) > protocol(6).
    let pop = Dimension::with_level_names(
        "pop",
        Hierarchy::balanced(2, 3).unwrap(),
        vec!["region".into(), "router".into()],
    )
    .unwrap();
    let proto = Dimension::with_level_names(
        "proto",
        Hierarchy::balanced(2, 3).unwrap(),
        vec!["class".into(), "protocol".into()],
    )
    .unwrap();
    let schema = CubeSchema::new(vec![pop, proto]).unwrap();

    let m_layer = CuboidSpec::new(vec![2, 2]); // (router, protocol)
    let o_layer = CuboidSpec::new(vec![1, 0]); // (region, *)
    let ticks_per_unit = 16usize;

    let engine = Arc::new(Mutex::new(
        regcube::stream::online::EngineConfig::new(schema, o_layer.clone(), m_layer)
            .with_policy(ExceptionPolicy::slope_threshold(4.0))
            .with_tilt(TiltSpec::new(vec![("minute", 4), ("5-min", 12), ("hour", 24)]).unwrap())
            .with_ticks_per_unit(ticks_per_unit)
            .with_algorithm(Algorithm::PopularPath)
            .build()
            .unwrap(),
    ));

    // ---- Produce three units of flow volume records ----------------------
    let mut records = Vec::new();
    for unit in 0..3i64 {
        for tick in (unit * 16)..(unit * 16 + 16) {
            for router in 0..9u32 {
                for protocol in 0..9u32 {
                    // Router 4's protocol 7 (a UDP flood) ramps in unit >= 1.
                    let attack = unit >= 1 && router == 4 && protocol == 7;
                    let volume = if attack {
                        10.0 + 8.0 * (tick - unit * 16) as f64
                    } else {
                        5.0 + ((router + protocol) % 4) as f64 * 0.3
                    };
                    records.push(RawRecord::new(vec![router, protocol], tick, volume));
                }
            }
        }
    }

    let source = ReplaySource::new(records, ticks_per_unit).unwrap();
    let (tx, rx) = mpsc::sync_channel::<StreamEvent>(1024);
    let producer = std::thread::spawn(move || source.send_all_sync(&tx));

    let reports = run_engine(&engine, &rx).unwrap();
    producer.join().unwrap().unwrap();

    // ---- Inspect the run --------------------------------------------------
    for report in &reports {
        println!(
            "minute {}: {} active (router, protocol) cells, {} drilled exceptions",
            report.unit, report.m_cells, report.exception_cells
        );
        for alarm in &report.alarms {
            println!(
                "  ALARM region {}: traffic slope {:.1} MB/tick (score {:.1})",
                alarm.key.ids()[0],
                alarm.measure.slope(),
                alarm.score
            );
        }
    }

    let engine = engine.lock().unwrap();
    let cube = engine.cube().unwrap();
    println!(
        "\nPopular path retained in full ({} cuboids):",
        cube.path_tables().len()
    );
    let mut path: Vec<_> = cube.path_tables().iter().collect();
    path.sort_by_key(|(c, _)| c.total_depth());
    for (cuboid, table) in path {
        println!("  {cuboid}: {} cells", table.len());
    }
    println!(
        "exceptions retained between the layers: {}",
        cube.total_exception_cells()
    );

    // Drill the hot region down to the attacking router/protocol.
    if let Some((key, _)) = cube.exceptional_o_cells().first() {
        println!("\nexception supporters under region cell {key}:");
        for hit in engine.drill_descendants(&o_layer, key).unwrap() {
            println!(
                "  {} {} slope {:.1}",
                hit.cuboid,
                hit.key,
                hit.measure.slope()
            );
        }
    }
}
