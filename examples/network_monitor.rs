//! Network-traffic monitoring with **popular-path cubing** and an
//! mpsc-channel pipeline: a producer thread replays flow records,
//! the engine closes one m-layer unit per simulated minute-of-16-ticks,
//! and the consumer reacts through **alarm sinks** — an episode log, a
//! flap/persistence escalator and a running dashboard fed one
//! `UnitDelta` per minute — instead of rescanning cube layers.
//!
//! Dimensions: `pop` (point of presence: region > router) and `proto`
//! (class > protocol). A DDoS-like ramp hits one router's UDP traffic.
//!
//! ```text
//! cargo run --example network_monitor
//! ```

use regcube::core::alarm::{self, AlarmLog, DashboardSummary, SharedSink, ThresholdEscalator};
use regcube::core::result::Algorithm;
use regcube::olap::Dimension;
use regcube::prelude::*;
use regcube::stream::{run_engine, StreamEvent};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};

fn main() {
    // pop: * > region(3) > router(9); proto: * > class(2) > protocol(6).
    let pop = Dimension::with_level_names(
        "pop",
        Hierarchy::balanced(2, 3).unwrap(),
        vec!["region".into(), "router".into()],
    )
    .unwrap();
    let proto = Dimension::with_level_names(
        "proto",
        Hierarchy::balanced(2, 3).unwrap(),
        vec!["class".into(), "protocol".into()],
    )
    .unwrap();
    let schema = CubeSchema::new(vec![pop, proto]).unwrap();

    let m_layer = CuboidSpec::new(vec![2, 2]); // (router, protocol)
    let o_layer = CuboidSpec::new(vec![1, 0]); // (region, *)
    let ticks_per_unit = 16usize;

    // The reaction layer: all three sinks consume the per-minute
    // UnitDelta; none of them ever rescans the o-layer or the
    // exception stores.
    let log = alarm::shared(AlarmLog::new(256));
    let escalator = alarm::shared(ThresholdEscalator::new(2, 4, 8));
    let dashboard = alarm::shared(DashboardSummary::new());

    let engine = Arc::new(Mutex::new(
        regcube::stream::online::EngineConfig::new(schema, o_layer, m_layer)
            .with_policy(ExceptionPolicy::slope_threshold(4.0))
            .with_tilt(TiltSpec::new(vec![("minute", 4), ("5-min", 12), ("hour", 24)]).unwrap())
            .with_ticks_per_unit(ticks_per_unit)
            .with_algorithm(Algorithm::PopularPath)
            .with_sinks([
                log.clone() as SharedSink,
                escalator.clone() as SharedSink,
                dashboard.clone() as SharedSink,
            ])
            .build()
            .unwrap(),
    ));

    // ---- Produce three units of flow volume records ----------------------
    let mut records = Vec::new();
    for unit in 0..3i64 {
        for tick in (unit * 16)..(unit * 16 + 16) {
            for router in 0..9u32 {
                for protocol in 0..9u32 {
                    // Router 4's protocol 7 (a UDP flood) ramps in unit >= 1.
                    let attack = unit >= 1 && router == 4 && protocol == 7;
                    let volume = if attack {
                        10.0 + 8.0 * (tick - unit * 16) as f64
                    } else {
                        5.0 + ((router + protocol) % 4) as f64 * 0.3
                    };
                    records.push(RawRecord::new(vec![router, protocol], tick, volume));
                }
            }
        }
    }

    let source = ReplaySource::new(records, ticks_per_unit).unwrap();
    let (tx, rx) = mpsc::sync_channel::<StreamEvent>(1024);
    let producer = std::thread::spawn(move || source.send_all_sync(&tx));

    let reports = run_engine(&engine, &rx).unwrap();
    producer.join().unwrap().unwrap();

    // ---- Inspect the run --------------------------------------------------
    for report in &reports {
        println!(
            "minute {}: {} active (router, protocol) cells, {} drilled exceptions",
            report.unit, report.m_cells, report.exception_cells
        );
        for alarm in &report.alarms {
            println!(
                "  ALARM region {}: traffic slope {:.1} MB/tick (score {:.1})",
                alarm.key.ids()[0],
                alarm.measure.slope(),
                alarm.score
            );
        }
    }

    // ---- The sink-driven view: no layer was rescanned to build this ------
    let dashboard = dashboard.lock().unwrap();
    println!(
        "\nDashboard after {} minutes: {} active exception cells",
        dashboard.units_seen(),
        dashboard.active_cells()
    );
    for (depth, count) in dashboard.depth_counts() {
        println!("  depth {depth}: {count} active cells");
    }
    println!("hottest cells by residual score at raise:");
    for (cuboid, cell, score) in dashboard.hottest(3) {
        println!("  {cuboid} {cell}  score {score:.1}");
    }

    let log = log.lock().unwrap();
    println!(
        "\nAlarm log: {} episodes opened, {} still open",
        log.opened_total(),
        log.open_count()
    );
    for episode in log.open_episodes() {
        println!("  OPEN  {episode}");
    }
    for episode in log.closed_episodes() {
        println!("  ended {episode}");
    }

    let escalator = escalator.lock().unwrap();
    for esc in escalator.escalations() {
        println!(
            "ESCALATED minute {}: {} {} ({:?})",
            esc.unit, esc.cuboid, esc.cell, esc.reason
        );
    }

    // Drill the hottest episode (ranked by live peak score, which
    // tracks the ramping attack) down to the attacking streams.
    let engine = engine.lock().unwrap();
    let mut open = log.open_episodes();
    open.sort_by(|a, b| b.peak_score.total_cmp(&a.peak_score));
    if let Some(episode) = open.first() {
        println!(
            "\nexception supporters under {} {}:",
            episode.cuboid, episode.cell
        );
        for hit in engine
            .drill_descendants(&episode.cuboid, &episode.cell)
            .unwrap()
        {
            println!(
                "  {} {} slope {:.1}",
                hit.cuboid,
                hit.key,
                hit.measure.slope()
            );
        }
    }
}
