//! Quickstart: the paper's Section 3 in five minutes.
//!
//! Fits the Example 2 / Figure 1 series, demonstrates both lossless
//! aggregation theorems on the Figure 2 / Figure 3 data, and builds a
//! small exception-driven regression cube.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use regcube::prelude::*;

fn main() {
    // ---- Figure 1: a time series and its LSE linear fit -----------------
    let z = TimeSeries::new(
        0,
        vec![0.62, 0.24, 1.03, 0.57, 0.59, 0.57, 0.87, 1.10, 0.71, 0.56],
    )
    .unwrap();
    let fit = LinearFit::fit(&z);
    println!("Example 2 series over {:?}:", z.interval());
    println!("  LSE fit: z(t) = {:.4} + {:.4}·t", fit.base, fit.slope);
    println!("  R² = {:.4}", fit.r_squared(&z));

    // The ISB representation is all a cube cell stores.
    let isb = Isb::fit(&z).unwrap();
    println!("  ISB  = {isb}");
    println!("  IntVal = {}", isb.to_intval());

    // ---- Theorem 3.2: aggregation on a standard dimension ---------------
    // Figure 2's caption values: the ISBs of z1, z2 and z1+z2.
    let z1 = Isb::new(0, 19, 0.540995, 0.0318379).unwrap();
    let z2 = Isb::new(0, 19, 0.294875, 0.0493375).unwrap();
    let sum = aggregate::merge_standard(&[z1, z2]).unwrap();
    println!("\nTheorem 3.2 (Figure 2): {z1} + {z2}");
    println!("  = {sum}  (paper: ([0, 19], 0.83587, 0.0811754))");

    // ---- Theorem 3.3: aggregation on the time dimension -----------------
    // Figure 3's caption values: [0,9] and [10,19] merged into [0,19].
    let seg1 = Isb::new(0, 9, 0.582995, 0.0240189).unwrap();
    let seg2 = Isb::new(10, 19, 0.459046, 0.047474).unwrap();
    let merged = aggregate::merge_time(&[seg1, seg2]).unwrap();
    println!("\nTheorem 3.3 (Figure 3): {seg1} ++ {seg2}");
    println!("  = {merged}  (paper: ([0, 19], 0.509033, 0.0431806))");

    // ---- A small exception-driven regression cube -----------------------
    // Two dimensions with 2-level fanout-3 hierarchies; the m-layer is the
    // finest (L2, L2), the o-layer the apex (*, *).
    let schema = CubeSchema::synthetic(2, 2, 3).unwrap();
    let mut cube = RegressionCube::new(
        schema,
        CuboidSpec::new(vec![0, 0]),
        CuboidSpec::new(vec![2, 2]),
        ExceptionPolicy::slope_threshold(0.8),
    )
    .unwrap();

    // Nine streams: one trending hard, the rest quiet.
    let mut tuples = Vec::new();
    for a in 0..3u32 {
        for b in 0..3u32 {
            let slope = if (a, b) == (1, 2) { 1.6 } else { 0.02 };
            let series = TimeSeries::from_fn(0, 19, |t| 1.0 + slope * t as f64).unwrap();
            tuples.push(MTuple::new(vec![a, b], Isb::fit(&series).unwrap()));
        }
    }
    cube.recompute(&tuples).unwrap();

    println!("\nRegression cube over {} m-layer streams:", tuples.len());
    let result = cube.result().unwrap();
    println!(
        "  cells computed {}, retained {} (exceptions between layers: {})",
        result.stats().cells_computed,
        result.stats().cells_retained,
        result.total_exception_cells(),
    );
    for (key, measure) in cube.alarms().unwrap() {
        println!(
            "  ALARM at o-layer cell {key}: slope {:.3}",
            measure.slope()
        );
        for hit in cube
            .drill_descendants(result.layers().o_layer(), key)
            .unwrap()
        {
            println!(
                "    supporter {} {}: slope {:.3}",
                hit.cuboid,
                hit.key,
                hit.measure.slope()
            );
        }
    }

    // ---- The same cube on the columnar backend --------------------------
    // Backends select the physical table layout, not the semantics: the
    // struct-of-arrays roll-up retains the identical exception set (see
    // ARCHITECTURE.md, "Choosing a backend").
    let schema = CubeSchema::synthetic(2, 2, 3).unwrap();
    let layers = CriticalLayers::new(
        &schema,
        CuboidSpec::new(vec![0, 0]),
        CuboidSpec::new(vec![2, 2]),
    )
    .unwrap();
    let mut columnar =
        ColumnarCubingEngine::new(schema, layers, ExceptionPolicy::slope_threshold(0.8)).unwrap();
    columnar.ingest_unit(&tuples).unwrap();
    assert_eq!(
        columnar.result().total_exception_cells(),
        result.total_exception_cells()
    );
    println!(
        "\nColumnar backend recomputes the same cube: {} exception cells, {}/{} peak table bytes",
        columnar.result().total_exception_cells(),
        columnar.stats().peak_bytes,
        result.stats().peak_bytes,
    );
}
