//! The paper's running Example 1/4: a power supply station collecting
//! per-(user, street, minute) usage streams, analyzed online at the
//! critical layers
//!
//! * m-layer: `(user-group, street-block)` per quarter of an hour,
//! * o-layer: `(*, city)` per quarter,
//!
//! with exception alarms, a **sink-driven** episode log / dashboard fed
//! one `UnitDelta` per quarter (no per-unit layer rescans), and
//! exception-guided drill-down.
//!
//! ```text
//! cargo run --example power_grid
//! ```

use regcube::core::alarm::{self, AlarmLog, DashboardSummary, SharedSink, ThresholdEscalator};
use regcube::core::result::Algorithm;
use regcube::olap::Dimension;
use regcube::prelude::*;

fn main() {
    // ---- Schema: user and location hierarchies ---------------------------
    // user:     * > user-group(4) > individual-user(16)
    // location: * > city(2) > street-block(8) > street-address(32)
    let user = Dimension::with_level_names(
        "user",
        Hierarchy::balanced(2, 4).unwrap(),
        vec!["user-group".into(), "individual-user".into()],
    )
    .unwrap();
    let location = Dimension::with_level_names(
        "location",
        Hierarchy::balanced(3, 2).unwrap(),
        vec![
            "city".into(),
            "street-block".into(),
            "street-address".into(),
        ],
    )
    .unwrap();
    let schema = CubeSchema::new(vec![user, location]).unwrap();

    // Critical layers per Example 4 (time handled by the quarter units):
    // m-layer (user-group, street-block), o-layer (*, city).
    let m_layer = CuboidSpec::new(vec![1, 2]);
    let o_layer = CuboidSpec::new(vec![0, 1]);
    // The primitive stream layer: (individual-user, street-address).
    let primitive = CuboidSpec::new(vec![2, 3]);

    // Reaction layer: episode log, persistence/flap escalator, dashboard.
    let log = alarm::shared(AlarmLog::new(128));
    let escalator = alarm::shared(ThresholdEscalator::new(2, 4, 8));
    let dashboard = alarm::shared(DashboardSummary::new());

    let minutes_per_quarter = 15usize;
    let mut engine = regcube::stream::online::EngineConfig::new(schema, o_layer, m_layer)
        .with_primitive(primitive)
        .with_policy(ExceptionPolicy::slope_threshold(6.0).with_ref_mode(RefMode::OwnSlope))
        .with_tilt(TiltSpec::paper_figure4())
        .with_ticks_per_unit(minutes_per_quarter)
        .with_algorithm(Algorithm::MoCubing)
        .with_sinks([
            log.clone() as SharedSink,
            escalator.clone() as SharedSink,
            dashboard.clone() as SharedSink,
        ])
        .build()
        .unwrap();

    // ---- Simulate three quarters of minute-level usage -------------------
    // City 1's street-block 3 develops a runaway load in quarter 2 (e.g. a
    // failing transformer bank drawing ever more power).
    println!("Simulating 3 quarters of per-minute usage for 16 users x 8 addresses ...\n");
    for quarter in 0..3i64 {
        for minute in (quarter * 15)..(quarter * 15 + 15) {
            for user_id in 0..16u32 {
                for addr in 0..8u32 {
                    let block = addr / 2;
                    let runaway = quarter == 2 && block == 3;
                    let base_load = 1.0 + (user_id % 3) as f64 * 0.2;
                    let trend = if runaway {
                        0.8 * (minute - quarter * 15) as f64
                    } else {
                        0.01 * (minute % 5) as f64
                    };
                    engine
                        .ingest(&RawRecord::new(
                            vec![user_id, addr],
                            minute,
                            base_load + trend,
                        ))
                        .unwrap();
                }
            }
        }
        let report = engine.close_unit().unwrap();
        println!(
            "quarter {}: {} m-cells, {} exception cells, recompute {:?}",
            report.unit, report.m_cells, report.exception_cells, report.recompute_time
        );
        for alarm in &report.alarms {
            println!(
                "  ALARM city cell {}: usage slope {:.2} kWh/min (threshold {})",
                alarm.key,
                alarm.measure.slope(),
                alarm.threshold
            );
        }
        if report.alarms.is_empty() {
            println!("  no alarms — city-level usage trends are normal");
        }
    }

    // ---- The sinks carry the reaction state — no rescans needed ----------
    let dashboard = dashboard.lock().unwrap();
    println!(
        "\nDashboard after {} quarters: {} active exception cells",
        dashboard.units_seen(),
        dashboard.active_cells()
    );
    for (depth, count) in dashboard.depth_counts() {
        println!("  depth {depth}: {count} active cells");
    }

    let log = log.lock().unwrap();
    println!(
        "Alarm log: {} episodes opened, {} open now",
        log.opened_total(),
        log.open_count()
    );
    for episode in log.open_episodes() {
        println!("  OPEN {episode}");
    }
    let escalator = escalator.lock().unwrap();
    for esc in escalator.escalations() {
        println!(
            "  ESCALATED quarter {}: {} {} ({:?})",
            esc.unit, esc.cuboid, esc.cell, esc.reason
        );
    }

    // ---- Exception-guided drilling ---------------------------------------
    println!("\nDrilling the hottest exception down to its supporters:");
    if let Some((cuboid, cell, score)) = dashboard.hottest(1).first() {
        println!("  {cuboid} {cell}: score {score:.2}");
        for hit in engine.drill_descendants(cuboid, cell).unwrap() {
            println!(
                "    {} {} slope {:.2}",
                hit.cuboid,
                hit.key,
                hit.measure.slope()
            );
        }
    }

    // ---- Tilt frames keep per-cell history at mixed granularity ----------
    let hot_cell = CellKey::new(vec![0, 3]);
    if let Some(frame) = engine.tilt_frame(&hot_cell) {
        println!(
            "\nTilt frame of m-cell {hot_cell}: {} slots over {} quarters",
            frame.retained_slots(),
            frame.next_unit()
        );
        if let Some(whole) = frame.merge_all().unwrap() {
            println!(
                "  regression over the whole retained history: slope {:.3}",
                whole.slope()
            );
        }
    }
}
