//! The paper's Section 6.2 extensions, end to end:
//!
//! 1. **Multiple linear regression** over time *and* space — "networks of
//!    sensors placed at different geographic locations … one may wish do
//!    regression not only on the time dimension, but also the three
//!    spatial dimensions" — warehoused as lossless `XᵀX / Xᵀz`
//!    sufficient statistics that merge across sensor groups.
//! 2. **Non-linear regression** via basis transforms (log / polynomial /
//!    exponential fits).
//! 3. **Folding** a fine series to a coarser calendar unit with SQL-style
//!    aggregates (sum/avg/min/max/first/last).
//! 4. **Sharded parallel cubing** of the whole field: the m-layer
//!    hash-partitioned across 4 engines, cubed concurrently, and merged
//!    losslessly via Theorem 3.2 — same cube, multi-core roll-up.
//!
//! ```text
//! cargo run --example sensor_field
//! ```

use regcube::prelude::*;
use regcube::regress::diagnostics::fit_with_diagnostics;
use regcube::regress::fold::{fold_series, FoldOp};
use regcube::regress::mlr::MlrMeasure;
use regcube::regress::transform::{fit_exponential, fit_log, fit_polynomial};

fn main() {
    // ---- 1. Spatio-temporal MLR ------------------------------------------
    // Ground truth: temperature = 12 + 0.08·t - 0.5·x + 0.3·y.
    // Two sensor clusters observe disjoint (t, x, y) grids; each cluster
    // warehouses only its sufficient statistics; merging them recovers
    // the global model exactly.
    let truth = |t: f64, x: f64, y: f64| 12.0 + 0.08 * t - 0.5 * x + 0.3 * y;

    let mut west = MlrMeasure::empty(4).unwrap();
    let mut east = MlrMeasure::empty(4).unwrap();
    for t in 0..48 {
        for x in 0..6 {
            for y in 0..4 {
                let (tf, xf, yf) = (t as f64, x as f64, y as f64);
                let z = truth(tf, xf, yf);
                let row = [1.0, tf, xf, yf];
                if x < 3 {
                    west.push_row(&row, z).unwrap();
                } else {
                    east.push_row(&row, z).unwrap();
                }
            }
        }
    }
    println!(
        "West cluster alone: β = {:?}",
        round4(&west.solve().unwrap())
    );
    println!(
        "East cluster alone: β = {:?}",
        round4(&east.solve().unwrap())
    );
    west.merge_disjoint(&east).unwrap();
    let beta = west.solve().unwrap();
    println!(
        "Merged field model:  β = {:?}  (truth: [12.0, 0.08, -0.5, 0.3])\n",
        round4(&beta)
    );

    // ---- 2. Non-linear fits through transforms ----------------------------
    // Sensor warm-up follows a log curve; battery drain an exponential.
    let warmup = TimeSeries::from_fn(1, 60, |t| 3.0 + 1.4 * (t as f64).ln()).unwrap();
    let log_fit = fit_log(&warmup).unwrap();
    println!(
        "Warm-up log fit: z(t) = {:.3} + {:.3}·ln t   (truth a=3.0, b=1.4)",
        log_fit.a, log_fit.b
    );

    let battery = TimeSeries::from_fn(0, 60, |t| 95.0 * (-0.021 * t as f64).exp()).unwrap();
    let exp_fit = fit_exponential(&battery).unwrap();
    println!(
        "Battery exponential fit: z(t) = {:.2}·e^({:.4}·t)   (truth A=95, b=-0.021)",
        exp_fit.amplitude, exp_fit.rate
    );

    let drift =
        TimeSeries::from_fn(0, 40, |t| 0.5 + 0.2 * t as f64 - 0.004 * (t * t) as f64).unwrap();
    let poly = fit_polynomial(&drift, 2).unwrap();
    println!(
        "Calibration drift quadratic: coeffs = {:?}   (truth [0.5, 0.2, -0.004])\n",
        round4(&poly.coeffs)
    );

    // ---- 3. Folding to the calendar ---------------------------------------
    // 4 weeks of hourly readings folded to days with different aggregates.
    let hourly = TimeSeries::from_fn(0, 24 * 28 - 1, |t| {
        let day = t / 24;
        20.0 + day as f64 * 0.25 + 5.0 * (std::f64::consts::TAU * (t % 24) as f64 / 24.0).sin()
    })
    .unwrap();
    for op in [FoldOp::Avg, FoldOp::Max, FoldOp::Last] {
        let daily = fold_series(&hourly, 24, op).unwrap();
        let fit = LinearFit::fit(&daily);
        println!(
            "Hourly -> daily via {op:?}: {} days, daily trend {:.3}",
            daily.len(),
            fit.slope
        );
    }
    println!("(the daily Avg trend recovers the injected 0.25/day warming)");

    // ---- Significance: is a slope real or noise? --------------------------
    let daily_avg = fold_series(&hourly, 24, FoldOp::Avg).unwrap();
    let (_, diag) = fit_with_diagnostics(&daily_avg).unwrap();
    println!(
        "\nDaily warming significance: t = {:.1}, R² = {:.3} -> {}",
        diag.slope_t,
        diag.r_squared,
        if diag.slope_is_significant(2.0) {
            "significant trend, alert-worthy"
        } else {
            "not distinguishable from noise"
        }
    );

    // ---- 4. Sharded parallel cubing across the field ----------------------
    // A 9x9 grid of sensors (dimensions: row zone > row, column zone >
    // column), each warehousing one ISB per unit. The sharded engine
    // hash-partitions the sensors across 4 cubing engines, rolls every
    // cuboid up in parallel, and merges the partial cubes exactly
    // (Theorem 3.2 linearity) — cell for cell the same cube as one
    // engine, which we verify on the spot.
    let schema = CubeSchema::synthetic(2, 2, 3).unwrap();
    let layers = CriticalLayers::new(
        &schema,
        CuboidSpec::new(vec![0, 0]), // o-layer: whole field
        CuboidSpec::new(vec![2, 2]), // m-layer: individual sensors
    )
    .unwrap();
    let policy = ExceptionPolicy::slope_threshold(0.25);
    let mut tuples = Vec::new();
    for x in 0..9u32 {
        for y in 0..9u32 {
            // A hot corner of the field warms fast; the rest drifts.
            let slope = if x >= 6 && y >= 6 { 0.4 } else { 0.02 };
            let series =
                TimeSeries::from_fn(0, 23, |t| 15.0 + slope * t as f64 + (x + y) as f64 * 0.1)
                    .unwrap();
            tuples.push(MTuple::new(vec![x, y], Isb::fit(&series).unwrap()));
        }
    }

    let mut sharded =
        ShardedEngine::mo_cubing(schema.clone(), layers.clone(), policy.clone(), 4).unwrap();
    let delta = sharded.ingest_unit(&tuples).unwrap();
    // The columnar backend rolls the same field up over struct-of-arrays
    // tables (the cache-friendly layout of the hot aggregation path) —
    // same trait, same cube, different bytes.
    let mut columnar =
        ColumnarCubingEngine::new(schema.clone(), layers.clone(), policy.clone()).unwrap();
    columnar.ingest_unit(&tuples).unwrap();
    let mut single = MoCubingEngine::transient(schema, layers, policy).unwrap();
    single.ingest_unit(&tuples).unwrap();

    let (cube, reference) = (sharded.result(), single.result());
    assert_eq!(
        columnar.result().total_exception_cells(),
        reference.total_exception_cells()
    );
    println!(
        "\nColumnar backend: same {} exception cells at {:.1}x lower table peak than the row layout",
        columnar.result().total_exception_cells(),
        single.stats().peak_bytes as f64 / columnar.stats().peak_bytes.max(1) as f64,
    );
    println!(
        "\nSharded cubing: {} sensors across {} shards -> {} cells, {} exception cells",
        cube.m_layer_cells(),
        sharded.shards(),
        cube.stats().cells_computed,
        cube.total_exception_cells(),
    );
    assert_eq!(cube.m_layer_cells(), reference.m_layer_cells());
    assert_eq!(
        cube.total_exception_cells(),
        reference.total_exception_cells()
    );
    println!("merged shard cube matches the single-engine cube exactly");
    let hottest = delta
        .appeared
        .iter()
        .filter_map(|(c, k)| cube.get(c, k).map(|m| (c, k, m)))
        .max_by(|a, b| a.2.slope().abs().total_cmp(&b.2.slope().abs()));
    if let Some((cuboid, key, isb)) = hottest {
        println!(
            "hottest new exception: {cuboid}{key} warming at {:.2}°/tick (zone roll-up of the hot corner)",
            isb.slope()
        );
    }
}

fn round4(v: &[f64]) -> Vec<f64> {
    v.iter().map(|x| (x * 1e4).round() / 1e4).collect()
}
