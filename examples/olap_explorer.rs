//! An analyst session over a synthetic `D3L2C4T2K` stream cube: compute
//! once with m/o-cubing, then explore — alarms, top-k hot cells of any
//! cuboid (materialized or not), on-the-fly point queries, sibling ranks,
//! and exception drill-down.
//!
//! ```text
//! cargo run --example olap_explorer
//! ```

use regcube::core::query;
use regcube::prelude::*;

fn main() {
    // ---- A generated workload -------------------------------------------
    let spec: DatasetSpec = "D3L2C4T2K".parse().expect("valid spec");
    let dataset = Dataset::generate(spec.with_seed(42)).expect("generates");
    println!(
        "dataset {}: {} distinct m-layer streams over window {:?}",
        dataset.spec,
        dataset.tuples.len(),
        dataset.window()
    );

    let layers = CriticalLayers::new(
        &dataset.schema,
        dataset.o_layer.clone(),
        dataset.m_layer.clone(),
    )
    .expect("valid layers");
    let tuples: Vec<MTuple> = dataset
        .tuples
        .iter()
        .map(|t| MTuple::new(t.ids.clone(), t.isb))
        .collect();

    // Calibrate the threshold to ~2% exceptional m-cells.
    let scores = regcube::datagen::calibrate::m_layer_scores(&dataset.tuples);
    let threshold = regcube::datagen::calibrate::threshold_for_rate(&scores, 0.02);
    let policy = ExceptionPolicy::slope_threshold(threshold);
    println!("calibrated slope threshold: {threshold:.3} (~2% of m-cells)\n");

    // The cuboid lattice between the layers, Figure 6-style (the default
    // popular path starred).
    let path = PopularPath::default_for(layers.lattice()).expect("path");
    println!("lattice between the layers (popular path starred):");
    print!("{}", layers.lattice().render(|c| path.contains(c)));
    println!();

    let cube = mo_cubing::compute(&dataset.schema, &layers, &policy, &tuples).expect("cubes");
    let stats = cube.stats();
    println!(
        "cube: {} cuboids, {} cells computed, {} retained ({} exceptions) in {:?}",
        stats.cuboids_computed,
        stats.cells_computed,
        stats.cells_retained,
        stats.exception_cells,
        stats.elapsed
    );

    // ---- The o-layer alarm list ------------------------------------------
    println!("\no-layer alarms (hottest first):");
    for (key, measure) in cube.exceptional_o_cells().into_iter().take(5) {
        println!("  {key}: slope {:+.3}", measure.slope());
    }

    // ---- Top-k of an arbitrary (non-materialized) cuboid ------------------
    let mid = CuboidSpec::new(vec![1, 2, 1]);
    println!("\ntop-3 cells of cuboid {mid} (computed on the fly):");
    for cell in query::top_k_cells(&dataset.schema, &cube, &mid, 3).expect("queries") {
        println!("  {}: slope {:+.3}", cell.key, cell.measure.slope());

        // Sibling context: is this cell hot among its siblings on dim 1?
        if let Some((rank, of)) =
            query::sibling_rank(&dataset.schema, &cube, &mid, &cell.key, 1).expect("ranks")
        {
            println!("      sibling rank on dim B: {rank}/{of}");
        }
    }

    // ---- Drill the hottest alarm to its m-layer supporters ----------------
    if let Some((key, _)) = cube.exceptional_o_cells().first() {
        println!("\nexception supporters under o-cell {key}:");
        let hits =
            regcube::core::drill::drill_descendants(&dataset.schema, &cube, layers.o_layer(), key);
        for hit in hits.iter().take(6) {
            println!(
                "  {} {}: slope {:+.3}",
                hit.cuboid,
                hit.key,
                hit.measure.slope()
            );
        }
        if hits.len() > 6 {
            println!("  ... and {} more", hits.len() - 6);
        }
    }

    // ---- Point query for a cell nothing materialized ----------------------
    let probe_cuboid = CuboidSpec::new(vec![2, 1, 0]);
    let probe_key = CellKey::new(vec![3, 1, 0]);
    match query::cell_measure(&dataset.schema, &cube, &probe_cuboid, &probe_key).expect("queries") {
        Some(m) => println!("\npoint query {probe_cuboid}{probe_key}: {m} (aggregated on demand)"),
        None => println!("\npoint query {probe_cuboid}{probe_key}: empty in this window"),
    }
}
