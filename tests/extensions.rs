//! Tests of the Section 6.2 / 4.5 extension surface through the umbrella
//! crate: irregular-tick streaming fits, tilt window queries, on-the-fly
//! cube queries and the MLR embedding of ISBs.

use regcube::core::mlr_cube::mlr_from_isb;
use regcube::core::query;
use regcube::prelude::*;
use regcube::regress::RunningFit;

#[test]
fn running_fit_bridges_irregular_sensors_into_the_cube_world() {
    // Sensors report at irregular moments; the streaming fitter pools
    // them exactly like the warehoused measures would.
    let mut north = RunningFit::new();
    let mut south = RunningFit::new();
    let line = |t: f64| 4.0 + 0.6 * t;
    for &t in &[0.0, 1.5, 3.0, 8.25, 9.0] {
        north.push(t, line(t));
    }
    for &t in &[0.5, 2.0, 7.75] {
        south.push(t, line(t));
    }
    north.merge(&south);
    let fit = north.fit().unwrap();
    assert!((fit.base - 4.0).abs() < 1e-9);
    assert!((fit.slope - 0.6).abs() < 1e-10);
    assert_eq!(north.n(), 8);
}

#[test]
fn tilt_recent_windows_answer_the_analyst_questions() {
    // "The last hour with the precision of a quarter": merge_recent on
    // the finest level of the Figure 4 frame.
    let mut frame: TiltFrame<Isb> = TiltFrame::new(TiltSpec::paper_figure4());
    for u in 0..7i64 {
        let start = u * 15;
        let z = TimeSeries::from_fn(start, start + 14, |t| 0.2 * t as f64).unwrap();
        frame.push(Isb::fit(&z).unwrap()).unwrap();
    }
    // 7 quarters: 4 promoted into 1 hour slot, 3 remain fine.
    let last_two_quarters = frame.merge_recent(0, 2).unwrap().unwrap();
    assert_eq!(last_two_quarters.interval(), (75, 104));
    assert!((last_two_quarters.slope() - 0.2).abs() < 1e-9);
    let last_hour = frame.merge_level(1).unwrap().unwrap();
    assert_eq!(last_hour.interval(), (0, 59));
}

#[test]
fn query_module_composes_with_generated_cubes() {
    let dataset = Dataset::generate(DatasetSpec::new(2, 2, 3, 400).unwrap()).unwrap();
    let layers = CriticalLayers::new(
        &dataset.schema,
        dataset.o_layer.clone(),
        dataset.m_layer.clone(),
    )
    .unwrap();
    let tuples: Vec<MTuple> = dataset
        .tuples
        .iter()
        .map(|t| MTuple::new(t.ids.clone(), t.isb))
        .collect();
    let cube =
        mo_cubing::compute(&dataset.schema, &layers, &ExceptionPolicy::never(), &tuples).unwrap();

    // Top-k of the o-layer equals sorting the retained o-table.
    let top = query::top_k_cells(&dataset.schema, &cube, layers.o_layer(), 3).unwrap();
    assert!(!top.is_empty());
    let mut best_retained: Vec<f64> = cube.o_table().values().map(|m| m.slope().abs()).collect();
    best_retained.sort_by(|a, b| b.partial_cmp(a).unwrap());
    assert!((top[0].score - best_retained[0]).abs() < 1e-9);

    // Every top cell's on-the-fly measure equals the retained one.
    for cell in &top {
        let direct = query::cell_measure(&dataset.schema, &cube, layers.o_layer(), &cell.key)
            .unwrap()
            .unwrap();
        assert!(direct.approx_eq(&cell.measure, 1e-9));
    }
}

#[test]
fn isb_mlr_embedding_round_trips_through_aggregation() {
    // Embed two sibling ISBs into MLR measures, merge them same-design,
    // and compare against the Theorem 3.2 merge of the ISBs themselves.
    let z1 = TimeSeries::from_fn(0, 11, |t| 1.0 + 0.3 * t as f64).unwrap();
    let z2 = TimeSeries::from_fn(0, 11, |t| 2.0 - 0.1 * t as f64).unwrap();
    let (isb1, isb2) = (Isb::fit(&z1).unwrap(), Isb::fit(&z2).unwrap());

    let mut m = mlr_from_isb(&isb1).unwrap();
    m.merge_same_design(&mlr_from_isb(&isb2).unwrap()).unwrap();
    let beta = m.solve().unwrap();

    let merged = aggregate::merge_standard(&[isb1, isb2]).unwrap();
    assert!((beta[0] - merged.base()).abs() < 1e-8);
    assert!((beta[1] - merged.slope()).abs() < 1e-9);
}
