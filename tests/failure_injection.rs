//! Failure injection: adversarial and degenerate inputs must produce
//! errors (or well-defined results), never panics, across the public API.

use regcube::core::result::Algorithm;
use regcube::prelude::*;
use regcube::stream::online::EngineConfig;
use regcube::stream::StreamError;

#[test]
fn non_finite_values_flow_through_without_panicking() {
    // NaN/Inf observations are the stream reality of broken sensors. The
    // math propagates them (fits become NaN) but nothing panics, and the
    // exception policy treats NaN scores as non-exceptional (NaN >= t is
    // false), so broken cells never trigger alarms by accident.
    let z = TimeSeries::new(0, vec![1.0, f64::NAN, 2.0, f64::INFINITY]).unwrap();
    let fit = LinearFit::fit(&z);
    assert!(fit.slope.is_nan() || fit.slope.is_infinite());

    let isb = Isb::fit(&z).unwrap();
    let schema = CubeSchema::synthetic(1, 1, 2).unwrap();
    let layers =
        CriticalLayers::new(&schema, CuboidSpec::new(vec![0]), CuboidSpec::new(vec![1])).unwrap();
    let cube = mo_cubing::compute(
        &schema,
        &layers,
        &ExceptionPolicy::slope_threshold(0.5),
        &[MTuple::new(vec![0], isb)],
    )
    .unwrap();
    assert_eq!(cube.exceptional_o_cells().len(), 0, "NaN never alarms");
}

#[test]
fn extreme_magnitudes_and_ticks_stay_finite_where_they_should() {
    // Huge-but-finite values: the fit remains finite.
    let z = TimeSeries::from_fn(1_000_000_000, 1_000_000_063, |t| {
        1e12 + 1e6 * (t % 7) as f64
    })
    .unwrap();
    let isb = Isb::fit(&z).unwrap();
    assert!(isb.base().is_finite() && isb.slope().is_finite());
    // Round-trips survive the magnitude.
    let back = isb.to_intval().to_isb();
    let tol = 1e-6 * isb.base().abs().max(1.0);
    assert!(back.approx_eq(&isb, tol));
}

#[test]
fn mismatched_windows_are_rejected_not_merged() {
    let a = Isb::new(0, 9, 1.0, 0.1).unwrap();
    let b = Isb::new(0, 19, 1.0, 0.1).unwrap();
    assert!(aggregate::merge_standard(&[a, b]).is_err());

    let schema = CubeSchema::synthetic(1, 1, 2).unwrap();
    let layers =
        CriticalLayers::new(&schema, CuboidSpec::new(vec![0]), CuboidSpec::new(vec![1])).unwrap();
    let tuples = vec![MTuple::new(vec![0], a), MTuple::new(vec![1], b)];
    assert!(mo_cubing::compute(&schema, &layers, &ExceptionPolicy::never(), &tuples).is_err());
    assert!(
        popular_path::compute(&schema, &layers, &ExceptionPolicy::never(), None, &tuples).is_err()
    );
}

#[test]
fn engine_survives_a_burst_of_bad_records() {
    let schema = CubeSchema::synthetic(2, 1, 2).unwrap();
    let mut engine = EngineConfig::new(
        schema,
        CuboidSpec::new(vec![0, 0]),
        CuboidSpec::new(vec![1, 1]),
    )
    .with_ticks_per_unit(4)
    .with_algorithm(Algorithm::MoCubing)
    .build()
    .unwrap();

    // Wrong arity, out-of-range member, out-of-window tick — all rejected.
    assert!(matches!(
        engine.ingest(&RawRecord::new(vec![0], 0, 1.0)),
        Err(StreamError::BadRecord { .. })
    ));
    assert!(matches!(
        engine.ingest(&RawRecord::new(vec![0, 9], 0, 1.0)),
        Err(StreamError::BadRecord { .. })
    ));
    assert!(matches!(
        engine.ingest(&RawRecord::new(vec![0, 0], 99, 1.0)),
        Err(StreamError::OutOfWindow { .. })
    ));

    // The engine still works normally afterwards.
    for t in 0..4 {
        engine
            .ingest(&RawRecord::new(vec![0, 0], t, t as f64))
            .unwrap();
    }
    let report = engine.close_unit().unwrap();
    assert_eq!(report.m_cells, 1);
}

#[test]
fn queries_on_foreign_cuboids_error_cleanly() {
    let schema = CubeSchema::synthetic(2, 2, 2).unwrap();
    let layers = CriticalLayers::new(
        &schema,
        CuboidSpec::new(vec![1, 1]),
        CuboidSpec::new(vec![2, 2]),
    )
    .unwrap();
    let z = TimeSeries::from_fn(0, 9, |t| t as f64).unwrap();
    let cube = mo_cubing::compute(
        &schema,
        &layers,
        &ExceptionPolicy::never(),
        &[MTuple::new(vec![0, 0], Isb::fit(&z).unwrap())],
    )
    .unwrap();

    // A cuboid outside the lattice (coarser than the o-layer) still
    // answers point queries (aggregation is defined), while drilling it
    // returns nothing rather than panicking.
    let apex = CuboidSpec::new(vec![0, 0]);
    let key = CellKey::new(vec![0, 0]);
    let measure = regcube::core::query::cell_measure(&schema, &cube, &apex, &key).unwrap();
    assert!(measure.is_some());
    let hits = regcube::core::drill::drill_descendants(&schema, &cube, &apex, &key);
    assert!(hits.iter().all(|h| layers.lattice().contains(&h.cuboid)));

    // Arity-mismatched keys simply miss (no panic) in retained lookups.
    assert!(cube.get(layers.m_layer(), &CellKey::new(vec![0])).is_none());
}

#[test]
fn tilt_frame_rejects_duplicate_and_ancient_pushes() {
    let mut frame: TiltFrame<Isb> = TiltFrame::new(TiltSpec::paper_figure4());
    let q0 = Isb::new(0, 14, 1.0, 0.0).unwrap();
    frame.push(q0).unwrap();
    // Pushing the same quarter again is a gap violation.
    assert!(frame.push(q0).is_err());
    // Pushing something older than the frame's head fails too.
    let ancient = Isb::new(-30, -16, 1.0, 0.0).unwrap();
    assert!(frame.push(ancient).is_err());
    // The frame is still usable.
    let q1 = Isb::new(15, 29, 1.0, 0.0).unwrap();
    frame.push(q1).unwrap();
    assert_eq!(frame.retained_slots(), 2);
}

#[test]
fn zero_and_single_member_schemas_work_end_to_end() {
    // The smallest legal cube: one dimension, one level, fanout 1 —
    // exactly one m-cell, lattice of 2 cuboids (m and apex o).
    let schema = CubeSchema::synthetic(1, 1, 1).unwrap();
    let layers =
        CriticalLayers::new(&schema, CuboidSpec::new(vec![0]), CuboidSpec::new(vec![1])).unwrap();
    let z = TimeSeries::from_fn(0, 9, |t| 2.0 * t as f64).unwrap();
    let tuples = vec![MTuple::new(vec![0], Isb::fit(&z).unwrap())];
    for result in [
        mo_cubing::compute(&schema, &layers, &ExceptionPolicy::always(), &tuples).unwrap(),
        popular_path::compute(&schema, &layers, &ExceptionPolicy::always(), None, &tuples).unwrap(),
    ] {
        assert_eq!(result.m_layer_cells(), 1);
        assert_eq!(result.o_layer_cells(), 1);
        let apex = result.o_table().get(&CellKey::new(vec![0])).unwrap();
        assert!((apex.slope() - 2.0).abs() < 1e-9);
    }
}
