//! Failure injection: adversarial and degenerate inputs must produce
//! errors (or well-defined results), never panics, across the public API.

use regcube::core::result::Algorithm;
use regcube::prelude::*;
use regcube::stream::online::EngineConfig;
use regcube::stream::StreamError;

#[test]
fn non_finite_values_flow_through_without_panicking() {
    // NaN/Inf observations are the stream reality of broken sensors. The
    // math propagates them (fits become NaN) but nothing panics, and the
    // exception policy treats NaN scores as non-exceptional (NaN >= t is
    // false), so broken cells never trigger alarms by accident.
    let z = TimeSeries::new(0, vec![1.0, f64::NAN, 2.0, f64::INFINITY]).unwrap();
    let fit = LinearFit::fit(&z);
    assert!(fit.slope.is_nan() || fit.slope.is_infinite());

    let isb = Isb::fit(&z).unwrap();
    let schema = CubeSchema::synthetic(1, 1, 2).unwrap();
    let layers =
        CriticalLayers::new(&schema, CuboidSpec::new(vec![0]), CuboidSpec::new(vec![1])).unwrap();
    let cube = mo_cubing::compute(
        &schema,
        &layers,
        &ExceptionPolicy::slope_threshold(0.5),
        &[MTuple::new(vec![0], isb)],
    )
    .unwrap();
    assert_eq!(cube.exceptional_o_cells().len(), 0, "NaN never alarms");
}

#[test]
fn extreme_magnitudes_and_ticks_stay_finite_where_they_should() {
    // Huge-but-finite values: the fit remains finite.
    let z = TimeSeries::from_fn(1_000_000_000, 1_000_000_063, |t| {
        1e12 + 1e6 * (t % 7) as f64
    })
    .unwrap();
    let isb = Isb::fit(&z).unwrap();
    assert!(isb.base().is_finite() && isb.slope().is_finite());
    // Round-trips survive the magnitude.
    let back = isb.to_intval().to_isb();
    let tol = 1e-6 * isb.base().abs().max(1.0);
    assert!(back.approx_eq(&isb, tol));
}

#[test]
fn mismatched_windows_are_rejected_not_merged() {
    let a = Isb::new(0, 9, 1.0, 0.1).unwrap();
    let b = Isb::new(0, 19, 1.0, 0.1).unwrap();
    assert!(aggregate::merge_standard(&[a, b]).is_err());

    let schema = CubeSchema::synthetic(1, 1, 2).unwrap();
    let layers =
        CriticalLayers::new(&schema, CuboidSpec::new(vec![0]), CuboidSpec::new(vec![1])).unwrap();
    let tuples = vec![MTuple::new(vec![0], a), MTuple::new(vec![1], b)];
    assert!(mo_cubing::compute(&schema, &layers, &ExceptionPolicy::never(), &tuples).is_err());
    assert!(
        popular_path::compute(&schema, &layers, &ExceptionPolicy::never(), None, &tuples).is_err()
    );
}

#[test]
fn engine_survives_a_burst_of_bad_records() {
    let schema = CubeSchema::synthetic(2, 1, 2).unwrap();
    let mut engine = EngineConfig::new(
        schema,
        CuboidSpec::new(vec![0, 0]),
        CuboidSpec::new(vec![1, 1]),
    )
    .with_ticks_per_unit(4)
    .with_algorithm(Algorithm::MoCubing)
    .build()
    .unwrap();

    // Wrong arity, out-of-range member, out-of-window tick — all rejected.
    assert!(matches!(
        engine.ingest(&RawRecord::new(vec![0], 0, 1.0)),
        Err(StreamError::BadRecord { .. })
    ));
    assert!(matches!(
        engine.ingest(&RawRecord::new(vec![0, 9], 0, 1.0)),
        Err(StreamError::BadRecord { .. })
    ));
    assert!(matches!(
        engine.ingest(&RawRecord::new(vec![0, 0], 99, 1.0)),
        Err(StreamError::OutOfWindow { .. })
    ));

    // The engine still works normally afterwards.
    for t in 0..4 {
        engine
            .ingest(&RawRecord::new(vec![0, 0], t, t as f64))
            .unwrap();
    }
    let report = engine.close_unit().unwrap();
    assert_eq!(report.m_cells, 1);
}

#[test]
fn queries_on_foreign_cuboids_error_cleanly() {
    let schema = CubeSchema::synthetic(2, 2, 2).unwrap();
    let layers = CriticalLayers::new(
        &schema,
        CuboidSpec::new(vec![1, 1]),
        CuboidSpec::new(vec![2, 2]),
    )
    .unwrap();
    let z = TimeSeries::from_fn(0, 9, |t| t as f64).unwrap();
    let cube = mo_cubing::compute(
        &schema,
        &layers,
        &ExceptionPolicy::never(),
        &[MTuple::new(vec![0, 0], Isb::fit(&z).unwrap())],
    )
    .unwrap();

    // A cuboid outside the lattice (coarser than the o-layer) still
    // answers point queries (aggregation is defined), while drilling it
    // returns nothing rather than panicking.
    let apex = CuboidSpec::new(vec![0, 0]);
    let key = CellKey::new(vec![0, 0]);
    let measure = regcube::core::query::cell_measure(&schema, &cube, &apex, &key).unwrap();
    assert!(measure.is_some());
    let hits = regcube::core::drill::drill_descendants(&schema, &cube, &apex, &key);
    assert!(hits.iter().all(|h| layers.lattice().contains(&h.cuboid)));

    // Arity-mismatched keys simply miss (no panic) in retained lookups.
    assert!(cube.get(layers.m_layer(), &CellKey::new(vec![0])).is_none());
}

#[test]
fn tilt_frame_rejects_duplicate_and_ancient_pushes() {
    let mut frame: TiltFrame<Isb> = TiltFrame::new(TiltSpec::paper_figure4());
    let q0 = Isb::new(0, 14, 1.0, 0.0).unwrap();
    frame.push(q0).unwrap();
    // Pushing the same quarter again is a gap violation.
    assert!(frame.push(q0).is_err());
    // Pushing something older than the frame's head fails too.
    let ancient = Isb::new(-30, -16, 1.0, 0.0).unwrap();
    assert!(frame.push(ancient).is_err());
    // The frame is still usable.
    let q1 = Isb::new(15, 29, 1.0, 0.0).unwrap();
    frame.push(q1).unwrap();
    assert_eq!(frame.retained_slots(), 2);
}

#[test]
fn nan_streams_never_open_alarm_episodes() {
    use regcube::core::alarm::{self, AlarmLog, DashboardSummary, SharedSink};
    // A broken sensor feeding NaN: the fits go NaN, the policy scores
    // NaN as non-exceptional, and no sink ever opens an episode — even
    // under the always-exceptional policy.
    let log = alarm::shared(AlarmLog::new(16));
    let dash = alarm::shared(DashboardSummary::new());
    let schema = CubeSchema::synthetic(2, 2, 2).unwrap();
    let mut engine = EngineConfig::new(
        schema,
        CuboidSpec::new(vec![0, 0]),
        CuboidSpec::new(vec![2, 2]),
    )
    .with_ticks_per_unit(4)
    .with_policy(ExceptionPolicy::always())
    .with_sinks([log.clone() as SharedSink, dash.clone() as SharedSink])
    .build()
    .unwrap();
    for unit in 0..2i64 {
        for t in (unit * 4)..(unit * 4 + 4) {
            engine
                .ingest(&RawRecord::new(vec![0, 0], t, f64::NAN))
                .unwrap();
            engine.ingest(&RawRecord::new(vec![3, 3], t, 1.0)).unwrap();
        }
        let report = engine.close_unit().unwrap();
        assert!(report.sink_errors.is_empty());
    }
    // Only the healthy stream's coverage opened episodes; no NaN cell
    // is active anywhere.
    let log = log.lock().unwrap();
    for episode in log.open_episodes() {
        let cube = engine.cube().unwrap();
        let measure = cube.get(&episode.cuboid, &episode.cell).unwrap();
        assert!(
            measure.slope().is_finite(),
            "NaN cell holds an episode: {episode}"
        );
        assert!(episode.peak_score.is_finite());
    }
    assert_eq!(dash.lock().unwrap().active_cells(), log.open_count() as u64);

    // The sink-level guard, directly: a delta naming a cell the cube
    // does not retain (score lookup fails -> NaN) must be suppressed.
    let delta = regcube::core::UnitDelta {
        unit: 9,
        window: (0, 3),
        opened_unit: true,
        tuples: 1,
        cells_touched: 1,
        appeared: vec![(CuboidSpec::new(vec![1, 1]), CellKey::new(vec![3, 3]))],
        cleared: vec![],
    };
    let cube = engine.cube().unwrap();
    let ctx = regcube::core::AlarmContext::new(cube, &delta);
    let mut fresh = AlarmLog::new(4);
    regcube::core::AlarmSink::on_unit(&mut fresh, &delta, &ctx).unwrap();
    assert_eq!(fresh.open_count(), 0, "unretained cell must not alarm");
    assert_eq!(fresh.suppressed(), 1);
}

#[test]
fn a_failing_sink_does_not_poison_the_engine() {
    use regcube::core::alarm::{self, AlarmContext, AlarmLog, AlarmSink, SharedSink};
    use regcube::core::{CoreError, UnitDelta};

    struct Exploding;
    impl AlarmSink for Exploding {
        fn name(&self) -> &'static str {
            "exploding"
        }
        fn on_unit(&mut self, _: &UnitDelta, _: &AlarmContext<'_>) -> Result<(), CoreError> {
            Err(CoreError::BadInput {
                detail: "observer crashed".into(),
            })
        }
    }

    let log = alarm::shared(AlarmLog::new(16));
    let schema = CubeSchema::synthetic(2, 2, 2).unwrap();
    let mut engine = EngineConfig::new(
        schema,
        CuboidSpec::new(vec![0, 0]),
        CuboidSpec::new(vec![2, 2]),
    )
    .with_ticks_per_unit(4)
    .with_policy(ExceptionPolicy::slope_threshold(0.5))
    .with_sinks([
        alarm::shared(Exploding) as SharedSink,
        log.clone() as SharedSink,
    ])
    .build()
    .unwrap();

    for t in 0..4 {
        engine
            .ingest(&RawRecord::new(vec![0, 0], t, 2.0 * t as f64))
            .unwrap();
    }
    let report = engine.close_unit().unwrap();
    // The unit succeeded and the delta was applied before sinks ran:
    // the cube is live, later sinks consumed the delta, and the error
    // is surfaced exactly once, in this report.
    assert_eq!(report.m_cells, 1);
    assert!(engine.cube().is_ok());
    assert!(log.lock().unwrap().open_count() > 0);
    assert_eq!(report.sink_errors.len(), 1);
    assert_eq!(report.sink_errors[0].sink, "exploding");
    assert!(report.sink_errors[0].message.contains("observer crashed"));

    // The engine (and the failing sink) keep going on the next unit.
    for t in 4..8 {
        engine.ingest(&RawRecord::new(vec![0, 0], t, 0.0)).unwrap();
    }
    let next = engine.close_unit().unwrap();
    assert_eq!(next.sink_errors.len(), 1);
    assert_eq!(next.m_cells, 1);
}

#[test]
fn rollover_mid_episode_keeps_raised_at_stable() {
    use regcube::core::alarm::{self, AlarmLog, SharedSink};
    let log = alarm::shared(AlarmLog::new(16));
    let schema = CubeSchema::synthetic(2, 2, 2).unwrap();
    let mut engine = EngineConfig::new(
        schema,
        CuboidSpec::new(vec![0, 0]),
        CuboidSpec::new(vec![2, 2]),
    )
    .with_ticks_per_unit(4)
    .with_policy(ExceptionPolicy::slope_threshold(0.5))
    .with_sinks([log.clone() as SharedSink])
    .build()
    .unwrap();

    // Hot across three unit rollovers, then calm.
    for unit in 0..4i64 {
        let slope = if unit < 3 { 2.0 } else { 0.0 };
        for t in (unit * 4)..(unit * 4 + 4) {
            let v = 1.0 + slope * (t - unit * 4) as f64;
            engine.ingest(&RawRecord::new(vec![0, 0], t, v)).unwrap();
        }
        engine.close_unit().unwrap();
        let log = log.lock().unwrap();
        if unit < 3 {
            assert!(log.open_count() > 0, "unit {unit}");
            for episode in log.open_episodes() {
                assert_eq!(
                    episode.raised_at, 0,
                    "rollover must not restart the episode: {episode}"
                );
            }
        }
    }
    let log = log.lock().unwrap();
    assert_eq!(log.open_count(), 0, "the calm unit closed everything");
    for episode in log.closed_episodes() {
        assert_eq!(episode.raised_at, 0);
        assert_eq!(episode.cleared_at, Some(3));
    }
}

#[test]
fn columnar_nan_streams_never_open_alarm_episodes() {
    use regcube::core::alarm::{self, AlarmLog, SharedSink};
    // The NaN guard holds on the columnar backend too: broken-sensor
    // fits go NaN, the policy scores NaN as non-exceptional, and no
    // episode ever names a NaN cell — even under always-exceptional.
    let log = alarm::shared(AlarmLog::new(16));
    let schema = CubeSchema::synthetic(2, 2, 2).unwrap();
    let mut engine = EngineConfig::new(
        schema,
        CuboidSpec::new(vec![0, 0]),
        CuboidSpec::new(vec![2, 2]),
    )
    .with_ticks_per_unit(4)
    .with_policy(ExceptionPolicy::always())
    .with_backend(Backend::Columnar)
    .with_sinks([log.clone() as SharedSink])
    .build()
    .unwrap();
    for unit in 0..2i64 {
        for t in (unit * 4)..(unit * 4 + 4) {
            engine
                .ingest(&RawRecord::new(vec![0, 0], t, f64::NAN))
                .unwrap();
            engine.ingest(&RawRecord::new(vec![3, 3], t, 1.0)).unwrap();
        }
        let report = engine.close_unit().unwrap();
        assert!(report.sink_errors.is_empty());
    }
    let log = log.lock().unwrap();
    assert!(log.open_count() > 0, "the healthy stream opened coverage");
    for episode in log.open_episodes() {
        let cube = engine.cube().unwrap();
        let measure = cube.get(&episode.cuboid, &episode.cell).unwrap();
        assert!(
            measure.slope().is_finite(),
            "NaN cell holds an episode: {episode}"
        );
        assert!(episode.peak_score.is_finite());
    }
}

#[test]
fn columnar_rollover_mid_episode_keeps_raised_at_stable() {
    use regcube::core::alarm::{self, AlarmLog, SharedSink};
    // Mirror of the row-backend rollover case: an episode spanning unit
    // rollovers keeps its original raised_at on the columnar backend.
    let log = alarm::shared(AlarmLog::new(16));
    let schema = CubeSchema::synthetic(2, 2, 2).unwrap();
    let mut engine = EngineConfig::new(
        schema,
        CuboidSpec::new(vec![0, 0]),
        CuboidSpec::new(vec![2, 2]),
    )
    .with_ticks_per_unit(4)
    .with_policy(ExceptionPolicy::slope_threshold(0.5))
    .with_backend(Backend::Columnar)
    .with_sinks([log.clone() as SharedSink])
    .build()
    .unwrap();

    for unit in 0..4i64 {
        let slope = if unit < 3 { 2.0 } else { 0.0 };
        for t in (unit * 4)..(unit * 4 + 4) {
            let v = 1.0 + slope * (t - unit * 4) as f64;
            engine.ingest(&RawRecord::new(vec![0, 0], t, v)).unwrap();
        }
        engine.close_unit().unwrap();
        let log = log.lock().unwrap();
        if unit < 3 {
            assert!(log.open_count() > 0, "unit {unit}");
            for episode in log.open_episodes() {
                assert_eq!(
                    episode.raised_at, 0,
                    "rollover must not restart the episode: {episode}"
                );
            }
        }
    }
    let log = log.lock().unwrap();
    assert_eq!(log.open_count(), 0, "the calm unit closed everything");
    for episode in log.closed_episodes() {
        assert_eq!(episode.raised_at, 0);
        assert_eq!(episode.cleared_at, Some(3));
    }
}

#[test]
fn columnar_rollover_excludes_stale_shards() {
    // Sharded columnar: a rollover unit that activates only one shard's
    // key range must not leak the other shards' old-window cells into
    // the merged cube (mirror of the row-backend stale-shard case).
    let schema = CubeSchema::synthetic(2, 2, 2).unwrap();
    let layers = CriticalLayers::new(
        &schema,
        CuboidSpec::new(vec![0, 0]),
        CuboidSpec::new(vec![2, 2]),
    )
    .unwrap();
    let policy = ExceptionPolicy::slope_threshold(0.4);
    let mut engine = ShardedEngine::columnar(schema, layers, policy, 7).unwrap();

    let mut first = Vec::new();
    for a in 0..4u32 {
        for b in 0..4u32 {
            let z = TimeSeries::from_fn(0, 9, |t| 1.0 + (a + b) as f64 / 10.0 * t as f64).unwrap();
            first.push(MTuple::new(vec![a, b], Isb::fit(&z).unwrap()));
        }
    }
    engine.ingest_unit(&first).unwrap();
    assert_eq!(engine.result().m_layer_cells(), 16);

    let next = vec![MTuple::new(vec![1, 2], Isb::new(10, 19, 1.0, 0.7).unwrap())];
    let delta = engine.ingest_unit(&next).unwrap();
    assert!(delta.opened_unit);
    assert_eq!(delta.unit, 1);
    assert_eq!(engine.result().m_layer_cells(), 1, "old unit replaced");
    assert_eq!(engine.result().o_table().len(), 1);
    // Every exception the closed window held either recurs or was
    // reported cleared with the rollover.
    for (cuboid, key, _) in engine.result().iter_exceptions() {
        assert!(engine
            .result()
            .exceptions_in(cuboid)
            .is_some_and(|t| t.contains_key(key)));
    }
}

#[test]
fn forced_scalar_fallback_survives_the_stale_shard_rollover() {
    use regcube::core::columnar::ColumnarCubingEngine;
    use regcube::core::KernelMode;
    // Kernel dispatch is a pure perf decision: with the chunked kernels
    // forced off (the REGCUBE_SCALAR_KERNELS=1 path, injected here
    // programmatically so parallel tests stay race-free), the sharded
    // columnar engine weathers the same stale-shard rollover with a
    // bit-identical cube — and honestly reports zero kernel rows.
    let schema = CubeSchema::synthetic(2, 2, 2).unwrap();
    let layers = CriticalLayers::new(
        &schema,
        CuboidSpec::new(vec![0, 0]),
        CuboidSpec::new(vec![2, 2]),
    )
    .unwrap();
    let policy = ExceptionPolicy::slope_threshold(0.4);
    let mut auto =
        ShardedEngine::columnar(schema.clone(), layers.clone(), policy.clone(), 7).unwrap();
    let mut scalar = ShardedEngine::with_factory(schema, layers, policy, 7, |s, l, p| {
        ColumnarCubingEngine::new(s, l, p).map(|e| e.with_kernel_mode(KernelMode::Scalar))
    })
    .unwrap();

    let mut first = Vec::new();
    for a in 0..4u32 {
        for b in 0..4u32 {
            let z = TimeSeries::from_fn(0, 9, |t| 1.0 + (a + b) as f64 / 10.0 * t as f64).unwrap();
            first.push(MTuple::new(vec![a, b], Isb::fit(&z).unwrap()));
        }
    }
    let next = vec![MTuple::new(vec![1, 2], Isb::new(10, 19, 1.0, 0.7).unwrap())];
    for batch in [&first, &next] {
        let da = auto.ingest_unit(batch).unwrap();
        let ds = scalar.ingest_unit(batch).unwrap();
        assert_eq!(da.appeared, ds.appeared);
        assert_eq!(da.cleared, ds.cleared);
    }
    assert_eq!(scalar.result().m_layer_cells(), 1, "old unit replaced");
    for (table, other) in [
        (auto.result().m_table(), scalar.result().m_table()),
        (auto.result().o_table(), scalar.result().o_table()),
    ] {
        assert_eq!(table.len(), other.len());
        for (key, m) in table {
            let s = other.get(key).unwrap();
            assert_eq!(m.slope().to_bits(), s.slope().to_bits(), "{key}");
            assert_eq!(m.base().to_bits(), s.base().to_bits(), "{key}");
        }
    }
    // Dispatch counters: the forced engine never touched the kernels,
    // and both engines partition rows_folded across the two counters.
    assert_eq!(scalar.stats().rows_folded_simd, 0);
    assert!(scalar.stats().rows_folded_scalar > 0);
    for engine in [&auto, &scalar] {
        let s = engine.stats();
        assert_eq!(s.rows_folded, s.rows_folded_simd + s.rows_folded_scalar);
    }
}

#[test]
fn zero_and_single_member_schemas_work_end_to_end() {
    // The smallest legal cube: one dimension, one level, fanout 1 —
    // exactly one m-cell, lattice of 2 cuboids (m and apex o).
    let schema = CubeSchema::synthetic(1, 1, 1).unwrap();
    let layers =
        CriticalLayers::new(&schema, CuboidSpec::new(vec![0]), CuboidSpec::new(vec![1])).unwrap();
    let z = TimeSeries::from_fn(0, 9, |t| 2.0 * t as f64).unwrap();
    let tuples = vec![MTuple::new(vec![0], Isb::fit(&z).unwrap())];
    for result in [
        mo_cubing::compute(&schema, &layers, &ExceptionPolicy::always(), &tuples).unwrap(),
        popular_path::compute(&schema, &layers, &ExceptionPolicy::always(), None, &tuples).unwrap(),
    ] {
        assert_eq!(result.m_layer_cells(), 1);
        assert_eq!(result.o_layer_cells(), 1);
        let apex = result.o_table().get(&CellKey::new(vec![0])).unwrap();
        assert!((apex.slope() - 2.0).abs() < 1e-9);
    }
}

#[test]
fn cleared_frontier_retracts_drilled_descendants_even_after_nan_noise() {
    // Frontier-dirty drilling under adversarial input: a hot stream
    // builds a drilled off-path subtree; a NaN batch must neither panic
    // nor extend any frontier (NaN scores are non-exceptional); and a
    // canceling merge that clears the frontier cell must retract every
    // retained drilled descendant, leaving no stale exception behind.
    let schema = CubeSchema::synthetic(2, 2, 2).unwrap();
    let layers = CriticalLayers::new(
        &schema,
        CuboidSpec::new(vec![0, 0]),
        CuboidSpec::new(vec![2, 2]),
    )
    .unwrap();
    let policy = ExceptionPolicy::slope_threshold(0.4);
    let mut engine = PopularPathEngine::new(schema.clone(), layers.clone(), policy, None).unwrap();

    let hot = MTuple::new(vec![0, 0], Isb::new(0, 9, 1.0, 0.6).unwrap());
    let quiet = MTuple::new(vec![3, 3], Isb::new(0, 9, 1.0, 0.01).unwrap());
    engine.ingest_unit(&[hot, quiet]).unwrap();
    assert!(engine.drill_state().drilled_cuboids() > 0);
    assert!(engine.result().total_exception_cells() > 0);

    // NaN on an unrelated cell: folds through without panicking and
    // without qualifying anything new (NaN >= t is false).
    let broken = MTuple::new(vec![2, 1], Isb::new(0, 9, f64::NAN, f64::NAN).unwrap());
    let nan_delta = engine.ingest_unit(&[broken]).unwrap();
    assert!(
        !nan_delta
            .appeared
            .iter()
            .any(|(_, k)| k.ids() == [1, 0] || k.ids() == [2, 1]),
        "a NaN stream must not raise exceptions of its own"
    );

    // The canceling sibling clears the hot chain's frontier cells; the
    // drilled subtree must be retracted with them.
    let cancel = MTuple::new(vec![0, 0], Isb::new(0, 9, -1.0, -0.6).unwrap());
    let delta = engine.ingest_unit(&[cancel]).unwrap();
    assert!(!delta.cleared.is_empty(), "the chain reports cleared cells");
    assert_eq!(engine.drill_state().drilled_cuboids(), 0, "subtree gone");
    assert_eq!(engine.result().total_exception_cells(), 0);
    // Drilling the apex afterwards finds no supporters.
    let hits = regcube::core::drill::drill_descendants(
        &schema,
        engine.result(),
        layers.o_layer(),
        &CellKey::new(vec![0, 0]),
    );
    assert!(hits.is_empty(), "{hits:?}");
}

#[test]
fn stalled_source_no_longer_blocks_closes_under_per_source_eviction() {
    // Failure injection on the watermark path: one producer stalls
    // mid-stream. A per-source low watermark (min over live sources)
    // with no eviction seizes the whole pipeline — no unit can close
    // while the laggard pins the minimum. With a finite `idle_units`
    // the dead source is evicted and the healthy producers keep
    // closing units.
    fn run(policy: WatermarkPolicy) -> (usize, u64) {
        let schema = CubeSchema::synthetic(2, 2, 2).unwrap();
        let mut engine = EngineConfig::new(
            schema,
            CuboidSpec::new(vec![0, 0]),
            CuboidSpec::new(vec![2, 2]),
        )
        .with_ticks_per_unit(4)
        .with_reordering(256, 1)
        .with_watermark_policy(policy)
        .build()
        .unwrap();
        let mut closed = 0usize;
        for t in 0..40i64 {
            let healthy = RawRecord::new(vec![0, 0], t, t as f64).with_source(0);
            engine.ingest(&healthy).unwrap();
            closed += engine.drain_ready().unwrap().len();
            // Source 1 dies after tick 7 (its watermark parks at unit 1).
            if t < 8 {
                let laggard = RawRecord::new(vec![1, 1], t, 1.0).with_source(1);
                engine.ingest(&laggard).unwrap();
                closed += engine.drain_ready().unwrap().len();
            }
        }
        (closed, engine.stats().sources_evicted)
    }

    // No eviction (an effectively infinite idle allowance): the dead
    // source pins the minimum at unit 1 forever, so with lateness 1
    // not a single unit closes in 10 units of healthy traffic.
    let (pinned_closed, pinned_evicted) = run(WatermarkPolicy::PerSource {
        idle_units: i64::MAX / 2,
    });
    assert_eq!(pinned_evicted, 0);
    assert_eq!(
        pinned_closed, 0,
        "an unevictable laggard must stall every close"
    );
    // With eviction: the laggard is dropped from the watermark once the
    // healthy frontier runs `idle_units` past it, and closes resume
    // behind the healthy source's own watermark.
    let (ps_closed, ps_evicted) = run(WatermarkPolicy::PerSource { idle_units: 2 });
    assert_eq!(ps_evicted, 1);
    assert!(
        ps_closed >= 7,
        "per-source eviction must unblock closes, got {ps_closed}"
    );
    // The global policy never blocks (the watermark is the max
    // frontier) — that is exactly why it silently sacrifices slow
    // sources instead; the per-source policy matches its throughput
    // here without giving the laggard up for lost while it is live.
    let (global_closed, global_evicted) = run(WatermarkPolicy::Global);
    assert_eq!(global_evicted, 0);
    assert!(global_closed >= 7);
}

#[test]
fn verdict_flipping_amendments_emit_matching_revisions_everywhere() {
    // A late amendment that flips a closed unit's verdict must produce
    // the matching typed `AlarmRevision` — and every consumer of alarm
    // state (the engine's live alarm set, the `AlarmLog` episodes, the
    // `DashboardSummary`) must agree with the amended frames.
    use regcube::core::alarm::{self, AlarmLog, AlarmRevision, DashboardSummary, SharedSink};

    const TPU: usize = 5;
    const LATENESS: i64 = 2;
    let log = alarm::shared(AlarmLog::new(64));
    let dash = alarm::shared(DashboardSummary::new());
    let schema = CubeSchema::synthetic(2, 2, 3).unwrap();
    let mut engine = EngineConfig::new(
        schema,
        CuboidSpec::new(vec![0, 0]),
        CuboidSpec::new(vec![2, 2]),
    )
    .with_policy(ExceptionPolicy::slope_threshold(0.8))
    .with_ticks_per_unit(TPU)
    .with_reordering(8, LATENESS)
    .with_sinks([log.clone() as SharedSink, dash.clone() as SharedSink])
    .build()
    .unwrap();

    // Unit 1 alarms (slope 0.9), unit 2 is quiet (slope 0.7); with
    // lateness 2, unit u closes while unit u + 3 is being fed.
    let slopes = [0.1, 0.9, 0.7, 0.1, 0.1, 0.1];
    let mut reports = Vec::new();
    for unit in 0..6i64 {
        let t0 = unit * TPU as i64;
        for t in t0..t0 + TPU as i64 {
            let v = 1.0 + slopes[unit as usize] * (t - t0) as f64;
            engine.ingest(&RawRecord::new(vec![0, 0], t, v)).unwrap();
            reports.extend(engine.drain_ready().unwrap());
        }
        if unit == 4 {
            // Unit 1 just closed with its alarm live on the frontier.
            assert_eq!(engine.snapshot().alarms().len(), 1);
            // Retraction: -1.0 on unit 1's last tick shifts its
            // warehoused slope 0.9 -> 0.7, below the threshold. The
            // frontier patch is immediate.
            engine
                .ingest(&RawRecord::new(vec![0, 0], 2 * TPU as i64 - 1, -1.0))
                .unwrap();
            reports.extend(engine.drain_ready().unwrap());
            assert_eq!(
                engine.snapshot().alarms().len(),
                0,
                "retraction must patch the live alarm set immediately"
            );
        }
        if unit == 5 {
            // Raise: +1.0 on closed-and-quiet unit 2's last tick lifts
            // its slope 0.7 -> 0.9, above the threshold.
            engine
                .ingest(&RawRecord::new(vec![0, 0], 3 * TPU as i64 - 1, 1.0))
                .unwrap();
            reports.extend(engine.drain_ready().unwrap());
            let snapshot = engine.snapshot();
            let alarms = snapshot.alarms();
            assert_eq!(alarms.len(), 1, "raise must patch the live alarm set");
            assert!((alarms[0].score - 0.9).abs() < 1e-9, "{}", alarms[0].score);
        }
    }
    reports.extend(engine.flush().unwrap());

    // Exactly the two flips, typed, with the right units and scores.
    let revisions: Vec<&AlarmRevision> = reports.iter().flat_map(|r| &r.alarm_revisions).collect();
    assert_eq!(revisions.len(), 2, "{revisions:?}");
    match revisions[0] {
        AlarmRevision::Retracted {
            unit,
            old_score,
            new_score,
            ..
        } => {
            assert_eq!(*unit, 1);
            assert!((old_score - 0.9).abs() < 1e-9);
            assert!((new_score - 0.7).abs() < 1e-9);
        }
        other => panic!("expected a retraction, got {other}"),
    }
    match revisions[1] {
        AlarmRevision::Raised {
            unit,
            old_score,
            new_score,
            ..
        } => {
            assert_eq!(*unit, 2);
            assert!((old_score - 0.7).abs() < 1e-9);
            assert!((new_score - 0.9).abs() < 1e-9);
        }
        other => panic!("expected a raise, got {other}"),
    }

    // The dashboard consumed both revisions.
    assert_eq!(dash.lock().unwrap().revisions_seen(), 2);
    // The episode log: revisions address o-layer slots, and episode
    // history tracks exception cells (intermediate cuboids), so the
    // retraction has no apex episode to patch — but the raise opens
    // one at the live frontier, scored by the amended measure.
    let log = log.lock().unwrap();
    assert_eq!(log.revised_total(), 1);
    let apex = log
        .open_episodes()
        .into_iter()
        .find(|e| e.cell.ids() == [0, 0] && e.cuboid.total_depth() == 0)
        .expect("the raise must open a frontier episode for the apex");
    assert_eq!(apex.raised_at, 2);
    assert!((apex.peak_score - 0.9).abs() < 1e-9);
    assert_eq!(engine.stats().late_amendments, 2);
}
