//! The crash-recovery drill CI runs on every push (and again with
//! `REGCUBE_ARENA_BACKEND=1`): run a jittered multi-source workload to
//! the midpoint, checkpoint, throw the engine away as a crash would,
//! restore from the file, finish — and require the revived run
//! byte-identical to the uninterrupted one: every report, alarm,
//! amendment, revision, drill and counter.

use regcube::prelude::*;
use regcube::stream::UnitReport;
use std::fmt::Write as _;

const TPU: usize = 4;

/// A watermark engine with per-source eviction; the backend is left to
/// the environment so the same drill covers row and arena tables.
fn config() -> EngineConfig {
    let schema = CubeSchema::synthetic(2, 2, 2).unwrap();
    EngineConfig::new(
        schema,
        CuboidSpec::new(vec![0, 0]),
        CuboidSpec::new(vec![2, 2]),
    )
    .with_policy(ExceptionPolicy::slope_threshold(1.0))
    .with_tilt(TiltSpec::new(vec![("unit", 4), ("coarse", 3)]).unwrap())
    .with_ticks_per_unit(TPU)
    .with_reordering(32, 2)
    .with_watermark_policy(WatermarkPolicy::PerSource { idle_units: 4 })
}

/// A deterministic jittered feed: shuffled-within-lateness ticks,
/// rotating sources, a value mix that keeps several cells alarming,
/// and one beyond-lateness straggler that must be counted as dropped.
fn records() -> Vec<RawRecord> {
    let mut out: Vec<RawRecord> = (0..160i64)
        .map(|i| {
            let ids = vec![(i % 4) as u32, ((i / 2) % 4) as u32];
            let jitter = [0, 3, 1, 5, 2, 0, 4, 1][(i % 8) as usize];
            let value = ((i % 11) - 5) as f64 * 0.7 + (i % 3) as f64;
            RawRecord::new(ids, (i / 2 - jitter).max(0), value).with_source((i % 3) as u32)
        })
        .collect();
    // An ancient record lands late in the stream: a counted drop.
    out.insert(150, RawRecord::new(vec![0, 0], 0, 42.0).with_source(0));
    out
}

/// Serializes everything a report promises, floats by exact bits.
fn render(reports: &[UnitReport]) -> String {
    let mut out = String::new();
    for r in reports {
        writeln!(
            out,
            "unit {} m_cells={} exc={} dropped={} epoch={}",
            r.unit, r.m_cells, r.exception_cells, r.late_dropped, r.snapshot_epoch
        )
        .unwrap();
        for a in &r.alarms {
            writeln!(
                out,
                "  alarm {} score={:016x} slope={:016x}",
                a.key,
                a.score.to_bits(),
                a.measure.slope().to_bits()
            )
            .unwrap();
        }
        for amendment in &r.late_amendments {
            writeln!(out, "  {amendment}").unwrap();
        }
        for revision in &r.alarm_revisions {
            writeln!(out, "  {revision}").unwrap();
        }
    }
    out
}

fn drills(engine: &regcube::stream::OnlineEngine) -> String {
    let mut out = String::new();
    for ids in [[0u32, 0], [1, 2], [3, 3]] {
        let key = CellKey::new(ids.to_vec());
        for hit in engine.drill_history(&key).unwrap_or_default() {
            writeln!(
                out,
                "{key} {} u{} slope={:016x} score={:016x}",
                hit.level_name,
                hit.slot_unit,
                hit.measure.slope().to_bits(),
                hit.score.to_bits()
            )
            .unwrap();
        }
    }
    out
}

#[test]
fn interrupted_run_finishes_byte_identical_to_uninterrupted() {
    let feed = records();
    let half = feed.len() / 2;

    // Uninterrupted reference.
    let mut reference = config().build().unwrap();
    let mut ref_reports = Vec::new();
    for r in &feed {
        reference.ingest(r).unwrap();
        ref_reports.extend(reference.drain_ready().unwrap());
    }
    ref_reports.extend(reference.flush().unwrap());

    // Interrupted run: midpoint checkpoint, crash, restore, finish.
    let dir = std::env::temp_dir().join(format!("regcube-crash-drill-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("drill.rgck");
    let mut revived_reports = Vec::new();
    {
        let mut victim = config().build().unwrap();
        for r in &feed[..half] {
            victim.ingest(r).unwrap();
            revived_reports.extend(victim.drain_ready().unwrap());
        }
        victim.write_checkpoint(&path).unwrap();
        // The "crash": the engine drops here with open units, a primed
        // reorder buffer and live per-source watermarks.
    }
    let mut revived = config().restore(&path).unwrap();
    for r in &feed[half..] {
        revived.ingest(r).unwrap();
        revived_reports.extend(revived.drain_ready().unwrap());
    }
    revived_reports.extend(revived.flush().unwrap());

    assert_eq!(
        render(&ref_reports),
        render(&revived_reports),
        "reports diverged after recovery"
    );
    assert_eq!(
        reference.snapshot().canonical_text(),
        revived.snapshot().canonical_text(),
        "final snapshots diverged after recovery"
    );
    assert_eq!(drills(&reference), drills(&revived), "drills diverged");

    let (a, b) = (reference.stats(), revived.stats());
    assert_eq!(a.late_dropped, b.late_dropped);
    assert!(a.late_dropped >= 1, "the ancient straggler must be counted");
    assert_eq!(a.late_amendments, b.late_amendments);
    assert_eq!(a.sources_evicted, b.sources_evicted);
    assert_eq!(a.watermark_held_units, b.watermark_held_units);

    // And the file survives a reread (it was not consumed or mangled).
    let again = config().restore(&path);
    assert!(again.is_ok());
    std::fs::remove_dir_all(&dir).ok();
}
