//! Golden-file regression test: a deterministic quickstart-style
//! pipeline — multi-unit stream, cubing, o-layer alarms, alarm sinks —
//! serialized in full and pinned against `tests/golden/pipeline.txt`.
//!
//! The serialization covers every per-unit report (alarms, deltas), the
//! final retained exception set, the alarm log's episode list, the
//! escalations and the dashboard, so a refactor that silently shifts
//! any of them fails here with a line diff. The run is repeated at
//! shard counts 1 and 3 **and on both table-layout backends** (row and
//! columnar) and must serialize **byte-identically** every time — the
//! sorted-delta/merge contract and the backend-equivalence contract,
//! pinned end to end.
//!
//! Regenerate the snapshot after an intended behavior change with:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test golden
//! ```

use regcube::core::alarm::{self, AlarmLog, DashboardSummary, SharedSink, ThresholdEscalator};
use regcube::prelude::*;
use regcube::stream::online::EngineConfig;
use std::fmt::Write as _;
use std::path::PathBuf;

const TICKS_PER_UNIT: usize = 5;
const UNITS: i64 = 6;

/// The monitored streams: a quiet field, one persistent runaway, one
/// flapping cell and one late riser.
fn slope_for(cell: (u32, u32), unit: i64) -> f64 {
    match cell {
        // Persistent: hot from unit 1, recovers at unit 4.
        (1, 2) if (1..4).contains(&unit) => 1.6,
        (1, 2) => 0.02,
        // Flapping: hot on even units only.
        (8, 8) => {
            if unit % 2 == 0 {
                1.2
            } else {
                0.01
            }
        }
        // Late riser: hot for the last two units.
        (4, 7) => {
            if unit >= 4 {
                2.5
            } else {
                0.03
            }
        }
        _ => 0.02,
    }
}

/// Runs the pipeline at the given shard count and cubing backend, and
/// serializes everything observable: reports, deltas, final cube,
/// episodes, escalations, dashboard.
fn run_pipeline(shards: usize, backend: Backend) -> String {
    let cells: [(u32, u32); 7] = [(0, 0), (1, 2), (2, 5), (3, 6), (4, 7), (7, 1), (8, 8)];
    let log = alarm::shared(AlarmLog::new(64));
    let escalator = alarm::shared(ThresholdEscalator::new(2, 3, 4));
    let dashboard = alarm::shared(DashboardSummary::new());

    let schema = CubeSchema::synthetic(2, 2, 3).unwrap();
    let mut engine = EngineConfig::new(
        schema,
        CuboidSpec::new(vec![0, 0]),
        CuboidSpec::new(vec![2, 2]),
    )
    .with_policy(ExceptionPolicy::slope_threshold(0.8))
    .with_tilt(TiltSpec::new(vec![("unit", 4), ("coarse", 3)]).unwrap())
    .with_ticks_per_unit(TICKS_PER_UNIT)
    .with_backend(backend)
    .with_shards(shards)
    .with_sinks([
        log.clone() as SharedSink,
        escalator.clone() as SharedSink,
        dashboard.clone() as SharedSink,
    ])
    .build()
    .unwrap();

    let mut out = String::new();
    for unit in 0..UNITS {
        let t0 = unit * TICKS_PER_UNIT as i64;
        for t in t0..t0 + TICKS_PER_UNIT as i64 {
            for &(a, b) in &cells {
                let value = 1.0 + slope_for((a, b), unit) * (t - t0) as f64;
                engine
                    .ingest(&RawRecord::new(vec![a, b], t, value))
                    .unwrap();
            }
        }
        let report = engine.close_unit().unwrap();
        writeln!(
            out,
            "unit {} m_cells={} exception_cells={}",
            report.unit, report.m_cells, report.exception_cells
        )
        .unwrap();
        for alarm in &report.alarms {
            writeln!(
                out,
                "  ALARM {} score={:.6} threshold={:.6} slope={:.6}",
                alarm.key,
                alarm.score,
                alarm.threshold,
                alarm.measure.slope()
            )
            .unwrap();
        }
        let delta = report.cube_delta.as_ref().unwrap();
        for (cuboid, cell) in &delta.appeared {
            writeln!(out, "  appeared {cuboid}{cell}").unwrap();
        }
        for (cuboid, cell) in &delta.cleared {
            writeln!(out, "  cleared {cuboid}{cell}").unwrap();
        }
        assert!(report.sink_errors.is_empty(), "built-in sinks never fail");
    }

    // The full retained exception set of the final cube, sorted.
    writeln!(out, "final exceptions").unwrap();
    let cube = engine.cube().unwrap();
    let mut exceptions: Vec<(CuboidSpec, CellKey, Isb)> = cube
        .iter_exceptions()
        .map(|(c, k, m)| (c.clone(), k.clone(), *m))
        .collect();
    exceptions.sort_by(|a, b| (&a.0, &a.1).cmp(&(&b.0, &b.1)));
    for (cuboid, cell, isb) in &exceptions {
        writeln!(
            out,
            "  {cuboid}{cell} slope={:.6} base={:.6}",
            isb.slope(),
            isb.base()
        )
        .unwrap();
    }

    // The alarm log's full episode history.
    writeln!(out, "episodes").unwrap();
    let log = log.lock().unwrap();
    for e in log.open_episodes() {
        writeln!(out, "  open {e}").unwrap();
    }
    for e in log.closed_episodes() {
        writeln!(out, "  closed {e}").unwrap();
    }
    writeln!(
        out,
        "  totals opened={} closed={} suppressed={}",
        log.opened_total(),
        log.closed_total(),
        log.suppressed()
    )
    .unwrap();

    writeln!(out, "escalations").unwrap();
    let escalator = escalator.lock().unwrap();
    for e in escalator.escalations() {
        writeln!(
            out,
            "  unit {} {}{} {:?}",
            e.unit, e.cuboid, e.cell, e.reason
        )
        .unwrap();
    }

    writeln!(out, "dashboard").unwrap();
    let dashboard = dashboard.lock().unwrap();
    writeln!(
        out,
        "  units={} active={} appeared={} cleared={}",
        dashboard.units_seen(),
        dashboard.active_cells(),
        dashboard.appeared_total(),
        dashboard.cleared_total()
    )
    .unwrap();
    for (depth, count) in dashboard.depth_counts() {
        writeln!(out, "  depth {depth}: {count}").unwrap();
    }
    for (cuboid, cell, score) in dashboard.hottest(5) {
        writeln!(out, "  hot {cuboid}{cell} score={score:.6}").unwrap();
    }
    out
}

/// The lateness phase: the same analysis through a watermark-reordering
/// engine with per-source eviction, fed a silent source, in-lateness
/// stragglers whose amendments **flip exception verdicts** (one
/// retraction, one raise), and one beyond-lateness drop. Serializes the
/// reports with their amendments and typed alarm revisions, plus the
/// lateness counters — pinning the whole robustness path byte-for-byte.
fn run_lateness_pipeline(shards: usize, backend: Backend) -> String {
    const LATENESS: i64 = 2;
    // Two m-cells only: every o-layer/ancestor aggregate sums at most
    // two measures, so shard merge order cannot perturb a bit.
    let cell_a: [u32; 2] = [0, 0];
    let cell_b: [u32; 2] = [1, 2];
    // Apex slope per unit = slope_a + slope_b against threshold 0.8:
    // unit 1 alarms at 0.9 (then a late -1.0 retracts it to 0.7),
    // unit 2 is quiet at 0.7 (then a late +1.0 raises it to 0.9).
    let slopes: [(f64, f64); 6] = [
        (0.1, 0.1),
        (0.5, 0.4),
        (0.35, 0.35),
        (0.1, 0.1),
        (0.1, 0.1),
        (0.1, 0.1),
    ];

    let schema = CubeSchema::synthetic(2, 2, 3).unwrap();
    let mut engine = EngineConfig::new(
        schema,
        CuboidSpec::new(vec![0, 0]),
        CuboidSpec::new(vec![2, 2]),
    )
    .with_policy(ExceptionPolicy::slope_threshold(0.8))
    .with_tilt(TiltSpec::new(vec![("unit", 4), ("coarse", 3)]).unwrap())
    .with_ticks_per_unit(TICKS_PER_UNIT)
    .with_backend(backend)
    .with_shards(shards)
    .with_reordering(8, LATENESS)
    .with_watermark_policy(WatermarkPolicy::PerSource { idle_units: 2 })
    .build()
    .unwrap();

    let mut out = String::new();
    let mut reports = Vec::new();
    let feed = |engine: &mut regcube::stream::OnlineEngine,
                reports: &mut Vec<regcube::stream::UnitReport>,
                record: &RawRecord| {
        engine.ingest(record).unwrap();
        reports.extend(engine.drain_ready().unwrap());
    };

    for unit in 0..UNITS {
        let (sa, sb) = slopes[unit as usize];
        let t0 = unit * TICKS_PER_UNIT as i64;
        for t in t0..t0 + TICKS_PER_UNIT as i64 {
            // Source 2 speaks exactly once (cell A's first record) and
            // then falls silent: it pins the per-source low watermark
            // until the frontier passes `idle_units` and evicts it.
            let a_source = if t == 0 { 2 } else { 0 };
            let a = RawRecord::new(cell_a.to_vec(), t, 1.0 + sa * (t - t0) as f64)
                .with_source(a_source);
            let b = RawRecord::new(cell_b.to_vec(), t, 1.0 + sb * (t - t0) as f64).with_source(1);
            feed(&mut engine, &mut reports, &a);
            feed(&mut engine, &mut reports, &b);
        }
        // Stragglers, injected right after their target unit closed
        // (unit `u` closes once the low watermark passes
        // `u + LATENESS`, so unit 1 is closed-and-amendable here at the
        // end of unit 4, unit 2 at the end of unit 5).
        if unit == 4 {
            // Retract unit 1's alarm: -1.0 on cell A's last unit-1 tick
            // drops its warehoused slope by 0.2, the apex to 0.7.
            let tick = 2 * TICKS_PER_UNIT as i64 - 1;
            feed(
                &mut engine,
                &mut reports,
                &RawRecord::new(cell_a.to_vec(), tick, -1.0),
            );
            // The frontier patch is immediate: unit 1 is the engine's
            // last closed unit, so its live alarm set (what snapshots
            // serve) drops the retracted alarm right now.
            writeln!(
                out,
                "alarms after retraction: {}",
                engine.snapshot().alarms().len()
            )
            .unwrap();
        }
        if unit == 5 {
            // Raise one on quiet unit 2: +1.0 on the same slot position
            // lifts the apex from 0.7 to 0.9.
            let tick = 3 * TICKS_PER_UNIT as i64 - 1;
            feed(
                &mut engine,
                &mut reports,
                &RawRecord::new(cell_a.to_vec(), tick, 1.0),
            );
            writeln!(
                out,
                "alarms after raise: {}",
                engine.snapshot().alarms().len()
            )
            .unwrap();
            // And one record from before the allowed lateness: counted
            // as dropped, never applied.
            feed(
                &mut engine,
                &mut reports,
                &RawRecord::new(cell_a.to_vec(), 2, 9.0),
            );
        }
    }
    reports.extend(engine.flush().unwrap());

    writeln!(out, "lateness pipeline").unwrap();
    for report in &reports {
        writeln!(
            out,
            "unit {} m_cells={} late_dropped={}",
            report.unit, report.m_cells, report.late_dropped
        )
        .unwrap();
        for alarm in &report.alarms {
            writeln!(
                out,
                "  ALARM {} score={:.6} threshold={:.6} slope={:.6}",
                alarm.key,
                alarm.score,
                alarm.threshold,
                alarm.measure.slope()
            )
            .unwrap();
        }
        for amendment in &report.late_amendments {
            writeln!(out, "  {amendment}").unwrap();
        }
        for revision in &report.alarm_revisions {
            writeln!(out, "  {revision}").unwrap();
        }
    }
    let stats = engine.stats();
    writeln!(
        out,
        "lateness totals dropped={} amendments={} evicted={} held={}",
        stats.late_dropped,
        stats.late_amendments,
        stats.sources_evicted,
        stats.watermark_held_units
    )
    .unwrap();
    // The frontier patch: after the retraction/raise, the engine's live
    // alarm set (what snapshots serve) must agree with the amended
    // frames.
    writeln!(out, "final alarms").unwrap();
    for alarm in engine.snapshot().alarms() {
        writeln!(
            out,
            "  {} score={:.6} threshold={:.6}",
            alarm.key, alarm.score, alarm.threshold
        )
        .unwrap();
    }
    out
}

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
        .join("pipeline.txt")
}

/// A line-oriented diff of expected vs. actual, readable in CI logs.
fn line_diff(expected: &str, actual: &str) -> String {
    let exp: Vec<&str> = expected.lines().collect();
    let act: Vec<&str> = actual.lines().collect();
    let mut out = String::new();
    let mut shown = 0usize;
    for i in 0..exp.len().max(act.len()) {
        let e = exp.get(i).copied();
        let a = act.get(i).copied();
        if e != a {
            if shown == 0 {
                out.push_str("first mismatching lines (expected vs actual):\n");
            }
            writeln!(out, "  line {:>4} - {}", i + 1, e.unwrap_or("<missing>")).unwrap();
            writeln!(out, "  line {:>4} + {}", i + 1, a.unwrap_or("<missing>")).unwrap();
            shown += 1;
            if shown >= 20 {
                out.push_str("  ... (more differences truncated)\n");
                break;
            }
        }
    }
    writeln!(
        out,
        "expected {} lines, actual {} lines",
        exp.len(),
        act.len()
    )
    .unwrap();
    out
}

#[test]
fn pipeline_matches_golden_snapshot() {
    let actual = run_pipeline(1, Backend::Row) + &run_lateness_pipeline(1, Backend::Row);

    // The identical pipeline through 3 shards, and through the columnar
    // and arena backends at both shard counts, must serialize
    // byte-for-byte the same — merged deltas, episodes and all.
    for (label, shards, backend) in [
        ("shards=3", 3, Backend::Row),
        ("columnar", 1, Backend::Columnar),
        ("columnar shards=3", 3, Backend::Columnar),
        ("arena", 1, Backend::Arena),
        ("arena shards=3", 3, Backend::Arena),
    ] {
        let other = run_pipeline(shards, backend) + &run_lateness_pipeline(shards, backend);
        assert!(
            actual == other,
            "row shards=1 and {label} diverged:\n{}",
            line_diff(&actual, &other)
        );
    }

    let path = golden_path();
    if std::env::var("UPDATE_GOLDEN").is_ok_and(|v| v == "1") {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &actual).unwrap();
        eprintln!("updated golden snapshot at {}", path.display());
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read golden snapshot {} ({e}); regenerate with UPDATE_GOLDEN=1",
            path.display()
        )
    });
    assert!(
        expected == actual,
        "pipeline output diverged from {} — if the change is intended, \
         regenerate with `UPDATE_GOLDEN=1 cargo test --test golden`\n{}",
        path.display(),
        line_diff(&expected, &actual)
    );
}
