//! Cross-crate end-to-end tests: generator → both cubing algorithms →
//! drilling; raw records → online engine → alarms → tilt history.

use regcube::core::result::Algorithm;
use regcube::prelude::*;
use regcube::stream::{run_engine, StreamEvent};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};

fn workload(seed: u64) -> (CubeSchema, CriticalLayers, Vec<MTuple>) {
    let spec = DatasetSpec::new(3, 2, 4, 1_500).unwrap().with_seed(seed);
    let dataset = Dataset::generate(spec).unwrap();
    let layers = CriticalLayers::new(
        &dataset.schema,
        dataset.o_layer.clone(),
        dataset.m_layer.clone(),
    )
    .unwrap();
    let tuples = dataset
        .tuples
        .iter()
        .map(|t| MTuple::new(t.ids.clone(), t.isb))
        .collect();
    (dataset.schema.clone(), layers, tuples)
}

#[test]
fn generated_datasets_flow_through_both_algorithms() {
    let (schema, layers, tuples) = workload(1);
    let policy = ExceptionPolicy::slope_threshold(0.5);

    let a1 = mo_cubing::compute(&schema, &layers, &policy, &tuples).unwrap();
    let a2 = popular_path::compute(&schema, &layers, &policy, None, &tuples).unwrap();

    assert_eq!(a1.m_layer_cells(), a2.m_layer_cells());
    assert_eq!(a1.o_layer_cells(), a2.o_layer_cells());
    assert!(a2.total_exception_cells() <= a1.total_exception_cells());
    assert!(a1.stats().cells_computed >= a2.stats().cells_computed);

    // Every o-layer measure agrees to high precision.
    for (key, m1) in a1.o_table() {
        let m2 = a2.o_table().get(key).expect("same o-layer cells");
        assert!(m1.approx_eq(m2, 1e-7), "{key}: {m1} vs {m2}");
    }
}

#[test]
fn drilling_from_alarms_reaches_the_m_layer() {
    let (schema, layers, tuples) = workload(2);
    let mut cube = RegressionCube::new(
        schema,
        layers.o_layer().clone(),
        layers.m_layer().clone(),
        ExceptionPolicy::slope_threshold(0.4),
    )
    .unwrap();
    cube.recompute(&tuples).unwrap();

    let alarms = cube.alarms().unwrap();
    assert!(!alarms.is_empty(), "the default mixture produces hot cells");
    let (key, _) = alarms[0];
    let key = key.clone();
    let hits = cube.drill_descendants(layers.o_layer(), &key).unwrap();
    assert!(
        hits.iter().any(|h| h.cuboid == *layers.m_layer()),
        "drilling must surface m-layer supporters"
    );
    // All hits really are descendants of the drilled cell.
    for hit in &hits {
        let projected = regcube::olap::cell::project_key(
            cube.schema(),
            &hit.cuboid,
            hit.key.ids(),
            layers.o_layer(),
        );
        assert_eq!(projected.as_slice(), key.ids());
    }
}

#[test]
fn online_pipeline_replays_generated_streams() {
    // Build raw records from a generated dataset and push them through
    // the channel-driven engine with the popular-path algorithm.
    let spec = DatasetSpec::new(2, 2, 3, 200)
        .unwrap()
        .with_series_len(24)
        .with_seed(3);
    let dataset = Dataset::generate(spec).unwrap();
    let ticks_per_unit = 8usize; // 24 ticks = 3 units

    // The sim glue expands the fitted streams tick-major, ready to replay.
    let source = regcube::sim::dataset_source(&dataset, ticks_per_unit).unwrap();
    assert_eq!(
        regcube::sim::dataset_records(&dataset).len(),
        dataset.tuples.len() * 24
    );

    let engine = Arc::new(Mutex::new(
        regcube::stream::online::EngineConfig::new(
            dataset.schema.clone(),
            dataset.o_layer.clone(),
            dataset.m_layer.clone(),
        )
        .with_policy(ExceptionPolicy::slope_threshold(0.8))
        .with_tilt(TiltSpec::new(vec![("unit", 3), ("epoch", 4)]).unwrap())
        .with_ticks_per_unit(ticks_per_unit)
        .with_algorithm(Algorithm::PopularPath)
        .build()
        .unwrap(),
    ));

    let (tx, rx) = mpsc::channel::<StreamEvent>();
    let producer = std::thread::spawn(move || source.send_all(&tx));
    let reports = run_engine(&engine, &rx).unwrap();
    producer.join().unwrap().unwrap();

    assert_eq!(reports.len(), 3);
    for r in &reports {
        assert_eq!(r.m_cells, dataset.tuples.len());
    }
    let engine = engine.lock().unwrap();
    assert_eq!(engine.units_closed(), 3);
    // Tilt frames cover all three units contiguously for every stream.
    let sample = CellKey::new(dataset.tuples[0].ids.clone());
    let frame = engine.tilt_frame(&sample).expect("frame exists");
    let merged = frame.merge_all().unwrap().unwrap();
    assert_eq!(merged.interval(), (0, 23));
}

#[test]
fn per_cuboid_policy_scopes_apply_end_to_end() {
    let (schema, layers, tuples) = workload(4);
    // Make one specific between-cuboid infinitely strict; it must retain
    // no exceptions while others do.
    let strict = layers
        .lattice()
        .enumerate()
        .into_iter()
        .find(|c| c != layers.m_layer() && c != layers.o_layer())
        .unwrap();
    let policy = ExceptionPolicy::slope_threshold(0.3)
        .with_cuboid_threshold(strict.clone(), f64::INFINITY)
        .unwrap();
    let cube = mo_cubing::compute(&schema, &layers, &policy, &tuples).unwrap();
    assert!(cube.exceptions_in(&strict).is_none());
    assert!(cube.total_exception_cells() > 0);
}

#[test]
fn tilt_and_cube_compose_over_long_streams() {
    // Feed 40 units into a small frame and verify the merged regression
    // matches a direct fit over the retained span.
    let mut frame: TiltFrame<Isb> =
        TiltFrame::new(TiltSpec::new(vec![("u", 4), ("v", 3), ("w", 2)]).unwrap());
    let full = TimeSeries::from_fn(0, 40 * 5 - 1, |t| 2.0 + 0.03 * t as f64).unwrap();
    for u in 0..40 {
        let w = full.window(u * 5, u * 5 + 4).unwrap();
        frame.push(Isb::fit(&w).unwrap()).unwrap();
    }
    let merged = frame.merge_all().unwrap().unwrap();
    let direct = Isb::fit(&full.window(merged.start(), merged.end()).unwrap()).unwrap();
    assert!(merged.approx_eq(&direct, 1e-8));
    assert!(frame.retained_slots() <= 9);
}

#[test]
fn cubing_works_on_ragged_hierarchies() {
    // Real-world dimensions are not balanced; both algorithms must agree
    // on randomly ragged concept hierarchies too.
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    let schema = regcube::datagen::ragged_schema(11, 2, 3, 3).unwrap();
    let m_layer = CuboidSpec::new(vec![3, 3]);
    let o_layer = CuboidSpec::new(vec![1, 0]);
    let layers = CriticalLayers::new(&schema, o_layer, m_layer.clone()).unwrap();

    let mut rng = StdRng::seed_from_u64(12);
    let cards: Vec<u32> = (0..2)
        .map(|d| schema.dims()[d].hierarchy().cardinality(3))
        .collect();
    let mut tuples = Vec::new();
    for _ in 0..300 {
        let ids: Vec<u32> = cards.iter().map(|&c| rng.random_range(0..c)).collect();
        let slope: f64 = rng.random_range(-1.0..1.0);
        let z = TimeSeries::from_fn(0, 15, |t| slope * t as f64).unwrap();
        tuples.push(MTuple::new(ids, Isb::fit(&z).unwrap()));
    }

    let policy = ExceptionPolicy::slope_threshold(0.8);
    let a1 = mo_cubing::compute(&schema, &layers, &policy, &tuples).unwrap();
    let a2 = popular_path::compute(&schema, &layers, &policy, None, &tuples).unwrap();

    assert_eq!(a1.o_layer_cells(), a2.o_layer_cells());
    for (k, m1) in a1.o_table() {
        assert!(a2.o_table()[k].approx_eq(m1, 1e-7));
    }
    assert!(a2.total_exception_cells() <= a1.total_exception_cells());
}

#[test]
fn mlr_cube_composes_with_generated_schemas() {
    // The Section 6.2 multi-variable cube on a generated schema: regress
    // on time and one spatial coordinate, roll up to the o-layer.
    use regcube::core::mlr_cube::{MlrCube, MlrTable};
    use regcube::regress::mlr::MlrMeasure;

    let schema = CubeSchema::synthetic(2, 2, 2).unwrap();
    let m_layer = CuboidSpec::new(vec![2, 2]);
    let mut table = MlrTable::default();
    for a in 0..4u32 {
        for b in 0..4u32 {
            let mut m = MlrMeasure::empty(3).unwrap();
            for t in 0..12 {
                for x in 0..2 {
                    let z = (a + b) as f64 + 0.05 * t as f64 - 0.1 * x as f64;
                    m.push_row(&[1.0, t as f64, x as f64], z).unwrap();
                }
            }
            table.insert(CellKey::new(vec![a, b]), m);
        }
    }
    let cube = MlrCube::new(schema, m_layer, table).unwrap();
    let apex = cube
        .coefficients(&CuboidSpec::new(vec![0, 0]), &CellKey::new(vec![0, 0]))
        .unwrap()
        .unwrap();
    // Σ(a+b) over the 4x4 grid = 48; Σ0.05 = 0.8; Σ-0.1 = -1.6.
    assert!((apex[0] - 48.0).abs() < 1e-7, "{apex:?}");
    assert!((apex[1] - 0.8).abs() < 1e-8);
    assert!((apex[2] + 1.6).abs() < 1e-8);
}
