//! Pins the examples' alarm behavior: the `network_monitor` and
//! `power_grid` scenarios must produce **identical alarm output** from
//! the sink-driven path (AlarmLog/DashboardSummary fed per-unit
//! `UnitDelta`s) and the old rescan path (diffing full exception-store
//! scans after every unit) — at shard counts 1 and 3.

use regcube::core::alarm::{self, AlarmLog, DashboardSummary, SharedSink};
use regcube::core::result::Algorithm;
use regcube::olap::Dimension;
use regcube::prelude::*;
use regcube::stream::online::{EngineConfig, OnlineEngine};
use regcube::stream::BoxedEngine;
use std::collections::{BTreeMap, BTreeSet};

type Addr = (CuboidSpec, CellKey);

/// The old consumer: after every unit, rescan the retained exception
/// stores and derive raises/clears by diffing against the previous scan.
#[derive(Default)]
struct RescanView {
    live: BTreeSet<Addr>,
    /// (cuboid, cell) -> raise unit of the open run.
    open_since: BTreeMap<Addr, u64>,
    /// Closed runs: (addr, raised_at, cleared_at).
    closed: Vec<(Addr, u64, u64)>,
}

impl RescanView {
    fn on_unit(&mut self, cube: &CubeResult, unit: u64) {
        let now: BTreeSet<Addr> = cube
            .iter_exceptions()
            .map(|(c, k, _)| (c.clone(), k.clone()))
            .collect();
        for addr in now.difference(&self.live) {
            self.open_since.insert(addr.clone(), unit);
        }
        for addr in self.live.difference(&now) {
            let raised = self.open_since.remove(addr).expect("was live");
            self.closed.push((addr.clone(), raised, unit));
        }
        self.live = now;
    }
}

/// Runs a scenario and returns the comparable alarm output of both
/// paths plus the per-unit o-layer alarm lines.
fn run_scenario(
    make: impl Fn() -> EngineConfig,
    records_for_unit: impl Fn(i64) -> Vec<RawRecord>,
    units: i64,
    shards: usize,
) -> (String, String) {
    let log = alarm::shared(AlarmLog::new(1024));
    let dash = alarm::shared(DashboardSummary::new());
    let mut engine: OnlineEngine<BoxedEngine> = make()
        .with_shards(shards)
        .with_sinks([log.clone() as SharedSink, dash.clone() as SharedSink])
        .build()
        .unwrap();

    let mut rescan = RescanView::default();
    let mut alarm_lines = String::new();
    for unit in 0..units {
        for record in records_for_unit(unit) {
            engine.ingest(&record).unwrap();
        }
        let report = engine.close_unit().unwrap();
        assert!(report.sink_errors.is_empty());
        for alarm in &report.alarms {
            alarm_lines.push_str(&format!(
                "unit {} alarm {} score={:.6}\n",
                report.unit, alarm.key, alarm.score
            ));
        }
        let delta = report.cube_delta.expect("non-empty unit");
        rescan.on_unit(engine.cube().unwrap(), delta.unit);

        // The live sets must agree after *every* unit, not just at the end.
        let log_guard = log.lock().unwrap();
        let sink_live: BTreeSet<Addr> = log_guard
            .open_episodes()
            .iter()
            .map(|e| (e.cuboid.clone(), e.cell.clone()))
            .collect();
        assert_eq!(sink_live, rescan.live, "unit {unit} (shards={shards})");
        assert_eq!(
            dash.lock().unwrap().active_cells(),
            rescan.live.len() as u64,
            "unit {unit} (shards={shards})"
        );
    }

    // Serialize the sink-driven episodes and the rescan-derived ones in
    // the same shape: `cuboid cell raised..cleared`.
    let log = log.lock().unwrap();
    let mut sink_out: Vec<String> = log
        .open_episodes()
        .iter()
        .map(|e| format!("{}{} {}..open", e.cuboid, e.cell, e.raised_at))
        .collect();
    sink_out.extend(log.closed_episodes().map(|e| {
        format!(
            "{}{} {}..{}",
            e.cuboid,
            e.cell,
            e.raised_at,
            e.cleared_at.unwrap()
        )
    }));
    sink_out.sort();

    let mut rescan_out: Vec<String> = rescan
        .open_since
        .iter()
        .map(|((c, k), raised)| format!("{c}{k} {raised}..open"))
        .collect();
    rescan_out.extend(
        rescan
            .closed
            .iter()
            .map(|((c, k), raised, cleared)| format!("{c}{k} {raised}..{cleared}")),
    );
    rescan_out.sort();

    assert_eq!(
        sink_out, rescan_out,
        "sink-driven vs rescan episodes (shards={shards})"
    );
    (alarm_lines + &sink_out.join("\n"), alarm_lines_only(&log))
}

fn alarm_lines_only(log: &AlarmLog) -> String {
    format!(
        "opened={} closed={} suppressed={}",
        log.opened_total(),
        log.closed_total(),
        log.suppressed()
    )
}

/// The network_monitor example's schema/stream (popular-path cubing,
/// a UDP flood ramping on router 4 / protocol 7 from unit 1).
fn network_monitor_config() -> EngineConfig {
    let pop = Dimension::with_level_names(
        "pop",
        Hierarchy::balanced(2, 3).unwrap(),
        vec!["region".into(), "router".into()],
    )
    .unwrap();
    let proto = Dimension::with_level_names(
        "proto",
        Hierarchy::balanced(2, 3).unwrap(),
        vec!["class".into(), "protocol".into()],
    )
    .unwrap();
    let schema = CubeSchema::new(vec![pop, proto]).unwrap();
    EngineConfig::new(
        schema,
        CuboidSpec::new(vec![1, 0]),
        CuboidSpec::new(vec![2, 2]),
    )
    .with_policy(ExceptionPolicy::slope_threshold(4.0))
    .with_tilt(TiltSpec::new(vec![("minute", 4), ("5-min", 12)]).unwrap())
    .with_ticks_per_unit(16)
    .with_algorithm(Algorithm::PopularPath)
}

fn network_monitor_records(unit: i64) -> Vec<RawRecord> {
    let mut records = Vec::new();
    for tick in (unit * 16)..(unit * 16 + 16) {
        for router in 0..9u32 {
            for protocol in 0..9u32 {
                let attack = unit >= 1 && router == 4 && protocol == 7;
                let volume = if attack {
                    10.0 + 8.0 * (tick - unit * 16) as f64
                } else {
                    5.0 + ((router + protocol) % 4) as f64 * 0.3
                };
                records.push(RawRecord::new(vec![router, protocol], tick, volume));
            }
        }
    }
    records
}

/// The power_grid example's schema/stream (m/o-cubing, a runaway load
/// in city 1's street-block 3 during quarter 2).
fn power_grid_config() -> EngineConfig {
    let user = Dimension::with_level_names(
        "user",
        Hierarchy::balanced(2, 4).unwrap(),
        vec!["user-group".into(), "individual-user".into()],
    )
    .unwrap();
    let location = Dimension::with_level_names(
        "location",
        Hierarchy::balanced(3, 2).unwrap(),
        vec![
            "city".into(),
            "street-block".into(),
            "street-address".into(),
        ],
    )
    .unwrap();
    let schema = CubeSchema::new(vec![user, location]).unwrap();
    EngineConfig::new(
        schema,
        CuboidSpec::new(vec![0, 1]),
        CuboidSpec::new(vec![1, 2]),
    )
    .with_primitive(CuboidSpec::new(vec![2, 3]))
    .with_policy(ExceptionPolicy::slope_threshold(6.0))
    .with_tilt(TiltSpec::paper_figure4())
    .with_ticks_per_unit(15)
    .with_algorithm(Algorithm::MoCubing)
}

fn power_grid_records(quarter: i64) -> Vec<RawRecord> {
    let mut records = Vec::new();
    for minute in (quarter * 15)..(quarter * 15 + 15) {
        for user_id in 0..16u32 {
            for addr in 0..8u32 {
                let block = addr / 2;
                let runaway = quarter == 2 && block == 3;
                let base_load = 1.0 + (user_id % 3) as f64 * 0.2;
                let trend = if runaway {
                    0.8 * (minute - quarter * 15) as f64
                } else {
                    0.01 * (minute % 5) as f64
                };
                records.push(RawRecord::new(
                    vec![user_id, addr],
                    minute,
                    base_load + trend,
                ));
            }
        }
    }
    records
}

#[test]
fn network_monitor_sink_output_matches_rescan_at_1_and_3_shards() {
    let (single, counts1) = run_scenario(network_monitor_config, network_monitor_records, 3, 1);
    let (sharded, counts3) = run_scenario(network_monitor_config, network_monitor_records, 3, 3);
    assert_eq!(single, sharded, "alarm output must be shard-invariant");
    assert_eq!(counts1, counts3);
    assert!(
        single.contains("alarm"),
        "the flood must raise o-layer alarms"
    );
}

#[test]
fn power_grid_sink_output_matches_rescan_at_1_and_3_shards() {
    let (single, counts1) = run_scenario(power_grid_config, power_grid_records, 3, 1);
    let (sharded, counts3) = run_scenario(power_grid_config, power_grid_records, 3, 3);
    assert_eq!(single, sharded, "alarm output must be shard-invariant");
    assert_eq!(counts1, counts3);
    assert!(
        single.contains("alarm"),
        "the runaway load must raise o-layer alarms"
    );
}
