//! Direct checks of every concrete number and structural claim printed in
//! the paper (figure captions, examples, counts).

use regcube::prelude::*;
use regcube::regress::ols;

/// Example 2 / Figure 1: the 10-point series and its regression.
#[test]
fn fig1_example2_fit() {
    let z = TimeSeries::new(
        0,
        vec![0.62, 0.24, 1.03, 0.57, 0.59, 0.57, 0.87, 1.10, 0.71, 0.56],
    )
    .unwrap();
    assert_eq!(z.interval(), (0, 9));
    let fit = LinearFit::fit(&z);
    // The regression line passes through the centroid (4.5, 0.686) with a
    // mild positive trend, as Figure 1(b) draws it.
    assert!((fit.predict(0) + fit.slope * 4.5 - 0.686).abs() < 1e-12);
    assert!(fit.slope > 0.0 && fit.slope < 0.05);
}

/// Figure 2's caption: the two descendants' ISBs sum to the aggregate's
/// (Theorem 3.2), to the printed precision.
#[test]
fn fig2_caption_satisfies_theorem32() {
    let z1 = Isb::new(0, 19, 0.540995, 0.0318379).unwrap();
    let z2 = Isb::new(0, 19, 0.294875, 0.0493375).unwrap();
    let expected = Isb::new(0, 19, 0.83587, 0.0811754).unwrap();
    let merged = aggregate::merge_standard(&[z1, z2]).unwrap();
    assert!(merged.approx_eq(&expected, 1e-6), "{merged}");
}

/// Figure 3's caption: the two time segments merge to the printed
/// aggregate (Theorem 3.3), using only the 4-number ISBs.
#[test]
fn fig3_caption_satisfies_theorem33() {
    let seg1 = Isb::new(0, 9, 0.582995, 0.0240189).unwrap();
    let seg2 = Isb::new(10, 19, 0.459046, 0.047474).unwrap();
    let expected = Isb::new(0, 19, 0.509033, 0.0431806).unwrap();
    for merged in [
        aggregate::merge_time(&[seg1, seg2]).unwrap(),
        aggregate::merge_time_theorem33(&[seg1, seg2]).unwrap(),
    ] {
        assert!(merged.approx_eq(&expected, 1e-5), "{merged}");
    }
}

/// Lemma 3.2: `Σ (j - j̄)² = (n³ - n) / 12` independent of the offset.
#[test]
fn lemma32_sum_of_variance_squares() {
    for (n, want) in [(2u64, 0.5), (4, 5.0), (10, 82.5), (20, 665.0)] {
        assert!((ols::svs(n) - want).abs() < 1e-9, "svs({n})");
    }
}

/// Example 3 / Figure 4: 71 slots instead of 35,136 — ~495x.
#[test]
fn example3_tilt_compression() {
    let spec = TiltSpec::paper_figure4();
    assert_eq!(spec.capacity_slots(), 4 + 24 + 31 + 12);
    let flat = 366u64 * 24 * 4;
    assert_eq!(flat, 35_136);
    let ratio = spec.compression_ratio(flat);
    assert!(ratio > 490.0 && ratio < 500.0, "ratio {ratio}");
}

/// Example 5 / Figure 6: exactly 2·3·2 = 12 cuboids between m-layer
/// (A2, B2, C2) and o-layer (A1, *, C1).
#[test]
fn fig6_lattice_has_12_cuboids() {
    let schema = CubeSchema::synthetic(3, 3, 10).unwrap();
    let lattice = Lattice::new(
        &schema,
        CuboidSpec::new(vec![1, 0, 1]),
        CuboidSpec::new(vec![2, 2, 2]),
    )
    .unwrap();
    assert_eq!(lattice.count(), 12);
    assert_eq!(lattice.enumerate().len(), 12);
}

/// Example 5 / Figure 7: with card(A1) < card(B1) < card(C1) < card(C2)
/// < card(A2) < card(B2), the H-tree root-to-leaf order is
/// ⟨A1, B1, C1, C2, A2, B2⟩.
#[test]
fn fig7_htree_attribute_order() {
    use regcube::olap::htree::attrs_by_cardinality;
    use regcube::olap::{Dimension, Hierarchy};
    // Ragged hierarchies realizing the paper's cardinality ordering:
    // A: 2 -> 40; B: 3 -> 60; C: 4 -> 20.
    let dim = |name: &str, c1: u32, c2: u32| {
        let l1: Vec<u32> = vec![0; c1 as usize];
        let l2: Vec<u32> = (0..c2).map(|m| m % c1).collect();
        Dimension::new(name, Hierarchy::from_parents(vec![l1, l2]).unwrap())
    };
    let schema = CubeSchema::new(vec![dim("A", 2, 40), dim("B", 3, 60), dim("C", 4, 20)]).unwrap();
    let lattice = Lattice::new(
        &schema,
        CuboidSpec::new(vec![1, 0, 1]),
        CuboidSpec::new(vec![2, 2, 2]),
    )
    .unwrap();
    let order = attrs_by_cardinality(&schema, &lattice);
    let names: Vec<(usize, u8)> = order.iter().map(|a| (a.dim, a.level)).collect();
    // A1(2) B1(3) C1(4) C2(20) A2(40) B2(60).
    assert_eq!(names, vec![(0, 1), (1, 1), (2, 1), (2, 2), (0, 2), (1, 2)]);
}

/// The Example 5 popular path ⟨(A1,C1) → B1 → B2 → A2 → C2⟩.
#[test]
fn example5_popular_path() {
    let schema = CubeSchema::synthetic(3, 3, 10).unwrap();
    let lattice = Lattice::new(
        &schema,
        CuboidSpec::new(vec![1, 0, 1]),
        CuboidSpec::new(vec![2, 2, 2]),
    )
    .unwrap();
    let path = PopularPath::from_drill_order(&lattice, &[1, 1, 0, 2]).unwrap();
    let levels: Vec<Vec<u8>> = path.cuboids().iter().map(|c| c.levels().to_vec()).collect();
    assert_eq!(
        levels,
        vec![
            vec![1, 0, 1],
            vec![1, 1, 1],
            vec![1, 2, 1],
            vec![2, 2, 1],
            vec![2, 2, 2],
        ]
    );
}

/// Theorem 3.1(b): no proper subset of the ISB's four components
/// determines the regression (the paper's witness pairs).
#[test]
fn theorem31_minimality_witnesses() {
    let fit =
        |start: i64, v: &[f64]| Isb::fit(&TimeSeries::new(start, v.to_vec()).unwrap()).unwrap();
    // Drop t_b: z1 over [0,2] vs z2 over [1,2] agree on (t_e, α̂, β̂).
    let (z1, z2) = (fit(0, &[0.0, 0.0, 0.0]), fit(1, &[0.0, 0.0]));
    assert_eq!(
        (z1.end(), z1.base(), z1.slope()),
        (z2.end(), z2.base(), z2.slope())
    );
    assert_ne!(z1.start(), z2.start());
    // Drop β̂: 0,0 vs 0,1 agree on (t_b, t_e, α̂).
    let (f1, f2) = (fit(0, &[0.0, 0.0]), fit(0, &[0.0, 1.0]));
    assert_eq!((f1.interval(), f1.base()), (f2.interval(), f2.base()));
    assert_ne!(f1.slope(), f2.slope());
    // Drop α̂: 0,0 vs 1,1 agree on (t_b, t_e, β̂).
    let (g1, g2) = (fit(0, &[0.0, 0.0]), fit(0, &[1.0, 1.0]));
    assert_eq!((g1.interval(), g1.slope()), (g2.interval(), g2.slope()));
    assert_ne!(g1.base(), g2.base());
}

/// The D3L3C10T100K naming convention of Section 5.
#[test]
fn section5_dataset_naming() {
    let spec: DatasetSpec = "D3L3C10T100K".parse().unwrap();
    assert_eq!(
        (spec.dims, spec.levels, spec.fanout, spec.tuples),
        (3, 3, 10, 100_000)
    );
    assert_eq!(spec.to_string(), "D3L3C10T100K");
}
