//! Property tests for the alarm lifecycle: for random unit streams, the
//! sink-maintained state (episodes, dashboard) must agree with the
//! cube's retained exception stores after every unit, and the whole
//! episode history must be identical at every shard count.

use proptest::prelude::*;
use regcube::core::alarm::{self, AlarmLog, DashboardSummary, SharedSink};
use regcube::prelude::*;
use regcube::stream::online::{EngineConfig, OnlineEngine};
use regcube::stream::BoxedEngine;
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

const TICKS: usize = 4;
/// The m-layer cells of the random streams (synthetic(2, 2, 2): ids 0..4).
const CELLS: [(u32, u32); 5] = [(0, 0), (1, 2), (2, 1), (3, 3), (0, 3)];

type Sinks = (Arc<Mutex<AlarmLog>>, Arc<Mutex<DashboardSummary>>);

fn build(shards: usize, backend: Backend) -> (OnlineEngine<BoxedEngine>, Sinks) {
    let log = alarm::shared(AlarmLog::new(256));
    let dash = alarm::shared(DashboardSummary::new());
    let schema = CubeSchema::synthetic(2, 2, 2).unwrap();
    let engine = EngineConfig::new(
        schema,
        CuboidSpec::new(vec![0, 0]),
        CuboidSpec::new(vec![2, 2]),
    )
    .with_policy(ExceptionPolicy::slope_threshold(0.5))
    .with_tilt(TiltSpec::new(vec![("unit", 4), ("coarse", 3)]).unwrap())
    .with_ticks_per_unit(TICKS)
    .with_backend(backend)
    .with_shards(shards)
    .with_sinks([log.clone() as SharedSink, dash.clone() as SharedSink])
    .build()
    .unwrap();
    (engine, (log, dash))
}

/// Feeds one unit of per-cell linear streams with the given slopes.
fn feed_unit(engine: &mut OnlineEngine<BoxedEngine>, unit: usize, slopes: &[f64]) {
    let t0 = (unit * TICKS) as i64;
    for t in t0..t0 + TICKS as i64 {
        for (&(a, b), &slope) in CELLS.iter().zip(slopes) {
            let value = 1.0 + slope * (t - t0) as f64;
            engine
                .ingest(&RawRecord::new(vec![a, b], t, value))
                .unwrap();
        }
    }
}

/// The cube's live exception set as a sorted, comparable key list.
fn rescan(engine: &OnlineEngine<BoxedEngine>) -> Vec<(CuboidSpec, CellKey)> {
    let mut live: Vec<(CuboidSpec, CellKey)> = engine
        .cube()
        .map(|cube| {
            cube.iter_exceptions()
                .map(|(c, k, _)| (c.clone(), k.clone()))
                .collect()
        })
        .unwrap_or_default();
    live.sort();
    live
}

/// One run: returns the full episode history, serialized comparably.
fn episode_history(shards: usize, backend: Backend, units: &[Vec<f64>]) -> Vec<String> {
    let (mut engine, (log, _)) = build(shards, backend);
    for (u, slopes) in units.iter().enumerate() {
        feed_unit(&mut engine, u, slopes);
        engine.close_unit().unwrap();
    }
    let log = log.lock().unwrap();
    let mut out: Vec<String> = log.open_episodes().iter().map(|e| format!("{e}")).collect();
    out.extend(log.closed_episodes().map(|e| format!("{e}")));
    out.sort();
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// After every unit: every `appeared` has a matching open episode,
    /// every `cleared` closed one, and the open-episode set equals the
    /// cube's retained exception set.
    #[test]
    fn episodes_track_the_exception_set(
        units in prop::collection::vec(
            prop::collection::vec(-1.5..1.5f64, CELLS.len()),
            1..6,
        ),
    ) {
        let (mut engine, (log, dash)) = build(1, Backend::Row);
        for (u, slopes) in units.iter().enumerate() {
            feed_unit(&mut engine, u, slopes);
            let report = engine.close_unit().unwrap();
            prop_assert!(report.sink_errors.is_empty());
            let delta = report.cube_delta.expect("non-empty unit");
            let log = log.lock().unwrap();
            for (cuboid, cell) in &delta.appeared {
                let episode = log.open_episode(cuboid, cell);
                prop_assert!(episode.is_some(), "appeared {cuboid}{cell} has no open episode");
                prop_assert_eq!(episode.unwrap().raised_at, delta.unit);
            }
            for (cuboid, cell) in &delta.cleared {
                prop_assert!(
                    log.open_episode(cuboid, cell).is_none(),
                    "cleared {cuboid}{cell} still open"
                );
            }
            // Open episodes == live exception set, exactly.
            let mut open: Vec<(CuboidSpec, CellKey)> = log
                .open_episodes()
                .iter()
                .map(|e| (e.cuboid.clone(), e.cell.clone()))
                .collect();
            open.sort();
            prop_assert_eq!(open, rescan(&engine), "unit {}", u);
            // Dashboard counters: active set and per-depth counts match
            // a from-scratch rescan of the retained stores.
            let dash = dash.lock().unwrap();
            let cube = engine.cube().unwrap();
            prop_assert_eq!(dash.active_cells(), cube.total_exception_cells());
            let mut by_depth: BTreeMap<u32, u64> = BTreeMap::new();
            for (c, _, _) in cube.iter_exceptions() {
                *by_depth.entry(c.total_depth()).or_insert(0) += 1;
            }
            let counted: BTreeMap<u32, u64> = dash.depth_counts().into_iter().collect();
            prop_assert_eq!(counted, by_depth, "unit {}", u);
        }
        // Conservation: everything opened is either closed or open.
        let log = log.lock().unwrap();
        prop_assert_eq!(
            log.opened_total(),
            log.closed_total() + log.open_count() as u64
        );
    }

    /// The complete episode history (raise/clear units, peaks) is
    /// identical at shard counts 1, 2, 3 and 7 — and on the columnar
    /// backend at every one of those shard counts.
    #[test]
    fn episode_history_is_shard_and_backend_invariant(
        units in prop::collection::vec(
            prop::collection::vec(-1.5..1.5f64, CELLS.len()),
            1..5,
        ),
    ) {
        let baseline = episode_history(1, Backend::Row, &units);
        for shards in [2usize, 3, 7] {
            let history = episode_history(shards, Backend::Row, &units);
            prop_assert_eq!(&history, &baseline, "shards={}", shards);
        }
        for shards in [1usize, 2, 3, 7] {
            let history = episode_history(shards, Backend::Columnar, &units);
            prop_assert_eq!(&history, &baseline, "columnar shards={}", shards);
        }
    }
}
