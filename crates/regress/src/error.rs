//! Error type for the regression layer.

use regcube_linalg::LinalgError;
use std::fmt;

/// Errors produced by series construction, fitting and aggregation.
#[derive(Debug, Clone, PartialEq)]
pub enum RegressError {
    /// A time series must contain at least one observation.
    EmptySeries,
    /// Two series/ISBs were expected to share the same time interval.
    IntervalMismatch {
        /// First interval `[t_b, t_e]`.
        left: (i64, i64),
        /// Second interval `[t_b, t_e]`.
        right: (i64, i64),
    },
    /// Segments passed to a time-dimension merge do not form a contiguous
    /// partition of a larger interval.
    NotAPartition {
        /// Description of the gap/overlap found.
        detail: String,
    },
    /// An aggregation was called with no inputs.
    NoInputs,
    /// The operation needs more observations than the series contains.
    NotEnoughData {
        /// Observations available.
        have: usize,
        /// Observations required.
        need: usize,
    },
    /// A transform's domain was violated (e.g. `log` of a non-positive
    /// value).
    DomainViolation {
        /// Which transform failed.
        transform: &'static str,
        /// Offending value.
        value: f64,
    },
    /// A parameter was out of its valid range.
    InvalidParameter {
        /// Parameter name.
        name: &'static str,
        /// Description of the violation.
        detail: String,
    },
    /// An underlying linear-algebra routine failed.
    Linalg(LinalgError),
}

impl fmt::Display for RegressError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegressError::EmptySeries => write!(f, "time series is empty"),
            RegressError::IntervalMismatch { left, right } => write!(
                f,
                "interval mismatch: [{}, {}] vs [{}, {}]",
                left.0, left.1, right.0, right.1
            ),
            RegressError::NotAPartition { detail } => {
                write!(f, "segments do not partition the interval: {detail}")
            }
            RegressError::NoInputs => write!(f, "aggregation called with no inputs"),
            RegressError::NotEnoughData { have, need } => {
                write!(f, "not enough data: have {have}, need {need}")
            }
            RegressError::DomainViolation { transform, value } => {
                write!(
                    f,
                    "domain violation in {transform} transform at value {value}"
                )
            }
            RegressError::InvalidParameter { name, detail } => {
                write!(f, "invalid parameter {name}: {detail}")
            }
            RegressError::Linalg(e) => write!(f, "linear algebra failure: {e}"),
        }
    }
}

impl std::error::Error for RegressError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RegressError::Linalg(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LinalgError> for RegressError {
    fn from(e: LinalgError) -> Self {
        RegressError::Linalg(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_all_variants() {
        let cases: Vec<RegressError> = vec![
            RegressError::EmptySeries,
            RegressError::IntervalMismatch {
                left: (0, 1),
                right: (2, 3),
            },
            RegressError::NotAPartition {
                detail: "gap".into(),
            },
            RegressError::NoInputs,
            RegressError::NotEnoughData { have: 1, need: 2 },
            RegressError::DomainViolation {
                transform: "log",
                value: -1.0,
            },
            RegressError::InvalidParameter {
                name: "degree",
                detail: "zero".into(),
            },
            RegressError::Linalg(LinalgError::Singular { pivot: 0 }),
        ];
        for c in cases {
            assert!(!c.to_string().is_empty());
        }
    }

    #[test]
    fn linalg_errors_convert_and_chain() {
        let e: RegressError = LinalgError::Singular { pivot: 3 }.into();
        assert!(matches!(e, RegressError::Linalg(_)));
        use std::error::Error;
        assert!(e.source().is_some());
    }
}
