//! Regression mathematics for `regcube` — the theoretical foundation of
//! *Chen, Dong, Han, Wah, Wang: "Multi-Dimensional Regression Analysis of
//! Time-Series Data Streams" (VLDB 2002)*, Section 3.
//!
//! The paper's key observation is that the least-squares linear fit of a
//! time series can be *warehoused*: a cell of a data cube needs to keep only
//! the 4-number **ISB representation** `([t_b, t_e], α̂, β̂)` of its series,
//! and the ISB of any aggregated cell is derivable **exactly** (no loss of
//! precision) from the ISBs of its descendant cells:
//!
//! * **Theorem 3.2** — roll-up on a *standard* dimension sums the series
//!   point-wise, and both the base `α̂` and the slope `β̂` simply add
//!   ([`aggregate::merge_standard`]).
//! * **Theorem 3.3** — roll-up on the *time* dimension concatenates disjoint
//!   intervals, and the aggregate fit is a weighted combination of segment
//!   fits plus segment sums, all recoverable from the ISBs
//!   ([`aggregate::merge_time`], with the paper's verbatim formula in
//!   [`aggregate::merge_time_theorem33`]).
//!
//! This crate implements those results plus the extensions sketched in the
//! paper's Section 6: **folding** time aggregation ([`fold`]), **multiple
//! linear regression** with lossless sufficient-statistics measures
//! ([`mlr`]), and **non-linear fits** through basis transforms
//! ([`transform`]).
//!
//! # Quick example
//!
//! ```
//! use regcube_regress::{TimeSeries, Isb, aggregate};
//!
//! // Two sibling cells observed over the same interval ...
//! let a = TimeSeries::new(0, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
//! let b = TimeSeries::new(0, vec![4.0, 3.0, 2.0, 1.0]).unwrap();
//!
//! // ... warehoused as ISBs ...
//! let isb_a = Isb::fit(&a).unwrap();
//! let isb_b = Isb::fit(&b).unwrap();
//!
//! // ... aggregate exactly without touching the raw series (Theorem 3.2):
//! let merged = aggregate::merge_standard(&[isb_a, isb_b]).unwrap();
//! let direct = Isb::fit(&a.pointwise_sum(&b).unwrap()).unwrap();
//! assert!((merged.slope() - direct.slope()).abs() < 1e-12);
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod aggregate;
pub mod diagnostics;
pub mod error;
pub mod fold;
pub mod isb;
pub mod mlr;
pub mod ols;
pub mod running;
pub mod series;
pub mod transform;

pub use diagnostics::FitDiagnostics;
pub use error::RegressError;
pub use isb::{IntVal, Isb};
pub use ols::LinearFit;
pub use running::RunningFit;
pub use series::TimeSeries;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, RegressError>;
