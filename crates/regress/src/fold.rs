//! Folding aggregation on the time hierarchy (paper Section 6.2).
//!
//! Besides merging small time intervals into larger ones (Theorem 3.3),
//! a time-series cube needs a third aggregation: **folding** values at a
//! fine granularity into one value per coarse granularity unit — e.g.
//! folding 365 daily readings into 12 monthly values. "Different SQL
//! aggregation functions can be used for folding, such as sum, avg, min,
//! max, or last (e.g., stock closing value)."

use crate::error::RegressError;
use crate::series::TimeSeries;
use crate::Result;

/// The SQL-style aggregate applied to each fold group.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FoldOp {
    /// Sum of the group's values.
    Sum,
    /// Arithmetic mean of the group's values.
    Avg,
    /// Minimum value in the group.
    Min,
    /// Maximum value in the group.
    Max,
    /// First value of the group (e.g. opening price).
    First,
    /// Last value of the group (e.g. stock closing value).
    Last,
}

impl FoldOp {
    /// Applies the operation to one non-empty group of values.
    fn apply(self, group: &[f64]) -> f64 {
        debug_assert!(!group.is_empty());
        match self {
            FoldOp::Sum => group.iter().sum(),
            FoldOp::Avg => group.iter().sum::<f64>() / group.len() as f64,
            FoldOp::Min => group.iter().cloned().fold(f64::INFINITY, f64::min),
            FoldOp::Max => group.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
            FoldOp::First => group[0],
            FoldOp::Last => group[group.len() - 1],
        }
    }

    /// All supported operations, for exhaustive testing and CLI listings.
    pub const ALL: [FoldOp; 6] = [
        FoldOp::Sum,
        FoldOp::Avg,
        FoldOp::Min,
        FoldOp::Max,
        FoldOp::First,
        FoldOp::Last,
    ];
}

/// Folds `series` from its native tick unit into a coarser unit of
/// `group` ticks each, applying `op` per group.
///
/// The result's tick `i` covers source ticks
/// `[start + i·group, start + (i+1)·group - 1]`; a trailing partial group
/// (the paper's footnote 5: "there might be a partial interval which is
/// less than a full unit") is folded from however many ticks it has.
/// The folded series starts at tick `0` of the coarse unit obtained by
/// integer-dividing the source start by `group`, preserving calendar
/// alignment when the source starts on a group boundary.
///
/// # Errors
/// [`RegressError::InvalidParameter`] when `group == 0`.
pub fn fold_series(series: &TimeSeries, group: usize, op: FoldOp) -> Result<TimeSeries> {
    if group == 0 {
        return Err(RegressError::InvalidParameter {
            name: "group",
            detail: "fold group must be positive".into(),
        });
    }
    let folded: Vec<f64> = series
        .values()
        .chunks(group)
        .map(|chunk| op.apply(chunk))
        .collect();
    let coarse_start = series.start().div_euclid(group as i64);
    TimeSeries::new(coarse_start, folded)
}

/// A reusable fold specification: group width plus operation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FoldSpec {
    /// Number of fine ticks per coarse tick.
    pub group: usize,
    /// Aggregate applied to each group.
    pub op: FoldOp,
}

impl FoldSpec {
    /// Creates a specification, validating the group width.
    ///
    /// # Errors
    /// [`RegressError::InvalidParameter`] when `group == 0`.
    pub fn new(group: usize, op: FoldOp) -> Result<Self> {
        if group == 0 {
            return Err(RegressError::InvalidParameter {
                name: "group",
                detail: "fold group must be positive".into(),
            });
        }
        Ok(FoldSpec { group, op })
    }

    /// Applies the fold to a series.
    ///
    /// # Errors
    /// Propagates [`fold_series`] errors.
    pub fn apply(&self, series: &TimeSeries) -> Result<TimeSeries> {
        fold_series(series, self.group, self.op)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(start: i64, v: &[f64]) -> TimeSeries {
        TimeSeries::new(start, v.to_vec()).unwrap()
    }

    #[test]
    fn fold_sum_groups_exactly() {
        let z = s(0, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let f = fold_series(&z, 3, FoldOp::Sum).unwrap();
        assert_eq!(f.values(), &[6.0, 15.0]);
        assert_eq!(f.interval(), (0, 1));
    }

    #[test]
    fn fold_handles_partial_trailing_group() {
        let z = s(0, &[1.0, 2.0, 3.0, 4.0, 5.0]);
        let f = fold_series(&z, 2, FoldOp::Avg).unwrap();
        assert_eq!(f.values(), &[1.5, 3.5, 5.0]);
    }

    #[test]
    fn all_ops_on_a_known_group() {
        let z = s(0, &[3.0, 1.0, 2.0]);
        let expect = [
            (FoldOp::Sum, 6.0),
            (FoldOp::Avg, 2.0),
            (FoldOp::Min, 1.0),
            (FoldOp::Max, 3.0),
            (FoldOp::First, 3.0),
            (FoldOp::Last, 2.0),
        ];
        for (op, want) in expect {
            let f = fold_series(&z, 3, op).unwrap();
            assert_eq!(f.values(), &[want], "{op:?}");
        }
        assert_eq!(FoldOp::ALL.len(), 6);
    }

    #[test]
    fn fold_group_one_is_identity_on_values() {
        let z = s(4, &[9.0, 8.0, 7.0]);
        let f = fold_series(&z, 1, FoldOp::Last).unwrap();
        assert_eq!(f.values(), z.values());
        assert_eq!(f.start(), 4);
    }

    #[test]
    fn coarse_start_respects_alignment() {
        // 12 daily values starting at day 24 with 12-day "months": the
        // series starts inside coarse unit 2.
        let z = TimeSeries::from_fn(24, 35, |t| t as f64).unwrap();
        let f = fold_series(&z, 12, FoldOp::First).unwrap();
        assert_eq!(f.start(), 2);
        assert_eq!(f.values(), &[24.0]);
    }

    #[test]
    fn zero_group_is_rejected() {
        let z = s(0, &[1.0]);
        assert!(fold_series(&z, 0, FoldOp::Sum).is_err());
        assert!(FoldSpec::new(0, FoldOp::Sum).is_err());
    }

    #[test]
    fn fold_spec_round_trip() {
        let spec = FoldSpec::new(4, FoldOp::Max).unwrap();
        let z = TimeSeries::from_fn(0, 7, |t| (t % 4) as f64).unwrap();
        let f = spec.apply(&z).unwrap();
        assert_eq!(f.values(), &[3.0, 3.0]);
    }

    #[test]
    fn fold_then_fit_models_the_year_example() {
        // The paper's example: daily values folded to 12 "months" (31-day
        // groups; 372 days so every group is full and the algebra is exact).
        let daily = TimeSeries::from_fn(0, 371, |t| 100.0 + 0.2 * t as f64).unwrap();
        let monthly = fold_series(&daily, 31, FoldOp::Avg).unwrap();
        assert_eq!(monthly.len(), 12);
        // Averaging preserves a linear trend: slope scales by group width.
        let fit = crate::ols::LinearFit::fit(&monthly);
        assert!((fit.slope - 0.2 * 31.0).abs() < 1e-6);
    }
}
