//! Multiple linear regression measures (paper Section 6.2, "general
//! theory ... applicable to regression analysis ... with more than one
//! regression variable").
//!
//! For a model `z = β₀ + β₁ x₁ + … + β_{k-1} x_{k-1}` the compressed,
//! losslessly-aggregatable measure is the pair of sufficient statistics
//! `(XᵀX, Xᵀz)` (plus `n` and `zᵀz` for diagnostics):
//!
//! * **time-style merges** (disjoint unions of observation rows — e.g.
//!   merging adjacent time windows, or pooling sensors that are modeled
//!   jointly) simply add all components;
//! * **standard-dimension merges** (point-wise sum of responses observed
//!   at *identical* design rows — the multi-variable generalization of
//!   Theorem 3.2) share `XᵀX` and add `Xᵀz`.
//!
//! [`MlrMeasure`] stores these statistics; [`MlrMeasure::solve`] recovers
//! the coefficient vector through the Cholesky normal equations of
//! [`regcube_linalg`]. The simple ISB of Section 3 is the special case
//! `k = 2`, `x₁ = t` — property-tested in `tests/proptests.rs`.

use crate::error::RegressError;
use crate::series::TimeSeries;
use crate::Result;
use regcube_linalg::cholesky::Cholesky;
use regcube_linalg::Matrix;

/// Sufficient statistics of a multiple linear regression, the warehoused
/// cell measure for multi-variable models.
#[derive(Debug, Clone, PartialEq)]
pub struct MlrMeasure {
    /// Number of coefficients `k` (including the intercept column).
    k: usize,
    /// Number of observation rows folded in.
    n: u64,
    /// `XᵀX`, a `k x k` symmetric matrix.
    xtx: Matrix,
    /// `Xᵀz`, length `k`.
    xtz: Vec<f64>,
    /// `zᵀz`, for residual diagnostics.
    ztz: f64,
}

impl MlrMeasure {
    /// An empty measure for models with `k` coefficients.
    ///
    /// # Errors
    /// [`RegressError::InvalidParameter`] when `k == 0`.
    pub fn empty(k: usize) -> Result<Self> {
        if k == 0 {
            return Err(RegressError::InvalidParameter {
                name: "k",
                detail: "a regression needs at least one coefficient".into(),
            });
        }
        Ok(MlrMeasure {
            k,
            n: 0,
            xtx: Matrix::zeros(k, k).expect("k > 0"),
            xtz: vec![0.0; k],
            ztz: 0.0,
        })
    }

    /// Builds the measure from a design matrix (`n x k`) and responses.
    ///
    /// # Errors
    /// [`RegressError::InvalidParameter`] on a row-count mismatch.
    pub fn from_observations(design: &Matrix, z: &[f64]) -> Result<Self> {
        if design.rows() != z.len() {
            return Err(RegressError::InvalidParameter {
                name: "z",
                detail: format!("{} responses for {} design rows", z.len(), design.rows()),
            });
        }
        let mut m = MlrMeasure::empty(design.cols())?;
        for (r, &zr) in z.iter().enumerate() {
            m.push_row(design.row(r), zr)?;
        }
        Ok(m)
    }

    /// Builds the time-regression measure (`k = 2`, columns `[1, t]`) of a
    /// time series — the MLR view of the ISB representation.
    ///
    /// # Errors
    /// Never fails for a valid series; signature kept fallible for parity
    /// with the general constructor.
    pub fn from_time_series(series: &TimeSeries) -> Result<Self> {
        let mut m = MlrMeasure::empty(2)?;
        for (t, z) in series.iter() {
            m.push_row(&[1.0, t as f64], z)?;
        }
        Ok(m)
    }

    /// Folds one observation row into the statistics.
    ///
    /// # Errors
    /// [`RegressError::InvalidParameter`] when the row length differs
    /// from `k`.
    pub fn push_row(&mut self, row: &[f64], z: f64) -> Result<()> {
        if row.len() != self.k {
            return Err(RegressError::InvalidParameter {
                name: "row",
                detail: format!("length {} != k = {}", row.len(), self.k),
            });
        }
        for (i, &xi) in row.iter().enumerate() {
            for (j, &xj) in row.iter().enumerate() {
                self.xtx[(i, j)] += xi * xj;
            }
            self.xtz[i] += xi * z;
        }
        self.ztz += z * z;
        self.n += 1;
        Ok(())
    }

    /// Number of coefficients.
    #[inline]
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of folded observations.
    #[inline]
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Merges a measure built over a **disjoint set of observation rows**
    /// (the MLR analogue of a time-dimension roll-up): every statistic adds.
    ///
    /// # Errors
    /// [`RegressError::InvalidParameter`] on mismatched `k`.
    pub fn merge_disjoint(&mut self, other: &MlrMeasure) -> Result<()> {
        if self.k != other.k {
            return Err(RegressError::InvalidParameter {
                name: "other",
                detail: format!("k mismatch: {} vs {}", self.k, other.k),
            });
        }
        self.xtx
            .add_assign(&other.xtx)
            .map_err(RegressError::from)?;
        for (a, b) in self.xtz.iter_mut().zip(other.xtz.iter()) {
            *a += b;
        }
        self.ztz += other.ztz;
        self.n += other.n;
        Ok(())
    }

    /// Merges a measure observed at the **same design rows** whose
    /// responses are summed point-wise (the MLR analogue of Theorem 3.2).
    /// `XᵀX` and `n` must agree and stay fixed; `Xᵀz` adds. `zᵀz` of a
    /// point-wise sum is *not* derivable (cross terms are lost), so it is
    /// invalidated to `NaN`; [`Self::solve`] remains exact.
    ///
    /// # Errors
    /// [`RegressError::InvalidParameter`] when `k`, `n` or `XᵀX` differ.
    pub fn merge_same_design(&mut self, other: &MlrMeasure) -> Result<()> {
        if self.k != other.k || self.n != other.n {
            return Err(RegressError::InvalidParameter {
                name: "other",
                detail: format!(
                    "shape mismatch: k {} vs {}, n {} vs {}",
                    self.k, other.k, self.n, other.n
                ),
            });
        }
        if !self.xtx.approx_eq(&other.xtx, 1e-9) {
            return Err(RegressError::InvalidParameter {
                name: "other",
                detail: "designs differ (XᵀX mismatch)".into(),
            });
        }
        for (a, b) in self.xtz.iter_mut().zip(other.xtz.iter()) {
            *a += b;
        }
        self.ztz = f64::NAN;
        Ok(())
    }

    /// Solves the normal equations for the coefficient vector `β̂`.
    ///
    /// # Errors
    /// * [`RegressError::NotEnoughData`] when `n < k`.
    /// * [`RegressError::Linalg`] when `XᵀX` is not positive definite
    ///   (collinear design).
    pub fn solve(&self) -> Result<Vec<f64>> {
        if (self.n as usize) < self.k {
            return Err(RegressError::NotEnoughData {
                have: self.n as usize,
                need: self.k,
            });
        }
        let ch = Cholesky::factor(&self.xtx)?;
        Ok(ch.solve(&self.xtz)?)
    }

    /// Residual sum of squares `zᵀz - β̂ᵀXᵀz`, available when `zᵀz` is
    /// known (i.e. no same-design merge occurred).
    ///
    /// # Errors
    /// Propagates [`Self::solve`] errors.
    pub fn rss(&self) -> Result<Option<f64>> {
        if self.ztz.is_nan() {
            return Ok(None);
        }
        let beta = self.solve()?;
        let explained: f64 = beta.iter().zip(self.xtz.iter()).map(|(b, x)| b * x).sum();
        // Clamp tiny negatives from floating-point cancellation.
        Ok(Some((self.ztz - explained).max(0.0)))
    }
}

/// Builds a polynomial-in-time design matrix with columns
/// `[1, t, t², …, t^degree]` over the ticks of `series`.
///
/// # Errors
/// [`RegressError::InvalidParameter`] for `degree + 1 > n`.
pub fn time_polynomial_design(series: &TimeSeries, degree: usize) -> Result<Matrix> {
    let k = degree + 1;
    if k > series.len() {
        return Err(RegressError::InvalidParameter {
            name: "degree",
            detail: format!("degree {degree} needs > {degree} observations"),
        });
    }
    let mut data = Vec::with_capacity(series.len() * k);
    for (t, _) in series.iter() {
        let tf = t as f64;
        let mut p = 1.0;
        for _ in 0..k {
            data.push(p);
            p *= tf;
        }
    }
    Ok(Matrix::from_vec(series.len(), k, data)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use regcube_linalg::vecops::approx_eq;

    #[test]
    fn time_series_measure_matches_isb_fit() {
        let z = TimeSeries::new(0, vec![1.0, 2.5, 2.0, 4.0, 5.5]).unwrap();
        let m = MlrMeasure::from_time_series(&z).unwrap();
        let beta = m.solve().unwrap();
        let isb = crate::isb::Isb::fit(&z).unwrap();
        assert!((beta[0] - isb.base()).abs() < 1e-10);
        assert!((beta[1] - isb.slope()).abs() < 1e-10);
    }

    #[test]
    fn disjoint_merge_equals_pooled_fit() {
        let z =
            TimeSeries::from_fn(0, 19, |t| 2.0 + 0.3 * t as f64 + ((t % 3) as f64) * 0.1).unwrap();
        let (a, b) = (z.window(0, 9).unwrap(), z.window(10, 19).unwrap());
        let mut ma = MlrMeasure::from_time_series(&a).unwrap();
        let mb = MlrMeasure::from_time_series(&b).unwrap();
        ma.merge_disjoint(&mb).unwrap();

        let pooled = MlrMeasure::from_time_series(&z).unwrap();
        assert!(approx_eq(
            &ma.solve().unwrap(),
            &pooled.solve().unwrap(),
            1e-9
        ));
        assert_eq!(ma.n(), 20);
        let (r1, r2) = (ma.rss().unwrap().unwrap(), pooled.rss().unwrap().unwrap());
        assert!((r1 - r2).abs() < 1e-8);
    }

    #[test]
    fn same_design_merge_adds_coefficients() {
        // The MLR generalization of Theorem 3.2: identical designs, summed
        // responses => summed coefficient vectors.
        let z1 = TimeSeries::new(0, vec![1.0, 2.0, 3.5, 3.0]).unwrap();
        let z2 = TimeSeries::new(0, vec![0.5, 1.5, 0.0, 2.0]).unwrap();
        let mut m = MlrMeasure::from_time_series(&z1).unwrap();
        m.merge_same_design(&MlrMeasure::from_time_series(&z2).unwrap())
            .unwrap();
        let merged = m.solve().unwrap();

        let sum = z1.pointwise_sum(&z2).unwrap();
        let direct = MlrMeasure::from_time_series(&sum).unwrap().solve().unwrap();
        assert!(approx_eq(&merged, &direct, 1e-9));
        // RSS is intentionally unavailable after a same-design merge.
        assert!(m.rss().unwrap().is_none());
    }

    #[test]
    fn merge_validation() {
        let a = MlrMeasure::empty(2).unwrap();
        let b = MlrMeasure::empty(3).unwrap();
        let mut a2 = a.clone();
        assert!(a2.merge_disjoint(&b).is_err());
        assert!(a2.merge_same_design(&b).is_err());

        // Same k but different designs must be rejected by same-design merge.
        let z1 = TimeSeries::new(0, vec![1.0, 2.0]).unwrap();
        let z2 = TimeSeries::new(5, vec![1.0, 2.0]).unwrap();
        let mut m1 = MlrMeasure::from_time_series(&z1).unwrap();
        let m2 = MlrMeasure::from_time_series(&z2).unwrap();
        assert!(m1.merge_same_design(&m2).is_err());
    }

    #[test]
    fn underdetermined_and_collinear_systems_error() {
        let mut m = MlrMeasure::empty(2).unwrap();
        m.push_row(&[1.0, 0.0], 1.0).unwrap();
        assert!(matches!(m.solve(), Err(RegressError::NotEnoughData { .. })));

        // Two identical rows: XᵀX singular even though n = k.
        let mut c = MlrMeasure::empty(2).unwrap();
        c.push_row(&[1.0, 1.0], 1.0).unwrap();
        c.push_row(&[1.0, 1.0], 2.0).unwrap();
        assert!(matches!(c.solve(), Err(RegressError::Linalg(_))));
    }

    #[test]
    fn push_row_validates_width() {
        let mut m = MlrMeasure::empty(2).unwrap();
        assert!(m.push_row(&[1.0], 0.0).is_err());
        assert!(MlrMeasure::empty(0).is_err());
    }

    #[test]
    fn from_observations_and_polynomial_design() {
        // Quadratic data is fitted exactly by a degree-2 design.
        let z = TimeSeries::from_fn(0, 9, |t| 1.0 - 2.0 * t as f64 + 0.5 * (t * t) as f64).unwrap();
        let x = time_polynomial_design(&z, 2).unwrap();
        let m = MlrMeasure::from_observations(&x, z.values()).unwrap();
        let beta = m.solve().unwrap();
        assert!(approx_eq(&beta, &[1.0, -2.0, 0.5], 1e-7));
        assert!(m.rss().unwrap().unwrap() < 1e-10);

        assert!(time_polynomial_design(&z, 10).is_err());
        let bad = MlrMeasure::from_observations(&x, &[1.0]);
        assert!(bad.is_err());
    }

    #[test]
    fn spatial_regression_example() {
        // The paper's sensor-network motivation: regress on time AND a
        // spatial coordinate. z = 3 + 0.5 t - 1.5 s.
        let mut m = MlrMeasure::empty(3).unwrap();
        for t in 0..6 {
            for s in 0..4 {
                let z = 3.0 + 0.5 * t as f64 - 1.5 * s as f64;
                m.push_row(&[1.0, t as f64, s as f64], z).unwrap();
            }
        }
        let beta = m.solve().unwrap();
        assert!(approx_eq(&beta, &[3.0, 0.5, -1.5], 1e-9));
    }
}
