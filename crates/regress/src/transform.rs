//! Non-linear regression through basis/response transforms (paper
//! Section 6.2: "this theory is applicable to regression analysis using
//! non-linear functions, such as the log function, polynomial functions,
//! and exponential functions").
//!
//! Each fit reduces to (multiple) linear regression after a deterministic
//! transform, so the warehousing results of Section 3 / [`crate::mlr`]
//! carry over: the transformed sufficient statistics aggregate losslessly.

use crate::error::RegressError;
use crate::mlr::{time_polynomial_design, MlrMeasure};
use crate::series::TimeSeries;
use crate::Result;

/// A fitted polynomial model `ẑ(t) = c₀ + c₁ t + … + c_d t^d`.
#[derive(Debug, Clone, PartialEq)]
pub struct PolyFit {
    /// Coefficients, lowest degree first.
    pub coeffs: Vec<f64>,
}

impl PolyFit {
    /// Predicted value at tick `t` (Horner evaluation).
    pub fn predict(&self, t: i64) -> f64 {
        let tf = t as f64;
        self.coeffs.iter().rev().fold(0.0, |acc, &c| acc * tf + c)
    }

    /// Polynomial degree.
    pub fn degree(&self) -> usize {
        self.coeffs.len().saturating_sub(1)
    }
}

/// Fits a degree-`degree` polynomial to `series` by least squares.
///
/// # Errors
/// * [`RegressError::InvalidParameter`] when the series has fewer than
///   `degree + 1` observations.
/// * [`RegressError::Linalg`] for numerically degenerate designs.
pub fn fit_polynomial(series: &TimeSeries, degree: usize) -> Result<PolyFit> {
    let x = time_polynomial_design(series, degree)?;
    let m = MlrMeasure::from_observations(&x, series.values())?;
    Ok(PolyFit { coeffs: m.solve()? })
}

/// A fitted logarithmic model `ẑ(t) = a + b·ln(t)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogFit {
    /// Additive constant `a`.
    pub a: f64,
    /// Log coefficient `b`.
    pub b: f64,
}

impl LogFit {
    /// Predicted value at tick `t > 0`.
    ///
    /// # Errors
    /// [`RegressError::DomainViolation`] for `t <= 0`.
    pub fn predict(&self, t: i64) -> Result<f64> {
        if t <= 0 {
            return Err(RegressError::DomainViolation {
                transform: "log",
                value: t as f64,
            });
        }
        Ok(self.a + self.b * (t as f64).ln())
    }
}

/// Fits `z(t) = a + b·ln(t)` by linear regression on the transformed
/// abscissa `ln(t)`.
///
/// # Errors
/// * [`RegressError::DomainViolation`] when any tick is `<= 0`.
/// * [`RegressError::NotEnoughData`] for fewer than 2 observations.
/// * [`RegressError::Linalg`] for degenerate designs.
pub fn fit_log(series: &TimeSeries) -> Result<LogFit> {
    if series.len() < 2 {
        return Err(RegressError::NotEnoughData {
            have: series.len(),
            need: 2,
        });
    }
    if series.start() <= 0 {
        return Err(RegressError::DomainViolation {
            transform: "log",
            value: series.start() as f64,
        });
    }
    let mut m = MlrMeasure::empty(2)?;
    for (t, z) in series.iter() {
        m.push_row(&[1.0, (t as f64).ln()], z)?;
    }
    let beta = m.solve()?;
    Ok(LogFit {
        a: beta[0],
        b: beta[1],
    })
}

/// A fitted exponential model `ẑ(t) = A·e^{b t}` (with `A > 0`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExpFit {
    /// Amplitude `A`.
    pub amplitude: f64,
    /// Growth rate `b`.
    pub rate: f64,
}

impl ExpFit {
    /// Predicted value at tick `t`.
    pub fn predict(&self, t: i64) -> f64 {
        self.amplitude * (self.rate * t as f64).exp()
    }
}

/// Fits `z(t) = A·e^{bt}` by linear regression of `ln z` on `t`
/// (log-response transform).
///
/// # Errors
/// * [`RegressError::DomainViolation`] when any observation is `<= 0`.
/// * [`RegressError::NotEnoughData`] for fewer than 2 observations.
/// * [`RegressError::Linalg`] for degenerate designs.
pub fn fit_exponential(series: &TimeSeries) -> Result<ExpFit> {
    if series.len() < 2 {
        return Err(RegressError::NotEnoughData {
            have: series.len(),
            need: 2,
        });
    }
    for (_, z) in series.iter() {
        if z <= 0.0 {
            return Err(RegressError::DomainViolation {
                transform: "exp",
                value: z,
            });
        }
    }
    let log_series = TimeSeries::new(
        series.start(),
        series.values().iter().map(|z| z.ln()).collect(),
    )?;
    let fit = crate::ols::LinearFit::fit(&log_series);
    Ok(ExpFit {
        amplitude: fit.base.exp(),
        rate: fit.slope,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn polynomial_fit_is_exact_on_polynomial_data() {
        let z =
            TimeSeries::from_fn(0, 11, |t| 2.0 + 1.5 * t as f64 - 0.25 * (t * t) as f64).unwrap();
        let fit = fit_polynomial(&z, 2).unwrap();
        assert_eq!(fit.degree(), 2);
        for t in [0, 5, 11] {
            assert!((fit.predict(t) - z.value_at(t).unwrap()).abs() < 1e-7);
        }
    }

    #[test]
    fn polynomial_degree_one_matches_ols() {
        let z = TimeSeries::new(0, vec![1.0, 3.0, 2.0, 5.0]).unwrap();
        let p = fit_polynomial(&z, 1).unwrap();
        let l = crate::ols::LinearFit::fit(&z);
        assert!((p.coeffs[0] - l.base).abs() < 1e-9);
        assert!((p.coeffs[1] - l.slope).abs() < 1e-9);
    }

    #[test]
    fn log_fit_recovers_parameters() {
        let z = TimeSeries::from_fn(1, 64, |t| 4.0 - 1.25 * (t as f64).ln()).unwrap();
        let fit = fit_log(&z).unwrap();
        assert!((fit.a - 4.0).abs() < 1e-8);
        assert!((fit.b + 1.25).abs() < 1e-8);
        assert!((fit.predict(10).unwrap() - z.value_at(10).unwrap()).abs() < 1e-8);
        assert!(fit.predict(0).is_err());
    }

    #[test]
    fn log_fit_domain_checks() {
        let at_zero = TimeSeries::new(0, vec![1.0, 2.0]).unwrap();
        assert!(matches!(
            fit_log(&at_zero),
            Err(RegressError::DomainViolation {
                transform: "log",
                ..
            })
        ));
        let single = TimeSeries::new(1, vec![1.0]).unwrap();
        assert!(matches!(
            fit_log(&single),
            Err(RegressError::NotEnoughData { .. })
        ));
    }

    #[test]
    fn exponential_fit_recovers_parameters() {
        let z = TimeSeries::from_fn(0, 20, |t| 2.5 * (0.11 * t as f64).exp()).unwrap();
        let fit = fit_exponential(&z).unwrap();
        assert!((fit.amplitude - 2.5).abs() < 1e-8);
        assert!((fit.rate - 0.11).abs() < 1e-9);
        assert!((fit.predict(7) - z.value_at(7).unwrap()).abs() < 1e-7);
    }

    #[test]
    fn exponential_fit_domain_checks() {
        let nonpositive = TimeSeries::new(0, vec![1.0, -0.5, 2.0]).unwrap();
        assert!(matches!(
            fit_exponential(&nonpositive),
            Err(RegressError::DomainViolation {
                transform: "exp",
                ..
            })
        ));
        let single = TimeSeries::new(0, vec![1.0]).unwrap();
        assert!(matches!(
            fit_exponential(&single),
            Err(RegressError::NotEnoughData { .. })
        ));
    }

    #[test]
    fn horner_prediction_matches_naive_evaluation() {
        let fit = PolyFit {
            coeffs: vec![1.0, -2.0, 0.5, 0.125],
        };
        for t in [-3i64, 0, 2, 9] {
            let tf = t as f64;
            let naive = 1.0 - 2.0 * tf + 0.5 * tf * tf + 0.125 * tf * tf * tf;
            assert!((fit.predict(t) - naive).abs() < 1e-9);
        }
    }
}
