//! Streaming OLS over irregular time ticks.
//!
//! Section 3 of the paper restricts exposition to consecutive integer
//! ticks and notes that "the general case of multiple linear regression
//! for general stream data with more than one regression variable and/or
//! with **irregular time ticks**" is handled by the same machinery. This
//! module provides that case for simple linear regression: a constant-
//! space accumulator of the sufficient statistics
//! `(n, Σt, Σz, Σt·z, Σt²)` that
//!
//! * accepts observations at arbitrary (gapped, unordered, repeated)
//!   abscissae,
//! * merges with any other accumulator over disjoint observations (the
//!   irregular-tick analogue of Theorem 3.3), and
//! * emits the exact LSE fit at any moment.

use crate::error::RegressError;
use crate::ols::LinearFit;
use crate::series::TimeSeries;
use crate::Result;

/// A constant-space streaming least-squares fitter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunningFit {
    n: u64,
    sum_t: f64,
    sum_z: f64,
    sum_tz: f64,
    sum_tt: f64,
    min_t: f64,
    max_t: f64,
}

impl Default for RunningFit {
    fn default() -> Self {
        RunningFit::new()
    }
}

impl RunningFit {
    /// An empty accumulator.
    pub fn new() -> Self {
        RunningFit {
            n: 0,
            sum_t: 0.0,
            sum_z: 0.0,
            sum_tz: 0.0,
            sum_tt: 0.0,
            min_t: f64::INFINITY,
            max_t: f64::NEG_INFINITY,
        }
    }

    /// Builds an accumulator from a dense series (for cross-checks).
    pub fn from_series(series: &TimeSeries) -> Self {
        let mut fit = RunningFit::new();
        for (t, z) in series.iter() {
            fit.push(t as f64, z);
        }
        fit
    }

    /// Folds one observation `(t, z)` in. Ticks may arrive out of order,
    /// with gaps, or repeatedly (a repeated tick is a second observation
    /// at the same abscissa, not an overwrite).
    pub fn push(&mut self, t: f64, z: f64) {
        self.n += 1;
        self.sum_t += t;
        self.sum_z += z;
        self.sum_tz += t * z;
        self.sum_tt += t * t;
        self.min_t = self.min_t.min(t);
        self.max_t = self.max_t.max(t);
    }

    /// Number of observations folded in.
    #[inline]
    pub fn n(&self) -> u64 {
        self.n
    }

    /// The observed abscissa range, or `None` when empty.
    pub fn t_range(&self) -> Option<(f64, f64)> {
        (self.n > 0).then_some((self.min_t, self.max_t))
    }

    /// Merges another accumulator over a **disjoint** set of observations
    /// (all statistics add). Unlike Theorem 3.3 there is no contiguity
    /// requirement — irregular ticks have no adjacency to preserve.
    pub fn merge(&mut self, other: &RunningFit) {
        self.n += other.n;
        self.sum_t += other.sum_t;
        self.sum_z += other.sum_z;
        self.sum_tz += other.sum_tz;
        self.sum_tt += other.sum_tt;
        self.min_t = self.min_t.min(other.min_t);
        self.max_t = self.max_t.max(other.max_t);
    }

    /// The exact LSE fit of everything folded in so far.
    ///
    /// # Errors
    /// * [`RegressError::NotEnoughData`] when empty.
    /// * [`RegressError::InvalidParameter`] when all abscissae coincide
    ///   (the slope is undefined; unlike dense integer series there is no
    ///   natural zero-slope convention for a *repeated* single abscissa
    ///   with scattered values).
    pub fn fit(&self) -> Result<LinearFit> {
        if self.n == 0 {
            return Err(RegressError::NotEnoughData { have: 0, need: 1 });
        }
        let n = self.n as f64;
        if self.n == 1 {
            // One observation: flat line through it (matches LinearFit::fit).
            return Ok(LinearFit {
                base: self.sum_z,
                slope: 0.0,
            });
        }
        let svs = self.sum_tt - self.sum_t * self.sum_t / n;
        if !(svs.is_finite()) || svs <= f64::EPSILON * self.sum_tt.abs().max(1.0) {
            return Err(RegressError::InvalidParameter {
                name: "abscissae",
                detail: "all observations share one tick; slope undefined".into(),
            });
        }
        let slope = (self.sum_tz - self.sum_t * self.sum_z / n) / svs;
        let base = (self.sum_z - slope * self.sum_t) / n;
        Ok(LinearFit { base, slope })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_batch_fit_on_dense_series() {
        let z = TimeSeries::new(3, vec![1.0, 4.0, 2.0, 8.0, 5.0]).unwrap();
        let batch = LinearFit::fit(&z);
        let streaming = RunningFit::from_series(&z).fit().unwrap();
        assert!((batch.base - streaming.base).abs() < 1e-10);
        assert!((batch.slope - streaming.slope).abs() < 1e-10);
    }

    #[test]
    fn handles_irregular_and_unordered_ticks() {
        // Exact line sampled at gapped, shuffled, non-integer abscissae.
        let mut fit = RunningFit::new();
        for &t in &[10.0, 2.5, 100.0, 7.0, 33.3] {
            fit.push(t, 1.5 - 0.25 * t);
        }
        let f = fit.fit().unwrap();
        assert!((f.base - 1.5).abs() < 1e-9);
        assert!((f.slope + 0.25).abs() < 1e-10);
        assert_eq!(fit.t_range(), Some((2.5, 100.0)));
        assert_eq!(fit.n(), 5);
    }

    #[test]
    fn repeated_abscissae_average() {
        let mut fit = RunningFit::new();
        fit.push(0.0, 1.0);
        fit.push(0.0, 3.0); // two observations at t = 0, mean 2
        fit.push(2.0, 6.0);
        let f = fit.fit().unwrap();
        // LSE through {(0,1),(0,3),(2,6)}: slope 2, base 2.
        assert!((f.slope - 2.0).abs() < 1e-10);
        assert!((f.base - 2.0).abs() < 1e-10);
    }

    #[test]
    fn merge_equals_pooled_stream() {
        let mut a = RunningFit::new();
        let mut b = RunningFit::new();
        let mut pooled = RunningFit::new();
        for i in 0..20 {
            let (t, z) = (i as f64 * 1.7, (i % 5) as f64 - 0.3 * i as f64);
            if i % 2 == 0 {
                a.push(t, z);
            } else {
                b.push(t, z);
            }
            pooled.push(t, z);
        }
        a.merge(&b);
        let (fa, fp) = (a.fit().unwrap(), pooled.fit().unwrap());
        assert!((fa.base - fp.base).abs() < 1e-9);
        assert!((fa.slope - fp.slope).abs() < 1e-10);
        assert_eq!(a.n(), pooled.n());
    }

    #[test]
    fn degenerate_inputs_error() {
        let empty = RunningFit::new();
        assert!(matches!(
            empty.fit(),
            Err(RegressError::NotEnoughData { .. })
        ));
        assert_eq!(empty.t_range(), None);

        let mut single = RunningFit::new();
        single.push(5.0, 7.0);
        let f = single.fit().unwrap();
        assert_eq!((f.base, f.slope), (7.0, 0.0));

        let mut repeated = RunningFit::new();
        repeated.push(1.0, 0.0);
        repeated.push(1.0, 5.0);
        assert!(matches!(
            repeated.fit(),
            Err(RegressError::InvalidParameter { .. })
        ));
    }

    #[test]
    fn default_is_empty() {
        assert_eq!(RunningFit::default(), RunningFit::new());
    }
}
