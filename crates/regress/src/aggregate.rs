//! Lossless ISB aggregation — Theorems 3.2 and 3.3 of the paper.
//!
//! These two theorems are what make regression cubes possible: the ISB of
//! an aggregated cell is computed *exactly* from descendant ISBs, without
//! retrieving the original stream.
//!
//! * [`merge_standard`] (Theorem 3.2): roll-up on a standard dimension.
//!   The aggregate series is the point-wise sum of descendant series over
//!   a common interval, and both fit parameters are simply additive:
//!   `β̂_a = Σ β̂_i`, `α̂_a = Σ α̂_i`.
//! * [`merge_time`] (Theorem 3.3): roll-up on the time dimension. The
//!   descendant intervals partition the aggregate interval, and the
//!   aggregate fit follows from per-segment sufficient statistics
//!   (`S_i = Σ z`, `Σ t·z`) that are recoverable from each segment's ISB.
//!
//! [`merge_time`] uses the transparent sufficient-statistics derivation;
//! [`merge_time_theorem33`] implements the paper's formula *verbatim*
//! (Theorem 3.3(b)). Property tests in `tests/proptests.rs` verify that the
//! two agree with each other and with brute-force OLS on the concatenated
//! raw series.

use crate::error::RegressError;
use crate::isb::Isb;
use crate::ols::svs;
use crate::Result;

/// Merges sibling ISBs over a **common interval** — Theorem 3.2
/// (aggregation on a standard dimension).
///
/// The aggregated cell's series is defined as the point-wise sum
/// `z(t) = Σ_i z_i(t)`; its LSE fit satisfies `α̂_a = Σ α̂_i` and
/// `β̂_a = Σ β̂_i`.
///
/// # Errors
/// * [`RegressError::NoInputs`] for an empty slice.
/// * [`RegressError::IntervalMismatch`] when any two inputs differ in
///   interval.
pub fn merge_standard(isbs: &[Isb]) -> Result<Isb> {
    let first = isbs.first().ok_or(RegressError::NoInputs)?;
    let mut base = 0.0;
    let mut slope = 0.0;
    for isb in isbs {
        if !isb.same_interval(first) {
            return Err(RegressError::IntervalMismatch {
                left: first.interval(),
                right: isb.interval(),
            });
        }
        base += isb.base();
        slope += isb.slope();
    }
    Isb::new(first.start(), first.end(), base, slope)
}

/// Incremental form of Theorem 3.2: accumulates `next` into `acc`.
///
/// Useful inside cubing loops where descendants stream one at a time; the
/// H-tree aggregation paths use this to avoid materializing slices.
///
/// # Errors
/// [`RegressError::IntervalMismatch`] when the intervals differ.
pub fn merge_standard_into(acc: &mut Isb, next: &Isb) -> Result<()> {
    if !acc.same_interval(next) {
        return Err(RegressError::IntervalMismatch {
            left: acc.interval(),
            right: next.interval(),
        });
    }
    *acc = Isb::new(
        acc.start(),
        acc.end(),
        acc.base() + next.base(),
        acc.slope() + next.slope(),
    )?;
    Ok(())
}

/// Validates that `segments` are sorted and contiguous (each starts one
/// tick after its predecessor ends), i.e. they partition
/// `[segments[0].start, segments.last().end]`.
fn check_partition(segments: &[Isb]) -> Result<()> {
    for pair in segments.windows(2) {
        if pair[1].start() != pair[0].end() + 1 {
            return Err(RegressError::NotAPartition {
                detail: format!(
                    "segment [{}, {}] does not follow [{}, {}]",
                    pair[1].start(),
                    pair[1].end(),
                    pair[0].start(),
                    pair[0].end()
                ),
            });
        }
    }
    Ok(())
}

/// Merges consecutive time segments into one ISB — Theorem 3.3
/// (aggregation on the time dimension), via sufficient statistics.
///
/// Each segment ISB yields its segment sum `S_i` and moment `Σ t·z`
/// exactly ([`Isb::sum_z`], [`Isb::sum_tz`]); from their totals the
/// aggregate slope and base follow from Lemma 3.1:
///
/// ```text
/// β̂_a = (Σ t·z - t̄_a · S_a) / SVS(n_a)
/// α̂_a = z̄_a - β̂_a · t̄_a
/// ```
///
/// Segments must be sorted by start tick and contiguous.
///
/// # Errors
/// * [`RegressError::NoInputs`] for an empty slice.
/// * [`RegressError::NotAPartition`] on gaps or overlaps.
pub fn merge_time(segments: &[Isb]) -> Result<Isb> {
    let first = segments.first().ok_or(RegressError::NoInputs)?;
    if segments.len() == 1 {
        return Ok(*first);
    }
    check_partition(segments)?;

    let last = segments[segments.len() - 1];
    let start = first.start();
    let end = last.end();
    let n_a = (end - start + 1) as f64;
    let t_bar = (start as f64 + end as f64) / 2.0;

    let mut sum_z = 0.0;
    let mut sum_tz = 0.0;
    for seg in segments {
        sum_z += seg.sum_z();
        sum_tz += seg.sum_tz();
    }
    let z_bar = sum_z / n_a;

    // A single-tick aggregate (only possible from one 1-tick segment, which
    // the early return above handles) would make SVS zero; with >= 2 ticks
    // SVS is strictly positive.
    let slope = (sum_tz - t_bar * sum_z) / svs(n_a as u64);
    let base = z_bar - slope * t_bar;
    Isb::new(start, end, base, slope)
}

/// Theorem 3.3(b) exactly as printed in the paper:
///
/// ```text
/// β̂_a = Σ_i [(n_i³ - n_i)/(n_a³ - n_a)] β̂_i
///     + 6 Σ_i [(2 Σ_{j<i} n_j + n_i - n_a)/(n_a³ - n_a)] · (n_a S_i - n_i S_a)/n_a
/// α̂_a = z̄_a - β̂_a t̄_a
/// ```
///
/// Kept alongside [`merge_time`] (the two are algebraically identical —
/// the `Σ_i w_i n_i z̄_a` correction term vanishes because
/// `Σ_i n_i t̄_i = n_a t̄_a`) so the paper's formula itself is under test.
///
/// # Errors
/// Same as [`merge_time`].
pub fn merge_time_theorem33(segments: &[Isb]) -> Result<Isb> {
    let first = segments.first().ok_or(RegressError::NoInputs)?;
    if segments.len() == 1 {
        return Ok(*first);
    }
    check_partition(segments)?;

    let last = segments[segments.len() - 1];
    let start = first.start();
    let end = last.end();
    let n_a = (end - start + 1) as f64;
    let t_bar_a = (start as f64 + end as f64) / 2.0;
    let cube_na = n_a * n_a * n_a - n_a;

    // S_a = Σ S_i with S_i = n_i z̄_i (z̄_i from Equation 2).
    let s_a: f64 = segments.iter().map(|s| s.sum_z()).sum();
    let z_bar_a = s_a / n_a;

    let mut slope = 0.0;
    let mut prefix_n = 0.0; // Σ_{j<i} n_j
    for seg in segments {
        let n_i = seg.n() as f64;
        let s_i = seg.sum_z();
        let cube_ni = n_i * n_i * n_i - n_i;
        slope += (cube_ni / cube_na) * seg.slope();
        slope += 6.0 * ((2.0 * prefix_n + n_i - n_a) / cube_na) * ((n_a * s_i - n_i * s_a) / n_a);
        prefix_n += n_i;
    }
    let base = z_bar_a - slope * t_bar_a;
    Isb::new(start, end, base, slope)
}

/// Merges segments that may arrive unsorted: sorts by start tick first,
/// then applies [`merge_time`].
///
/// # Errors
/// Same as [`merge_time`].
pub fn merge_time_unsorted(segments: &[Isb]) -> Result<Isb> {
    let mut sorted = segments.to_vec();
    sorted.sort_by_key(Isb::start);
    merge_time(&sorted)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::series::TimeSeries;

    fn fit(series: &TimeSeries) -> Isb {
        Isb::fit(series).unwrap()
    }

    // ---- Theorem 3.2 -----------------------------------------------------

    #[test]
    fn thm32_matches_direct_fit_of_summed_series() {
        let z1 = TimeSeries::new(0, vec![1.0, 3.0, 2.0, 5.0, 4.0]).unwrap();
        let z2 = TimeSeries::new(0, vec![0.5, 0.0, 1.5, 1.0, 2.0]).unwrap();
        let z3 = TimeSeries::new(0, vec![2.0, 2.0, 2.0, 2.0, 2.0]).unwrap();

        let merged = merge_standard(&[fit(&z1), fit(&z2), fit(&z3)]).unwrap();
        let direct = fit(&TimeSeries::sum_many(&[z1, z2, z3]).unwrap());
        assert!(merged.approx_eq(&direct, 1e-12));
    }

    #[test]
    fn fig2_caption_isbs_satisfy_thm32() {
        // Figure 2 of the paper: ISBs of z1, z2 and z = z1 + z2.
        let z1 = Isb::new(0, 19, 0.540995, 0.0318379).unwrap();
        let z2 = Isb::new(0, 19, 0.294875, 0.0493375).unwrap();
        let expected = Isb::new(0, 19, 0.83587, 0.0811754).unwrap();
        let merged = merge_standard(&[z1, z2]).unwrap();
        assert!(merged.approx_eq(&expected, 1e-6), "{merged} vs {expected}");
    }

    #[test]
    fn thm32_rejects_interval_mismatch_and_empty() {
        let a = Isb::new(0, 9, 1.0, 0.1).unwrap();
        let b = Isb::new(1, 10, 1.0, 0.1).unwrap();
        assert!(matches!(
            merge_standard(&[a, b]),
            Err(RegressError::IntervalMismatch { .. })
        ));
        assert!(matches!(merge_standard(&[]), Err(RegressError::NoInputs)));
    }

    #[test]
    fn merge_standard_into_accumulates() {
        let mut acc = Isb::new(0, 9, 1.0, 0.5).unwrap();
        let next = Isb::new(0, 9, 2.0, -0.25).unwrap();
        merge_standard_into(&mut acc, &next).unwrap();
        assert!((acc.base() - 3.0).abs() < 1e-12);
        assert!((acc.slope() - 0.25).abs() < 1e-12);

        let bad = Isb::new(0, 8, 0.0, 0.0).unwrap();
        assert!(merge_standard_into(&mut acc, &bad).is_err());
    }

    #[test]
    fn thm32_singleton_is_identity() {
        let a = Isb::new(2, 11, -3.0, 0.7).unwrap();
        assert_eq!(merge_standard(&[a]).unwrap(), a);
    }

    // ---- Theorem 3.3 -----------------------------------------------------

    #[test]
    fn thm33_matches_direct_fit_of_concatenated_series() {
        let z = TimeSeries::new(
            0,
            vec![0.62, 0.24, 1.03, 0.57, 0.59, 0.57, 0.87, 1.10, 0.71, 0.56],
        )
        .unwrap();
        let parts = z.split_into(3).unwrap(); // uneven: 3+3+3+1 ticks
        let isbs: Vec<Isb> = parts.iter().map(fit).collect();

        let merged = merge_time(&isbs).unwrap();
        let direct = fit(&z);
        assert!(merged.approx_eq(&direct, 1e-10), "{merged} vs {direct}");
    }

    #[test]
    fn fig3_caption_isbs_satisfy_thm33() {
        // Figure 3 of the paper: [0,9] + [10,19] -> [0,19]. The caption ISBs
        // are rounded to 6 significant digits, hence the 1e-5 tolerance.
        let seg1 = Isb::new(0, 9, 0.582995, 0.0240189).unwrap();
        let seg2 = Isb::new(10, 19, 0.459046, 0.047474).unwrap();
        let expected = Isb::new(0, 19, 0.509033, 0.0431806).unwrap();

        let merged = merge_time(&[seg1, seg2]).unwrap();
        assert!(merged.approx_eq(&expected, 1e-5), "{merged} vs {expected}");

        let verbatim = merge_time_theorem33(&[seg1, seg2]).unwrap();
        assert!(
            verbatim.approx_eq(&expected, 1e-5),
            "{verbatim} vs {expected}"
        );
    }

    #[test]
    fn thm33_paper_formula_agrees_with_sufficient_statistics() {
        let z = TimeSeries::from_fn(5, 44, |t| 0.3 * t as f64 + ((t * 7919) % 13) as f64 * 0.11)
            .unwrap();
        for k in [2usize, 3, 7, 10] {
            let parts = z.split_into(k).unwrap();
            let isbs: Vec<Isb> = parts.iter().map(fit).collect();
            let a = merge_time(&isbs).unwrap();
            let b = merge_time_theorem33(&isbs).unwrap();
            assert!(a.approx_eq(&b, 1e-9), "k={k}: {a} vs {b}");
        }
    }

    #[test]
    fn thm33_rejects_gaps_overlaps_and_empty() {
        let a = Isb::new(0, 4, 1.0, 0.0).unwrap();
        let gap = Isb::new(6, 9, 1.0, 0.0).unwrap();
        let overlap = Isb::new(4, 9, 1.0, 0.0).unwrap();
        assert!(matches!(
            merge_time(&[a, gap]),
            Err(RegressError::NotAPartition { .. })
        ));
        assert!(merge_time(&[a, overlap]).is_err());
        assert!(matches!(merge_time(&[]), Err(RegressError::NoInputs)));
        assert!(matches!(
            merge_time_theorem33(&[]),
            Err(RegressError::NoInputs)
        ));
    }

    #[test]
    fn thm33_singleton_is_identity() {
        let a = Isb::new(3, 9, 0.5, -0.2).unwrap();
        assert_eq!(merge_time(&[a]).unwrap(), a);
        assert_eq!(merge_time_theorem33(&[a]).unwrap(), a);
    }

    #[test]
    fn merge_time_unsorted_sorts_first() {
        let z = TimeSeries::from_fn(0, 11, |t| (t as f64).sin()).unwrap();
        let parts = z.split_into(4).unwrap();
        let mut isbs: Vec<Isb> = parts.iter().map(fit).collect();
        isbs.reverse();
        let merged = merge_time_unsorted(&isbs).unwrap();
        assert!(merged.approx_eq(&fit(&z), 1e-10));
    }

    #[test]
    fn thm33_handles_single_tick_segments() {
        let z = TimeSeries::new(0, vec![5.0, 7.0, 6.0, 9.0]).unwrap();
        let parts = z.split_into(1).unwrap();
        let isbs: Vec<Isb> = parts.iter().map(fit).collect();
        // Each 1-tick ISB has slope 0 / base = value; the merge must still
        // reconstruct the exact fit because S_i carries the values.
        let merged = merge_time(&isbs).unwrap();
        assert!(merged.approx_eq(&fit(&z), 1e-10));
    }

    // ---- Theorem 3.1(b): minimality of the ISB representation ------------

    #[test]
    fn thm31_isb_components_are_independent() {
        // t_b cannot be dropped: z1 = 0,0,0 over [0,2]; z2 = 0,0 over [1,2].
        let z1 = fit(&TimeSeries::new(0, vec![0.0, 0.0, 0.0]).unwrap());
        let z2 = fit(&TimeSeries::new(1, vec![0.0, 0.0]).unwrap());
        assert_eq!(z1.end(), z2.end());
        assert_eq!(z1.base(), z2.base());
        assert_eq!(z1.slope(), z2.slope());
        assert_ne!(z1.start(), z2.start());

        // β̂ cannot be dropped: 0,0 vs 0,1 over [0,1] share t_b, t_e, α̂.
        let f1 = fit(&TimeSeries::new(0, vec![0.0, 0.0]).unwrap());
        let f2 = fit(&TimeSeries::new(0, vec![0.0, 1.0]).unwrap());
        assert_eq!(f1.base(), f2.base());
        assert_ne!(f1.slope(), f2.slope());

        // α̂ cannot be dropped: 0,0 vs 1,1 over [0,1] share t_b, t_e, β̂.
        let g1 = fit(&TimeSeries::new(0, vec![0.0, 0.0]).unwrap());
        let g2 = fit(&TimeSeries::new(0, vec![1.0, 1.0]).unwrap());
        assert_eq!(g1.slope(), g2.slope());
        assert_ne!(g1.base(), g2.base());
    }
}
