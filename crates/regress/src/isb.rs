//! Compressed regression representations (paper Section 3.2).
//!
//! For linear regression analysis, a cell's time series can be replaced by
//! either of two equivalent 4-number representations:
//!
//! * **ISB** — `([t_b, t_e], α̂, β̂)`: *I*nterval, *S*lope, *B*ase.
//! * **IntVal** — `([t_b, t_e], z_b, z_e)`: interval plus the fitted values
//!   at the endpoints.
//!
//! Theorem 3.1 shows ISB is *lossless for regression warehousing* (the ISB
//! of every ancestor cell is derivable from base-cell ISBs) and *minimal*
//! (no proper subset of its four components suffices). Whether fewer than 4
//! numbers could ever work is open — the theorem only rules out subsets.

use crate::error::RegressError;
use crate::ols::{svs, LinearFit};
use crate::series::TimeSeries;
use crate::Result;
use std::fmt;

/// The ISB representation `([t_b, t_e], α̂, β̂)` of a time series' LSE
/// linear fit.
///
/// This is the measure warehoused in every regression-cube cell. All
/// aggregation theorems of the paper operate on this type; see
/// [`crate::aggregate`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Isb {
    start: i64,
    end: i64,
    base: f64,
    slope: f64,
}

impl Isb {
    /// Assembles an ISB from raw components.
    ///
    /// # Errors
    /// [`RegressError::InvalidParameter`] when `end < start`.
    pub fn new(start: i64, end: i64, base: f64, slope: f64) -> Result<Self> {
        if end < start {
            return Err(RegressError::InvalidParameter {
                name: "interval",
                detail: format!("end {end} precedes start {start}"),
            });
        }
        Ok(Isb {
            start,
            end,
            base,
            slope,
        })
    }

    /// Fits `series` with LSE regression and returns its ISB.
    ///
    /// # Errors
    /// Construction invariants only (a `TimeSeries` is never empty).
    pub fn fit(series: &TimeSeries) -> Result<Self> {
        let f = LinearFit::fit(series);
        Isb::new(series.start(), series.end(), f.base, f.slope)
    }

    /// First tick `t_b`.
    #[inline]
    pub fn start(&self) -> i64 {
        self.start
    }

    /// Last tick `t_e`.
    #[inline]
    pub fn end(&self) -> i64 {
        self.end
    }

    /// The closed interval `[t_b, t_e]`.
    #[inline]
    pub fn interval(&self) -> (i64, i64) {
        (self.start, self.end)
    }

    /// The base `α̂`.
    #[inline]
    pub fn base(&self) -> f64 {
        self.base
    }

    /// The slope `β̂` — the quantity exception thresholds test.
    #[inline]
    pub fn slope(&self) -> f64 {
        self.slope
    }

    /// Number of ticks `n = t_e - t_b + 1`.
    #[inline]
    pub fn n(&self) -> u64 {
        (self.end - self.start + 1) as u64
    }

    /// The time centroid `t̄ = (t_b + t_e)/2`.
    #[inline]
    pub fn mean_t(&self) -> f64 {
        (self.start as f64 + self.end as f64) / 2.0
    }

    /// Fitted value `ẑ(t) = α̂ + β̂ t`.
    #[inline]
    pub fn predict(&self, t: i64) -> f64 {
        self.base + self.slope * t as f64
    }

    /// The series mean `z̄`, recovered via Equation 2: because the LSE line
    /// passes through the centroid, `z̄ = α̂ + β̂ t̄`.
    #[inline]
    pub fn mean_z(&self) -> f64 {
        self.base + self.slope * self.mean_t()
    }

    /// The segment sum `S = Σ z(t) = n · z̄` — the quantity Theorem 3.3
    /// needs from each descendant, derivable from the ISB alone.
    #[inline]
    pub fn sum_z(&self) -> f64 {
        self.n() as f64 * self.mean_z()
    }

    /// `Σ t·z(t)`, the other sufficient statistic of the fit:
    /// `Σ (t - t̄) z = β̂·SVS(n)` plus `t̄·S`.
    #[inline]
    pub fn sum_tz(&self) -> f64 {
        self.slope * svs(self.n()) + self.mean_t() * self.sum_z()
    }

    /// The fit as a [`LinearFit`] (dropping the interval).
    #[inline]
    pub fn linear_fit(&self) -> LinearFit {
        LinearFit {
            base: self.base,
            slope: self.slope,
        }
    }

    /// Converts to the equivalent IntVal representation.
    pub fn to_intval(&self) -> IntVal {
        IntVal {
            start: self.start,
            end: self.end,
            z_start: self.predict(self.start),
            z_end: self.predict(self.end),
        }
    }

    /// Re-fits this ISB as if `delta` had been added to the observed value
    /// at tick `t`, without access to the original series.
    ///
    /// The LSE coefficients are *linear* in the observed values over a
    /// fixed dense tick design, so the correction is exact:
    ///
    /// ```text
    /// Δβ̂ = δ·(t − t̄) / SVS(n)      Δα̂ = δ/n − Δβ̂·t̄
    /// ```
    ///
    /// with the [`crate::ols::LinearFit`] single-tick convention (`n = 1`
    /// keeps slope `0` and absorbs `δ` into the base). This is what lets a
    /// late-arriving stream record amend an already-warehoused cell fit in
    /// O(1), instead of replaying the unit's series.
    ///
    /// # Errors
    /// [`RegressError::InvalidParameter`] when `t` lies outside
    /// `[t_b, t_e]` — an amendment cannot extend the fitted interval.
    pub fn amend_tick(&self, t: i64, delta: f64) -> Result<Self> {
        if t < self.start || t > self.end {
            return Err(RegressError::InvalidParameter {
                name: "amend_tick",
                detail: format!(
                    "tick {t} outside fitted interval [{}, {}]",
                    self.start, self.end
                ),
            });
        }
        let n = self.n();
        if n == 1 {
            return Isb::new(self.start, self.end, self.base + delta, self.slope);
        }
        let d_slope = delta * (t as f64 - self.mean_t()) / svs(n);
        let d_base = delta / n as f64 - d_slope * self.mean_t();
        Isb::new(
            self.start,
            self.end,
            self.base + d_base,
            self.slope + d_slope,
        )
    }

    /// `true` when the two ISBs cover the same interval.
    #[inline]
    pub fn same_interval(&self, other: &Isb) -> bool {
        self.interval() == other.interval()
    }

    /// Approximate equality on all four components.
    pub fn approx_eq(&self, other: &Isb, tol: f64) -> bool {
        self.interval() == other.interval()
            && (self.base - other.base).abs() <= tol
            && (self.slope - other.slope).abs() <= tol
    }
}

impl fmt::Display for Isb {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "([{}, {}], {:.6}, {:.6})",
            self.start, self.end, self.base, self.slope
        )
    }
}

/// The IntVal representation `([t_b, t_e], z_b, z_e)`: the interval plus
/// the fitted line's values at both endpoints.
///
/// Equivalent to [`Isb`] — each is derivable from the other (Section 3.2);
/// the cube implementation warehouses ISB and offers IntVal for display
/// and interoperability.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IntVal {
    start: i64,
    end: i64,
    z_start: f64,
    z_end: f64,
}

impl IntVal {
    /// Assembles an IntVal from raw components.
    ///
    /// # Errors
    /// [`RegressError::InvalidParameter`] when `end < start`.
    pub fn new(start: i64, end: i64, z_start: f64, z_end: f64) -> Result<Self> {
        if end < start {
            return Err(RegressError::InvalidParameter {
                name: "interval",
                detail: format!("end {end} precedes start {start}"),
            });
        }
        Ok(IntVal {
            start,
            end,
            z_start,
            z_end,
        })
    }

    /// First tick `t_b`.
    #[inline]
    pub fn start(&self) -> i64 {
        self.start
    }

    /// Last tick `t_e`.
    #[inline]
    pub fn end(&self) -> i64 {
        self.end
    }

    /// Fitted value at `t_b`.
    #[inline]
    pub fn z_start(&self) -> f64 {
        self.z_start
    }

    /// Fitted value at `t_e`.
    #[inline]
    pub fn z_end(&self) -> f64 {
        self.z_end
    }

    /// Converts back to the ISB representation.
    ///
    /// A single-tick interval carries no slope information; it converts to
    /// slope `0`, matching [`LinearFit::fit`]'s convention.
    pub fn to_isb(&self) -> Isb {
        if self.start == self.end {
            return Isb {
                start: self.start,
                end: self.end,
                base: self.z_start,
                slope: 0.0,
            };
        }
        let slope = (self.z_end - self.z_start) / (self.end - self.start) as f64;
        let base = self.z_start - slope * self.start as f64;
        Isb {
            start: self.start,
            end: self.end,
            base,
            slope,
        }
    }
}

impl fmt::Display for IntVal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "([{}, {}], {:.6}, {:.6})",
            self.start, self.end, self.z_start, self.z_end
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fit_produces_consistent_isb() {
        let z = TimeSeries::from_fn(0, 9, |t| 1.0 + 0.25 * t as f64).unwrap();
        let isb = Isb::fit(&z).unwrap();
        assert_eq!(isb.interval(), (0, 9));
        assert!((isb.slope() - 0.25).abs() < 1e-12);
        assert!((isb.base() - 1.0).abs() < 1e-12);
        assert_eq!(isb.n(), 10);
        assert_eq!(isb.mean_t(), 4.5);
    }

    #[test]
    fn invalid_intervals_are_rejected() {
        assert!(Isb::new(5, 4, 0.0, 0.0).is_err());
        assert!(IntVal::new(5, 4, 0.0, 0.0).is_err());
    }

    #[test]
    fn mean_and_sum_are_recovered_from_the_isb() {
        let z = TimeSeries::new(3, vec![2.0, 7.0, 1.0, 4.0, 9.0]).unwrap();
        let isb = Isb::fit(&z).unwrap();
        assert!((isb.mean_z() - z.mean()).abs() < 1e-12);
        assert!((isb.sum_z() - z.sum()).abs() < 1e-12);
        assert!((isb.sum_tz() - z.sum_tz()).abs() < 1e-9);
    }

    #[test]
    fn isb_intval_round_trip() {
        let isb = Isb::new(10, 30, -2.5, 0.125).unwrap();
        let iv = isb.to_intval();
        assert!((iv.z_start() - isb.predict(10)).abs() < 1e-12);
        assert!((iv.z_end() - isb.predict(30)).abs() < 1e-12);
        let back = iv.to_isb();
        assert!(back.approx_eq(&isb, 1e-12));
    }

    #[test]
    fn intval_round_trip_single_tick() {
        let isb = Isb::new(7, 7, 3.0, 0.0).unwrap();
        let back = isb.to_intval().to_isb();
        assert_eq!(back, isb);
    }

    #[test]
    fn display_formats_like_the_paper() {
        let isb = Isb::new(0, 19, 0.540995, 0.0318379).unwrap();
        assert_eq!(format!("{isb}"), "([0, 19], 0.540995, 0.031838)");
        let iv = IntVal::new(0, 1, 1.0, 2.0).unwrap();
        assert!(format!("{iv}").starts_with("([0, 1]"));
    }

    #[test]
    fn amend_tick_matches_a_refit_of_the_amended_series() {
        let values = vec![2.0, 7.0, 1.0, 4.0, 9.0, -3.0];
        for t in 3..9 {
            let delta = 2.75;
            let z = TimeSeries::new(3, values.clone()).unwrap();
            let amended = Isb::fit(&z).unwrap().amend_tick(t, delta).unwrap();
            let mut patched = values.clone();
            patched[(t - 3) as usize] += delta;
            let refit = Isb::fit(&TimeSeries::new(3, patched).unwrap()).unwrap();
            assert!(
                amended.approx_eq(&refit, 1e-12),
                "t={t}: {amended} vs refit {refit}"
            );
        }
    }

    #[test]
    fn amend_tick_single_tick_absorbs_delta_into_base() {
        let isb = Isb::new(5, 5, 3.0, 0.0).unwrap();
        let amended = isb.amend_tick(5, -1.5).unwrap();
        assert_eq!(amended.base(), 1.5);
        assert_eq!(amended.slope(), 0.0);
    }

    #[test]
    fn amend_tick_rejects_out_of_interval_ticks() {
        let isb = Isb::new(5, 9, 1.0, 0.5).unwrap();
        assert!(isb.amend_tick(4, 1.0).is_err());
        assert!(isb.amend_tick(10, 1.0).is_err());
    }

    #[test]
    fn same_interval_and_approx_eq() {
        let a = Isb::new(0, 9, 1.0, 2.0).unwrap();
        let b = Isb::new(0, 9, 1.0 + 1e-9, 2.0).unwrap();
        let c = Isb::new(0, 8, 1.0, 2.0).unwrap();
        assert!(a.same_interval(&b));
        assert!(!a.same_interval(&c));
        assert!(a.approx_eq(&b, 1e-6));
        assert!(!a.approx_eq(&c, 1e-6));
        assert!(!a.approx_eq(&Isb::new(0, 9, 2.0, 2.0).unwrap(), 1e-6));
    }
}
