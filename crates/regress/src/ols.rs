//! Ordinary least-squares linear fits of time series (paper Section 3.1).
//!
//! A *linear fit* of `z(t) : t ∈ [t_b, t_e]` is `ẑ(t) = α̂ + β̂ t`. The
//! least-square-error (LSE) parameters are given by **Lemma 3.1**:
//!
//! ```text
//! β̂ = Σ_t [(t - t̄)/SVS] · z(t)        (slope)
//! α̂ = z̄ - β̂ t̄                        (base)
//! ```
//!
//! where `SVS = Σ (t - t̄)²` is the *sum of variance squares* of `t`, which
//! for `n` consecutive integers has the closed form `(n³ - n)/12`
//! (**Lemma 3.2**, see [`svs`]).

use crate::error::RegressError;
use crate::series::TimeSeries;
use crate::Result;

/// Sum of variance squares of `n` consecutive integer ticks:
/// `Σ_{j=i}^{i+n-1} (j - j̄)² = (n³ - n) / 12` (Lemma 3.2).
///
/// Independent of the interval's position `i`.
#[inline]
pub fn svs(n: u64) -> f64 {
    let nf = n as f64;
    (nf * nf * nf - nf) / 12.0
}

/// The least-squares linear fit `ẑ(t) = base + slope · t` of a series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearFit {
    /// The base `α̂` (intercept at `t = 0`).
    pub base: f64,
    /// The slope `β̂`.
    pub slope: f64,
}

impl LinearFit {
    /// Computes the LSE linear fit of `series` using Lemma 3.1.
    ///
    /// A single-observation series has an undefined slope under LSE; in
    /// keeping with the stream setting (a brand-new cell with one tick of
    /// history shows "no trend yet") we define it as slope `0` with base
    /// equal to the lone observation.
    pub fn fit(series: &TimeSeries) -> LinearFit {
        let n = series.len() as u64;
        if n == 1 {
            return LinearFit {
                base: series.values()[0],
                slope: 0.0,
            };
        }
        let t_bar = series.mean_t();
        let z_bar = series.mean();
        let svs_n = svs(n);
        // β̂ = Σ (t - t̄) z(t) / SVS; subtracting z̄ is unnecessary because
        // Σ (t - t̄) = 0 (the paper's Equation 1 notes the same).
        let mut num = 0.0;
        for (t, z) in series.iter() {
            num += (t as f64 - t_bar) * z;
        }
        let slope = num / svs_n;
        LinearFit {
            base: z_bar - slope * t_bar,
            slope,
        }
    }

    /// Predicted value `ẑ(t)`.
    #[inline]
    pub fn predict(&self, t: i64) -> f64 {
        self.base + self.slope * t as f64
    }

    /// Residual `z(t) - ẑ(t)` for every observation of `series`.
    pub fn residuals(&self, series: &TimeSeries) -> Vec<f64> {
        series.iter().map(|(t, z)| z - self.predict(t)).collect()
    }

    /// Residual sum of squares `RSS(α̂, β̂) = Σ [z(t) - ẑ(t)]²`
    /// (Definition 1).
    pub fn rss(&self, series: &TimeSeries) -> f64 {
        series
            .iter()
            .map(|(t, z)| {
                let r = z - self.predict(t);
                r * r
            })
            .sum()
    }

    /// Coefficient of determination `R² = 1 - RSS / TSS`.
    ///
    /// Returns `1.0` for a constant series fitted exactly and `0.0` for a
    /// constant series with residual error (degenerate `TSS = 0` cases).
    pub fn r_squared(&self, series: &TimeSeries) -> f64 {
        let mean = series.mean();
        let tss: f64 = series
            .iter()
            .map(|(_, z)| {
                let d = z - mean;
                d * d
            })
            .sum();
        let rss = self.rss(series);
        if tss == 0.0 {
            if rss == 0.0 {
                1.0
            } else {
                0.0
            }
        } else {
            1.0 - rss / tss
        }
    }
}

/// Convenience wrapper mirroring the fallible constructors elsewhere in
/// the crate. A [`TimeSeries`] is never empty, so this cannot fail today;
/// the `Result` keeps the signature stable if stricter validation (e.g.
/// minimum observation counts) is added.
///
/// # Errors
/// None currently; see above.
pub fn fit(series: &TimeSeries) -> Result<LinearFit> {
    let _ = RegressError::EmptySeries; // the reserved failure mode
    Ok(LinearFit::fit(series))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(start: i64, v: &[f64]) -> TimeSeries {
        TimeSeries::new(start, v.to_vec()).unwrap()
    }

    #[test]
    fn svs_matches_direct_summation() {
        for n in 1u64..=50 {
            for offset in [-7i64, 0, 3] {
                let t_bar = ((offset + offset + n as i64 - 1) as f64) / 2.0;
                let direct: f64 = (0..n as i64)
                    .map(|j| {
                        let t = (offset + j) as f64;
                        (t - t_bar) * (t - t_bar)
                    })
                    .sum();
                assert!(
                    (svs(n) - direct).abs() < 1e-9,
                    "svs({n}) offset {offset}: {} vs {direct}",
                    svs(n)
                );
            }
        }
    }

    #[test]
    fn perfect_line_is_recovered_exactly() {
        let z = TimeSeries::from_fn(5, 20, |t| 3.25 - 0.5 * t as f64).unwrap();
        let f = LinearFit::fit(&z);
        assert!((f.slope - (-0.5)).abs() < 1e-12);
        assert!((f.base - 3.25).abs() < 1e-12);
        assert!(f.rss(&z) < 1e-18);
        assert!((f.r_squared(&z) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fit_passes_through_the_centroid() {
        let z = series(
            0,
            &[0.62, 0.24, 1.03, 0.57, 0.59, 0.57, 0.87, 1.10, 0.71, 0.56],
        );
        let f = LinearFit::fit(&z);
        let at_centroid = f.predict(0) + f.slope * z.mean_t(); // α̂ + β̂ t̄
        assert!((at_centroid - z.mean()).abs() < 1e-12);
    }

    #[test]
    fn example2_figure1_series_has_mild_positive_trend() {
        // The Example 2 / Figure 1 series from the paper.
        let z = series(
            0,
            &[0.62, 0.24, 1.03, 0.57, 0.59, 0.57, 0.87, 1.10, 0.71, 0.56],
        );
        let f = LinearFit::fit(&z);
        // Hand-computed: z̄ = 0.686, Σ(t-4.5)z = 1.99, SVS = 82.5.
        assert!((f.slope - 1.99 / 82.5).abs() < 1e-9);
        assert!((f.base - (0.686 - 1.99 / 82.5 * 4.5)).abs() < 1e-9);
        assert!(f.slope > 0.0 && f.slope < 0.1);
    }

    #[test]
    fn single_point_series_gets_zero_slope() {
        let z = series(42, &[7.5]);
        let f = LinearFit::fit(&z);
        assert_eq!(f.slope, 0.0);
        assert_eq!(f.base, 7.5);
        assert_eq!(f.predict(42), 7.5);
    }

    #[test]
    fn residuals_sum_to_zero() {
        let z = series(0, &[1.0, 5.0, 2.0, 8.0, 3.0]);
        let f = LinearFit::fit(&z);
        let sum: f64 = f.residuals(&z).iter().sum();
        assert!(sum.abs() < 1e-10);
    }

    #[test]
    fn rss_is_minimal_among_perturbations() {
        let z = series(0, &[2.0, 1.0, 4.0, 3.0, 6.0, 5.0]);
        let f = LinearFit::fit(&z);
        let best = f.rss(&z);
        for (db, ds) in [
            (0.1, 0.0),
            (-0.1, 0.0),
            (0.0, 0.05),
            (0.0, -0.05),
            (0.1, -0.05),
        ] {
            let candidate = LinearFit {
                base: f.base + db,
                slope: f.slope + ds,
            };
            assert!(candidate.rss(&z) >= best);
        }
    }

    #[test]
    fn r_squared_handles_constant_series() {
        let z = series(0, &[3.0, 3.0, 3.0]);
        let f = LinearFit::fit(&z);
        assert_eq!(f.r_squared(&z), 1.0);

        let bad = LinearFit {
            base: 0.0,
            slope: 0.0,
        };
        assert_eq!(bad.r_squared(&z), 0.0);
    }

    #[test]
    fn fit_is_invariant_to_value_scaling() {
        let z = series(0, &[1.0, 4.0, 2.0, 5.0]);
        let scaled = TimeSeries::new(0, z.values().iter().map(|v| v * 3.0).collect()).unwrap();
        let f = LinearFit::fit(&z);
        let g = LinearFit::fit(&scaled);
        assert!((g.slope - 3.0 * f.slope).abs() < 1e-12);
        assert!((g.base - 3.0 * f.base).abs() < 1e-12);
    }
}
