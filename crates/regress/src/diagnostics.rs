//! Fit diagnostics: is an exceptional slope *statistically* exceptional?
//!
//! The paper thresholds raw slope magnitudes; real deployments also want
//! to know whether a slope is distinguishable from noise before waking an
//! operator. These diagnostics are computed at fit time (they need the
//! raw series — the residual information the ISB deliberately discards)
//! and can be warehoused next to the ISB when the application wants them.

use crate::error::RegressError;
use crate::ols::{svs, LinearFit};
use crate::series::TimeSeries;
use crate::Result;

/// Classical OLS diagnostics of a linear fit against its series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FitDiagnostics {
    /// Residual sum of squares.
    pub rss: f64,
    /// Coefficient of determination.
    pub r_squared: f64,
    /// Unbiased residual variance estimate `s² = RSS / (n - 2)`.
    pub sigma2: f64,
    /// Standard error of the slope `s / sqrt(SVS)`.
    pub slope_stderr: f64,
    /// `t`-statistic of the slope (`β̂ / stderr`); large magnitudes mean
    /// the trend is unlikely to be noise.
    pub slope_t: f64,
}

impl FitDiagnostics {
    /// Computes diagnostics for `fit` over `series`.
    ///
    /// # Errors
    /// [`RegressError::NotEnoughData`] for fewer than 3 observations
    /// (the residual variance needs `n - 2 > 0`).
    pub fn compute(fit: &LinearFit, series: &TimeSeries) -> Result<Self> {
        let n = series.len();
        if n < 3 {
            return Err(RegressError::NotEnoughData { have: n, need: 3 });
        }
        let rss = fit.rss(series);
        let r_squared = fit.r_squared(series);
        let sigma2 = rss / (n as f64 - 2.0);
        let slope_stderr = (sigma2 / svs(n as u64)).sqrt();
        let slope_t = if slope_stderr > 0.0 {
            fit.slope / slope_stderr
        } else if fit.slope == 0.0 {
            0.0
        } else {
            f64::INFINITY * fit.slope.signum()
        };
        Ok(FitDiagnostics {
            rss,
            r_squared,
            sigma2,
            slope_stderr,
            slope_t,
        })
    }

    /// A pragmatic significance check: `|t| >= critical` (use ~2.0 for a
    /// rough 95% level at moderate `n`).
    pub fn slope_is_significant(&self, critical: f64) -> bool {
        self.slope_t.abs() >= critical
    }
}

/// Convenience: fit and diagnose in one step.
///
/// # Errors
/// See [`FitDiagnostics::compute`].
pub fn fit_with_diagnostics(series: &TimeSeries) -> Result<(LinearFit, FitDiagnostics)> {
    let fit = LinearFit::fit(series);
    let diag = FitDiagnostics::compute(&fit, series)?;
    Ok((fit, diag))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_line_has_infinite_t() {
        let z = TimeSeries::from_fn(0, 19, |t| 1.0 + 0.5 * t as f64).unwrap();
        let (fit, diag) = fit_with_diagnostics(&z).unwrap();
        assert!(fit.slope > 0.0);
        assert!(diag.rss < 1e-18);
        assert_eq!(diag.r_squared, 1.0);
        assert!(diag.slope_t.is_infinite() && diag.slope_t > 0.0);
        assert!(diag.slope_is_significant(2.0));
    }

    #[test]
    fn flat_noise_is_insignificant() {
        // Alternating noise with zero net trend.
        let z = TimeSeries::from_fn(0, 29, |t| if t % 2 == 0 { 1.0 } else { -1.0 }).unwrap();
        let (fit, diag) = fit_with_diagnostics(&z).unwrap();
        assert!(fit.slope.abs() < 0.05);
        assert!(!diag.slope_is_significant(2.0), "t = {}", diag.slope_t);
        assert!(diag.r_squared < 0.1);
    }

    #[test]
    fn strong_trend_with_noise_is_significant() {
        let z = TimeSeries::from_fn(0, 29, |t| {
            2.0 * t as f64 + if t % 2 == 0 { 0.3 } else { -0.3 }
        })
        .unwrap();
        let (_, diag) = fit_with_diagnostics(&z).unwrap();
        assert!(diag.slope_is_significant(2.0));
        assert!(diag.r_squared > 0.99);
        assert!(diag.slope_stderr > 0.0);
    }

    #[test]
    fn short_series_are_rejected() {
        let z = TimeSeries::new(0, vec![1.0, 2.0]).unwrap();
        let fit = LinearFit::fit(&z);
        assert!(matches!(
            FitDiagnostics::compute(&fit, &z),
            Err(RegressError::NotEnoughData { have: 2, need: 3 })
        ));
    }

    #[test]
    fn constant_series_with_zero_slope_has_zero_t() {
        let z = TimeSeries::new(0, vec![5.0; 10]).unwrap();
        let (fit, diag) = fit_with_diagnostics(&z).unwrap();
        assert_eq!(fit.slope, 0.0);
        assert_eq!(diag.slope_t, 0.0);
        assert!(!diag.slope_is_significant(2.0));
    }

    #[test]
    fn sigma2_matches_manual_computation() {
        let z = TimeSeries::new(0, vec![0.0, 1.0, 0.0, 1.0, 0.0]).unwrap();
        let (fit, diag) = fit_with_diagnostics(&z).unwrap();
        let manual_rss = fit.rss(&z);
        assert!((diag.rss - manual_rss).abs() < 1e-12);
        assert!((diag.sigma2 - manual_rss / 3.0).abs() < 1e-12);
    }
}
