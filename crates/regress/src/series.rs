//! Discrete-time series over integer tick intervals.
//!
//! A time series in the paper's sense (Section 2.2) is a function
//! `z(t) : t ∈ [t_b, t_e]` over *consecutive integer* time points. We store
//! the start tick and a dense vector of values.

use crate::error::RegressError;
use crate::Result;

/// A time series `z(t)` over the integer interval `[start, start+len-1]`.
///
/// Values are dense: index `i` of [`values`](Self::values) is the
/// observation at tick `start + i`.
#[derive(Debug, Clone, PartialEq)]
pub struct TimeSeries {
    start: i64,
    values: Vec<f64>,
}

impl TimeSeries {
    /// Creates a series starting at tick `start` with the given values.
    ///
    /// # Errors
    /// [`RegressError::EmptySeries`] when `values` is empty.
    pub fn new(start: i64, values: Vec<f64>) -> Result<Self> {
        if values.is_empty() {
            return Err(RegressError::EmptySeries);
        }
        Ok(TimeSeries { start, values })
    }

    /// Creates a series by sampling `f` at each tick of `[start, end]`.
    ///
    /// # Errors
    /// [`RegressError::EmptySeries`] when `end < start`.
    pub fn from_fn(start: i64, end: i64, mut f: impl FnMut(i64) -> f64) -> Result<Self> {
        if end < start {
            return Err(RegressError::EmptySeries);
        }
        let values = (start..=end).map(&mut f).collect();
        TimeSeries::new(start, values)
    }

    /// First tick `t_b`.
    #[inline]
    pub fn start(&self) -> i64 {
        self.start
    }

    /// Last tick `t_e`.
    #[inline]
    pub fn end(&self) -> i64 {
        self.start + self.values.len() as i64 - 1
    }

    /// The closed interval `[t_b, t_e]`.
    #[inline]
    pub fn interval(&self) -> (i64, i64) {
        (self.start(), self.end())
    }

    /// Number of observations `n = t_e - t_b + 1`.
    #[inline]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Always `false`: construction rejects empty series.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The raw observation values.
    #[inline]
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Observation at absolute tick `t`, or `None` outside the interval.
    pub fn value_at(&self, t: i64) -> Option<f64> {
        if t < self.start || t > self.end() {
            None
        } else {
            Some(self.values[(t - self.start) as usize])
        }
    }

    /// Iterates `(tick, value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (i64, f64)> + '_ {
        self.values
            .iter()
            .enumerate()
            .map(move |(i, &v)| (self.start + i as i64, v))
    }

    /// Arithmetic mean `z̄`.
    pub fn mean(&self) -> f64 {
        self.sum() / self.values.len() as f64
    }

    /// Sum of all observations `S = Σ z(t)`.
    pub fn sum(&self) -> f64 {
        self.values.iter().sum()
    }

    /// The time centroid `t̄ = (t_b + t_e) / 2`.
    pub fn mean_t(&self) -> f64 {
        (self.start as f64 + self.end() as f64) / 2.0
    }

    /// `Σ t·z(t)`, one of the two sufficient statistics of a linear fit.
    pub fn sum_tz(&self) -> f64 {
        self.iter().map(|(t, z)| t as f64 * z).sum()
    }

    /// Minimum observation.
    pub fn min(&self) -> f64 {
        self.values.iter().cloned().fold(f64::INFINITY, f64::min)
    }

    /// Maximum observation.
    pub fn max(&self) -> f64 {
        self.values
            .iter()
            .cloned()
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Point-wise sum with another series over the *same* interval — the
    /// aggregation semantics of a standard-dimension roll-up (Section 3.3).
    ///
    /// # Errors
    /// [`RegressError::IntervalMismatch`] when the intervals differ.
    pub fn pointwise_sum(&self, other: &TimeSeries) -> Result<TimeSeries> {
        if self.interval() != other.interval() {
            return Err(RegressError::IntervalMismatch {
                left: self.interval(),
                right: other.interval(),
            });
        }
        let values = self
            .values
            .iter()
            .zip(other.values.iter())
            .map(|(a, b)| a + b)
            .collect();
        TimeSeries::new(self.start, values)
    }

    /// Point-wise sum of many series over the same interval.
    ///
    /// # Errors
    /// [`RegressError::NoInputs`] for an empty slice;
    /// [`RegressError::IntervalMismatch`] when intervals differ.
    pub fn sum_many(series: &[TimeSeries]) -> Result<TimeSeries> {
        let first = series.first().ok_or(RegressError::NoInputs)?;
        let mut acc = first.clone();
        for s in &series[1..] {
            acc = acc.pointwise_sum(s)?;
        }
        Ok(acc)
    }

    /// Concatenation with a series starting exactly one tick after `self`
    /// ends — the aggregation semantics of a time-dimension roll-up
    /// (Section 3.4).
    ///
    /// # Errors
    /// [`RegressError::NotAPartition`] when `other` does not start at
    /// `self.end() + 1`.
    pub fn concat(&self, other: &TimeSeries) -> Result<TimeSeries> {
        if other.start != self.end() + 1 {
            return Err(RegressError::NotAPartition {
                detail: format!(
                    "segment starting at {} does not follow segment ending at {}",
                    other.start,
                    self.end()
                ),
            });
        }
        let mut values = Vec::with_capacity(self.values.len() + other.values.len());
        values.extend_from_slice(&self.values);
        values.extend_from_slice(&other.values);
        TimeSeries::new(self.start, values)
    }

    /// Concatenates an ordered run of contiguous segments.
    ///
    /// # Errors
    /// [`RegressError::NoInputs`] for an empty slice;
    /// [`RegressError::NotAPartition`] on any gap or overlap.
    pub fn concat_many(segments: &[TimeSeries]) -> Result<TimeSeries> {
        let first = segments.first().ok_or(RegressError::NoInputs)?;
        let mut acc = first.clone();
        for s in &segments[1..] {
            acc = acc.concat(s)?;
        }
        Ok(acc)
    }

    /// The sub-series on `[from, to]` (inclusive), or an error when the
    /// window leaves the series interval.
    ///
    /// # Errors
    /// [`RegressError::InvalidParameter`] when `[from, to]` is not contained
    /// in the series interval or is empty.
    pub fn window(&self, from: i64, to: i64) -> Result<TimeSeries> {
        if from > to || from < self.start || to > self.end() {
            return Err(RegressError::InvalidParameter {
                name: "window",
                detail: format!(
                    "[{from}, {to}] not contained in [{}, {}]",
                    self.start,
                    self.end()
                ),
            });
        }
        let lo = (from - self.start) as usize;
        let hi = (to - self.start) as usize;
        TimeSeries::new(from, self.values[lo..=hi].to_vec())
    }

    /// Splits the series into `k`-tick contiguous segments (the final
    /// segment may be shorter), e.g. quarters of an hour into hours.
    ///
    /// # Errors
    /// [`RegressError::InvalidParameter`] when `k == 0`.
    pub fn split_into(&self, k: usize) -> Result<Vec<TimeSeries>> {
        if k == 0 {
            return Err(RegressError::InvalidParameter {
                name: "k",
                detail: "segment length must be positive".into(),
            });
        }
        let mut out = Vec::with_capacity(self.values.len().div_ceil(k));
        let mut t = self.start;
        for chunk in self.values.chunks(k) {
            out.push(TimeSeries::new(t, chunk.to_vec())?);
            t += chunk.len() as i64;
        }
        Ok(out)
    }

    /// Shifts the whole series in time by `delta` ticks.
    pub fn shift(&self, delta: i64) -> TimeSeries {
        TimeSeries {
            start: self.start + delta,
            values: self.values.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(start: i64, v: &[f64]) -> TimeSeries {
        TimeSeries::new(start, v.to_vec()).unwrap()
    }

    #[test]
    fn construction_and_accessors() {
        let z = s(3, &[1.0, 2.0, 3.0]);
        assert_eq!(z.interval(), (3, 5));
        assert_eq!(z.len(), 3);
        assert!(!z.is_empty());
        assert_eq!(z.value_at(4), Some(2.0));
        assert_eq!(z.value_at(6), None);
        assert_eq!(z.value_at(2), None);
        assert_eq!(z.mean(), 2.0);
        assert_eq!(z.sum(), 6.0);
        assert_eq!(z.mean_t(), 4.0);
        assert_eq!(z.min(), 1.0);
        assert_eq!(z.max(), 3.0);
    }

    #[test]
    fn empty_series_is_rejected() {
        assert_eq!(
            TimeSeries::new(0, vec![]).unwrap_err(),
            RegressError::EmptySeries
        );
        assert!(TimeSeries::from_fn(5, 4, |_| 0.0).is_err());
    }

    #[test]
    fn from_fn_samples_every_tick() {
        let z = TimeSeries::from_fn(-2, 2, |t| t as f64).unwrap();
        assert_eq!(z.values(), &[-2.0, -1.0, 0.0, 1.0, 2.0]);
        assert_eq!(z.sum_tz(), 4.0 + 1.0 + 0.0 + 1.0 + 4.0);
    }

    #[test]
    fn pointwise_sum_requires_equal_intervals() {
        let a = s(0, &[1.0, 2.0]);
        let b = s(0, &[10.0, 20.0]);
        let c = a.pointwise_sum(&b).unwrap();
        assert_eq!(c.values(), &[11.0, 22.0]);

        let shifted = s(1, &[1.0, 2.0]);
        assert!(matches!(
            a.pointwise_sum(&shifted),
            Err(RegressError::IntervalMismatch { .. })
        ));
    }

    #[test]
    fn sum_many_folds_all_inputs() {
        let parts = vec![s(0, &[1.0, 1.0]), s(0, &[2.0, 2.0]), s(0, &[3.0, 3.0])];
        let total = TimeSeries::sum_many(&parts).unwrap();
        assert_eq!(total.values(), &[6.0, 6.0]);
        assert!(matches!(
            TimeSeries::sum_many(&[]),
            Err(RegressError::NoInputs)
        ));
    }

    #[test]
    fn concat_requires_contiguity() {
        let a = s(0, &[1.0, 2.0]);
        let b = s(2, &[3.0]);
        let c = a.concat(&b).unwrap();
        assert_eq!(c.interval(), (0, 2));
        assert_eq!(c.values(), &[1.0, 2.0, 3.0]);

        let gap = s(4, &[9.0]);
        assert!(matches!(
            a.concat(&gap),
            Err(RegressError::NotAPartition { .. })
        ));
        let overlap = s(1, &[9.0]);
        assert!(a.concat(&overlap).is_err());
    }

    #[test]
    fn concat_many_and_split_round_trip() {
        let z = TimeSeries::from_fn(0, 9, |t| (t * t) as f64).unwrap();
        let parts = z.split_into(3).unwrap();
        assert_eq!(parts.len(), 4); // 3+3+3+1
        assert_eq!(parts[3].interval(), (9, 9));
        let back = TimeSeries::concat_many(&parts).unwrap();
        assert_eq!(back, z);
        assert!(z.split_into(0).is_err());
        assert!(matches!(
            TimeSeries::concat_many(&[]),
            Err(RegressError::NoInputs)
        ));
    }

    #[test]
    fn window_bounds_are_checked() {
        let z = s(10, &[1.0, 2.0, 3.0, 4.0]);
        let w = z.window(11, 12).unwrap();
        assert_eq!(w.interval(), (11, 12));
        assert_eq!(w.values(), &[2.0, 3.0]);
        assert!(z.window(9, 12).is_err());
        assert!(z.window(11, 14).is_err());
        assert!(z.window(12, 11).is_err());
    }

    #[test]
    fn shift_moves_interval_only() {
        let z = s(0, &[5.0, 6.0]);
        let moved = z.shift(10);
        assert_eq!(moved.interval(), (10, 11));
        assert_eq!(moved.values(), z.values());
    }
}
