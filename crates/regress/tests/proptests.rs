//! Property-based tests for the regression foundation: the aggregation
//! theorems must agree with brute-force OLS on arbitrary inputs.

use proptest::prelude::*;
use regcube_regress::aggregate::{
    merge_standard, merge_time, merge_time_theorem33, merge_time_unsorted,
};
use regcube_regress::fold::{fold_series, FoldOp};
use regcube_regress::mlr::MlrMeasure;
use regcube_regress::{Isb, TimeSeries};

/// Strategy: a time series with bounded values, arbitrary start tick.
fn time_series(min_len: usize, max_len: usize) -> impl Strategy<Value = TimeSeries> {
    (
        -1000i64..1000,
        prop::collection::vec(-100.0..100.0f64, min_len..=max_len),
    )
        .prop_map(|(start, values)| TimeSeries::new(start, values).unwrap())
}

/// Strategy: `k` series sharing one interval.
fn sibling_series(k: usize) -> impl Strategy<Value = Vec<TimeSeries>> {
    (2usize..30, -500i64..500).prop_flat_map(move |(len, start)| {
        prop::collection::vec(prop::collection::vec(-50.0..50.0f64, len), k..=k).prop_map(
            move |rows| {
                rows.into_iter()
                    .map(|v| TimeSeries::new(start, v).unwrap())
                    .collect()
            },
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Theorem 3.2: merging sibling ISBs == fitting the point-wise sum.
    #[test]
    fn theorem32_is_exact(series in sibling_series(4)) {
        let isbs: Vec<Isb> = series.iter().map(|s| Isb::fit(s).unwrap()).collect();
        let merged = merge_standard(&isbs).unwrap();
        let direct = Isb::fit(&TimeSeries::sum_many(&series).unwrap()).unwrap();
        prop_assert!(merged.approx_eq(&direct, 1e-8), "{merged} vs {direct}");
    }

    /// Theorem 3.3: merging contiguous segment ISBs == fitting the
    /// concatenation, for arbitrary segmentations.
    #[test]
    fn theorem33_is_exact(z in time_series(2, 80), chunk in 1usize..12) {
        let parts = z.split_into(chunk).unwrap();
        let isbs: Vec<Isb> = parts.iter().map(|p| Isb::fit(p).unwrap()).collect();
        let merged = merge_time(&isbs).unwrap();
        let direct = Isb::fit(&z).unwrap();
        prop_assert!(merged.approx_eq(&direct, 1e-6), "{merged} vs {direct}");
    }

    /// The paper's verbatim Theorem 3.3(b) formula agrees with the
    /// sufficient-statistics derivation.
    #[test]
    fn theorem33_paper_formula_agrees(z in time_series(2, 60), chunk in 1usize..10) {
        let parts = z.split_into(chunk).unwrap();
        let isbs: Vec<Isb> = parts.iter().map(|p| Isb::fit(p).unwrap()).collect();
        let a = merge_time(&isbs).unwrap();
        let b = merge_time_theorem33(&isbs).unwrap();
        prop_assert!(a.approx_eq(&b, 1e-6), "{a} vs {b}");
    }

    /// Merging is associative along the time axis: ((s1+s2)+s3) == (s1+(s2+s3)).
    #[test]
    fn theorem33_is_associative(z in time_series(6, 60)) {
        let n = z.len() as i64;
        let (a, b, c) = (
            z.window(z.start(), z.start() + n / 3 - 1).unwrap(),
            z.window(z.start() + n / 3, z.start() + 2 * n / 3 - 1).unwrap(),
            z.window(z.start() + 2 * n / 3, z.end()).unwrap(),
        );
        let (ia, ib, ic) = (
            Isb::fit(&a).unwrap(),
            Isb::fit(&b).unwrap(),
            Isb::fit(&c).unwrap(),
        );
        let left = merge_time(&[merge_time(&[ia, ib]).unwrap(), ic]).unwrap();
        let right = merge_time(&[ia, merge_time(&[ib, ic]).unwrap()]).unwrap();
        prop_assert!(left.approx_eq(&right, 1e-6), "{left} vs {right}");
    }

    /// Unsorted merge equals sorted merge.
    #[test]
    fn unsorted_merge_is_order_insensitive(z in time_series(4, 40), chunk in 1usize..6) {
        let parts = z.split_into(chunk).unwrap();
        let mut isbs: Vec<Isb> = parts.iter().map(|p| Isb::fit(p).unwrap()).collect();
        let sorted = merge_time(&isbs).unwrap();
        isbs.reverse();
        let unsorted = merge_time_unsorted(&isbs).unwrap();
        prop_assert!(sorted.approx_eq(&unsorted, 1e-9));
    }

    /// ISB <-> IntVal conversions are lossless (up to relative rounding:
    /// the base can be ~|slope·t_b| large at distant intervals).
    #[test]
    fn isb_intval_round_trip(z in time_series(1, 40)) {
        let isb = Isb::fit(&z).unwrap();
        let back = isb.to_intval().to_isb();
        let tol = 1e-9 * (1.0 + isb.base().abs().max(isb.slope().abs()));
        prop_assert!(back.approx_eq(&isb, tol), "{back} vs {isb}");
    }

    /// The ISB recovers the series' sum and mean exactly (Equation 2).
    #[test]
    fn isb_recovers_sufficient_statistics(z in time_series(1, 50)) {
        let isb = Isb::fit(&z).unwrap();
        prop_assert!((isb.sum_z() - z.sum()).abs() < 1e-6);
        prop_assert!((isb.mean_z() - z.mean()).abs() < 1e-8);
        prop_assert!((isb.sum_tz() - z.sum_tz()).abs() < 1e-3,
            "sum_tz {} vs {}", isb.sum_tz(), z.sum_tz());
    }

    /// Folding with Sum then fitting equals Theorem 3.2 over group members
    /// only in trivial cases; here we check the structural invariant that
    /// fold preserves total mass for Sum.
    #[test]
    fn fold_sum_preserves_mass(z in time_series(1, 60), group in 1usize..9) {
        let folded = fold_series(&z, group, FoldOp::Sum).unwrap();
        prop_assert!((folded.sum() - z.sum()).abs() < 1e-8);
        prop_assert_eq!(folded.len(), z.len().div_ceil(group));
    }

    /// Min fold is a lower bound of Max fold point-wise.
    #[test]
    fn fold_min_below_max(z in time_series(1, 60), group in 1usize..9) {
        let lo = fold_series(&z, group, FoldOp::Min).unwrap();
        let hi = fold_series(&z, group, FoldOp::Max).unwrap();
        for (a, b) in lo.values().iter().zip(hi.values().iter()) {
            prop_assert!(a <= b);
        }
    }

    /// The MLR measure with design [1, t] equals the ISB fit. The normal
    /// equations lose digits when |t| is large (Σt² ~ 1e6 here), so the
    /// comparison is relative.
    #[test]
    fn mlr_reduces_to_isb(z in time_series(2, 40)) {
        let m = MlrMeasure::from_time_series(&z).unwrap();
        let beta = m.solve().unwrap();
        let isb = Isb::fit(&z).unwrap();
        let tol_base = 1e-5 * (1.0 + isb.base().abs());
        let tol_slope = 1e-6 * (1.0 + isb.slope().abs());
        prop_assert!((beta[0] - isb.base()).abs() < tol_base,
            "base {} vs {}", beta[0], isb.base());
        prop_assert!((beta[1] - isb.slope()).abs() < tol_slope,
            "slope {} vs {}", beta[1], isb.slope());
    }

    /// Disjoint MLR merges equal pooled fits.
    #[test]
    fn mlr_disjoint_merge_is_exact(z in time_series(6, 40)) {
        let mid = z.start() + z.len() as i64 / 2;
        let a = z.window(z.start(), mid - 1).unwrap();
        let b = z.window(mid, z.end()).unwrap();
        let mut ma = MlrMeasure::from_time_series(&a).unwrap();
        ma.merge_disjoint(&MlrMeasure::from_time_series(&b).unwrap()).unwrap();
        let pooled = MlrMeasure::from_time_series(&z).unwrap();
        let (x, y) = (ma.solve().unwrap(), pooled.solve().unwrap());
        prop_assert!((x[0] - y[0]).abs() < 1e-6 && (x[1] - y[1]).abs() < 1e-7);
    }
}
