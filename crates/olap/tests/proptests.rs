//! Property tests for the OLAP substrate: hierarchies, lattices and
//! H-trees on randomly shaped inputs.

use proptest::prelude::*;
use regcube_olap::htree::{attrs_by_cardinality, expand_tuple, AttrSpec, HTree};
use regcube_olap::{CubeSchema, CuboidSpec, Hierarchy, Lattice};

/// Strategy: a ragged hierarchy as random level sizes; parents assigned
/// round-robin so every parent has at least one child when possible.
fn ragged_hierarchy() -> impl Strategy<Value = Hierarchy> {
    prop::collection::vec(1u32..12, 1..4).prop_map(|sizes| {
        let mut parents: Vec<Vec<u32>> = Vec::with_capacity(sizes.len());
        let mut prev = 1u32;
        for &size in &sizes {
            let level: Vec<u32> = (0..size).map(|m| m % prev).collect();
            parents.push(level);
            prev = size;
        }
        Hierarchy::from_parents(parents).unwrap()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Ancestor chains are transitive: going up two levels equals two
    /// single-level steps, for every member.
    #[test]
    fn ancestors_are_transitive(h in ragged_hierarchy()) {
        let depth = h.depth();
        for from in 1..=depth {
            for member in 0..h.cardinality(from) {
                for to in 0..from {
                    let direct = h.ancestor_unchecked(from, member, to);
                    let mut stepped = member;
                    for l in ((to + 1)..=from).rev() {
                        stepped = h.ancestor_unchecked(l, stepped, l - 1);
                    }
                    prop_assert_eq!(direct, stepped);
                }
            }
        }
    }

    /// Children invert parents exactly.
    #[test]
    fn children_invert_parents(h in ragged_hierarchy()) {
        let depth = h.depth();
        for level in 0..depth {
            let mut total_children = 0u32;
            for member in 0..h.cardinality(level) {
                for child in h.children(0, level, member).unwrap() {
                    prop_assert_eq!(h.parent(level + 1, child), member);
                    total_children += 1;
                }
            }
            prop_assert_eq!(total_children, h.cardinality(level + 1),
                "every child has exactly one parent");
        }
    }

    /// Balanced and explicit representations agree on everything.
    #[test]
    fn balanced_matches_explicit(depth in 1u8..4, fanout in 2u32..5) {
        let balanced = Hierarchy::balanced(depth, fanout).unwrap();
        // Materialize the same hierarchy explicitly.
        let mut parents = Vec::new();
        let mut card = 1u32;
        for _ in 0..depth {
            card *= fanout;
            parents.push((0..card).map(|m| m / fanout).collect());
        }
        let explicit = Hierarchy::from_parents(parents).unwrap();
        prop_assert_eq!(balanced.depth(), explicit.depth());
        for level in 0..=depth {
            prop_assert_eq!(balanced.cardinality(level), explicit.cardinality(level));
        }
        for level in 1..=depth {
            for m in 0..balanced.cardinality(level) {
                prop_assert_eq!(balanced.parent(level, m), explicit.parent(level, m));
            }
        }
        prop_assert_eq!(balanced.total_members(), explicit.total_members());
    }

    /// The lattice count formula matches enumeration for arbitrary layer
    /// pairs, and bottom-up order is a valid topological order.
    #[test]
    fn lattice_counts_and_order(
        dims in 1usize..4,
        depth in 1u8..4,
        o_levels in prop::collection::vec(0u8..4, 1..4),
    ) {
        let schema = CubeSchema::synthetic(dims, depth, 2).unwrap();
        let m: Vec<u8> = vec![depth; dims];
        let o: Vec<u8> = (0..dims).map(|d| o_levels[d % o_levels.len()].min(depth)).collect();
        let lattice = Lattice::new(
            &schema,
            CuboidSpec::new(o.clone()),
            CuboidSpec::new(m.clone()),
        ).unwrap();

        let expected: u64 = o.iter().zip(m.iter())
            .map(|(&ol, &ml)| u64::from(ml - ol) + 1)
            .product();
        let all = lattice.enumerate();
        prop_assert_eq!(all.len() as u64, expected);
        prop_assert_eq!(lattice.count(), expected);

        let order = lattice.bottom_up_order();
        prop_assert_eq!(order.len(), all.len());
        for (i, c) in order.iter().enumerate() {
            for later in &order[i + 1..] {
                prop_assert!(!(c.is_ancestor_or_equal(later) && later != c),
                    "descendant {} after ancestor {}", later, c);
            }
        }
    }

    /// H-tree structural invariants: distinct inserted paths = leaves;
    /// every header chain's nodes carry the right value; path values
    /// round-trip.
    #[test]
    fn htree_structure(paths in prop::collection::vec(
        prop::collection::vec(0u32..6, 3), 1..60,
    )) {
        let order = vec![
            AttrSpec { dim: 0, level: 1 },
            AttrSpec { dim: 1, level: 1 },
            AttrSpec { dim: 2, level: 1 },
        ];
        let mut tree: HTree<u32> = HTree::new(order).unwrap();
        let mut distinct = std::collections::BTreeSet::new();
        for p in &paths {
            let leaf = tree.insert_path(p).unwrap();
            *tree.payload_mut(leaf).get_or_insert(0) += 1;
            distinct.insert(p.clone());
            prop_assert_eq!(tree.path_values(leaf), p.clone());
        }
        prop_assert_eq!(tree.num_leaves(), distinct.len());

        // Header chains thread exactly the nodes at each depth: the chain
        // union size equals the number of distinct path prefixes.
        for attr in 0..3 {
            let mut chained = 0usize;
            let values: Vec<u32> = tree.header(attr).map(|(v, _)| v).collect();
            for v in values {
                for node in tree.header_chain(attr, v) {
                    prop_assert_eq!(tree.node_value(node), v);
                    prop_assert_eq!(tree.node_attr(node), Some(attr));
                    chained += 1;
                }
            }
            let prefixes: std::collections::BTreeSet<&[u32]> =
                distinct.iter().map(|p| &p[..=attr]).collect();
            prop_assert_eq!(chained, prefixes.len(),
                "attr {} chains {} nodes for {} prefixes", attr, chained, prefixes.len());
        }

        // Bottom-up aggregation conserves the total insert count.
        tree.aggregate_bottom_up(|m| *m, |acc, next| *acc += *next);
        prop_assert_eq!(tree.payload(0), Some(&(paths.len() as u32)));
    }

    /// `expand_tuple` + projection: the expanded path values at an
    /// attribute equal the hierarchy ancestor of the tuple's id.
    #[test]
    fn expansion_matches_ancestors(
        ids in prop::collection::vec(0u32..27, 3),
    ) {
        let schema = CubeSchema::synthetic(3, 3, 3).unwrap();
        let lattice = Lattice::new(
            &schema,
            CuboidSpec::new(vec![1, 1, 1]),
            CuboidSpec::new(vec![3, 3, 3]),
        ).unwrap();
        let attrs = attrs_by_cardinality(&schema, &lattice);
        let values = expand_tuple(&schema, lattice.m_layer(), &ids, &attrs);
        for (a, &v) in attrs.iter().zip(values.iter()) {
            let h = schema.dims()[a.dim].hierarchy();
            prop_assert_eq!(v, h.ancestor_unchecked(3, ids[a.dim], a.level));
        }
    }
}
