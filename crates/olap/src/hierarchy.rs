//! Concept hierarchies for standard dimensions.
//!
//! Each dimension carries a high-to-low hierarchy `* > A1 > A2 > … > A_depth`
//! (paper Example 5). Level `0` is the virtual all-level `*` with a single
//! member; level `depth` is the finest. Members at every level are dense
//! integer ids `0..cardinality(level)`; each member of level `l > 1` knows
//! its parent at level `l - 1` through a parent array.

use crate::error::OlapError;
use crate::Result;

/// The virtual top level `*` present in every hierarchy.
pub const ALL_LEVEL: u8 = 0;

/// A multi-level concept hierarchy over dense member ids.
///
/// Two representations share one API: explicit parent arrays (for ragged
/// real-world hierarchies) and a *computed* balanced form where member
/// `m`'s parent is `m / fanout` — the synthetic `C`-fanout hierarchies of
/// the paper's data generator, which at 7 levels of fanout 10 would waste
/// ~50 MB per dimension if materialized.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Repr {
    /// `parents[l - 1][m]` = parent id (at level `l - 1`) of member `m` at
    /// level `l`, for `l` in `1..=depth`. Level 1 members all map to the
    /// single `*` member, so `parents[0]` is all zeros.
    Explicit(Vec<Vec<u32>>),
    /// Balanced fanout tree: `cardinality(l) = fanout^l`,
    /// `parent(m) = m / fanout`.
    Balanced {
        /// Number of named levels.
        depth: u8,
        /// Children per node.
        fanout: u32,
    },
}

/// A multi-level concept hierarchy over dense member ids.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hierarchy {
    repr: Repr,
}

impl Hierarchy {
    /// Builds a hierarchy from explicit parent arrays.
    ///
    /// `parents[0]` lists level-1 members' parents (must all be `0`, the
    /// `*` member); `parents[l-1]` maps level-`l` members to level-`l-1`
    /// parents.
    ///
    /// # Errors
    /// [`OlapError::BadHierarchy`] when a parent id exceeds the parent
    /// level's cardinality, a level is empty, or `parents` itself is empty.
    pub fn from_parents(parents: Vec<Vec<u32>>) -> Result<Self> {
        if parents.is_empty() {
            return Err(OlapError::BadHierarchy {
                detail: "hierarchy needs at least one level".into(),
            });
        }
        for (i, level) in parents.iter().enumerate() {
            if level.is_empty() {
                return Err(OlapError::BadHierarchy {
                    detail: format!("level {} has no members", i + 1),
                });
            }
            let parent_card = if i == 0 {
                1
            } else {
                parents[i - 1].len() as u32
            };
            if let Some(&bad) = level.iter().find(|&&p| p >= parent_card) {
                return Err(OlapError::BadHierarchy {
                    detail: format!(
                        "level {} references parent {bad} but level {} has cardinality {parent_card}",
                        i + 1,
                        i
                    ),
                });
            }
        }
        Ok(Hierarchy {
            repr: Repr::Explicit(parents),
        })
    }

    /// Builds a balanced hierarchy of the given `depth` where every member
    /// has exactly `fanout` children — the paper's synthetic `C` parameter
    /// ("the node fan-out factor (cardinality) is 10, i.e. 10 children per
    /// node"). Level `l` then has `fanout^l` members and member `m`'s
    /// parent is `m / fanout`; nothing is materialized.
    ///
    /// # Errors
    /// [`OlapError::BadHierarchy`] for `depth == 0` or `fanout == 0`, or if
    /// the finest level would exceed `u32` capacity.
    pub fn balanced(depth: u8, fanout: u32) -> Result<Self> {
        if depth == 0 || fanout == 0 {
            return Err(OlapError::BadHierarchy {
                detail: format!("degenerate balanced hierarchy: depth {depth}, fanout {fanout}"),
            });
        }
        let mut card: u64 = 1;
        for _ in 0..depth {
            card = card
                .checked_mul(fanout as u64)
                .ok_or(OlapError::BadHierarchy {
                    detail: "cardinality overflow".into(),
                })?;
            if card > u32::MAX as u64 {
                return Err(OlapError::BadHierarchy {
                    detail: format!("cardinality {card} exceeds u32 range"),
                });
            }
        }
        Ok(Hierarchy {
            repr: Repr::Balanced { depth, fanout },
        })
    }

    /// Number of named levels (excluding `*`); the finest level index.
    #[inline]
    pub fn depth(&self) -> u8 {
        match &self.repr {
            Repr::Explicit(parents) => parents.len() as u8,
            Repr::Balanced { depth, .. } => *depth,
        }
    }

    /// Number of members at `level` (level `0` is `*` with one member).
    ///
    /// # Panics
    /// Panics when `level > depth` — callers validate levels via
    /// [`Self::check_level`].
    #[inline]
    pub fn cardinality(&self, level: u8) -> u32 {
        if level == ALL_LEVEL {
            return 1;
        }
        match &self.repr {
            Repr::Explicit(parents) => parents[(level - 1) as usize].len() as u32,
            Repr::Balanced { depth, fanout } => {
                debug_assert!(level <= *depth);
                fanout.pow(u32::from(level))
            }
        }
    }

    /// Validates a level index.
    ///
    /// # Errors
    /// [`OlapError::UnknownLevel`] when `level > depth` (the `dim` argument
    /// is only used to build the error message).
    pub fn check_level(&self, dim: usize, level: u8) -> Result<()> {
        if level > self.depth() {
            return Err(OlapError::UnknownLevel {
                dim,
                level,
                depth: self.depth(),
            });
        }
        Ok(())
    }

    /// Parent id (at `level - 1`) of `member` at `level`.
    ///
    /// # Panics
    /// Panics on out-of-range inputs; use [`Self::ancestor`] for validated
    /// access.
    #[inline]
    pub fn parent(&self, level: u8, member: u32) -> u32 {
        debug_assert!(level >= 1 && level <= self.depth());
        match &self.repr {
            Repr::Explicit(parents) => parents[(level - 1) as usize][member as usize],
            Repr::Balanced { fanout, .. } => member / *fanout,
        }
    }

    /// The ancestor of `member` (at `from_level`) at the coarser
    /// `to_level`, walking parent arrays. `to_level == from_level` returns
    /// the member itself; `to_level == 0` returns `0` (the `*` member).
    ///
    /// # Errors
    /// * [`OlapError::UnknownLevel`] when either level exceeds the depth or
    ///   `to_level > from_level` (a descendant request, not an ancestor).
    /// * [`OlapError::MemberOutOfRange`] when `member` exceeds the
    ///   cardinality of `from_level`.
    pub fn ancestor(&self, dim: usize, from_level: u8, member: u32, to_level: u8) -> Result<u32> {
        self.check_level(dim, from_level)?;
        if to_level > from_level {
            return Err(OlapError::UnknownLevel {
                dim,
                level: to_level,
                depth: from_level,
            });
        }
        if member >= self.cardinality(from_level) {
            return Err(OlapError::MemberOutOfRange {
                dim,
                level: from_level,
                member,
                cardinality: self.cardinality(from_level),
            });
        }
        Ok(self.ancestor_unchecked(from_level, member, to_level))
    }

    /// [`Self::ancestor`] without validation — the hot path used by cubing
    /// loops that have already validated their cuboids.
    #[inline]
    pub fn ancestor_unchecked(&self, from_level: u8, member: u32, to_level: u8) -> u32 {
        if to_level == ALL_LEVEL {
            return 0;
        }
        match &self.repr {
            Repr::Balanced { fanout, .. } => {
                // One division instead of a parent-chain walk.
                member / fanout.pow(u32::from(from_level - to_level))
            }
            Repr::Explicit(_) => {
                let mut m = member;
                let mut l = from_level;
                while l > to_level {
                    m = self.parent(l, m);
                    l -= 1;
                }
                m
            }
        }
    }

    /// Children (at `level + 1`) of `member` at `level`. A linear scan —
    /// intended for drilling UIs and tests, not hot loops.
    ///
    /// # Errors
    /// [`OlapError::UnknownLevel`] when `level >= depth`;
    /// [`OlapError::MemberOutOfRange`] for a bad member id.
    pub fn children(&self, dim: usize, level: u8, member: u32) -> Result<Vec<u32>> {
        let child_level = level + 1;
        self.check_level(dim, child_level)?;
        if member >= self.cardinality(level) {
            return Err(OlapError::MemberOutOfRange {
                dim,
                level,
                member,
                cardinality: self.cardinality(level),
            });
        }
        match &self.repr {
            Repr::Explicit(parents) => {
                let arr = &parents[(child_level - 1) as usize];
                Ok(arr
                    .iter()
                    .enumerate()
                    .filter(|&(_, &p)| p == member)
                    .map(|(c, _)| c as u32)
                    .collect())
            }
            Repr::Balanced { fanout, .. } => {
                let first = member * *fanout;
                Ok((first..first + *fanout).collect())
            }
        }
    }

    /// Total member count across all named levels (a size diagnostic).
    pub fn total_members(&self) -> u64 {
        (1..=self.depth())
            .map(|l| u64::from(self.cardinality(l)))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn balanced_hierarchy_shapes() {
        let h = Hierarchy::balanced(3, 10).unwrap();
        assert_eq!(h.depth(), 3);
        assert_eq!(h.cardinality(0), 1);
        assert_eq!(h.cardinality(1), 10);
        assert_eq!(h.cardinality(2), 100);
        assert_eq!(h.cardinality(3), 1000);
        assert_eq!(h.total_members(), 1110);
    }

    #[test]
    fn balanced_parentage_is_division() {
        let h = Hierarchy::balanced(2, 4).unwrap();
        assert_eq!(h.parent(2, 13), 3);
        assert_eq!(h.parent(1, 3), 0);
        assert_eq!(h.ancestor(0, 2, 13, 1).unwrap(), 3);
        assert_eq!(h.ancestor(0, 2, 13, 0).unwrap(), 0);
        assert_eq!(h.ancestor(0, 2, 13, 2).unwrap(), 13);
    }

    #[test]
    fn degenerate_balanced_is_rejected() {
        assert!(Hierarchy::balanced(0, 10).is_err());
        assert!(Hierarchy::balanced(3, 0).is_err());
        assert!(Hierarchy::balanced(32, 10).is_err()); // overflow
    }

    #[test]
    fn explicit_parents_are_validated() {
        // Ragged hierarchy: 2 level-1 members; 3 level-2 members.
        let h = Hierarchy::from_parents(vec![vec![0, 0], vec![0, 0, 1]]).unwrap();
        assert_eq!(h.depth(), 2);
        assert_eq!(h.cardinality(2), 3);
        assert_eq!(h.ancestor(0, 2, 2, 1).unwrap(), 1);

        assert!(Hierarchy::from_parents(vec![]).is_err());
        assert!(Hierarchy::from_parents(vec![vec![]]).is_err());
        assert!(Hierarchy::from_parents(vec![vec![0], vec![1]]).is_err()); // parent 1 of 1
        assert!(Hierarchy::from_parents(vec![vec![1]]).is_err()); // level-1 parent must be *
    }

    #[test]
    fn ancestor_validation_errors() {
        let h = Hierarchy::balanced(2, 3).unwrap();
        assert!(matches!(
            h.ancestor(5, 4, 0, 0),
            Err(OlapError::UnknownLevel { dim: 5, .. })
        ));
        assert!(matches!(
            h.ancestor(0, 1, 99, 0),
            Err(OlapError::MemberOutOfRange { .. })
        ));
        assert!(h.ancestor(0, 1, 0, 2).is_err()); // descendant direction
    }

    #[test]
    fn children_inverts_parent() {
        let h = Hierarchy::balanced(2, 3).unwrap();
        let kids = h.children(0, 1, 2).unwrap();
        assert_eq!(kids, vec![6, 7, 8]);
        for k in kids {
            assert_eq!(h.parent(2, k), 2);
        }
        let top = h.children(0, 0, 0).unwrap();
        assert_eq!(top, vec![0, 1, 2]);
        assert!(h.children(0, 2, 0).is_err()); // below the finest level
        assert!(h.children(0, 0, 1).is_err()); // * has one member
    }

    #[test]
    fn ancestor_is_transitive() {
        let h = Hierarchy::balanced(3, 5).unwrap();
        for m in [0u32, 7, 64, 124] {
            let via_mid = {
                let mid = h.ancestor_unchecked(3, m, 2);
                h.ancestor_unchecked(2, mid, 1)
            };
            assert_eq!(via_mid, h.ancestor_unchecked(3, m, 1));
        }
    }
}
