//! Popular drilling paths (the backbone of Algorithm 2).
//!
//! A popular path is a monotone chain of cuboids from the o-layer down to
//! the m-layer in which consecutive cuboids differ by exactly one level of
//! one dimension. Example 5's path
//! `⟨(A1,C1) → B1 → B2 → A2 → C2⟩` visits
//! `(A1,*,C1), (A1,B1,C1), (A1,B2,C1), (A2,B2,C1), (A2,B2,C2)`.

use crate::cuboid::CuboidSpec;
use crate::error::OlapError;
use crate::lattice::Lattice;
use crate::Result;

/// A monotone refinement chain of cuboids from the o-layer (first) to the
/// m-layer (last).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PopularPath {
    cuboids: Vec<CuboidSpec>,
}

impl PopularPath {
    /// Builds a path from an explicit cuboid chain.
    ///
    /// # Errors
    /// [`OlapError::BadPath`] unless the chain starts at the lattice's
    /// o-layer, ends at its m-layer, and each consecutive pair differs by
    /// exactly one level on one dimension.
    pub fn new(lattice: &Lattice, cuboids: Vec<CuboidSpec>) -> Result<Self> {
        let Some(first) = cuboids.first() else {
            return Err(OlapError::BadPath {
                detail: "path is empty".into(),
            });
        };
        if first != lattice.o_layer() {
            return Err(OlapError::BadPath {
                detail: format!(
                    "path starts at {first}, not the o-layer {}",
                    lattice.o_layer()
                ),
            });
        }
        let last = cuboids.last().expect("non-empty");
        if last != lattice.m_layer() {
            return Err(OlapError::BadPath {
                detail: format!("path ends at {last}, not the m-layer {}", lattice.m_layer()),
            });
        }
        for pair in cuboids.windows(2) {
            if pair[0].single_step_dim(&pair[1]).is_none() {
                return Err(OlapError::BadPath {
                    detail: format!("{} -> {} is not a single refinement step", pair[0], pair[1]),
                });
            }
        }
        Ok(PopularPath { cuboids })
    }

    /// Builds the path that refines dimensions in the given drill order:
    /// each entry names a dimension to refine by one level. Example 5's
    /// order for the lattice `(A1,*,C1) .. (A2,B2,C2)` is `[B, B, A, C]`
    /// (refine B twice, then A, then C).
    ///
    /// # Errors
    /// [`OlapError::BadPath`] when the steps run a dimension past the
    /// m-layer or do not end exactly at the m-layer.
    pub fn from_drill_order(lattice: &Lattice, drill_dims: &[usize]) -> Result<Self> {
        let mut cuboids = vec![lattice.o_layer().clone()];
        let mut current = lattice.o_layer().clone();
        for &d in drill_dims {
            let next = current.refine(d).ok_or_else(|| OlapError::BadPath {
                detail: format!("cannot refine dimension {d} of {current}"),
            })?;
            if !lattice.contains(&next) {
                return Err(OlapError::BadPath {
                    detail: format!("step on dimension {d} leaves the lattice at {next}"),
                });
            }
            cuboids.push(next.clone());
            current = next;
        }
        PopularPath::new(lattice, cuboids)
    }

    /// The default path: refines dimension 0 to its m-level, then
    /// dimension 1, and so on — a reasonable stand-in when the application
    /// does not specify analyst drilling habits.
    ///
    /// # Errors
    /// Propagates [`Self::from_drill_order`] errors (cannot occur for a
    /// valid lattice).
    pub fn default_for(lattice: &Lattice) -> Result<Self> {
        let mut order = Vec::new();
        for d in 0..lattice.o_layer().num_dims() {
            let steps = lattice.m_layer().level(d) - lattice.o_layer().level(d);
            order.extend(std::iter::repeat(d).take(steps as usize));
        }
        PopularPath::from_drill_order(lattice, &order)
    }

    /// The cuboids along the path, o-layer first.
    #[inline]
    pub fn cuboids(&self) -> &[CuboidSpec] {
        &self.cuboids
    }

    /// Number of cuboids on the path (steps + 1).
    #[inline]
    pub fn len(&self) -> usize {
        self.cuboids.len()
    }

    /// Paths always contain at least the o-layer.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// `true` when `cuboid` lies on the path.
    pub fn contains(&self, cuboid: &CuboidSpec) -> bool {
        self.cuboids.contains(cuboid)
    }

    /// The dimension-refinement order of the path (one entry per step) —
    /// this doubles as the root-to-leaf attribute order of Algorithm 2's
    /// H-tree ("the H-tree should be constructed in the same order as the
    /// popular path").
    pub fn drill_order(&self) -> Vec<usize> {
        self.cuboids
            .windows(2)
            .map(|pair| {
                pair[0]
                    .single_step_dim(&pair[1])
                    .expect("validated at construction")
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::CubeSchema;

    fn example5() -> Lattice {
        let schema = CubeSchema::synthetic(3, 3, 3).unwrap();
        Lattice::new(
            &schema,
            CuboidSpec::new(vec![1, 0, 1]),
            CuboidSpec::new(vec![2, 2, 2]),
        )
        .unwrap()
    }

    #[test]
    fn example5_path_matches_the_paper() {
        let lattice = example5();
        // ⟨(A1,C1) → B1 → B2 → A2 → C2⟩: refine B, B, A, C.
        let path = PopularPath::from_drill_order(&lattice, &[1, 1, 0, 2]).unwrap();
        let levels: Vec<&[u8]> = path.cuboids().iter().map(CuboidSpec::levels).collect();
        assert_eq!(
            levels,
            vec![
                &[1u8, 0, 1][..],
                &[1, 1, 1],
                &[1, 2, 1],
                &[2, 2, 1],
                &[2, 2, 2],
            ]
        );
        assert_eq!(path.drill_order(), vec![1, 1, 0, 2]);
        assert_eq!(path.len(), 5);
        assert!(!path.is_empty());
        assert!(path.contains(&CuboidSpec::new(vec![1, 2, 1])));
        assert!(!path.contains(&CuboidSpec::new(vec![2, 1, 1])));
    }

    #[test]
    fn default_path_spans_the_lattice() {
        let lattice = example5();
        let path = PopularPath::default_for(&lattice).unwrap();
        assert_eq!(path.cuboids().first().unwrap(), lattice.o_layer());
        assert_eq!(path.cuboids().last().unwrap(), lattice.m_layer());
        // Total steps = total depth difference.
        let expected_steps = lattice.m_layer().total_depth() - lattice.o_layer().total_depth();
        assert_eq!(path.len() as u32, expected_steps + 1);
    }

    #[test]
    fn invalid_paths_are_rejected() {
        let lattice = example5();
        // Empty.
        assert!(PopularPath::new(&lattice, vec![]).is_err());
        // Wrong start.
        assert!(PopularPath::new(
            &lattice,
            vec![
                CuboidSpec::new(vec![1, 1, 1]),
                CuboidSpec::new(vec![2, 2, 2])
            ],
        )
        .is_err());
        // Wrong end.
        assert!(PopularPath::new(&lattice, vec![lattice.o_layer().clone()]).is_err());
        // Non-single step.
        assert!(PopularPath::new(
            &lattice,
            vec![lattice.o_layer().clone(), lattice.m_layer().clone()],
        )
        .is_err());
        // Drill order that overshoots a dimension.
        assert!(PopularPath::from_drill_order(&lattice, &[0, 0, 0, 0]).is_err());
        // Drill order that stops short of the m-layer.
        assert!(PopularPath::from_drill_order(&lattice, &[1, 1]).is_err());
    }
}
