//! Error type for the OLAP substrate.

use std::fmt;

/// Errors produced by schema construction, cell addressing and tree
/// operations.
#[derive(Debug, Clone, PartialEq)]
pub enum OlapError {
    /// A dimension index was out of range for the schema.
    UnknownDimension {
        /// Offending dimension index.
        dim: usize,
        /// Number of dimensions in the schema.
        count: usize,
    },
    /// A level was out of range for a dimension's hierarchy.
    UnknownLevel {
        /// Dimension index.
        dim: usize,
        /// Offending level.
        level: u8,
        /// Deepest valid level.
        depth: u8,
    },
    /// A member id was out of range for its level.
    MemberOutOfRange {
        /// Dimension index.
        dim: usize,
        /// Level the member was addressed at.
        level: u8,
        /// Offending member id.
        member: u32,
        /// Cardinality of that level.
        cardinality: u32,
    },
    /// A hierarchy definition was internally inconsistent.
    BadHierarchy {
        /// Description of the inconsistency.
        detail: String,
    },
    /// A cuboid specification does not fit the schema or layer bounds.
    BadCuboid {
        /// Description of the violation.
        detail: String,
    },
    /// A popular path is not a valid monotone refinement chain.
    BadPath {
        /// Description of the violation.
        detail: String,
    },
    /// A coordinate vector had the wrong number of components.
    ArityMismatch {
        /// Components supplied.
        got: usize,
        /// Components expected.
        expected: usize,
    },
}

impl fmt::Display for OlapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OlapError::UnknownDimension { dim, count } => {
                write!(f, "dimension {dim} out of range (schema has {count})")
            }
            OlapError::UnknownLevel { dim, level, depth } => {
                write!(f, "level {level} out of range for dimension {dim} (depth {depth})")
            }
            OlapError::MemberOutOfRange {
                dim,
                level,
                member,
                cardinality,
            } => write!(
                f,
                "member {member} out of range at dimension {dim} level {level} (cardinality {cardinality})"
            ),
            OlapError::BadHierarchy { detail } => write!(f, "bad hierarchy: {detail}"),
            OlapError::BadCuboid { detail } => write!(f, "bad cuboid: {detail}"),
            OlapError::BadPath { detail } => write!(f, "bad popular path: {detail}"),
            OlapError::ArityMismatch { got, expected } => {
                write!(f, "arity mismatch: got {got} components, expected {expected}")
            }
        }
    }
}

impl std::error::Error for OlapError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_variants_display() {
        let cases = vec![
            OlapError::UnknownDimension { dim: 3, count: 2 },
            OlapError::UnknownLevel {
                dim: 0,
                level: 9,
                depth: 3,
            },
            OlapError::MemberOutOfRange {
                dim: 0,
                level: 1,
                member: 50,
                cardinality: 10,
            },
            OlapError::BadHierarchy { detail: "x".into() },
            OlapError::BadCuboid { detail: "y".into() },
            OlapError::BadPath { detail: "z".into() },
            OlapError::ArityMismatch {
                got: 1,
                expected: 3,
            },
        ];
        for c in cases {
            assert!(!c.to_string().is_empty());
        }
    }
}
