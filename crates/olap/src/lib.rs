//! OLAP data-cube substrate for `regcube`.
//!
//! This crate provides the *structured environment* the paper places its
//! regression measures into (Sections 2.1, 4.4):
//!
//! * [`hierarchy`] / [`dimension`] / [`schema`] — standard dimensions with
//!   multi-level concept hierarchies (`* > A1 > A2 > A3`);
//! * [`cell`] — cells in the multi-dimensional space with the paper's
//!   ancestor / descendant / sibling relations;
//! * [`cuboid`] / [`lattice`] — the cuboid lattice spanned between the
//!   m-layer and the o-layer (Figure 6: `2·3·2 = 12` cuboids for
//!   Example 5);
//! * [`path`] — monotone *popular paths* through that lattice, the drilling
//!   backbone of Algorithm 2;
//! * [`htree`] — the **H-tree**, the hyper-linked tree structure (after
//!   Han et al., SIGMOD'01, the paper's reference 18) with header tables used by
//!   both cubing algorithms;
//! * [`fxhash`] — an in-repo Fx-style fast hasher (the dependency policy
//!   excludes `rustc-hash`), used for all member-id keyed maps.
//!
//! The crate is measure-agnostic: it stores any payload type `M` in tree
//! nodes and knows nothing about regression. `regcube-core` layers the
//! ISB measures and exception logic on top.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod cell;
pub mod cuboid;
pub mod dimension;
pub mod error;
pub mod fxhash;
pub mod hierarchy;
pub mod htree;
pub mod lattice;
pub mod path;
pub mod schema;

pub use cell::{Cell, CellKey};
pub use cuboid::CuboidSpec;
pub use dimension::Dimension;
pub use error::OlapError;
pub use hierarchy::Hierarchy;
pub use htree::HTree;
pub use lattice::Lattice;
pub use path::PopularPath;
pub use schema::CubeSchema;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, OlapError>;
