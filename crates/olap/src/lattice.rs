//! The cuboid lattice between the m-layer and the o-layer.
//!
//! Framework 4.1 computes (a) the two critical layers and (b) exception
//! cells in the cuboids strictly between them. Those cuboids form a
//! sub-lattice: every per-dimension level between the o-layer's and the
//! m-layer's is admissible, giving `∏_d (m_d - o_d + 1)` cuboids
//! (Example 5 / Figure 6: `2 · 3 · 2 = 12`).

use crate::cuboid::CuboidSpec;
use crate::error::OlapError;
use crate::schema::CubeSchema;
use crate::Result;

/// The lattice of cuboids spanned between an o-layer (coarse bound) and an
/// m-layer (fine bound), both inclusive.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Lattice {
    o_layer: CuboidSpec,
    m_layer: CuboidSpec,
}

impl Lattice {
    /// Creates the lattice between `o_layer` and `m_layer`.
    ///
    /// # Errors
    /// * Schema validation errors for either cuboid.
    /// * [`OlapError::BadCuboid`] when the o-layer is not an ancestor (or
    ///   equal) of the m-layer on every dimension — the paper requires the
    ///   observation layer to sit above the minimal interesting layer.
    pub fn new(schema: &CubeSchema, o_layer: CuboidSpec, m_layer: CuboidSpec) -> Result<Self> {
        schema.check_cuboid(&o_layer)?;
        schema.check_cuboid(&m_layer)?;
        if !o_layer.is_ancestor_or_equal(&m_layer) {
            return Err(OlapError::BadCuboid {
                detail: format!("o-layer {o_layer} is not an ancestor of m-layer {m_layer}"),
            });
        }
        Ok(Lattice { o_layer, m_layer })
    }

    /// The observation layer (coarse bound).
    #[inline]
    pub fn o_layer(&self) -> &CuboidSpec {
        &self.o_layer
    }

    /// The minimal interesting layer (fine bound).
    #[inline]
    pub fn m_layer(&self) -> &CuboidSpec {
        &self.m_layer
    }

    /// Number of cuboids in the lattice: `∏_d (m_d - o_d + 1)`.
    pub fn count(&self) -> u64 {
        self.o_layer
            .levels()
            .iter()
            .zip(self.m_layer.levels().iter())
            .map(|(&o, &m)| u64::from(m - o) + 1)
            .product()
    }

    /// `true` when `cuboid` lies within the lattice bounds.
    pub fn contains(&self, cuboid: &CuboidSpec) -> bool {
        self.o_layer.is_ancestor_or_equal(cuboid) && cuboid.is_ancestor_or_equal(&self.m_layer)
    }

    /// Enumerates every cuboid in the lattice, ordered by descending total
    /// depth (m-layer first, o-layer last) with a deterministic tie order.
    /// This is a valid bottom-up computation order: every cuboid appears
    /// after all of its lattice descendants.
    pub fn bottom_up_order(&self) -> Vec<CuboidSpec> {
        let mut all = self.enumerate();
        all.sort_by(|a, b| {
            b.total_depth()
                .cmp(&a.total_depth())
                .then_with(|| a.levels().cmp(b.levels()))
        });
        all
    }

    /// Enumerates every cuboid in the lattice in mixed-radix order.
    pub fn enumerate(&self) -> Vec<CuboidSpec> {
        let dims = self.o_layer.num_dims();
        let mut out = Vec::with_capacity(self.count() as usize);
        let mut current: Vec<u8> = self.o_layer.levels().to_vec();
        loop {
            out.push(CuboidSpec::new(current.clone()));
            // Increment mixed-radix counter bounded by [o_d, m_d].
            let mut d = 0;
            loop {
                if d == dims {
                    return out;
                }
                if current[d] < self.m_layer.level(d) {
                    current[d] += 1;
                    break;
                }
                current[d] = self.o_layer.level(d);
                d += 1;
            }
        }
    }

    /// The lattice **children** of `cuboid`: one-step finer cuboids still
    /// inside the lattice. In roll-up direction these are the cuboids
    /// `cuboid` can be computed *from*.
    pub fn children(&self, cuboid: &CuboidSpec) -> Vec<CuboidSpec> {
        (0..cuboid.num_dims())
            .filter_map(|d| cuboid.refine(d))
            .filter(|c| self.contains(c))
            .collect()
    }

    /// The lattice **parents** of `cuboid`: one-step coarser cuboids still
    /// inside the lattice — where `cuboid`'s aggregates roll up *to*.
    pub fn parents(&self, cuboid: &CuboidSpec) -> Vec<CuboidSpec> {
        (0..cuboid.num_dims())
            .filter_map(|d| cuboid.coarsen(d))
            .filter(|c| self.contains(c))
            .collect()
    }

    /// Among `computed` cuboids, picks the best source to aggregate
    /// `target` from: a descendant (finer-or-equal on all dimensions,
    /// excluding `target` itself) with the smallest total depth difference,
    /// i.e. the *closest lower level computed cuboid* of the paper's
    /// Algorithm 2, Step 3. Ties break deterministically by level vector.
    pub fn closest_computed_descendant<'a>(
        &self,
        target: &CuboidSpec,
        computed: impl IntoIterator<Item = &'a CuboidSpec>,
    ) -> Option<&'a CuboidSpec> {
        computed
            .into_iter()
            .filter(|c| *c != target && target.is_ancestor_or_equal(c))
            .min_by(|a, b| {
                a.total_depth()
                    .cmp(&b.total_depth())
                    .then_with(|| a.levels().cmp(b.levels()))
            })
    }

    /// Renders the lattice as a Figure 6-style text diagram: one row per
    /// depth tier, o-layer on top, m-layer at the bottom, with cuboids
    /// marked by `highlight` (e.g. a popular path) wrapped in `*…*`.
    pub fn render(&self, highlight: impl Fn(&CuboidSpec) -> bool) -> String {
        use std::fmt::Write as _;
        let mut tiers: Vec<(u32, Vec<CuboidSpec>)> = Vec::new();
        let mut all = self.enumerate();
        all.sort_by_key(|c| (c.total_depth(), c.levels().to_vec()));
        for cuboid in all {
            let depth = cuboid.total_depth();
            match tiers.last_mut() {
                Some((d, row)) if *d == depth => row.push(cuboid),
                _ => tiers.push((depth, vec![cuboid])),
            }
        }
        let mut out = String::new();
        for (depth, row) in tiers {
            let _ = write!(out, "depth {depth:>2}: ");
            for (i, cuboid) in row.iter().enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                if highlight(cuboid) {
                    let _ = write!(out, "*{cuboid}*");
                } else {
                    let _ = write!(out, "{cuboid}");
                }
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn example5() -> (CubeSchema, Lattice) {
        // 3 dimensions, 3 levels each; m = (A2,B2,C2), o = (A1,*,C1).
        let schema = CubeSchema::synthetic(3, 3, 3).unwrap();
        let lattice = Lattice::new(
            &schema,
            CuboidSpec::new(vec![1, 0, 1]),
            CuboidSpec::new(vec![2, 2, 2]),
        )
        .unwrap();
        (schema, lattice)
    }

    #[test]
    fn fig6_lattice_has_12_cuboids() {
        let (_, lattice) = example5();
        assert_eq!(lattice.count(), 12);
        let all = lattice.enumerate();
        assert_eq!(all.len(), 12);
        // All distinct and all inside bounds.
        let set: std::collections::HashSet<_> = all.iter().cloned().collect();
        assert_eq!(set.len(), 12);
        for c in &all {
            assert!(lattice.contains(c));
        }
    }

    #[test]
    fn bottom_up_order_visits_descendants_first() {
        let (_, lattice) = example5();
        let order = lattice.bottom_up_order();
        assert_eq!(order.first().unwrap(), lattice.m_layer());
        assert_eq!(order.last().unwrap(), lattice.o_layer());
        // No cuboid appears before any of its lattice descendants: nothing
        // after `c` may be a strict descendant (finer refinement) of `c`.
        for (i, c) in order.iter().enumerate() {
            for later in &order[i + 1..] {
                assert!(
                    !c.is_ancestor_or_equal(later) || later == c,
                    "descendant {later} appears after its ancestor {c}"
                );
            }
        }
    }

    #[test]
    fn invalid_layer_order_is_rejected() {
        let schema = CubeSchema::synthetic(2, 2, 3).unwrap();
        // o-layer finer than m-layer on dim 0.
        assert!(Lattice::new(
            &schema,
            CuboidSpec::new(vec![2, 0]),
            CuboidSpec::new(vec![1, 2]),
        )
        .is_err());
        // Arity mismatch.
        assert!(Lattice::new(
            &schema,
            CuboidSpec::new(vec![0]),
            CuboidSpec::new(vec![1, 2]),
        )
        .is_err());
    }

    #[test]
    fn children_and_parents_are_adjoint() {
        let (_, lattice) = example5();
        for c in lattice.enumerate() {
            for child in lattice.children(&c) {
                assert!(lattice.parents(&child).contains(&c));
                assert!(c.single_step_dim(&child).is_some());
            }
        }
        // The m-layer has no lattice children; the o-layer no parents.
        assert!(lattice.children(lattice.m_layer()).is_empty());
        assert!(lattice.parents(lattice.o_layer()).is_empty());
    }

    #[test]
    fn closest_descendant_prefers_shallowest() {
        let (_, lattice) = example5();
        let target = CuboidSpec::new(vec![1, 1, 1]);
        let computed = [
            CuboidSpec::new(vec![2, 2, 2]), // m-layer: depth 6
            CuboidSpec::new(vec![1, 2, 1]), // depth 4, descendant
            CuboidSpec::new(vec![2, 0, 1]), // not a descendant (B too coarse)
        ];
        let best = lattice
            .closest_computed_descendant(&target, computed.iter())
            .unwrap();
        assert_eq!(best, &CuboidSpec::new(vec![1, 2, 1]));

        // Excluding the target itself.
        let only_self = [target.clone()];
        assert!(lattice
            .closest_computed_descendant(&target, only_self.iter())
            .is_none());
    }

    #[test]
    fn degenerate_lattice_of_one() {
        let schema = CubeSchema::synthetic(2, 2, 3).unwrap();
        let layer = CuboidSpec::new(vec![1, 1]);
        let lattice = Lattice::new(&schema, layer.clone(), layer.clone()).unwrap();
        assert_eq!(lattice.count(), 1);
        assert_eq!(lattice.enumerate(), vec![layer]);
    }

    #[test]
    fn render_draws_every_cuboid_once_with_highlights() {
        let (_, lattice) = example5();
        let hot = CuboidSpec::new(vec![1, 1, 1]);
        let diagram = lattice.render(|c| *c == hot);
        // One diagram line per depth tier 2..=6.
        assert_eq!(diagram.lines().count(), 5);
        // Every cuboid appears; the highlighted one is starred.
        assert_eq!(
            diagram.matches("(L").count() + diagram.matches("(*, ").count(),
            12
        );
        assert!(diagram.contains("*(L1, L1, L1)*"));
        assert!(diagram.starts_with("depth  2: (L1, *, L1)"));
        assert!(diagram.trim_end().ends_with("(L2, L2, L2)"));
    }
}
