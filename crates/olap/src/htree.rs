//! The H-tree: a hyper-linked tree with header tables (paper Section 4.4,
//! after Han, Pei, Dong, Wang — "Efficient computation of iceberg cubes
//! with complex measures", SIGMOD'01, the paper's reference 18).
//!
//! Each m-layer tuple, *expanded to include the ancestor values of each
//! dimension value*, is inserted as a root-to-leaf path whose node order is
//! a fixed attribute order (one attribute = one `(dimension, level)` pair).
//! Shared prefixes share nodes, which keeps the structure compact when the
//! order puts low-cardinality attributes near the root. Every distinct
//! `(attribute, value)` maintains a **header list** threading through all
//! tree nodes that carry it — the "node-links" Algorithm 1 traverses.
//!
//! The tree is generic over the payload `M` (regression measures in
//! `regcube-core`); payloads live in leaves after insertion and can be
//! rolled up into non-leaf nodes ([`HTree::aggregate_bottom_up`]), which is
//! exactly how Algorithm 2 stores the popular path's aggregates "in the
//! nonleaf nodes in the H-tree".

use crate::cuboid::CuboidSpec;
use crate::error::OlapError;
use crate::fxhash::FxHashMap;
use crate::lattice::Lattice;
use crate::path::PopularPath;
use crate::schema::CubeSchema;
use crate::Result;

/// One H-tree attribute: a `(dimension, level)` pair such as `B2`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AttrSpec {
    /// Dimension index in the schema.
    pub dim: usize,
    /// Hierarchy level (`1..=depth`; the `*` level never appears in a
    /// tree path).
    pub level: u8,
}

/// Node identifier inside an [`HTree`] arena.
pub type NodeId = u32;

/// Sentinel for "no node" in side links.
const NONE: NodeId = u32::MAX;
/// Sentinel attribute index of the root node.
const ROOT_ATTR: u16 = u16::MAX;

#[derive(Debug, Clone)]
struct Node<M> {
    /// Index into the attribute order; `ROOT_ATTR` for the root.
    attr: u16,
    /// Member id at this node's attribute.
    value: u32,
    parent: NodeId,
    children: FxHashMap<u32, NodeId>,
    /// Next node with the same `(attr, value)` (header list threading).
    side: NodeId,
    payload: Option<M>,
}

/// The H-tree structure.
#[derive(Debug, Clone)]
pub struct HTree<M> {
    order: Vec<AttrSpec>,
    nodes: Vec<Node<M>>,
    /// `headers[attr]`: value -> head of the side-linked node list.
    headers: Vec<FxHashMap<u32, NodeId>>,
    leaf_count: usize,
}

impl<M> HTree<M> {
    /// Creates an empty tree over the given root-to-leaf attribute order.
    ///
    /// # Errors
    /// [`OlapError::BadCuboid`] for an empty order.
    pub fn new(order: Vec<AttrSpec>) -> Result<Self> {
        if order.is_empty() {
            return Err(OlapError::BadCuboid {
                detail: "H-tree needs at least one attribute".into(),
            });
        }
        let headers = vec![FxHashMap::default(); order.len()];
        let root = Node {
            attr: ROOT_ATTR,
            value: 0,
            parent: 0,
            children: FxHashMap::default(),
            side: NONE,
            payload: None,
        };
        Ok(HTree {
            order,
            nodes: vec![root],
            headers,
            leaf_count: 0,
        })
    }

    /// The attribute order (root to leaf).
    #[inline]
    pub fn order(&self) -> &[AttrSpec] {
        &self.order
    }

    /// Tree depth = number of attributes.
    #[inline]
    pub fn depth(&self) -> usize {
        self.order.len()
    }

    /// Total node count, including the root.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of distinct leaves (inserted full paths).
    #[inline]
    pub fn num_leaves(&self) -> usize {
        self.leaf_count
    }

    /// Inserts (or finds) the path with the given per-attribute values and
    /// returns its leaf node.
    ///
    /// # Errors
    /// [`OlapError::ArityMismatch`] when `values.len()` differs from the
    /// attribute order length.
    pub fn insert_path(&mut self, values: &[u32]) -> Result<NodeId> {
        if values.len() != self.order.len() {
            return Err(OlapError::ArityMismatch {
                got: values.len(),
                expected: self.order.len(),
            });
        }
        let mut current: NodeId = 0;
        for (depth, &value) in values.iter().enumerate() {
            if let Some(&child) = self.nodes[current as usize].children.get(&value) {
                current = child;
                continue;
            }
            let id = self.nodes.len() as NodeId;
            let head = self.headers[depth].get(&value).copied().unwrap_or(NONE);
            self.nodes.push(Node {
                attr: depth as u16,
                value,
                parent: current,
                children: FxHashMap::default(),
                side: head,
                payload: None,
            });
            self.headers[depth].insert(value, id);
            self.nodes[current as usize].children.insert(value, id);
            if depth == self.order.len() - 1 {
                self.leaf_count += 1;
            }
            current = id;
        }
        Ok(current)
    }

    /// The payload slot of a node.
    #[inline]
    pub fn payload(&self, node: NodeId) -> Option<&M> {
        self.nodes[node as usize].payload.as_ref()
    }

    /// Mutable access to a node's payload slot.
    #[inline]
    pub fn payload_mut(&mut self, node: NodeId) -> &mut Option<M> {
        &mut self.nodes[node as usize].payload
    }

    /// The attribute index of a node (`None` for the root).
    #[inline]
    pub fn node_attr(&self, node: NodeId) -> Option<usize> {
        let a = self.nodes[node as usize].attr;
        (a != ROOT_ATTR).then_some(a as usize)
    }

    /// The member value stored at a node.
    #[inline]
    pub fn node_value(&self, node: NodeId) -> u32 {
        self.nodes[node as usize].value
    }

    /// A node's parent (the root is its own parent).
    #[inline]
    pub fn parent(&self, node: NodeId) -> NodeId {
        self.nodes[node as usize].parent
    }

    /// Iterates a node's children as `(value, node)` pairs in unspecified
    /// order.
    pub fn children(&self, node: NodeId) -> impl Iterator<Item = (u32, NodeId)> + '_ {
        self.nodes[node as usize]
            .children
            .iter()
            .map(|(&v, &n)| (v, n))
    }

    /// `true` when a node has no children (a full inserted path).
    #[inline]
    pub fn is_leaf(&self, node: NodeId) -> bool {
        self.nodes[node as usize].children.is_empty() && node != 0
    }

    /// The values along the path from the root to `node` (attribute order).
    pub fn path_values(&self, node: NodeId) -> Vec<u32> {
        let mut rev = Vec::new();
        let mut cur = node;
        while cur != 0 {
            rev.push(self.nodes[cur as usize].value);
            cur = self.nodes[cur as usize].parent;
        }
        rev.reverse();
        rev
    }

    /// Distinct values present at attribute `attr` with their header-list
    /// heads.
    pub fn header(&self, attr: usize) -> impl Iterator<Item = (u32, NodeId)> + '_ {
        self.headers[attr].iter().map(|(&v, &n)| (v, n))
    }

    /// Walks the side-linked list of nodes sharing `(attr, value)` starting
    /// from the header head.
    pub fn header_chain(&self, attr: usize, value: u32) -> HeaderChain<'_, M> {
        HeaderChain {
            tree: self,
            next: self.headers[attr].get(&value).copied().unwrap_or(NONE),
        }
    }

    /// Visits every leaf node.
    pub fn for_each_leaf(&self, mut f: impl FnMut(NodeId)) {
        for (i, n) in self.nodes.iter().enumerate() {
            if i != 0 && n.children.is_empty() {
                f(i as NodeId);
            }
        }
    }

    /// Rolls leaf payloads up the tree: after this call every non-leaf node
    /// (including the root) holds the merge of all its descendant leaves'
    /// payloads. This is Algorithm 2's Step 2 storage scheme ("aggregated
    /// regression points stored in the nonleaf nodes").
    ///
    /// `merge(acc, next)` folds a descendant's payload into an accumulator;
    /// `clone_of` seeds an accumulator from the first payload.
    pub fn aggregate_bottom_up(
        &mut self,
        clone_of: impl Fn(&M) -> M,
        mut merge: impl FnMut(&mut M, &M),
    ) {
        // Arena ids are topologically ordered (parents precede children),
        // so one reverse sweep folds children into parents.
        for id in (1..self.nodes.len()).rev() {
            let parent = self.nodes[id].parent as usize;
            let Some(payload) = self.nodes[id].payload.take() else {
                continue;
            };
            match &mut self.nodes[parent].payload {
                Some(acc) => merge(acc, &payload),
                slot @ None => *slot = Some(clone_of(&payload)),
            }
            self.nodes[id].payload = Some(payload);
        }
    }

    /// Rough retained-bytes estimate (arena + child maps + headers), used
    /// by the benchmark harness's analytical memory accounting.
    pub fn approx_bytes(&self) -> usize {
        let node = std::mem::size_of::<Node<M>>();
        let entry = std::mem::size_of::<(u32, NodeId)>() * 2;
        let child_entries: usize = self.nodes.iter().map(|n| n.children.len()).sum();
        let header_entries: usize = self.headers.iter().map(FxHashMap::len).sum();
        self.nodes.len() * node + (child_entries + header_entries) * entry
    }
}

/// Iterator over a header's side-linked node chain.
pub struct HeaderChain<'a, M> {
    tree: &'a HTree<M>,
    next: NodeId,
}

impl<M> Iterator for HeaderChain<'_, M> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        if self.next == NONE {
            return None;
        }
        let cur = self.next;
        self.next = self.tree.nodes[cur as usize].side;
        Some(cur)
    }
}

/// The attribute set Algorithm 1 uses: every `(dim, level)` with
/// `1 <= level <= m_d`, sorted by ascending level cardinality — "this
/// ordering makes the tree compact since there are likely more sharings at
/// higher level nodes" (Example 5).
pub fn attrs_by_cardinality(schema: &CubeSchema, lattice: &Lattice) -> Vec<AttrSpec> {
    let mut attrs = Vec::new();
    for d in 0..schema.num_dims() {
        for level in 1..=lattice.m_layer().level(d) {
            attrs.push(AttrSpec { dim: d, level });
        }
    }
    attrs.sort_by_key(|a| {
        (
            schema.dims()[a.dim].hierarchy().cardinality(a.level),
            a.dim,
            a.level,
        )
    });
    attrs
}

/// The attribute order Algorithm 2 uses: the o-layer's non-`*` levels
/// first (dimension order), then one attribute per popular-path drill step
/// — "the H-tree should be constructed in the same order as the popular
/// path".
pub fn attrs_for_path(lattice: &Lattice, path: &PopularPath) -> Vec<AttrSpec> {
    let o = lattice.o_layer();
    let mut attrs: Vec<AttrSpec> = (0..o.num_dims())
        .filter(|&d| o.level(d) > 0)
        .map(|d| AttrSpec {
            dim: d,
            level: o.level(d),
        })
        .collect();
    let mut levels: Vec<u8> = o.levels().to_vec();
    for d in path.drill_order() {
        levels[d] += 1;
        attrs.push(AttrSpec {
            dim: d,
            level: levels[d],
        });
    }
    attrs
}

/// Expands an m-layer tuple (member ids at m-layer levels) into the
/// per-attribute values of an H-tree path: each attribute receives the
/// tuple's ancestor value at that attribute's `(dim, level)`.
pub fn expand_tuple(
    schema: &CubeSchema,
    m_layer: &CuboidSpec,
    ids: &[u32],
    order: &[AttrSpec],
) -> Vec<u32> {
    order
        .iter()
        .map(|a| {
            schema.dims()[a.dim].hierarchy().ancestor_unchecked(
                m_layer.level(a.dim),
                ids[a.dim],
                a.level,
            )
        })
        .collect()
}

/// Convenience: the prefix cuboids of an attribute order. Prefix `k`
/// describes the cuboid whose level per dimension is the deepest level of
/// that dimension among the first `k` attributes (0 when absent) — the
/// cells materialized at tree depth `k`.
pub fn prefix_cuboid(order: &[AttrSpec], k: usize, num_dims: usize) -> CuboidSpec {
    let mut levels = vec![0u8; num_dims];
    for a in &order[..k] {
        levels[a.dim] = levels[a.dim].max(a.level);
    }
    CuboidSpec::new(levels)
}

/// Projects H-tree path values (at the attribute order) down to a cell key
/// of `cuboid`, assuming every needed `(dim, level)` appears in the order.
/// Returns `None` when the cuboid needs an attribute the order lacks.
pub fn path_values_to_key(
    order: &[AttrSpec],
    values: &[u32],
    cuboid: &CuboidSpec,
) -> Option<Vec<u32>> {
    let mut key = vec![0u32; cuboid.num_dims()];
    for (d, slot) in key.iter_mut().enumerate() {
        let level = cuboid.level(d);
        if level == 0 {
            continue;
        }
        let idx = order.iter().position(|a| a.dim == d && a.level == level)?;
        *slot = values[idx];
    }
    Some(key)
}

/// Re-exported for callers that need the raw projection primitive next to
/// the tree helpers.
pub use crate::cell::project_key as project_cell_key;

#[cfg(test)]
mod tests {
    use super::*;

    fn example5() -> (CubeSchema, Lattice) {
        let schema = CubeSchema::synthetic(3, 3, 3).unwrap();
        let lattice = Lattice::new(
            &schema,
            CuboidSpec::new(vec![1, 0, 1]),
            CuboidSpec::new(vec![2, 2, 2]),
        )
        .unwrap();
        (schema, lattice)
    }

    #[test]
    fn insert_shares_prefixes() {
        let mut t: HTree<u32> = HTree::new(vec![
            AttrSpec { dim: 0, level: 1 },
            AttrSpec { dim: 1, level: 1 },
        ])
        .unwrap();
        let l1 = t.insert_path(&[1, 5]).unwrap();
        let l2 = t.insert_path(&[1, 6]).unwrap();
        let l3 = t.insert_path(&[1, 5]).unwrap();
        assert_eq!(l1, l3, "identical paths share the leaf");
        assert_ne!(l1, l2);
        // Root + shared node(1) + two leaves.
        assert_eq!(t.num_nodes(), 4);
        assert_eq!(t.num_leaves(), 2);
        assert_eq!(t.depth(), 2);
        assert!(t.is_leaf(l1));
        assert!(!t.is_leaf(t.parent(l1)));
        assert_eq!(t.path_values(l2), vec![1, 6]);
    }

    #[test]
    fn arity_is_validated() {
        let mut t: HTree<u32> = HTree::new(vec![AttrSpec { dim: 0, level: 1 }]).unwrap();
        assert!(t.insert_path(&[1, 2]).is_err());
        assert!(HTree::<u32>::new(vec![]).is_err());
    }

    #[test]
    fn header_chains_thread_all_occurrences() {
        let mut t: HTree<u32> = HTree::new(vec![
            AttrSpec { dim: 0, level: 1 },
            AttrSpec { dim: 1, level: 1 },
        ])
        .unwrap();
        t.insert_path(&[0, 7]).unwrap();
        t.insert_path(&[1, 7]).unwrap();
        t.insert_path(&[2, 7]).unwrap();
        t.insert_path(&[2, 8]).unwrap();

        let chain: Vec<NodeId> = t.header_chain(1, 7).collect();
        assert_eq!(chain.len(), 3, "three leaves carry value 7 at attr 1");
        for n in chain {
            assert_eq!(t.node_value(n), 7);
            assert_eq!(t.node_attr(n), Some(1));
        }
        assert_eq!(t.header_chain(1, 99).count(), 0);
        let header_vals: Vec<u32> = t.header(1).map(|(v, _)| v).collect();
        assert_eq!(header_vals.len(), 2);
    }

    #[test]
    fn payloads_and_bottom_up_aggregation() {
        let mut t: HTree<u32> = HTree::new(vec![
            AttrSpec { dim: 0, level: 1 },
            AttrSpec { dim: 1, level: 1 },
        ])
        .unwrap();
        for (a, b, v) in [(0, 0, 1u32), (0, 1, 2), (1, 0, 4)] {
            let leaf = t.insert_path(&[a, b]).unwrap();
            *t.payload_mut(leaf) = Some(v);
        }
        t.aggregate_bottom_up(|m| *m, |acc, next| *acc += *next);
        // Root aggregates everything.
        assert_eq!(t.payload(0), Some(&7));
        // The (0, *) internal node aggregates 1 + 2.
        let chain: Vec<NodeId> = t.header_chain(0, 0).collect();
        assert_eq!(chain.len(), 1);
        assert_eq!(t.payload(chain[0]), Some(&3));
        let mut leaves = 0;
        t.for_each_leaf(|_| leaves += 1);
        assert_eq!(leaves, 3);
        assert!(t.approx_bytes() > 0);
    }

    #[test]
    fn cardinality_order_matches_example5() {
        let (schema, lattice) = example5();
        let attrs = attrs_by_cardinality(&schema, &lattice);
        // Fanout 3 for all dims: level-1 cards all 3, level-2 all 9; ties
        // break by dimension then level, so: A1 B1 C1 A2 B2 C2.
        let expect = vec![
            AttrSpec { dim: 0, level: 1 },
            AttrSpec { dim: 1, level: 1 },
            AttrSpec { dim: 2, level: 1 },
            AttrSpec { dim: 0, level: 2 },
            AttrSpec { dim: 1, level: 2 },
            AttrSpec { dim: 2, level: 2 },
        ];
        assert_eq!(attrs, expect);
    }

    #[test]
    fn path_attr_order_matches_example5() {
        let (_, lattice) = example5();
        let path = PopularPath::from_drill_order(&lattice, &[1, 1, 0, 2]).unwrap();
        let attrs = attrs_for_path(&lattice, &path);
        // ⟨(A1, C1), B1, B2, A2, C2⟩ from the paper.
        let expect = vec![
            AttrSpec { dim: 0, level: 1 },
            AttrSpec { dim: 2, level: 1 },
            AttrSpec { dim: 1, level: 1 },
            AttrSpec { dim: 1, level: 2 },
            AttrSpec { dim: 0, level: 2 },
            AttrSpec { dim: 2, level: 2 },
        ];
        assert_eq!(attrs, expect);
    }

    #[test]
    fn expand_tuple_fills_ancestors() {
        let (schema, lattice) = example5();
        let attrs = attrs_by_cardinality(&schema, &lattice);
        // m-layer ids (L2, fanout 3): member 7 -> L1 ancestor 2, etc.
        let values = expand_tuple(&schema, lattice.m_layer(), &[7, 4, 8], &attrs);
        assert_eq!(values, vec![2, 1, 2, 7, 4, 8]);
    }

    #[test]
    fn prefix_cuboids_track_the_deepest_level() {
        let (_, lattice) = example5();
        let path = PopularPath::from_drill_order(&lattice, &[1, 1, 0, 2]).unwrap();
        let attrs = attrs_for_path(&lattice, &path);
        assert_eq!(prefix_cuboid(&attrs, 2, 3).levels(), &[1, 0, 1]); // o-layer
        assert_eq!(prefix_cuboid(&attrs, 3, 3).levels(), &[1, 1, 1]);
        assert_eq!(prefix_cuboid(&attrs, 6, 3).levels(), &[2, 2, 2]); // m-layer
    }

    #[test]
    fn path_values_project_to_cell_keys() {
        let (schema, lattice) = example5();
        let attrs = attrs_by_cardinality(&schema, &lattice);
        let values = expand_tuple(&schema, lattice.m_layer(), &[7, 4, 8], &attrs);
        let key = path_values_to_key(&attrs, &values, &CuboidSpec::new(vec![1, 0, 2])).unwrap();
        assert_eq!(key, vec![2, 0, 8]);
        // A cuboid needing an absent attribute (level 3) yields None.
        assert!(path_values_to_key(&attrs, &values, &CuboidSpec::new(vec![3, 0, 0])).is_none());
    }
}
