//! Named standard dimensions.

use crate::hierarchy::Hierarchy;
use crate::Result;

/// A standard (non-time) dimension: a name, optional level names and a
/// concept hierarchy.
///
/// Example 1's power-grid cube has dimensions `user` (`* > user-group >
/// individual-user`) and `location` (`* > city > street-block >
/// street-address`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dimension {
    name: String,
    level_names: Vec<String>,
    hierarchy: Hierarchy,
}

impl Dimension {
    /// Creates a dimension with auto-generated level names
    /// (`<name>.L1`, `<name>.L2`, …).
    pub fn new(name: impl Into<String>, hierarchy: Hierarchy) -> Self {
        let name = name.into();
        let level_names = (1..=hierarchy.depth())
            .map(|l| format!("{name}.L{l}"))
            .collect();
        Dimension {
            name,
            level_names,
            hierarchy,
        }
    }

    /// Creates a dimension with explicit level names (finest last).
    ///
    /// # Errors
    /// [`crate::OlapError::BadHierarchy`] when the number of names differs
    /// from the hierarchy depth.
    pub fn with_level_names(
        name: impl Into<String>,
        hierarchy: Hierarchy,
        level_names: Vec<String>,
    ) -> Result<Self> {
        if level_names.len() != hierarchy.depth() as usize {
            return Err(crate::OlapError::BadHierarchy {
                detail: format!(
                    "{} level names for depth {}",
                    level_names.len(),
                    hierarchy.depth()
                ),
            });
        }
        Ok(Dimension {
            name: name.into(),
            level_names,
            hierarchy,
        })
    }

    /// Dimension name.
    #[inline]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The dimension's concept hierarchy.
    #[inline]
    pub fn hierarchy(&self) -> &Hierarchy {
        &self.hierarchy
    }

    /// Depth of the hierarchy (number of named levels).
    #[inline]
    pub fn depth(&self) -> u8 {
        self.hierarchy.depth()
    }

    /// Human-readable name of `level` (`"*"` for level 0).
    pub fn level_name(&self, level: u8) -> &str {
        if level == 0 {
            "*"
        } else {
            &self.level_names[(level - 1) as usize]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn auto_level_names() {
        let d = Dimension::new("location", Hierarchy::balanced(3, 4).unwrap());
        assert_eq!(d.name(), "location");
        assert_eq!(d.level_name(0), "*");
        assert_eq!(d.level_name(1), "location.L1");
        assert_eq!(d.level_name(3), "location.L3");
        assert_eq!(d.depth(), 3);
    }

    #[test]
    fn explicit_level_names() {
        let d = Dimension::with_level_names(
            "location",
            Hierarchy::balanced(3, 4).unwrap(),
            vec![
                "city".into(),
                "street-block".into(),
                "street-address".into(),
            ],
        )
        .unwrap();
        assert_eq!(d.level_name(1), "city");
        assert_eq!(d.level_name(3), "street-address");

        assert!(Dimension::with_level_names(
            "x",
            Hierarchy::balanced(2, 2).unwrap(),
            vec!["one".into()],
        )
        .is_err());
    }
}
