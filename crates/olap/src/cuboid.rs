//! Cuboid specifications: one abstraction level per dimension.

use std::fmt;

/// A cuboid, identified by the hierarchy level chosen for each dimension.
///
/// Level `0` is the all-level `*`; larger levels are finer. The m-layer of
/// Example 5 is `(A2, B2, C2)` = `CuboidSpec::new(vec![2, 2, 2])` and the
/// o-layer `(A1, *, C1)` = `CuboidSpec::new(vec![1, 0, 1])`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CuboidSpec {
    levels: Vec<u8>,
}

impl CuboidSpec {
    /// Creates a cuboid from per-dimension levels.
    pub fn new(levels: Vec<u8>) -> Self {
        CuboidSpec { levels }
    }

    /// Number of dimensions.
    #[inline]
    pub fn num_dims(&self) -> usize {
        self.levels.len()
    }

    /// The level chosen for dimension `d`.
    ///
    /// # Panics
    /// Panics when `d` is out of range.
    #[inline]
    pub fn level(&self, d: usize) -> u8 {
        self.levels[d]
    }

    /// All levels, in dimension order.
    #[inline]
    pub fn levels(&self) -> &[u8] {
        &self.levels
    }

    /// Sum of levels — the cuboid's total depth. The m-layer maximizes it,
    /// the o-layer minimizes it within a lattice.
    #[inline]
    pub fn total_depth(&self) -> u32 {
        self.levels.iter().map(|&l| u32::from(l)).sum()
    }

    /// `true` when `self` is at least as coarse as `other` on every
    /// dimension (so `self`'s cells are ancestors of `other`'s).
    /// Reflexive: a cuboid is an ancestor-or-equal of itself.
    pub fn is_ancestor_or_equal(&self, other: &CuboidSpec) -> bool {
        self.levels.len() == other.levels.len()
            && self
                .levels
                .iter()
                .zip(other.levels.iter())
                .all(|(a, b)| a <= b)
    }

    /// Returns the cuboid with dimension `d` refined one level (toward
    /// finer data), or `None` when `d` is out of range.
    pub fn refine(&self, d: usize) -> Option<CuboidSpec> {
        if d >= self.levels.len() {
            return None;
        }
        let mut levels = self.levels.clone();
        levels[d] = levels[d].checked_add(1)?;
        Some(CuboidSpec { levels })
    }

    /// Returns the cuboid with dimension `d` coarsened one level (toward
    /// `*`), or `None` when `d` is out of range or already at `*`.
    pub fn coarsen(&self, d: usize) -> Option<CuboidSpec> {
        if d >= self.levels.len() || self.levels[d] == 0 {
            return None;
        }
        let mut levels = self.levels.clone();
        levels[d] -= 1;
        Some(CuboidSpec { levels })
    }

    /// The single dimension on which `self` and `other` differ by exactly
    /// one level (with all others equal), if any — the "one roll-up step"
    /// relation that popular paths are made of.
    pub fn single_step_dim(&self, finer: &CuboidSpec) -> Option<usize> {
        if self.levels.len() != finer.levels.len() {
            return None;
        }
        let mut step = None;
        for (d, (a, b)) in self.levels.iter().zip(finer.levels.iter()).enumerate() {
            if a == b {
                continue;
            }
            if *b == a + 1 && step.is_none() {
                step = Some(d);
            } else {
                return None;
            }
        }
        step
    }
}

impl fmt::Display for CuboidSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, l) in self.levels.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            if *l == 0 {
                write!(f, "*")?;
            } else {
                write!(f, "L{l}")?;
            }
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_and_depth() {
        let c = CuboidSpec::new(vec![1, 0, 2]);
        assert_eq!(c.num_dims(), 3);
        assert_eq!(c.level(2), 2);
        assert_eq!(c.total_depth(), 3);
        assert_eq!(format!("{c}"), "(L1, *, L2)");
    }

    #[test]
    fn ancestor_ordering() {
        let o = CuboidSpec::new(vec![1, 0, 1]);
        let m = CuboidSpec::new(vec![2, 2, 2]);
        assert!(o.is_ancestor_or_equal(&m));
        assert!(!m.is_ancestor_or_equal(&o));
        assert!(o.is_ancestor_or_equal(&o));
        // Incomparable pair.
        let x = CuboidSpec::new(vec![2, 0, 1]);
        let y = CuboidSpec::new(vec![1, 1, 1]);
        assert!(!x.is_ancestor_or_equal(&y));
        assert!(!y.is_ancestor_or_equal(&x));
        // Arity mismatch is never an ancestor.
        assert!(!o.is_ancestor_or_equal(&CuboidSpec::new(vec![1, 0])));
    }

    #[test]
    fn refine_and_coarsen_are_inverse() {
        let c = CuboidSpec::new(vec![1, 2]);
        let finer = c.refine(0).unwrap();
        assert_eq!(finer.levels(), &[2, 2]);
        assert_eq!(finer.coarsen(0).unwrap(), c);
        assert!(c.refine(5).is_none());
        assert!(CuboidSpec::new(vec![0]).coarsen(0).is_none());
        assert!(c.coarsen(9).is_none());
    }

    #[test]
    fn single_step_detection() {
        let a = CuboidSpec::new(vec![1, 1, 1]);
        let b = CuboidSpec::new(vec![1, 2, 1]);
        let c = CuboidSpec::new(vec![2, 2, 1]);
        assert_eq!(a.single_step_dim(&b), Some(1));
        assert_eq!(b.single_step_dim(&c), Some(0));
        assert_eq!(a.single_step_dim(&c), None); // two steps
        assert_eq!(a.single_step_dim(&a), None); // zero steps
        assert_eq!(b.single_step_dim(&a), None); // wrong direction
        assert_eq!(a.single_step_dim(&CuboidSpec::new(vec![1, 1])), None);
    }
}
