//! Cube schemas: the ordered set of standard dimensions.

use crate::cuboid::CuboidSpec;
use crate::dimension::Dimension;
use crate::error::OlapError;
use crate::Result;

/// The schema of a regression cube: its standard dimensions.
///
/// The time dimension is deliberately *not* part of the schema — the paper
/// handles it separately through the tilt time frame (`regcube-tilt`), and
/// every cell's measure carries its own time interval.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CubeSchema {
    dims: Vec<Dimension>,
}

impl CubeSchema {
    /// Creates a schema from an ordered dimension list.
    ///
    /// # Errors
    /// [`OlapError::BadCuboid`] when no dimensions are supplied.
    pub fn new(dims: Vec<Dimension>) -> Result<Self> {
        if dims.is_empty() {
            return Err(OlapError::BadCuboid {
                detail: "schema needs at least one dimension".into(),
            });
        }
        Ok(CubeSchema { dims })
    }

    /// A synthetic schema with `d` dimensions, each a balanced hierarchy of
    /// the given depth and fanout — the `DxLxCx` structure of the paper's
    /// data generator.
    ///
    /// # Errors
    /// Propagates hierarchy construction errors.
    pub fn synthetic(d: usize, depth: u8, fanout: u32) -> Result<Self> {
        let mut dims = Vec::with_capacity(d);
        for i in 0..d {
            let name = match i {
                0 => "A".to_string(),
                1 => "B".to_string(),
                2 => "C".to_string(),
                3 => "D".to_string(),
                _ => format!("D{i}"),
            };
            dims.push(Dimension::new(
                name,
                crate::hierarchy::Hierarchy::balanced(depth, fanout)?,
            ));
        }
        CubeSchema::new(dims)
    }

    /// Number of dimensions.
    #[inline]
    pub fn num_dims(&self) -> usize {
        self.dims.len()
    }

    /// The dimensions in order.
    #[inline]
    pub fn dims(&self) -> &[Dimension] {
        &self.dims
    }

    /// Dimension by index.
    ///
    /// # Errors
    /// [`OlapError::UnknownDimension`] when out of range.
    pub fn dim(&self, d: usize) -> Result<&Dimension> {
        self.dims.get(d).ok_or(OlapError::UnknownDimension {
            dim: d,
            count: self.dims.len(),
        })
    }

    /// Looks a dimension up by name.
    pub fn dim_by_name(&self, name: &str) -> Option<(usize, &Dimension)> {
        self.dims.iter().enumerate().find(|(_, d)| d.name() == name)
    }

    /// The cuboid at every dimension's finest level.
    pub fn finest_cuboid(&self) -> CuboidSpec {
        CuboidSpec::new(self.dims.iter().map(Dimension::depth).collect())
    }

    /// The apex cuboid `(*, *, …, *)`.
    pub fn apex_cuboid(&self) -> CuboidSpec {
        CuboidSpec::new(vec![0; self.dims.len()])
    }

    /// Validates that a cuboid fits this schema (arity and level bounds).
    ///
    /// # Errors
    /// [`OlapError::ArityMismatch`] or [`OlapError::UnknownLevel`].
    pub fn check_cuboid(&self, cuboid: &CuboidSpec) -> Result<()> {
        if cuboid.num_dims() != self.dims.len() {
            return Err(OlapError::ArityMismatch {
                got: cuboid.num_dims(),
                expected: self.dims.len(),
            });
        }
        for (d, dim) in self.dims.iter().enumerate() {
            dim.hierarchy().check_level(d, cuboid.level(d))?;
        }
        Ok(())
    }

    /// Number of potential cells in `cuboid` (product of level
    /// cardinalities) — a capacity diagnostic for planners.
    ///
    /// # Errors
    /// Propagates [`Self::check_cuboid`] errors.
    pub fn cuboid_capacity(&self, cuboid: &CuboidSpec) -> Result<u64> {
        self.check_cuboid(cuboid)?;
        let mut cap: u64 = 1;
        for (d, dim) in self.dims.iter().enumerate() {
            cap = cap.saturating_mul(u64::from(dim.hierarchy().cardinality(cuboid.level(d))));
        }
        Ok(cap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_schema_matches_spec() {
        let s = CubeSchema::synthetic(3, 3, 10).unwrap();
        assert_eq!(s.num_dims(), 3);
        assert_eq!(s.dims()[0].name(), "A");
        assert_eq!(s.dims()[2].name(), "C");
        assert_eq!(s.finest_cuboid().levels(), &[3, 3, 3]);
        assert_eq!(s.apex_cuboid().levels(), &[0, 0, 0]);
    }

    #[test]
    fn empty_schema_is_rejected() {
        assert!(CubeSchema::new(vec![]).is_err());
    }

    #[test]
    fn dim_lookup() {
        let s = CubeSchema::synthetic(2, 2, 3).unwrap();
        assert!(s.dim(0).is_ok());
        assert!(matches!(
            s.dim(2),
            Err(OlapError::UnknownDimension { dim: 2, count: 2 })
        ));
        assert_eq!(s.dim_by_name("B").unwrap().0, 1);
        assert!(s.dim_by_name("Z").is_none());
    }

    #[test]
    fn cuboid_validation_and_capacity() {
        let s = CubeSchema::synthetic(2, 2, 3).unwrap();
        let ok = CuboidSpec::new(vec![1, 2]);
        s.check_cuboid(&ok).unwrap();
        assert_eq!(s.cuboid_capacity(&ok).unwrap(), 3 * 9);
        assert_eq!(s.cuboid_capacity(&s.apex_cuboid()).unwrap(), 1);

        assert!(s.check_cuboid(&CuboidSpec::new(vec![1])).is_err());
        assert!(s.check_cuboid(&CuboidSpec::new(vec![1, 7])).is_err());
    }

    #[test]
    fn many_dimension_names_are_unique() {
        let s = CubeSchema::synthetic(6, 1, 2).unwrap();
        let names: Vec<&str> = s.dims().iter().map(Dimension::name).collect();
        assert_eq!(names, vec!["A", "B", "C", "D", "D4", "D5"]);
    }
}
