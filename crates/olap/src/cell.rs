//! Cells of the multi-dimensional space and the paper's cell relations.
//!
//! A cell (paper Section 2.1) is a tuple over the dimensional attributes;
//! we address it by its [`CuboidSpec`] plus one dense member id per
//! dimension (id `0` for any dimension at the `*` level). A cell with `k`
//! non-`*` dimensions is a *k-d cell*.

use crate::cuboid::CuboidSpec;
use crate::error::OlapError;
use crate::schema::CubeSchema;
use crate::Result;
use std::fmt;

/// The member-id coordinate of a cell *within a known cuboid*: one id per
/// dimension, `0` for `*` dimensions. Used as the hash key of cuboid
/// tables, so it is compact (a boxed slice) and cheap to hash (FxHasher).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CellKey(Box<[u32]>);

impl CellKey {
    /// Creates a key from per-dimension member ids.
    pub fn new(ids: impl Into<Box<[u32]>>) -> Self {
        CellKey(ids.into())
    }

    /// The member ids, in dimension order.
    #[inline]
    pub fn ids(&self) -> &[u32] {
        &self.0
    }

    /// Number of dimensions.
    #[inline]
    pub fn num_dims(&self) -> usize {
        self.0.len()
    }
}

/// Keys borrow as their id slice, so hash tables keyed by [`CellKey`]
/// can be probed with a plain `&[u32]` (e.g. a projection buffer)
/// without allocating a key first. The derived `Hash`/`Eq` hash and
/// compare exactly the id slice, so the `Borrow` contract holds.
impl std::borrow::Borrow<[u32]> for CellKey {
    fn borrow(&self) -> &[u32] {
        &self.0
    }
}

impl fmt::Display for CellKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, id) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{id}")?;
        }
        write!(f, "]")
    }
}

/// A fully addressed cell: cuboid plus member ids.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Cell {
    cuboid: CuboidSpec,
    key: CellKey,
}

impl Cell {
    /// Creates a cell, validating the coordinate against the schema.
    ///
    /// # Errors
    /// * [`OlapError::ArityMismatch`] when the id count differs from the
    ///   dimension count.
    /// * [`OlapError::MemberOutOfRange`] when an id exceeds its level's
    ///   cardinality (including non-zero ids on `*` dimensions).
    pub fn new(schema: &CubeSchema, cuboid: CuboidSpec, ids: Vec<u32>) -> Result<Self> {
        schema.check_cuboid(&cuboid)?;
        if ids.len() != cuboid.num_dims() {
            return Err(OlapError::ArityMismatch {
                got: ids.len(),
                expected: cuboid.num_dims(),
            });
        }
        for (d, (&id, dim)) in ids.iter().zip(schema.dims().iter()).enumerate() {
            let level = cuboid.level(d);
            let card = dim.hierarchy().cardinality(level);
            if id >= card {
                return Err(OlapError::MemberOutOfRange {
                    dim: d,
                    level,
                    member: id,
                    cardinality: card,
                });
            }
        }
        Ok(Cell {
            cuboid,
            key: CellKey::new(ids),
        })
    }

    /// The cell's cuboid.
    #[inline]
    pub fn cuboid(&self) -> &CuboidSpec {
        &self.cuboid
    }

    /// The cell's member-id key.
    #[inline]
    pub fn key(&self) -> &CellKey {
        &self.key
    }

    /// Number of non-`*` dimensions — the `k` of a "k-d cell".
    pub fn k(&self) -> usize {
        self.cuboid.levels().iter().filter(|&&l| l != 0).count()
    }

    /// Projects this cell to an ancestor `target` cuboid by replacing each
    /// member with its ancestor at the target level.
    ///
    /// # Errors
    /// [`OlapError::BadCuboid`] when `target` is not an
    /// ancestor-or-equal cuboid of this cell's cuboid.
    pub fn project(&self, schema: &CubeSchema, target: &CuboidSpec) -> Result<Cell> {
        if !target.is_ancestor_or_equal(&self.cuboid) {
            return Err(OlapError::BadCuboid {
                detail: format!(
                    "cannot project {} cell to non-ancestor cuboid {}",
                    self.cuboid, target
                ),
            });
        }
        let ids = project_key(schema, &self.cuboid, self.key.ids(), target);
        Ok(Cell {
            cuboid: target.clone(),
            key: CellKey::new(ids),
        })
    }

    /// `true` when `self` is a (strict or equal) **ancestor** of `other`:
    /// on every dimension the cells share a value or `self`'s value is a
    /// generalization of `other`'s (paper Section 2.1).
    pub fn is_ancestor_or_equal(&self, schema: &CubeSchema, other: &Cell) -> bool {
        if !self.cuboid.is_ancestor_or_equal(&other.cuboid) {
            return false;
        }
        other
            .project(schema, &self.cuboid)
            .map(|p| p.key == self.key)
            .unwrap_or(false)
    }

    /// `true` when `self` and `other` are **siblings**: identical in all
    /// dimensions except one, where their members share a parent
    /// (paper Section 2.1).
    pub fn is_sibling_of(&self, schema: &CubeSchema, other: &Cell) -> bool {
        if self.cuboid != other.cuboid || self.key == other.key {
            return false;
        }
        let mut diff_dim = None;
        for (d, (&a, &b)) in self
            .key
            .ids()
            .iter()
            .zip(other.key.ids().iter())
            .enumerate()
        {
            if a != b {
                if diff_dim.is_some() {
                    return false;
                }
                diff_dim = Some((d, a, b));
            }
        }
        let Some((d, a, b)) = diff_dim else {
            return false;
        };
        let level = self.cuboid.level(d);
        if level == 0 {
            return false; // the * level has a single member; can't differ
        }
        let h = schema.dims()[d].hierarchy();
        if level == 1 {
            // Level-1 members all share the * parent.
            return true;
        }
        h.parent(level, a) == h.parent(level, b)
    }
}

impl fmt::Display for Cell {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}", self.cuboid, self.key)
    }
}

/// Projects a raw key from `source` cuboid coordinates to an ancestor
/// `target` cuboid — the hot-loop primitive behind every roll-up.
///
/// Callers must guarantee `target.is_ancestor_or_equal(source)` and a
/// valid key; this function does not validate.
pub fn project_key(
    schema: &CubeSchema,
    source: &CuboidSpec,
    ids: &[u32],
    target: &CuboidSpec,
) -> Vec<u32> {
    let mut out = Vec::with_capacity(ids.len());
    for (d, &id) in ids.iter().enumerate() {
        let from = source.level(d);
        let to = target.level(d);
        let h = schema.dims()[d].hierarchy();
        out.push(h.ancestor_unchecked(from, id, to));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> CubeSchema {
        CubeSchema::synthetic(3, 3, 3).unwrap()
    }

    #[test]
    fn cell_construction_validates() {
        let s = schema();
        let c = Cell::new(&s, CuboidSpec::new(vec![1, 0, 2]), vec![2, 0, 8]).unwrap();
        assert_eq!(c.k(), 2);
        assert_eq!(format!("{c}"), "(L1, *, L2)[2, 0, 8]");

        assert!(Cell::new(&s, CuboidSpec::new(vec![1, 0]), vec![0, 0]).is_err());
        assert!(Cell::new(&s, CuboidSpec::new(vec![1, 0, 2]), vec![0, 0]).is_err());
        assert!(Cell::new(&s, CuboidSpec::new(vec![1, 0, 2]), vec![3, 0, 0]).is_err());
        assert!(Cell::new(&s, CuboidSpec::new(vec![1, 0, 2]), vec![0, 1, 0]).is_err());
    }

    #[test]
    fn projection_generalizes_members() {
        let s = schema();
        let fine = Cell::new(&s, CuboidSpec::new(vec![3, 3, 3]), vec![26, 13, 5]).unwrap();
        let coarse = fine.project(&s, &CuboidSpec::new(vec![1, 0, 2])).unwrap();
        // 26 at L3 -> 8 at L2 -> 2 at L1 (fanout 3); 5 at L3 -> 1 at L2.
        assert_eq!(coarse.key().ids(), &[2, 0, 1]);

        // Projecting to a finer cuboid is an error.
        assert!(coarse.project(&s, &CuboidSpec::new(vec![3, 3, 3])).is_err());
    }

    #[test]
    fn ancestor_relation() {
        let s = schema();
        let base = Cell::new(&s, CuboidSpec::new(vec![3, 3, 3]), vec![26, 13, 5]).unwrap();
        let anc = Cell::new(&s, CuboidSpec::new(vec![1, 0, 2]), vec![2, 0, 1]).unwrap();
        let not_anc = Cell::new(&s, CuboidSpec::new(vec![1, 0, 2]), vec![1, 0, 1]).unwrap();
        assert!(anc.is_ancestor_or_equal(&s, &base));
        assert!(!not_anc.is_ancestor_or_equal(&s, &base));
        assert!(!base.is_ancestor_or_equal(&s, &anc));
        assert!(base.is_ancestor_or_equal(&s, &base));
    }

    #[test]
    fn sibling_relation() {
        let s = schema();
        let cuboid = CuboidSpec::new(vec![2, 2, 2]);
        // Members 3 and 4 at L2 share parent 1 (fanout 3); 3 and 6 do not.
        let a = Cell::new(&s, cuboid.clone(), vec![3, 0, 0]).unwrap();
        let b = Cell::new(&s, cuboid.clone(), vec![4, 0, 0]).unwrap();
        let c = Cell::new(&s, cuboid.clone(), vec![6, 0, 0]).unwrap();
        let two_diff = Cell::new(&s, cuboid.clone(), vec![4, 1, 0]).unwrap();
        assert!(a.is_sibling_of(&s, &b));
        assert!(b.is_sibling_of(&s, &a));
        assert!(!a.is_sibling_of(&s, &c));
        assert!(!a.is_sibling_of(&s, &two_diff));
        assert!(!a.is_sibling_of(&s, &a));

        // Level-1 members are always siblings under *.
        let l1 = CuboidSpec::new(vec![1, 0, 0]);
        let x = Cell::new(&s, l1.clone(), vec![0, 0, 0]).unwrap();
        let y = Cell::new(&s, l1, vec![2, 0, 0]).unwrap();
        assert!(x.is_sibling_of(&s, &y));
    }

    #[test]
    fn cell_key_accessors() {
        let k = CellKey::new(vec![1, 2, 3]);
        assert_eq!(k.ids(), &[1, 2, 3]);
        assert_eq!(k.num_dims(), 3);
        assert_eq!(format!("{k}"), "[1, 2, 3]");
    }
}
