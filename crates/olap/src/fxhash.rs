//! An Fx-style fast hasher, implemented in-repo.
//!
//! Member-id keyed hash maps are the hottest data structure in cubing:
//! every cell visit is a map probe keyed by small integer tuples. The
//! default SipHash is needlessly defensive for those keys (they are
//! generated internally, not attacker-controlled), so we use the same
//! multiply-rotate scheme as rustc's `FxHasher`. The `rustc-hash` crate is
//! outside the allowed offline dependency set (DESIGN.md §5), hence this
//! ~60-line reimplementation.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative seed from splitmix64/fxhash.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// A fast, non-cryptographic hasher for small internally-generated keys.
#[derive(Debug, Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let word = u64::from_le_bytes(chunk.try_into().expect("chunk of 8"));
            self.add_to_hash(word);
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut word = [0u8; 8];
            word[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }
}

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::Hash;

    fn hash_of<T: Hash>(v: &T) -> u64 {
        let mut h = FxHasher::default();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn hashing_is_deterministic() {
        assert_eq!(hash_of(&42u32), hash_of(&42u32));
        assert_eq!(hash_of(&vec![1u32, 2, 3]), hash_of(&vec![1u32, 2, 3]));
    }

    #[test]
    fn nearby_keys_get_distinct_hashes() {
        let h: Vec<u64> = (0u32..1000).map(|i| hash_of(&i)).collect();
        let distinct: FxHashSet<u64> = h.iter().copied().collect();
        assert_eq!(distinct.len(), 1000, "collisions among 1000 small ints");
    }

    #[test]
    fn byte_stream_remainder_is_hashed() {
        // Strings of different short lengths must not collide trivially.
        let a = hash_of(&"abc");
        let b = hash_of(&"abd");
        let c = hash_of(&"ab");
        assert_ne!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn maps_and_sets_work_end_to_end() {
        let mut m: FxHashMap<(u32, u32), u64> = FxHashMap::default();
        for i in 0..100 {
            m.insert((i, i * 2), u64::from(i) * 7);
        }
        assert_eq!(m.len(), 100);
        assert_eq!(m[&(3, 6)], 21);

        let s: FxHashSet<u32> = (0..50).collect();
        assert!(s.contains(&49));
        assert!(!s.contains(&50));
    }
}
