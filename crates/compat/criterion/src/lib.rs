//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access, so the workspace vendors
//! a minimal benchmarking harness exposing the subset of criterion's API
//! regcube's benches use: [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_function`] / `bench_with_input`,
//! [`BenchmarkId`], [`Throughput`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros.
//!
//! Statistics are deliberately simple — a short warm-up, a fixed
//! measurement budget, mean/min reporting on stdout — enough to compare
//! code paths locally; there is no HTML report or regression store.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Declared throughput of a benchmark, printed alongside timings.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark's identifier within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id made of the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { label: s.into() }
    }
}

/// Runs closures under the timer.
#[derive(Debug)]
pub struct Bencher {
    /// Mean nanoseconds per iteration of the last `iter` call.
    mean_ns: f64,
    /// Minimum nanoseconds per iteration of the last `iter` call.
    min_ns: f64,
    /// Total iterations measured.
    iters: u64,
    /// Measurement budget.
    budget: Duration,
}

impl Bencher {
    fn new(budget: Duration) -> Self {
        Bencher {
            mean_ns: 0.0,
            min_ns: 0.0,
            iters: 0,
            budget,
        }
    }

    /// Times `routine` repeatedly until the measurement budget is spent.
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        // Warm-up: one untimed call (fills caches, triggers lazy init).
        black_box(routine());
        let mut total = Duration::ZERO;
        let mut min = Duration::MAX;
        let mut iters: u64 = 0;
        while total < self.budget && iters < 1_000_000 {
            let start = Instant::now();
            black_box(routine());
            let dt = start.elapsed();
            total += dt;
            min = min.min(dt);
            iters += 1;
        }
        self.mean_ns = total.as_nanos() as f64 / iters.max(1) as f64;
        self.min_ns = min.as_nanos() as f64;
        self.iters = iters;
    }
}

/// A named group of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'c> {
    criterion: &'c Criterion,
    name: String,
    throughput: Option<Throughput>,
    budget: Duration,
}

impl BenchmarkGroup<'_> {
    /// Sets the nominal sample count (scales this harness's time budget).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        // Upstream uses n samples; here n only scales the budget.
        self.budget = Duration::from_millis(5).saturating_mul(n.clamp(1, 100) as u32);
        self
    }

    /// Declares the throughput printed with each benchmark.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Benchmarks `routine` with a borrowed input.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut routine: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher::new(self.budget);
        routine(&mut b, input);
        self.report(&id.label, &b);
        self
    }

    /// Benchmarks `routine` with no external input.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut routine: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher::new(self.budget);
        routine(&mut b);
        self.report(&id.label, &b);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}

    fn report(&self, label: &str, b: &Bencher) {
        let _ = &self.criterion;
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) if b.mean_ns > 0.0 => {
                format!("  {:>12.0} elem/s", n as f64 / (b.mean_ns * 1e-9))
            }
            Some(Throughput::Bytes(n)) if b.mean_ns > 0.0 => {
                format!("  {:>12.0} B/s", n as f64 / (b.mean_ns * 1e-9))
            }
            _ => String::new(),
        };
        println!(
            "{}/{:<32} mean {:>12} min {:>12}  ({} iters){rate}",
            self.name,
            label,
            fmt_ns(b.mean_ns),
            fmt_ns(b.min_ns),
            b.iters,
        );
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} us", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// The top-level harness handle.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("== bench group: {name} ==");
        BenchmarkGroup {
            criterion: self,
            name,
            throughput: None,
            budget: Duration::from_millis(50),
        }
    }

    /// Benchmarks a standalone function.
    pub fn bench_function(
        &mut self,
        name: impl Into<String>,
        routine: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let name = name.into();
        self.benchmark_group(name.clone())
            .bench_function(BenchmarkId::from_parameter(&name), routine);
        self
    }
}

/// Declares a function running the listed benchmark functions in order.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main`, running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("shim");
        g.sample_size(2);
        g.throughput(Throughput::Elements(10));
        g.bench_with_input(BenchmarkId::new("sum", 10), &10u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>());
        });
        g.bench_function("noop", |b| b.iter(|| black_box(1)));
        g.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn harness_runs_and_measures() {
        benches();
        let mut b = Bencher::new(Duration::from_millis(1));
        b.iter(|| black_box(2 + 2));
        assert!(b.iters > 0);
        assert!(b.mean_ns >= 0.0);
    }
}
