//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access, so the workspace vendors
//! the minimal, API-compatible subset of `rand` 0.9 that regcube uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and the [`Rng`]
//! methods `random`, `random_range` and `random_bool`.
//!
//! The generator is SplitMix64 — statistically fine for synthetic dataset
//! generation and fully deterministic per seed, which is all the callers
//! need. It makes no sequence-compatibility promise with upstream `rand`.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// A source of random `u64`s plus the derived convenience methods.
pub trait Rng {
    /// The next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// A uniformly random value of `T` (see [`Random`] for the types).
    fn random<T: Random>(&mut self) -> T
    where
        Self: Sized,
    {
        T::random(self)
    }

    /// A uniformly random value in `range`.
    ///
    /// # Panics
    /// Panics on an empty range, matching upstream `rand`.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        Self: Sized,
        R: SampleRange<T>,
    {
        range.sample(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        let p = p.clamp(0.0, 1.0);
        f64::random(self) < p
    }
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types [`Rng::random`] can produce.
pub trait Random {
    /// Draws one uniformly random value from `rng`.
    fn random<R: Rng>(rng: &mut R) -> Self;
}

impl Random for u64 {
    fn random<R: Rng>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Random for u32 {
    fn random<R: Rng>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Random for f64 {
    fn random<R: Rng>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Random for bool {
    fn random<R: Rng>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges [`Rng::random_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one uniformly random value from the range.
    fn sample<R: Rng>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = (rng.next_u64() as u128) % span;
                (self.start as i128 + draw as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: Rng>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let draw = (rng.next_u64() as u128) % span;
                (start as i128 + draw as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample<R: Rng>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = f64::random(rng);
        self.start + unit * (self.end - self.start)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The standard deterministic generator (SplitMix64 underneath).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea, Flood 2014).
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn determinism_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let x = rng.random_range(3..17u32);
            assert!((3..17).contains(&x));
            let y = rng.random_range(1..=4u32);
            assert!((1..=4).contains(&y));
            let f = rng.random_range(-2.0..3.0f64);
            assert!((-2.0..3.0).contains(&f));
            let u: f64 = rng.random();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn bool_probability_edges() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!(0..100).any(|_| rng.random_bool(0.0)));
        assert!((0..100).all(|_| rng.random_bool(1.0)));
        let heads = (0..10_000).filter(|_| rng.random_bool(0.5)).count();
        assert!((4_000..6_000).contains(&heads), "heads {heads}");
    }
}
