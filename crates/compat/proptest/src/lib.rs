//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access, so the workspace vendors
//! a minimal, API-compatible property-testing harness covering exactly
//! the subset regcube's test suites use:
//!
//! * the [`proptest!`] macro (with an optional `#![proptest_config(..)]`
//!   inner attribute and `arg in strategy` parameters);
//! * [`Strategy`] for numeric ranges, tuples, [`Just`] and the
//!   [`prop::collection::vec`] combinator, plus `prop_map` /
//!   `prop_flat_map`;
//! * [`prop_assert!`], [`prop_assert_eq!`] and [`prop_assume!`].
//!
//! Unlike upstream proptest there is **no shrinking**: a failing case
//! reports the case number and message and panics. Generation is
//! deterministic per test name, so failures reproduce exactly.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// The deterministic generator driving value generation (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Builds a generator from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// The next raw 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// A uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform `usize` in `[lo, hi]`.
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        debug_assert!(lo <= hi);
        lo + (self.next_u64() as usize) % (hi - lo + 1)
    }
}

/// How one generated case ended.
#[derive(Debug)]
pub enum TestCaseError {
    /// The case hit a failed `prop_assert*`.
    Fail(String),
    /// The case was vetoed by `prop_assume!` and must not be counted.
    Reject,
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }
}

/// Runner configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` successful cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Generates values of `Self::Value` from a [`TestRng`].
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }

    /// Builds a dependent strategy from each generated value.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { source: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Always generates a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The `prop_map` combinator.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.generate(rng))
    }
}

/// The `prop_flat_map` combinator.
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    source: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.source.generate(rng)).generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = (rng.next_u64() as u128) % span;
                (self.start as i128 + draw as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as i128 - start as i128) as u128 + 1;
                let draw = (rng.next_u64() as u128) % span;
                (start as i128 + draw as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($($s:ident . $idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A.0, B.1);
tuple_strategy!(A.0, B.1, C.2);
tuple_strategy!(A.0, B.1, C.2, D.3);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6);

/// Combinator namespace, mirroring `proptest::prop`.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{Strategy, TestRng};

        /// Lengths `vec` accepts: a fixed `usize`, `a..b` or `a..=b`.
        pub trait IntoSizeBounds {
            /// Converts into inclusive `(min, max)` bounds.
            fn into_bounds(self) -> (usize, usize);
        }

        impl IntoSizeBounds for usize {
            fn into_bounds(self) -> (usize, usize) {
                (self, self)
            }
        }

        impl IntoSizeBounds for std::ops::Range<usize> {
            fn into_bounds(self) -> (usize, usize) {
                assert!(self.start < self.end, "empty vec size range");
                (self.start, self.end - 1)
            }
        }

        impl IntoSizeBounds for std::ops::RangeInclusive<usize> {
            fn into_bounds(self) -> (usize, usize) {
                (*self.start(), *self.end())
            }
        }

        /// A strategy generating `Vec`s of `element` values.
        #[derive(Debug, Clone)]
        pub struct VecStrategy<S> {
            element: S,
            min: usize,
            max: usize,
        }

        /// Generates vectors whose length lies in `size` and whose
        /// elements come from `element`.
        pub fn vec<S: Strategy>(element: S, size: impl IntoSizeBounds) -> VecStrategy<S> {
            let (min, max) = size.into_bounds();
            VecStrategy { element, min, max }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let len = rng.usize_in(self.min, self.max);
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }
    }
}

/// Drives one `proptest!`-generated test: repeats `case` until `cases`
/// successes, skipping `prop_assume!` rejects, panicking on failure.
pub fn run_cases(
    config: &ProptestConfig,
    name: &str,
    mut case: impl FnMut(&mut TestRng) -> Result<(), TestCaseError>,
) {
    // Deterministic per test name: failures reproduce run-to-run.
    let seed = name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
        (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3)
    });
    let mut rng = TestRng::seed_from_u64(seed);
    let mut done: u32 = 0;
    let mut attempts: u32 = 0;
    let max_attempts = config.cases.saturating_mul(20).max(1000);
    while done < config.cases {
        attempts += 1;
        assert!(
            attempts <= max_attempts,
            "proptest {name}: too many prop_assume! rejects \
             ({done}/{} cases after {attempts} attempts)",
            config.cases
        );
        match case(&mut rng) {
            Ok(()) => done += 1,
            Err(TestCaseError::Reject) => continue,
            Err(TestCaseError::Fail(msg)) => {
                panic!("proptest {name} failed at case {done}: {msg}")
            }
        }
    }
}

/// Declares property tests. Supports the upstream surface regcube uses:
/// an optional `#![proptest_config(expr)]` header and `#[test]` functions
/// whose arguments are `name in strategy` bindings.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { config = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { config = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (config = ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident ( $( $arg:pat_param in $strat:expr ),* $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __pt_config: $crate::ProptestConfig = $cfg;
            $crate::run_cases(&__pt_config, stringify!($name), |__pt_rng| {
                $( let $arg = $crate::Strategy::generate(&($strat), __pt_rng); )*
                let __pt_outcome: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                __pt_outcome
            });
        }
    )*};
}

/// Fails the current case (with an optional formatted message) unless the
/// condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current case unless both sides compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__pt_l, __pt_r) = (&$left, &$right);
        $crate::prop_assert!(
            *__pt_l == *__pt_r,
            "assertion failed: `{:?}` == `{:?}`",
            __pt_l,
            __pt_r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__pt_l, __pt_r) = (&$left, &$right);
        $crate::prop_assert!(
            *__pt_l == *__pt_r,
            "{}: `{:?}` != `{:?}`",
            format!($($fmt)+),
            __pt_l,
            __pt_r
        );
    }};
}

/// Rejects the current case (it is regenerated, not counted) unless the
/// condition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// The usual glob import, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::prop;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assume, proptest, Just, ProptestConfig, Strategy,
        TestCaseError, TestRng,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    fn pair() -> impl Strategy<Value = (u32, u32)> {
        (0u32..10, 0u32..10)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_tuples(p in pair(), x in -1.0..1.0f64) {
            prop_assert!(p.0 < 10 && p.1 < 10);
            prop_assert!((-1.0..1.0).contains(&x));
        }

        #[test]
        fn vec_and_map(v in prop::collection::vec(0u32..5, 1..8)
            .prop_map(|v| v.len())) {
            prop_assert!((1..8).contains(&v));
        }

        #[test]
        fn flat_map_and_just(
            (n, v) in (1usize..5).prop_flat_map(|n| {
                (Just(n), prop::collection::vec(0.0..1.0f64, n))
            }),
        ) {
            prop_assert_eq!(n, v.len());
        }

        #[test]
        fn assume_rejects(x in 0u32..100) {
            prop_assume!(x % 2 == 0);
            prop_assert!(x % 2 == 0, "x = {}", x);
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failures_panic_with_case_number() {
        proptest! {
            fn inner(x in 0u32..10) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        inner();
    }
}
