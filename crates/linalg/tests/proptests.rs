//! Property-based tests for the linear-algebra substrate.

use proptest::prelude::*;
use regcube_linalg::cholesky::Cholesky;
use regcube_linalg::lstsq::{residual_sum_of_squares, solve_least_squares};
use regcube_linalg::lu::Lu;
use regcube_linalg::qr::Qr;
use regcube_linalg::vecops;
use regcube_linalg::Matrix;

/// Strategy: a square matrix of the given side with bounded entries.
fn square_matrix(n: usize) -> impl Strategy<Value = Matrix> {
    prop::collection::vec(-10.0..10.0f64, n * n)
        .prop_map(move |data| Matrix::from_vec(n, n, data).unwrap())
}

/// Strategy: a vector with bounded entries.
fn vector(n: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-10.0..10.0f64, n)
}

/// Builds an SPD matrix as `A Aᵀ + n·I` (always positive definite).
fn make_spd(a: &Matrix) -> Matrix {
    let n = a.rows();
    let mut spd = a.mul(&a.transpose()).unwrap();
    for i in 0..n {
        spd[(i, i)] += n as f64;
    }
    spd
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn transpose_is_involutive(a in square_matrix(4)) {
        prop_assert!(a.transpose().transpose().approx_eq(&a, 0.0));
    }

    #[test]
    fn matmul_is_associative(
        a in square_matrix(3),
        b in square_matrix(3),
        c in square_matrix(3),
    ) {
        let left = a.mul(&b).unwrap().mul(&c).unwrap();
        let right = a.mul(&b.mul(&c).unwrap()).unwrap();
        // Entries are bounded by 10^3 * 27, so 1e-6 absolute is generous.
        prop_assert!(left.approx_eq(&right, 1e-6));
    }

    #[test]
    fn gram_is_symmetric_psd_diagonal(a in square_matrix(4)) {
        let g = a.gram();
        for i in 0..4 {
            prop_assert!(g[(i, i)] >= -1e-12, "Gram diagonal must be nonnegative");
            for j in 0..4 {
                prop_assert!((g[(i, j)] - g[(j, i)]).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn cholesky_solves_spd_systems(a in square_matrix(4), x in vector(4)) {
        let spd = make_spd(&a);
        let b = spd.mul_vec(&x).unwrap();
        let got = Cholesky::factor(&spd).unwrap().solve(&b).unwrap();
        prop_assert!(vecops::approx_eq(&got, &x, 1e-5),
            "cholesky solution diverged: {got:?} vs {x:?}");
    }

    #[test]
    fn cholesky_reconstructs(a in square_matrix(3)) {
        let spd = make_spd(&a);
        let ch = Cholesky::factor(&spd).unwrap();
        let back = ch.l().mul(&ch.l().transpose()).unwrap();
        prop_assert!(back.approx_eq(&spd, 1e-7));
    }

    #[test]
    fn lu_solves_diagonally_dominant_systems(a in square_matrix(4), x in vector(4)) {
        // Force diagonal dominance so the matrix is comfortably invertible.
        let mut dd = a.clone();
        for i in 0..4 {
            let row_sum: f64 = dd.row(i).iter().map(|v| v.abs()).sum();
            dd[(i, i)] = row_sum + 1.0;
        }
        let b = dd.mul_vec(&x).unwrap();
        let got = Lu::factor(&dd).unwrap().solve(&b).unwrap();
        prop_assert!(vecops::approx_eq(&got, &x, 1e-6));
    }

    #[test]
    fn lu_inverse_really_inverts(a in square_matrix(3)) {
        let mut dd = a.clone();
        for i in 0..3 {
            let row_sum: f64 = dd.row(i).iter().map(|v| v.abs()).sum();
            dd[(i, i)] = row_sum + 1.0;
        }
        let inv = Lu::factor(&dd).unwrap().inverse().unwrap();
        let eye = Matrix::identity(3).unwrap();
        prop_assert!(dd.mul(&inv).unwrap().approx_eq(&eye, 1e-7));
        prop_assert!(inv.mul(&dd).unwrap().approx_eq(&eye, 1e-7));
    }

    #[test]
    fn qr_gram_identity(data in prop::collection::vec(-5.0..5.0f64, 12)) {
        // 6x2 tall matrix; RᵀR must equal AᵀA because Q is orthogonal.
        let a = Matrix::from_vec(6, 2, data).unwrap();
        let qr = Qr::factor(&a).unwrap();
        let r = qr.r();
        let rtr = r.transpose().mul(&r).unwrap();
        prop_assert!(rtr.approx_eq(&a.gram(), 1e-7));
    }

    #[test]
    fn least_squares_residual_is_minimal(
        ts in prop::collection::vec(-20.0..20.0f64, 8),
        noise in prop::collection::vec(-1.0..1.0f64, 8),
        da in -0.5..0.5f64,
        db in -0.5..0.5f64,
    ) {
        // Build a simple line-fit design over arbitrary abscissae. Skip
        // degenerate designs where all abscissae coincide.
        let spread = ts.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
            - ts.iter().cloned().fold(f64::INFINITY, f64::min);
        prop_assume!(spread > 0.5);

        let rows: Vec<[f64; 2]> = ts.iter().map(|&t| [1.0, t]).collect();
        let row_refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        let x = Matrix::from_rows(&row_refs).unwrap();
        let y: Vec<f64> = ts.iter().zip(noise.iter()).map(|(&t, &n)| 0.7 * t - 1.3 + n).collect();

        let beta = solve_least_squares(&x, &y).unwrap();
        let best = residual_sum_of_squares(&x, &y, &beta).unwrap();
        // Any perturbation of the solution must not fit better.
        let perturbed = [beta[0] + da, beta[1] + db];
        let worse = residual_sum_of_squares(&x, &y, &perturbed).unwrap();
        prop_assert!(best <= worse + 1e-9,
            "perturbed solution fits better: {best} > {worse}");
    }
}
