//! Cholesky factorization of symmetric positive-definite matrices.
//!
//! The normal equations `XᵀX β = Xᵀy` of a well-posed least-squares problem
//! have a symmetric positive-definite coefficient matrix, which makes
//! Cholesky the natural (and cheapest) solver for the multiple linear
//! regression measures warehoused by `regcube`.

use crate::error::LinalgError;
use crate::matrix::Matrix;
use crate::Result;

/// A lower-triangular Cholesky factor `L` with `A = L Lᵀ`.
#[derive(Debug, Clone)]
pub struct Cholesky {
    l: Matrix,
}

impl Cholesky {
    /// Factors the symmetric positive-definite matrix `a`.
    ///
    /// Only the lower triangle of `a` is read, so callers may pass a matrix
    /// whose upper triangle is stale.
    ///
    /// # Errors
    /// * [`LinalgError::BadShape`] if `a` is not square.
    /// * [`LinalgError::NotPositiveDefinite`] if a pivot is non-positive,
    ///   not finite, or negligibly small relative to the largest diagonal
    ///   entry (the matrix is indefinite, singular, or numerically
    ///   collinear — e.g. a rank-deficient `XᵀX` from duplicate design
    ///   rows, where exact cancellation leaves a pivot of a few ulps).
    pub fn factor(a: &Matrix) -> Result<Self> {
        if !a.is_square() {
            return Err(LinalgError::BadShape {
                detail: format!("Cholesky of non-square {}x{}", a.rows(), a.cols()),
            });
        }
        let n = a.rows();
        let mut max_diag = 0.0f64;
        for j in 0..n {
            max_diag = max_diag.max(a[(j, j)].abs());
        }
        let tol = max_diag * 1e-12;
        let mut l = Matrix::zeros(n, n)?;
        for j in 0..n {
            let mut diag = a[(j, j)];
            for k in 0..j {
                diag -= l[(j, k)] * l[(j, k)];
            }
            if !(diag.is_finite() && diag > tol) {
                return Err(LinalgError::NotPositiveDefinite { index: j });
            }
            let dsqrt = diag.sqrt();
            l[(j, j)] = dsqrt;
            for i in (j + 1)..n {
                let mut v = a[(i, j)];
                for k in 0..j {
                    v -= l[(i, k)] * l[(j, k)];
                }
                l[(i, j)] = v / dsqrt;
            }
        }
        Ok(Cholesky { l })
    }

    /// The lower-triangular factor `L`.
    pub fn l(&self) -> &Matrix {
        &self.l
    }

    /// Solves `A x = b` using the stored factorization.
    ///
    /// # Errors
    /// [`LinalgError::DimensionMismatch`] when `b.len()` differs from the
    /// factored dimension.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let n = self.l.rows();
        if b.len() != n {
            return Err(LinalgError::DimensionMismatch {
                left: (n, n),
                right: (b.len(), 1),
                op: "cholesky_solve",
            });
        }
        // Forward substitution: L y = b.
        let mut y = b.to_vec();
        for i in 0..n {
            for k in 0..i {
                y[i] -= self.l[(i, k)] * y[k];
            }
            y[i] /= self.l[(i, i)];
        }
        // Back substitution: Lᵀ x = y.
        let mut x = y;
        for i in (0..n).rev() {
            for k in (i + 1)..n {
                x[i] -= self.l[(k, i)] * x[k];
            }
            x[i] /= self.l[(i, i)];
        }
        Ok(x)
    }

    /// Determinant of the factored matrix (product of squared diagonals).
    pub fn det(&self) -> f64 {
        let n = self.l.rows();
        let mut d = 1.0;
        for i in 0..n {
            d *= self.l[(i, i)];
        }
        d * d
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vecops::approx_eq;

    fn spd3() -> Matrix {
        // A = B Bᵀ + I for B with full rank is SPD; this one is hand-picked.
        Matrix::from_rows(&[&[4.0, 2.0, 0.6], &[2.0, 5.0, 1.0], &[0.6, 1.0, 3.0]]).unwrap()
    }

    #[test]
    fn factor_reconstructs_a() {
        let a = spd3();
        let ch = Cholesky::factor(&a).unwrap();
        let back = ch.l().mul(&ch.l().transpose()).unwrap();
        assert!(back.approx_eq(&a, 1e-10));
    }

    #[test]
    fn solve_recovers_known_solution() {
        let a = spd3();
        let x_true = vec![1.0, -2.0, 0.5];
        let b = a.mul_vec(&x_true).unwrap();
        let ch = Cholesky::factor(&a).unwrap();
        let x = ch.solve(&b).unwrap();
        assert!(approx_eq(&x, &x_true, 1e-10));
    }

    #[test]
    fn rejects_non_square_and_indefinite() {
        let rect = Matrix::zeros(2, 3).unwrap();
        assert!(matches!(
            Cholesky::factor(&rect),
            Err(LinalgError::BadShape { .. })
        ));

        let indef = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]).unwrap();
        assert!(matches!(
            Cholesky::factor(&indef),
            Err(LinalgError::NotPositiveDefinite { .. })
        ));

        let singular = Matrix::from_rows(&[&[1.0, 1.0], &[1.0, 1.0]]).unwrap();
        assert!(Cholesky::factor(&singular).is_err());
    }

    #[test]
    fn solve_rejects_wrong_length() {
        let ch = Cholesky::factor(&spd3()).unwrap();
        assert!(ch.solve(&[1.0, 2.0]).is_err());
    }

    #[test]
    fn determinant_of_identity_is_one() {
        let ch = Cholesky::factor(&Matrix::identity(4).unwrap()).unwrap();
        assert!((ch.det() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn determinant_scales_with_diagonal() {
        let a = Matrix::from_rows(&[&[2.0, 0.0], &[0.0, 8.0]]).unwrap();
        let ch = Cholesky::factor(&a).unwrap();
        assert!((ch.det() - 16.0).abs() < 1e-10);
    }
}
