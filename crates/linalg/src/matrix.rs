//! Dense row-major `f64` matrix.

use crate::error::LinalgError;
use crate::Result;
use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense, row-major matrix of `f64` values.
///
/// The type is intentionally small: it stores `rows * cols` values in a
/// single `Vec<f64>` and offers the operations the regression layers need
/// (construction, transpose, multiplication, Gram products). Heavier
/// numerics live in the decomposition modules.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows x cols` matrix filled with zeros.
    ///
    /// # Errors
    /// Returns [`LinalgError::BadShape`] when either dimension is zero.
    pub fn zeros(rows: usize, cols: usize) -> Result<Self> {
        if rows == 0 || cols == 0 {
            return Err(LinalgError::BadShape {
                detail: format!("zero dimension in {rows}x{cols}"),
            });
        }
        Ok(Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        })
    }

    /// Creates the `n x n` identity matrix.
    pub fn identity(n: usize) -> Result<Self> {
        let mut m = Matrix::zeros(n, n)?;
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        Ok(m)
    }

    /// Builds a matrix from a slice of equally long rows.
    ///
    /// # Errors
    /// Returns [`LinalgError::BadShape`] if `rows` is empty, any row is
    /// empty, or the rows have differing lengths.
    pub fn from_rows(rows: &[&[f64]]) -> Result<Self> {
        let nrows = rows.len();
        if nrows == 0 {
            return Err(LinalgError::BadShape {
                detail: "no rows".into(),
            });
        }
        let ncols = rows[0].len();
        if ncols == 0 {
            return Err(LinalgError::BadShape {
                detail: "empty first row".into(),
            });
        }
        let mut data = Vec::with_capacity(nrows * ncols);
        for (i, r) in rows.iter().enumerate() {
            if r.len() != ncols {
                return Err(LinalgError::BadShape {
                    detail: format!("row {i} has length {} but expected {ncols}", r.len()),
                });
            }
            data.extend_from_slice(r);
        }
        Ok(Matrix {
            rows: nrows,
            cols: ncols,
            data,
        })
    }

    /// Builds a matrix from a flat row-major vector.
    ///
    /// # Errors
    /// Returns [`LinalgError::BadShape`] if `data.len() != rows * cols` or a
    /// dimension is zero.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self> {
        if rows == 0 || cols == 0 || data.len() != rows * cols {
            return Err(LinalgError::BadShape {
                detail: format!("{} values for a {rows}x{cols} matrix", data.len()),
            });
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Returns `true` for a square matrix.
    #[inline]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Borrow of row `r` as a slice.
    ///
    /// # Panics
    /// Panics if `r >= self.rows()`.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        assert!(
            r < self.rows,
            "row {r} out of bounds for {} rows",
            self.rows
        );
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable borrow of row `r` as a slice.
    ///
    /// # Panics
    /// Panics if `r >= self.rows()`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        assert!(
            r < self.rows,
            "row {r} out of bounds for {} rows",
            self.rows
        );
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copies column `c` into a new vector.
    ///
    /// # Panics
    /// Panics if `c >= self.cols()`.
    pub fn col(&self, c: usize) -> Vec<f64> {
        assert!(
            c < self.cols,
            "col {c} out of bounds for {} cols",
            self.cols
        );
        (0..self.rows).map(|r| self[(r, c)]).collect()
    }

    /// The flat row-major data slice.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Returns the transpose as a new matrix.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix {
            rows: self.cols,
            cols: self.rows,
            data: vec![0.0; self.data.len()],
        };
        for r in 0..self.rows {
            let row = self.row(r);
            for (c, &v) in row.iter().enumerate() {
                t.data[c * t.cols + r] = v;
            }
        }
        t
    }

    /// Matrix product `self * rhs`.
    ///
    /// # Errors
    /// Returns [`LinalgError::DimensionMismatch`] when
    /// `self.cols() != rhs.rows()`.
    pub fn mul(&self, rhs: &Matrix) -> Result<Matrix> {
        if self.cols != rhs.rows {
            return Err(LinalgError::DimensionMismatch {
                left: self.shape(),
                right: rhs.shape(),
                op: "mul",
            });
        }
        let mut out = Matrix::zeros(self.rows, rhs.cols)?;
        // i-k-j loop order: the inner loop walks both `rhs` and `out` rows
        // contiguously, which matters once design matrices grow.
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                let rrow = rhs.row(k);
                let orow = out.row_mut(i);
                for (o, &b) in orow.iter_mut().zip(rrow.iter()) {
                    *o += a * b;
                }
            }
        }
        Ok(out)
    }

    /// Matrix-vector product `self * v`.
    ///
    /// # Errors
    /// Returns [`LinalgError::DimensionMismatch`] when
    /// `self.cols() != v.len()`.
    pub fn mul_vec(&self, v: &[f64]) -> Result<Vec<f64>> {
        if self.cols != v.len() {
            return Err(LinalgError::DimensionMismatch {
                left: self.shape(),
                right: (v.len(), 1),
                op: "mul_vec",
            });
        }
        Ok((0..self.rows)
            .map(|r| crate::vecops::dot(self.row(r), v))
            .collect())
    }

    /// Gram product `selfᵀ * self`, the symmetric matrix behind the normal
    /// equations. Only the upper triangle is computed and mirrored.
    pub fn gram(&self) -> Matrix {
        let n = self.cols;
        let mut g = Matrix {
            rows: n,
            cols: n,
            data: vec![0.0; n * n],
        };
        for r in 0..self.rows {
            let row = self.row(r);
            for (i, &xi) in row.iter().enumerate() {
                if xi == 0.0 {
                    continue;
                }
                for (j, &xj) in row.iter().enumerate().skip(i) {
                    g.data[i * n + j] += xi * xj;
                }
            }
        }
        for i in 0..n {
            for j in 0..i {
                g.data[i * n + j] = g.data[j * n + i];
            }
        }
        g
    }

    /// `selfᵀ * y` for an observation vector `y`.
    ///
    /// # Errors
    /// Returns [`LinalgError::DimensionMismatch`] when
    /// `self.rows() != y.len()`.
    pub fn tr_mul_vec(&self, y: &[f64]) -> Result<Vec<f64>> {
        if self.rows != y.len() {
            return Err(LinalgError::DimensionMismatch {
                left: self.shape(),
                right: (y.len(), 1),
                op: "tr_mul_vec",
            });
        }
        let mut out = vec![0.0; self.cols];
        for (r, &yr) in y.iter().enumerate() {
            if yr == 0.0 {
                continue;
            }
            for (o, &x) in out.iter_mut().zip(self.row(r).iter()) {
                *o += yr * x;
            }
        }
        Ok(out)
    }

    /// Element-wise sum `self + rhs`.
    ///
    /// # Errors
    /// Returns [`LinalgError::DimensionMismatch`] for differing shapes.
    pub fn add(&self, rhs: &Matrix) -> Result<Matrix> {
        if self.shape() != rhs.shape() {
            return Err(LinalgError::DimensionMismatch {
                left: self.shape(),
                right: rhs.shape(),
                op: "add",
            });
        }
        let data = self
            .data
            .iter()
            .zip(rhs.data.iter())
            .map(|(a, b)| a + b)
            .collect();
        Ok(Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        })
    }

    /// In-place element-wise accumulation `self += rhs`.
    ///
    /// # Errors
    /// Returns [`LinalgError::DimensionMismatch`] for differing shapes.
    pub fn add_assign(&mut self, rhs: &Matrix) -> Result<()> {
        if self.shape() != rhs.shape() {
            return Err(LinalgError::DimensionMismatch {
                left: self.shape(),
                right: rhs.shape(),
                op: "add_assign",
            });
        }
        for (a, b) in self.data.iter_mut().zip(rhs.data.iter()) {
            *a += b;
        }
        Ok(())
    }

    /// Returns `self * s` for a scalar `s`.
    pub fn scale(&self, s: f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|v| v * s).collect(),
        }
    }

    /// Maximum absolute element, useful as a cheap norm in tests.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0, |m, v| m.max(v.abs()))
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Returns `true` if `self` and `other` agree element-wise within `tol`.
    pub fn approx_eq(&self, other: &Matrix, tol: f64) -> bool {
        self.shape() == other.shape()
            && self
                .data
                .iter()
                .zip(other.data.iter())
                .all(|(a, b)| (a - b).abs() <= tol)
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows {
            write!(f, "  [")?;
            for c in 0..self.cols {
                if c > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{:.6}", self[(r, c)])?;
            }
            writeln!(f, "]")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(rows: &[&[f64]]) -> Matrix {
        Matrix::from_rows(rows).unwrap()
    }

    #[test]
    fn zeros_and_identity() {
        let z = Matrix::zeros(2, 3).unwrap();
        assert_eq!(z.shape(), (2, 3));
        assert!(z.as_slice().iter().all(|&v| v == 0.0));

        let i = Matrix::identity(3).unwrap();
        for r in 0..3 {
            for c in 0..3 {
                assert_eq!(i[(r, c)], if r == c { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    fn bad_shapes_are_rejected() {
        assert!(Matrix::zeros(0, 3).is_err());
        assert!(Matrix::zeros(3, 0).is_err());
        assert!(Matrix::from_rows(&[]).is_err());
        assert!(Matrix::from_rows(&[&[]]).is_err());
        assert!(Matrix::from_rows(&[&[1.0], &[1.0, 2.0]]).is_err());
        assert!(Matrix::from_vec(2, 2, vec![1.0; 3]).is_err());
    }

    #[test]
    fn transpose_round_trips() {
        let a = m(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let t = a.transpose();
        assert_eq!(t.shape(), (3, 2));
        assert_eq!(t[(0, 1)], 4.0);
        assert_eq!(t[(2, 0)], 3.0);
        assert!(t.transpose().approx_eq(&a, 0.0));
    }

    #[test]
    fn multiplication_matches_hand_computation() {
        let a = m(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = m(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.mul(&b).unwrap();
        assert!(c.approx_eq(&m(&[&[19.0, 22.0], &[43.0, 50.0]]), 1e-12));
    }

    #[test]
    fn multiplication_shape_mismatch() {
        let a = m(&[&[1.0, 2.0]]);
        let err = a.mul(&a).unwrap_err();
        assert!(matches!(
            err,
            LinalgError::DimensionMismatch { op: "mul", .. }
        ));
    }

    #[test]
    fn identity_is_multiplicative_neutral() {
        let a = m(&[&[1.5, -2.0, 0.25], &[0.0, 3.0, 9.0]]);
        let i3 = Matrix::identity(3).unwrap();
        let i2 = Matrix::identity(2).unwrap();
        assert!(a.mul(&i3).unwrap().approx_eq(&a, 0.0));
        assert!(i2.mul(&a).unwrap().approx_eq(&a, 0.0));
    }

    #[test]
    fn mul_vec_and_tr_mul_vec() {
        let a = m(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        assert_eq!(a.mul_vec(&[1.0, 1.0]).unwrap(), vec![3.0, 7.0, 11.0]);
        assert_eq!(a.tr_mul_vec(&[1.0, 1.0, 1.0]).unwrap(), vec![9.0, 12.0]);
        assert!(a.mul_vec(&[1.0]).is_err());
        assert!(a.tr_mul_vec(&[1.0]).is_err());
    }

    #[test]
    fn gram_equals_explicit_transpose_product() {
        let a = m(&[&[1.0, 2.0, 0.5], &[3.0, -4.0, 1.0], &[0.0, 2.0, 2.0]]);
        let g = a.gram();
        let explicit = a.transpose().mul(&a).unwrap();
        assert!(g.approx_eq(&explicit, 1e-12));
    }

    #[test]
    fn add_scale_and_norms() {
        let a = m(&[&[1.0, -2.0], &[3.0, 4.0]]);
        let b = a.scale(2.0);
        assert_eq!(b[(1, 1)], 8.0);
        let s = a.add(&b).unwrap();
        assert_eq!(s[(0, 0)], 3.0);
        let mut c = a.clone();
        c.add_assign(&b).unwrap();
        assert!(c.approx_eq(&s, 0.0));
        assert_eq!(a.max_abs(), 4.0);
        let fr = a.frobenius_norm();
        assert!((fr - (1.0f64 + 4.0 + 9.0 + 16.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn row_and_col_accessors() {
        let a = m(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(a.row(1), &[3.0, 4.0]);
        assert_eq!(a.col(0), vec![1.0, 3.0]);
        assert!(a.is_square());
    }

    #[test]
    fn debug_formatting_mentions_shape() {
        let a = m(&[&[1.0]]);
        let s = format!("{a:?}");
        assert!(s.contains("1x1"));
    }
}
