//! Householder QR factorization and least-squares solves.
//!
//! QR is numerically safer than the normal equations when design matrices
//! are ill-conditioned (e.g. polynomial bases over long time intervals,
//! which arise from the paper's non-linear regression extension).

use crate::error::LinalgError;
use crate::matrix::Matrix;
use crate::Result;

/// Householder QR factorization of an `m x n` matrix with `m >= n`.
///
/// The factorization is stored compactly: the upper triangle of `qr` holds
/// `R`; the essential parts of the Householder vectors live below the
/// diagonal, with scaling factors in `beta`.
#[derive(Debug, Clone)]
pub struct Qr {
    qr: Matrix,
    beta: Vec<f64>,
}

impl Qr {
    /// Diagonal entries of `R` below this magnitude flag rank deficiency.
    const RANK_EPS: f64 = 1e-12;

    /// Factors `a` (requires at least as many rows as columns).
    ///
    /// # Errors
    /// [`LinalgError::Underdetermined`] when `a.rows() < a.cols()`.
    pub fn factor(a: &Matrix) -> Result<Self> {
        let (m, n) = a.shape();
        if m < n {
            return Err(LinalgError::Underdetermined { rows: m, cols: n });
        }
        let mut qr = a.clone();
        let mut beta = vec![0.0; n];

        for k in 0..n {
            // Build the Householder reflector for column k.
            let mut norm = 0.0f64;
            for i in k..m {
                norm += qr[(i, k)] * qr[(i, k)];
            }
            let norm = norm.sqrt();
            if norm == 0.0 {
                beta[k] = 0.0;
                continue;
            }
            let alpha = if qr[(k, k)] >= 0.0 { -norm } else { norm };
            let v0 = qr[(k, k)] - alpha;
            // v = (v0, a[k+1..m, k]); beta = 2 / vᵀv
            let mut vtv = v0 * v0;
            for i in (k + 1)..m {
                vtv += qr[(i, k)] * qr[(i, k)];
            }
            if vtv == 0.0 {
                beta[k] = 0.0;
                qr[(k, k)] = alpha;
                continue;
            }
            beta[k] = 2.0 / vtv;

            // Apply the reflector to the remaining columns.
            for j in (k + 1)..n {
                let mut dot = v0 * qr[(k, j)];
                for i in (k + 1)..m {
                    dot += qr[(i, k)] * qr[(i, j)];
                }
                let scale = beta[k] * dot;
                qr[(k, j)] -= scale * v0;
                for i in (k + 1)..m {
                    let sub = scale * qr[(i, k)];
                    qr[(i, j)] -= sub;
                }
            }
            // Store alpha on the diagonal and keep v (with explicit v0) below.
            qr[(k, k)] = alpha;
            // Normalize the stored vector so that v0 is implicit: we keep
            // v0 in a separate slot by rescaling the subdiagonal entries.
            for i in (k + 1)..m {
                let scaled = qr[(i, k)] / v0;
                qr[(i, k)] = scaled;
            }
            beta[k] *= v0 * v0; // adjust beta for the rescaled vector (v0 -> 1)
        }
        Ok(Qr { qr, beta })
    }

    /// The upper-triangular factor `R` (square, `n x n`).
    pub fn r(&self) -> Matrix {
        let n = self.qr.cols();
        let mut r = Matrix::zeros(n, n).expect("n>0 by construction");
        for i in 0..n {
            for j in i..n {
                r[(i, j)] = self.qr[(i, j)];
            }
        }
        r
    }

    /// Applies `Qᵀ` to a vector of length `m`.
    // Index loops mirror the textbook Householder updates; zipping the
    // packed-matrix column against `y` obscures them without a measurable
    // win at these sizes.
    #[allow(clippy::needless_range_loop)]
    fn apply_qt(&self, b: &[f64]) -> Vec<f64> {
        let (m, n) = self.qr.shape();
        let mut y = b.to_vec();
        for k in 0..n {
            if self.beta[k] == 0.0 {
                continue;
            }
            // v = (1, qr[k+1..m, k])
            let mut dot = y[k];
            for i in (k + 1)..m {
                dot += self.qr[(i, k)] * y[i];
            }
            let scale = self.beta[k] * dot;
            y[k] -= scale;
            for i in (k + 1)..m {
                let sub = scale * self.qr[(i, k)];
                y[i] -= sub;
            }
        }
        y
    }

    /// Solves the least-squares problem `min ||A x - b||₂`.
    ///
    /// # Errors
    /// * [`LinalgError::DimensionMismatch`] for a wrong-length `b`.
    /// * [`LinalgError::Singular`] when `R` has a (near-)zero diagonal,
    ///   i.e. the design matrix is rank deficient.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let (m, n) = self.qr.shape();
        if b.len() != m {
            return Err(LinalgError::DimensionMismatch {
                left: (m, n),
                right: (b.len(), 1),
                op: "qr_solve",
            });
        }
        let y = self.apply_qt(b);
        let mut x = y[..n].to_vec();
        for i in (0..n).rev() {
            for k in (i + 1)..n {
                x[i] -= self.qr[(i, k)] * x[k];
            }
            let d = self.qr[(i, i)];
            if d.abs() < Self::RANK_EPS {
                return Err(LinalgError::Singular { pivot: i });
            }
            x[i] /= d;
        }
        Ok(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vecops::{approx_eq, dot};

    #[test]
    fn exact_system_is_recovered() {
        let a = Matrix::from_rows(&[&[1.0, 0.0], &[1.0, 1.0], &[1.0, 2.0], &[1.0, 3.0]]).unwrap();
        let x_true = vec![0.5, -1.25];
        let b = a.mul_vec(&x_true).unwrap();
        let x = Qr::factor(&a).unwrap().solve(&b).unwrap();
        assert!(approx_eq(&x, &x_true, 1e-10));
    }

    #[test]
    fn least_squares_matches_normal_equations() {
        // Overdetermined noisy system; compare against Cholesky on XᵀX.
        let a = Matrix::from_rows(&[
            &[1.0, 0.0, 0.0],
            &[1.0, 1.0, 1.0],
            &[1.0, 2.0, 4.0],
            &[1.0, 3.0, 9.0],
            &[1.0, 4.0, 16.0],
            &[1.0, 5.0, 25.0],
        ])
        .unwrap();
        let b = [0.9, 2.1, 4.2, 6.8, 10.1, 14.3];

        let x_qr = Qr::factor(&a).unwrap().solve(&b).unwrap();

        let g = a.gram();
        let rhs = a.tr_mul_vec(&b).unwrap();
        let x_ne = crate::cholesky::Cholesky::factor(&g)
            .unwrap()
            .solve(&rhs)
            .unwrap();

        assert!(approx_eq(&x_qr, &x_ne, 1e-8));
    }

    #[test]
    fn residual_is_orthogonal_to_columns() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[1.0, 3.0], &[1.0, 5.0], &[1.0, 7.0]]).unwrap();
        let b = [1.0, -1.0, 2.0, 0.0];
        let x = Qr::factor(&a).unwrap().solve(&b).unwrap();
        let fitted = a.mul_vec(&x).unwrap();
        let resid: Vec<f64> = b.iter().zip(fitted.iter()).map(|(u, v)| u - v).collect();
        for c in 0..a.cols() {
            let col = a.col(c);
            assert!(dot(&col, &resid).abs() < 1e-9, "residual not orthogonal");
        }
    }

    #[test]
    fn r_is_upper_triangular_with_correct_gram() {
        let a = Matrix::from_rows(&[&[1.0, 4.0], &[2.0, 5.0], &[3.0, 6.0]]).unwrap();
        let qr = Qr::factor(&a).unwrap();
        let r = qr.r();
        assert_eq!(r[(1, 0)], 0.0);
        // RᵀR must equal AᵀA (Q is orthogonal).
        let rtr = r.transpose().mul(&r).unwrap();
        assert!(rtr.approx_eq(&a.gram(), 1e-9));
    }

    #[test]
    fn underdetermined_and_rank_deficient_are_rejected() {
        let wide = Matrix::zeros(2, 3).unwrap();
        assert!(matches!(
            Qr::factor(&wide),
            Err(LinalgError::Underdetermined { .. })
        ));

        let rank1 = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0], &[3.0, 6.0]]).unwrap();
        let qr = Qr::factor(&rank1).unwrap();
        assert!(qr.solve(&[1.0, 2.0, 3.0]).is_err());
    }

    #[test]
    fn wrong_rhs_length_is_rejected() {
        let a = Matrix::from_rows(&[&[1.0], &[2.0]]).unwrap();
        let qr = Qr::factor(&a).unwrap();
        assert!(qr.solve(&[1.0, 2.0, 3.0]).is_err());
    }
}
