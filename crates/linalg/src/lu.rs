//! LU factorization with partial pivoting.
//!
//! Used for general square solves (e.g. inverting small covariance blocks in
//! diagnostics) where the matrix is not known to be positive definite.

use crate::error::LinalgError;
use crate::matrix::Matrix;
use crate::Result;

/// Packed LU factorization `P A = L U` with partial (row) pivoting.
#[derive(Debug, Clone)]
pub struct Lu {
    /// Combined storage: strictly-lower part holds `L` (unit diagonal
    /// implied), upper part holds `U`.
    lu: Matrix,
    /// Row permutation: `perm[i]` is the original row now at position `i`.
    perm: Vec<usize>,
    /// Sign of the permutation, for the determinant.
    sign: f64,
}

impl Lu {
    /// Pivot magnitudes below this are treated as singular.
    const PIVOT_EPS: f64 = 1e-300;

    /// Factors the square matrix `a`.
    ///
    /// # Errors
    /// * [`LinalgError::BadShape`] if `a` is not square.
    /// * [`LinalgError::Singular`] if no usable pivot exists in a column.
    pub fn factor(a: &Matrix) -> Result<Self> {
        if !a.is_square() {
            return Err(LinalgError::BadShape {
                detail: format!("LU of non-square {}x{}", a.rows(), a.cols()),
            });
        }
        let n = a.rows();
        let mut lu = a.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut sign = 1.0;

        for k in 0..n {
            // Partial pivoting: pick the largest magnitude in column k.
            let mut p = k;
            let mut pmax = lu[(k, k)].abs();
            for i in (k + 1)..n {
                let v = lu[(i, k)].abs();
                if v > pmax {
                    pmax = v;
                    p = i;
                }
            }
            if !(pmax.is_finite()) || pmax < Self::PIVOT_EPS {
                return Err(LinalgError::Singular { pivot: k });
            }
            if p != k {
                perm.swap(p, k);
                sign = -sign;
                for c in 0..n {
                    let tmp = lu[(k, c)];
                    lu[(k, c)] = lu[(p, c)];
                    lu[(p, c)] = tmp;
                }
            }
            let pivot = lu[(k, k)];
            for i in (k + 1)..n {
                let factor = lu[(i, k)] / pivot;
                lu[(i, k)] = factor;
                if factor != 0.0 {
                    for c in (k + 1)..n {
                        let sub = factor * lu[(k, c)];
                        lu[(i, c)] -= sub;
                    }
                }
            }
        }
        Ok(Lu { lu, perm, sign })
    }

    /// Solves `A x = b`.
    ///
    /// # Errors
    /// [`LinalgError::DimensionMismatch`] on a wrong-length `b`.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let n = self.lu.rows();
        if b.len() != n {
            return Err(LinalgError::DimensionMismatch {
                left: (n, n),
                right: (b.len(), 1),
                op: "lu_solve",
            });
        }
        // Apply permutation, then forward/back substitution.
        let mut y: Vec<f64> = self.perm.iter().map(|&i| b[i]).collect();
        for i in 1..n {
            for k in 0..i {
                y[i] -= self.lu[(i, k)] * y[k];
            }
        }
        for i in (0..n).rev() {
            for k in (i + 1)..n {
                y[i] -= self.lu[(i, k)] * y[k];
            }
            y[i] /= self.lu[(i, i)];
        }
        Ok(y)
    }

    /// Determinant of the factored matrix.
    pub fn det(&self) -> f64 {
        let n = self.lu.rows();
        let mut d = self.sign;
        for i in 0..n {
            d *= self.lu[(i, i)];
        }
        d
    }

    /// Inverse of the factored matrix, column by column.
    ///
    /// # Errors
    /// Propagates solve errors (cannot occur for a successfully factored
    /// matrix with correct dimensions).
    pub fn inverse(&self) -> Result<Matrix> {
        let n = self.lu.rows();
        let mut inv = Matrix::zeros(n, n)?;
        let mut e = vec![0.0; n];
        for c in 0..n {
            e[c] = 1.0;
            let col = self.solve(&e)?;
            e[c] = 0.0;
            for (r, v) in col.into_iter().enumerate() {
                inv[(r, c)] = v;
            }
        }
        Ok(inv)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vecops::approx_eq;

    fn a3() -> Matrix {
        Matrix::from_rows(&[
            &[0.0, 2.0, 1.0], // zero leading pivot forces a row swap
            &[1.0, -1.0, 3.0],
            &[4.0, 0.5, -2.0],
        ])
        .unwrap()
    }

    #[test]
    fn solve_with_pivoting() {
        let a = a3();
        let x_true = vec![2.0, -1.0, 0.5];
        let b = a.mul_vec(&x_true).unwrap();
        let lu = Lu::factor(&a).unwrap();
        assert!(approx_eq(&lu.solve(&b).unwrap(), &x_true, 1e-10));
    }

    #[test]
    fn determinant_matches_cofactor_expansion() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let lu = Lu::factor(&a).unwrap();
        assert!((lu.det() - (-2.0)).abs() < 1e-12);
    }

    #[test]
    fn inverse_times_original_is_identity() {
        let a = a3();
        let inv = Lu::factor(&a).unwrap().inverse().unwrap();
        let prod = a.mul(&inv).unwrap();
        assert!(prod.approx_eq(&Matrix::identity(3).unwrap(), 1e-10));
    }

    #[test]
    fn singular_matrix_is_detected() {
        let s = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]).unwrap();
        assert!(matches!(Lu::factor(&s), Err(LinalgError::Singular { .. })));
    }

    #[test]
    fn non_square_is_rejected() {
        let r = Matrix::zeros(2, 3).unwrap();
        assert!(matches!(Lu::factor(&r), Err(LinalgError::BadShape { .. })));
    }

    #[test]
    fn wrong_rhs_length_is_rejected() {
        let lu = Lu::factor(&Matrix::identity(3).unwrap()).unwrap();
        assert!(lu.solve(&[1.0]).is_err());
    }
}
