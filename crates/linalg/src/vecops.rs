//! Small vector helpers shared by the decomposition routines.

/// Dot product of two equally long slices.
///
/// # Panics
/// Panics in debug builds when the lengths differ; in release the shorter
/// length wins (the callers in this crate always pass equal lengths).
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len(), "dot of unequal lengths");
    a.iter().zip(b.iter()).map(|(x, y)| x * y).sum()
}

/// Euclidean (L2) norm.
#[inline]
pub fn norm2(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// `y += alpha * x`, the classic axpy kernel.
///
/// # Panics
/// Debug-asserts equal lengths.
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len(), "axpy of unequal lengths");
    for (yi, xi) in y.iter_mut().zip(x.iter()) {
        *yi += alpha * xi;
    }
}

/// Maximum absolute difference between two slices; `f64::INFINITY` when the
/// lengths differ. Useful for approximate comparisons in tests.
pub fn max_abs_diff(a: &[f64], b: &[f64]) -> f64 {
    if a.len() != b.len() {
        return f64::INFINITY;
    }
    a.iter()
        .zip(b.iter())
        .fold(0.0, |m, (x, y)| m.max((x - y).abs()))
}

/// `true` when every pairwise difference is within `tol`.
pub fn approx_eq(a: &[f64], b: &[f64], tol: f64) -> bool {
    max_abs_diff(a, b) <= tol
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_norm() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
        assert!((norm2(&[3.0, 4.0]) - 5.0).abs() < 1e-12);
        assert_eq!(dot(&[], &[]), 0.0);
    }

    #[test]
    fn axpy_accumulates() {
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[3.0, 4.0], &mut y);
        assert_eq!(y, vec![7.0, 9.0]);
    }

    #[test]
    fn diff_helpers() {
        assert_eq!(max_abs_diff(&[1.0, 2.0], &[1.5, 2.0]), 0.5);
        assert_eq!(max_abs_diff(&[1.0], &[1.0, 2.0]), f64::INFINITY);
        assert!(approx_eq(&[1.0], &[1.0 + 1e-12], 1e-10));
        assert!(!approx_eq(&[1.0], &[1.1], 1e-10));
    }
}
