//! Error type for the linear-algebra substrate.

use std::fmt;

/// Errors produced by matrix construction and decomposition routines.
#[derive(Debug, Clone, PartialEq)]
pub enum LinalgError {
    /// The requested shape is empty or inconsistent with the supplied data.
    BadShape {
        /// Human-readable description of the inconsistency.
        detail: String,
    },
    /// Two operands have incompatible dimensions for the requested operation.
    DimensionMismatch {
        /// Shape of the left operand as `(rows, cols)`.
        left: (usize, usize),
        /// Shape of the right operand as `(rows, cols)`.
        right: (usize, usize),
        /// Name of the attempted operation.
        op: &'static str,
    },
    /// The matrix is singular (or numerically so) and cannot be factored.
    Singular {
        /// Pivot index at which the factorization broke down.
        pivot: usize,
    },
    /// The matrix is not positive definite (Cholesky breakdown).
    NotPositiveDefinite {
        /// Diagonal index at which a non-positive pivot appeared.
        index: usize,
    },
    /// A least-squares system has fewer rows than unknowns.
    Underdetermined {
        /// Number of observations (rows).
        rows: usize,
        /// Number of unknowns (columns).
        cols: usize,
    },
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::BadShape { detail } => write!(f, "bad matrix shape: {detail}"),
            LinalgError::DimensionMismatch { left, right, op } => write!(
                f,
                "dimension mismatch in {op}: left is {}x{}, right is {}x{}",
                left.0, left.1, right.0, right.1
            ),
            LinalgError::Singular { pivot } => {
                write!(f, "matrix is singular (zero pivot at index {pivot})")
            }
            LinalgError::NotPositiveDefinite { index } => {
                write!(
                    f,
                    "matrix is not positive definite (diagonal index {index})"
                )
            }
            LinalgError::Underdetermined { rows, cols } => write!(
                f,
                "least-squares system is underdetermined: {rows} rows < {cols} columns"
            ),
        }
    }
}

impl std::error::Error for LinalgError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = LinalgError::DimensionMismatch {
            left: (2, 3),
            right: (4, 5),
            op: "mul",
        };
        let s = e.to_string();
        assert!(s.contains("mul"));
        assert!(s.contains("2x3"));
        assert!(s.contains("4x5"));

        assert!(LinalgError::Singular { pivot: 7 }.to_string().contains('7'));
        assert!(LinalgError::NotPositiveDefinite { index: 2 }
            .to_string()
            .contains("positive definite"));
        assert!(LinalgError::Underdetermined { rows: 1, cols: 3 }
            .to_string()
            .contains("underdetermined"));
        assert!(LinalgError::BadShape { detail: "x".into() }
            .to_string()
            .contains("bad matrix shape"));
    }

    #[test]
    fn errors_are_comparable_and_cloneable() {
        let e = LinalgError::Singular { pivot: 1 };
        assert_eq!(e.clone(), e);
    }
}
