//! Small dense linear-algebra substrate for `regcube`.
//!
//! The VLDB 2002 paper generalizes its warehousing result from simple linear
//! regression to *multiple* linear regression (several regression variables,
//! e.g. spatial coordinates of sensors in addition to time). Solving the
//! normal equations for those models needs a dense matrix toolkit. The
//! offline dependency policy of this repository excludes `nalgebra`/`ndarray`
//! (see `DESIGN.md` §5), so this crate provides the small, well-tested subset
//! we need:
//!
//! * [`Matrix`] — a row-major dense `f64` matrix with the usual arithmetic,
//! * [`cholesky`] — Cholesky factorization/solve for symmetric
//!   positive-definite systems (the `XᵀX` normal equations),
//! * [`lu`] — LU with partial pivoting (general square solves, determinant,
//!   inverse),
//! * [`qr`] — Householder QR (rank-revealing-ish least squares for
//!   ill-conditioned designs),
//! * [`lstsq`] — a high-level least-squares entry point that picks between
//!   the normal equations and QR.
//!
//! All routines are deterministic, allocation-conscious and pure Rust; no
//! `unsafe` is used anywhere in the crate.
//!
//! # Example
//!
//! ```
//! use regcube_linalg::{Matrix, lstsq};
//!
//! // Fit y = a + b*t for t = 0..4, y = 1 + 2t (exactly).
//! let x = Matrix::from_rows(&[
//!     &[1.0, 0.0], &[1.0, 1.0], &[1.0, 2.0], &[1.0, 3.0], &[1.0, 4.0],
//! ]).unwrap();
//! let y = [1.0, 3.0, 5.0, 7.0, 9.0];
//! let beta = lstsq::solve_least_squares(&x, &y).unwrap();
//! assert!((beta[0] - 1.0).abs() < 1e-10);
//! assert!((beta[1] - 2.0).abs() < 1e-10);
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod cholesky;
pub mod error;
pub mod lstsq;
pub mod lu;
pub mod matrix;
pub mod qr;
pub mod vecops;

pub use error::LinalgError;
pub use matrix::Matrix;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, LinalgError>;
