//! High-level least-squares entry points.

use crate::cholesky::Cholesky;
use crate::error::LinalgError;
use crate::matrix::Matrix;
use crate::qr::Qr;
use crate::Result;

/// Solves `min ||X β - y||₂` for an `m x n` design matrix `X` (`m >= n`).
///
/// Strategy: try the normal equations with Cholesky first (one pass over the
/// data, `O(m n²)` with a tiny constant); if `XᵀX` is numerically indefinite
/// — which happens exactly when `X` is ill-conditioned — fall back to
/// Householder QR on the original matrix.
///
/// # Errors
/// * [`LinalgError::Underdetermined`] when `m < n`.
/// * [`LinalgError::DimensionMismatch`] when `y.len() != m`.
/// * [`LinalgError::Singular`] when `X` is rank deficient.
pub fn solve_least_squares(x: &Matrix, y: &[f64]) -> Result<Vec<f64>> {
    let (m, n) = x.shape();
    if m < n {
        return Err(LinalgError::Underdetermined { rows: m, cols: n });
    }
    if y.len() != m {
        return Err(LinalgError::DimensionMismatch {
            left: (m, n),
            right: (y.len(), 1),
            op: "solve_least_squares",
        });
    }
    match solve_normal_equations(x, y) {
        Ok(beta) => Ok(beta),
        Err(LinalgError::NotPositiveDefinite { .. }) => Qr::factor(x)?.solve(y),
        Err(e) => Err(e),
    }
}

/// Solves the least-squares problem via the normal equations
/// `XᵀX β = Xᵀ y` with a Cholesky factorization.
///
/// # Errors
/// Propagates shape errors and [`LinalgError::NotPositiveDefinite`] when
/// `XᵀX` is not SPD (rank-deficient or ill-conditioned `X`).
pub fn solve_normal_equations(x: &Matrix, y: &[f64]) -> Result<Vec<f64>> {
    let gram = x.gram();
    let rhs = x.tr_mul_vec(y)?;
    Cholesky::factor(&gram)?.solve(&rhs)
}

/// Residual sum of squares `||X β - y||₂²` of a candidate solution.
///
/// # Errors
/// Propagates dimension mismatches from the matrix-vector product.
pub fn residual_sum_of_squares(x: &Matrix, y: &[f64], beta: &[f64]) -> Result<f64> {
    let fitted = x.mul_vec(beta)?;
    if fitted.len() != y.len() {
        return Err(LinalgError::DimensionMismatch {
            left: (fitted.len(), 1),
            right: (y.len(), 1),
            op: "residual_sum_of_squares",
        });
    }
    Ok(y.iter()
        .zip(fitted.iter())
        .map(|(a, b)| {
            let d = a - b;
            d * d
        })
        .sum())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vecops::approx_eq;

    #[test]
    fn simple_line_fit() {
        let x = Matrix::from_rows(&[&[1.0, 0.0], &[1.0, 1.0], &[1.0, 2.0], &[1.0, 3.0]]).unwrap();
        let y = [1.0, 3.0, 5.0, 7.0];
        let beta = solve_least_squares(&x, &y).unwrap();
        assert!(approx_eq(&beta, &[1.0, 2.0], 1e-10));
        assert!(residual_sum_of_squares(&x, &y, &beta).unwrap() < 1e-18);
    }

    #[test]
    fn normal_equations_and_driver_agree() {
        let x = Matrix::from_rows(&[
            &[1.0, 0.5, 0.25],
            &[1.0, 1.5, 2.25],
            &[1.0, 2.5, 6.25],
            &[1.0, 3.5, 12.25],
            &[1.0, 4.5, 20.25],
        ])
        .unwrap();
        let y = [0.1, 1.2, 3.9, 8.2, 14.1];
        let a = solve_least_squares(&x, &y).unwrap();
        let b = solve_normal_equations(&x, &y).unwrap();
        assert!(approx_eq(&a, &b, 1e-9));
    }

    #[test]
    fn shape_errors() {
        let x = Matrix::from_rows(&[&[1.0, 2.0]]).unwrap();
        assert!(matches!(
            solve_least_squares(&x, &[1.0]),
            Err(LinalgError::Underdetermined { .. })
        ));
        let x2 = Matrix::from_rows(&[&[1.0], &[2.0]]).unwrap();
        assert!(matches!(
            solve_least_squares(&x2, &[1.0, 2.0, 3.0]),
            Err(LinalgError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn rank_deficient_design_is_an_error() {
        // Second column is 3x the first: XᵀX singular, QR fallback also fails.
        let x = Matrix::from_rows(&[&[1.0, 3.0], &[2.0, 6.0], &[3.0, 9.0]]).unwrap();
        assert!(solve_least_squares(&x, &[1.0, 2.0, 3.0]).is_err());
    }

    #[test]
    fn rss_measures_misfit() {
        let x = Matrix::from_rows(&[&[1.0], &[1.0]]).unwrap();
        let y = [0.0, 2.0];
        // beta = [1.0] is the LS solution; RSS = 1 + 1 = 2.
        let rss = residual_sum_of_squares(&x, &y, &[1.0]).unwrap();
        assert!((rss - 2.0).abs() < 1e-12);
    }
}
