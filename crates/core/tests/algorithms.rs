//! Cross-algorithm integration tests: Algorithm 1 (m/o-cubing) and
//! Algorithm 2 (popular-path) must agree on the critical layers, and
//! Algorithm 2's exception set must be the exception-ancestor-reachable
//! subset of Algorithm 1's (the paper's footnote 7).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use regcube_core::prelude::*;
use regcube_olap::cell::CellKey;
use regcube_olap::{CubeSchema, CuboidSpec};
use regcube_regress::{Isb, TimeSeries};
use std::collections::BTreeMap;

/// A reproducible random dataset: `n` tuples on a `dims`-dimensional
/// schema of the given depth/fanout, slopes drawn from a mixture (mostly
/// quiet, some trending).
fn random_dataset(
    seed: u64,
    dims: usize,
    depth: u8,
    fanout: u32,
    n: usize,
) -> (CubeSchema, CriticalLayers, Vec<MTuple>) {
    let schema = CubeSchema::synthetic(dims, depth, fanout).unwrap();
    let layers = CriticalLayers::new(
        &schema,
        CuboidSpec::new(vec![1; dims]),
        CuboidSpec::new(vec![depth; dims]),
    )
    .unwrap();
    let mut rng = StdRng::seed_from_u64(seed);
    let card = fanout.pow(u32::from(depth));
    let mut tuples = Vec::with_capacity(n);
    for _ in 0..n {
        let ids: Vec<u32> = (0..dims).map(|_| rng.random_range(0..card)).collect();
        let slope: f64 = if rng.random_bool(0.15) {
            rng.random_range(-2.0..2.0)
        } else {
            rng.random_range(-0.05..0.05)
        };
        let base: f64 = rng.random_range(0.0..5.0);
        let noise_seed: u64 = rng.random();
        let series = TimeSeries::from_fn(0, 19, |t| {
            let jitter =
                ((t as u64 * 2654435761).wrapping_add(noise_seed) % 1000) as f64 / 10_000.0;
            base + slope * t as f64 + jitter
        })
        .unwrap();
        tuples.push(MTuple::new(ids, Isb::fit(&series).unwrap()));
    }
    (schema, layers, tuples)
}

fn sorted_cells(table: &regcube_core::table::CuboidTable) -> BTreeMap<CellKey, (f64, f64)> {
    table
        .iter()
        .map(|(k, m)| (k.clone(), (m.base(), m.slope())))
        .collect()
}

#[test]
fn critical_layers_agree_between_algorithms() {
    for seed in [7u64, 42, 1234] {
        let (schema, layers, tuples) = random_dataset(seed, 3, 2, 4, 600);
        let policy = ExceptionPolicy::slope_threshold(0.4);
        let a1 = mo_cubing::compute(&schema, &layers, &policy, &tuples).unwrap();
        let a2 = popular_path::compute(&schema, &layers, &policy, None, &tuples).unwrap();

        let m1 = sorted_cells(a1.m_table());
        let m2 = sorted_cells(a2.m_table());
        assert_eq!(m1.len(), m2.len());
        for (k, (b1, s1)) in &m1 {
            let (b2, s2) = m2[k];
            assert!(
                (b1 - b2).abs() < 1e-9 && (s1 - s2).abs() < 1e-9,
                "m-cell {k}"
            );
        }

        let o1 = sorted_cells(a1.o_table());
        let o2 = sorted_cells(a2.o_table());
        assert_eq!(o1.len(), o2.len());
        for (k, (b1, s1)) in &o1 {
            let (b2, s2) = o2[k];
            assert!(
                (b1 - b2).abs() < 1e-7 && (s1 - s2).abs() < 1e-7,
                "o-cell {k}"
            );
        }
    }
}

#[test]
fn popular_path_exceptions_are_a_subset_of_mo_exceptions() {
    for seed in [3u64, 99] {
        let (schema, layers, tuples) = random_dataset(seed, 3, 2, 4, 800);
        let policy = ExceptionPolicy::slope_threshold(0.3);
        let a1 = mo_cubing::compute(&schema, &layers, &policy, &tuples).unwrap();
        let a2 = popular_path::compute(&schema, &layers, &policy, None, &tuples).unwrap();

        assert!(a2.total_exception_cells() <= a1.total_exception_cells());
        for (cuboid, key, isb2) in a2.iter_exceptions() {
            // On-path cells are retained by Algorithm 2 but Algorithm 1
            // stores them as exceptions too (cuboids between the layers).
            let isb1 = a1
                .exceptions_in(cuboid)
                .and_then(|t| t.get(key))
                .unwrap_or_else(|| panic!("A2 exception {cuboid}{key} missing from A1"));
            assert!(
                isb1.approx_eq(isb2, 1e-7),
                "{cuboid}{key}: {isb1} vs {isb2}"
            );
        }
    }
}

#[test]
fn mo_exceptions_missing_from_popular_path_lack_exception_ancestors() {
    // Footnote 7: Algorithm 2 only finds exception cells whose ancestor
    // chain from the o-layer is exceptional throughout. Every cell
    // Algorithm 1 retains but Algorithm 2 misses must have *no* lattice
    // parent that Algorithm 2 found exceptional (otherwise A2 would have
    // drilled into it).
    let (schema, layers, tuples) = random_dataset(17, 2, 3, 3, 700);
    let policy = ExceptionPolicy::slope_threshold(0.25);
    let a1 = mo_cubing::compute(&schema, &layers, &policy, &tuples).unwrap();
    let a2 = popular_path::compute(&schema, &layers, &policy, None, &tuples).unwrap();

    let lattice = layers.lattice();
    for (cuboid, key, _) in a1.iter_exceptions() {
        let found_in_a2 = a2
            .exceptions_in(cuboid)
            .is_some_and(|t| t.contains_key(key));
        if found_in_a2 || a2.path_tables().contains_key(cuboid) {
            continue;
        }
        // Missed by A2: verify no parent of this cell is an A2 exception
        // (o-layer parents count as exceptional when the policy fires).
        for parent in lattice.parents(cuboid) {
            let projected = CellKey::new(regcube_olap::cell::project_key(
                &schema,
                cuboid,
                key.ids(),
                &parent,
            ));
            let parent_is_exceptional = if parent == *lattice.o_layer() {
                a2.o_table()
                    .get(&projected)
                    .is_some_and(|m| policy.is_exception(&parent, m))
            } else if let Some(t) = a2.path_tables().get(&parent) {
                t.get(&projected)
                    .is_some_and(|m| policy.is_exception(&parent, m))
            } else {
                a2.exceptions_in(&parent)
                    .is_some_and(|t| t.contains_key(&projected))
            };
            assert!(
                !parent_is_exceptional,
                "A2 missed {cuboid}{key} although parent {parent}{projected} is exceptional"
            );
        }
    }
}

#[test]
fn always_policy_makes_the_algorithms_equivalent() {
    // With threshold 0 every cell is exceptional, so Algorithm 2 drills
    // everywhere and the two algorithms retain identical cell sets.
    let (schema, layers, tuples) = random_dataset(5, 2, 2, 3, 300);
    let policy = ExceptionPolicy::always();
    let a1 = mo_cubing::compute(&schema, &layers, &policy, &tuples).unwrap();
    let a2 = popular_path::compute(&schema, &layers, &policy, None, &tuples).unwrap();

    for cuboid in layers.lattice().enumerate() {
        if cuboid == *layers.m_layer() || cuboid == *layers.o_layer() {
            continue;
        }
        let t1 = a1.exceptions_in(&cuboid);
        let c1 = t1.map_or(0, |t| t.len());
        let c2 = a2.exceptions_in(&cuboid).map_or(0, |t| t.len());
        assert_eq!(c1, c2, "cuboid {cuboid}");
        if let (Some(t1), Some(t2)) = (t1, a2.exceptions_in(&cuboid)) {
            for (k, m1) in t1 {
                let m2 = t2.get(k).expect("same cells");
                assert!(m1.approx_eq(m2, 1e-7));
            }
        }
    }
}

#[test]
fn exception_counts_scale_monotonically_with_threshold() {
    let (schema, layers, tuples) = random_dataset(11, 3, 2, 4, 500);
    let mut last = u64::MAX;
    for threshold in [0.0, 0.05, 0.2, 0.5, 1.5, f64::INFINITY] {
        let policy = ExceptionPolicy::slope_threshold(threshold);
        let cube = mo_cubing::compute(&schema, &layers, &policy, &tuples).unwrap();
        let count = cube.total_exception_cells();
        assert!(
            count <= last,
            "raising the threshold to {threshold} increased exceptions"
        );
        last = count;
    }
    assert_eq!(last, 0, "infinite threshold leaves no exceptions");
}

#[test]
fn facade_round_trip_on_random_data() {
    let (schema, layers, tuples) = random_dataset(23, 2, 2, 4, 400);
    let mut cube = RegressionCube::new(
        schema,
        layers.o_layer().clone(),
        layers.m_layer().clone(),
        ExceptionPolicy::slope_threshold(0.35),
    )
    .unwrap();
    cube.recompute(&tuples).unwrap();

    // Every alarm must be drillable; every drill hit must be exceptional.
    let alarms: Vec<(CellKey, Isb)> = cube
        .alarms()
        .unwrap()
        .into_iter()
        .map(|(k, m)| (k.clone(), *m))
        .collect();
    for (key, _) in &alarms {
        let hits = cube.drill_descendants(layers.o_layer(), key).unwrap();
        for hit in hits {
            assert!(cube.policy().is_exception(&hit.cuboid, &hit.measure));
        }
    }
}
