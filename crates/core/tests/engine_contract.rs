//! Trait-level contract tests for [`CubingEngine`] implementations.
//!
//! Every engine must satisfy two laws, checked here generically (so a
//! future backend is pinned by adding one line to `all_engines`):
//!
//! 1. **Incremental/batch equivalence** — splitting one unit's tuple
//!    stream into same-window batches and ingesting them sequentially
//!    yields the same cube (critical layers, exception stores, path
//!    tables) as the one-shot batch `compute` entry point.
//! 2. **Footnote 7 superset** — after identical ingestion, Algorithm 1
//!    retains a superset of Algorithm 2's exception cells, with
//!    identical measures where both retain a cell, and both agree
//!    exactly on the critical layers.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use regcube_core::arena::ArenaCubingEngine;
use regcube_core::columnar::ColumnarCubingEngine;
use regcube_core::engine::{CubingEngine, MoCubingEngine, PopularPathEngine};
use regcube_core::shard::ShardedEngine;
use regcube_core::table::CuboidTable;
use regcube_core::{mo_cubing, popular_path, CriticalLayers, CubeResult, ExceptionPolicy, MTuple};
use regcube_olap::{CubeSchema, CuboidSpec};
use regcube_regress::{Isb, TimeSeries};

fn random_dataset(seed: u64, n: usize) -> (CubeSchema, CriticalLayers, Vec<MTuple>) {
    let (dims, depth, fanout) = (2usize, 2u8, 3u32);
    let schema = CubeSchema::synthetic(dims, depth, fanout).unwrap();
    let layers = CriticalLayers::new(
        &schema,
        CuboidSpec::new(vec![0; dims]),
        CuboidSpec::new(vec![depth; dims]),
    )
    .unwrap();
    let mut rng = StdRng::seed_from_u64(seed);
    let card = fanout.pow(u32::from(depth));
    let tuples = (0..n)
        .map(|_| {
            let ids: Vec<u32> = (0..dims).map(|_| rng.random_range(0..card)).collect();
            let slope = rng.random_range(-1.2..1.2);
            let base = rng.random_range(0.0..4.0);
            let z = TimeSeries::from_fn(0, 15, |t| base + slope * t as f64).unwrap();
            MTuple::new(ids, Isb::fit(&z).unwrap())
        })
        .collect();
    (schema, layers, tuples)
}

fn tables_approx_eq(label: &str, a: &CuboidTable, b: &CuboidTable) {
    assert_eq!(a.len(), b.len(), "{label}: cell counts differ");
    for (key, m) in a {
        let other = b
            .get(key)
            .unwrap_or_else(|| panic!("{label}: cell {key} missing"));
        assert!(m.approx_eq(other, 1e-8), "{label} {key}: {m} vs {other}");
    }
}

fn results_approx_eq(label: &str, a: &CubeResult, b: &CubeResult) {
    tables_approx_eq(&format!("{label}/m"), a.m_table(), b.m_table());
    tables_approx_eq(&format!("{label}/o"), a.o_table(), b.o_table());
    assert_eq!(
        a.total_exception_cells(),
        b.total_exception_cells(),
        "{label}: exception counts differ"
    );
    for (cuboid, key, m) in a.iter_exceptions() {
        let other = b
            .exceptions_in(cuboid)
            .and_then(|t| t.get(key))
            .unwrap_or_else(|| panic!("{label}: exception {cuboid}{key} missing"));
        assert!(m.approx_eq(other, 1e-8), "{label} {cuboid}{key}");
    }
    assert_eq!(a.path_tables().len(), b.path_tables().len());
    for (cuboid, table) in a.path_tables() {
        tables_approx_eq(
            &format!("{label}/path {cuboid}"),
            table,
            &b.path_tables()[cuboid],
        );
    }
}

/// The generic half of law 1: ingest `tuples` in `chunk`-sized
/// same-window batches and compare against a reference result.
fn assert_incremental_matches_batch<E: CubingEngine>(
    label: &str,
    mut engine: E,
    tuples: &[MTuple],
    chunk: usize,
    reference: &CubeResult,
) {
    let mut units_opened = 0;
    for batch in tuples.chunks(chunk) {
        let delta = engine.ingest_unit(batch).unwrap();
        if delta.opened_unit {
            units_opened += 1;
        }
    }
    assert_eq!(
        units_opened, 1,
        "{label}: same-window batches must stay in one unit"
    );
    results_approx_eq(label, engine.result(), reference);
    assert_eq!(engine.result().algorithm(), reference.algorithm());
}

#[test]
fn mo_engine_incremental_ingestion_matches_batch_compute() {
    for (seed, chunk) in [(1u64, 1usize), (2, 7), (3, 50)] {
        let (schema, layers, tuples) = random_dataset(seed, 120);
        let policy = ExceptionPolicy::slope_threshold(0.3);
        let reference = mo_cubing::compute(&schema, &layers, &policy, &tuples).unwrap();
        let engine = MoCubingEngine::new(schema.clone(), layers.clone(), policy.clone()).unwrap();
        assert_incremental_matches_batch(
            &format!("mo seed {seed} chunk {chunk}"),
            engine,
            &tuples,
            chunk,
            &reference,
        );
        // Transient mode (the batch wrapper's memory model) obeys the
        // same law: same-window batches fold + recompute exactly.
        let transient = MoCubingEngine::transient(schema, layers, policy).unwrap();
        assert_incremental_matches_batch(
            &format!("mo-transient seed {seed} chunk {chunk}"),
            transient,
            &tuples,
            chunk,
            &reference,
        );
    }
}

#[test]
fn popular_path_engine_incremental_ingestion_matches_batch_compute() {
    for (seed, chunk) in [(4u64, 1usize), (5, 9), (6, 40)] {
        let (schema, layers, tuples) = random_dataset(seed, 120);
        let policy = ExceptionPolicy::slope_threshold(0.3);
        let reference = popular_path::compute(&schema, &layers, &policy, None, &tuples).unwrap();
        let engine = PopularPathEngine::new(schema, layers, policy, None).unwrap();
        assert_incremental_matches_batch(
            &format!("pp seed {seed} chunk {chunk}"),
            engine,
            &tuples,
            chunk,
            &reference,
        );
    }
}

#[test]
fn columnar_engine_incremental_ingestion_matches_batch_compute() {
    // Law 1 for the columnar backend: the struct-of-arrays roll-up is a
    // drop-in for Algorithm 1 under every batching.
    for (seed, chunk) in [(7u64, 1usize), (8, 7), (9, 50)] {
        let (schema, layers, tuples) = random_dataset(seed, 120);
        let policy = ExceptionPolicy::slope_threshold(0.3);
        let reference = mo_cubing::compute(&schema, &layers, &policy, &tuples).unwrap();
        let engine = ColumnarCubingEngine::new(schema, layers, policy).unwrap();
        assert_incremental_matches_batch(
            &format!("columnar seed {seed} chunk {chunk}"),
            engine,
            &tuples,
            chunk,
            &reference,
        );
    }
}

#[test]
fn columnar_matches_row_at_every_shard_count() {
    // The layout pin: sharded columnar cubing equals the unsharded row
    // reference at n ∈ {1, 2, 3, 7} — full cube and sorted deltas.
    let (schema, layers, tuples) = random_dataset(70, 150);
    let policy = ExceptionPolicy::slope_threshold(0.3);
    let mut reference =
        MoCubingEngine::transient(schema.clone(), layers.clone(), policy.clone()).unwrap();
    let ref_delta = reference.ingest_unit(&tuples).unwrap();
    for shards in [1usize, 2, 3, 7] {
        let mut engine =
            ShardedEngine::columnar(schema.clone(), layers.clone(), policy.clone(), shards)
                .unwrap();
        let delta = engine.ingest_unit(&tuples).unwrap();
        results_approx_eq(
            &format!("columnar n={shards}"),
            engine.result(),
            reference.result(),
        );
        // Deltas are sorted by contract, so they compare directly.
        assert_eq!(delta.appeared, ref_delta.appeared, "n={shards}");
        assert_eq!(delta.cleared, ref_delta.cleared, "n={shards}");
        assert_eq!(engine.result().algorithm(), reference.result().algorithm());
    }
}

#[test]
fn columnar_rollover_matches_row() {
    // Window rollovers through the columnar backend (sharded and not):
    // after every unit the cube and the delta stream must agree with
    // the row reference, including units that leave shards stale.
    let (schema, layers, tuples) = random_dataset(71, 90);
    let policy = ExceptionPolicy::slope_threshold(0.3);
    let mut columnar =
        ColumnarCubingEngine::new(schema.clone(), layers.clone(), policy.clone()).unwrap();
    let mut sharded =
        ShardedEngine::columnar(schema.clone(), layers.clone(), policy.clone(), 3).unwrap();
    let mut single = MoCubingEngine::transient(schema, layers, policy).unwrap();
    for unit in 0..3usize {
        let take = [90usize, 30, 4][unit];
        let start = unit as i64 * 16;
        let batch: Vec<MTuple> = tuples[..take]
            .iter()
            .map(|t| {
                let isb = t.isb();
                MTuple::new(
                    t.ids().to_vec(),
                    Isb::new(start, start + 15, isb.base(), isb.slope()).unwrap(),
                )
            })
            .collect();
        let dc = columnar.ingest_unit(&batch).unwrap();
        let ds = sharded.ingest_unit(&batch).unwrap();
        let du = single.ingest_unit(&batch).unwrap();
        for (label, delta, engine) in [
            ("columnar", &dc, columnar.result()),
            ("columnar x3", &ds, sharded.result()),
        ] {
            assert_eq!(delta.unit, du.unit, "unit {unit} {label}");
            results_approx_eq(&format!("unit {unit} {label}"), engine, single.result());
            assert_eq!(delta.appeared, du.appeared, "unit {unit} {label} appeared");
            assert_eq!(delta.cleared, du.cleared, "unit {unit} {label} cleared");
        }
    }
}

#[test]
fn arena_engine_incremental_ingestion_matches_batch_compute() {
    // Law 1 for the arena backend: interned keys and epoch recycling are
    // a drop-in for Algorithm 1 under every batching.
    for (seed, chunk) in [(7u64, 1usize), (8, 7), (9, 50)] {
        let (schema, layers, tuples) = random_dataset(seed, 120);
        let policy = ExceptionPolicy::slope_threshold(0.3);
        let reference = mo_cubing::compute(&schema, &layers, &policy, &tuples).unwrap();
        let engine = ArenaCubingEngine::new(schema, layers, policy).unwrap();
        assert_incremental_matches_batch(
            &format!("arena seed {seed} chunk {chunk}"),
            engine,
            &tuples,
            chunk,
            &reference,
        );
    }
}

#[test]
fn arena_matches_row_at_every_shard_count() {
    // The layout pin: sharded arena cubing equals the unsharded row
    // reference at n ∈ {1, 2, 3, 7} — full cube and sorted deltas.
    let (schema, layers, tuples) = random_dataset(70, 150);
    let policy = ExceptionPolicy::slope_threshold(0.3);
    let mut reference =
        MoCubingEngine::transient(schema.clone(), layers.clone(), policy.clone()).unwrap();
    let ref_delta = reference.ingest_unit(&tuples).unwrap();
    for shards in [1usize, 2, 3, 7] {
        let mut engine =
            ShardedEngine::arena(schema.clone(), layers.clone(), policy.clone(), shards).unwrap();
        let delta = engine.ingest_unit(&tuples).unwrap();
        results_approx_eq(
            &format!("arena n={shards}"),
            engine.result(),
            reference.result(),
        );
        // Deltas are sorted by contract, so they compare directly.
        assert_eq!(delta.appeared, ref_delta.appeared, "n={shards}");
        assert_eq!(delta.cleared, ref_delta.cleared, "n={shards}");
        assert_eq!(engine.result().algorithm(), reference.result().algorithm());
    }
}

#[test]
fn arena_rollover_matches_row() {
    // Window rollovers through the arena backend (sharded and not):
    // after every unit — including the epoch-reset recomputations — the
    // cube and the delta stream must agree with the row reference.
    let (schema, layers, tuples) = random_dataset(71, 90);
    let policy = ExceptionPolicy::slope_threshold(0.3);
    let mut arena = ArenaCubingEngine::new(schema.clone(), layers.clone(), policy.clone()).unwrap();
    let mut sharded =
        ShardedEngine::arena(schema.clone(), layers.clone(), policy.clone(), 3).unwrap();
    let mut single = MoCubingEngine::transient(schema, layers, policy).unwrap();
    for unit in 0..3usize {
        let take = [90usize, 30, 4][unit];
        let start = unit as i64 * 16;
        let batch: Vec<MTuple> = tuples[..take]
            .iter()
            .map(|t| {
                let isb = t.isb();
                MTuple::new(
                    t.ids().to_vec(),
                    Isb::new(start, start + 15, isb.base(), isb.slope()).unwrap(),
                )
            })
            .collect();
        let da = arena.ingest_unit(&batch).unwrap();
        let ds = sharded.ingest_unit(&batch).unwrap();
        let du = single.ingest_unit(&batch).unwrap();
        for (label, delta, engine) in [
            ("arena", &da, arena.result()),
            ("arena x3", &ds, sharded.result()),
        ] {
            assert_eq!(delta.unit, du.unit, "unit {unit} {label}");
            results_approx_eq(&format!("unit {unit} {label}"), engine, single.result());
            assert_eq!(delta.appeared, du.appeared, "unit {unit} {label} appeared");
            assert_eq!(delta.cleared, du.cleared, "unit {unit} {label} cleared");
        }
        if unit > 0 {
            assert!(
                arena.stats().epochs_reclaimed > 0,
                "unit {unit}: rollover reclaims epochs"
            );
        }
    }
}

#[test]
fn sharded_engine_incremental_ingestion_matches_batch_compute() {
    // Law 1 for the sharded backend at n = 1, 2, 3, 7: hash-partitioned
    // parallel cubing + Theorem 3.2 merge equals the unsharded batch
    // compute, for one-shot and chunked same-window ingestion alike.
    for (shards, chunk) in [(1usize, 50usize), (2, 11), (3, 7), (7, 1)] {
        let (schema, layers, tuples) = random_dataset(40 + shards as u64, 120);
        let policy = ExceptionPolicy::slope_threshold(0.3);
        let reference = mo_cubing::compute(&schema, &layers, &policy, &tuples).unwrap();
        let engine = ShardedEngine::mo_cubing(schema, layers, policy, shards).unwrap();
        assert_incremental_matches_batch(
            &format!("sharded n={shards} chunk {chunk}"),
            engine,
            &tuples,
            chunk,
            &reference,
        );
    }
}

#[test]
fn sharded_engine_rollover_matches_unsharded() {
    // Window rollovers: replay three units through sharded and
    // unsharded engines; after every unit the cubes must agree, even
    // when a unit activates only a few shards and leaves the rest
    // holding the previous window's partition.
    let (schema, layers, tuples) = random_dataset(50, 90);
    let policy = ExceptionPolicy::slope_threshold(0.3);
    let mut sharded =
        ShardedEngine::mo_cubing(schema.clone(), layers.clone(), policy.clone(), 3).unwrap();
    let mut single = MoCubingEngine::transient(schema, layers, policy).unwrap();
    for unit in 0..3usize {
        // Shrinking batches: unit 2 has 4 tuples, so several shards
        // stay on an old window and must be excluded from the merge.
        let take = [90usize, 30, 4][unit];
        let start = unit as i64 * 16;
        let batch: Vec<MTuple> = tuples[..take]
            .iter()
            .map(|t| {
                let isb = t.isb();
                MTuple::new(
                    t.ids().to_vec(),
                    Isb::new(start, start + 15, isb.base(), isb.slope()).unwrap(),
                )
            })
            .collect();
        let ds = sharded.ingest_unit(&batch).unwrap();
        let du = single.ingest_unit(&batch).unwrap();
        assert!(ds.opened_unit && du.opened_unit, "unit {unit}");
        assert_eq!(ds.unit, du.unit, "unit {unit}");
        results_approx_eq(
            &format!("rollover unit {unit}"),
            sharded.result(),
            single.result(),
        );
        // Deltas are sorted by contract, so they compare directly.
        assert_eq!(ds.appeared, du.appeared, "unit {unit} appeared");
        assert_eq!(ds.cleared, du.cleared, "unit {unit} cleared");
    }
}

#[test]
fn sharded_engines_uphold_footnote_7() {
    // The superset law holds with sharded engines in the mix: sharded
    // A1 == unsharded A1 ⊇ sharded A2 ⊇ unsharded A2's exceptions.
    let (schema, layers, tuples) = random_dataset(60, 200);
    let policy = ExceptionPolicy::slope_threshold(0.25);
    let mut engines: Vec<(&str, Box<dyn CubingEngine>)> = vec![
        (
            "a1",
            Box::new(MoCubingEngine::new(schema.clone(), layers.clone(), policy.clone()).unwrap()),
        ),
        (
            "sharded-a1",
            Box::new(
                ShardedEngine::mo_cubing(schema.clone(), layers.clone(), policy.clone(), 4)
                    .unwrap(),
            ),
        ),
        (
            "sharded-a2",
            Box::new(
                ShardedEngine::popular_path(schema.clone(), layers.clone(), policy.clone(), 4)
                    .unwrap(),
            ),
        ),
        (
            "a2",
            Box::new(PopularPathEngine::new(schema, layers, policy, None).unwrap()),
        ),
    ];
    for (_, engine) in &mut engines {
        engine.ingest_unit(&tuples).unwrap();
    }
    // Ordered from the largest retained exception set to the smallest:
    // each must contain the next (with identical critical layers).
    for pair in engines.windows(2) {
        let ((la, a), (lb, b)) = (&pair[0], &pair[1]);
        let (ra, rb) = (a.result(), b.result());
        tables_approx_eq(&format!("{la}/{lb} m"), ra.m_table(), rb.m_table());
        tables_approx_eq(&format!("{la}/{lb} o"), ra.o_table(), rb.o_table());
        assert!(
            rb.total_exception_cells() <= ra.total_exception_cells(),
            "{lb} retains more than {la}"
        );
        for (cuboid, key, _) in rb.iter_exceptions() {
            assert!(
                ra.exceptions_in(cuboid)
                    .is_some_and(|t| t.contains_key(key)),
                "{lb} exception {cuboid}{key} missing from {la}"
            );
        }
    }
    // And the two A1 variants agree exactly.
    assert_eq!(
        engines[0].1.result().total_exception_cells(),
        engines[1].1.result().total_exception_cells()
    );
}

#[test]
fn engines_are_send() {
    // Compile-time Send audit: a sharded engine moves its inner engines
    // to worker threads, so every backend must be Send (and the sharded
    // wrapper itself must be Send to stack behind further seams).
    fn assert_send<T: Send>() {}
    assert_send::<MoCubingEngine>();
    assert_send::<PopularPathEngine>();
    assert_send::<ColumnarCubingEngine>();
    assert_send::<ArenaCubingEngine>();
    assert_send::<Box<dyn CubingEngine + Send>>();
    assert_send::<ShardedEngine<MoCubingEngine>>();
    assert_send::<ShardedEngine<PopularPathEngine>>();
    assert_send::<ShardedEngine<ColumnarCubingEngine>>();
    assert_send::<ShardedEngine<ArenaCubingEngine>>();
}

/// Law 2, enforced through the trait with type-erased engines so any
/// pair of implementations can be cross-checked the same way.
#[test]
fn algorithm_one_exceptions_are_a_superset_of_algorithm_two() {
    for seed in [10u64, 11, 12] {
        let (schema, layers, tuples) = random_dataset(seed, 200);
        let policy = ExceptionPolicy::slope_threshold(0.25);
        let mut engines: Vec<Box<dyn CubingEngine>> = vec![
            Box::new(MoCubingEngine::new(schema.clone(), layers.clone(), policy.clone()).unwrap()),
            Box::new(PopularPathEngine::new(schema, layers, policy, None).unwrap()),
        ];
        for engine in &mut engines {
            // Mixed batch sizes: the invariant holds regardless of how
            // the unit's tuples arrived.
            let split = tuples.len() / 2;
            engine.ingest_unit(&tuples[..split]).unwrap();
            engine.ingest_unit(&tuples[split..]).unwrap();
        }
        let (a1, a2) = (engines[0].result(), engines[1].result());

        // Identical critical layers.
        tables_approx_eq(&format!("seed {seed}/m"), a1.m_table(), a2.m_table());
        tables_approx_eq(&format!("seed {seed}/o"), a1.o_table(), a2.o_table());

        // Superset with matching measures.
        assert!(a2.total_exception_cells() <= a1.total_exception_cells());
        for (cuboid, key, isb2) in a2.iter_exceptions() {
            let isb1 = a1
                .exceptions_in(cuboid)
                .and_then(|t| t.get(key))
                .unwrap_or_else(|| {
                    panic!("seed {seed}: A2 exception {cuboid}{key} missing from A1")
                });
            assert!(isb1.approx_eq(isb2, 1e-8), "seed {seed}: {cuboid}{key}");
        }
    }
}

#[test]
fn unit_rollover_is_part_of_the_contract() {
    // Feeding a later window must open a new unit and leave a cube for
    // that window only — for every engine behind the same trait calls.
    let (schema, layers, tuples) = random_dataset(20, 60);
    let policy = ExceptionPolicy::slope_threshold(0.3);
    let engines: Vec<Box<dyn CubingEngine>> = vec![
        Box::new(MoCubingEngine::new(schema.clone(), layers.clone(), policy.clone()).unwrap()),
        Box::new(PopularPathEngine::new(schema, layers, policy, None).unwrap()),
    ];
    for mut engine in engines {
        let d0 = engine.ingest_unit(&tuples).unwrap();
        assert!(d0.opened_unit);
        assert_eq!(d0.unit, 0);

        let next_window: Vec<MTuple> = (0..5u32)
            .map(|i| MTuple::new(vec![i, i], Isb::new(16, 31, 1.0, 0.5).unwrap()))
            .collect();
        let d1 = engine.ingest_unit(&next_window).unwrap();
        assert!(d1.opened_unit);
        assert_eq!(d1.unit, 1);
        assert_eq!(d1.window, (16, 31));
        assert_eq!(engine.result().m_layer_cells(), 5);
        // Deltas stay consistent across the rollover: every alarm the
        // first unit raised is either still exceptional in the new
        // window or reported as cleared.
        for cell in &d0.appeared {
            let still = engine
                .result()
                .exceptions_in(&cell.0)
                .is_some_and(|t| t.contains_key(&cell.1));
            assert!(
                still || d1.cleared.contains(cell),
                "lapsed exception {}{} neither retained nor cleared",
                cell.0,
                cell.1
            );
        }
    }
}
