//! SIMD ≡ scalar kernel parity: the chunked [`regcube_core::kernel`]
//! fold/projection path must be **bit-for-bit** identical to the forced
//! scalar fallback — same cells, same exception sets, same `UnitDelta`
//! streams — across batching, window rollovers, shard counts {1,2,3,7},
//! NaN-noise measures and the u64-overflow guard. The kernels preserve
//! the scalar fold's add order by construction, so the comparison is
//! `f64::to_bits` equality, not epsilon closeness.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use regcube_core::columnar::ColumnarCubingEngine;
use regcube_core::engine::{CubingEngine, UnitDelta};
use regcube_core::shard::ShardedEngine;
use regcube_core::table::{CuboidTable, DenseCellCodec};
use regcube_core::{CriticalLayers, CubeResult, ExceptionPolicy, KernelMode, MTuple};
use regcube_olap::{CubeSchema, CuboidSpec};
use regcube_regress::{Isb, TimeSeries};

fn dataset(seed: u64, n: usize) -> (CubeSchema, CriticalLayers, Vec<MTuple>) {
    let (dims, depth, fanout) = (3usize, 2u8, 3u32);
    let schema = CubeSchema::synthetic(dims, depth, fanout).unwrap();
    let layers = CriticalLayers::new(
        &schema,
        CuboidSpec::new(vec![0; dims]),
        CuboidSpec::new(vec![depth; dims]),
    )
    .unwrap();
    let mut rng = StdRng::seed_from_u64(seed);
    let card = fanout.pow(u32::from(depth));
    let tuples = (0..n)
        .map(|_| {
            let ids: Vec<u32> = (0..dims).map(|_| rng.random_range(0..card)).collect();
            let slope = rng.random_range(-1.2..1.2);
            let base = rng.random_range(0.0..4.0);
            let z = TimeSeries::from_fn(0, 15, |t| base + slope * t as f64).unwrap();
            MTuple::new(ids, Isb::fit(&z).unwrap())
        })
        .collect();
    (schema, layers, tuples)
}

/// Bit-exact ISB equality: identical interval and identical `f64` bit
/// patterns (so NaN payloads and signed zeros must match too).
fn isb_bits_eq(a: &Isb, b: &Isb) -> bool {
    a.interval() == b.interval()
        && a.base().to_bits() == b.base().to_bits()
        && a.slope().to_bits() == b.slope().to_bits()
}

fn tables_bit_eq(label: &str, a: &CuboidTable, b: &CuboidTable) {
    assert_eq!(a.len(), b.len(), "{label}: cell counts differ");
    for (key, m) in a {
        let other = b
            .get(key)
            .unwrap_or_else(|| panic!("{label}: cell {key} missing"));
        assert!(isb_bits_eq(m, other), "{label} {key}: {m} vs {other}");
    }
}

fn results_bit_eq(label: &str, a: &CubeResult, b: &CubeResult) {
    tables_bit_eq(&format!("{label}/m"), a.m_table(), b.m_table());
    tables_bit_eq(&format!("{label}/o"), a.o_table(), b.o_table());
    assert_eq!(
        a.total_exception_cells(),
        b.total_exception_cells(),
        "{label}: exception counts differ"
    );
    for (cuboid, key, m) in a.iter_exceptions() {
        let other = b
            .exceptions_in(cuboid)
            .and_then(|t| t.get(key))
            .unwrap_or_else(|| panic!("{label}: exception {cuboid}{key} missing"));
        assert!(isb_bits_eq(m, other), "{label} {cuboid}{key}");
    }
}

fn deltas_eq(label: &str, a: &UnitDelta, b: &UnitDelta) {
    assert_eq!(a.unit, b.unit, "{label}: unit");
    assert_eq!(a.window, b.window, "{label}: window");
    assert_eq!(a.opened_unit, b.opened_unit, "{label}: opened_unit");
    assert_eq!(a.appeared, b.appeared, "{label}: appeared");
    assert_eq!(a.cleared, b.cleared, "{label}: cleared");
}

/// Replays `units` (each a list of same-window batches) through an
/// auto-dispatch and a forced-scalar columnar engine, asserting
/// bit-exact cubes and deltas after every batch, then returns both
/// engines for counter inspection.
fn replay_and_compare(
    label: &str,
    schema: &CubeSchema,
    layers: &CriticalLayers,
    policy: &ExceptionPolicy,
    units: &[Vec<&[MTuple]>],
) -> (ColumnarCubingEngine, ColumnarCubingEngine) {
    // Both modes are forced programmatically (not read from the env),
    // so the comparison stays kernel-vs-scalar even under the CI run
    // that exports REGCUBE_SCALAR_KERNELS=1 for the whole suite.
    let mut auto = ColumnarCubingEngine::new(schema.clone(), layers.clone(), policy.clone())
        .unwrap()
        .with_kernel_mode(KernelMode::Auto);
    let mut scalar = ColumnarCubingEngine::new(schema.clone(), layers.clone(), policy.clone())
        .unwrap()
        .with_kernel_mode(KernelMode::Scalar);
    for (u, unit) in units.iter().enumerate() {
        for (i, batch) in unit.iter().enumerate() {
            let da = auto.ingest_unit(batch).unwrap();
            let ds = scalar.ingest_unit(batch).unwrap();
            let tag = format!("{label} unit {u} batch {i}");
            deltas_eq(&tag, &da, &ds);
            results_bit_eq(&tag, auto.result(), scalar.result());
        }
    }
    (auto, scalar)
}

/// Shifts every tuple's interval into unit `unit` (16 ticks per unit).
fn shift_window(tuples: &[MTuple], unit: i64) -> Vec<MTuple> {
    let start = unit * 16;
    tuples
        .iter()
        .map(|t| {
            let isb = t.isb();
            MTuple::new(
                t.ids().to_vec(),
                Isb::new(start, start + 15, isb.base(), isb.slope()).unwrap(),
            )
        })
        .collect()
}

#[test]
fn kernel_and_scalar_paths_are_bit_identical_across_rollovers() {
    let (schema, layers, tuples) = dataset(600, 180);
    let policy = ExceptionPolicy::slope_threshold(0.3);
    // Unit 0 arrives in mixed batches (open + same-window merges), the
    // next two units roll the window with shrinking tails.
    let u1 = shift_window(&tuples[..60], 1);
    let u2 = shift_window(&tuples[..7], 2);
    let units: Vec<Vec<&[MTuple]>> = vec![
        vec![&tuples[..100], &tuples[100..140], &tuples[140..]],
        vec![&u1[..]],
        vec![&u2[..]],
    ];
    let (auto, scalar) = replay_and_compare("rollover", &schema, &layers, &policy, &units);

    // Dispatch accounting: each engine splits its folded rows across
    // exactly the two counters; the forced engine never reports kernel
    // rows, the auto engine folded its tier roll-up through them.
    for (label, engine) in [("auto", &auto), ("scalar", &scalar)] {
        let s = engine.stats();
        assert_eq!(
            s.rows_folded,
            s.rows_folded_simd + s.rows_folded_scalar,
            "{label}: counters must partition rows_folded"
        );
    }
    assert_eq!(scalar.stats().rows_folded_simd, 0, "forced scalar");
    assert!(
        auto.stats().rows_folded_simd > 0,
        "auto dispatch must reach the kernels on a synthetic lattice"
    );
}

#[test]
fn nan_noise_flows_through_both_paths_identically() {
    // NaN measures (a sensor stream gone bad) must neither qualify as
    // exceptions nor perturb neighbours — identically on both paths,
    // down to the propagated NaN bit patterns in the critical layers.
    let (schema, layers, mut tuples) = dataset(601, 120);
    let policy = ExceptionPolicy::slope_threshold(0.3);
    for i in (0..tuples.len()).step_by(7) {
        let ids = tuples[i].ids().to_vec();
        tuples[i] = MTuple::new(ids, Isb::new(0, 15, f64::NAN, -f64::NAN).unwrap());
    }
    let units: Vec<Vec<&[MTuple]>> = vec![vec![&tuples[..80], &tuples[80..]]];
    let (auto, _) = replay_and_compare("nan", &schema, &layers, &policy, &units);
    assert!(
        auto.result().o_table().values().any(|m| m.slope().is_nan()),
        "NaN noise must reach the o-layer for the pin to mean anything"
    );
    for (_, _, m) in auto.result().iter_exceptions() {
        assert!(!m.slope().is_nan(), "NaN never qualifies as an exception");
    }
}

#[test]
fn sharded_kernel_and_scalar_paths_agree_at_every_shard_count() {
    let (schema, layers, tuples) = dataset(602, 150);
    let policy = ExceptionPolicy::slope_threshold(0.3);
    for shards in [1usize, 2, 3, 7] {
        let mut auto = ShardedEngine::with_factory(
            schema.clone(),
            layers.clone(),
            policy.clone(),
            shards,
            |s, l, p| {
                ColumnarCubingEngine::new(s, l, p).map(|e| e.with_kernel_mode(KernelMode::Auto))
            },
        )
        .unwrap();
        let mut scalar = ShardedEngine::with_factory(
            schema.clone(),
            layers.clone(),
            policy.clone(),
            shards,
            |s, l, p| {
                ColumnarCubingEngine::new(s, l, p).map(|e| e.with_kernel_mode(KernelMode::Scalar))
            },
        )
        .unwrap();
        let da = auto.ingest_unit(&tuples).unwrap();
        let ds = scalar.ingest_unit(&tuples).unwrap();
        let tag = format!("shards {shards}");
        deltas_eq(&tag, &da, &ds);
        results_bit_eq(&tag, auto.result(), scalar.result());
        // merge_shards sums the dispatch counters; the partition
        // invariant survives the merge on both engines.
        for (label, engine) in [("auto", &auto as &dyn CubingEngine), ("scalar", &scalar)] {
            let s = engine.stats();
            assert_eq!(
                s.rows_folded,
                s.rows_folded_simd + s.rows_folded_scalar,
                "{tag} {label}"
            );
        }
        assert_eq!(scalar.stats().rows_folded_simd, 0, "{tag}: forced scalar");
        assert!(auto.stats().rows_folded_simd > 0, "{tag}: kernels reached");
    }
}

#[test]
fn overflow_guard_fires_identically_on_both_paths() {
    // 6 dimensions with ~4M leaves each overflow the dense u64 id
    // space; the codec guard (shared by both paths — it fires before
    // any kernel dispatch) must reject the m-layer identically.
    let schema = CubeSchema::synthetic(6, 2, 2048).unwrap();
    let m = CuboidSpec::new(vec![2; 6]);
    let layers = CriticalLayers::new(&schema, CuboidSpec::new(vec![0; 6]), m.clone()).unwrap();
    assert!(DenseCellCodec::new(&schema, &m).is_err());
    // The codec guard fires at engine construction, before any kernel
    // dispatch decision exists — no mode can route around it.
    let err = ColumnarCubingEngine::new(schema, layers, ExceptionPolicy::slope_threshold(0.5))
        .map(|_| ())
        .unwrap_err()
        .to_string();
    assert!(err.contains("overflows a dense 64-bit id"), "{err}");
}

#[derive(Debug, Clone)]
struct RandomCube {
    dims: usize,
    depth: u8,
    fanout: u32,
    tuples: Vec<(Vec<u32>, f64, f64)>, // ids, base, slope
    threshold: f64,
    chunk: usize,
    shards: usize,
}

fn random_cube() -> impl Strategy<Value = RandomCube> {
    (2usize..=3, 1u8..=2, 2u32..=3)
        .prop_flat_map(|(dims, depth, fanout)| {
            let card = fanout.pow(u32::from(depth));
            let tuple = (
                prop::collection::vec(0..card, dims),
                -5.0..5.0f64,
                -1.5..1.5f64,
            );
            (
                Just(dims),
                Just(depth),
                Just(fanout),
                prop::collection::vec(tuple, 1..40),
                0.0..2.0f64,
                1usize..9,
                0usize..4,
            )
        })
        .prop_map(
            |(dims, depth, fanout, tuples, threshold, chunk, shard_ix)| RandomCube {
                dims,
                depth,
                fanout,
                tuples,
                threshold,
                chunk,
                shards: [1, 2, 3, 7][shard_ix],
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The parity law itself, on random cubes: for any schema shape,
    /// data, threshold, batching and shard count, auto dispatch and
    /// forced scalar produce bit-identical cubes and deltas.
    #[test]
    fn kernel_dispatch_never_changes_a_bit(rc in random_cube()) {
        let schema = CubeSchema::synthetic(rc.dims, rc.depth, rc.fanout).unwrap();
        let layers = CriticalLayers::new(
            &schema,
            CuboidSpec::new(vec![0; rc.dims]),
            CuboidSpec::new(vec![rc.depth; rc.dims]),
        )
        .unwrap();
        let tuples: Vec<MTuple> = rc
            .tuples
            .iter()
            .map(|(ids, base, slope)| {
                MTuple::new(ids.clone(), Isb::new(0, 9, *base, *slope).unwrap())
            })
            .collect();
        let policy = ExceptionPolicy::slope_threshold(rc.threshold);
        let mut auto = ShardedEngine::with_factory(
            schema.clone(), layers.clone(), policy.clone(), rc.shards,
            |s, l, p| ColumnarCubingEngine::new(s, l, p)
                .map(|e| e.with_kernel_mode(KernelMode::Auto)),
        ).unwrap();
        let mut scalar = ShardedEngine::with_factory(
            schema, layers, policy, rc.shards,
            |s, l, p| ColumnarCubingEngine::new(s, l, p)
                .map(|e| e.with_kernel_mode(KernelMode::Scalar)),
        ).unwrap();
        for batch in tuples.chunks(rc.chunk) {
            let da = auto.ingest_unit(batch).unwrap();
            let ds = scalar.ingest_unit(batch).unwrap();
            deltas_eq("prop", &da, &ds);
        }
        results_bit_eq("prop", auto.result(), scalar.result());
        prop_assert_eq!(scalar.stats().rows_folded_simd, 0);
        let s = auto.stats();
        prop_assert_eq!(s.rows_folded, s.rows_folded_simd + s.rows_folded_scalar);
    }
}
