//! Frontier-dirty incremental drilling ≡ full step-3 replay.
//!
//! The [`PopularPathEngine`] retains per-cuboid exception frontiers and
//! drilled off-path tables across same-window batches, re-aggregating
//! only cuboids whose frontier changed (or whose qualifying region the
//! batch touched). These tests pin the incremental walk against the
//! full-replay baseline (`with_full_drill_replay`) **byte-for-byte** —
//! cells, exceptions and `UnitDelta`s — across same-window batches,
//! unit rollovers and shard counts {1, 2, 3, 7}, plus the retraction
//! law: a cleared frontier cell must retract its drilled descendants.

use proptest::prelude::*;
use regcube_core::engine::{CubingEngine, PopularPathEngine, UnitDelta};
use regcube_core::shard::ShardedEngine;
use regcube_core::table::CuboidTable;
use regcube_core::{CriticalLayers, CubeResult, ExceptionPolicy, MTuple};
use regcube_olap::{CubeSchema, CuboidSpec};
use regcube_regress::Isb;

fn setup() -> (CubeSchema, CriticalLayers, ExceptionPolicy) {
    let schema = CubeSchema::synthetic(2, 2, 2).unwrap();
    let layers = CriticalLayers::new(
        &schema,
        CuboidSpec::new(vec![0, 0]),
        CuboidSpec::new(vec![2, 2]),
    )
    .unwrap();
    (schema, layers, ExceptionPolicy::slope_threshold(0.4))
}

fn incremental(
    schema: &CubeSchema,
    layers: &CriticalLayers,
    policy: &ExceptionPolicy,
) -> PopularPathEngine {
    PopularPathEngine::new(schema.clone(), layers.clone(), policy.clone(), None).unwrap()
}

fn replay(
    schema: &CubeSchema,
    layers: &CriticalLayers,
    policy: &ExceptionPolicy,
) -> PopularPathEngine {
    incremental(schema, layers, policy).with_full_drill_replay()
}

/// Bitwise ISB equality (NaN-safe): the byte-identity the issue's
/// acceptance criterion demands, not an epsilon comparison.
fn isb_bits_eq(a: &Isb, b: &Isb) -> bool {
    a.interval() == b.interval()
        && a.base().to_bits() == b.base().to_bits()
        && a.slope().to_bits() == b.slope().to_bits()
}

fn tables_bit_eq(label: &str, a: &CuboidTable, b: &CuboidTable) {
    assert_eq!(a.len(), b.len(), "{label}: cell counts differ");
    for (key, m) in a {
        let other = b
            .get(key)
            .unwrap_or_else(|| panic!("{label}: cell {key} missing"));
        assert!(
            isb_bits_eq(m, other),
            "{label} {key}: {m} vs {other} (not bit-identical)"
        );
    }
}

/// Full-cube byte identity: critical layers, path tables, and the
/// complete exception stores.
fn cubes_bit_eq(label: &str, a: &CubeResult, b: &CubeResult) {
    tables_bit_eq(&format!("{label}/m"), a.m_table(), b.m_table());
    tables_bit_eq(&format!("{label}/o"), a.o_table(), b.o_table());
    assert_eq!(
        a.path_tables().len(),
        b.path_tables().len(),
        "{label}: path cuboid counts differ"
    );
    for (cuboid, table) in a.path_tables() {
        tables_bit_eq(
            &format!("{label}/path {cuboid}"),
            table,
            &b.path_tables()[cuboid],
        );
    }
    let collect = |cube: &CubeResult| -> std::collections::BTreeMap<
        (CuboidSpec, regcube_olap::cell::CellKey),
        Isb,
    > {
        cube.iter_exceptions()
            .map(|(c, k, m)| ((c.clone(), k.clone()), *m))
            .collect()
    };
    let (exc_a, exc_b) = (collect(a), collect(b));
    assert_eq!(
        exc_a.keys().collect::<Vec<_>>(),
        exc_b.keys().collect::<Vec<_>>(),
        "{label}: exception cell sets differ"
    );
    for (cell, m) in &exc_a {
        let other = &exc_b[cell];
        assert!(
            isb_bits_eq(m, other),
            "{label} exc {}{}: {m} vs {other} (not bit-identical)",
            cell.0,
            cell.1
        );
    }
}

fn deltas_eq(label: &str, a: &UnitDelta, b: &UnitDelta) {
    assert_eq!(a.unit, b.unit, "{label}: unit");
    assert_eq!(a.opened_unit, b.opened_unit, "{label}: opened_unit");
    assert_eq!(a.appeared, b.appeared, "{label}: appeared");
    assert_eq!(a.cleared, b.cleared, "{label}: cleared");
}

fn tuple(ids: [u32; 2], window: (i64, i64), slope: f64) -> MTuple {
    MTuple::new(
        ids.to_vec(),
        Isb::new(window.0, window.1, 1.0, slope).unwrap(),
    )
}

fn dense_batch(window: (i64, i64), scale: f64) -> Vec<MTuple> {
    let mut tuples = Vec::new();
    for a in 0..4u32 {
        for b in 0..4u32 {
            tuples.push(tuple([a, b], window, scale * (a + b) as f64 / 10.0));
        }
    }
    tuples
}

/// Feeds identical batches to both engines, asserting byte-identity
/// after every single batch.
fn run_both(
    batches: &[Vec<MTuple>],
    shards: Option<usize>,
) -> (Vec<(UnitDelta, UnitDelta)>, u64, u64) {
    let (schema, layers, policy) = setup();
    let mut deltas = Vec::new();
    let (replayed, skipped);
    match shards {
        None => {
            let mut inc = incremental(&schema, &layers, &policy);
            let mut rep = replay(&schema, &layers, &policy);
            for (i, batch) in batches.iter().enumerate() {
                let da = inc.ingest_unit(batch).unwrap();
                let db = rep.ingest_unit(batch).unwrap();
                deltas_eq(&format!("batch {i}"), &da, &db);
                cubes_bit_eq(&format!("batch {i}"), inc.result(), rep.result());
                deltas.push((da, db));
            }
            replayed = inc.stats().drill_replayed_cuboids;
            skipped = inc.stats().drill_skipped_cuboids;
        }
        Some(n) => {
            let mut inc = ShardedEngine::with_factory(
                schema.clone(),
                layers.clone(),
                policy.clone(),
                n,
                |s, l, p| PopularPathEngine::new(s, l, p, None),
            )
            .unwrap();
            let mut rep = ShardedEngine::with_factory(schema, layers, policy, n, |s, l, p| {
                PopularPathEngine::new(s, l, p, None).map(|e| e.with_full_drill_replay())
            })
            .unwrap();
            for (i, batch) in batches.iter().enumerate() {
                let da = inc.ingest_unit(batch).unwrap();
                let db = rep.ingest_unit(batch).unwrap();
                deltas_eq(&format!("n={n} batch {i}"), &da, &db);
                cubes_bit_eq(&format!("n={n} batch {i}"), inc.result(), rep.result());
                deltas.push((da, db));
            }
            replayed = inc.stats().drill_replayed_cuboids;
            skipped = inc.stats().drill_skipped_cuboids;
        }
    }
    (deltas, replayed, skipped)
}

#[test]
fn scripted_stream_is_bit_identical_across_rollovers() {
    let w0 = (0i64, 9i64);
    let w1 = (10i64, 19i64);
    // Slopes are summed by coarse aggregates (the apex sees the total),
    // so the dense background uses scale 0.05 (apex ≈ 0.24 < 0.4) and
    // exceptions come from targeted hot streams.
    let batches = vec![
        dense_batch(w0, 0.05),          // opens unit 0, quiet
        vec![tuple([0, 0], w0, 0.6)],   // new exception chain
        vec![tuple([3, 3], w0, 0.01)],  // quiet follow-up
        vec![tuple([0, 0], w0, -0.6)],  // cancels the hot chain
        dense_batch(w1, 0.05),          // rollover, quiet again
        vec![tuple([1, 2], w1, 0.9)],   // exception in unit 1
        vec![tuple([1, 2], w1, -0.85)], // ...and its retraction
        vec![tuple([3, 3], w1, 0.01)],  // quiet tail (skips; the
                                        // counters reset per unit)
    ];
    let (deltas, replayed, skipped) = run_both(&batches, None);
    assert!(
        deltas.iter().any(|(d, _)| !d.appeared.is_empty()),
        "the script must exercise appearing exceptions"
    );
    assert!(
        deltas.iter().any(|(d, _)| !d.cleared.is_empty()),
        "the script must exercise clearing exceptions"
    );
    assert!(replayed > 0, "some cuboids must have been re-drilled");
    assert!(skipped > 0, "some cuboids must have been reused verbatim");
}

#[test]
fn sharded_incremental_matches_sharded_replay_at_1_2_3_7() {
    let w0 = (0i64, 9i64);
    let w1 = (10i64, 19i64);
    let batches = vec![
        dense_batch(w0, 0.5),
        vec![tuple([0, 0], w0, 0.6), tuple([2, 1], w0, -0.5)],
        vec![tuple([0, 0], w0, -0.6)],
        dense_batch(w1, 0.3),
        vec![tuple([3, 0], w1, 1.1)],
    ];
    for n in [1usize, 2, 3, 7] {
        run_both(&batches, Some(n));
    }
}

#[test]
fn cleared_frontier_retracts_drilled_descendants() {
    let (schema, layers, policy) = setup();
    let mut engine = incremental(&schema, &layers, &policy);
    let w = (0i64, 9i64);

    // A lone hot stream: its whole ancestor chain is exceptional, so
    // off-path cuboids are drilled and retained.
    let d0 = engine
        .ingest_unit(&[tuple([0, 0], w, 0.6), tuple([3, 3], w, 0.01)])
        .unwrap();
    assert!(!d0.appeared.is_empty());
    assert!(engine.drill_state().drilled_cuboids() > 0, "chain drilled");
    assert!(engine.result().total_exception_cells() > 0);

    // A canceling sibling merges the chain back under the threshold:
    // every cleared frontier cell must retract its drilled subtree.
    let d1 = engine.ingest_unit(&[tuple([0, 0], w, -0.6)]).unwrap();
    assert!(
        !d1.cleared.is_empty(),
        "the hot chain must report cleared cells"
    );
    assert_eq!(
        engine.result().total_exception_cells(),
        0,
        "no exceptions survive the cancellation"
    );
    assert_eq!(
        engine.drill_state().drilled_cuboids(),
        0,
        "retained drilled tables must be retracted with their frontier"
    );
    for cuboid in engine.result().layers().lattice().enumerate() {
        if let Some(frontier) = engine.drill_state().frontier(&cuboid) {
            assert!(frontier.is_empty(), "stale frontier in {cuboid}");
        }
    }

    // And the verdict of the full replay agrees byte-for-byte.
    let mut rep = replay(&schema, &layers, &policy);
    rep.ingest_unit(&[tuple([0, 0], w, 0.6), tuple([3, 3], w, 0.01)])
        .unwrap();
    rep.ingest_unit(&[tuple([0, 0], w, -0.6)]).unwrap();
    cubes_bit_eq("retraction", engine.result(), rep.result());
}

#[test]
fn quiet_batches_skip_the_off_path_walk() {
    let (schema, layers, policy) = setup();
    let mut engine = incremental(&schema, &layers, &policy);
    let w = (0i64, 9i64);
    // Scale 0.05 keeps even the apex (which sums every stream's slope,
    // ≈ 0.24 here) below the 0.4 threshold: no exceptions anywhere.
    engine.ingest_unit(&dense_batch(w, 0.05)).unwrap();
    assert_eq!(engine.result().total_exception_cells(), 0);
    let replayed_after_open = engine.stats().drill_replayed_cuboids;
    assert_eq!(replayed_after_open, 0, "nothing qualifies at open");

    // Quiet same-window batches: nothing qualifies, nothing replays.
    for _ in 0..3 {
        engine.ingest_unit(&[tuple([3, 3], w, 0.01)]).unwrap();
    }
    assert_eq!(
        engine.stats().drill_replayed_cuboids,
        replayed_after_open,
        "quiet batches must not re-drill any cuboid"
    );
    assert!(
        engine.stats().drill_skipped_cuboids > 0,
        "quiet batches must count their skipped cuboids"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// Random same-window/rollover batch sequences: the incremental
    /// engine and the full replay agree byte-for-byte on every cube and
    /// every delta, unsharded and at shard counts 2, 3 and 7.
    #[test]
    fn random_streams_are_bit_identical(
        // Each step: (cell index 0..16, slope, rollover die — 0 rolls
        // the window over, ~1 in 4).
        steps in prop::collection::vec(
            (0usize..16, -1.5..1.5f64, 0u8..4),
            1..12,
        ),
    ) {
        // Group the steps into batches: a rollover flag opens a new
        // window for the step and everything after it.
        let mut batches: Vec<Vec<MTuple>> = Vec::new();
        let mut window = (0i64, 9i64);
        // The first batch must populate the window densely enough to be
        // interesting; later batches are single-cell deltas.
        batches.push(dense_batch(window, 0.9));
        for &(cell, slope, die) in &steps {
            if die == 0 {
                window = (window.0 + 10, window.1 + 10);
                batches.push(dense_batch(window, slope));
            } else {
                let ids = [(cell / 4) as u32, (cell % 4) as u32];
                batches.push(vec![tuple(ids, window, slope)]);
            }
        }
        run_both(&batches, None);
        for n in [2usize, 3, 7] {
            run_both(&batches, Some(n));
        }
    }
}
