//! Property tests of the cubing algorithms on random small cubes: the
//! exception stores must equal brute-force aggregation from the m-layer,
//! regardless of data, threshold or schema shape.

use proptest::prelude::*;
use regcube_core::arena::{ChunkPool, KeyId, KeyInterner};
use regcube_core::prelude::*;
use regcube_core::query;
use regcube_core::table::{aggregate_from, DenseCellCodec};
use regcube_olap::cell::CellKey;
use regcube_olap::{CubeSchema, CuboidSpec};
use regcube_regress::Isb;
use std::collections::BTreeSet;

#[derive(Debug, Clone)]
struct RandomCube {
    dims: usize,
    depth: u8,
    fanout: u32,
    tuples: Vec<(Vec<u32>, f64, f64)>, // ids, base, slope
    threshold: f64,
}

fn random_cube() -> impl Strategy<Value = RandomCube> {
    (2usize..=3, 1u8..=2, 2u32..=3)
        .prop_flat_map(|(dims, depth, fanout)| {
            let card = fanout.pow(u32::from(depth));
            let tuple = (
                prop::collection::vec(0..card, dims),
                -5.0..5.0f64,
                -1.5..1.5f64,
            );
            (
                Just(dims),
                Just(depth),
                Just(fanout),
                prop::collection::vec(tuple, 1..40),
                0.0..2.0f64,
            )
        })
        .prop_map(|(dims, depth, fanout, tuples, threshold)| RandomCube {
            dims,
            depth,
            fanout,
            tuples,
            threshold,
        })
}

fn build(rc: &RandomCube) -> (CubeSchema, CriticalLayers, Vec<MTuple>, ExceptionPolicy) {
    let schema = CubeSchema::synthetic(rc.dims, rc.depth, rc.fanout).unwrap();
    let layers = CriticalLayers::new(
        &schema,
        CuboidSpec::new(vec![0; rc.dims]),
        CuboidSpec::new(vec![rc.depth; rc.dims]),
    )
    .unwrap();
    // Duplicate ids are fine: the m-layer build merges them (Thm 3.2).
    let tuples: Vec<MTuple> = rc
        .tuples
        .iter()
        .map(|(ids, base, slope)| MTuple::new(ids.clone(), Isb::new(0, 9, *base, *slope).unwrap()))
        .collect();
    let policy = ExceptionPolicy::slope_threshold(rc.threshold);
    (schema, layers, tuples, policy)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// m/o-cubing's exception stores equal brute-force aggregation +
    /// filtering from the m-layer, for every between-cuboid.
    #[test]
    fn mo_cubing_equals_brute_force(rc in random_cube()) {
        let (schema, layers, tuples, policy) = build(&rc);
        let cube = mo_cubing::compute(&schema, &layers, &policy, &tuples).unwrap();

        for cuboid in layers.lattice().enumerate() {
            if cuboid == *layers.m_layer() || cuboid == *layers.o_layer() {
                continue;
            }
            let (full, _) = aggregate_from(
                &schema, layers.m_layer(), cube.m_table(), &cuboid, None,
            ).unwrap();
            let expected: BTreeSet<CellKey> = full
                .iter()
                .filter(|(_, m)| policy.is_exception(&cuboid, m))
                .map(|(k, _)| k.clone())
                .collect();
            let got: BTreeSet<CellKey> = cube
                .exceptions_in(&cuboid)
                .map(|t| t.keys().cloned().collect())
                .unwrap_or_default();
            prop_assert_eq!(&got, &expected, "cuboid {}", cuboid);
            if let Some(table) = cube.exceptions_in(&cuboid) {
                for (k, m) in table {
                    prop_assert!(m.approx_eq(&full[k], 1e-7));
                }
            }
        }
    }

    /// Popular-path exceptions are always a subset of m/o-cubing's, with
    /// identical measures where both retain a cell.
    #[test]
    fn popular_path_subset_of_mo(rc in random_cube()) {
        let (schema, layers, tuples, policy) = build(&rc);
        let a1 = mo_cubing::compute(&schema, &layers, &policy, &tuples).unwrap();
        let a2 = popular_path::compute(&schema, &layers, &policy, None, &tuples).unwrap();

        prop_assert!(a2.total_exception_cells() <= a1.total_exception_cells());
        for (cuboid, key, isb2) in a2.iter_exceptions() {
            let isb1 = a1.exceptions_in(cuboid).and_then(|t| t.get(key));
            prop_assert!(isb1.is_some(), "A2-only exception {}{}", cuboid, key);
            prop_assert!(isb1.unwrap().approx_eq(isb2, 1e-7));
        }
    }

    /// The two algorithms agree exactly on both critical layers.
    #[test]
    fn critical_layers_agree(rc in random_cube()) {
        let (schema, layers, tuples, policy) = build(&rc);
        let a1 = mo_cubing::compute(&schema, &layers, &policy, &tuples).unwrap();
        let a2 = popular_path::compute(&schema, &layers, &policy, None, &tuples).unwrap();

        prop_assert_eq!(a1.m_layer_cells(), a2.m_layer_cells());
        for (k, m1) in a1.m_table() {
            let m2 = a2.m_table().get(k).expect("same m-layer");
            prop_assert!(m1.approx_eq(m2, 1e-9));
        }
        prop_assert_eq!(a1.o_layer_cells(), a2.o_layer_cells());
        for (k, m1) in a1.o_table() {
            let m2 = a2.o_table().get(k).expect("same o-layer");
            prop_assert!(m1.approx_eq(m2, 1e-6), "{}: {} vs {}", k, m1, m2);
        }
    }

    /// On-the-fly point queries equal the (retained or recomputed) truth
    /// for every cell of every cuboid.
    #[test]
    fn on_the_fly_queries_are_exact(rc in random_cube()) {
        let (schema, layers, tuples, policy) = build(&rc);
        let cube = mo_cubing::compute(&schema, &layers, &policy, &tuples).unwrap();
        for cuboid in layers.lattice().enumerate() {
            let (full, _) = aggregate_from(
                &schema, layers.m_layer(), cube.m_table(), &cuboid, None,
            ).unwrap();
            for (key, want) in &full {
                let got = query::cell_measure(&schema, &cube, &cuboid, key)
                    .unwrap()
                    .expect("cell is non-empty");
                prop_assert!(got.approx_eq(want, 1e-7), "{}{}", cuboid, key);
            }
        }
    }

    /// Sharded cubing is exact: for every shard count, hash-partitioned
    /// parallel cubing + Theorem 3.2 merge retains the same critical
    /// layers and the same exception set (with matching measures) as
    /// the unsharded batch computation — whether the unit arrives as
    /// one batch or as incremental same-window chunks.
    #[test]
    fn sharded_cubing_equals_unsharded(rc in random_cube()) {
        let (schema, layers, tuples, policy) = build(&rc);
        let reference = mo_cubing::compute(&schema, &layers, &policy, &tuples).unwrap();
        for shards in [1usize, 2, 3, 7] {
            let mut engine = ShardedEngine::mo_cubing(
                schema.clone(), layers.clone(), policy.clone(), shards,
            ).unwrap();
            // Chunk size varies with the data so chunking is exercised
            // across cases; every chunk shares the window.
            let chunk = 1 + rc.tuples.len() % 9;
            for batch in tuples.chunks(chunk) {
                engine.ingest_unit(batch).unwrap();
            }
            let cube = engine.result();
            prop_assert_eq!(cube.m_layer_cells(), reference.m_layer_cells());
            for (k, m) in reference.m_table() {
                let got = cube.m_table().get(k).expect("same m-layer");
                prop_assert!(got.approx_eq(m, 1e-7), "shards {}: m {}", shards, k);
            }
            for (k, m) in reference.o_table() {
                let got = cube.o_table().get(k).expect("same o-layer");
                prop_assert!(got.approx_eq(m, 1e-6), "shards {}: o {}", shards, k);
            }
            prop_assert_eq!(
                cube.total_exception_cells(),
                reference.total_exception_cells(),
                "shards {}", shards
            );
            for (cuboid, key, m) in reference.iter_exceptions() {
                let got = cube.exceptions_in(cuboid).and_then(|t| t.get(key));
                prop_assert!(got.is_some(), "shards {}: missing {}{}", shards, cuboid, key);
                prop_assert!(got.unwrap().approx_eq(m, 1e-6));
            }
        }
    }

    /// Dense cell-id codec round-trips right up against the u64
    /// overflow guard: the largest radix combinations whose cell space
    /// still fits a u64 encode/decode exactly, and the first ones past
    /// the boundary are rejected at construction.
    ///
    /// `floor(u64::MAX^(1/3)) = 2642245` (three dims at depth 1, radix =
    /// fanout) and `floor(u64::MAX^(1/6)) = 1625` (three dims at depth
    /// 2, radix = fanout²) are the exact guard edges these strategies
    /// straddle.
    #[test]
    fn codec_round_trips_adjacent_to_the_overflow_guard(
        kind in 0usize..4,
        offset in 0u32..50,
        fractions in prop::collection::vec(0.0..1.0f64, 3),
    ) {
        // (dims, depth, fanout, fits): up to 50 radix steps on each
        // side of both guard boundaries.
        let (dims, depth, fanout, fits) = match kind {
            0 => (3usize, 1u8, 2_642_245 - offset, true),
            1 => (3, 1, 2_642_246 + offset, false),
            2 => (3, 2, 1_625 - offset.min(800), true),
            _ => (3, 2, 1_626 + offset, false),
        };
        let schema = CubeSchema::synthetic(dims, depth, fanout).unwrap();
        let finest = CuboidSpec::new(vec![depth; dims]);
        let codec = DenseCellCodec::new(&schema, &finest);
        if !fits {
            prop_assert!(codec.is_err(), "radix^{dims} past u64 must be rejected");
            return Ok(());
        }
        let codec = codec.unwrap();
        let card = u64::from(fanout).pow(u32::from(depth));
        // Member ids spread across the full radix range, including the
        // extremes of every dimension.
        let mut keys: Vec<Vec<u32>> = vec![
            vec![0; dims],
            vec![(card - 1) as u32; dims],
        ];
        keys.push(
            (0..dims)
                .map(|d| ((fractions[d % fractions.len()] * card as f64) as u64).min(card - 1) as u32)
                .collect(),
        );
        let mut out = vec![0u32; dims];
        for ids in &keys {
            let id = codec.encode(ids);
            codec.decode_into(id, &mut out);
            prop_assert_eq!(&out, ids, "round trip at radix {}", fanout);
        }
        // The extreme cell encodes to exactly card^dims - 1: the codec
        // uses the whole dense range and nothing outside it.
        prop_assert_eq!(codec.encode(&keys[1]), card.pow(dims as u32) - 1);
    }

    /// Arena interner laws: interning is a pure function of the id
    /// slice within an epoch (same ids ⇒ same `KeyId`, distinct ids ⇒
    /// distinct `KeyId`s, resolve is the inverse), and an epoch reset
    /// invalidates nothing still reachable — every handle issued after
    /// the reset keeps resolving correctly no matter how much more is
    /// interned on top.
    #[test]
    fn interner_laws_hold(
        arity in 1usize..=4,
        first in prop::collection::vec(prop::collection::vec(0u32..40, 4), 1..50),
        second in prop::collection::vec(prop::collection::vec(0u32..40, 4), 1..50),
    ) {
        let mut interner = KeyInterner::new(arity, ChunkPool::shared());
        let mut seen: Vec<(Vec<u32>, KeyId)> = Vec::new();
        for key in &first {
            let ids = &key[..arity];
            let (id, fresh) = interner.intern(ids);
            let known = seen.iter().find(|(k, _)| k == ids).map(|&(_, id)| id);
            match known {
                Some(prior) => {
                    prop_assert!(!fresh, "duplicate ids reported fresh");
                    prop_assert_eq!(id, prior, "same ids must yield the same KeyId");
                }
                None => {
                    prop_assert!(fresh, "new ids reported stale");
                    seen.push((ids.to_vec(), id));
                }
            }
        }
        // Every issued handle still resolves to exactly its ids.
        for (ids, id) in &seen {
            prop_assert_eq!(interner.resolve(*id), &ids[..]);
        }
        prop_assert_eq!(interner.len(), seen.len());

        // Epoch reset: the new epoch starts empty, and handles issued
        // after the reset stay valid while the epoch fills up.
        interner.reset();
        prop_assert!(interner.is_empty());
        let mut reissued: Vec<(Vec<u32>, KeyId)> = Vec::new();
        for key in &second {
            let ids = &key[..arity];
            let (id, _) = interner.intern(ids);
            if !reissued.iter().any(|(k, _)| k == ids) {
                reissued.push((ids.to_vec(), id));
            }
            // Nothing reachable was invalidated by interning more.
            for (prior_ids, prior_id) in &reissued {
                prop_assert_eq!(interner.resolve(*prior_id), &prior_ids[..]);
            }
        }
    }

    /// The o-layer's total (apex view through any cuboid) conserves the
    /// m-layer's summed slope — Theorem 3.2 applied transitively.
    #[test]
    fn slope_mass_is_conserved(rc in random_cube()) {
        let (schema, layers, tuples, policy) = build(&rc);
        let cube = mo_cubing::compute(&schema, &layers, &policy, &tuples).unwrap();
        let m_total: f64 = cube.m_table().values().map(Isb::slope).sum();
        for cuboid in layers.lattice().enumerate() {
            let (full, _) = aggregate_from(
                &schema, layers.m_layer(), cube.m_table(), &cuboid, None,
            ).unwrap();
            let total: f64 = full.values().map(Isb::slope).sum();
            prop_assert!((total - m_total).abs() < 1e-6 * (1.0 + m_total.abs()),
                "cuboid {} total {} vs {}", cuboid, total, m_total);
        }
    }
}
