//! Sharded parallel cubing: partition the m-layer across N engines.
//!
//! Theorem 3.2 makes ISB aggregation **linear**, so cube construction is
//! embarrassingly partitionable: split a unit's m-layer tuples into
//! disjoint groups, cube each group independently, and every cell of the
//! merged cube is the sibling-merge of the per-shard cells — exactly the
//! value a single engine would have computed. [`ShardedEngine`] realizes
//! that: it hash-partitions each batch by m-layer [`CellKey`] across `N`
//! inner [`CubingEngine`]s, runs their `ingest_unit`s concurrently on a
//! [`WorkerPool`], and merges the per-shard [`CubeResult`]s (and
//! [`UnitDelta`]s) back in **deterministic shard order**. The merge
//! itself is parallel too: each cuboid's tables are independent, so they
//! are merged and screened as separate pool jobs.
//!
//! # Exactness
//!
//! A cell above the m-layer aggregates tuples from *several* shards, so
//! no shard can judge exceptionality on its own (two sub-threshold shard
//! partials may merge into an exception, and vice versa). The sharded
//! engine therefore makes its inner engines retain **every**
//! between-layer cell and screens exceptions *after* the merge with the
//! real policy — which is precisely Algorithm 1's definition (compute
//! every between-layer cell, retain the exceptional ones). Engines that
//! keep full between-layer tables anyway (incremental-mode
//! [`MoCubingEngine`], detected via
//! [`CubingEngine::full_between_tables`]) run with a no-op policy and
//! zero extra retention; others (e.g. [`PopularPathEngine`]) run under
//! [`ExceptionPolicy::always`] so their exception stores carry the full
//! tables to the merge. Consequently:
//!
//! * `ShardedEngine<MoCubingEngine>` produces the **same cube** as an
//!   unsharded [`MoCubingEngine`] for every shard count (the contract
//!   tests pin n ∈ {1, 2, 3, 7});
//! * `ShardedEngine<PopularPathEngine>` keeps the critical layers and
//!   path tables exact, but its exception set is Algorithm 1's — a
//!   superset of the unsharded engine's drilled set (the footnote-7
//!   invariant, now from the other side). With a single shard the inner
//!   engine runs the real policy unmodified, so `n = 1` is a true
//!   passthrough for *any* engine.
//!
//! Popular-path shards carry their own frontier-dirty drill state
//! (`regcube_core::popular_path::DrillFrontier`): each shard's
//! frontiers are invalidated by exactly the batches its partition
//! receives, and the merged [`UnitDelta`] is re-derived here by
//! diffing the *merged* exception stores before and after the batch —
//! never by trusting a shard's local frontier, which only sees its own
//! partition of the data. The per-shard `drill_replayed_cuboids` /
//! `drill_skipped_cuboids` counters sum into the merged [`RunStats`],
//! so the step-3 savings stay observable at every shard count (the
//! contract tests pin incremental ≡ full-replay shards at n ∈
//! {1, 2, 3, 7}).
//!
//! # Topology
//!
//! The shard pool is the system's parallelism backbone: shard-level
//! `ingest_unit` calls and per-cuboid merge jobs run on it, and the
//! inner engines are built **without** pools of their own (see the
//! nesting rule in [`crate::pool`]). An *unsharded* [`MoCubingEngine`]
//! may instead take a pool via [`MoCubingEngine::with_pool`] to
//! parallelize its per-tier roll-up — the two strategies compose with
//! the same primitives but are never nested.

use crate::engine::{batch_window, empty_result, CubingEngine, UnitDelta};
use crate::exception::ExceptionPolicy;
use crate::layers::CriticalLayers;
use crate::measure::{merge_sibling, validate_tuples, MTuple};
use crate::pool::{self, WorkerPool};
use crate::result::{Algorithm, CubeResult};
use crate::stats::RunStats;
use crate::table::{table_bytes, CuboidTable};
use crate::{MoCubingEngine, PopularPathEngine, Result};
use regcube_olap::cell::CellKey;
use regcube_olap::fxhash::{FxHashMap, FxHashSet, FxHasher};
use regcube_olap::{CubeSchema, CuboidSpec};
use std::collections::BTreeSet;
use std::hash::{Hash, Hasher};
use std::sync::{Arc, RwLock};
use std::time::Instant;

/// A cubing engine that partitions every batch across `N` inner engines
/// and merges their cubes under Theorem 3.2 linearity.
///
/// Implements [`CubingEngine`] itself, so it slots in wherever a single
/// engine does — the online stream engine, the bench harness, the batch
/// wrappers. See the module docs for the exactness contract.
pub struct ShardedEngine<E: CubingEngine + Send + Sync + 'static> {
    schema: Arc<CubeSchema>,
    layers: CriticalLayers,
    /// The *real* policy — inner shards retain everything; this screens
    /// the merged cube.
    policy: Arc<ExceptionPolicy>,
    /// Writer lock for `ingest_unit`, shared readers for the merge.
    shards: Vec<Arc<RwLock<E>>>,
    /// Window of the last batch each shard successfully ingested. Only
    /// shards on the current window join the merge: a shard whose key
    /// range was silent across a rollover still holds the old unit's
    /// cube and must not leak it into the new window.
    shard_windows: Vec<Option<(i64, i64)>>,
    /// Rebuilds one inner engine (with `inner_policy`) — used to reset
    /// shards that advanced into a window whose rollover then failed,
    /// so a retried batch never double-folds (the trait's "failed
    /// rollover leaves no half-open window" contract).
    #[allow(clippy::type_complexity)]
    factory: Arc<dyn Fn(CubeSchema, CriticalLayers, ExceptionPolicy) -> Result<E> + Send + Sync>,
    /// The policy the inner engines actually run (see
    /// [`with_factory`](Self::with_factory)).
    inner_policy: ExceptionPolicy,
    pool: Arc<WorkerPool>,
    algorithm: Algorithm,
    window: Option<(i64, i64)>,
    units_opened: u64,
    stats: RunStats,
    result: CubeResult,
}

impl<E: CubingEngine + Send + Sync + 'static> std::fmt::Debug for ShardedEngine<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedEngine")
            .field("shards", &self.shards.len())
            .field("algorithm", &self.algorithm)
            .field("window", &self.window)
            .field("units_opened", &self.units_opened)
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

impl ShardedEngine<MoCubingEngine> {
    /// Sharded Algorithm 1. Produces the same cube as one unsharded
    /// engine for any `shards`: a single shard is a transient-mode
    /// passthrough; more shards run incremental-mode engines whose
    /// retained between-layer tables feed the merge directly.
    ///
    /// # Errors
    /// Construction errors of the inner engines.
    pub fn mo_cubing(
        schema: CubeSchema,
        layers: CriticalLayers,
        policy: ExceptionPolicy,
        shards: usize,
    ) -> Result<Self> {
        if shards <= 1 {
            Self::with_factory(schema, layers, policy, 1, MoCubingEngine::transient)
        } else {
            Self::with_factory(schema, layers, policy, shards, MoCubingEngine::new)
        }
    }
}

impl ShardedEngine<PopularPathEngine> {
    /// Sharded Algorithm 2: `shards` [`PopularPathEngine`]s on their
    /// default paths. Critical layers and path tables are exact; with
    /// more than one shard the exception set follows Algorithm 1's
    /// definition (see the module docs).
    ///
    /// # Errors
    /// Construction errors of the inner engines.
    pub fn popular_path(
        schema: CubeSchema,
        layers: CriticalLayers,
        policy: ExceptionPolicy,
        shards: usize,
    ) -> Result<Self> {
        Self::with_factory(schema, layers, policy, shards, |schema, layers, policy| {
            PopularPathEngine::new(schema, layers, policy, None)
        })
    }
}

impl ShardedEngine<crate::columnar::ColumnarCubingEngine> {
    /// Sharded Algorithm 1 on the columnar backend
    /// ([`crate::columnar::ColumnarCubingEngine`]). The columnar engine
    /// keeps no between-layer tables across batches, so with more than
    /// one shard the inner engines run under the always-retain fallback
    /// (their exception stores carry every computed cell to the merge)
    /// and the merged cube is screened with the real policy — identical
    /// to the row backend at every shard count, pinned by the contract
    /// and golden suites.
    ///
    /// # Errors
    /// Construction errors of the inner engines.
    pub fn columnar(
        schema: CubeSchema,
        layers: CriticalLayers,
        policy: ExceptionPolicy,
        shards: usize,
    ) -> Result<Self> {
        Self::with_factory(
            schema,
            layers,
            policy,
            shards,
            crate::columnar::ColumnarCubingEngine::new,
        )
    }
}

impl ShardedEngine<crate::arena::ArenaCubingEngine> {
    /// Sharded Algorithm 1 on the arena backend
    /// ([`crate::arena::ArenaCubingEngine`]). Like the columnar engine,
    /// the arena engine keeps no between-layer row tables across batches
    /// (its working set is the recycled arena capacity), so with more
    /// than one shard the inner engines run under the always-retain
    /// fallback and the merged cube is screened with the real policy —
    /// identical to the row backend at every shard count, pinned by the
    /// contract and golden suites. The per-shard arena counters sum in
    /// the merged [`RunStats`].
    ///
    /// # Errors
    /// Construction errors of the inner engines.
    pub fn arena(
        schema: CubeSchema,
        layers: CriticalLayers,
        policy: ExceptionPolicy,
        shards: usize,
    ) -> Result<Self> {
        Self::with_factory(
            schema,
            layers,
            policy,
            shards,
            crate::arena::ArenaCubingEngine::new,
        )
    }
}

impl<E: CubingEngine + Send + Sync + 'static> ShardedEngine<E> {
    /// Builds a sharded engine over `shards` inner engines produced by
    /// `make` (clamped to at least 1).
    ///
    /// With one shard `make` receives the real `policy` (true
    /// passthrough). With more, the inner policy depends on a probe of
    /// the engine's [`full_between_tables`] capability: engines that
    /// retain every between-layer table get [`ExceptionPolicy::never`]
    /// (the merge reads the tables directly), the rest get
    /// [`ExceptionPolicy::always`] so their exception stores carry
    /// every computed cell to the post-merge screen.
    ///
    /// [`full_between_tables`]: CubingEngine::full_between_tables
    ///
    /// # Errors
    /// Whatever `make` returns.
    pub fn with_factory(
        schema: CubeSchema,
        layers: CriticalLayers,
        policy: ExceptionPolicy,
        shards: usize,
        make: impl Fn(CubeSchema, CriticalLayers, ExceptionPolicy) -> Result<E> + Send + Sync + 'static,
    ) -> Result<Self> {
        let shards = shards.max(1);
        let inner_policy = if shards == 1 {
            policy.clone()
        } else {
            let probe = make(schema.clone(), layers.clone(), ExceptionPolicy::never())?;
            if probe.full_between_tables().is_some() {
                ExceptionPolicy::never()
            } else {
                ExceptionPolicy::always()
            }
        };
        let engines: Vec<Arc<RwLock<E>>> = (0..shards)
            .map(|_| {
                make(schema.clone(), layers.clone(), inner_policy.clone())
                    .map(|e| Arc::new(RwLock::new(e)))
            })
            .collect::<Result<_>>()?;
        let algorithm = read(&engines[0]).algorithm();
        let result = empty_result(&layers, &policy, algorithm);
        Ok(ShardedEngine {
            schema: Arc::new(schema),
            layers,
            policy: Arc::new(policy),
            shard_windows: vec![None; shards],
            factory: Arc::new(make),
            inner_policy,
            pool: Arc::new(WorkerPool::new(shards.min(pool::default_threads()))),
            shards: engines,
            algorithm,
            window: None,
            units_opened: 0,
            stats: RunStats::default(),
            result,
        })
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Runs the per-unit shard fans and per-cuboid merges on `pool`
    /// instead of a private pool — the multiplexing seam for serving
    /// layers that host many tenant engines over one bounded worker set
    /// (thousands of tenants must not mean thousands of threads; see
    /// `regcube_serve`).
    ///
    /// The pool is used via [`WorkerPool::run`] from the thread calling
    /// [`ingest_unit`](CubingEngine::ingest_unit), so the usual nesting
    /// rule applies: never share the same pool that *dispatches* work
    /// to this engine (a pool job that blocks on its own queue can
    /// deadlock) — give the cubing layer its own shared pool, distinct
    /// from any dispatch pool above it.
    #[must_use]
    pub fn with_shared_pool(mut self, pool: Arc<WorkerPool>) -> Self {
        self.pool = pool;
        self
    }

    /// The critical layers the engine cubes for.
    pub fn layers(&self) -> &CriticalLayers {
        &self.layers
    }

    /// Consumes the engine, returning the final merged cube result.
    pub fn into_result(self) -> CubeResult {
        self.result
    }

    /// Partitions a validated batch by hashing each tuple's m-layer key.
    /// The hash is [`FxHasher`] — deterministic across runs and
    /// processes, so a key always lands on the same shard.
    fn partition(&self, tuples: &[MTuple]) -> Vec<Vec<MTuple>> {
        let n = self.shards.len();
        let mut parts: Vec<Vec<MTuple>> = (0..n).map(|_| Vec::new()).collect();
        for t in tuples {
            parts[shard_of(t.ids(), n)].push(t.clone());
        }
        parts
    }

    /// Runs every non-empty partition's `ingest_unit` concurrently on
    /// the pool and applies the per-shard deltas in shard order.
    ///
    /// On a partial failure during a **rollover** batch, the shards
    /// that already advanced into the failed window are rebuilt empty
    /// (via the stored factory) before the error propagates, so the
    /// engine honors the trait contract — a failed rollover leaves no
    /// half-open window, and a retried batch re-ingests every
    /// partition from scratch instead of double-folding the ones that
    /// had succeeded.
    fn ingest_partitions(
        &mut self,
        parts: Vec<Vec<MTuple>>,
        window: (i64, i64),
        delta: &mut UnitDelta,
    ) -> Result<()> {
        let tasks: Vec<_> = parts
            .into_iter()
            .enumerate()
            .filter(|(_, part)| !part.is_empty())
            .map(|(i, part)| {
                let shard = Arc::clone(&self.shards[i]);
                move || {
                    let mut engine = shard.write().unwrap_or_else(|e| e.into_inner());
                    engine.ingest_unit(&part).map(|d| (i, d))
                }
            })
            .collect();
        let mut first_err = None;
        for outcome in self.pool.run(tasks) {
            match outcome {
                Ok((i, shard_delta)) => {
                    self.shard_windows[i] = Some(window);
                    delta.cells_touched += shard_delta.cells_touched;
                }
                Err(e) => first_err = first_err.or(Some(e)),
            }
        }
        let Some(err) = first_err else {
            return Ok(());
        };
        if self.window != Some(window) {
            // Failed rollover: reset every shard that advanced. (A
            // same-window partial failure matches the single-engine
            // contract instead: the fold is partial until the next
            // successful batch, and no window committed.)
            for i in 0..self.shards.len() {
                if self.shard_windows[i] == Some(window) {
                    let fresh = (self.factory)(
                        (*self.schema).clone(),
                        self.layers.clone(),
                        self.inner_policy.clone(),
                    )?;
                    self.shards[i] = Arc::new(RwLock::new(fresh));
                    self.shard_windows[i] = None;
                }
            }
        }
        Err(err)
    }

    /// Shard indices whose cube belongs to the current `window`.
    fn active_shards(&self, window: (i64, i64)) -> Vec<usize> {
        (0..self.shards.len())
            .filter(|&i| self.shard_windows[i] == Some(window))
            .collect()
    }

    /// Merges the cubes of every shard on the current window and screens
    /// exceptions with the real policy. Tables of different cuboids are
    /// independent, so each [`MergeKey`] is merged as its own pool job;
    /// within a job shards merge in index order, and the key set is
    /// collected into a [`BTreeSet`] — both deterministic, so the merged
    /// measures never depend on scheduling. Also refreshes the merged
    /// statistics.
    fn merge_shards(&mut self, window: (i64, i64)) -> Result<()> {
        let dims = self.schema.num_dims();
        let active = Arc::new(self.active_shards(window));

        // The union of table keys across active shards, in stable order.
        let mut keys: BTreeSet<MergeKey> = BTreeSet::new();
        keys.insert(MergeKey::M);
        keys.insert(MergeKey::O);
        let mut stats = RunStats::default();
        for &i in active.iter() {
            let engine = read(&self.shards[i]);
            let result = engine.result();
            match engine.full_between_tables() {
                Some(tables) => keys.extend(tables.keys().cloned().map(MergeKey::Between)),
                None => keys.extend(
                    result
                        .exceptions_map()
                        .keys()
                        .cloned()
                        .map(MergeKey::Between),
                ),
            }
            keys.extend(result.path_tables().keys().cloned().map(MergeKey::Path));

            let s = engine.stats();
            stats.rows_folded += s.rows_folded;
            stats.rows_folded_simd += s.rows_folded_simd;
            stats.rows_folded_scalar += s.rows_folded_scalar;
            stats.cells_computed += s.cells_computed;
            stats.cuboids_computed = stats.cuboids_computed.max(s.cuboids_computed);
            // Each shard drills its own partition's cube, so the
            // frontier-replay counters sum: the merged figures report
            // total step-3 work (and total reuse) across the partition.
            stats.drill_replayed_cuboids += s.drill_replayed_cuboids;
            stats.drill_skipped_cuboids += s.drill_skipped_cuboids;
            // Arena counters sum like the fold counters: each shard
            // interns and reclaims over its own partition of the cube.
            stats.keys_interned += s.keys_interned;
            stats.epochs_reclaimed += s.epochs_reclaimed;
            stats.arena_alloc_calls += s.arena_alloc_calls;
            stats.arena_chunks_recycled += s.arena_chunks_recycled;
            stats.late_dropped += s.late_dropped;
            stats.late_amendments += s.late_amendments;
            stats.watermark_held_units += s.watermark_held_units;
            stats.sources_evicted += s.sources_evicted;
            // Serving counters sum like the stream counters: each shard
            // would report its own share (inner engines leave them zero
            // today — the stream/serving layers fill them in above the
            // shard merge).
            stats.snapshots_published += s.snapshots_published;
            stats.snapshot_reads += s.snapshot_reads;
            stats.overload_rejections += s.overload_rejections;
            stats.arena_bytes_retained += s.arena_bytes_retained;
            // Upper bound of the concurrent high-water mark: every shard
            // could hit its peak at the same instant.
            stats.peak_bytes += s.peak_bytes;
        }

        // Fan the per-cuboid merges out; results return in key order.
        // (Only the multi-shard path reaches here — a single shard is
        // the passthrough in `ingest_unit`.)
        let shard_list = Arc::new(self.shards.clone());
        let tasks: Vec<_> = keys
            .into_iter()
            .map(|key| {
                let shards = Arc::clone(&shard_list);
                let active = Arc::clone(&active);
                let policy = Arc::clone(&self.policy);
                move || merge_one_key(key, &shards, &active, &policy)
            })
            .collect();
        let merged = self.pool.run(tasks);

        let mut m_table = CuboidTable::default();
        let mut o_table = CuboidTable::default();
        let mut exceptions: FxHashMap<CuboidSpec, CuboidTable> = FxHashMap::default();
        let mut path_tables: FxHashMap<CuboidSpec, CuboidTable> = FxHashMap::default();
        for item in merged {
            let (key, table) = item?;
            match key {
                MergeKey::M => m_table = table,
                MergeKey::O => o_table = table,
                MergeKey::Between(cuboid) => {
                    if !table.is_empty() {
                        exceptions.insert(cuboid, table);
                    }
                }
                MergeKey::Path(cuboid) => {
                    path_tables.insert(cuboid, table);
                }
            }
        }

        stats.exception_cells = exceptions.values().map(|t| t.len() as u64).sum();
        stats.cells_retained = m_table.len() as u64
            + o_table.len() as u64
            + stats.exception_cells
            + path_tables.values().map(|t| t.len() as u64).sum::<u64>();
        stats.retained_bytes = table_bytes(&m_table, dims)
            + table_bytes(&o_table, dims)
            + exceptions
                .values()
                .map(|t| table_bytes(t, dims))
                .sum::<usize>()
            + path_tables
                .values()
                .map(|t| table_bytes(t, dims))
                .sum::<usize>();
        stats.elapsed = self.stats.elapsed;
        self.stats = stats;
        self.result = CubeResult::new(
            self.layers.clone(),
            (*self.policy).clone(),
            self.algorithm,
            m_table,
            o_table,
            exceptions,
            path_tables,
            self.stats,
        );
        Ok(())
    }

    /// All retained between-layer exception cells of the merged cube.
    fn exception_cells(&self) -> FxHashSet<(CuboidSpec, CellKey)> {
        self.result
            .iter_exceptions()
            .map(|(c, k, _)| (c.clone(), k.clone()))
            .collect()
    }
}

impl<E: CubingEngine + Send + Sync + 'static> CubingEngine for ShardedEngine<E> {
    fn algorithm(&self) -> Algorithm {
        self.algorithm
    }

    fn ingest_unit(&mut self, tuples: &[MTuple]) -> Result<UnitDelta> {
        validate_tuples(&self.schema, self.layers.lattice().m_layer(), tuples)?;
        let started = Instant::now();
        let window = batch_window(tuples);
        let opened_unit = self.window != Some(window);

        // Single shard: a true passthrough (real policy, caller thread).
        if self.shards.len() == 1 {
            let mut delta = {
                let mut engine = self.shards[0].write().unwrap_or_else(|e| e.into_inner());
                engine.ingest_unit(tuples)?
            };
            self.shard_windows[0] = Some(window);
            if opened_unit {
                self.window = Some(window);
                self.units_opened += 1;
            }
            delta.unit = self.units_opened.saturating_sub(1);
            let engine = read(&self.shards[0]);
            self.result = engine.result().clone();
            self.stats = *engine.stats();
            return Ok(delta);
        }

        let before = self.exception_cells();
        let mut delta = UnitDelta::for_batch(window, opened_unit, tuples.len());
        let parts = self.partition(tuples);
        self.ingest_partitions(parts, window, &mut delta)?;
        if opened_unit {
            self.window = Some(window);
            self.units_opened += 1;
            // `elapsed` accumulates across a unit's batches and resets
            // on a rollover, mirroring the single-engine bookkeeping.
            self.stats.elapsed = std::time::Duration::ZERO;
        }
        delta.unit = self.units_opened.saturating_sub(1);

        let pre_batch = self.stats.elapsed;
        self.merge_shards(window)?;
        let after = self.exception_cells();
        delta.appeared = after.difference(&before).cloned().collect();
        delta.cleared = before.difference(&after).cloned().collect();
        delta.sort_cells();
        self.stats.elapsed = pre_batch + started.elapsed();
        self.result.set_stats(self.stats);
        Ok(delta)
    }

    fn result(&self) -> &CubeResult {
        &self.result
    }

    fn stats(&self) -> &RunStats {
        &self.stats
    }
}

/// One independent unit of merge work: a cuboid table of the merged
/// cube. Ordered (`BTreeSet`) so the job list is deterministic.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
enum MergeKey {
    /// The m-layer table.
    M,
    /// The o-layer table.
    O,
    /// A strictly-between cuboid (screened with the real policy after
    /// the merge).
    Between(CuboidSpec),
    /// A popular-path table (retained in full, never screened).
    Path(CuboidSpec),
}

/// Merges one [`MergeKey`]'s table across the active shards (in index
/// order) and screens `Between` tables with the real policy. Runs as a
/// pool job; shard access is a read lock, so all keys merge
/// concurrently.
fn merge_one_key<E: CubingEngine>(
    key: MergeKey,
    shards: &[Arc<RwLock<E>>],
    active: &[usize],
    policy: &ExceptionPolicy,
) -> Result<(MergeKey, CuboidTable)> {
    let mut table = CuboidTable::default();
    for &i in active {
        let engine = read(&shards[i]);
        let result = engine.result();
        let source = match &key {
            MergeKey::M => Some(result.m_table()),
            MergeKey::O => Some(result.o_table()),
            MergeKey::Between(cuboid) => match engine.full_between_tables() {
                Some(tables) => tables.get(cuboid),
                None => result.exceptions_map().get(cuboid),
            },
            MergeKey::Path(cuboid) => result.path_tables().get(cuboid),
        };
        if let Some(source) = source {
            merge_table_into(&mut table, source)?;
        }
    }
    if let MergeKey::Between(cuboid) = &key {
        table.retain(|_, isb| policy.is_exception(cuboid, isb));
    }
    Ok((key, table))
}

/// Read-locks a shard, riding over poisoning (a panicked pool job is
/// already re-raised by the pool; the state behind the lock is about to
/// be discarded by the caller's error path).
fn read<E>(shard: &Arc<RwLock<E>>) -> std::sync::RwLockReadGuard<'_, E> {
    shard.read().unwrap_or_else(|e| e.into_inner())
}

/// The shard a (validated) m-layer key routes to: deterministic FxHash
/// of the ids, modulo the shard count.
fn shard_of(ids: &[u32], shards: usize) -> usize {
    let mut hasher = FxHasher::default();
    ids.hash(&mut hasher);
    (hasher.finish() % shards as u64) as usize
}

/// Cell-wise sibling merge of `src` into `dst` (Theorem 3.2).
///
/// # Errors
/// Interval mismatches — impossible for shards fed from one validated
/// window.
fn merge_table_into(dst: &mut CuboidTable, src: &CuboidTable) -> Result<()> {
    for (key, isb) in src {
        match dst.entry(key.clone()) {
            std::collections::hash_map::Entry::Occupied(mut e) => {
                merge_sibling(e.get_mut(), isb)?;
            }
            std::collections::hash_map::Entry::Vacant(v) => {
                v.insert(*isb);
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use regcube_regress::{Isb, TimeSeries};

    fn isb(slope: f64, base: f64) -> Isb {
        let z = TimeSeries::from_fn(0, 9, |t| base + slope * t as f64).unwrap();
        Isb::fit(&z).unwrap()
    }

    fn setup() -> (CubeSchema, CriticalLayers, ExceptionPolicy) {
        let schema = CubeSchema::synthetic(2, 2, 2).unwrap();
        let layers = CriticalLayers::new(
            &schema,
            CuboidSpec::new(vec![0, 0]),
            CuboidSpec::new(vec![2, 2]),
        )
        .unwrap();
        (schema, layers, ExceptionPolicy::slope_threshold(0.4))
    }

    fn dense_tuples() -> Vec<MTuple> {
        let mut tuples = Vec::new();
        for a in 0..4u32 {
            for b in 0..4u32 {
                tuples.push(MTuple::new(vec![a, b], isb((a + b) as f64 / 10.0, 1.0)));
            }
        }
        tuples
    }

    fn tables_approx_eq(label: &str, a: &CuboidTable, b: &CuboidTable) {
        assert_eq!(a.len(), b.len(), "{label}: cell counts differ");
        for (key, m) in a {
            let other = b
                .get(key)
                .unwrap_or_else(|| panic!("{label}: cell {key} missing"));
            assert!(m.approx_eq(other, 1e-9), "{label} {key}: {m} vs {other}");
        }
    }

    #[test]
    fn sharded_mo_matches_unsharded_for_every_shard_count() {
        let (schema, layers, policy) = setup();
        let tuples = dense_tuples();
        let mut reference =
            MoCubingEngine::transient(schema.clone(), layers.clone(), policy.clone()).unwrap();
        reference.ingest_unit(&tuples).unwrap();
        for n in [1usize, 2, 3, 7] {
            let mut sharded =
                ShardedEngine::mo_cubing(schema.clone(), layers.clone(), policy.clone(), n)
                    .unwrap();
            sharded.ingest_unit(&tuples).unwrap();
            assert_eq!(sharded.shards(), n);
            let (a, b) = (sharded.result(), reference.result());
            tables_approx_eq(&format!("n={n}/m"), a.m_table(), b.m_table());
            tables_approx_eq(&format!("n={n}/o"), a.o_table(), b.o_table());
            assert_eq!(a.total_exception_cells(), b.total_exception_cells());
        }
    }

    #[test]
    fn multi_shard_inner_engines_skip_exception_retention() {
        // MoCubing shards retain full between-layer tables, so the probe
        // must select the no-op inner policy: no shard stores exception
        // cells of its own, yet the merged cube screens correctly.
        let (schema, layers, policy) = setup();
        let mut e = ShardedEngine::mo_cubing(schema, layers, policy, 3).unwrap();
        e.ingest_unit(&dense_tuples()).unwrap();
        assert!(e.result().total_exception_cells() > 0, "merged screen");
        for shard in &e.shards {
            let engine = read(shard);
            assert!(engine.full_between_tables().is_some());
            assert_eq!(engine.result().total_exception_cells(), 0);
        }
    }

    #[test]
    fn sharded_deltas_are_sorted_and_consistent() {
        let (schema, layers, policy) = setup();
        let mut e = ShardedEngine::mo_cubing(schema, layers, policy, 3).unwrap();
        let d = e.ingest_unit(&dense_tuples()).unwrap();
        assert!(d.opened_unit);
        assert_eq!(d.unit, 0);
        assert_eq!(d.tuples, 16);
        let mut sorted = d.appeared.clone();
        sorted.sort_unstable();
        assert_eq!(d.appeared, sorted, "appeared must be pre-sorted");
    }

    #[test]
    fn same_window_batches_fold_into_the_open_unit() {
        let (schema, layers, policy) = setup();
        let tuples = dense_tuples();
        let mut split =
            ShardedEngine::mo_cubing(schema.clone(), layers.clone(), policy.clone(), 4).unwrap();
        for chunk in tuples.chunks(5) {
            split.ingest_unit(chunk).unwrap();
        }
        let mut whole = ShardedEngine::mo_cubing(schema, layers, policy, 4).unwrap();
        let d = whole.ingest_unit(&tuples).unwrap();
        assert!(d.opened_unit);
        let (a, b) = (split.result(), whole.result());
        tables_approx_eq("split/m", a.m_table(), b.m_table());
        tables_approx_eq("split/o", a.o_table(), b.o_table());
        assert_eq!(a.total_exception_cells(), b.total_exception_cells());
    }

    #[test]
    fn rollover_excludes_stale_shards() {
        let (schema, layers, policy) = setup();
        // Many shards: the 1-tuple second window leaves most shards
        // stale, and none of their old-window cells may leak through.
        let mut e = ShardedEngine::mo_cubing(schema, layers, policy, 7).unwrap();
        e.ingest_unit(&dense_tuples()).unwrap();
        let next = vec![MTuple::new(vec![1, 2], Isb::new(10, 19, 1.0, 0.7).unwrap())];
        let d = e.ingest_unit(&next).unwrap();
        assert!(d.opened_unit);
        assert_eq!(d.unit, 1);
        assert_eq!(e.result().m_layer_cells(), 1, "old unit replaced");
        assert_eq!(e.result().o_table().len(), 1);
    }

    #[test]
    fn sharded_popular_path_keeps_critical_layers_exact() {
        let (schema, layers, policy) = setup();
        let tuples = dense_tuples();
        let mut reference =
            PopularPathEngine::new(schema.clone(), layers.clone(), policy.clone(), None).unwrap();
        reference.ingest_unit(&tuples).unwrap();
        let mut sharded = ShardedEngine::popular_path(schema, layers, policy, 3).unwrap();
        sharded.ingest_unit(&tuples).unwrap();
        let (a, b) = (sharded.result(), reference.result());
        tables_approx_eq("pp/m", a.m_table(), b.m_table());
        tables_approx_eq("pp/o", a.o_table(), b.o_table());
        // Exceptions follow Algorithm 1's rule: a superset of the
        // unsharded drilled set (footnote 7).
        assert!(a.total_exception_cells() >= b.total_exception_cells());
        for (cuboid, key, _) in b.iter_exceptions() {
            assert!(
                a.exceptions_in(cuboid).is_some_and(|t| t.contains_key(key)),
                "unsharded exception {cuboid}{key} missing from sharded cube"
            );
        }
        assert_eq!(a.algorithm(), Algorithm::PopularPath);
    }

    #[test]
    fn empty_batches_are_rejected() {
        let (schema, layers, policy) = setup();
        let mut e = ShardedEngine::mo_cubing(schema, layers, policy, 2).unwrap();
        assert!(e.ingest_unit(&[]).is_err());
    }

    /// Delegates to an inner engine but fails one `ingest_unit` on
    /// command — exercises the partial-failure rollback.
    struct FlakyEngine {
        inner: MoCubingEngine,
        trip: Arc<std::sync::atomic::AtomicBool>,
    }

    impl CubingEngine for FlakyEngine {
        fn algorithm(&self) -> Algorithm {
            self.inner.algorithm()
        }
        fn ingest_unit(&mut self, tuples: &[MTuple]) -> Result<UnitDelta> {
            let marked = tuples.iter().any(|t| t.ids() == [0, 0]);
            if marked && self.trip.swap(false, std::sync::atomic::Ordering::SeqCst) {
                return Err(crate::CoreError::BadInput {
                    detail: "injected shard failure".into(),
                });
            }
            self.inner.ingest_unit(tuples)
        }
        fn result(&self) -> &CubeResult {
            self.inner.result()
        }
        fn stats(&self) -> &RunStats {
            self.inner.stats()
        }
        fn full_between_tables(&self) -> Option<&FxHashMap<CuboidSpec, CuboidTable>> {
            self.inner.full_between_tables()
        }
    }

    #[test]
    fn failed_rollover_leaves_no_half_open_window() {
        // One shard fails mid-rollover; the shards that already
        // advanced must be reset, so retrying the same batch yields
        // exactly the unsharded cube (no double-folding).
        let (schema, layers, policy) = setup();
        let tuples = dense_tuples();
        let trip = Arc::new(std::sync::atomic::AtomicBool::new(true));
        let handle = Arc::clone(&trip);
        let mut e = ShardedEngine::with_factory(
            schema.clone(),
            layers.clone(),
            policy.clone(),
            4,
            move |schema, layers, policy| {
                Ok(FlakyEngine {
                    inner: MoCubingEngine::new(schema, layers, policy)?,
                    trip: Arc::clone(&handle),
                })
            },
        )
        .unwrap();
        assert!(e.ingest_unit(&tuples).is_err(), "injected failure");
        e.ingest_unit(&tuples).unwrap();

        let mut reference = MoCubingEngine::transient(schema, layers, policy).unwrap();
        reference.ingest_unit(&tuples).unwrap();
        let (a, b) = (e.result(), reference.result());
        tables_approx_eq("retry/m", a.m_table(), b.m_table());
        tables_approx_eq("retry/o", a.o_table(), b.o_table());
        assert_eq!(a.total_exception_cells(), b.total_exception_cells());
    }

    #[test]
    fn shard_routing_is_deterministic() {
        for n in 1..9usize {
            for ids in [[0u32, 1], [3, 2], [7, 7]] {
                let a = shard_of(&ids, n);
                assert!(a < n);
                assert_eq!(a, shard_of(&ids, n), "same key, same shard");
            }
        }
    }
}
