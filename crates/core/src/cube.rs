//! The `RegressionCube` facade: configure once, (re)compute per window,
//! query and drill.

use crate::drill::{drill_children, drill_descendants, DrillHit};
use crate::error::CoreError;
use crate::exception::ExceptionPolicy;
use crate::layers::CriticalLayers;
use crate::measure::MTuple;
use crate::result::{Algorithm, CubeResult};
use crate::{mo_cubing, popular_path, Result};
use regcube_olap::cell::CellKey;
use regcube_olap::{CubeSchema, CuboidSpec, PopularPath};
use regcube_regress::Isb;

/// Builder-style configuration of a regression cube.
#[derive(Debug, Clone)]
pub struct RegressionCube {
    schema: CubeSchema,
    layers: CriticalLayers,
    policy: ExceptionPolicy,
    algorithm: Algorithm,
    path: Option<PopularPath>,
    result: Option<CubeResult>,
}

impl RegressionCube {
    /// Creates a cube configured for m/o-cubing with the given layers and
    /// a cube-wide slope threshold.
    ///
    /// # Errors
    /// Layer validation errors.
    pub fn new(
        schema: CubeSchema,
        o_layer: CuboidSpec,
        m_layer: CuboidSpec,
        policy: ExceptionPolicy,
    ) -> Result<Self> {
        let layers = CriticalLayers::new(&schema, o_layer, m_layer)?;
        Ok(RegressionCube {
            schema,
            layers,
            policy,
            algorithm: Algorithm::MoCubing,
            path: None,
            result: None,
        })
    }

    /// Switches to Algorithm 2 (popular-path cubing), optionally with an
    /// explicit drilling path.
    ///
    /// # Errors
    /// Path validation errors when an explicit path is supplied.
    pub fn with_popular_path(mut self, path: Option<Vec<usize>>) -> Result<Self> {
        self.algorithm = Algorithm::PopularPath;
        self.path = match path {
            Some(order) => Some(PopularPath::from_drill_order(
                self.layers.lattice(),
                &order,
            )?),
            None => None,
        };
        Ok(self)
    }

    /// Switches (back) to Algorithm 1 (m/o-cubing).
    pub fn with_mo_cubing(mut self) -> Self {
        self.algorithm = Algorithm::MoCubing;
        self.path = None;
        self
    }

    /// The schema.
    #[inline]
    pub fn schema(&self) -> &CubeSchema {
        &self.schema
    }

    /// The critical layers.
    #[inline]
    pub fn layers(&self) -> &CriticalLayers {
        &self.layers
    }

    /// The configured exception policy.
    #[inline]
    pub fn policy(&self) -> &ExceptionPolicy {
        &self.policy
    }

    /// (Re)computes the cube from one window of m-layer tuples, replacing
    /// any previous result. In the online pipeline `regcube-stream` calls
    /// this once per m-layer time unit.
    ///
    /// # Errors
    /// Propagates algorithm errors (bad input, structure mismatches).
    pub fn recompute(&mut self, tuples: &[MTuple]) -> Result<&CubeResult> {
        let result = match self.algorithm {
            Algorithm::MoCubing => {
                mo_cubing::compute(&self.schema, &self.layers, &self.policy, tuples)?
            }
            Algorithm::PopularPath => popular_path::compute(
                &self.schema,
                &self.layers,
                &self.policy,
                self.path.as_ref(),
                tuples,
            )?,
        };
        self.result = Some(result);
        Ok(self.result.as_ref().expect("just set"))
    }

    /// The most recent computation result.
    ///
    /// # Errors
    /// [`CoreError::NotMaterialized`] before the first
    /// [`recompute`](Self::recompute).
    pub fn result(&self) -> Result<&CubeResult> {
        self.result
            .as_ref()
            .ok_or_else(|| CoreError::NotMaterialized {
                detail: "cube has not been computed yet".into(),
            })
    }

    /// Looks up a retained cell measure.
    ///
    /// # Errors
    /// [`CoreError::NotMaterialized`] before the first computation.
    pub fn get(&self, cuboid: &CuboidSpec, key: &CellKey) -> Result<Option<&Isb>> {
        Ok(self.result()?.get(cuboid, key))
    }

    /// The o-layer alarm list: exceptional observation cells, hottest
    /// first.
    ///
    /// # Errors
    /// [`CoreError::NotMaterialized`] before the first computation.
    pub fn alarms(&self) -> Result<Vec<(&CellKey, &Isb)>> {
        Ok(self.result()?.exceptional_o_cells())
    }

    /// Drills one step down from a cell (see [`crate::drill`]).
    ///
    /// # Errors
    /// [`CoreError::NotMaterialized`] before the first computation.
    pub fn drill_children(&self, cuboid: &CuboidSpec, key: &CellKey) -> Result<Vec<DrillHit>> {
        Ok(drill_children(&self.schema, self.result()?, cuboid, key))
    }

    /// Finds all retained exceptional descendants of a cell.
    ///
    /// # Errors
    /// [`CoreError::NotMaterialized`] before the first computation.
    pub fn drill_descendants(&self, cuboid: &CuboidSpec, key: &CellKey) -> Result<Vec<DrillHit>> {
        Ok(drill_descendants(&self.schema, self.result()?, cuboid, key))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use regcube_regress::TimeSeries;

    fn isb(slope: f64) -> Isb {
        let z = TimeSeries::from_fn(0, 9, |t| slope * t as f64).unwrap();
        Isb::fit(&z).unwrap()
    }

    fn tuples() -> Vec<MTuple> {
        let mut out = Vec::new();
        for a in 0..4u32 {
            for b in 0..4u32 {
                let slope = if a == 0 { 1.5 } else { 0.01 };
                out.push(MTuple::new(vec![a, b], isb(slope)));
            }
        }
        out
    }

    fn cube() -> RegressionCube {
        let schema = CubeSchema::synthetic(2, 2, 2).unwrap();
        RegressionCube::new(
            schema,
            CuboidSpec::new(vec![0, 0]),
            CuboidSpec::new(vec![2, 2]),
            ExceptionPolicy::slope_threshold(1.0),
        )
        .unwrap()
    }

    #[test]
    fn facade_lifecycle() {
        let mut c = cube();
        assert!(c.result().is_err());
        assert!(c.alarms().is_err());

        c.recompute(&tuples()).unwrap();
        let alarms = c.alarms().unwrap();
        assert_eq!(alarms.len(), 1, "apex slope = 4*1.5 + 12*0.01");

        let apex = CuboidSpec::new(vec![0, 0]);
        let key = CellKey::new(vec![0, 0]);
        assert!(c.get(&apex, &key).unwrap().is_some());
        let hits = c.drill_descendants(&apex, &key).unwrap();
        assert!(!hits.is_empty());
        // The hot branch is dimension-0 member 0 at L1.
        assert!(hits
            .iter()
            .any(|h| h.cuboid == CuboidSpec::new(vec![1, 0]) && h.key == CellKey::new(vec![0, 0])));
    }

    #[test]
    fn algorithm_switching() {
        let mut c = cube().with_popular_path(None).unwrap();
        c.recompute(&tuples()).unwrap();
        assert_eq!(c.result().unwrap().algorithm(), Algorithm::PopularPath);

        let mut c2 = c.clone().with_mo_cubing();
        c2.recompute(&tuples()).unwrap();
        assert_eq!(c2.result().unwrap().algorithm(), Algorithm::MoCubing);

        // Explicit drill order.
        let c3 = cube().with_popular_path(Some(vec![1, 1, 0, 0])).unwrap();
        assert!(matches!(c3.algorithm, Algorithm::PopularPath));
        // Invalid drill order errors.
        assert!(cube().with_popular_path(Some(vec![0, 0, 0, 0, 0])).is_err());
    }

    #[test]
    fn recompute_replaces_previous_window() {
        let mut c = cube();
        c.recompute(&tuples()).unwrap();
        let first_alarms = c.alarms().unwrap().len();
        assert_eq!(first_alarms, 1);

        // A quiet second window: no alarms.
        let quiet: Vec<MTuple> = (0..4u32)
            .flat_map(|a| (0..4u32).map(move |b| MTuple::new(vec![a, b], isb(0.001))))
            .collect();
        c.recompute(&quiet).unwrap();
        assert_eq!(c.alarms().unwrap().len(), 0);
    }
}
