//! Exception-guided drilling over a computed cube (Section 4.3's analyst
//! workflow: watch the o-layer, then "drill on the exception cells down to
//! lower layers to find their corresponding exception supporters").

use crate::result::CubeResult;
use crate::table::Projector;
use regcube_olap::cell::CellKey;
use regcube_olap::{CubeSchema, CuboidSpec};
use regcube_regress::Isb;

/// One step of a drill-down: an exceptional descendant cell.
#[derive(Debug, Clone, PartialEq)]
pub struct DrillHit {
    /// The cuboid the hit lives in.
    pub cuboid: CuboidSpec,
    /// The cell's member-id key.
    pub key: CellKey,
    /// The cell's regression measure.
    pub measure: Isb,
}

/// Finds the retained exceptional cells in the **one-step finer** cuboids
/// that are descendants of `(cuboid, key)` — the "exception supporters"
/// an analyst inspects first.
pub fn drill_children(
    schema: &CubeSchema,
    cube: &CubeResult,
    cuboid: &CuboidSpec,
    key: &CellKey,
) -> Vec<DrillHit> {
    let lattice = cube.layers().lattice();
    let mut hits = Vec::new();
    for child in lattice.children(cuboid) {
        collect_hits(schema, cube, cuboid, key, &child, &mut hits);
    }
    sort_hits(&mut hits);
    hits
}

/// Finds **all** retained exceptional descendants of `(cuboid, key)` in
/// every strictly finer cuboid of the lattice, down to (and including) the
/// m-layer.
pub fn drill_descendants(
    schema: &CubeSchema,
    cube: &CubeResult,
    cuboid: &CuboidSpec,
    key: &CellKey,
) -> Vec<DrillHit> {
    let lattice = cube.layers().lattice();
    let mut hits = Vec::new();
    for finer in lattice.enumerate() {
        if &finer == cuboid || !cuboid.is_ancestor_or_equal(&finer) {
            continue;
        }
        collect_hits(schema, cube, cuboid, key, &finer, &mut hits);
    }
    sort_hits(&mut hits);
    hits
}

/// Collects exceptional cells of `target` (a descendant cuboid of
/// `ancestor`) whose projection to `ancestor` equals `key`.
///
/// The scan is allocation-free per row: projections go through the
/// PR-4 [`Projector`] lookup tables into one reusable scratch buffer
/// and are compared as plain id slices (the same `Borrow<[u32]>`
/// convention the cuboid-table probes use), so drilling never boxes a
/// [`CellKey`] for a cell it does not return.
fn collect_hits(
    schema: &CubeSchema,
    cube: &CubeResult,
    ancestor: &CuboidSpec,
    key: &CellKey,
    target: &CuboidSpec,
    hits: &mut Vec<DrillHit>,
) {
    let policy = cube.policy();
    let lattice = cube.layers().lattice();
    let projector = Projector::new(schema, target, ancestor);
    let mut projected = vec![0u32; schema.num_dims()];
    // Candidate stores for the target cuboid: exception tables, path
    // tables, and the critical layers.
    let mut scan = |table: &crate::table::CuboidTable, filter_exceptions: bool| {
        for (k, m) in table {
            if filter_exceptions && !policy.is_exception(target, m) {
                continue;
            }
            projector.project_into(k.ids(), &mut projected);
            if projected.as_slice() == key.ids() {
                hits.push(DrillHit {
                    cuboid: target.clone(),
                    key: k.clone(),
                    measure: *m,
                });
            }
        }
    };
    if target == lattice.m_layer() {
        scan(cube.m_table(), true);
    } else if target == lattice.o_layer() {
        scan(cube.o_table(), true);
    } else if let Some(t) = cube.exceptions_in(target) {
        scan(t, false); // exception tables are pre-filtered
    } else if let Some(t) = cube.path_tables().get(target) {
        scan(t, true);
    }
}

fn sort_hits(hits: &mut [DrillHit]) {
    hits.sort_by(|a, b| {
        crate::measure::exception_score(&b.measure)
            .partial_cmp(&crate::measure::exception_score(&a.measure))
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.cuboid.cmp(&b.cuboid))
            .then_with(|| a.key.cmp(&b.key))
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exception::ExceptionPolicy;
    use crate::layers::CriticalLayers;
    use crate::measure::MTuple;
    use crate::mo_cubing;
    use regcube_olap::CubeSchema;
    use regcube_regress::TimeSeries;

    fn isb(slope: f64) -> Isb {
        let z = TimeSeries::from_fn(0, 9, |t| slope * t as f64).unwrap();
        Isb::fit(&z).unwrap()
    }

    fn setup() -> (CubeSchema, CubeResult) {
        let schema = CubeSchema::synthetic(2, 2, 2).unwrap();
        let layers = CriticalLayers::new(
            &schema,
            CuboidSpec::new(vec![0, 0]),
            CuboidSpec::new(vec![2, 2]),
        )
        .unwrap();
        // One strongly trending stream under member (0,0), flat elsewhere.
        let mut tuples = vec![MTuple::new(vec![0, 0], isb(2.0))];
        for a in 0..4u32 {
            for b in 0..4u32 {
                if (a, b) != (0, 0) {
                    tuples.push(MTuple::new(vec![a, b], isb(0.01)));
                }
            }
        }
        let cube = mo_cubing::compute(
            &schema,
            &layers,
            &ExceptionPolicy::slope_threshold(1.0),
            &tuples,
        )
        .unwrap();
        (schema, cube)
    }

    #[test]
    fn drilling_follows_the_hot_stream() {
        let (schema, cube) = setup();
        // The apex is exceptional (slope ≈ 2 + 15*0.01).
        let o_hot = cube.exceptional_o_cells();
        assert_eq!(o_hot.len(), 1);

        let apex = CuboidSpec::new(vec![0, 0]);
        let key = CellKey::new(vec![0, 0]);
        let children = drill_children(&schema, &cube, &apex, &key);
        assert!(!children.is_empty());
        // Every child hit must be an ancestor chain member of the hot
        // m-cell (0,0): its key projects from member 0s only.
        for hit in &children {
            assert!(hit.key.ids().iter().all(|&id| id == 0), "{}", hit.key);
            assert!(hit.measure.slope() > 1.0);
        }

        let all = drill_descendants(&schema, &cube, &apex, &key);
        assert!(all.len() >= children.len());
        // The m-layer hot cell itself is among the descendants.
        assert!(all
            .iter()
            .any(|h| h.cuboid == CuboidSpec::new(vec![2, 2]) && h.key == CellKey::new(vec![0, 0])));
        // Hits are sorted by descending exception score.
        for pair in all.windows(2) {
            assert!(
                crate::measure::exception_score(&pair[0].measure)
                    >= crate::measure::exception_score(&pair[1].measure)
            );
        }
    }

    #[test]
    fn drilling_a_quiet_cell_finds_nothing() {
        let (schema, cube) = setup();
        // Member 3 at L1 covers m-members {6,7} x ... all quiet.
        let quiet = CuboidSpec::new(vec![1, 0]);
        let key = CellKey::new(vec![1, 0]);
        let hits = drill_descendants(&schema, &cube, &quiet, &key);
        assert!(hits.is_empty(), "{hits:?}");
    }
}
