//! Cube histories across analysis windows.
//!
//! The online pipeline recomputes the cube every m-layer time unit
//! (Section 4.5). Analysts rarely care about the absolute exception list
//! — they care about *changes*: which cells became exceptional this
//! quarter, which calmed down, which alarms persist (Example 1's "alert
//! people about dramatic changes of situations"). [`CubeHistory`] keeps a
//! bounded deque of per-window exception snapshots and diffs consecutive
//! windows.

use crate::result::CubeResult;
use regcube_olap::cell::CellKey;
use regcube_olap::fxhash::FxHashSet;
use regcube_olap::CuboidSpec;
use std::collections::VecDeque;

/// A compact per-window snapshot: the exception cell set (including the
/// exceptional o-layer cells) plus counters.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowSnapshot {
    /// Monotone window index (assigned by the history).
    pub window: u64,
    /// All exceptional cells, `(cuboid, key)`.
    pub exceptions: FxHashSet<(CuboidSpec, CellKey)>,
    /// Cells retained in total (layers + exceptions).
    pub cells_retained: u64,
}

impl WindowSnapshot {
    /// Builds a snapshot from a computation result.
    pub fn from_result(window: u64, result: &CubeResult) -> Self {
        let mut exceptions: FxHashSet<(CuboidSpec, CellKey)> = result
            .iter_exceptions()
            .map(|(c, k, _)| (c.clone(), k.clone()))
            .collect();
        let o = result.layers().o_layer().clone();
        for (key, _) in result.exceptional_o_cells() {
            exceptions.insert((o.clone(), key.clone()));
        }
        WindowSnapshot {
            window,
            exceptions,
            cells_retained: result.stats().cells_retained,
        }
    }
}

/// The difference between two consecutive windows' exception sets.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ExceptionDiff {
    /// Cells exceptional now but not before — the fresh alerts.
    pub appeared: Vec<(CuboidSpec, CellKey)>,
    /// Cells exceptional before but not now — recovered.
    pub cleared: Vec<(CuboidSpec, CellKey)>,
    /// Cells exceptional in both windows — persisting conditions.
    pub persisted: Vec<(CuboidSpec, CellKey)>,
}

impl ExceptionDiff {
    /// Computes `next − prev` / `prev − next` / intersection.
    pub fn between(prev: &WindowSnapshot, next: &WindowSnapshot) -> Self {
        let mut diff = ExceptionDiff::default();
        for cell in &next.exceptions {
            if prev.exceptions.contains(cell) {
                diff.persisted.push(cell.clone());
            } else {
                diff.appeared.push(cell.clone());
            }
        }
        for cell in &prev.exceptions {
            if !next.exceptions.contains(cell) {
                diff.cleared.push(cell.clone());
            }
        }
        diff.appeared.sort();
        diff.cleared.sort();
        diff.persisted.sort();
        diff
    }

    /// `true` when nothing changed.
    pub fn is_quiet(&self) -> bool {
        self.appeared.is_empty() && self.cleared.is_empty()
    }
}

/// A bounded history of window snapshots.
#[derive(Debug, Clone)]
pub struct CubeHistory {
    capacity: usize,
    windows: VecDeque<WindowSnapshot>,
    next_window: u64,
}

impl CubeHistory {
    /// Creates a history retaining up to `capacity` windows (minimum 1).
    pub fn new(capacity: usize) -> Self {
        CubeHistory {
            capacity: capacity.max(1),
            windows: VecDeque::new(),
            next_window: 0,
        }
    }

    /// Records a window's result; returns the diff against the previous
    /// window (`None` for the very first).
    pub fn record(&mut self, result: &CubeResult) -> Option<ExceptionDiff> {
        let snapshot = WindowSnapshot::from_result(self.next_window, result);
        self.next_window += 1;
        let diff = self
            .windows
            .back()
            .map(|prev| ExceptionDiff::between(prev, &snapshot));
        self.windows.push_back(snapshot);
        while self.windows.len() > self.capacity {
            self.windows.pop_front();
        }
        diff
    }

    /// Snapshots currently retained, oldest first.
    pub fn windows(&self) -> impl Iterator<Item = &WindowSnapshot> {
        self.windows.iter()
    }

    /// Number of retained windows.
    pub fn len(&self) -> usize {
        self.windows.len()
    }

    /// `true` before the first recorded window.
    pub fn is_empty(&self) -> bool {
        self.windows.is_empty()
    }

    /// Cells exceptional in **every** retained window — the chronic
    /// conditions an analyst should already know about.
    pub fn chronic_exceptions(&self) -> Vec<(CuboidSpec, CellKey)> {
        let Some(first) = self.windows.front() else {
            return Vec::new();
        };
        let mut chronic: Vec<(CuboidSpec, CellKey)> = first
            .exceptions
            .iter()
            .filter(|cell| self.windows.iter().all(|w| w.exceptions.contains(*cell)))
            .cloned()
            .collect();
        chronic.sort();
        chronic
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exception::ExceptionPolicy;
    use crate::layers::CriticalLayers;
    use crate::measure::MTuple;
    use crate::mo_cubing;
    use regcube_olap::CubeSchema;
    use regcube_regress::{Isb, TimeSeries};

    fn window(hot: &[(u32, u32)]) -> CubeResult {
        let schema = CubeSchema::synthetic(2, 2, 2).unwrap();
        let layers = CriticalLayers::new(
            &schema,
            CuboidSpec::new(vec![0, 0]),
            CuboidSpec::new(vec![2, 2]),
        )
        .unwrap();
        let mut tuples = Vec::new();
        for a in 0..4u32 {
            for b in 0..4u32 {
                let slope = if hot.contains(&(a, b)) { 3.0 } else { 0.01 };
                let z = TimeSeries::from_fn(0, 9, |t| slope * t as f64).unwrap();
                tuples.push(MTuple::new(vec![a, b], Isb::fit(&z).unwrap()));
            }
        }
        mo_cubing::compute(
            &schema,
            &layers,
            &ExceptionPolicy::slope_threshold(1.0),
            &tuples,
        )
        .unwrap()
    }

    #[test]
    fn diffs_track_appearing_and_clearing_exceptions() {
        let mut history = CubeHistory::new(4);
        assert!(history.is_empty());
        assert!(history.record(&window(&[(0, 0)])).is_none());

        // Same hot cell: quiet diff, everything persists.
        let diff = history.record(&window(&[(0, 0)])).unwrap();
        assert!(diff.is_quiet());
        assert!(!diff.persisted.is_empty());

        // The hot spot moves: old chain clears, new chain appears.
        let diff = history.record(&window(&[(3, 3)])).unwrap();
        assert!(!diff.is_quiet());
        assert!(!diff.appeared.is_empty());
        assert!(!diff.cleared.is_empty());
        // (0,0)'s m-layer ancestors cleared; (3,3)'s appeared.
        assert!(diff
            .appeared
            .iter()
            .any(|(_, k)| k.ids().iter().all(|&id| id != 0)));
        assert_eq!(history.len(), 3);
    }

    #[test]
    fn capacity_bounds_retention() {
        let mut history = CubeHistory::new(2);
        for _ in 0..5 {
            history.record(&window(&[(1, 2)]));
        }
        assert_eq!(history.len(), 2);
        let windows: Vec<u64> = history.windows().map(|w| w.window).collect();
        assert_eq!(windows, vec![3, 4]);
        assert_eq!(CubeHistory::new(0).capacity, 1, "capacity clamps to 1");
    }

    #[test]
    fn chronic_exceptions_survive_every_window() {
        let mut history = CubeHistory::new(8);
        history.record(&window(&[(0, 0), (3, 3)]));
        history.record(&window(&[(0, 0)]));
        history.record(&window(&[(0, 0), (1, 1)]));
        let chronic = history.chronic_exceptions();
        assert!(!chronic.is_empty());
        // Every chronic cell is an ancestor chain member of (0,0): all
        // member ids 0 (the hot branch), never the (3,3)/(1,1) branches.
        for (_, key) in &chronic {
            assert!(key.ids().iter().all(|&id| id == 0), "{key}");
        }
        assert!(CubeHistory::new(2).chronic_exceptions().is_empty());
    }
}
