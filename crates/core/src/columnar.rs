//! The columnar regression-table backend: struct-of-arrays cuboid
//! tables and a [`CubingEngine`] that rolls the cube up over them.
//!
//! # Why a second layout
//!
//! The cube roll-up spends nearly all of its time in the group-by-
//! projection aggregation ([`crate::table::aggregate_into`], Theorem
//! 3.2 compression of ISB aggregates tier to tier). The row layout pays
//! a hash probe, a key allocation and a scattered heap write per source
//! row; for a pass that touches *every* cell of a table that is the
//! textbook case for a struct-of-arrays layout. A [`ColumnarTable`]
//! stores one cuboid as:
//!
//! * a **sorted dense cell-id index** (`Vec<u64>`, one mixed-radix id
//!   per cell — ascending id order is exactly ascending key order), and
//! * **one vector per ISB component** (`t_b`/`t_e` interval bounds,
//!   base, slope), parallel to the index.
//!
//! Merging a row is an append to the staged tail (no per-row
//! allocation, no hashing); [`finish`](TableStorage::finish) compacts
//! the stage with one sort + two-run merge. Both layouts implement
//! [`TableStorage`], so the merge/exception code path is shared with
//! the row backend — byte layout is the *only* difference.
//!
//! # The engine
//!
//! [`ColumnarCubingEngine`] is Algorithm 1 (m/o-cubing) with the tier
//! roll-up running entirely over columnar tables; the retained result
//! (critical layers + exception stores) is materialized in the row
//! layout so every consumer — [`crate::shard::ShardedEngine`], the
//! stream engine, alarms, drilling — composes unchanged. It follows the
//! transient memory model (each tier is dropped as soon as the next is
//! built), so retained memory matches the paper's model while the
//! working set is the compact columnar form.
//!
//! Select it per [`Backend`](crate::engine::Backend):
//!
//! ```
//! use regcube_core::engine::Backend;
//! assert_eq!(Backend::default(), Backend::Row);
//! assert_ne!(Backend::Columnar, Backend::Row);
//! ```
//!
//! or construct it directly:
//!
//! ```
//! use regcube_core::columnar::ColumnarCubingEngine;
//! use regcube_core::engine::CubingEngine;
//! use regcube_core::{CriticalLayers, ExceptionPolicy, MTuple};
//! use regcube_olap::{CubeSchema, CuboidSpec};
//! use regcube_regress::Isb;
//!
//! let schema = CubeSchema::synthetic(2, 2, 2).unwrap();
//! let layers = CriticalLayers::new(
//!     &schema,
//!     CuboidSpec::new(vec![0, 0]),
//!     CuboidSpec::new(vec![2, 2]),
//! ).unwrap();
//! let mut engine = ColumnarCubingEngine::new(
//!     schema,
//!     layers,
//!     ExceptionPolicy::slope_threshold(0.5),
//! ).unwrap();
//! let tuples = vec![
//!     MTuple::new(vec![0, 0], Isb::new(0, 9, 1.0, 0.9).unwrap()),
//!     MTuple::new(vec![3, 2], Isb::new(0, 9, 1.0, 0.1).unwrap()),
//! ];
//! let delta = engine.ingest_unit(&tuples).unwrap();
//! assert!(delta.opened_unit);
//! assert_eq!(engine.result().m_layer_cells(), 2);
//! ```

use crate::engine::{
    batch_window, depth_tiers, empty_result, exception_bytes, fold_tuples_into, CubingEngine,
    UnitDelta,
};
use crate::exception::ExceptionPolicy;
use crate::kernel::{self, FoldColumns, FoldOutput, KernelMode};
use crate::layers::CriticalLayers;
use crate::measure::{merge_sibling, validate_tuples, MTuple};
use crate::result::{Algorithm, CubeResult};
use crate::stats::{MemoryAccountant, RunStats};
use crate::table::{
    aggregate_into, collect_exceptions, table_bytes, CuboidTable, Projector, TableStorage,
};

pub use crate::table::DenseCellCodec;
use crate::Result;
use regcube_olap::cell::CellKey;
use regcube_olap::fxhash::{FxHashMap, FxHashSet};
use regcube_olap::{CubeSchema, CuboidSpec};
use regcube_regress::Isb;
use std::sync::Arc;
use std::time::Instant;

// ---------------------------------------------------------------------------
// ColumnarTable
// ---------------------------------------------------------------------------

/// Struct-of-arrays cell store of one cuboid (see the module docs).
///
/// Rows merged in via [`TableStorage::merge_row`] land in a staged tail;
/// [`TableStorage::finish`] sorts the stage, folds duplicate ids
/// left-to-right in arrival order (the same order the row layout merges
/// collisions) and two-run-merges it with the compacted region. Reads
/// ([`get`](Self::get), iteration) address the compacted region only.
#[derive(Debug, Clone)]
pub struct ColumnarTable {
    /// Dense mixed-radix cell-id codec (shared with the kernel layer):
    /// ascending id order is ascending key order.
    codec: DenseCellCodec,
    /// Sorted dense cell ids; rows `compacted..` are the staged tail.
    index: Vec<u64>,
    /// ISB component columns, parallel to `index`.
    starts: Vec<i64>,
    ends: Vec<i64>,
    bases: Vec<f64>,
    slopes: Vec<f64>,
    /// Length of the sorted, duplicate-free prefix.
    compacted: usize,
    /// Which implementation [`TableStorage::finish`] runs (see
    /// [`crate::kernel`]).
    kernel: KernelMode,
}

impl ColumnarTable {
    /// Creates an empty table for one cuboid of `schema`, with the
    /// process-default kernel mode ([`KernelMode::from_env`]).
    ///
    /// # Errors
    /// [`CoreError::BadInput`](crate::CoreError::BadInput) when the cuboid's cell space does not fit
    /// a dense 64-bit id (astronomical cardinalities only).
    pub fn new(schema: &CubeSchema, cuboid: &CuboidSpec) -> Result<Self> {
        Ok(ColumnarTable {
            codec: DenseCellCodec::new(schema, cuboid)?,
            index: Vec::new(),
            starts: Vec::new(),
            ends: Vec::new(),
            bases: Vec::new(),
            slopes: Vec::new(),
            compacted: 0,
            kernel: KernelMode::from_env(),
        })
    }

    /// Selects which implementation the table's compaction runs
    /// (builder form; see [`crate::kernel::KernelMode`]).
    pub fn with_kernel_mode(mut self, mode: KernelMode) -> Self {
        self.kernel = mode;
        self
    }

    /// The table's dense cell-id codec.
    #[inline]
    pub fn codec(&self) -> &DenseCellCodec {
        &self.codec
    }

    /// The dense cell id of a key (mixed-radix over the cuboid levels).
    #[inline]
    fn encode(&self, ids: &[u32]) -> u64 {
        self.codec.encode(ids)
    }

    /// Decodes a dense cell id into per-dimension member ids.
    #[inline]
    fn decode_into(&self, id: u64, out: &mut [u32]) {
        self.codec.decode_into(id, out)
    }

    /// The stored measure of row `i`.
    #[inline]
    fn isb_at(&self, i: usize) -> Isb {
        Isb::new(self.starts[i], self.ends[i], self.bases[i], self.slopes[i])
            .expect("stored rows are valid ISBs")
    }

    fn push_row(&mut self, id: u64, isb: &Isb) {
        self.index.push(id);
        self.starts.push(isb.start());
        self.ends.push(isb.end());
        self.bases.push(isb.base());
        self.slopes.push(isb.slope());
    }

    /// The measure of the cell at `ids`, if materialized (compacted
    /// region only — [`TableStorage::finish`] first).
    pub fn get(&self, ids: &[u32]) -> Option<Isb> {
        debug_assert_eq!(self.compacted, self.index.len(), "finish() before reads");
        let id = self.encode(ids);
        self.index[..self.compacted]
            .binary_search(&id)
            .ok()
            .map(|i| self.isb_at(i))
    }

    /// Materializes the table in the row layout (for the retained
    /// [`CubeResult`] every downstream consumer reads).
    pub fn to_row_table(&self) -> CuboidTable {
        let mut out = CuboidTable::with_capacity_and_hasher(self.compacted, Default::default());
        let mut ids = vec![0u32; self.codec.num_dims()];
        for i in 0..self.compacted {
            self.decode_into(self.index[i], &mut ids);
            out.insert(CellKey::new(ids.clone()), self.isb_at(i));
        }
        out
    }

    /// Compacts the staged tail: stable-sort by id (duplicates keep
    /// arrival order), fold duplicates left-to-right, merge with the
    /// compacted run. Returns `true` when the kernel path ran (the
    /// dispatch-counter attribution the engine reports).
    fn compact(&mut self) -> Result<bool> {
        if self.compacted == self.index.len() {
            // Nothing staged: every merged row hit the compacted region
            // in place (scalar per-row merges), so no kernel ran.
            return Ok(false);
        }
        if self.kernel.use_kernel() && self.index.len() - self.compacted <= u32::MAX as usize {
            self.compact_kernel()?;
            return Ok(true);
        }
        self.compact_scalar()?;
        Ok(false)
    }

    /// The scalar compaction (the kernel layer's fallback): row-at-a-
    /// time via [`Isb`] round trips, the pre-kernel code path.
    fn compact_scalar(&mut self) -> Result<()> {
        let mut staged: Vec<(u64, Isb)> = (self.compacted..self.index.len())
            .map(|i| (self.index[i], self.isb_at(i)))
            .collect();
        self.truncate_to_compacted();
        staged.sort_by_key(|&(id, _)| id); // stable: arrival order on ties
        let mut merged: Vec<(u64, Isb)> = Vec::with_capacity(staged.len());
        for (id, isb) in staged {
            match merged.last_mut() {
                Some((last, acc)) if *last == id => merge_sibling(acc, &isb)?,
                _ => merged.push((id, isb)),
            }
        }

        if self.compacted == 0 {
            for (id, isb) in merged {
                self.push_row(id, &isb);
            }
        } else {
            let old = std::mem::replace(self, ColumnarTable::empty_like(self));
            self.reserve(old.compacted + merged.len());
            let mut staged = merged.into_iter().peekable();
            for i in 0..old.compacted {
                let id = old.index[i];
                let mut acc = old.isb_at(i);
                while staged.peek().is_some_and(|&(sid, _)| sid < id) {
                    let (sid, isb) = staged.next().expect("peeked");
                    self.push_row(sid, &isb);
                }
                if staged.peek().is_some_and(|&(sid, _)| sid == id) {
                    let (_, isb) = staged.next().expect("peeked");
                    merge_sibling(&mut acc, &isb)?;
                }
                self.push_row(id, &acc);
            }
            for (sid, isb) in staged {
                self.push_row(sid, &isb);
            }
        }
        self.compacted = self.index.len();
        Ok(())
    }

    /// Kernel compaction: the staged tail folds column-to-column (no
    /// per-row [`Isb`] round trips, no 40-byte sort entries — the sort
    /// permutes `(id, index)` pairs, and an already-sorted stage skips
    /// it entirely), then span-merges with the compacted run. Bit-exact
    /// with [`compact_scalar`](Self::compact_scalar): same stable
    /// order, same left-to-right sums, same mismatch errors.
    fn compact_kernel(&mut self) -> Result<()> {
        let split = self.compacted;
        let staged_ids = &self.index[split..];
        let staged = FoldColumns {
            ids: staged_ids,
            starts: &self.starts[split..],
            ends: &self.ends[split..],
            bases: &self.bases[split..],
            slopes: &self.slopes[split..],
        };
        let mut folded = FoldOutput::with_capacity(staged_ids.len());
        if kernel::is_nondecreasing_u64(staged_ids) {
            kernel::fold_sorted_runs(staged_ids, &staged, &mut folded)?;
        } else {
            let mut pairs: Vec<(u64, u32)> = staged_ids
                .iter()
                .enumerate()
                .map(|(i, &id)| (id, i as u32))
                .collect();
            pairs.sort_by_key(|&(id, _)| id); // stable: arrival order on ties
            kernel::fold_permuted_runs(&pairs, &staged, &mut folded)?;
        }
        if split == 0 {
            self.index = folded.ids;
            self.starts = folded.starts;
            self.ends = folded.ends;
            self.bases = folded.bases;
            self.slopes = folded.slopes;
        } else {
            let compacted = FoldColumns {
                ids: &self.index[..split],
                starts: &self.starts[..split],
                ends: &self.ends[..split],
                bases: &self.bases[..split],
                slopes: &self.slopes[..split],
            };
            let folded_cols = FoldColumns {
                ids: &folded.ids,
                starts: &folded.starts,
                ends: &folded.ends,
                bases: &folded.bases,
                slopes: &folded.slopes,
            };
            let mut merged = FoldOutput::with_capacity(split + folded.ids.len());
            kernel::merge_two_runs(&compacted, &folded_cols, &mut merged)?;
            self.index = merged.ids;
            self.starts = merged.starts;
            self.ends = merged.ends;
            self.bases = merged.bases;
            self.slopes = merged.slopes;
        }
        self.compacted = self.index.len();
        Ok(())
    }

    /// An empty table with the same shape (codec) and kernel mode.
    fn empty_like(other: &ColumnarTable) -> Self {
        ColumnarTable {
            codec: other.codec.clone(),
            index: Vec::new(),
            starts: Vec::new(),
            ends: Vec::new(),
            bases: Vec::new(),
            slopes: Vec::new(),
            compacted: 0,
            kernel: other.kernel,
        }
    }

    fn reserve(&mut self, additional: usize) {
        self.index.reserve(additional);
        self.starts.reserve(additional);
        self.ends.reserve(additional);
        self.bases.reserve(additional);
        self.slopes.reserve(additional);
    }

    fn truncate_to_compacted(&mut self) {
        self.index.truncate(self.compacted);
        self.starts.truncate(self.compacted);
        self.ends.truncate(self.compacted);
        self.bases.truncate(self.compacted);
        self.slopes.truncate(self.compacted);
    }

    /// [`TableStorage::finish`] that also reports which path compacted
    /// the stage: `true` for the kernel path, `false` for the scalar
    /// fallback — the engine feeds this into the
    /// [`RunStats::rows_folded_simd`](crate::stats::RunStats::rows_folded_simd)
    /// / `rows_folded_scalar` dispatch counters.
    ///
    /// # Errors
    /// Deferred merge failures from staged duplicate rows.
    pub fn finish_with_path(&mut self) -> Result<bool> {
        self.compact()
    }
}

impl TableStorage for ColumnarTable {
    fn len(&self) -> usize {
        debug_assert_eq!(self.compacted, self.index.len(), "finish() before reads");
        self.compacted
    }

    fn merge_row(&mut self, ids: &[u32], isb: &Isb) -> Result<()> {
        let id = self.encode(ids);
        // Hits in the compacted region merge in place; everything else —
        // including repeats of a staged id — lands on the staged tail and
        // is folded by `finish` in arrival order.
        if let Ok(i) = self.index[..self.compacted].binary_search(&id) {
            let mut acc = self.isb_at(i);
            merge_sibling(&mut acc, isb)?;
            self.starts[i] = acc.start();
            self.ends[i] = acc.end();
            self.bases[i] = acc.base();
            self.slopes[i] = acc.slope();
            return Ok(());
        }
        self.push_row(id, isb);
        Ok(())
    }

    fn finish(&mut self) -> Result<()> {
        self.compact().map(|_| ())
    }

    fn try_for_each_cell<F: FnMut(&[u32], &Isb) -> Result<()>>(&self, mut f: F) -> Result<()> {
        debug_assert_eq!(self.compacted, self.index.len(), "finish() before reads");
        let mut ids = vec![0u32; self.codec.num_dims()];
        for i in 0..self.compacted {
            self.decode_into(self.index[i], &mut ids);
            let isb = self.isb_at(i);
            f(&ids, &isb)?;
        }
        Ok(())
    }

    fn approx_bytes(&self, _num_dims: usize) -> usize {
        // One u64 id + two i64 bounds + two f64 components per row; the
        // columns are dense vectors, so there is no container slack to
        // model beyond the vectors themselves.
        self.index.len()
            * (std::mem::size_of::<u64>()
                + 2 * std::mem::size_of::<i64>()
                + 2 * std::mem::size_of::<f64>())
    }
}

// ---------------------------------------------------------------------------
// Kernel-path aggregation and screening
// ---------------------------------------------------------------------------

/// Columnar→columnar group-by-projection on the kernel layer: the
/// source id column is pushed block-at-a-time through the fused
/// per-dimension ancestor LUTs
/// ([`Projector::block_projector`]), and the projected rows fold
/// column-to-column ([`crate::kernel::fold_sorted_runs`] /
/// [`fold_permuted_runs`](crate::kernel::fold_permuted_runs)) straight
/// into the target's compacted region — no staging, no per-row binary
/// search, no [`Isb`] round trips. Synthetic hierarchies project
/// monotonically, so the sortedness check usually skips the sort too.
///
/// Returns `Some(rows_folded)` when the kernel path ran, `None` when
/// it cannot apply (scalar-forced target, per-row hierarchy walks,
/// row counts beyond `u32`) — the caller falls back to the generic
/// [`aggregate_into`]. Bit-exact with that fallback by construction:
/// same stable fold order, same f64 add order, same mismatch errors.
///
/// # Errors
/// Measure merge failures (interval mismatches — impossible for tables
/// built from one validated tuple window).
fn aggregate_columnar_kernel(
    schema: &CubeSchema,
    source_cuboid: &CuboidSpec,
    source: &ColumnarTable,
    target_cuboid: &CuboidSpec,
    target: &mut ColumnarTable,
) -> Result<Option<u64>> {
    debug_assert_eq!(source.compacted, source.index.len(), "finish() the source");
    debug_assert!(
        target.index.is_empty(),
        "kernel aggregation fills a fresh table"
    );
    if !target.kernel.use_kernel() || source.compacted > u32::MAX as usize {
        return Ok(None);
    }
    let projector = Projector::new(schema, source_cuboid, target_cuboid);
    let Some(block) = projector.block_projector(source.codec(), target.codec()) else {
        return Ok(None);
    };
    let n = source.compacted;
    let mut projected = vec![0u64; n];
    block.project_into(&source.index[..n], &mut projected);

    let src = FoldColumns {
        ids: &source.index[..n],
        starts: &source.starts[..n],
        ends: &source.ends[..n],
        bases: &source.bases[..n],
        slopes: &source.slopes[..n],
    };
    let mut out = FoldOutput::with_capacity(n.min(1 << 20));
    if kernel::is_nondecreasing_u64(&projected) {
        kernel::fold_sorted_runs(&projected, &src, &mut out)?;
    } else {
        let mut pairs: Vec<(u64, u32)> = projected
            .iter()
            .enumerate()
            .map(|(i, &id)| (id, i as u32))
            .collect();
        pairs.sort_by_key(|&(id, _)| id); // stable: source order on ties
        kernel::fold_permuted_runs(&pairs, &src, &mut out)?;
    }
    target.index = out.ids;
    target.starts = out.starts;
    target.ends = out.ends;
    target.bases = out.bases;
    target.slopes = out.slopes;
    target.compacted = target.index.len();
    Ok(Some(n as u64))
}

/// The columnar exception screen: a chunked `|slope| >= threshold`
/// scan over the slope column ([`crate::kernel::screen_ge_abs`]), then
/// key decoding for the (sparse) hits only. Falls back to the generic
/// [`collect_exceptions`] on scalar-forced tables. Bit-exact with the
/// scalar screen: the same predicate per cell
/// ([`ExceptionPolicy::is_exception`] resolves to one threshold per
/// cuboid), with NaN scores never qualifying.
fn collect_exceptions_columnar(
    policy: &ExceptionPolicy,
    cuboid: &CuboidSpec,
    table: &ColumnarTable,
) -> CuboidTable {
    debug_assert_eq!(table.compacted, table.index.len(), "finish() before reads");
    if !table.kernel.use_kernel() || table.compacted > u32::MAX as usize {
        return collect_exceptions(policy, cuboid, table);
    }
    let threshold = policy.threshold_for(cuboid);
    let mut hits: Vec<u32> = Vec::new();
    kernel::screen_ge_abs(&table.slopes[..table.compacted], threshold, &mut hits);
    let mut exc = CuboidTable::with_capacity_and_hasher(hits.len(), Default::default());
    let mut ids = vec![0u32; table.codec.num_dims()];
    for &i in &hits {
        let i = i as usize;
        table.decode_into(table.index[i], &mut ids);
        exc.insert(CellKey::new(ids.clone()), table.isb_at(i));
    }
    exc
}

// ---------------------------------------------------------------------------
// ColumnarCubingEngine
// ---------------------------------------------------------------------------

/// Algorithm 1 (m/o-cubing) over the columnar layout — see the module
/// docs for the design and
/// [`Backend::Columnar`](crate::engine::Backend::Columnar) for the
/// configuration
/// seam.
///
/// Semantically this engine is a drop-in for a transient-mode
/// [`crate::MoCubingEngine`]: identical cube, exception set and
/// [`UnitDelta`] stream (the contract tests pin it, the golden suite
/// byte-for-byte). It keeps no between-layer tables across batches
/// ([`full_between_tables`](CubingEngine::full_between_tables) answers
/// `None`), so a [`crate::shard::ShardedEngine`] composes with it
/// through the always-retain fallback, exactly like the popular-path
/// engine.
#[derive(Debug, Clone)]
pub struct ColumnarCubingEngine {
    schema: Arc<CubeSchema>,
    layers: CriticalLayers,
    policy: ExceptionPolicy,
    kernel: KernelMode,
    window: Option<(i64, i64)>,
    units_opened: u64,
    stats: RunStats,
    mem: MemoryAccountant,
    result: CubeResult,
}

impl ColumnarCubingEngine {
    /// Creates a columnar engine for the given layers and policy.
    ///
    /// # Errors
    /// [`CoreError::BadInput`](crate::CoreError::BadInput) when a cuboid of the lattice overflows
    /// the dense 64-bit cell-id space (see [`ColumnarTable::new`]).
    pub fn new(
        schema: CubeSchema,
        layers: CriticalLayers,
        policy: ExceptionPolicy,
    ) -> Result<Self> {
        // Validate the whole lattice up front so `ingest_unit` cannot
        // fail mid-roll-up on an oversized cuboid.
        for cuboid in layers.lattice().bottom_up_order() {
            ColumnarTable::new(&schema, &cuboid)?;
        }
        let result = empty_result(&layers, &policy, Algorithm::MoCubing);
        Ok(ColumnarCubingEngine {
            schema: Arc::new(schema),
            layers,
            policy,
            kernel: KernelMode::from_env(),
            window: None,
            units_opened: 0,
            stats: RunStats::default(),
            mem: MemoryAccountant::new(),
            result,
        })
    }

    /// Selects which implementation the engine's hot loops run — the
    /// chunked [`crate::kernel`] layer (`Auto`, the default) or the
    /// scalar fallback (`Scalar`). Both produce byte-identical cubes,
    /// exceptions and deltas (the kernel-parity suite pins it); the
    /// split is reported in
    /// [`RunStats::rows_folded_simd`](crate::stats::RunStats::rows_folded_simd)
    /// / `rows_folded_scalar`. The process default honors
    /// `REGCUBE_SCALAR_KERNELS=1` (see [`KernelMode::from_env`]).
    pub fn with_kernel_mode(mut self, mode: KernelMode) -> Self {
        self.kernel = mode;
        self
    }

    /// The configured kernel mode.
    #[inline]
    pub fn kernel_mode(&self) -> KernelMode {
        self.kernel
    }

    /// The critical layers the engine cubes for.
    pub fn layers(&self) -> &CriticalLayers {
        &self.layers
    }

    /// A fresh columnar table for `cuboid`, carrying the engine's
    /// kernel mode.
    fn new_table(&self, cuboid: &CuboidSpec) -> Result<ColumnarTable> {
        Ok(ColumnarTable::new(&self.schema, cuboid)?.with_kernel_mode(self.kernel))
    }

    /// Attributes `rows` folded source rows to the kernel or scalar
    /// dispatch counter (keeping `rows_folded` equal to their sum).
    fn count_folded(&mut self, rows: u64, kernel_path: bool) {
        self.stats.rows_folded += rows;
        if kernel_path {
            self.stats.rows_folded_simd += rows;
        } else {
            self.stats.rows_folded_scalar += rows;
        }
    }

    /// Consumes the engine, returning the final cube result.
    pub fn into_result(self) -> CubeResult {
        self.result
    }

    /// Bottom-up tier roll-up over columnar tables. Each cuboid
    /// aggregates from its closest computed descendant (the previous
    /// tier); finished tiers are dropped as soon as the next no longer
    /// needs them (the transient memory model). Returns the o-layer
    /// table and the exception stores in the row layout.
    fn compute_uppers(
        &mut self,
        m_col: &ColumnarTable,
    ) -> Result<(CuboidTable, FxHashMap<CuboidSpec, CuboidTable>)> {
        let dims = self.schema.num_dims();
        let m_spec = self.layers.lattice().m_layer().clone();
        let o_spec = self.layers.lattice().o_layer().clone();

        let mut o_table = CuboidTable::default();
        let mut exceptions: FxHashMap<CuboidSpec, CuboidTable> = FxHashMap::default();
        let mut cache: FxHashMap<CuboidSpec, ColumnarTable> = FxHashMap::default();
        for tier in depth_tiers(&self.layers) {
            let mut next_cache: FxHashMap<CuboidSpec, ColumnarTable> = FxHashMap::default();
            for cuboid in tier {
                let source_spec: Option<CuboidSpec> = self
                    .layers
                    .lattice()
                    .closest_computed_descendant(&cuboid, cache.keys())
                    .cloned();
                let mut table = self.new_table(&cuboid)?;
                let (source_table, src_spec): (&ColumnarTable, &CuboidSpec) = match &source_spec {
                    Some(spec) => (&cache[spec], spec),
                    None => (m_col, &m_spec),
                };
                // Block-projected kernel fold when the projector supports
                // it; the generic per-row fold otherwise. Both are
                // bit-exact; only the dispatch counter differs.
                let (rows, kernel_path) = match aggregate_columnar_kernel(
                    &self.schema,
                    src_spec,
                    source_table,
                    &cuboid,
                    &mut table,
                )? {
                    Some(rows) => (rows, true),
                    None => (
                        aggregate_into(
                            &self.schema,
                            src_spec,
                            source_table,
                            &cuboid,
                            &mut table,
                            None,
                        )?,
                        false,
                    ),
                };
                self.count_folded(rows, kernel_path);
                self.stats.cells_computed += table.len() as u64;
                self.stats.cuboids_computed += 1;
                self.mem.add(table.approx_bytes(dims));

                if cuboid == o_spec {
                    o_table = table.to_row_table();
                    self.mem.add(table_bytes(&o_table, dims));
                    self.mem.remove(table.approx_bytes(dims));
                    continue;
                }
                let exc = collect_exceptions_columnar(&self.policy, &cuboid, &table);
                if !exc.is_empty() {
                    self.mem.add(table_bytes(&exc, dims));
                    exceptions.insert(cuboid.clone(), exc);
                }
                next_cache.insert(cuboid, table);
            }
            for (_, table) in cache.drain() {
                self.mem.remove(table.approx_bytes(dims));
            }
            cache = next_cache;
        }
        for (_, table) in cache.drain() {
            self.mem.remove(table.approx_bytes(dims));
        }
        Ok((o_table, exceptions))
    }

    /// Full recomputation for a new unit window.
    fn open_unit(&mut self, tuples: &[MTuple]) -> Result<()> {
        let dims = self.schema.num_dims();
        let m_spec = self.layers.lattice().m_layer().clone();
        self.stats = RunStats::default();
        self.mem = MemoryAccountant::new();

        // Step 1: fold the batch into the columnar m-layer. Duplicate
        // m-cells merge in arrival order, like the H-tree scan.
        let mut m_col = self.new_table(&m_spec)?;
        for t in tuples {
            m_col.merge_row(t.ids(), t.isb())?;
        }
        let kernel_path = m_col.finish_with_path()?;
        self.mem.add(m_col.approx_bytes(dims));
        self.count_folded(tuples.len() as u64, kernel_path);
        self.stats.cells_computed += m_col.len() as u64;
        self.stats.cuboids_computed += 1;

        // Step 2: the rest of the lattice, columnar tier by tier.
        let (o_table, exceptions) = self.compute_uppers(&m_col)?;
        let m_table = m_col.to_row_table();
        self.mem.add(table_bytes(&m_table, dims));
        self.mem.remove(m_col.approx_bytes(dims));
        self.result = CubeResult::new(
            self.layers.clone(),
            self.policy.clone(),
            Algorithm::MoCubing,
            m_table,
            o_table,
            exceptions,
            FxHashMap::default(),
            self.stats,
        );
        Ok(())
    }

    /// Same-window batch: fold into the retained row m-layer, rebuild
    /// the columnar working copy and recompute everything above it (the
    /// transient model keeps no between-layer tables to merge into).
    fn merge_batch(&mut self, tuples: &[MTuple], delta: &mut UnitDelta) -> Result<()> {
        let dims = self.schema.num_dims();
        let m_spec = self.layers.lattice().m_layer().clone();
        let mut m_table = std::mem::take(self.result.m_table_mut());

        let m_bytes = table_bytes(&m_table, dims);
        let (touched, created) =
            fold_tuples_into(&self.schema, &m_spec, &m_spec, &mut m_table, tuples)?;
        self.mem
            .add(table_bytes(&m_table, dims).saturating_sub(m_bytes));
        // Row-layout hash-map fold: always the scalar path.
        self.count_folded(tuples.len() as u64, false);
        self.stats.cells_computed += created;
        delta.cells_touched += touched.len() as u64;

        // Rebuild the columnar m-layer (identity projection through the
        // shared aggregation path) and recompute the lattice.
        let mut m_col = self.new_table(&m_spec)?;
        aggregate_into(&self.schema, &m_spec, &m_table, &m_spec, &mut m_col, None)?;
        self.mem.add(m_col.approx_bytes(dims));
        let (o_table, exceptions) = self.compute_uppers(&m_col)?;
        self.mem.remove(m_col.approx_bytes(dims));

        // The replaced o-table and exception stores die with the old
        // result; release their analytical bytes.
        self.mem
            .remove(table_bytes(self.result.o_table(), dims) + exception_bytes(&self.result, dims));
        self.result = CubeResult::new(
            self.layers.clone(),
            self.policy.clone(),
            Algorithm::MoCubing,
            m_table,
            o_table,
            exceptions,
            FxHashMap::default(),
            self.stats,
        );
        Ok(())
    }

    /// Refreshes the retention statistics and publishes them into the
    /// exposed result (transient model: critical layers + exceptions).
    fn refresh_stats(&mut self) {
        let dims = self.schema.num_dims();
        let result = &self.result;
        self.stats.exception_cells = result.total_exception_cells();
        self.stats.cells_retained = result.m_layer_cells() as u64
            + result.o_layer_cells() as u64
            + self.stats.exception_cells;
        self.stats.retained_bytes = table_bytes(result.m_table(), dims)
            + table_bytes(result.o_table(), dims)
            + exception_bytes(result, dims);
        self.stats.peak_bytes = self.mem.peak();
        self.result.set_stats(self.stats);
    }

    /// All retained between-layer exception cells as owned pairs.
    fn exception_cells(&self) -> FxHashSet<(CuboidSpec, CellKey)> {
        self.result
            .iter_exceptions()
            .map(|(c, k, _)| (c.clone(), k.clone()))
            .collect()
    }
}

impl CubingEngine for ColumnarCubingEngine {
    fn algorithm(&self) -> Algorithm {
        Algorithm::MoCubing
    }

    fn ingest_unit(&mut self, tuples: &[MTuple]) -> Result<UnitDelta> {
        validate_tuples(&self.schema, self.layers.lattice().m_layer(), tuples)?;
        let started = Instant::now();
        let window = batch_window(tuples);
        let opened_unit = self.window != Some(window);
        // Diffed against the post-batch state below; on a rollover this
        // reports the closed window's lapsed exceptions as cleared.
        let before = self.exception_cells();
        let mut delta = UnitDelta::for_batch(window, opened_unit, tuples.len());
        if opened_unit {
            // Commit the window only after a successful rollover (the
            // trait's "no half-open window" contract).
            self.window = None;
            self.open_unit(tuples)?;
            self.window = Some(window);
            self.units_opened += 1;
            delta.cells_touched = self.stats.cells_computed;
        } else {
            self.merge_batch(tuples, &mut delta)?;
        }
        delta.unit = self.units_opened.saturating_sub(1);
        let after = self.exception_cells();
        delta.appeared = after.difference(&before).cloned().collect();
        delta.cleared = before.difference(&after).cloned().collect();
        delta.sort_cells();
        debug_assert!(delta.is_sorted());
        self.stats.elapsed += started.elapsed();
        self.refresh_stats();
        Ok(delta)
    }

    fn result(&self) -> &CubeResult {
        &self.result
    }

    fn stats(&self) -> &RunStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CoreError, MoCubingEngine};
    use regcube_regress::TimeSeries;

    fn isb(slope: f64, base: f64) -> Isb {
        let z = TimeSeries::from_fn(0, 9, |t| base + slope * t as f64).unwrap();
        Isb::fit(&z).unwrap()
    }

    fn setup() -> (CubeSchema, CriticalLayers, ExceptionPolicy) {
        let schema = CubeSchema::synthetic(2, 2, 2).unwrap();
        let layers = CriticalLayers::new(
            &schema,
            CuboidSpec::new(vec![0, 0]),
            CuboidSpec::new(vec![2, 2]),
        )
        .unwrap();
        (schema, layers, ExceptionPolicy::slope_threshold(0.4))
    }

    fn dense_tuples() -> Vec<MTuple> {
        let mut tuples = Vec::new();
        for a in 0..4u32 {
            for b in 0..4u32 {
                tuples.push(MTuple::new(vec![a, b], isb((a + b) as f64 / 10.0, 1.0)));
            }
        }
        tuples
    }

    fn tables_approx_eq(label: &str, a: &CuboidTable, b: &CuboidTable) {
        assert_eq!(a.len(), b.len(), "{label}: cell counts differ");
        for (key, m) in a {
            let other = b
                .get(key)
                .unwrap_or_else(|| panic!("{label}: cell {key} missing"));
            assert!(m.approx_eq(other, 1e-9), "{label} {key}: {m} vs {other}");
        }
    }

    #[test]
    fn staged_rows_compact_sorted_and_deduplicated() {
        let (schema, _, _) = setup();
        let mut t = ColumnarTable::new(&schema, &CuboidSpec::new(vec![2, 2])).unwrap();
        t.merge_row(&[3, 1], &isb(0.3, 1.0)).unwrap();
        t.merge_row(&[0, 2], &isb(0.1, 1.0)).unwrap();
        t.merge_row(&[3, 1], &isb(0.2, 1.0)).unwrap();
        t.finish().unwrap();
        assert_eq!(TableStorage::len(&t), 2);
        let merged = t.get(&[3, 1]).unwrap();
        assert!((merged.slope() - 0.5).abs() < 1e-12, "duplicates folded");
        // Iteration is ascending key order.
        let mut seen = Vec::new();
        t.try_for_each_cell(|ids, _| {
            seen.push(ids.to_vec());
            Ok(())
        })
        .unwrap();
        assert_eq!(seen, vec![vec![0, 2], vec![3, 1]]);
    }

    #[test]
    fn incremental_merges_hit_the_compacted_region() {
        let (schema, _, _) = setup();
        let mut t = ColumnarTable::new(&schema, &CuboidSpec::new(vec![2, 2])).unwrap();
        t.merge_row(&[1, 1], &isb(0.1, 1.0)).unwrap();
        t.finish().unwrap();
        // In-place merge (compacted hit) plus a fresh staged row.
        t.merge_row(&[1, 1], &isb(0.2, 1.0)).unwrap();
        t.merge_row(&[2, 0], &isb(0.4, 1.0)).unwrap();
        t.finish().unwrap();
        assert_eq!(TableStorage::len(&t), 2);
        assert!((t.get(&[1, 1]).unwrap().slope() - 0.3).abs() < 1e-12);
        assert!((t.get(&[2, 0]).unwrap().slope() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn row_round_trip_preserves_every_cell() {
        let (schema, _, _) = setup();
        let cuboid = CuboidSpec::new(vec![2, 1]);
        let mut col = ColumnarTable::new(&schema, &cuboid).unwrap();
        let mut row = CuboidTable::default();
        for (ids, slope) in [([0u32, 0u32], 0.2), ([3, 1], -0.7), ([2, 1], 0.05)] {
            let m = isb(slope, 2.0);
            col.merge_row(&ids, &m).unwrap();
            row.merge_row(&ids, &m).unwrap();
        }
        col.finish().unwrap();
        tables_approx_eq("round-trip", &col.to_row_table(), &row);
    }

    #[test]
    fn oversized_cuboids_are_rejected_up_front() {
        // 6 dimensions with ~10^5 leaves each overflow u64 at the m-layer.
        let schema = CubeSchema::synthetic(6, 2, 2048).unwrap();
        let spec = CuboidSpec::new(vec![2; 6]);
        assert!(matches!(
            ColumnarTable::new(&schema, &spec),
            Err(CoreError::BadInput { .. })
        ));
    }

    #[test]
    fn columnar_engine_matches_row_engine_per_unit() {
        let (schema, layers, policy) = setup();
        let mut row =
            MoCubingEngine::transient(schema.clone(), layers.clone(), policy.clone()).unwrap();
        let mut col = ColumnarCubingEngine::new(schema, layers, policy).unwrap();
        let tuples = dense_tuples();
        // Unit 0 in two same-window chunks, then a rollover unit.
        for batch in [&tuples[..10], &tuples[10..]] {
            let dr = row.ingest_unit(batch).unwrap();
            let dc = col.ingest_unit(batch).unwrap();
            assert_eq!(dr.opened_unit, dc.opened_unit);
            assert_eq!(dr.appeared, dc.appeared);
            assert_eq!(dr.cleared, dc.cleared);
        }
        let next: Vec<MTuple> = (0..3u32)
            .map(|a| MTuple::new(vec![a, a], Isb::new(10, 19, 1.0, 0.9).unwrap()))
            .collect();
        let dr = row.ingest_unit(&next).unwrap();
        let dc = col.ingest_unit(&next).unwrap();
        assert!(dr.opened_unit && dc.opened_unit);
        assert_eq!(dr.unit, dc.unit);
        assert_eq!(dr.appeared, dc.appeared);
        assert_eq!(dr.cleared, dc.cleared);
        let (a, b) = (col.result(), row.result());
        tables_approx_eq("m", a.m_table(), b.m_table());
        tables_approx_eq("o", a.o_table(), b.o_table());
        assert_eq!(a.total_exception_cells(), b.total_exception_cells());
        assert_eq!(col.stats().cells_computed, row.stats().cells_computed);
        assert_eq!(col.stats().rows_folded, row.stats().rows_folded);
    }

    #[test]
    fn columnar_retains_fewer_working_bytes() {
        let (schema, layers, policy) = setup();
        let mut row =
            MoCubingEngine::transient(schema.clone(), layers.clone(), policy.clone()).unwrap();
        let mut col = ColumnarCubingEngine::new(schema, layers, policy).unwrap();
        row.ingest_unit(&dense_tuples()).unwrap();
        col.ingest_unit(&dense_tuples()).unwrap();
        assert!(
            col.stats().peak_bytes < row.stats().peak_bytes,
            "columnar peak {} must undercut row peak {}",
            col.stats().peak_bytes,
            row.stats().peak_bytes
        );
    }

    #[test]
    fn failed_rollover_does_not_poison_the_engine() {
        let (schema, layers, policy) = setup();
        let mut e = ColumnarCubingEngine::new(schema, layers, policy).unwrap();
        e.ingest_unit(&dense_tuples()).unwrap();
        let bad = vec![MTuple::new(vec![0], isb(0.1, 0.0))];
        assert!(e.ingest_unit(&bad).is_err());
        let next: Vec<MTuple> = (0..3u32)
            .map(|a| MTuple::new(vec![a, a], Isb::new(10, 19, 1.0, 0.2).unwrap()))
            .collect();
        let delta = e.ingest_unit(&next).unwrap();
        assert!(delta.opened_unit);
        assert_eq!(e.result().m_layer_cells(), 3);
    }

    #[test]
    fn empty_batches_are_rejected() {
        let (schema, layers, policy) = setup();
        let mut e = ColumnarCubingEngine::new(schema, layers, policy).unwrap();
        assert!(e.ingest_unit(&[]).is_err());
    }
}
