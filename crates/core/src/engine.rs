//! The incremental cubing engine — one trait, two algorithms.
//!
//! Framework 4.1 treats m/o-cubing (Algorithm 1) and popular-path cubing
//! (Algorithm 2) as interchangeable strategies over the same
//! critical-layer contract, so this module gives them one seam: a
//! [`CubingEngine`] maintains a regression cube **incrementally per
//! m-layer time unit**. Each [`ingest_unit`](CubingEngine::ingest_unit)
//! call delivers one batch of m-layer tuples:
//!
//! * a batch whose time interval differs from the engine's current window
//!   **opens a new unit** — the cube is recomputed for the new window
//!   (the paper's per-quarter trigger);
//! * a batch with the **same** interval is folded into the open unit
//!   *incrementally*: because ISB aggregation is linear (Theorem 3.2),
//!   new tuples merge directly into every affected cuboid cell, and only
//!   the touched cells have their exception status re-evaluated — no
//!   cuboid is recomputed from scratch.
//!
//! [`MoCubingEngine`] and [`PopularPathEngine`] implement the trait; the
//! batch entry points [`crate::mo_cubing::compute`] and
//! [`crate::popular_path::compute`] are thin wrappers that build an
//! engine, ingest one batch and return the result. The stream engine
//! (`regcube-stream`) and the bench harness (`regcube-bench`) are generic
//! over the trait, which is the plug-in point for future sharded or
//! parallel cubing backends.
//!
//! Algorithm 1's incremental path keeps every between-layer cuboid's
//! full table alive, which costs memory. [`MoCubingEngine::transient`]
//! trades that away: it keeps only the critical layers and exceptions
//! (dropping each depth tier's tables as soon as the next tier is
//! built, like the original batch algorithm) and services a same-window
//! batch by folding it into the m-layer and recomputing — the batch
//! wrappers and the online per-unit pipeline use this mode, so their
//! peak memory matches the paper's memory model.
//!
//! The cross-algorithm contract (the paper's footnote 7) holds for the
//! engines exactly as for the batch paths: after identical ingestion,
//! Algorithm 1's exception set is a superset of Algorithm 2's, and both
//! agree on the critical layers. `crates/core/tests/engine_contract.rs`
//! pins both properties at the trait level.

use crate::error::CoreError;
use crate::exception::ExceptionPolicy;
use crate::layers::CriticalLayers;
use crate::measure::{merge_sibling, validate_tuples, MTuple};
use crate::pool::WorkerPool;
use crate::popular_path::{DrillFrontier, Frontier};
use crate::result::{Algorithm, CubeResult};
use crate::stats::{MemoryAccountant, RunStats};
use crate::table::{
    aggregate_from, collect_exceptions, drill_aggregate, table_bytes, CuboidTable, Projector,
};
use crate::Result;
use regcube_olap::cell::{project_key, CellKey};
use regcube_olap::fxhash::{FxHashMap, FxHashSet};
use regcube_olap::htree::{attrs_for_path, expand_tuple, HTree};
use regcube_olap::{CubeSchema, CuboidSpec, PopularPath};
use regcube_regress::Isb;
use std::cell::RefCell;
use std::sync::Arc;
use std::time::Instant;

/// The physical layout a cube's cell tables are computed over —
/// selected per engine, orthogonal to the [`Algorithm`].
///
/// Every backend produces the same cube (the contract and golden suites
/// pin it at shard counts 1, 2, 3 and 7); they differ in how the hot
/// roll-up path touches memory. See `ARCHITECTURE.md` ("Memory
/// management" / "Choosing a backend") for trade-offs and the
/// `columnar` / `arena` bench experiments for measured numbers.
///
/// ```
/// use regcube_core::engine::Backend;
///
/// // Row is the default; Columnar opts into the struct-of-arrays path.
/// assert_eq!(Backend::default(), Backend::Row);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Backend {
    /// Hash-map row layout ([`CuboidTable`]): one `CellKey → Isb` entry
    /// per cell. Cheap point updates; the default and the layout every
    /// retained [`CubeResult`] exposes.
    #[default]
    Row,
    /// Struct-of-arrays layout
    /// ([`ColumnarTable`](crate::columnar::ColumnarTable)): a sorted
    /// dense cell-id index plus one vector per ISB component. The
    /// cache-friendly choice for the full-table tier roll-up
    /// ([`crate::columnar::ColumnarCubingEngine`]).
    Columnar,
    /// Interned-key arena layout
    /// ([`ArenaTable`](crate::arena::ArenaTable)): cell keys are
    /// hash-consed into pooled chunks as [`KeyId`](crate::arena::KeyId)
    /// handles and window rollover reclaims whole epochs in O(1). The
    /// allocation-free steady state for long-running streams
    /// ([`crate::arena::ArenaCubingEngine`]).
    Arena,
}

impl Backend {
    /// The backend the process environment selects:
    /// [`Backend::Arena`] when `REGCUBE_ARENA_BACKEND=1`, otherwise the
    /// default row layout. This is how CI forces a full workspace test
    /// pass through the arena path without touching any call site.
    pub fn from_env() -> Self {
        if std::env::var("REGCUBE_ARENA_BACKEND").is_ok_and(|v| v == "1") {
            Backend::Arena
        } else {
            Backend::Row
        }
    }
}

/// What one [`CubingEngine::ingest_unit`] call changed.
#[derive(Debug, Clone)]
pub struct UnitDelta {
    /// 0-based ordinal of the unit the batch belongs to (increments every
    /// time a batch opens a new window).
    pub unit: u64,
    /// The unit's tick interval.
    pub window: (i64, i64),
    /// Whether this batch opened a new unit (full recomputation) rather
    /// than folding into the open one (incremental merge).
    pub opened_unit: bool,
    /// Tuples ingested by the batch.
    pub tuples: usize,
    /// Distinct `(cuboid, cell)` entries the batch created or updated.
    pub cells_touched: u64,
    /// Between-layer cells that became exceptions with this batch
    /// (relative to the engine's state before it, across rollovers).
    /// Sorted by `(cuboid, cell)` — the ordering is deterministic
    /// regardless of hash-map iteration or shard merge order, so
    /// sharded and single-engine runs are directly comparable.
    pub appeared: Vec<(CuboidSpec, CellKey)>,
    /// Between-layer cells that stopped being exceptions with this
    /// batch; on a unit rollover this includes the closed window's
    /// exceptions that do not recur in the new window, so consumers can
    /// maintain a live alarm set purely from appeared/cleared deltas.
    /// Sorted by `(cuboid, cell)` like [`appeared`](Self::appeared).
    pub cleared: Vec<(CuboidSpec, CellKey)>,
}

impl UnitDelta {
    pub(crate) fn for_batch(window: (i64, i64), opened_unit: bool, tuples: usize) -> Self {
        UnitDelta {
            unit: 0,
            window,
            opened_unit,
            tuples,
            cells_touched: 0,
            appeared: Vec::new(),
            cleared: Vec::new(),
        }
    }

    /// Sorts `appeared`/`cleared` by `(cuboid, cell)` so the delta is
    /// byte-for-byte reproducible regardless of hash-map iteration or
    /// shard merge order. Every engine calls this before returning a
    /// delta; consumers can rely on the ordering. Public so external
    /// [`CubingEngine`] implementations can uphold the same sorted-delta
    /// contract.
    ///
    /// A delta that is already sorted is detected in one O(n) pass and
    /// left untouched, so re-asserting the invariant on a conforming
    /// delta is cheap — the stream layer uses exactly that to skip its
    /// defensive re-sort for the built-in engines and only pay the sort
    /// for foreign engines that violate the contract.
    pub fn sort_cells(&mut self) {
        if self.is_sorted() {
            return;
        }
        self.appeared.sort_unstable();
        self.cleared.sort_unstable();
    }

    /// Whether `appeared`/`cleared` are sorted by `(cuboid, cell)` —
    /// the invariant [`sort_cells`](Self::sort_cells) establishes and
    /// every built-in engine guarantees on returned deltas.
    pub fn is_sorted(&self) -> bool {
        self.appeared.windows(2).all(|w| w[0] <= w[1])
            && self.cleared.windows(2).all(|w| w[0] <= w[1])
    }
}

/// An incremental cubing strategy over fixed critical layers.
///
/// Implementations own the cube state; `ingest_unit` advances it one
/// tuple batch at a time (see the module docs for the unit semantics),
/// `result` exposes the materialized cube of the open unit and `stats`
/// the work/memory accounting accumulated over that unit.
///
/// ```
/// use regcube_core::engine::{CubingEngine, MoCubingEngine};
/// use regcube_core::{CriticalLayers, ExceptionPolicy, MTuple};
/// use regcube_olap::{CubeSchema, CuboidSpec};
/// use regcube_regress::Isb;
///
/// let schema = CubeSchema::synthetic(2, 2, 2).unwrap();
/// let layers = CriticalLayers::new(
///     &schema,
///     CuboidSpec::new(vec![0, 0]),   // o-layer: the apex
///     CuboidSpec::new(vec![2, 2]),   // m-layer: the finest levels
/// ).unwrap();
/// let mut engine = MoCubingEngine::transient(
///     schema,
///     layers,
///     ExceptionPolicy::slope_threshold(0.5),
/// ).unwrap();
///
/// // One unit's batch: a hot stream and a quiet one.
/// let delta = engine.ingest_unit(&[
///     MTuple::new(vec![0, 0], Isb::new(0, 14, 1.0, 0.9).unwrap()),
///     MTuple::new(vec![3, 3], Isb::new(0, 14, 1.0, 0.1).unwrap()),
/// ]).unwrap();
/// assert!(delta.opened_unit && delta.is_sorted());
/// assert_eq!(engine.result().m_layer_cells(), 2);
/// ```
pub trait CubingEngine {
    /// Which algorithm the engine realizes.
    fn algorithm(&self) -> Algorithm;

    /// Folds one batch of m-layer tuples into the cube.
    ///
    /// **Sorted-delta contract**: the returned [`UnitDelta`] must have
    /// `appeared`/`cleared` sorted by `(cuboid, cell)` — call
    /// [`UnitDelta::sort_cells`] before returning. All built-in engines
    /// guarantee this (and debug-assert it); the stream layer verifies
    /// it in O(n) and only re-sorts deltas of foreign engines that
    /// violate it.
    ///
    /// # Errors
    /// [`CoreError::BadInput`] for an empty or structurally invalid
    /// batch; substrate errors for schema/layer inconsistencies. After
    /// an error the engine stays on its previous unit (a failed
    /// rollover leaves no half-open window).
    fn ingest_unit(&mut self, tuples: &[MTuple]) -> Result<UnitDelta>;

    /// The materialized cube of the open unit (empty before the first
    /// ingested batch).
    fn result(&self) -> &CubeResult;

    /// Work and memory statistics accumulated over the open unit.
    fn stats(&self) -> &RunStats;

    /// The full tables of every strictly-between cuboid of the open
    /// unit, when the engine retains them all (`None` otherwise — the
    /// default). An engine that answers `Some` lets a
    /// [`crate::shard::ShardedEngine`] merge complete per-shard cubes
    /// directly and run its inner engines with a no-op exception
    /// policy, instead of forcing retain-everything screening through
    /// the exception stores. `Some` of an empty map is a valid answer
    /// for a fresh engine and still signals the capability.
    fn full_between_tables(&self) -> Option<&FxHashMap<CuboidSpec, CuboidTable>> {
        None
    }
}

impl<E: CubingEngine + ?Sized> CubingEngine for Box<E> {
    fn algorithm(&self) -> Algorithm {
        (**self).algorithm()
    }
    fn ingest_unit(&mut self, tuples: &[MTuple]) -> Result<UnitDelta> {
        (**self).ingest_unit(tuples)
    }
    fn result(&self) -> &CubeResult {
        (**self).result()
    }
    fn stats(&self) -> &RunStats {
        (**self).stats()
    }
    fn full_between_tables(&self) -> Option<&FxHashMap<CuboidSpec, CuboidTable>> {
        (**self).full_between_tables()
    }
}

/// An empty result for a fresh engine (no unit ingested yet).
pub(crate) fn empty_result(
    layers: &CriticalLayers,
    policy: &ExceptionPolicy,
    algorithm: Algorithm,
) -> CubeResult {
    CubeResult::new(
        layers.clone(),
        policy.clone(),
        algorithm,
        CuboidTable::default(),
        CuboidTable::default(),
        FxHashMap::default(),
        FxHashMap::default(),
        RunStats::default(),
    )
}

/// The window of a validated, non-empty batch.
pub(crate) fn batch_window(tuples: &[MTuple]) -> (i64, i64) {
    tuples[0].isb().interval()
}

/// Groups every cuboid strictly above the m-layer into depth *tiers*
/// (bottom-up, same total depth per tier) — the roll-up order both the
/// row and columnar backends walk.
pub(crate) fn depth_tiers(layers: &CriticalLayers) -> Vec<Vec<CuboidSpec>> {
    let m_spec = layers.lattice().m_layer();
    let mut tiers: Vec<(u32, Vec<CuboidSpec>)> = Vec::new();
    for cuboid in layers.lattice().bottom_up_order() {
        if &cuboid == m_spec {
            continue;
        }
        let depth = cuboid.total_depth();
        match tiers.last_mut() {
            Some((d, group)) if *d == depth => group.push(cuboid),
            _ => tiers.push((depth, vec![cuboid])),
        }
    }
    tiers.into_iter().map(|(_, group)| group).collect()
}

/// Folds each tuple's measure into the cell of `cuboid` its m-layer ids
/// project to — the one incremental merge both engines share (exact by
/// Theorem 3.2's linearity). Returns the touched keys and how many cells
/// the fold created.
pub(crate) fn fold_tuples_into(
    schema: &CubeSchema,
    m_layer: &CuboidSpec,
    cuboid: &CuboidSpec,
    table: &mut CuboidTable,
    tuples: &[MTuple],
) -> Result<(FxHashSet<CellKey>, u64)> {
    let mut touched: FxHashSet<CellKey> = FxHashSet::default();
    let mut created: u64 = 0;
    for t in tuples {
        let ids = project_key(schema, m_layer, t.ids(), cuboid);
        let key = CellKey::new(ids);
        match table.entry(key.clone()) {
            std::collections::hash_map::Entry::Occupied(mut e) => {
                merge_sibling(e.get_mut(), t.isb())?;
            }
            std::collections::hash_map::Entry::Vacant(v) => {
                v.insert(*t.isb());
                created += 1;
            }
        }
        touched.insert(key);
    }
    Ok((touched, created))
}

// ---------------------------------------------------------------------------
// Algorithm 1 — m/o-cubing
// ---------------------------------------------------------------------------

/// One cuboid of a depth tier with its chosen aggregation source —
/// resolved before the tier fans out so pool tasks are self-contained.
struct TierPlan {
    cuboid: CuboidSpec,
    source: CuboidSpec,
    table: Arc<CuboidTable>,
}

/// Algorithm 1 as an incremental engine.
///
/// In the default (incremental) mode every cuboid between the layers is
/// kept as a **full table** across batches of the open unit, so a
/// same-window batch merges straight into the affected cells (Theorem
/// 3.2) and only those cells are re-screened against the exception
/// policy. Opening a new unit recomputes bottom-up in depth tiers, each
/// cuboid aggregated from its closest computed descendant — exactly the
/// work-sharing of the batch algorithm.
///
/// [`transient`](Self::transient) mode keeps no between-layer tables
/// (each tier is dropped once the next is built), matching the batch
/// algorithm's peak memory; same-window batches then fold into the
/// m-layer and recompute.
#[derive(Debug, Clone)]
pub struct MoCubingEngine {
    schema: Arc<CubeSchema>,
    layers: CriticalLayers,
    policy: ExceptionPolicy,
    /// Drop between-layer tables after each unit (batch memory model)?
    transient: bool,
    /// When attached, cuboids of one depth tier (independent of each
    /// other) are aggregated on the pool instead of sequentially.
    pool: Option<Arc<WorkerPool>>,
    window: Option<(i64, i64)>,
    units_opened: u64,
    /// Full tables of the strictly-between cuboids (empty in transient
    /// mode; the m- and o-layer live in `result`).
    tables: FxHashMap<CuboidSpec, CuboidTable>,
    stats: RunStats,
    mem: MemoryAccountant,
    result: CubeResult,
}

impl MoCubingEngine {
    /// Creates an engine in incremental mode (between-layer tables are
    /// retained so same-window batches merge in place).
    ///
    /// # Errors
    /// Currently infallible; `Result` keeps room for config validation
    /// and parity with [`PopularPathEngine::new`].
    pub fn new(
        schema: CubeSchema,
        layers: CriticalLayers,
        policy: ExceptionPolicy,
    ) -> Result<Self> {
        let result = empty_result(&layers, &policy, Algorithm::MoCubing);
        Ok(MoCubingEngine {
            schema: Arc::new(schema),
            layers,
            policy,
            transient: false,
            pool: None,
            window: None,
            units_opened: 0,
            tables: FxHashMap::default(),
            stats: RunStats::default(),
            mem: MemoryAccountant::new(),
            result,
        })
    }

    /// Creates an engine in transient mode: between-layer tables are
    /// dropped tier by tier as the batch algorithm computes, so retained
    /// memory is exactly critical layers + exception cells. Same-window
    /// batches fold into the m-layer and recompute instead of merging in
    /// place. This is what the batch wrapper and the per-unit online
    /// pipeline use.
    ///
    /// # Errors
    /// See [`new`](Self::new).
    pub fn transient(
        schema: CubeSchema,
        layers: CriticalLayers,
        policy: ExceptionPolicy,
    ) -> Result<Self> {
        let mut engine = Self::new(schema, layers, policy)?;
        engine.transient = true;
        Ok(engine)
    }

    /// Attaches a worker pool for the tier roll-up: cuboids at the same
    /// lattice depth are independent (each aggregates from an already
    /// computed finer tier), so [`open_unit`](Self::ingest_unit)
    /// computes every tier's tables in parallel on the pool. Results are
    /// merged in deterministic lattice order, so the cube is identical
    /// to a sequential run.
    ///
    /// Do **not** attach the pool a [`crate::shard::ShardedEngine`] runs
    /// on to its inner engines — see the nesting rule in [`crate::pool`].
    #[must_use]
    pub fn with_pool(mut self, pool: Arc<WorkerPool>) -> Self {
        self.pool = Some(pool);
        self
    }

    /// The critical layers the engine cubes for.
    pub fn layers(&self) -> &CriticalLayers {
        &self.layers
    }

    /// Consumes the engine, returning the final cube result.
    pub fn into_result(self) -> CubeResult {
        self.result
    }

    /// Full recomputation for a new unit window (the batch algorithm).
    fn open_unit(&mut self, tuples: &[MTuple]) -> Result<()> {
        let dims = self.schema.num_dims();
        self.tables.clear();
        self.stats = RunStats::default();
        self.mem = MemoryAccountant::new();

        // Step 1: one scan of the batch into the H-tree / m-layer.
        let (m_table, tree_bytes) =
            crate::mo_cubing::build_m_layer(&self.schema, &self.layers, tuples)?;
        self.mem.add(tree_bytes);
        self.mem.add(table_bytes(&m_table, dims));
        self.mem.remove(tree_bytes);
        self.stats.rows_folded += tuples.len() as u64;
        self.stats.cells_computed += m_table.len() as u64;
        self.stats.cuboids_computed += 1;

        // Step 2: the rest of the lattice (shared with pool workers, so
        // the m-table travels behind an Arc and is unwrapped after).
        let m_table = Arc::new(m_table);
        let (o_table, exceptions) = self.compute_uppers(&m_table)?;
        let m_table = Arc::try_unwrap(m_table).unwrap_or_else(|shared| (*shared).clone());
        self.result = CubeResult::new(
            self.layers.clone(),
            self.policy.clone(),
            Algorithm::MoCubing,
            m_table,
            o_table,
            exceptions,
            FxHashMap::default(),
            self.stats,
        );
        Ok(())
    }

    /// Computes every cuboid above the m-layer bottom-up in depth
    /// *tiers*, each aggregated from its closest computed descendant (a
    /// one-step-finer table from the previous tier). Cuboids within one
    /// tier are independent, so a tier is fanned out on the attached
    /// [`WorkerPool`] (when present) and merged back in lattice order —
    /// the parallel hot path of the single-engine roll-up. Returns the
    /// o-layer table and the exception stores; between-layer full
    /// tables go to `self.tables` (incremental mode) or are dropped as
    /// soon as the next tier no longer needs them (transient mode).
    fn compute_uppers(
        &mut self,
        m_table: &Arc<CuboidTable>,
    ) -> Result<(CuboidTable, FxHashMap<CuboidSpec, CuboidTable>)> {
        let dims = self.schema.num_dims();
        let m_spec = self.layers.lattice().m_layer().clone();
        let o_spec = self.layers.lattice().o_layer().clone();

        let mut o_table = CuboidTable::default();
        let mut exceptions: FxHashMap<CuboidSpec, CuboidTable> = FxHashMap::default();
        // Full tables of the previous tier (the aggregation sources).
        let mut cache: FxHashMap<CuboidSpec, Arc<CuboidTable>> = FxHashMap::default();
        for tier in depth_tiers(&self.layers) {
            // Pick each cuboid's aggregation source first (the choice
            // needs the whole previous tier), then aggregate the tier.
            let plans: Vec<TierPlan> = tier
                .into_iter()
                .map(|cuboid| {
                    let (source, table) = self
                        .layers
                        .lattice()
                        .closest_computed_descendant(&cuboid, cache.keys())
                        .map(|c| (c.clone(), Arc::clone(&cache[c])))
                        .unwrap_or_else(|| (m_spec.clone(), Arc::clone(m_table)));
                    TierPlan {
                        cuboid,
                        source,
                        table,
                    }
                })
                .collect();

            let mut next_cache: FxHashMap<CuboidSpec, Arc<CuboidTable>> = FxHashMap::default();
            for item in self.compute_tier(plans) {
                let (cuboid, full, rows) = item?;
                self.stats.rows_folded += rows;
                self.stats.cells_computed += full.len() as u64;
                self.stats.cuboids_computed += 1;
                self.mem.add(table_bytes(&full, dims));

                if cuboid == o_spec {
                    o_table = full;
                    continue;
                }
                let exc = collect_exceptions(&self.policy, &cuboid, &full);
                if !exc.is_empty() {
                    self.mem.add(table_bytes(&exc, dims));
                    exceptions.insert(cuboid.clone(), exc);
                }
                next_cache.insert(cuboid, Arc::new(full));
            }
            // The old tier is no longer reachable as a source: drop it
            // (transient) or move it to the retained incremental state.
            self.retire_tier(&mut cache, dims);
            cache = next_cache;
        }
        self.retire_tier(&mut cache, dims);
        Ok((o_table, exceptions))
    }

    /// Aggregates one depth tier. With a pool attached and more than one
    /// cuboid in the tier, the aggregations fan out to the workers; the
    /// results come back **in plan order** either way, so stats and
    /// exception screening stay deterministic.
    fn compute_tier(&self, plans: Vec<TierPlan>) -> Vec<Result<(CuboidSpec, CuboidTable, u64)>> {
        match &self.pool {
            Some(pool) if plans.len() > 1 => {
                let tasks: Vec<_> = plans
                    .into_iter()
                    .map(|plan| {
                        let schema = Arc::clone(&self.schema);
                        move || {
                            aggregate_from(&schema, &plan.source, &plan.table, &plan.cuboid, None)
                                .map(|(full, rows)| (plan.cuboid, full, rows))
                        }
                    })
                    .collect();
                pool.run(tasks)
            }
            _ => plans
                .into_iter()
                .map(|plan| {
                    aggregate_from(&self.schema, &plan.source, &plan.table, &plan.cuboid, None)
                        .map(|(full, rows)| (plan.cuboid, full, rows))
                })
                .collect(),
        }
    }

    /// Releases a finished tier's tables: dropped in transient mode,
    /// moved into the retained incremental state otherwise. The Arcs are
    /// sole owners by now (all aggregation tasks completed), so the
    /// unwrap is free.
    fn retire_tier(&mut self, cache: &mut FxHashMap<CuboidSpec, Arc<CuboidTable>>, dims: usize) {
        for (cuboid, table) in cache.drain() {
            if self.transient {
                self.mem.remove(table_bytes(&table, dims));
            } else {
                let table = Arc::try_unwrap(table).unwrap_or_else(|shared| (*shared).clone());
                self.tables.insert(cuboid, table);
            }
        }
    }

    /// Same-window batch, incremental mode: fold into the m/o tables and
    /// every retained between-layer table in place, re-screening only
    /// the touched cells.
    fn merge_batch_incremental(&mut self, tuples: &[MTuple], delta: &mut UnitDelta) -> Result<()> {
        let dims = self.schema.num_dims();
        let m_spec = self.layers.lattice().m_layer().clone();
        let o_spec = self.layers.lattice().o_layer().clone();

        // Critical layers, maintained directly in the exposed result.
        for is_o in [false, true] {
            let spec = if is_o { &o_spec } else { &m_spec };
            let table = if is_o {
                self.result.o_table_mut()
            } else {
                self.result.m_table_mut()
            };
            let before = table_bytes(table, dims);
            let (touched, created) = fold_tuples_into(&self.schema, &m_spec, spec, table, tuples)?;
            self.mem
                .add(table_bytes(table, dims).saturating_sub(before));
            self.stats.rows_folded += tuples.len() as u64;
            self.stats.cells_computed += created;
            delta.cells_touched += touched.len() as u64;
        }

        // Between-layer cuboids: fold, then re-screen exactly the
        // touched cells (exception status can flip either way). The
        // exception stores are bracketed so the accountant tracks their
        // growth/shrinkage too.
        let exc_before = exception_bytes(&self.result, dims);
        let exceptions = self.result.exceptions_mut();
        for (cuboid, table) in &mut self.tables {
            let before = table_bytes(table, dims);
            let (touched, created) =
                fold_tuples_into(&self.schema, &m_spec, cuboid, table, tuples)?;
            self.mem
                .add(table_bytes(table, dims).saturating_sub(before));
            self.stats.rows_folded += tuples.len() as u64;
            self.stats.cells_computed += created;
            delta.cells_touched += touched.len() as u64;

            let exc = exceptions.entry(cuboid.clone()).or_default();
            for key in touched {
                let isb = table[&key];
                let is_exception = self.policy.is_exception(cuboid, &isb);
                let was_exception = exc.contains_key(&key);
                if is_exception {
                    exc.insert(key.clone(), isb);
                    if !was_exception {
                        delta.appeared.push((cuboid.clone(), key));
                    }
                } else if was_exception {
                    exc.remove(&key);
                    delta.cleared.push((cuboid.clone(), key));
                }
            }
        }
        exceptions.retain(|_, t| !t.is_empty());
        let exc_after = exception_bytes(&self.result, dims);
        self.mem.add(exc_after.saturating_sub(exc_before));
        self.mem.remove(exc_before.saturating_sub(exc_after));
        Ok(())
    }

    /// Same-window batch, transient mode: fold into the retained m-layer
    /// and recompute everything above it (there are no retained tables
    /// to merge into).
    fn merge_batch_transient(&mut self, tuples: &[MTuple], delta: &mut UnitDelta) -> Result<()> {
        let dims = self.schema.num_dims();
        let m_spec = self.layers.lattice().m_layer().clone();
        let mut m_table = std::mem::take(self.result.m_table_mut());
        let before: FxHashSet<(CuboidSpec, CellKey)> = self
            .result
            .iter_exceptions()
            .map(|(c, k, _)| (c.clone(), k.clone()))
            .collect();

        let m_bytes = table_bytes(&m_table, dims);
        let (touched, created) =
            fold_tuples_into(&self.schema, &m_spec, &m_spec, &mut m_table, tuples)?;
        self.mem
            .add(table_bytes(&m_table, dims).saturating_sub(m_bytes));
        self.stats.rows_folded += tuples.len() as u64;
        self.stats.cells_computed += created;
        delta.cells_touched += touched.len() as u64;

        let m_table = Arc::new(m_table);
        let (o_table, exceptions) = self.compute_uppers(&m_table)?;
        let m_table = Arc::try_unwrap(m_table).unwrap_or_else(|shared| (*shared).clone());
        delta.appeared = exceptions
            .iter()
            .flat_map(|(c, t)| t.keys().map(move |k| (c.clone(), k.clone())))
            .filter(|cell| !before.contains(cell))
            .collect();
        delta.cleared = before
            .into_iter()
            .filter(|(c, k)| !exceptions.get(c).is_some_and(|t| t.contains_key(k)))
            .collect();
        // The replaced o-table and exception stores die with the old
        // result; release their analytical bytes so the accountant's
        // live set (and therefore future peaks) stays truthful.
        self.mem
            .remove(table_bytes(self.result.o_table(), dims) + exception_bytes(&self.result, dims));
        self.result = CubeResult::new(
            self.layers.clone(),
            self.policy.clone(),
            Algorithm::MoCubing,
            m_table,
            o_table,
            exceptions,
            FxHashMap::default(),
            self.stats,
        );
        Ok(())
    }

    /// Refreshes the retention statistics and publishes them into the
    /// exposed result. Incremental mode genuinely retains the
    /// between-layer full tables across batches, so they count toward
    /// `cells_retained`/`retained_bytes` (in transient mode
    /// `self.tables` is empty and the figures reduce to the batch
    /// algorithm's critical-layers-plus-exceptions).
    fn refresh_stats(&mut self) {
        let dims = self.schema.num_dims();
        let result = &self.result;
        self.stats.exception_cells = result.total_exception_cells();
        self.stats.cells_retained = result.m_layer_cells() as u64
            + result.o_layer_cells() as u64
            + self.stats.exception_cells
            + self.tables.values().map(|t| t.len() as u64).sum::<u64>();
        self.stats.retained_bytes = table_bytes(result.m_table(), dims)
            + table_bytes(result.o_table(), dims)
            + exception_bytes(result, dims)
            + self
                .tables
                .values()
                .map(|t| table_bytes(t, dims))
                .sum::<usize>();
        self.stats.peak_bytes = self.mem.peak();
        self.result.set_stats(self.stats);
    }
}

/// Total analytical bytes of a result's exception stores.
pub(crate) fn exception_bytes(result: &CubeResult, dims: usize) -> usize {
    result
        .exceptions_map()
        .values()
        .map(|t| table_bytes(t, dims))
        .sum()
}

impl CubingEngine for MoCubingEngine {
    fn algorithm(&self) -> Algorithm {
        Algorithm::MoCubing
    }

    fn ingest_unit(&mut self, tuples: &[MTuple]) -> Result<UnitDelta> {
        validate_tuples(&self.schema, self.layers.lattice().m_layer(), tuples)?;
        let started = Instant::now();
        let window = batch_window(tuples);
        let opened_unit = self.window != Some(window);
        let mut delta = UnitDelta::for_batch(window, opened_unit, tuples.len());
        if opened_unit {
            // The old window closes with the rollover: exceptions that
            // do not recur in the new window are reported as cleared, so
            // appeared/cleared consumers can maintain a live alarm set
            // across units.
            let before: FxHashSet<(CuboidSpec, CellKey)> = self
                .result
                .iter_exceptions()
                .map(|(c, k, _)| (c.clone(), k.clone()))
                .collect();
            // Commit the window only after a successful rollover: a
            // failed one leaves the engine on its previous unit and the
            // next batch re-opens from scratch.
            self.window = None;
            self.open_unit(tuples)?;
            self.window = Some(window);
            self.units_opened += 1;
            delta.cells_touched = self.stats.cells_computed;
            let after: FxHashSet<(CuboidSpec, CellKey)> = self
                .result
                .iter_exceptions()
                .map(|(c, k, _)| (c.clone(), k.clone()))
                .collect();
            delta.appeared = after.difference(&before).cloned().collect();
            delta.cleared = before.difference(&after).cloned().collect();
        } else if self.transient {
            self.merge_batch_transient(tuples, &mut delta)?;
        } else {
            self.merge_batch_incremental(tuples, &mut delta)?;
        }
        delta.unit = self.units_opened.saturating_sub(1);
        delta.sort_cells();
        debug_assert!(delta.is_sorted());
        self.stats.elapsed += started.elapsed();
        self.refresh_stats();
        Ok(delta)
    }

    fn result(&self) -> &CubeResult {
        &self.result
    }

    fn stats(&self) -> &RunStats {
        &self.stats
    }

    /// Incremental mode keeps every between-layer full table for the
    /// open unit, which is exactly what a sharded merge needs; transient
    /// mode drops them and must answer `None`.
    fn full_between_tables(&self) -> Option<&FxHashMap<CuboidSpec, CuboidTable>> {
        if self.transient {
            None
        } else {
            Some(&self.tables)
        }
    }
}

// ---------------------------------------------------------------------------
// Algorithm 2 — popular-path cubing
// ---------------------------------------------------------------------------

/// Algorithm 2 as an incremental engine: the full tables along the
/// popular path (the paper's retained state) live in the exposed
/// result. A same-window batch merges into every path table directly
/// (the extracted equivalent of inserting into the path-ordered H-tree
/// and re-aggregating the insert path); exception-guided drilling over
/// the off-path cuboids is then brought up to date **incrementally**:
/// the engine retains a per-cuboid exception [`Frontier`] plus the full
/// drilled off-path tables ([`DrillFrontier`]), re-screens only the
/// path cells the batch touched, and re-aggregates an off-path cuboid
/// only when a parent frontier changed or the batch touched its
/// qualifying region — every other cuboid's drill output is reused
/// verbatim, so per-batch step-3 work is proportional to the *delta*
/// (touched cells + frontier churn), not the cube. Opening a new unit
/// rebuilds the H-tree, path tables and frontier state from scratch.
///
/// [`with_full_drill_replay`](Self::with_full_drill_replay) restores
/// the pre-frontier behavior (replay all of step 3 per batch) as the
/// reference baseline; both modes produce byte-identical cubes.
#[derive(Debug, Clone)]
pub struct PopularPathEngine {
    schema: CubeSchema,
    layers: CriticalLayers,
    policy: ExceptionPolicy,
    path: PopularPath,
    window: Option<(i64, i64)>,
    units_opened: u64,
    /// Cells computed along the path (steps 1+2), excluding drilling —
    /// lets the drilling replay restate `cells_computed` exactly.
    path_cells: u64,
    /// Retained step-3 state: per-cuboid frontiers + drilled tables.
    drill: DrillFrontier,
    /// Replay all of step 3 on every batch (the reference baseline)
    /// instead of the frontier-dirty incremental walk.
    full_replay: bool,
    stats: RunStats,
    mem: MemoryAccountant,
    result: CubeResult,
}

impl PopularPathEngine {
    /// Creates an engine drilling along `path` (or the default
    /// dimension-order path when `None`).
    ///
    /// # Errors
    /// [`CoreError::Olap`] for a path that does not span the lattice.
    pub fn new(
        schema: CubeSchema,
        layers: CriticalLayers,
        policy: ExceptionPolicy,
        path: Option<PopularPath>,
    ) -> Result<Self> {
        let path = match path {
            Some(p) => p,
            None => PopularPath::default_for(layers.lattice())?,
        };
        let result = empty_result(&layers, &policy, Algorithm::PopularPath);
        Ok(PopularPathEngine {
            schema,
            layers,
            policy,
            path,
            window: None,
            units_opened: 0,
            path_cells: 0,
            drill: DrillFrontier::default(),
            full_replay: false,
            stats: RunStats::default(),
            mem: MemoryAccountant::new(),
            result,
        })
    }

    /// The popular path the engine drills along.
    pub fn path(&self) -> &PopularPath {
        &self.path
    }

    /// Switches the engine to the pre-frontier behavior: replay **all**
    /// of step 3 (exception-guided drilling over every off-path cuboid)
    /// on every same-window batch, instead of restricting the replay to
    /// cuboids whose exception frontier changed. Cubes are
    /// byte-identical either way — this mode exists as the reference
    /// baseline for the equivalence tests and the `incremental` bench
    /// experiment's speedup measurement.
    #[must_use]
    pub fn with_full_drill_replay(mut self) -> Self {
        self.full_replay = true;
        self
    }

    /// The retained step-3 state of the open unit: per-cuboid exception
    /// frontiers and the drilled off-path tables.
    pub fn drill_state(&self) -> &DrillFrontier {
        &self.drill
    }

    /// Consumes the engine, returning the final cube result.
    pub fn into_result(self) -> CubeResult {
        self.result
    }

    /// Full recomputation for a new unit window: path-ordered H-tree
    /// roll-up (steps 1 & 2 of the batch algorithm), then drilling.
    fn open_unit(&mut self, tuples: &[MTuple]) -> Result<()> {
        let dims = self.schema.num_dims();
        let lattice = self.layers.lattice();
        self.stats = RunStats::default();
        self.mem = MemoryAccountant::new();

        let attrs = attrs_for_path(lattice, &self.path);
        let mut tree: HTree<Isb> = HTree::new(attrs)?;
        for t in tuples {
            let values = expand_tuple(&self.schema, lattice.m_layer(), t.ids(), tree.order());
            let leaf = tree.insert_path(&values)?;
            match tree.payload_mut(leaf) {
                Some(acc) => merge_sibling(acc, t.isb())?,
                slot @ None => *slot = Some(*t.isb()),
            }
        }
        self.stats.rows_folded += tuples.len() as u64;
        tree.aggregate_bottom_up(
            |m| *m,
            |acc, next| {
                merge_sibling(acc, next).expect("one validated window");
            },
        );
        self.mem.add(tree.approx_bytes());

        // Path cuboid i corresponds to tree depth `o_attrs + i`.
        let o_attrs = (0..dims)
            .filter(|&d| lattice.o_layer().level(d) > 0)
            .count();
        let depth_of: FxHashMap<usize, &CuboidSpec> = self
            .path
            .cuboids()
            .iter()
            .enumerate()
            .map(|(i, c)| (o_attrs + i, c))
            .collect();
        let mut path_tables: FxHashMap<CuboidSpec, CuboidTable> = FxHashMap::default();
        for cuboid in self.path.cuboids() {
            path_tables.insert(cuboid.clone(), CuboidTable::default());
        }
        crate::popular_path::extract_path_tables(
            &self.schema,
            &tree,
            lattice.m_layer(),
            &depth_of,
            &mut path_tables,
        )?;
        self.path_cells = path_tables.values().map(|t| t.len() as u64).sum();
        for table in path_tables.values() {
            self.mem.add(table_bytes(table, dims));
        }
        self.stats.cells_computed += self.path_cells;
        self.stats.cuboids_computed += self.path.cuboids().len() as u32;
        let tree_bytes = tree.approx_bytes();
        drop(tree);
        self.mem.remove(tree_bytes);

        // The m- and o-layer tables live in the path tables too; expose
        // them as the critical layers (this duplication is the batch
        // algorithm's result shape).
        let m_table = path_tables[lattice.m_layer()].clone();
        self.mem.add(table_bytes(&m_table, dims));
        let o_table = path_tables[lattice.o_layer()].clone();
        self.mem.add(table_bytes(&o_table, dims));
        self.result = CubeResult::new(
            self.layers.clone(),
            self.policy.clone(),
            Algorithm::PopularPath,
            m_table,
            o_table,
            FxHashMap::default(),
            path_tables,
            self.stats,
        );
        self.drill_full()
    }

    /// Incremental merge of a same-window batch into every path table
    /// (and the critical-layer mirrors), then the step-3 update —
    /// frontier-dirty by default, a full replay in baseline mode.
    fn merge_batch(&mut self, tuples: &[MTuple], delta: &mut UnitDelta) -> Result<()> {
        let dims = self.schema.num_dims();
        let m_spec = self.layers.lattice().m_layer().clone();
        let o_spec = self.layers.lattice().o_layer().clone();
        let path_specs: Vec<CuboidSpec> = self.path.cuboids().to_vec();

        self.stats.rows_folded += tuples.len() as u64;
        let mut touched_all: FxHashMap<CuboidSpec, FxHashSet<CellKey>> = FxHashMap::default();
        let mut m_updates: Vec<(CellKey, Isb)> = Vec::new();
        let mut o_updates: Vec<(CellKey, Isb)> = Vec::new();
        for cuboid in &path_specs {
            let table = self
                .result
                .path_tables_mut()
                .get_mut(cuboid)
                .expect("path tables are pre-created per unit");
            let before = table_bytes(table, dims);
            let (touched, created) =
                fold_tuples_into(&self.schema, &m_spec, cuboid, table, tuples)?;
            self.mem
                .add(table_bytes(table, dims).saturating_sub(before));
            self.path_cells += created;
            delta.cells_touched += touched.len() as u64;
            // The critical layers are always on the path; remember their
            // touched cells so the m/o mirror tables can be synced below
            // without re-folding the batch.
            if cuboid == &m_spec {
                m_updates = touched
                    .iter()
                    .map(|k| {
                        let isb = table[k];
                        (k.clone(), isb)
                    })
                    .collect();
            } else if cuboid == &o_spec {
                o_updates = touched
                    .iter()
                    .map(|k| {
                        let isb = table[k];
                        (k.clone(), isb)
                    })
                    .collect();
            }
            // The incremental drill re-screens exactly these cells.
            touched_all.insert(cuboid.clone(), touched);
        }
        for spec_is_m in [true, false] {
            let (updates, mirror) = if spec_is_m {
                (&m_updates, self.result.m_table_mut())
            } else {
                (&o_updates, self.result.o_table_mut())
            };
            let before = table_bytes(mirror, dims);
            for (key, isb) in updates {
                mirror.insert(key.clone(), *isb);
            }
            self.mem
                .add(table_bytes(mirror, dims).saturating_sub(before));
        }
        if self.full_replay {
            self.drill_full()
        } else {
            self.drill_incremental(&touched_all)
        }
    }

    /// Step 3, from scratch: exception-guided drilling over every
    /// off-path cuboid, aggregated from the (updated) path tables.
    /// Coarse-to-fine, so every cuboid's one-step-coarser parents are
    /// screened first; an off-path cell is computed only when at least
    /// one parent projection lies on that parent's exception frontier.
    /// Rebuilds the retained [`DrillFrontier`] state the incremental
    /// walk ([`drill_incremental`](Self::drill_incremental)) updates on
    /// later batches.
    fn drill_full(&mut self) -> Result<()> {
        let dims = self.schema.num_dims();
        let lattice = self.layers.lattice();
        let is_m_or_o = |c: &CuboidSpec| c == lattice.m_layer() || c == lattice.o_layer();
        let mut top_down = lattice.bottom_up_order();
        top_down.reverse();

        for table in self.drill.tables.values() {
            self.mem.remove(table_bytes(table, dims));
        }
        self.drill.clear();

        let mut exceptions: FxHashMap<CuboidSpec, CuboidTable> = FxHashMap::default();
        let mut drilled_rows: u64 = 0;

        for cuboid in top_down {
            if let Some(full) = self.result.path_tables().get(&cuboid) {
                let keep = !is_m_or_o(&cuboid);
                let mut keys = FxHashSet::default();
                let mut exc = CuboidTable::default();
                for (key, isb) in full {
                    if self.policy.is_exception(&cuboid, isb) {
                        keys.insert(key.clone());
                        if keep {
                            exc.insert(key.clone(), *isb);
                        }
                    }
                }
                self.drill
                    .frontiers
                    .insert(cuboid.clone(), Frontier::from_cells(keys));
                if !exc.is_empty() {
                    exceptions.insert(cuboid, exc);
                }
                continue;
            }

            let parents = lattice.parents(&cuboid);
            if !self.has_drill_candidates(&parents) {
                self.drill
                    .frontiers
                    .insert(cuboid.clone(), Frontier::default());
                continue;
            }
            let (computed, frontier, exc, rows) = self.drill_cuboid(&cuboid, &parents)?;
            drilled_rows += rows;
            self.drill.frontiers.insert(cuboid.clone(), frontier);
            if !exc.is_empty() {
                exceptions.insert(cuboid.clone(), exc);
            }
            self.mem.add(table_bytes(&computed, dims));
            self.drill.tables.insert(cuboid, computed);
        }

        // Swap the replayed exception stores in, keeping the analytical
        // accounting balanced.
        for table in exceptions.values() {
            self.mem.add(table_bytes(table, dims));
        }
        let old = std::mem::replace(self.result.exceptions_mut(), exceptions);
        for table in old.values() {
            self.mem.remove(table_bytes(table, dims));
        }

        self.stats.rows_folded += drilled_rows;
        self.stats.drill_replayed_cuboids += self.drill.tables.len() as u64;
        self.restate_drill_counters();
        Ok(())
    }

    /// Step 3, frontier-dirty: brings the retained drill state up to
    /// date after a same-window batch touching `touched` path cells.
    ///
    /// 1. Path frontiers and exception stores are re-screened **only at
    ///    the touched cells** (everything else is provably unchanged).
    /// 2. Off-path cuboids are walked coarse-to-fine; one is
    ///    re-aggregated only when a parent frontier changed this batch
    ///    (newly exceptional ancestors drill down, cleared ancestors
    ///    retract their drilled subtree) or the batch touched a cell of
    ///    its qualifying region (stale drilled values). Unchanged
    ///    frontiers keep their prior off-path tables verbatim — and
    ///    because [`drill_aggregate`] folds in a deterministic sorted
    ///    order, the retained tables are byte-identical to what a full
    ///    replay would recompute.
    fn drill_incremental(
        &mut self,
        touched: &FxHashMap<CuboidSpec, FxHashSet<CellKey>>,
    ) -> Result<()> {
        let dims = self.schema.num_dims();
        let m_spec = self.layers.lattice().m_layer().clone();
        let o_spec = self.layers.lattice().o_layer().clone();
        self.drill.changed.clear();
        let exc_before = exception_bytes(&self.result, dims);

        // Phase 1: path frontiers + exception stores, touched cells only.
        let mut exc_updates: Vec<(CuboidSpec, CellKey, Option<Isb>)> = Vec::new();
        for cuboid in self.path.cuboids() {
            let Some(keys) = touched.get(cuboid) else {
                continue;
            };
            let table = &self.result.path_tables()[cuboid];
            let keep = cuboid != &m_spec && cuboid != &o_spec;
            let frontier = self.drill.frontiers.entry(cuboid.clone()).or_default();
            let mut changed = false;
            for key in keys {
                let isb = table[key];
                if self
                    .policy
                    .screen_frontier_cell(cuboid, frontier.cells_mut(), key, &isb)
                    .is_some()
                {
                    changed = true;
                }
                if keep {
                    let is_exc = frontier.contains(key);
                    exc_updates.push((cuboid.clone(), key.clone(), is_exc.then_some(isb)));
                }
            }
            if changed {
                self.drill.changed.insert(cuboid.clone());
            }
        }

        // Phase 2: the off-path walk. `touch_memo` caches, per parent
        // cuboid, whether any touched m-cell projects onto its frontier
        // — the "did the batch touch this cuboid's qualifying region?"
        // half of the dirty test, shared by all of the parent's
        // children.
        let lattice = self.layers.lattice();
        let mut top_down = lattice.bottom_up_order();
        top_down.reverse();
        let m_touched = touched.get(&m_spec);
        let mut touch_memo: FxHashMap<CuboidSpec, bool> = FxHashMap::default();
        let mut replayed: u64 = 0;
        let mut skipped: u64 = 0;
        let mut exc_replacements: Vec<(CuboidSpec, Option<CuboidTable>)> = Vec::new();

        for cuboid in top_down {
            if self.result.path_tables().contains_key(&cuboid) {
                continue;
            }
            let parents = lattice.parents(&cuboid);
            if !self.has_drill_candidates(&parents) {
                // Cleared ancestors: retract the drilled subtree.
                let had_frontier = self
                    .drill
                    .frontiers
                    .get(&cuboid)
                    .is_some_and(|f| !f.is_empty());
                if let Some(old) = self.drill.tables.remove(&cuboid) {
                    self.mem.remove(table_bytes(&old, dims));
                    exc_replacements.push((cuboid.clone(), None));
                    replayed += 1;
                } else {
                    skipped += 1;
                }
                if had_frontier {
                    self.drill.changed.insert(cuboid.clone());
                }
                self.drill.frontiers.insert(cuboid, Frontier::default());
                continue;
            }

            let parent_changed = parents.iter().any(|p| self.drill.changed.contains(p));
            let batch_touches = parents.iter().any(|p| {
                *touch_memo.entry(p.clone()).or_insert_with(|| {
                    let Some(keys) = m_touched else {
                        return false;
                    };
                    let Some(frontier) = self.drill.frontiers.get(p) else {
                        return false;
                    };
                    if frontier.is_empty() {
                        return false;
                    }
                    let projector = Projector::new(&self.schema, &m_spec, p);
                    let mut out = vec![0u32; dims];
                    keys.iter().any(|k| {
                        projector.project_into(k.ids(), &mut out);
                        frontier.contains_ids(&out)
                    })
                })
            });
            if !parent_changed && !batch_touches {
                // Unchanged frontier, untouched region: the retained
                // table (and its exception store) is exact verbatim.
                skipped += 1;
                continue;
            }

            // Re-drill this cuboid — the identical code path the full
            // replay runs, so reuse-vs-replay can never diverge.
            let (computed, new_frontier, exc, rows) = self.drill_cuboid(&cuboid, &parents)?;
            self.stats.rows_folded += rows;
            replayed += 1;

            if self.drill.frontiers.get(&cuboid) != Some(&new_frontier) {
                self.drill.changed.insert(cuboid.clone());
            }
            self.drill.frontiers.insert(cuboid.clone(), new_frontier);
            exc_replacements.push((cuboid.clone(), (!exc.is_empty()).then_some(exc)));
            self.mem.add(table_bytes(&computed, dims));
            if let Some(old) = self.drill.tables.insert(cuboid, computed) {
                self.mem.remove(table_bytes(&old, dims));
            }
        }

        // Apply the collected exception-store updates in one pass.
        let exceptions = self.result.exceptions_mut();
        for (cuboid, key, value) in exc_updates {
            match value {
                Some(isb) => {
                    exceptions.entry(cuboid).or_default().insert(key, isb);
                }
                None => {
                    if let Some(t) = exceptions.get_mut(&cuboid) {
                        t.remove(&key);
                    }
                }
            }
        }
        for (cuboid, replacement) in exc_replacements {
            match replacement {
                Some(table) => {
                    exceptions.insert(cuboid, table);
                }
                None => {
                    exceptions.remove(&cuboid);
                }
            }
        }
        exceptions.retain(|_, t| !t.is_empty());
        let exc_after = exception_bytes(&self.result, dims);
        self.mem.add(exc_after.saturating_sub(exc_before));
        self.mem.remove(exc_before.saturating_sub(exc_after));

        self.stats.drill_replayed_cuboids += replayed;
        self.stats.drill_skipped_cuboids += skipped;
        self.restate_drill_counters();
        Ok(())
    }

    /// Whether any of `parents` has a non-empty exception frontier —
    /// the step-3 precondition for drilling a cuboid at all.
    fn has_drill_candidates(&self, parents: &[CuboidSpec]) -> bool {
        parents
            .iter()
            .any(|p| self.drill.frontiers.get(p).is_some_and(|f| !f.is_empty()))
    }

    /// Drills one off-path cuboid from its closest path source,
    /// qualifying cells against the parents' current frontiers, and
    /// screens the result. This is the **single** drill-one-cuboid code
    /// path — the full replay and the frontier-dirty walk both call it,
    /// so "re-drills exactly as the replay would" holds by
    /// construction. Returns the computed full table, its frontier, its
    /// exception store and the source rows folded.
    fn drill_cuboid(
        &self,
        cuboid: &CuboidSpec,
        parents: &[CuboidSpec],
    ) -> Result<(CuboidTable, Frontier, CuboidTable, u64)> {
        let lattice = self.layers.lattice();
        let probe = QualifyProbe::new(&self.schema, cuboid, parents, &self.drill.frontiers);
        let source = lattice
            .closest_computed_descendant(cuboid, self.path.cuboids().iter())
            .ok_or_else(|| CoreError::NotMaterialized {
                detail: format!("no path cuboid below {cuboid}"),
            })?;
        let source_table = &self.result.path_tables()[source];
        let (computed, rows) =
            drill_aggregate(&self.schema, source, source_table, cuboid, |ids| {
                probe.qualifies(ids)
            })?;
        let mut keys = FxHashSet::default();
        let mut exc = CuboidTable::default();
        for (key, isb) in &computed {
            if self.policy.is_exception(cuboid, isb) {
                keys.insert(key.clone());
                exc.insert(key.clone(), *isb);
            }
        }
        Ok((computed, Frontier::from_cells(keys), exc, rows))
    }

    /// Restates the drilled share of the work counters from the
    /// retained drill state (drilling is a replay: the counters
    /// describe the *current* cube, they do not accumulate across
    /// same-window batches).
    fn restate_drill_counters(&mut self) {
        self.stats.cuboids_computed =
            self.path.cuboids().len() as u32 + self.drill.tables.len() as u32;
        self.stats.cells_computed = self.path_cells + self.drill.drilled_cells();
    }

    /// Refreshes the retention statistics and publishes them into the
    /// exposed result. The drilled off-path tables are genuinely
    /// retained across a unit's batches (that is what makes the
    /// frontier-dirty replay incremental), so they count toward the
    /// retention figures alongside the path tables and exceptions.
    fn refresh_stats(&mut self) {
        let dims = self.schema.num_dims();
        let result = &self.result;
        self.stats.exception_cells = result.total_exception_cells();
        self.stats.cells_retained = result
            .path_tables()
            .values()
            .map(|t| t.len() as u64)
            .sum::<u64>()
            + self.stats.exception_cells
            + self.drill.drilled_cells();
        self.stats.retained_bytes = result
            .path_tables()
            .values()
            .map(|t| table_bytes(t, dims))
            .sum::<usize>()
            + exception_bytes(result, dims)
            + self
                .drill
                .tables
                .values()
                .map(|t| table_bytes(t, dims))
                .sum::<usize>();
        self.stats.peak_bytes = self.mem.peak();
        self.result.set_stats(self.stats);
    }

    /// All retained between-layer exception cells as owned pairs.
    fn exception_cells(&self) -> FxHashSet<(CuboidSpec, CellKey)> {
        self.result
            .iter_exceptions()
            .map(|(c, k, _)| (c.clone(), k.clone()))
            .collect()
    }
}

/// Alloc-free drill qualification for one off-path cuboid: a target
/// cell qualifies when its projection into at least one parent cuboid
/// lands on that parent's exception frontier. Parents with empty
/// frontiers are dropped up front, projections run through the PR-4
/// [`Projector`] LUTs into one reusable scratch buffer, and the
/// frontier probe is the `Borrow<[u32]>` slice lookup — no per-row
/// key allocation anywhere on the drill path.
struct QualifyProbe<'a> {
    /// `(frontier, target → parent projector)` per non-empty parent.
    parents: Vec<(&'a Frontier, Projector<'a>)>,
    scratch: RefCell<Vec<u32>>,
}

impl<'a> QualifyProbe<'a> {
    fn new(
        schema: &'a CubeSchema,
        cuboid: &CuboidSpec,
        parent_specs: &[CuboidSpec],
        frontiers: &'a FxHashMap<CuboidSpec, Frontier>,
    ) -> Self {
        let parents = parent_specs
            .iter()
            .filter_map(|p| {
                frontiers
                    .get(p)
                    .filter(|f| !f.is_empty())
                    .map(|f| (f, Projector::new(schema, cuboid, p)))
            })
            .collect();
        QualifyProbe {
            parents,
            scratch: RefCell::new(vec![0u32; schema.num_dims()]),
        }
    }

    /// Tests one target cell's coordinates against the parent frontiers.
    fn qualifies(&self, ids: &[u32]) -> bool {
        let mut scratch = self.scratch.borrow_mut();
        self.parents.iter().any(|(frontier, projector)| {
            projector.project_into(ids, &mut scratch);
            frontier.contains_ids(&scratch)
        })
    }
}

impl CubingEngine for PopularPathEngine {
    fn algorithm(&self) -> Algorithm {
        Algorithm::PopularPath
    }

    fn ingest_unit(&mut self, tuples: &[MTuple]) -> Result<UnitDelta> {
        validate_tuples(&self.schema, self.layers.lattice().m_layer(), tuples)?;
        let started = Instant::now();
        let window = batch_window(tuples);
        let opened_unit = self.window != Some(window);
        // Diffed against the post-batch state below; on a rollover this
        // reports the closed window's lapsed exceptions as cleared.
        let before = self.exception_cells();
        let mut delta = UnitDelta::for_batch(window, opened_unit, tuples.len());
        if opened_unit {
            // Commit the window only after a successful rollover (see
            // the trait docs).
            self.window = None;
            self.open_unit(tuples)?;
            self.window = Some(window);
            self.units_opened += 1;
            delta.cells_touched = self.stats.cells_computed;
        } else {
            self.merge_batch(tuples, &mut delta)?;
        }
        delta.unit = self.units_opened.saturating_sub(1);
        let after = self.exception_cells();
        delta.appeared = after.difference(&before).cloned().collect();
        delta.cleared = before.difference(&after).cloned().collect();
        delta.sort_cells();
        debug_assert!(delta.is_sorted());
        self.stats.elapsed += started.elapsed();
        self.refresh_stats();
        Ok(delta)
    }

    fn result(&self) -> &CubeResult {
        &self.result
    }

    fn stats(&self) -> &RunStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use regcube_regress::TimeSeries;

    fn isb(slope: f64, base: f64) -> Isb {
        let z = TimeSeries::from_fn(0, 9, |t| base + slope * t as f64).unwrap();
        Isb::fit(&z).unwrap()
    }

    fn setup() -> (CubeSchema, CriticalLayers, ExceptionPolicy) {
        let schema = CubeSchema::synthetic(2, 2, 2).unwrap();
        let layers = CriticalLayers::new(
            &schema,
            CuboidSpec::new(vec![0, 0]),
            CuboidSpec::new(vec![2, 2]),
        )
        .unwrap();
        (schema, layers, ExceptionPolicy::slope_threshold(0.4))
    }

    fn dense_tuples() -> Vec<MTuple> {
        let mut tuples = Vec::new();
        for a in 0..4u32 {
            for b in 0..4u32 {
                tuples.push(MTuple::new(vec![a, b], isb((a + b) as f64 / 10.0, 1.0)));
            }
        }
        tuples
    }

    /// Same keys, measures equal up to merge-order rounding.
    fn tables_approx_eq(a: &CuboidTable, b: &CuboidTable) {
        assert_eq!(a.len(), b.len());
        for (key, m) in a {
            let other = b.get(key).unwrap_or_else(|| panic!("missing cell {key}"));
            assert!(m.approx_eq(other, 1e-9), "{key}: {m} vs {other}");
        }
    }

    #[test]
    fn fresh_engine_exposes_an_empty_result() {
        let (schema, layers, policy) = setup();
        let e = MoCubingEngine::new(schema, layers, policy).unwrap();
        assert_eq!(e.result().m_layer_cells(), 0);
        assert_eq!(e.result().total_exception_cells(), 0);
        assert_eq!(e.stats().cells_computed, 0);
    }

    #[test]
    fn single_batch_matches_batch_compute() {
        let (schema, layers, policy) = setup();
        let tuples = dense_tuples();
        let mut e = MoCubingEngine::new(schema.clone(), layers.clone(), policy.clone()).unwrap();
        let delta = e.ingest_unit(&tuples).unwrap();
        assert!(delta.opened_unit);
        assert_eq!(delta.unit, 0);
        assert_eq!(delta.tuples, 16);

        let batch = crate::mo_cubing::compute(&schema, &layers, &policy, &tuples).unwrap();
        assert_eq!(e.result().m_layer_cells(), batch.m_layer_cells());
        assert_eq!(
            e.result().total_exception_cells(),
            batch.total_exception_cells()
        );
        assert_eq!(e.stats().cells_computed, batch.stats().cells_computed);
    }

    #[test]
    fn same_window_batches_merge_incrementally() {
        let (schema, layers, policy) = setup();
        let tuples = dense_tuples();
        let mut split =
            MoCubingEngine::new(schema.clone(), layers.clone(), policy.clone()).unwrap();
        let d0 = split.ingest_unit(&tuples[..4]).unwrap();
        let d1 = split.ingest_unit(&tuples[4..]).unwrap();
        assert!(d0.opened_unit);
        assert!(!d1.opened_unit, "same interval folds into the open unit");
        assert_eq!(d1.unit, 0);

        let mut whole = MoCubingEngine::new(schema, layers, policy).unwrap();
        whole.ingest_unit(&tuples).unwrap();
        let (a, b) = (split.result(), whole.result());
        tables_approx_eq(a.m_table(), b.m_table());
        tables_approx_eq(a.o_table(), b.o_table());
        assert_eq!(a.total_exception_cells(), b.total_exception_cells());
    }

    #[test]
    fn transient_mode_matches_incremental_mode() {
        let (schema, layers, policy) = setup();
        let tuples = dense_tuples();
        let mut transient =
            MoCubingEngine::transient(schema.clone(), layers.clone(), policy.clone()).unwrap();
        let mut incremental = MoCubingEngine::new(schema, layers, policy).unwrap();
        for batch in tuples.chunks(6) {
            transient.ingest_unit(batch).unwrap();
            incremental.ingest_unit(batch).unwrap();
        }
        let (a, b) = (transient.result(), incremental.result());
        tables_approx_eq(a.m_table(), b.m_table());
        tables_approx_eq(a.o_table(), b.o_table());
        assert_eq!(a.total_exception_cells(), b.total_exception_cells());
        // Transient mode retains no between-layer full tables.
        assert!(transient.tables.is_empty());
        assert!(!incremental.tables.is_empty());
    }

    #[test]
    fn new_window_opens_a_new_unit() {
        let (schema, layers, policy) = setup();
        let mut e = MoCubingEngine::new(schema, layers, policy).unwrap();
        e.ingest_unit(&dense_tuples()).unwrap();
        let shifted: Vec<MTuple> = (0..4u32)
            .map(|a| MTuple::new(vec![a, a], Isb::new(10, 19, 1.0, 0.9).unwrap()))
            .collect();
        let delta = e.ingest_unit(&shifted).unwrap();
        assert!(delta.opened_unit);
        assert_eq!(delta.unit, 1);
        assert_eq!(delta.window, (10, 19));
        assert_eq!(e.result().m_layer_cells(), 4, "old unit replaced");
    }

    #[test]
    fn transient_merge_does_not_leak_peak_bytes() {
        let (schema, layers, policy) = setup();
        let tuples = dense_tuples();
        let mut e = MoCubingEngine::transient(schema, layers, policy).unwrap();
        e.ingest_unit(&tuples).unwrap();
        let first_peak = e.stats().peak_bytes;
        // Re-merging the same cells grows no retained state; with
        // balanced accounting the peak stabilizes (old + new coexist
        // once, then the old side is released every batch).
        for _ in 0..6 {
            e.ingest_unit(&tuples).unwrap();
        }
        assert!(
            e.stats().peak_bytes <= first_peak * 3,
            "peak {} drifted from first-batch peak {}",
            e.stats().peak_bytes,
            first_peak
        );
    }

    #[test]
    fn incremental_mode_reports_its_extra_retained_memory() {
        let (schema, layers, policy) = setup();
        let tuples = dense_tuples();
        let mut transient =
            MoCubingEngine::transient(schema.clone(), layers.clone(), policy.clone()).unwrap();
        let mut incremental = MoCubingEngine::new(schema, layers, policy).unwrap();
        transient.ingest_unit(&tuples).unwrap();
        incremental.ingest_unit(&tuples).unwrap();
        // Incremental mode retains the between-layer full tables; its
        // retention figures must say so.
        assert!(incremental.stats().retained_bytes > transient.stats().retained_bytes);
        assert!(incremental.stats().cells_retained > transient.stats().cells_retained);
    }

    #[test]
    fn failed_rollover_does_not_poison_the_engine() {
        let (schema, layers, policy) = setup();
        let mut e = MoCubingEngine::new(schema, layers, policy).unwrap();
        e.ingest_unit(&dense_tuples()).unwrap();
        // A structurally invalid batch (wrong arity) fails validation...
        let bad = vec![MTuple::new(vec![0], isb(0.1, 0.0))];
        assert!(e.ingest_unit(&bad).is_err());
        // ...and a valid batch for a fresh window still works afterwards.
        let next: Vec<MTuple> = (0..3u32)
            .map(|a| MTuple::new(vec![a, a], Isb::new(10, 19, 1.0, 0.2).unwrap()))
            .collect();
        let delta = e.ingest_unit(&next).unwrap();
        assert!(delta.opened_unit);
        assert_eq!(e.result().m_layer_cells(), 3);
    }

    #[test]
    fn incremental_exceptions_can_clear() {
        let (schema, layers, _) = setup();
        // Threshold 0.4: a lone +0.5 slope cell is exceptional; merging a
        // -0.5 sibling into the same coarse cells cancels it out.
        let policy = ExceptionPolicy::slope_threshold(0.4);
        let mut e = MoCubingEngine::new(schema, layers, policy).unwrap();
        let up = vec![MTuple::new(vec![0, 0], isb(0.5, 1.0))];
        let down = vec![MTuple::new(vec![1, 1], isb(-0.5, 1.0))];
        let d0 = e.ingest_unit(&up).unwrap();
        assert!(!d0.appeared.is_empty());
        let d1 = e.ingest_unit(&down).unwrap();
        assert!(
            !d1.cleared.is_empty(),
            "coarse cells covering both streams lose exception status"
        );
    }

    #[test]
    fn popular_path_engine_single_batch_matches_batch_compute() {
        let (schema, layers, policy) = setup();
        let tuples = dense_tuples();
        let mut e =
            PopularPathEngine::new(schema.clone(), layers.clone(), policy.clone(), None).unwrap();
        e.ingest_unit(&tuples).unwrap();
        let batch = crate::popular_path::compute(&schema, &layers, &policy, None, &tuples).unwrap();
        assert_eq!(e.result().m_layer_cells(), batch.m_layer_cells());
        assert_eq!(e.result().path_tables().len(), batch.path_tables().len());
        assert_eq!(
            e.result().total_exception_cells(),
            batch.total_exception_cells()
        );
        assert_eq!(e.stats().cuboids_computed, batch.stats().cuboids_computed);
    }

    #[test]
    fn popular_path_incremental_equals_whole_batch() {
        let (schema, layers, policy) = setup();
        let tuples = dense_tuples();
        let mut split =
            PopularPathEngine::new(schema.clone(), layers.clone(), policy.clone(), None).unwrap();
        for chunk in tuples.chunks(5) {
            split.ingest_unit(chunk).unwrap();
        }
        let mut whole = PopularPathEngine::new(schema, layers, policy, None).unwrap();
        whole.ingest_unit(&tuples).unwrap();
        let (a, b) = (split.result(), whole.result());
        tables_approx_eq(a.m_table(), b.m_table());
        tables_approx_eq(a.o_table(), b.o_table());
        for (cuboid, table) in b.path_tables() {
            tables_approx_eq(&a.path_tables()[cuboid], table);
        }
        assert_eq!(a.total_exception_cells(), b.total_exception_cells());
    }

    #[test]
    fn boxed_engines_dispatch_dynamically() {
        let (schema, layers, policy) = setup();
        let mut engines: Vec<Box<dyn CubingEngine>> = vec![
            Box::new(MoCubingEngine::new(schema.clone(), layers.clone(), policy.clone()).unwrap()),
            Box::new(PopularPathEngine::new(schema, layers, policy, None).unwrap()),
        ];
        let tuples = dense_tuples();
        for e in &mut engines {
            e.ingest_unit(&tuples).unwrap();
            assert_eq!(e.result().m_layer_cells(), 16);
        }
        assert_eq!(engines[0].algorithm(), Algorithm::MoCubing);
        assert_eq!(engines[1].algorithm(), Algorithm::PopularPath);
        // Footnote 7 at the trait level: A1 retains a superset of A2.
        assert!(
            engines[0].result().total_exception_cells()
                >= engines[1].result().total_exception_cells()
        );
    }

    #[test]
    fn empty_batches_are_rejected() {
        let (schema, layers, policy) = setup();
        let mut e = MoCubingEngine::new(schema, layers, policy).unwrap();
        assert!(e.ingest_unit(&[]).is_err());
    }
}
