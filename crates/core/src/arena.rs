//! Bump-arena key interning and epoch-reclaimed cuboid tables.
//!
//! # Why an arena backend
//!
//! The row backend pays the global allocator twice per cell: once to box
//! the `CellKey` when the cell first appears, and once to free it when
//! the window rolls over and the table drops. A stream cube opens a new
//! unit window forever (Framework 4.1), so that churn — `O(cells)`
//! allocator calls per unit — is the steady-state cost of running the
//! cube, and exactly the kind of unbounded per-window work the paper's
//! bounded-memory design is meant to avoid.
//!
//! This module replaces both calls with arena arithmetic:
//!
//! * a [`KeyInterner`] hash-conses cell keys into fixed-size **chunks**
//!   of `u32` member ids (the hashlife node-pool pattern: the open-
//!   addressed index stores [`KeyId`] handles, and probing compares
//!   slices read back out of the chunks — no boxed keys anywhere);
//! * an [`ArenaTable`] pairs the interner with a measure column indexed
//!   by [`KeyId`], implementing [`TableStorage`] so the shared
//!   aggregation/exception code paths run over it unchanged;
//! * window rollover is an **epoch reset**
//!   ([`ArenaTable::reset_epoch`]): the epoch counter bumps, the live
//!   lengths zero, and every chunk, index slot and measure slot is
//!   reused by the next window in place — `O(1)` reclamation, zero
//!   allocator calls;
//! * tables that do drop return their chunks to a shared [`ChunkPool`]
//!   free list, so even cross-table reclamation bypasses the allocator.
//!
//! [`ArenaCubingEngine`] is Algorithm 1 (m/o-cubing) with the whole tier
//! roll-up running over a **retained working set** of arena tables — one
//! per cuboid, reset and refilled each unit. After the first unit the
//! steady state performs (almost) no allocator calls at all; the
//! `arena` bench experiment and `BENCH_arena.json` gate the win in CI.
//! Select it per [`Backend::Arena`](crate::engine::Backend::Arena):
//!
//! ```
//! use regcube_core::engine::Backend;
//! assert_ne!(Backend::Arena, Backend::Row);
//! ```
//!
//! or construct the engine directly:
//!
//! ```
//! use regcube_core::arena::ArenaCubingEngine;
//! use regcube_core::engine::CubingEngine;
//! use regcube_core::{CriticalLayers, ExceptionPolicy, MTuple};
//! use regcube_olap::{CubeSchema, CuboidSpec};
//! use regcube_regress::Isb;
//!
//! let schema = CubeSchema::synthetic(2, 2, 2).unwrap();
//! let layers = CriticalLayers::new(
//!     &schema,
//!     CuboidSpec::new(vec![0, 0]),
//!     CuboidSpec::new(vec![2, 2]),
//! ).unwrap();
//! let mut engine = ArenaCubingEngine::new(
//!     schema,
//!     layers,
//!     ExceptionPolicy::slope_threshold(0.5),
//! ).unwrap();
//! let tuples = vec![
//!     MTuple::new(vec![0, 0], Isb::new(0, 9, 1.0, 0.9).unwrap()),
//!     MTuple::new(vec![3, 2], Isb::new(0, 9, 1.0, 0.1).unwrap()),
//! ];
//! let delta = engine.ingest_unit(&tuples).unwrap();
//! assert!(delta.opened_unit);
//! assert_eq!(engine.result().m_layer_cells(), 2);
//! assert_eq!(engine.stats().keys_interned, engine.stats().cells_computed);
//! ```

use crate::engine::{
    batch_window, depth_tiers, empty_result, exception_bytes, fold_tuples_into, CubingEngine,
    UnitDelta,
};
use crate::exception::ExceptionPolicy;
use crate::layers::CriticalLayers;
use crate::measure::{merge_sibling, validate_tuples, MTuple};
use crate::result::{Algorithm, CubeResult};
use crate::stats::{MemoryAccountant, RunStats};
use crate::table::{aggregate_into, collect_exceptions, table_bytes, CuboidTable, TableStorage};
use crate::Result;
use regcube_olap::cell::CellKey;
use regcube_olap::fxhash::{FxHashMap, FxHashSet, FxHasher};
use regcube_olap::{CubeSchema, CuboidSpec};
use regcube_regress::Isb;
use std::hash::Hasher as _;
use std::sync::{Arc, Mutex};
use std::time::Instant;

// ---------------------------------------------------------------------------
// KeyId, ChunkPool
// ---------------------------------------------------------------------------

/// Handle of one interned cell key: a dense index into the interner's
/// chunked key arena. Hash-consed — interning the same member ids twice
/// returns the same `KeyId` for as long as the epoch lasts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct KeyId(pub u32);

impl KeyId {
    /// The handle as a dense `usize` index (insertion order).
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Target chunk size in `u32` slots (16 KiB): large enough that chunk
/// bookkeeping is negligible, small enough that a part-filled chunk
/// wastes little.
const CHUNK_SLOTS: usize = 4096;

/// A free list of recycled key chunks, shared by every [`ArenaTable`] of
/// one engine. Tables draw chunks here first and return them on drop, so
/// chunk memory cycles between cuboids without touching the global
/// allocator; [`alloc_calls`](ArenaCounters::alloc_calls) counts the
/// times the pool actually had to allocate.
#[derive(Debug, Default)]
pub struct ChunkPool {
    free: Vec<Vec<u32>>,
    alloc_calls: u64,
    recycled: u64,
}

/// A [`ChunkPool`] shared across the tables of one engine (tables live
/// behind the engine, the pool behind an `Arc<Mutex<_>>` so engines stay
/// `Send` for sharding).
pub type SharedChunkPool = Arc<Mutex<ChunkPool>>;

impl ChunkPool {
    /// A fresh, empty, shareable pool.
    pub fn shared() -> SharedChunkPool {
        Arc::new(Mutex::new(ChunkPool::default()))
    }

    /// Takes a zeroed chunk of exactly `slots` `u32`s, preferring the
    /// free list over the allocator.
    fn take(&mut self, slots: usize) -> Vec<u32> {
        match self.free.pop() {
            Some(mut chunk) => {
                self.recycled += 1;
                if chunk.capacity() < slots {
                    self.alloc_calls += 1;
                }
                chunk.clear();
                chunk.resize(slots, 0);
                chunk
            }
            None => {
                self.alloc_calls += 1;
                vec![0u32; slots]
            }
        }
    }

    /// Returns a chunk to the free list (O(1), no deallocation).
    fn give(&mut self, chunk: Vec<u32>) {
        self.free.push(chunk);
    }

    /// Bytes currently parked on the free list.
    pub fn free_bytes(&self) -> usize {
        self.free.iter().map(|c| c.capacity() * 4).sum()
    }

    /// Chunks currently parked on the free list.
    pub fn free_chunks(&self) -> usize {
        self.free.len()
    }

    /// Drains the pool's counters (allocations performed, free-list
    /// hits) since the last drain.
    fn drain_counters(&mut self) -> (u64, u64) {
        (
            std::mem::take(&mut self.alloc_calls),
            std::mem::take(&mut self.recycled),
        )
    }
}

// ---------------------------------------------------------------------------
// KeyInterner
// ---------------------------------------------------------------------------

/// Counter deltas one arena component accrued since the last drain —
/// summed into [`RunStats`] by the engine so the arena's allocator
/// behavior is observable per unit.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ArenaCounters {
    /// Fresh keys interned (cache misses; hits return an existing id).
    pub keys_interned: u64,
    /// Whole epochs reclaimed in O(1) by [`ArenaTable::reset_epoch`].
    pub epochs_reclaimed: u64,
    /// Heap allocations the arena layer performed (new chunks, index
    /// growth, measure-column growth) — the figure the arena exists to
    /// crush.
    pub alloc_calls: u64,
    /// Chunk requests served without the allocator: free-list hits plus
    /// in-place reuse of a table's own chunks after an epoch reset.
    pub chunks_recycled: u64,
}

impl ArenaCounters {
    /// Accumulates `other` into `self`.
    pub fn absorb(&mut self, other: ArenaCounters) {
        self.keys_interned += other.keys_interned;
        self.epochs_reclaimed += other.epochs_reclaimed;
        self.alloc_calls += other.alloc_calls;
        self.chunks_recycled += other.chunks_recycled;
    }
}

/// A hash-consing interner of fixed-arity `u32` cell keys.
///
/// Keys live contiguously in pooled chunks; the open-addressed index
/// stores `(epoch, KeyId)` pairs, so membership of a slot is "was it
/// written this epoch" — which is what makes [`reset`](Self::reset)
/// O(1): bumping the epoch invalidates every slot at once without
/// touching one.
#[derive(Debug, Clone)]
pub struct KeyInterner {
    arity: usize,
    keys_per_chunk: usize,
    /// Pooled chunks of `keys_per_chunk * arity` slots each, written by
    /// index (always full length, so an epoch reset never re-zeroes).
    chunks: Vec<Vec<u32>>,
    /// Interned keys this epoch.
    len: u32,
    /// Open-addressed index: `epoch << 32 | KeyId`. A slot whose epoch
    /// tag differs from the current epoch is empty.
    slots: Vec<u64>,
    epoch: u32,
    pool: SharedChunkPool,
    counters: ArenaCounters,
}

impl KeyInterner {
    /// An empty interner for keys of `arity` member ids, drawing chunks
    /// from `pool`.
    pub fn new(arity: usize, pool: SharedChunkPool) -> Self {
        debug_assert!(arity > 0, "cell keys have at least one dimension");
        let arity = arity.max(1);
        KeyInterner {
            arity,
            keys_per_chunk: (CHUNK_SLOTS / arity).max(1),
            chunks: Vec::new(),
            len: 0,
            slots: Vec::new(),
            epoch: 1,
            pool,
            counters: ArenaCounters::default(),
        }
    }

    /// Number of keys interned this epoch.
    #[inline]
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Whether the current epoch has no keys.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Key arity (ids per key).
    #[inline]
    pub fn arity(&self) -> usize {
        self.arity
    }

    #[inline]
    fn hash_ids(ids: &[u32]) -> u64 {
        let mut h = FxHasher::default();
        for &v in ids {
            h.write_u32(v);
        }
        h.finish()
    }

    /// The member ids of an interned key.
    #[inline]
    pub fn resolve(&self, id: KeyId) -> &[u32] {
        debug_assert!(id.0 < self.len, "KeyId from a reclaimed epoch");
        let chunk = id.index() / self.keys_per_chunk;
        let off = (id.index() % self.keys_per_chunk) * self.arity;
        &self.chunks[chunk][off..off + self.arity]
    }

    /// Interns `ids`, returning its handle and whether it was fresh.
    /// Same ids ⇒ same [`KeyId`] for the whole epoch (hash-consing).
    pub fn intern(&mut self, ids: &[u32]) -> (KeyId, bool) {
        debug_assert_eq!(ids.len(), self.arity);
        if (self.len as usize + 1) * 8 > self.slots.len() * 7 {
            self.grow_index();
        }
        let mask = self.slots.len() - 1;
        let mut i = Self::hash_ids(ids) as usize & mask;
        loop {
            let slot = self.slots[i];
            if (slot >> 32) as u32 != self.epoch {
                let id = self.push_key(ids);
                self.slots[i] = (u64::from(self.epoch) << 32) | u64::from(id.0);
                return (id, true);
            }
            let id = KeyId(slot as u32);
            if self.resolve(id) == ids {
                return (id, false);
            }
            i = (i + 1) & mask;
        }
    }

    /// Appends `ids` to the chunk arena, pulling a chunk from the pool
    /// (or reusing a retained one) at chunk boundaries.
    fn push_key(&mut self, ids: &[u32]) -> KeyId {
        let id = self.len;
        let chunk = id as usize / self.keys_per_chunk;
        if chunk == self.chunks.len() {
            let slots = self.keys_per_chunk * self.arity;
            self.chunks
                .push(self.pool.lock().expect("pool lock").take(slots));
        } else if id as usize % self.keys_per_chunk == 0 {
            // Epoch-retained chunk reused in place: reclamation paid off.
            self.counters.chunks_recycled += 1;
        }
        let off = (id as usize % self.keys_per_chunk) * self.arity;
        self.chunks[chunk][off..off + self.arity].copy_from_slice(ids);
        self.len += 1;
        self.counters.keys_interned += 1;
        KeyId(id)
    }

    /// Doubles (or seeds) the open-addressed index and rehashes every
    /// live key. Amortized O(1) per intern; the only allocation the
    /// index ever performs.
    fn grow_index(&mut self) {
        let new_len = (self.slots.len() * 2).max(16);
        self.slots = vec![0u64; new_len];
        self.counters.alloc_calls += 1;
        let mask = new_len - 1;
        for id in 0..self.len {
            let key = {
                let ids = self.resolve(KeyId(id));
                Self::hash_ids(ids)
            };
            let mut i = key as usize & mask;
            while (self.slots[i] >> 32) as u32 == self.epoch {
                i = (i + 1) & mask;
            }
            self.slots[i] = (u64::from(self.epoch) << 32) | u64::from(id);
        }
    }

    /// Reclaims the whole epoch in O(1): the epoch counter bumps (every
    /// index slot becomes empty at once) and the key count zeroes, while
    /// chunks and index capacity stay in place for the next epoch.
    /// No [`KeyId`] handed out after the reset is ever invalidated by
    /// the reset — only the (now unreachable) previous epoch's ids are.
    pub fn reset(&mut self) {
        if self.len > 0 || !self.chunks.is_empty() {
            self.counters.epochs_reclaimed += 1;
        }
        self.len = 0;
        if self.epoch == u32::MAX {
            // Once per 2^32 windows: re-zero so epoch tags restart safely.
            self.epoch = 1;
            self.slots.fill(0);
        } else {
            self.epoch += 1;
        }
    }

    /// Bytes the interner holds across epochs (chunks + index).
    pub fn retained_bytes(&self) -> usize {
        self.chunks.iter().map(|c| c.capacity() * 4).sum::<usize>()
            + self.slots.capacity() * std::mem::size_of::<u64>()
    }

    /// Drains the interner's counter deltas since the last drain.
    pub fn take_counters(&mut self) -> ArenaCounters {
        std::mem::take(&mut self.counters)
    }
}

impl Drop for KeyInterner {
    fn drop(&mut self) {
        // Chunks outlive the table: back to the free list, not the
        // allocator.
        if let Ok(mut pool) = self.pool.lock() {
            for chunk in self.chunks.drain(..) {
                pool.give(chunk);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// ArenaTable
// ---------------------------------------------------------------------------

/// One cuboid's cell store in the arena layout: interned keys plus a
/// measure column indexed by [`KeyId`]. Implements [`TableStorage`], so
/// the shared aggregation ([`aggregate_into`]) and exception screen
/// ([`collect_exceptions`]) run over it unchanged; iteration order is
/// insertion order (dense [`KeyId`] order).
#[derive(Debug, Clone)]
pub struct ArenaTable {
    interner: KeyInterner,
    measures: Vec<Isb>,
    measure_allocs: u64,
}

impl ArenaTable {
    /// An empty table for keys of `arity` ids, drawing chunks from
    /// `pool`.
    pub fn new(arity: usize, pool: SharedChunkPool) -> Self {
        ArenaTable {
            interner: KeyInterner::new(arity, pool),
            measures: Vec::new(),
            measure_allocs: 0,
        }
    }

    /// The measure of the cell at `ids`, if interned this epoch.
    pub fn get(&self, ids: &[u32]) -> Option<&Isb> {
        // Probe without inserting: resolve-and-compare like intern does.
        if self.interner.slots.is_empty() {
            return None;
        }
        let mask = self.interner.slots.len() - 1;
        let mut i = KeyInterner::hash_ids(ids) as usize & mask;
        loop {
            let slot = self.interner.slots[i];
            if (slot >> 32) as u32 != self.interner.epoch {
                return None;
            }
            let id = KeyId(slot as u32);
            if self.interner.resolve(id) == ids {
                return Some(&self.measures[id.index()]);
            }
            i = (i + 1) & mask;
        }
    }

    /// The member ids of an interned cell.
    #[inline]
    pub fn key(&self, id: KeyId) -> &[u32] {
        self.interner.resolve(id)
    }

    /// Reclaims the table's epoch in O(1) — see [`KeyInterner::reset`].
    /// The measure column keeps its capacity (`Isb` is `Copy`, so the
    /// clear is a length store).
    pub fn reset_epoch(&mut self) {
        self.interner.reset();
        self.measures.clear();
    }

    /// Bytes the table holds across epochs (chunks + index + measure
    /// capacity) — what an epoch reset retains for the next window.
    pub fn retained_bytes(&self) -> usize {
        self.interner.retained_bytes() + self.measures.capacity() * std::mem::size_of::<Isb>()
    }

    /// Materializes the table in the row layout (for the retained
    /// [`CubeResult`] every downstream consumer reads).
    pub fn to_row_table(&self) -> CuboidTable {
        let mut out =
            CuboidTable::with_capacity_and_hasher(self.interner.len(), Default::default());
        for id in 0..self.interner.len() as u32 {
            let key = KeyId(id);
            out.insert(
                CellKey::new(self.interner.resolve(key).to_vec()),
                self.measures[key.index()],
            );
        }
        out
    }

    /// Drains the table's counter deltas since the last drain.
    pub fn take_counters(&mut self) -> ArenaCounters {
        let mut c = self.interner.take_counters();
        c.alloc_calls += std::mem::take(&mut self.measure_allocs);
        c
    }
}

impl TableStorage for ArenaTable {
    fn len(&self) -> usize {
        self.interner.len()
    }

    fn merge_row(&mut self, ids: &[u32], isb: &Isb) -> Result<()> {
        let (id, fresh) = self.interner.intern(ids);
        if fresh {
            let cap = self.measures.capacity();
            self.measures.push(*isb);
            if self.measures.capacity() != cap {
                self.measure_allocs += 1;
            }
            Ok(())
        } else {
            merge_sibling(&mut self.measures[id.index()], isb)
        }
    }

    fn finish(&mut self) -> Result<()> {
        Ok(())
    }

    fn try_for_each_cell<F: FnMut(&[u32], &Isb) -> Result<()>>(&self, mut f: F) -> Result<()> {
        for id in 0..self.interner.len() as u32 {
            let key = KeyId(id);
            f(self.interner.resolve(key), &self.measures[key.index()])?;
        }
        Ok(())
    }

    fn approx_bytes(&self, _num_dims: usize) -> usize {
        // The arena's truth is its retained capacity: chunks, index and
        // measure column persist across epochs by design.
        self.retained_bytes()
    }
}

// ---------------------------------------------------------------------------
// ArenaCubingEngine
// ---------------------------------------------------------------------------

/// Algorithm 1 (m/o-cubing) over a retained working set of arena tables
/// — see the module docs for the design and
/// [`Backend::Arena`](crate::engine::Backend::Arena) for the
/// configuration seam.
///
/// Semantically a drop-in for a transient-mode [`crate::MoCubingEngine`]:
/// identical cube, exception set and [`UnitDelta`] stream (the contract
/// tests pin it, the golden suite end to end). It keeps no between-layer
/// row tables across batches
/// ([`full_between_tables`](CubingEngine::full_between_tables) answers
/// `None`), so a [`crate::shard::ShardedEngine`] composes with it
/// through the always-retain fallback, exactly like the columnar and
/// popular-path engines. What it *does* keep is capacity: one arena
/// table per cuboid, epoch-reset at every rollover, so the steady state
/// recycles instead of reallocating.
#[derive(Debug)]
pub struct ArenaCubingEngine {
    schema: Arc<CubeSchema>,
    layers: CriticalLayers,
    policy: ExceptionPolicy,
    pool: SharedChunkPool,
    /// The retained working set: one arena table per cuboid of the
    /// lattice (m-layer included), reused across windows.
    working: FxHashMap<CuboidSpec, ArenaTable>,
    window: Option<(i64, i64)>,
    units_opened: u64,
    stats: RunStats,
    mem: MemoryAccountant,
    result: CubeResult,
}

impl ArenaCubingEngine {
    /// Creates an arena engine for the given layers and policy.
    ///
    /// # Errors
    /// None today; the `Result` keeps the constructor signature uniform
    /// with the other backends (factory seams take fallible makers).
    pub fn new(
        schema: CubeSchema,
        layers: CriticalLayers,
        policy: ExceptionPolicy,
    ) -> Result<Self> {
        let result = empty_result(&layers, &policy, Algorithm::MoCubing);
        Ok(ArenaCubingEngine {
            schema: Arc::new(schema),
            layers,
            policy,
            pool: ChunkPool::shared(),
            working: FxHashMap::default(),
            window: None,
            units_opened: 0,
            stats: RunStats::default(),
            mem: MemoryAccountant::new(),
            result,
        })
    }

    /// The critical layers the engine cubes for.
    pub fn layers(&self) -> &CriticalLayers {
        &self.layers
    }

    /// The engine's shared chunk pool (observability / tests).
    pub fn pool(&self) -> &SharedChunkPool {
        &self.pool
    }

    /// Consumes the engine, returning the final cube result.
    pub fn into_result(self) -> CubeResult {
        self.result
    }

    /// Takes `cuboid`'s working table out of the set (creating it on
    /// first use) with its epoch reset — ready to refill for the current
    /// window. Taking it out lets the caller hold `&mut` target while
    /// reading sibling tables as sources.
    fn take_working(&mut self, cuboid: &CuboidSpec) -> ArenaTable {
        let mut table = self
            .working
            .remove(cuboid)
            .unwrap_or_else(|| ArenaTable::new(self.schema.num_dims(), Arc::clone(&self.pool)));
        table.reset_epoch();
        table
    }

    /// Bottom-up tier roll-up over the retained arena working set. Each
    /// cuboid aggregates from its closest computed descendant (the
    /// previous tier, falling back to the m-layer). Returns the o-layer
    /// and the exception stores in the row layout.
    fn compute_uppers(&mut self) -> Result<(CuboidTable, FxHashMap<CuboidSpec, CuboidTable>)> {
        let dims = self.schema.num_dims();
        let m_spec = self.layers.lattice().m_layer().clone();
        let o_spec = self.layers.lattice().o_layer().clone();

        let mut o_table = CuboidTable::default();
        let mut exceptions: FxHashMap<CuboidSpec, CuboidTable> = FxHashMap::default();
        let mut prev_tier: Vec<CuboidSpec> = Vec::new();
        for tier in depth_tiers(&self.layers) {
            let mut next_prev: Vec<CuboidSpec> = Vec::with_capacity(tier.len());
            for cuboid in tier {
                let source_spec: CuboidSpec = self
                    .layers
                    .lattice()
                    .closest_computed_descendant(&cuboid, prev_tier.iter())
                    .cloned()
                    .unwrap_or_else(|| m_spec.clone());
                let mut table = self.take_working(&cuboid);
                let source = &self.working[&source_spec];
                let rows = aggregate_into(
                    &self.schema,
                    &source_spec,
                    source,
                    &cuboid,
                    &mut table,
                    None,
                )?;
                self.stats.rows_folded += rows;
                self.stats.cells_computed += table.len() as u64;
                self.stats.cuboids_computed += 1;
                self.mem.add(table.approx_bytes(dims));

                if cuboid == o_spec {
                    o_table = table.to_row_table();
                    self.mem.add(table_bytes(&o_table, dims));
                } else {
                    let exc = collect_exceptions(&self.policy, &cuboid, &table);
                    if !exc.is_empty() {
                        self.mem.add(table_bytes(&exc, dims));
                        exceptions.insert(cuboid.clone(), exc);
                    }
                }
                self.working.insert(cuboid.clone(), table);
                next_prev.push(cuboid);
            }
            prev_tier = next_prev;
        }
        Ok((o_table, exceptions))
    }

    /// Full recomputation for a new unit window: every working table is
    /// epoch-reset (O(1) each) and refilled in place.
    fn open_unit(&mut self, tuples: &[MTuple]) -> Result<()> {
        let dims = self.schema.num_dims();
        let m_spec = self.layers.lattice().m_layer().clone();
        self.stats = RunStats::default();
        self.mem = MemoryAccountant::new();

        // Step 1: fold the batch into the arena m-layer. Duplicate
        // m-cells merge in arrival order, like the H-tree scan.
        let mut m_table = self.take_working(&m_spec);
        for t in tuples {
            m_table.merge_row(t.ids(), t.isb())?;
        }
        m_table.finish()?;
        self.mem.add(m_table.approx_bytes(dims));
        self.stats.rows_folded += tuples.len() as u64;
        self.stats.cells_computed += m_table.len() as u64;
        self.stats.cuboids_computed += 1;
        self.working.insert(m_spec.clone(), m_table);

        // Step 2: the rest of the lattice, tier by tier over the
        // retained working set.
        let (o_table, exceptions) = self.compute_uppers()?;
        let m_row = self.working[&m_spec].to_row_table();
        self.mem.add(table_bytes(&m_row, dims));
        self.result = CubeResult::new(
            self.layers.clone(),
            self.policy.clone(),
            Algorithm::MoCubing,
            m_row,
            o_table,
            exceptions,
            FxHashMap::default(),
            self.stats,
        );
        Ok(())
    }

    /// Same-window batch: fold into the retained row m-layer, rebuild
    /// the arena m-layer working table and recompute everything above it
    /// (epoch resets make the replay allocation-free).
    fn merge_batch(&mut self, tuples: &[MTuple], delta: &mut UnitDelta) -> Result<()> {
        let dims = self.schema.num_dims();
        let m_spec = self.layers.lattice().m_layer().clone();
        let mut m_row = std::mem::take(self.result.m_table_mut());

        let m_bytes = table_bytes(&m_row, dims);
        let (touched, created) =
            fold_tuples_into(&self.schema, &m_spec, &m_spec, &mut m_row, tuples)?;
        self.mem
            .add(table_bytes(&m_row, dims).saturating_sub(m_bytes));
        self.stats.rows_folded += tuples.len() as u64;
        self.stats.cells_computed += created;
        delta.cells_touched += touched.len() as u64;

        // Rebuild the arena m-layer (identity projection through the
        // shared aggregation path) and recompute the lattice.
        let mut m_table = self.take_working(&m_spec);
        aggregate_into(&self.schema, &m_spec, &m_row, &m_spec, &mut m_table, None)?;
        self.mem.add(m_table.approx_bytes(dims));
        self.working.insert(m_spec, m_table);
        let (o_table, exceptions) = self.compute_uppers()?;

        // The replaced o-table and exception stores die with the old
        // result; release their analytical bytes.
        self.mem
            .remove(table_bytes(self.result.o_table(), dims) + exception_bytes(&self.result, dims));
        self.result = CubeResult::new(
            self.layers.clone(),
            self.policy.clone(),
            Algorithm::MoCubing,
            m_row,
            o_table,
            exceptions,
            FxHashMap::default(),
            self.stats,
        );
        Ok(())
    }

    /// Drains the arena counters out of every working table and the
    /// pool into the unit's [`RunStats`].
    fn drain_arena_counters(&mut self) {
        let mut c = ArenaCounters::default();
        for table in self.working.values_mut() {
            c.absorb(table.take_counters());
        }
        let (allocs, recycled) = self.pool.lock().expect("pool lock").drain_counters();
        c.alloc_calls += allocs;
        c.chunks_recycled += recycled;
        self.stats.keys_interned += c.keys_interned;
        self.stats.epochs_reclaimed += c.epochs_reclaimed;
        self.stats.arena_alloc_calls += c.alloc_calls;
        self.stats.arena_chunks_recycled += c.chunks_recycled;
    }

    /// Refreshes the retention statistics and publishes them into the
    /// exposed result.
    fn refresh_stats(&mut self) {
        let dims = self.schema.num_dims();
        self.stats.arena_bytes_retained = self
            .working
            .values()
            .map(ArenaTable::retained_bytes)
            .sum::<usize>()
            + self.pool.lock().expect("pool lock").free_bytes();
        let result = &self.result;
        self.stats.exception_cells = result.total_exception_cells();
        self.stats.cells_retained = result.m_layer_cells() as u64
            + result.o_layer_cells() as u64
            + self.stats.exception_cells;
        self.stats.retained_bytes = table_bytes(result.m_table(), dims)
            + table_bytes(result.o_table(), dims)
            + exception_bytes(result, dims);
        self.stats.peak_bytes = self.mem.peak();
        self.result.set_stats(self.stats);
    }

    /// All retained between-layer exception cells as owned pairs.
    fn exception_cells(&self) -> FxHashSet<(CuboidSpec, CellKey)> {
        self.result
            .iter_exceptions()
            .map(|(c, k, _)| (c.clone(), k.clone()))
            .collect()
    }
}

impl CubingEngine for ArenaCubingEngine {
    fn algorithm(&self) -> Algorithm {
        Algorithm::MoCubing
    }

    fn ingest_unit(&mut self, tuples: &[MTuple]) -> Result<UnitDelta> {
        validate_tuples(&self.schema, self.layers.lattice().m_layer(), tuples)?;
        let started = Instant::now();
        let window = batch_window(tuples);
        let opened_unit = self.window != Some(window);
        // Diffed against the post-batch state below; on a rollover this
        // reports the closed window's lapsed exceptions as cleared.
        let before = self.exception_cells();
        let mut delta = UnitDelta::for_batch(window, opened_unit, tuples.len());
        if opened_unit {
            // Commit the window only after a successful rollover (the
            // trait's "no half-open window" contract).
            self.window = None;
            self.open_unit(tuples)?;
            self.window = Some(window);
            self.units_opened += 1;
            delta.cells_touched = self.stats.cells_computed;
        } else {
            self.merge_batch(tuples, &mut delta)?;
        }
        delta.unit = self.units_opened.saturating_sub(1);
        let after = self.exception_cells();
        delta.appeared = after.difference(&before).cloned().collect();
        delta.cleared = before.difference(&after).cloned().collect();
        delta.sort_cells();
        debug_assert!(delta.is_sorted());
        self.drain_arena_counters();
        self.stats.elapsed += started.elapsed();
        self.refresh_stats();
        Ok(delta)
    }

    fn result(&self) -> &CubeResult {
        &self.result
    }

    fn stats(&self) -> &RunStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MoCubingEngine;
    use regcube_regress::TimeSeries;

    fn isb(slope: f64, base: f64) -> Isb {
        let z = TimeSeries::from_fn(0, 9, |t| base + slope * t as f64).unwrap();
        Isb::fit(&z).unwrap()
    }

    fn setup() -> (CubeSchema, CriticalLayers, ExceptionPolicy) {
        let schema = CubeSchema::synthetic(2, 2, 2).unwrap();
        let layers = CriticalLayers::new(
            &schema,
            CuboidSpec::new(vec![0, 0]),
            CuboidSpec::new(vec![2, 2]),
        )
        .unwrap();
        (schema, layers, ExceptionPolicy::slope_threshold(0.4))
    }

    fn dense_tuples() -> Vec<MTuple> {
        let mut tuples = Vec::new();
        for a in 0..4u32 {
            for b in 0..4u32 {
                tuples.push(MTuple::new(vec![a, b], isb((a + b) as f64 / 10.0, 1.0)));
            }
        }
        tuples
    }

    fn tables_approx_eq(label: &str, a: &CuboidTable, b: &CuboidTable) {
        assert_eq!(a.len(), b.len(), "{label}: cell counts differ");
        for (key, m) in a {
            let other = b
                .get(key)
                .unwrap_or_else(|| panic!("{label}: cell {key} missing"));
            assert!(m.approx_eq(other, 1e-9), "{label} {key}: {m} vs {other}");
        }
    }

    #[test]
    fn interner_hash_conses_and_resolves() {
        let pool = ChunkPool::shared();
        let mut i = KeyInterner::new(3, pool);
        let (a, fresh_a) = i.intern(&[1, 2, 3]);
        let (b, fresh_b) = i.intern(&[4, 5, 6]);
        let (a2, fresh_a2) = i.intern(&[1, 2, 3]);
        assert!(fresh_a && fresh_b && !fresh_a2);
        assert_eq!(a, a2, "same ids, same KeyId");
        assert_ne!(a, b);
        assert_eq!(i.resolve(a), &[1, 2, 3]);
        assert_eq!(i.resolve(b), &[4, 5, 6]);
        assert_eq!(i.len(), 2);
    }

    #[test]
    fn epoch_reset_is_o1_and_reuses_capacity() {
        let pool = ChunkPool::shared();
        let mut i = KeyInterner::new(2, Arc::clone(&pool));
        for v in 0..500u32 {
            i.intern(&[v, v + 1]);
        }
        let retained = i.retained_bytes();
        let c = i.take_counters();
        assert_eq!(c.keys_interned, 500);
        assert!(c.alloc_calls > 0, "first epoch had to allocate");

        i.reset();
        assert_eq!(i.len(), 0);
        assert_eq!(i.retained_bytes(), retained, "reset frees nothing");
        // Refilling the same keys performs zero allocations: chunks and
        // index are reused in place.
        for v in 0..500u32 {
            let (_, fresh) = i.intern(&[v, v + 1]);
            assert!(fresh, "reset emptied the epoch");
        }
        let c = i.take_counters();
        assert_eq!(c.alloc_calls, 0, "steady-state epoch is allocation-free");
        assert_eq!(c.epochs_reclaimed, 1);
        assert!(c.chunks_recycled > 0);
        assert_eq!(
            pool.lock().unwrap().free_chunks(),
            0,
            "chunks stayed in the table"
        );
    }

    #[test]
    fn dropped_tables_return_chunks_to_the_pool() {
        let pool = ChunkPool::shared();
        {
            let mut t = ArenaTable::new(2, Arc::clone(&pool));
            for v in 0..100u32 {
                t.merge_row(&[v, v], &isb(0.1, 1.0)).unwrap();
            }
        }
        let free = pool.lock().unwrap().free_chunks();
        assert!(free > 0, "drop recycles chunks instead of freeing them");
        // A fresh table draws those chunks back out of the free list.
        let mut t = ArenaTable::new(2, Arc::clone(&pool));
        for v in 0..100u32 {
            t.merge_row(&[v, v], &isb(0.1, 1.0)).unwrap();
        }
        assert!(pool.lock().unwrap().free_chunks() < free);
        let (_, recycled) = pool.lock().unwrap().drain_counters();
        assert!(recycled > 0, "free-list hit counted in the pool");
    }

    #[test]
    fn arena_table_merges_like_the_row_table() {
        let pool = ChunkPool::shared();
        let mut arena = ArenaTable::new(2, pool);
        let mut row = CuboidTable::default();
        for (ids, slope) in [([0u32, 0u32], 0.2), ([3, 1], -0.7), ([0, 0], 0.05)] {
            let m = isb(slope, 2.0);
            arena.merge_row(&ids, &m).unwrap();
            row.merge_row(&ids, &m).unwrap();
        }
        arena.finish().unwrap();
        assert_eq!(TableStorage::len(&arena), 2);
        tables_approx_eq("arena vs row", &arena.to_row_table(), &row);
        assert!(arena.get(&[3, 1]).is_some());
        assert!(arena.get(&[9, 9]).is_none());
    }

    #[test]
    fn arena_engine_matches_row_engine_per_unit() {
        let (schema, layers, policy) = setup();
        let mut row =
            MoCubingEngine::transient(schema.clone(), layers.clone(), policy.clone()).unwrap();
        let mut arena = ArenaCubingEngine::new(schema, layers, policy).unwrap();
        let tuples = dense_tuples();
        // Unit 0 in two same-window chunks, then a rollover unit.
        for batch in [&tuples[..10], &tuples[10..]] {
            let dr = row.ingest_unit(batch).unwrap();
            let da = arena.ingest_unit(batch).unwrap();
            assert_eq!(dr.opened_unit, da.opened_unit);
            assert_eq!(dr.appeared, da.appeared);
            assert_eq!(dr.cleared, da.cleared);
        }
        let next: Vec<MTuple> = (0..3u32)
            .map(|a| MTuple::new(vec![a, a], Isb::new(10, 19, 1.0, 0.9).unwrap()))
            .collect();
        let dr = row.ingest_unit(&next).unwrap();
        let da = arena.ingest_unit(&next).unwrap();
        assert!(dr.opened_unit && da.opened_unit);
        assert_eq!(dr.unit, da.unit);
        assert_eq!(dr.appeared, da.appeared);
        assert_eq!(dr.cleared, da.cleared);
        let (a, b) = (arena.result(), row.result());
        tables_approx_eq("m", a.m_table(), b.m_table());
        tables_approx_eq("o", a.o_table(), b.o_table());
        assert_eq!(a.total_exception_cells(), b.total_exception_cells());
        assert_eq!(arena.stats().cells_computed, row.stats().cells_computed);
        assert_eq!(arena.stats().rows_folded, row.stats().rows_folded);
    }

    #[test]
    fn steady_state_rollovers_recycle_instead_of_allocating() {
        let (schema, layers, policy) = setup();
        let mut e = ArenaCubingEngine::new(schema, layers, policy).unwrap();
        let mut arena_allocs = Vec::new();
        for unit in 0..4i64 {
            let start = unit * 16;
            let batch: Vec<MTuple> = dense_tuples()
                .iter()
                .map(|t| {
                    let m = t.isb();
                    MTuple::new(
                        t.ids().to_vec(),
                        Isb::new(start, start + 9, m.base(), m.slope()).unwrap(),
                    )
                })
                .collect();
            e.ingest_unit(&batch).unwrap();
            arena_allocs.push(e.stats().arena_alloc_calls);
        }
        assert!(arena_allocs[0] > 0, "first unit builds the working set");
        for (unit, &allocs) in arena_allocs.iter().enumerate().skip(1) {
            assert_eq!(
                allocs, 0,
                "unit {unit}: steady-state rollover must be allocation-free in the arena layer"
            );
        }
        // Every unit after the first reclaims one epoch per cuboid.
        let s = e.stats();
        assert!(s.epochs_reclaimed > 0);
        assert_eq!(s.keys_interned, s.cells_computed);
        assert!(s.arena_bytes_retained > 0);
    }

    #[test]
    fn failed_rollover_does_not_poison_the_engine() {
        let (schema, layers, policy) = setup();
        let mut e = ArenaCubingEngine::new(schema, layers, policy).unwrap();
        e.ingest_unit(&dense_tuples()).unwrap();
        let bad = vec![MTuple::new(vec![0], isb(0.1, 0.0))];
        assert!(e.ingest_unit(&bad).is_err());
        let next: Vec<MTuple> = (0..3u32)
            .map(|a| MTuple::new(vec![a, a], Isb::new(10, 19, 1.0, 0.2).unwrap()))
            .collect();
        let delta = e.ingest_unit(&next).unwrap();
        assert!(delta.opened_unit);
        assert_eq!(e.result().m_layer_cells(), 3);
    }

    #[test]
    fn empty_batches_are_rejected() {
        let (schema, layers, policy) = setup();
        let mut e = ArenaCubingEngine::new(schema, layers, policy).unwrap();
        assert!(e.ingest_unit(&[]).is_err());
    }
}
