//! **Algorithm 2 — popular-path cubing**: roll the m-layer up to the
//! o-layer along one *popular drilling path*, storing the aggregated
//! regressions in the non-leaf nodes of a path-ordered H-tree; then drill
//! from the o-layer downward, computing in off-path cuboids **only the
//! children of exception cells**, each aggregated from the closest
//! computed lower cuboid (a path cuboid).
//!
//! Per the paper's footnote 7, this computes *fewer* exception cells than
//! Algorithm 1: only those reachable from the o-layer through a chain of
//! exceptional ancestors.

use crate::engine::{CubingEngine, PopularPathEngine};
use crate::error::CoreError;
use crate::exception::ExceptionPolicy;
use crate::layers::CriticalLayers;
use crate::measure::MTuple;
use crate::result::CubeResult;
use crate::table::CuboidTable;
use crate::Result;
use regcube_olap::cell::CellKey;
use regcube_olap::fxhash::{FxHashMap, FxHashSet};
use regcube_olap::htree::{HTree, NodeId};
use regcube_olap::{CubeSchema, CuboidSpec, PopularPath};
use regcube_regress::Isb;

/// The **exception frontier** of one cuboid: the set of its cells that
/// currently pass the exception policy — exactly the cells whose
/// descendants step 3 of Algorithm 2 drills into. The incremental drill
/// replay keeps one frontier per cuboid and re-aggregates an off-path
/// cuboid only when a parent frontier changed (or a batch touched its
/// qualifying region), so comparing frontiers — not whole tables — is
/// what bounds per-batch drilling work by the delta instead of the cube.
///
/// Probing is allocation-free: [`contains_ids`](Self::contains_ids)
/// accepts a plain projected id slice via the `CellKey: Borrow<[u32]>`
/// lookup, so the hot qualification path never boxes a key.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Frontier {
    cells: FxHashSet<CellKey>,
}

impl Frontier {
    /// Builds a frontier from an owned cell set.
    pub(crate) fn from_cells(cells: FxHashSet<CellKey>) -> Self {
        Frontier { cells }
    }

    /// Whether the cell with these (projected) member ids is on the
    /// frontier — the alloc-free probe of the drill qualification path.
    #[inline]
    pub fn contains_ids(&self, ids: &[u32]) -> bool {
        self.cells.contains(ids)
    }

    /// Whether `key`'s cell is on the frontier.
    #[inline]
    pub fn contains(&self, key: &CellKey) -> bool {
        self.cells.contains(key)
    }

    /// Number of frontier cells.
    #[inline]
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the frontier is empty (nothing to drill under).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Iterates the frontier cells (hash order).
    pub fn iter(&self) -> impl Iterator<Item = &CellKey> {
        self.cells.iter()
    }

    /// Mutable access for the engine's per-cell re-screening.
    pub(crate) fn cells_mut(&mut self) -> &mut FxHashSet<CellKey> {
        &mut self.cells
    }
}

/// Retained state of the **frontier-dirty** incremental step-3 replay:
/// one [`Frontier`] per cuboid, the full drilled tables of every
/// off-path cuboid that had drill candidates, and the set of cuboids
/// whose frontier changed in the current batch (the dirt that propagates
/// down the lattice walk).
///
/// A [`crate::engine::PopularPathEngine`] rebuilds this state on every
/// unit rollover (full drill) and updates it in place for same-window
/// batches: path frontiers are re-screened only at the cells the batch
/// touched, and an off-path cuboid is re-aggregated only when a parent
/// frontier changed or the batch touched a cell of its qualifying
/// region — otherwise its retained table (and therefore its exception
/// store) is reused verbatim. The retained tables are byte-identical to
/// what a from-scratch step-3 replay would compute, because the drill
/// aggregation ([`crate::table::drill_aggregate`]) folds source cells
/// in a deterministic sorted order independent of when it runs.
#[derive(Debug, Clone, Default)]
pub struct DrillFrontier {
    /// Per-cuboid exception frontiers (path and off-path cuboids).
    pub(crate) frontiers: FxHashMap<CuboidSpec, Frontier>,
    /// Retained full drilled tables of off-path cuboids with candidates
    /// (an empty table still marks the cuboid as drilled).
    pub(crate) tables: FxHashMap<CuboidSpec, CuboidTable>,
    /// Cuboids whose frontier changed in the current batch.
    pub(crate) changed: FxHashSet<CuboidSpec>,
}

impl DrillFrontier {
    /// Forgets everything (unit rollover).
    pub(crate) fn clear(&mut self) {
        self.frontiers.clear();
        self.tables.clear();
        self.changed.clear();
    }

    /// The current exception frontier of `cuboid`, if one was recorded.
    pub fn frontier(&self, cuboid: &CuboidSpec) -> Option<&Frontier> {
        self.frontiers.get(cuboid)
    }

    /// Whether `cuboid`'s frontier changed in the current batch.
    pub fn frontier_changed(&self, cuboid: &CuboidSpec) -> bool {
        self.changed.contains(cuboid)
    }

    /// Number of off-path cuboids currently holding a drilled table.
    pub fn drilled_cuboids(&self) -> usize {
        self.tables.len()
    }

    /// Total cells across the retained drilled tables.
    pub fn drilled_cells(&self) -> u64 {
        self.tables.values().map(|t| t.len() as u64).sum()
    }

    /// The retained drilled table of one off-path cuboid.
    pub fn drilled_table(&self, cuboid: &CuboidSpec) -> Option<&CuboidTable> {
        self.tables.get(cuboid)
    }
}

/// Runs Algorithm 2 with the given path (or the default dimension-order
/// path when `path` is `None`).
///
/// This is a thin batch wrapper over [`PopularPathEngine`]: it builds an
/// engine for the given layers and path, ingests `tuples` as one unit
/// and returns the engine's result (the m- and o-layer tables live in
/// the retained path tables too — the memory the paper attributes to
/// popular-path cubing).
///
/// # Errors
/// * [`CoreError::BadInput`] for structurally invalid tuples.
/// * [`CoreError::Olap`] for a path that does not span the lattice.
pub fn compute(
    schema: &CubeSchema,
    layers: &CriticalLayers,
    policy: &ExceptionPolicy,
    path: Option<&PopularPath>,
    tuples: &[MTuple],
) -> Result<CubeResult> {
    let mut engine = PopularPathEngine::new(
        schema.clone(),
        layers.clone(),
        policy.clone(),
        path.cloned(),
    )?;
    engine.ingest_unit(tuples)?;
    Ok(engine.into_result())
}

/// Extracts the cells materialized at the path depths of the rolled-up
/// H-tree into per-cuboid tables. A DFS tracks the value stack; at every
/// depth that corresponds to a path cuboid the node's aggregated payload
/// becomes one cell.
pub(crate) fn extract_path_tables(
    schema: &CubeSchema,
    tree: &HTree<Isb>,
    m_layer: &CuboidSpec,
    depth_of: &FxHashMap<usize, &CuboidSpec>,
    out: &mut FxHashMap<CuboidSpec, CuboidTable>,
) -> Result<()> {
    // Map each path cuboid to its key-building recipe: for each dimension
    // with level > 0, which attribute position in the order supplies it.
    let order = tree.order();
    let dims = m_layer.num_dims();
    let mut recipes: FxHashMap<usize, Vec<(usize, usize)>> = FxHashMap::default();
    for (&depth, cuboid) in depth_of {
        let mut recipe = Vec::new();
        for d in 0..dims {
            let level = cuboid.level(d);
            if level == 0 {
                continue;
            }
            let pos = order[..depth]
                .iter()
                .position(|a| a.dim == d && a.level == level)
                .ok_or_else(|| CoreError::BadInput {
                    detail: format!(
                        "path attribute order misses dim {d} level {level} by depth {depth}"
                    ),
                })?;
            recipe.push((d, pos));
        }
        recipes.insert(depth, recipe);
    }
    let _ = schema; // the recipes already encode the projection

    // Iterative DFS.
    let mut stack: Vec<(NodeId, usize)> = vec![(0, 0)];
    let mut values: Vec<u32> = Vec::with_capacity(tree.depth());
    // `values` mirrors the current root path; we manage it via depths.
    while let Some((node, depth)) = stack.pop() {
        values.truncate(depth.saturating_sub(1));
        if node != 0 {
            values.push(tree.node_value(node));
        }
        if let Some(cuboid) = depth_of.get(&depth) {
            if let Some(payload) = tree.payload(node) {
                let recipe = &recipes[&depth];
                let mut key = vec![0u32; dims];
                for &(d, pos) in recipe {
                    key[d] = values[pos];
                }
                out.get_mut(*cuboid)
                    .expect("table pre-created")
                    .insert(CellKey::new(key), *payload);
            }
        }
        for (_, child) in tree.children(node) {
            stack.push((child, depth + 1));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::result::Algorithm;
    use crate::table::aggregate_from;
    use regcube_olap::cell::project_key;
    use regcube_regress::TimeSeries;

    fn isb(slope: f64, base: f64) -> Isb {
        let z = TimeSeries::from_fn(0, 9, |t| base + slope * t as f64).unwrap();
        Isb::fit(&z).unwrap()
    }

    fn small_setup() -> (CubeSchema, CriticalLayers) {
        let schema = CubeSchema::synthetic(2, 2, 2).unwrap();
        let layers = CriticalLayers::new(
            &schema,
            CuboidSpec::new(vec![0, 0]),
            CuboidSpec::new(vec![2, 2]),
        )
        .unwrap();
        (schema, layers)
    }

    fn dense_tuples() -> Vec<MTuple> {
        let mut tuples = Vec::new();
        for a in 0..4u32 {
            for b in 0..4u32 {
                tuples.push(MTuple::new(vec![a, b], isb((a + b) as f64 / 10.0, 1.0)));
            }
        }
        tuples
    }

    #[test]
    fn path_tables_match_direct_aggregation() {
        let (schema, layers) = small_setup();
        let cube = compute(
            &schema,
            &layers,
            &ExceptionPolicy::never(),
            None,
            &dense_tuples(),
        )
        .unwrap();
        // Default path: (0,0) -> (1,0) -> (2,0) -> (2,1) -> (2,2).
        assert_eq!(cube.path_tables().len(), 5);
        for (cuboid, table) in cube.path_tables() {
            let (expected, _) =
                aggregate_from(&schema, layers.m_layer(), cube.m_table(), cuboid, None).unwrap();
            assert_eq!(table.len(), expected.len(), "cuboid {cuboid}");
            for (k, m) in table {
                assert!(
                    m.approx_eq(&expected[k], 1e-9),
                    "cuboid {cuboid} cell {k}: {m} vs {}",
                    expected[k]
                );
            }
        }
    }

    #[test]
    fn critical_layers_are_full() {
        let (schema, layers) = small_setup();
        let cube = compute(
            &schema,
            &layers,
            &ExceptionPolicy::slope_threshold(0.3),
            None,
            &dense_tuples(),
        )
        .unwrap();
        assert_eq!(cube.m_layer_cells(), 16);
        assert_eq!(cube.o_layer_cells(), 1);
        let apex = cube.o_table().get(&CellKey::new(vec![0, 0])).unwrap();
        assert!((apex.slope() - 4.8).abs() < 1e-9);
    }

    #[test]
    fn drilled_exceptions_have_exception_ancestors() {
        let (schema, layers) = small_setup();
        let policy = ExceptionPolicy::slope_threshold(0.35);
        let cube = compute(&schema, &layers, &policy, None, &dense_tuples()).unwrap();
        // Every retained off-path exception must have at least one parent
        // (one-step coarser cell) that is an exception in the result.
        for (cuboid, key, _) in cube.iter_exceptions() {
            if cube.path_tables().contains_key(cuboid) {
                continue;
            }
            let parents = layers.lattice().parents(cuboid);
            let mut found = false;
            for p in &parents {
                let projected = CellKey::new(project_key(&schema, cuboid, key.ids(), p));
                let parent_measure = cube.get(p, &projected);
                if let Some(m) = parent_measure {
                    if policy.is_exception(p, m) {
                        found = true;
                        break;
                    }
                }
            }
            assert!(found, "exception {cuboid}{key} has no exception parent");
        }
    }

    #[test]
    fn never_policy_drills_nothing() {
        let (schema, layers) = small_setup();
        let cube = compute(
            &schema,
            &layers,
            &ExceptionPolicy::never(),
            None,
            &dense_tuples(),
        )
        .unwrap();
        assert_eq!(cube.total_exception_cells(), 0);
        // Only the 5 path cuboids are computed; nothing is drilled.
        assert_eq!(cube.stats().cuboids_computed, 5);
    }

    #[test]
    fn explicit_path_is_honored() {
        let (schema, layers) = small_setup();
        let path = PopularPath::from_drill_order(layers.lattice(), &[1, 1, 0, 0]).unwrap();
        let cube = compute(
            &schema,
            &layers,
            &ExceptionPolicy::never(),
            Some(&path),
            &dense_tuples(),
        )
        .unwrap();
        assert!(cube
            .path_tables()
            .contains_key(&CuboidSpec::new(vec![0, 2])));
        assert!(!cube
            .path_tables()
            .contains_key(&CuboidSpec::new(vec![2, 0])));
    }

    #[test]
    fn stats_and_algorithm_tag() {
        let (schema, layers) = small_setup();
        let cube = compute(
            &schema,
            &layers,
            &ExceptionPolicy::always(),
            None,
            &dense_tuples(),
        )
        .unwrap();
        assert_eq!(cube.algorithm(), Algorithm::PopularPath);
        assert!(cube.stats().peak_bytes > 0);
        assert!(cube.stats().cells_computed >= 16);
        assert!(cube.stats().elapsed.as_nanos() > 0);
    }
}
