//! **Algorithm 2 — popular-path cubing**: roll the m-layer up to the
//! o-layer along one *popular drilling path*, storing the aggregated
//! regressions in the non-leaf nodes of a path-ordered H-tree; then drill
//! from the o-layer downward, computing in off-path cuboids **only the
//! children of exception cells**, each aggregated from the closest
//! computed lower cuboid (a path cuboid).
//!
//! Per the paper's footnote 7, this computes *fewer* exception cells than
//! Algorithm 1: only those reachable from the o-layer through a chain of
//! exceptional ancestors.

use crate::error::CoreError;
use crate::exception::ExceptionPolicy;
use crate::layers::CriticalLayers;
use crate::measure::{merge_sibling, validate_tuples, MTuple};
use crate::result::{Algorithm, CubeResult};
use crate::stats::{MemoryAccountant, RunStats};
use crate::table::{aggregate_from, table_bytes, CuboidTable};
use crate::Result;
use regcube_olap::cell::{project_key, CellKey};
use regcube_olap::fxhash::{FxHashMap, FxHashSet};
use regcube_olap::htree::{attrs_for_path, expand_tuple, HTree, NodeId};
use regcube_olap::{CubeSchema, CuboidSpec, PopularPath};
use regcube_regress::Isb;
use std::time::Instant;

/// Runs Algorithm 2 with the given path (or the default dimension-order
/// path when `path` is `None`).
///
/// # Errors
/// * [`CoreError::BadInput`] for structurally invalid tuples.
/// * [`CoreError::Olap`] for a path that does not span the lattice.
pub fn compute(
    schema: &CubeSchema,
    layers: &CriticalLayers,
    policy: &ExceptionPolicy,
    path: Option<&PopularPath>,
    tuples: &[MTuple],
) -> Result<CubeResult> {
    let lattice = layers.lattice();
    validate_tuples(schema, lattice.m_layer(), tuples)?;
    let default_path;
    let path = match path {
        Some(p) => p,
        None => {
            default_path = PopularPath::default_for(lattice)?;
            &default_path
        }
    };
    let start = Instant::now();
    let mut stats = RunStats::default();
    let mut mem = MemoryAccountant::new();
    let dims = schema.num_dims();

    // ---- Steps 1 & 2: path-ordered H-tree, roll-up into non-leaf nodes --
    let attrs = attrs_for_path(lattice, path);
    let mut tree: HTree<Isb> = HTree::new(attrs)?;
    for t in tuples {
        let values = expand_tuple(schema, lattice.m_layer(), t.ids(), tree.order());
        let leaf = tree.insert_path(&values)?;
        match tree.payload_mut(leaf) {
            Some(acc) => merge_sibling(acc, t.isb())?,
            slot @ None => *slot = Some(*t.isb()),
        }
    }
    stats.rows_folded += tuples.len() as u64;
    tree.aggregate_bottom_up(|m| *m, |acc, next| {
        merge_sibling(acc, next).expect("one validated window");
    });
    mem.add(tree.approx_bytes());

    // Path cuboid i corresponds to tree depth `o_attrs + i`.
    let o_attrs = (0..dims)
        .filter(|&d| lattice.o_layer().level(d) > 0)
        .count();
    let mut path_tables: FxHashMap<CuboidSpec, CuboidTable> = FxHashMap::default();
    let depth_of: FxHashMap<usize, &CuboidSpec> = path
        .cuboids()
        .iter()
        .enumerate()
        .map(|(i, c)| (o_attrs + i, c))
        .collect();
    for cuboid in path.cuboids() {
        path_tables.insert(cuboid.clone(), CuboidTable::default());
    }
    extract_path_tables(schema, &tree, lattice.m_layer(), &depth_of, &mut path_tables)?;
    for table in path_tables.values() {
        stats.cells_computed += table.len() as u64;
        mem.add(table_bytes(table, dims));
    }
    stats.cuboids_computed += path.cuboids().len() as u32;
    // The tree has served its purpose (the paper keeps aggregates in its
    // nodes; we keep the equivalent extracted tables).
    let tree_bytes = tree.approx_bytes();
    drop(tree);
    mem.remove(tree_bytes);

    let m_table = path_tables
        .get(lattice.m_layer())
        .expect("path ends at the m-layer")
        .clone();
    mem.add(table_bytes(&m_table, dims));
    let o_table = path_tables
        .get(lattice.o_layer())
        .expect("path starts at the o-layer")
        .clone();
    mem.add(table_bytes(&o_table, dims));

    // ---- Step 3: exception-guided drilling over off-path cuboids -------
    // Process coarse -> fine so every cuboid's lattice parents (one step
    // coarser) are done first; a cell qualifies when at least one parent
    // projection is an exception cell ("drill on the exception cells at
    // the current cuboid down to noncomputed cuboids").
    let mut top_down = lattice.bottom_up_order();
    top_down.reverse();
    let path_cuboids: Vec<CuboidSpec> = path.cuboids().to_vec();
    let mut exception_keys: FxHashMap<CuboidSpec, FxHashSet<CellKey>> = FxHashMap::default();
    let mut exceptions: FxHashMap<CuboidSpec, CuboidTable> = FxHashMap::default();

    for cuboid in top_down {
        let is_m = cuboid == *lattice.m_layer();
        let is_o = cuboid == *lattice.o_layer();
        if let Some(full) = path_tables.get(&cuboid) {
            // On-path (and the critical layers): already fully computed;
            // record its exception cells.
            let mut keys = FxHashSet::default();
            let mut exc = CuboidTable::default();
            for (key, isb) in full {
                if policy.is_exception(&cuboid, isb) {
                    keys.insert(key.clone());
                    if !is_m && !is_o {
                        exc.insert(key.clone(), *isb);
                    }
                }
            }
            exception_keys.insert(cuboid.clone(), keys);
            if !exc.is_empty() {
                mem.add(table_bytes(&exc, dims));
                exceptions.insert(cuboid, exc);
            }
            continue;
        }

        // Off-path: compute only children of exception parents.
        let parents = lattice.parents(&cuboid);
        let has_candidates = parents
            .iter()
            .any(|p| exception_keys.get(p).is_some_and(|s| !s.is_empty()));
        if !has_candidates {
            exception_keys.insert(cuboid.clone(), FxHashSet::default());
            continue;
        }
        let source = lattice
            .closest_computed_descendant(&cuboid, path_cuboids.iter())
            .ok_or_else(|| CoreError::NotMaterialized {
                detail: format!("no path cuboid below {cuboid}"),
            })?;
        let source_table = &path_tables[source];

        let qualifies = |ids: &[u32]| {
            parents.iter().any(|p| {
                exception_keys.get(p).is_some_and(|set| {
                    let projected = project_key(schema, &cuboid, ids, p);
                    set.contains(&CellKey::new(projected))
                })
            })
        };
        let (computed, rows) =
            aggregate_from(schema, source, source_table, &cuboid, Some(&qualifies))?;
        stats.rows_folded += rows;
        stats.cells_computed += computed.len() as u64;
        stats.cuboids_computed += 1;

        let mut keys = FxHashSet::default();
        let mut exc = CuboidTable::default();
        for (key, isb) in &computed {
            if policy.is_exception(&cuboid, isb) {
                keys.insert(key.clone());
                exc.insert(key.clone(), *isb);
            }
        }
        exception_keys.insert(cuboid.clone(), keys);
        if !exc.is_empty() {
            mem.add(table_bytes(&exc, dims));
            exceptions.insert(cuboid.clone(), exc);
        }
    }

    stats.exception_cells = exceptions.values().map(|t| t.len() as u64).sum();
    stats.cells_retained = path_tables.values().map(|t| t.len() as u64).sum::<u64>()
        + stats.exception_cells;
    stats.retained_bytes = path_tables
        .values()
        .map(|t| table_bytes(t, dims))
        .sum::<usize>()
        + exceptions
            .values()
            .map(|t| table_bytes(t, dims))
            .sum::<usize>();
    stats.peak_bytes = mem.peak();
    stats.elapsed = start.elapsed();

    // The m- and o-layer tables live in `path_tables` too; expose them as
    // the critical layers and keep the path tables for queries (this is
    // the memory the paper attributes to popular-path cubing).
    Ok(CubeResult::new(
        layers.clone(),
        policy.clone(),
        Algorithm::PopularPath,
        m_table,
        o_table,
        exceptions,
        path_tables,
        stats,
    ))
}

/// Extracts the cells materialized at the path depths of the rolled-up
/// H-tree into per-cuboid tables. A DFS tracks the value stack; at every
/// depth that corresponds to a path cuboid the node's aggregated payload
/// becomes one cell.
fn extract_path_tables(
    schema: &CubeSchema,
    tree: &HTree<Isb>,
    m_layer: &CuboidSpec,
    depth_of: &FxHashMap<usize, &CuboidSpec>,
    out: &mut FxHashMap<CuboidSpec, CuboidTable>,
) -> Result<()> {
    // Map each path cuboid to its key-building recipe: for each dimension
    // with level > 0, which attribute position in the order supplies it.
    let order = tree.order();
    let dims = m_layer.num_dims();
    let mut recipes: FxHashMap<usize, Vec<(usize, usize)>> = FxHashMap::default();
    for (&depth, cuboid) in depth_of {
        let mut recipe = Vec::new();
        for d in 0..dims {
            let level = cuboid.level(d);
            if level == 0 {
                continue;
            }
            let pos = order[..depth]
                .iter()
                .position(|a| a.dim == d && a.level == level)
                .ok_or_else(|| CoreError::BadInput {
                    detail: format!(
                        "path attribute order misses dim {d} level {level} by depth {depth}"
                    ),
                })?;
            recipe.push((d, pos));
        }
        recipes.insert(depth, recipe);
    }
    let _ = schema; // the recipes already encode the projection

    // Iterative DFS.
    let mut stack: Vec<(NodeId, usize)> = vec![(0, 0)];
    let mut values: Vec<u32> = Vec::with_capacity(tree.depth());
    // `values` mirrors the current root path; we manage it via depths.
    while let Some((node, depth)) = stack.pop() {
        values.truncate(depth.saturating_sub(1));
        if node != 0 {
            values.push(tree.node_value(node));
        }
        if let Some(cuboid) = depth_of.get(&depth) {
            if let Some(payload) = tree.payload(node) {
                let recipe = &recipes[&depth];
                let mut key = vec![0u32; dims];
                for &(d, pos) in recipe {
                    key[d] = values[pos];
                }
                out.get_mut(*cuboid)
                    .expect("table pre-created")
                    .insert(CellKey::new(key), *payload);
            }
        }
        for (_, child) in tree.children(node) {
            stack.push((child, depth + 1));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use regcube_regress::TimeSeries;

    fn isb(slope: f64, base: f64) -> Isb {
        let z = TimeSeries::from_fn(0, 9, |t| base + slope * t as f64).unwrap();
        Isb::fit(&z).unwrap()
    }

    fn small_setup() -> (CubeSchema, CriticalLayers) {
        let schema = CubeSchema::synthetic(2, 2, 2).unwrap();
        let layers = CriticalLayers::new(
            &schema,
            CuboidSpec::new(vec![0, 0]),
            CuboidSpec::new(vec![2, 2]),
        )
        .unwrap();
        (schema, layers)
    }

    fn dense_tuples() -> Vec<MTuple> {
        let mut tuples = Vec::new();
        for a in 0..4u32 {
            for b in 0..4u32 {
                tuples.push(MTuple::new(
                    vec![a, b],
                    isb((a + b) as f64 / 10.0, 1.0),
                ));
            }
        }
        tuples
    }

    #[test]
    fn path_tables_match_direct_aggregation() {
        let (schema, layers) = small_setup();
        let cube = compute(
            &schema,
            &layers,
            &ExceptionPolicy::never(),
            None,
            &dense_tuples(),
        )
        .unwrap();
        // Default path: (0,0) -> (1,0) -> (2,0) -> (2,1) -> (2,2).
        assert_eq!(cube.path_tables().len(), 5);
        for (cuboid, table) in cube.path_tables() {
            let (expected, _) = aggregate_from(
                &schema,
                layers.m_layer(),
                cube.m_table(),
                cuboid,
                None,
            )
            .unwrap();
            assert_eq!(table.len(), expected.len(), "cuboid {cuboid}");
            for (k, m) in table {
                assert!(
                    m.approx_eq(&expected[k], 1e-9),
                    "cuboid {cuboid} cell {k}: {m} vs {}",
                    expected[k]
                );
            }
        }
    }

    #[test]
    fn critical_layers_are_full() {
        let (schema, layers) = small_setup();
        let cube = compute(
            &schema,
            &layers,
            &ExceptionPolicy::slope_threshold(0.3),
            None,
            &dense_tuples(),
        )
        .unwrap();
        assert_eq!(cube.m_layer_cells(), 16);
        assert_eq!(cube.o_layer_cells(), 1);
        let apex = cube.o_table().get(&CellKey::new(vec![0, 0])).unwrap();
        assert!((apex.slope() - 4.8).abs() < 1e-9);
    }

    #[test]
    fn drilled_exceptions_have_exception_ancestors() {
        let (schema, layers) = small_setup();
        let policy = ExceptionPolicy::slope_threshold(0.35);
        let cube = compute(&schema, &layers, &policy, None, &dense_tuples()).unwrap();
        // Every retained off-path exception must have at least one parent
        // (one-step coarser cell) that is an exception in the result.
        for (cuboid, key, _) in cube.iter_exceptions() {
            if cube.path_tables().contains_key(cuboid) {
                continue;
            }
            let parents = layers.lattice().parents(cuboid);
            let mut found = false;
            for p in &parents {
                let projected =
                    CellKey::new(project_key(&schema, cuboid, key.ids(), p));
                let parent_measure = cube.get(p, &projected);
                if let Some(m) = parent_measure {
                    if policy.is_exception(p, m) {
                        found = true;
                        break;
                    }
                }
            }
            assert!(found, "exception {cuboid}{key} has no exception parent");
        }
    }

    #[test]
    fn never_policy_drills_nothing() {
        let (schema, layers) = small_setup();
        let cube = compute(
            &schema,
            &layers,
            &ExceptionPolicy::never(),
            None,
            &dense_tuples(),
        )
        .unwrap();
        assert_eq!(cube.total_exception_cells(), 0);
        // Only the 5 path cuboids are computed; nothing is drilled.
        assert_eq!(cube.stats().cuboids_computed, 5);
    }

    #[test]
    fn explicit_path_is_honored() {
        let (schema, layers) = small_setup();
        let path = PopularPath::from_drill_order(layers.lattice(), &[1, 1, 0, 0]).unwrap();
        let cube = compute(
            &schema,
            &layers,
            &ExceptionPolicy::never(),
            Some(&path),
            &dense_tuples(),
        )
        .unwrap();
        assert!(cube.path_tables().contains_key(&CuboidSpec::new(vec![0, 2])));
        assert!(!cube.path_tables().contains_key(&CuboidSpec::new(vec![2, 0])));
    }

    #[test]
    fn stats_and_algorithm_tag() {
        let (schema, layers) = small_setup();
        let cube = compute(
            &schema,
            &layers,
            &ExceptionPolicy::always(),
            None,
            &dense_tuples(),
        )
        .unwrap();
        assert_eq!(cube.algorithm(), Algorithm::PopularPath);
        assert!(cube.stats().peak_bytes > 0);
        assert!(cube.stats().cells_computed >= 16);
        assert!(cube.stats().elapsed.as_nanos() > 0);
    }
}
