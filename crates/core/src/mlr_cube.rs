//! Multi-variable regression cubes — the paper's Section 6.2
//! generalization: "the results of this study can also be generalized to
//! multiple linear regression … for example when there are spatial
//! variables in addition to a temporal variable".
//!
//! Each m-layer cell warehouses an [`MlrMeasure`] (the lossless
//! `XᵀX / Xᵀz` sufficient statistics) instead of an ISB. Standard-
//! dimension roll-ups sum sibling responses observed at the **same
//! design** (the multi-variable Theorem 3.2), so the coefficient vector
//! of any aggregated cell is derived exactly without raw data.
//!
//! The plain ISB cube is the special case `k = 2`, design `[1, t]`;
//! [`mlr_from_isb`] exhibits that embedding (every `XᵀX`/`Xᵀz` entry is
//! recoverable from the 4-number ISB and the shared window).

use crate::error::CoreError;
use crate::Result;
use regcube_olap::cell::{project_key, CellKey};
use regcube_olap::fxhash::FxHashMap;
use regcube_olap::{CubeSchema, CuboidSpec};
use regcube_regress::mlr::MlrMeasure;
use regcube_regress::Isb;

/// A cuboid table of multi-variable regression measures.
pub type MlrTable = FxHashMap<CellKey, MlrMeasure>;

/// A regression cube whose cell measure is a full multiple linear
/// regression (time plus any number of extra regression variables).
///
/// The cube holds the m-layer; any coarser cuboid is derived on demand
/// with [`MlrCube::roll_up`].
#[derive(Debug, Clone)]
pub struct MlrCube {
    schema: CubeSchema,
    m_layer: CuboidSpec,
    m_table: MlrTable,
    k: usize,
}

impl MlrCube {
    /// Builds the cube from per-m-cell measures. All measures must share
    /// one coefficient count (and, semantically, one design — validated
    /// pairwise during roll-ups).
    ///
    /// # Errors
    /// [`CoreError::BadInput`] for empty input or mismatched `k`.
    pub fn new(schema: CubeSchema, m_layer: CuboidSpec, m_table: MlrTable) -> Result<Self> {
        schema.check_cuboid(&m_layer)?;
        let Some(first) = m_table.values().next() else {
            return Err(CoreError::BadInput {
                detail: "MLR cube needs at least one m-layer cell".into(),
            });
        };
        let k = first.k();
        if let Some(bad) = m_table.values().find(|m| m.k() != k) {
            return Err(CoreError::BadInput {
                detail: format!("mixed coefficient counts: {k} vs {}", bad.k()),
            });
        }
        Ok(MlrCube {
            schema,
            m_layer,
            m_table,
            k,
        })
    }

    /// Number of regression coefficients per cell.
    #[inline]
    pub fn k(&self) -> usize {
        self.k
    }

    /// The m-layer table.
    #[inline]
    pub fn m_table(&self) -> &MlrTable {
        &self.m_table
    }

    /// Rolls the m-layer up to `target`, merging sibling cells under the
    /// same-design rule (responses add; `XᵀX` must agree).
    ///
    /// # Errors
    /// * [`CoreError::Olap`] when `target` is not an ancestor of the
    ///   m-layer.
    /// * [`CoreError::Regress`] when sibling designs disagree.
    pub fn roll_up(&self, target: &CuboidSpec) -> Result<MlrTable> {
        if !target.is_ancestor_or_equal(&self.m_layer) {
            return Err(CoreError::Olap(regcube_olap::OlapError::BadCuboid {
                detail: format!(
                    "{target} is not an ancestor of the m-layer {}",
                    self.m_layer
                ),
            }));
        }
        let mut out = MlrTable::default();
        for (key, measure) in &self.m_table {
            let projected =
                CellKey::new(project_key(&self.schema, &self.m_layer, key.ids(), target));
            match out.entry(projected) {
                std::collections::hash_map::Entry::Occupied(mut e) => {
                    e.get_mut().merge_same_design(measure)?;
                }
                std::collections::hash_map::Entry::Vacant(v) => {
                    v.insert(measure.clone());
                }
            }
        }
        Ok(out)
    }

    /// Coefficient vector of one (possibly aggregated) cell.
    ///
    /// # Errors
    /// Propagates roll-up and solve failures.
    pub fn coefficients(&self, cuboid: &CuboidSpec, key: &CellKey) -> Result<Option<Vec<f64>>> {
        let table = self.roll_up(cuboid)?;
        match table.get(key) {
            Some(m) => Ok(Some(m.solve()?)),
            None => Ok(None),
        }
    }
}

/// Embeds an ISB cell into the MLR representation: for the design
/// `[1, t]` over the ISB's interval, `XᵀX = [[n, Σt], [Σt, Σt²]]` is
/// design-only and `Xᵀz = [Σz, Σtz]` is recoverable from the ISB
/// (Equations 1–2) — demonstrating that the 4-number ISB carries the full
/// sufficient statistics of the `k = 2` model.
///
/// # Errors
/// Construction invariants only.
pub fn mlr_from_isb(isb: &Isb) -> Result<MlrMeasure> {
    // Resampling the *fitted line* reproduces the original series'
    // regression-relevant statistics exactly: an LSE fit preserves both
    // Σz (Equation 2) and Σt·z (Equation 1), and Σt/Σt² depend only on
    // the interval (Σt² = SVS(n) + n·t̄², `regcube_regress::ols::svs`).
    // Only zᵀz — the residual information the ISB discards — differs.
    let mut m = MlrMeasure::empty(2)?;
    let (b, e) = isb.interval();
    for t in b..=e {
        m.push_row(&[1.0, t as f64], isb.predict(t))?;
    }
    debug_assert!({
        let beta = m.solve().unwrap();
        (beta[0] - isb.base()).abs() < 1e-6 && (beta[1] - isb.slope()).abs() < 1e-8
    });
    Ok(m)
}

#[cfg(test)]
mod tests {
    use super::*;
    use regcube_regress::TimeSeries;

    /// 2 dims, depth 1, fanout 2: 4 m-cells rolling up to the apex.
    fn grid_cube() -> MlrCube {
        let schema = CubeSchema::synthetic(2, 1, 2).unwrap();
        let m_layer = CuboidSpec::new(vec![1, 1]);
        // Model per cell: z = c0 + c1·t + c2·x with a shared (t, x) grid.
        let mut table = MlrTable::default();
        for a in 0..2u32 {
            for b in 0..2u32 {
                let (c0, c1, c2) = (a as f64, 0.1 * (b + 1) as f64, -0.2 * a as f64);
                let mut m = MlrMeasure::empty(3).unwrap();
                for t in 0..10 {
                    for x in 0..3 {
                        let z = c0 + c1 * t as f64 + c2 * x as f64;
                        m.push_row(&[1.0, t as f64, x as f64], z).unwrap();
                    }
                }
                table.insert(CellKey::new(vec![a, b]), m);
            }
        }
        MlrCube::new(schema, m_layer, table).unwrap()
    }

    #[test]
    fn roll_up_sums_coefficients_under_shared_design() {
        let cube = grid_cube();
        assert_eq!(cube.k(), 3);
        // Apex coefficients = sum of all four cells' coefficients
        // (multi-variable Theorem 3.2).
        let apex = CuboidSpec::new(vec![0, 0]);
        let beta = cube
            .coefficients(&apex, &CellKey::new(vec![0, 0]))
            .unwrap()
            .unwrap();
        // Σc0 = 0+0+1+1 = 2; Σc1 = 0.1+0.2+0.1+0.2 = 0.6;
        // Σc2 = 0+0-0.2-0.2 = -0.4.
        assert!((beta[0] - 2.0).abs() < 1e-8, "{beta:?}");
        assert!((beta[1] - 0.6).abs() < 1e-9);
        assert!((beta[2] + 0.4).abs() < 1e-9);
    }

    #[test]
    fn partial_roll_up_groups_members() {
        let cube = grid_cube();
        let half = CuboidSpec::new(vec![1, 0]); // group over dim 1
        let table = cube.roll_up(&half).unwrap();
        assert_eq!(table.len(), 2);
        let beta = table[&CellKey::new(vec![1, 0])].solve().unwrap();
        // Cells (1,0)+(1,1): c0 = 2, c1 = 0.3, c2 = -0.4.
        assert!((beta[0] - 2.0).abs() < 1e-8);
        assert!((beta[1] - 0.3).abs() < 1e-9);
        assert!((beta[2] + 0.4).abs() < 1e-9);
    }

    #[test]
    fn invalid_targets_and_inputs_error() {
        let cube = grid_cube();
        // Finer than the m-layer is rejected.
        let too_fine = CuboidSpec::new(vec![1, 1]);
        assert!(cube.roll_up(&too_fine).is_ok(), "identity roll-up is fine");
        let wrong_arity = CuboidSpec::new(vec![0]);
        assert!(cube.roll_up(&wrong_arity).is_err());

        // Empty tables rejected at construction.
        let schema = CubeSchema::synthetic(2, 1, 2).unwrap();
        assert!(MlrCube::new(
            schema.clone(),
            CuboidSpec::new(vec![1, 1]),
            MlrTable::default(),
        )
        .is_err());

        // Mixed k rejected.
        let mut mixed = MlrTable::default();
        mixed.insert(CellKey::new(vec![0, 0]), MlrMeasure::empty(2).unwrap());
        mixed.insert(CellKey::new(vec![0, 1]), MlrMeasure::empty(3).unwrap());
        assert!(MlrCube::new(schema, CuboidSpec::new(vec![1, 1]), mixed).is_err());
    }

    #[test]
    fn missing_cells_answer_none() {
        let cube = grid_cube();
        let m_layer = CuboidSpec::new(vec![1, 1]);
        // Key (0,0) exists; the roll-up of a sparse cube may miss cells —
        // emulate by querying a valid-but-absent key in a coarser cuboid.
        assert!(cube
            .coefficients(&m_layer, &CellKey::new(vec![0, 0]))
            .unwrap()
            .is_some());
    }

    #[test]
    fn isb_embedding_recovers_the_line() {
        let z = TimeSeries::new(5, vec![2.0, 3.5, 2.5, 4.0, 5.0, 4.5]).unwrap();
        let isb = Isb::fit(&z).unwrap();
        let m = mlr_from_isb(&isb).unwrap();
        let beta = m.solve().unwrap();
        assert!((beta[0] - isb.base()).abs() < 1e-7);
        assert!((beta[1] - isb.slope()).abs() < 1e-8);
        assert_eq!(m.n(), isb.n());
        // The embedding merges like any MLR measure (same design).
        let mut a = mlr_from_isb(&isb).unwrap();
        a.merge_same_design(&m).unwrap();
        let doubled = a.solve().unwrap();
        assert!((doubled[1] - 2.0 * isb.slope()).abs() < 1e-8);
    }
}
