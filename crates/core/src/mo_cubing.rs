//! **Algorithm 1 — m/o H-cubing**: compute regressions for *every* cell of
//! every cuboid from the m-layer up to the o-layer; retain only exception
//! cells in between (all cells at the two critical layers).
//!
//! Step 1 follows the paper exactly: one scan of the input aggregates the
//! stream into an H-tree (attribute order by ascending cardinality) whose
//! leaves carry the m-layer regressions, merged under Theorems 3.2/3.3.
//!
//! Step 2 computes the lattice bottom-up in depth order. Every cuboid's
//! full table is aggregated from its **closest computed descendant** — a
//! one-step-finer cuboid — which is the work-sharing that H-cubing's
//! shared header tables achieve (the paper's own H-cubing departs from
//! its reference 18 too (footnote 6); the computed and retained cell
//! sets here are identical to Algorithm 1's).
//!
//! Since the engine refactor both steps live in
//! [`MoCubingEngine`], which additionally
//! keeps the full tables alive so same-window batches can merge
//! incrementally; [`compute`] is the batch wrapper that ingests one unit
//! and drops the working state, retaining exactly critical layers +
//! exception cells.

use crate::engine::{CubingEngine, MoCubingEngine};
use crate::error::CoreError;
use crate::exception::ExceptionPolicy;
use crate::layers::CriticalLayers;
use crate::measure::{merge_sibling, MTuple};
use crate::result::CubeResult;
use crate::table::CuboidTable;
use crate::Result;
use regcube_olap::cell::CellKey;
use regcube_olap::htree::{attrs_by_cardinality, expand_tuple, path_values_to_key, HTree};
use regcube_olap::CubeSchema;
use regcube_regress::Isb;

/// Builds the m-layer table by scanning `tuples` once through an H-tree in
/// cardinality attribute order (Algorithm 1, Step 1). Returns the table
/// and the peak bytes the tree occupied.
pub(crate) fn build_m_layer(
    schema: &CubeSchema,
    layers: &CriticalLayers,
    tuples: &[MTuple],
) -> Result<(CuboidTable, usize)> {
    let lattice = layers.lattice();
    let attrs = attrs_by_cardinality(schema, lattice);
    let mut tree: HTree<Isb> = HTree::new(attrs)?;
    for t in tuples {
        let values = expand_tuple(schema, lattice.m_layer(), t.ids(), tree.order());
        let leaf = tree.insert_path(&values)?;
        match tree.payload_mut(leaf) {
            Some(acc) => merge_sibling(acc, t.isb())?,
            slot @ None => *slot = Some(*t.isb()),
        }
    }
    let tree_bytes = tree.approx_bytes();

    let mut m_table = CuboidTable::default();
    let order: Vec<_> = tree.order().to_vec();
    let m_layer = lattice.m_layer().clone();
    let mut leaves: Vec<regcube_olap::htree::NodeId> = Vec::with_capacity(tree.num_leaves());
    tree.for_each_leaf(|leaf| leaves.push(leaf));
    for leaf in leaves {
        let values = tree.path_values(leaf);
        let key =
            path_values_to_key(&order, &values, &m_layer).ok_or_else(|| CoreError::BadInput {
                detail: "H-tree order misses an m-layer attribute".into(),
            })?;
        let isb = *tree.payload(leaf).expect("leaf payload set at insert");
        m_table.insert(CellKey::new(key), isb);
    }
    Ok((m_table, tree_bytes))
}

/// Runs Algorithm 1 and returns the materialized cube.
///
/// This is a thin batch wrapper over [`MoCubingEngine`]: it builds an
/// engine for the given layers, ingests `tuples` as one unit and returns
/// the engine's result.
///
/// # Errors
/// * [`CoreError::BadInput`] for structurally invalid tuples.
/// * Substrate errors for inconsistent schema/layers.
pub fn compute(
    schema: &CubeSchema,
    layers: &CriticalLayers,
    policy: &ExceptionPolicy,
    tuples: &[MTuple],
) -> Result<CubeResult> {
    let mut engine = MoCubingEngine::transient(schema.clone(), layers.clone(), policy.clone())?;
    engine.ingest_unit(tuples)?;
    Ok(engine.into_result())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::result::Algorithm;
    use crate::table::{aggregate_from, table_bytes};
    use regcube_olap::CuboidSpec;
    use regcube_regress::TimeSeries;

    fn isb(slope: f64, base: f64) -> Isb {
        let z = TimeSeries::from_fn(0, 9, |t| base + slope * t as f64).unwrap();
        Isb::fit(&z).unwrap()
    }

    /// 2 dims, 2 levels, fanout 2: m-layer (L2, L2) has 16 possible cells.
    fn small_setup() -> (CubeSchema, CriticalLayers) {
        let schema = CubeSchema::synthetic(2, 2, 2).unwrap();
        let layers = CriticalLayers::new(
            &schema,
            CuboidSpec::new(vec![0, 0]),
            CuboidSpec::new(vec![2, 2]),
        )
        .unwrap();
        (schema, layers)
    }

    fn dense_tuples() -> Vec<MTuple> {
        // All 16 m-layer cells, slope = (a + b)/10, base = 1.
        let mut tuples = Vec::new();
        for a in 0..4u32 {
            for b in 0..4u32 {
                tuples.push(MTuple::new(vec![a, b], isb((a + b) as f64 / 10.0, 1.0)));
            }
        }
        tuples
    }

    #[test]
    fn m_layer_merges_duplicate_tuples() {
        let (schema, layers) = small_setup();
        let tuples = vec![
            MTuple::new(vec![0, 0], isb(0.1, 0.0)),
            MTuple::new(vec![0, 0], isb(0.2, 0.0)),
            MTuple::new(vec![1, 1], isb(0.3, 0.0)),
        ];
        let cube = compute(&schema, &layers, &ExceptionPolicy::never(), &tuples).unwrap();
        assert_eq!(cube.m_layer_cells(), 2);
        let merged = cube.m_table().get(&CellKey::new(vec![0, 0])).unwrap();
        assert!((merged.slope() - 0.3).abs() < 1e-10, "0.1 + 0.2 merged");
    }

    #[test]
    fn apex_aggregation_is_exact() {
        let (schema, layers) = small_setup();
        let tuples = dense_tuples();
        let cube = compute(&schema, &layers, &ExceptionPolicy::never(), &tuples).unwrap();
        // The o-layer here is the apex (*, *): one cell holding the sum of
        // all 16 ISBs (Theorem 3.2): slope = Σ (a+b)/10 = 4.8, base = 16.
        assert_eq!(cube.o_layer_cells(), 1);
        let apex = cube.o_table().get(&CellKey::new(vec![0, 0])).unwrap();
        assert!((apex.slope() - 4.8).abs() < 1e-9, "slope {}", apex.slope());
        assert!((apex.base() - 16.0).abs() < 1e-9);
    }

    #[test]
    fn all_cuboids_are_computed_and_counted() {
        let (schema, layers) = small_setup();
        let cube = compute(&schema, &layers, &ExceptionPolicy::never(), &dense_tuples()).unwrap();
        // Lattice: 3 x 3 = 9 cuboids.
        assert_eq!(cube.stats().cuboids_computed, 9);
        // Cells: m (16) + (L2,L1) 8 + (L1,L2) 8 + (L2,*) 4 + (*,L2) 4 +
        // (L1,L1) 4 + (L1,*) 2 + (*,L1) 2 + apex 1 = 49.
        assert_eq!(cube.stats().cells_computed, 49);
        assert_eq!(cube.total_exception_cells(), 0);
        assert_eq!(
            cube.stats().cells_retained,
            16 + 1,
            "never-policy retains only the critical layers"
        );
    }

    #[test]
    fn always_policy_retains_every_between_cell() {
        let (schema, layers) = small_setup();
        let cube = compute(
            &schema,
            &layers,
            &ExceptionPolicy::always(),
            &dense_tuples(),
        )
        .unwrap();
        // All 49 cells minus m-layer(16) minus o-layer(1) = 32 exceptions.
        assert_eq!(cube.total_exception_cells(), 32);
        assert_eq!(cube.stats().cells_retained, 49);
    }

    #[test]
    fn exception_cells_match_brute_force() {
        let (schema, layers) = small_setup();
        let threshold = 0.45;
        let policy = ExceptionPolicy::slope_threshold(threshold);
        let tuples = dense_tuples();
        let cube = compute(&schema, &layers, &policy, &tuples).unwrap();

        // Brute force: for every between-cuboid, aggregate from the m-layer
        // directly and compare exception sets.
        for cuboid in layers.lattice().enumerate() {
            if cuboid == *layers.m_layer() || cuboid == *layers.o_layer() {
                continue;
            }
            let (full, _) =
                aggregate_from(&schema, layers.m_layer(), cube.m_table(), &cuboid, None).unwrap();
            let expected: std::collections::BTreeSet<_> = full
                .iter()
                .filter(|(_, m)| m.slope().abs() >= threshold)
                .map(|(k, _)| k.clone())
                .collect();
            let got: std::collections::BTreeSet<_> = cube
                .exceptions_in(&cuboid)
                .map(|t| t.keys().cloned().collect())
                .unwrap_or_default();
            assert_eq!(got, expected, "cuboid {cuboid}");
            // And the retained measures must equal the brute-force ones.
            if let Some(table) = cube.exceptions_in(&cuboid) {
                for (k, m) in table {
                    assert!(m.approx_eq(&full[k], 1e-9));
                }
            }
        }
    }

    #[test]
    fn stats_are_populated() {
        let (schema, layers) = small_setup();
        let cube = compute(
            &schema,
            &layers,
            &ExceptionPolicy::slope_threshold(0.3),
            &dense_tuples(),
        )
        .unwrap();
        let s = cube.stats();
        assert!(s.rows_folded >= 16);
        assert!(s.peak_bytes > 0);
        assert!(s.retained_bytes > 0);
        assert!(s.peak_bytes >= s.retained_bytes - table_bytes(&CuboidTable::default(), 2));
        assert_eq!(cube.algorithm(), Algorithm::MoCubing);
    }

    #[test]
    fn empty_input_is_rejected() {
        let (schema, layers) = small_setup();
        assert!(compute(&schema, &layers, &ExceptionPolicy::never(), &[]).is_err());
    }
}
