//! A small reusable worker pool on std threads.
//!
//! The workspace builds with no external dependencies, so the parallel
//! cubing paths ([`crate::shard`] and the tier roll-up inside
//! [`crate::engine::MoCubingEngine`]) share this minimal channel-based
//! pool instead of rayon/crossbeam: `N` long-lived workers pull boxed
//! jobs from one queue, and [`WorkerPool::run`] fans a task vector out
//! and collects the results **in task order**, so parallel execution
//! never perturbs downstream determinism.
//!
//! Jobs must be `'static` (they are moved to worker threads), which the
//! callers arrange by sharing read-only inputs behind [`std::sync::Arc`].
//!
//! # Nesting
//!
//! [`run`](WorkerPool::run) must not be called from inside a pool job of
//! the *same* pool: a job that blocks on the queue it occupies can
//! deadlock once every worker does the same. The cubing layers respect
//! this by construction — a [`crate::shard::ShardedEngine`] runs its
//! shards on the pool and gives the inner engines no pool of their own,
//! while an unsharded engine may use the pool for its tier roll-up.

use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// A fixed-size pool of std worker threads executing boxed jobs.
///
/// Dropping the pool closes the queue and joins every worker.
#[derive(Debug)]
pub struct WorkerPool {
    sender: Option<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawns a pool of `threads` workers (clamped to at least 1).
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let (sender, receiver) = channel::<Job>();
        let receiver = Arc::new(Mutex::new(receiver));
        let workers = (0..threads)
            .map(|i| {
                let receiver = Arc::clone(&receiver);
                std::thread::Builder::new()
                    .name(format!("regcube-pool-{i}"))
                    .spawn(move || worker_loop(&receiver))
                    .expect("spawn pool worker")
            })
            .collect();
        WorkerPool {
            sender: Some(sender),
            workers,
        }
    }

    /// A pool sized to the machine (`available_parallelism`, fallback 1).
    pub fn with_default_size() -> Self {
        Self::new(default_threads())
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// Submits one fire-and-forget job.
    pub fn execute(&self, job: impl FnOnce() + Send + 'static) {
        self.sender
            .as_ref()
            .expect("pool alive until drop")
            .send(Box::new(job))
            .expect("workers outlive the sender");
    }

    /// Runs every task on the pool and returns the results **in task
    /// order** (task `i`'s result at index `i`, regardless of which
    /// worker finished first) — the property the deterministic shard and
    /// tier merges rely on.
    ///
    /// # Panics
    /// Re-raises (as a panic on the calling thread) if any task panicked
    /// on its worker.
    pub fn run<T, F>(&self, tasks: Vec<F>) -> Vec<T>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        let n = tasks.len();
        let (tx, rx) = channel::<(usize, T)>();
        for (i, task) in tasks.into_iter().enumerate() {
            let tx = tx.clone();
            self.execute(move || {
                // Ignore a disconnected receiver: `run` only drops it
                // after collecting n results, so an error here can only
                // follow a sibling task's panic.
                let _ = tx.send((i, task()));
            });
        }
        drop(tx);
        let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
        for _ in 0..n {
            let (i, value) = rx
                .recv()
                .expect("a pool task panicked before sending its result");
            slots[i] = Some(value);
        }
        slots
            .into_iter()
            .map(|s| s.expect("each task index reports exactly once"))
            .collect()
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Closing the channel ends every worker loop.
        drop(self.sender.take());
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

/// The per-worker loop: pull jobs until the queue closes. A panicking
/// job is contained to its `catch_unwind` so the worker survives and the
/// pool stays usable; the submitting `run` call notices the missing
/// result and re-raises.
fn worker_loop(receiver: &Arc<Mutex<Receiver<Job>>>) {
    loop {
        let job = {
            let guard = receiver.lock().unwrap_or_else(|e| e.into_inner());
            guard.recv()
        };
        match job {
            Ok(job) => {
                let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(job));
            }
            Err(_) => break, // queue closed: pool dropped
        }
    }
}

/// The machine's available parallelism (fallback 1).
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn run_preserves_task_order() {
        let pool = WorkerPool::new(4);
        let tasks: Vec<_> = (0..32usize)
            .map(|i| {
                move || {
                    // Stagger completion so out-of-order finishes are likely.
                    std::thread::sleep(std::time::Duration::from_micros(
                        ((32 - i) % 7) as u64 * 50,
                    ));
                    i * i
                }
            })
            .collect();
        let results = pool.run(tasks);
        assert_eq!(results, (0..32usize).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn pool_is_reusable_across_runs() {
        let pool = WorkerPool::new(2);
        for round in 0..5usize {
            let results = pool.run((0..8usize).map(|i| move || i + round).collect());
            assert_eq!(results[7], 7 + round);
        }
        assert_eq!(pool.threads(), 2);
    }

    #[test]
    fn zero_threads_clamps_to_one() {
        let pool = WorkerPool::new(0);
        assert_eq!(pool.threads(), 1);
        assert_eq!(pool.run(vec![|| 41 + 1]), vec![42]);
    }

    #[test]
    fn execute_runs_detached_jobs() {
        let pool = WorkerPool::new(2);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..10 {
            let counter = Arc::clone(&counter);
            pool.execute(move || {
                counter.fetch_add(1, Ordering::SeqCst);
            });
        }
        drop(pool); // joins workers, so all jobs have run
        assert_eq!(counter.load(Ordering::SeqCst), 10);
    }

    #[test]
    fn a_panicking_job_does_not_kill_the_pool() {
        let pool = WorkerPool::new(2);
        pool.execute(|| panic!("contained"));
        // The pool still serves ordered runs afterwards.
        let results = pool.run((0..4usize).map(|i| move || i).collect());
        assert_eq!(results, vec![0, 1, 2, 3]);
    }

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
    }
}
