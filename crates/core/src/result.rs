//! The output of a cube computation, shared by both algorithms.

use crate::exception::ExceptionPolicy;
use crate::layers::CriticalLayers;
use crate::stats::RunStats;
use crate::table::CuboidTable;
use regcube_olap::cell::CellKey;
use regcube_olap::fxhash::FxHashMap;
use regcube_olap::CuboidSpec;
use regcube_regress::Isb;

/// Which algorithm produced a result.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Algorithm {
    /// Algorithm 1: m/o-cubing (all cells computed, exceptions retained).
    MoCubing,
    /// Algorithm 2: popular-path cubing (path + drilled exceptions).
    PopularPath,
}

/// A materialized regression cube per Framework 4.1: both critical layers
/// in full, exception cells in between, plus (for popular-path) the full
/// tables along the drilling path.
#[derive(Debug, Clone)]
pub struct CubeResult {
    layers: CriticalLayers,
    policy: ExceptionPolicy,
    algorithm: Algorithm,
    m_table: CuboidTable,
    o_table: CuboidTable,
    /// Exception cells per strictly-between cuboid.
    exceptions: FxHashMap<CuboidSpec, CuboidTable>,
    /// Full tables retained along the popular path (empty for m/o-cubing).
    path_tables: FxHashMap<CuboidSpec, CuboidTable>,
    stats: RunStats,
}

impl CubeResult {
    /// Assembles a result (used by the algorithm modules).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        layers: CriticalLayers,
        policy: ExceptionPolicy,
        algorithm: Algorithm,
        m_table: CuboidTable,
        o_table: CuboidTable,
        exceptions: FxHashMap<CuboidSpec, CuboidTable>,
        path_tables: FxHashMap<CuboidSpec, CuboidTable>,
        stats: RunStats,
    ) -> Self {
        CubeResult {
            layers,
            policy,
            algorithm,
            m_table,
            o_table,
            exceptions,
            path_tables,
            stats,
        }
    }

    /// In-place access for the incremental engines (same crate only):
    /// the m-layer table.
    pub(crate) fn m_table_mut(&mut self) -> &mut CuboidTable {
        &mut self.m_table
    }

    /// In-place access for the incremental engines: the o-layer table.
    pub(crate) fn o_table_mut(&mut self) -> &mut CuboidTable {
        &mut self.o_table
    }

    /// In-place access for the incremental engines: the exception stores.
    pub(crate) fn exceptions_mut(&mut self) -> &mut FxHashMap<CuboidSpec, CuboidTable> {
        &mut self.exceptions
    }

    /// In-place access for the incremental engines: the path tables.
    pub(crate) fn path_tables_mut(&mut self) -> &mut FxHashMap<CuboidSpec, CuboidTable> {
        &mut self.path_tables
    }

    /// Replaces the run statistics (the engines refresh them per batch).
    pub(crate) fn set_stats(&mut self, stats: RunStats) {
        self.stats = stats;
    }

    /// The exception stores by cuboid (same crate only — the public
    /// surface is [`exceptions_in`](Self::exceptions_in) /
    /// [`iter_exceptions`](Self::iter_exceptions)).
    pub(crate) fn exceptions_map(&self) -> &FxHashMap<CuboidSpec, CuboidTable> {
        &self.exceptions
    }

    /// The critical layers the cube was computed for.
    #[inline]
    pub fn layers(&self) -> &CriticalLayers {
        &self.layers
    }

    /// The exception policy in force.
    #[inline]
    pub fn policy(&self) -> &ExceptionPolicy {
        &self.policy
    }

    /// Which algorithm produced this result.
    #[inline]
    pub fn algorithm(&self) -> Algorithm {
        self.algorithm
    }

    /// The full m-layer table.
    #[inline]
    pub fn m_table(&self) -> &CuboidTable {
        &self.m_table
    }

    /// The full o-layer table.
    #[inline]
    pub fn o_table(&self) -> &CuboidTable {
        &self.o_table
    }

    /// Number of m-layer cells.
    pub fn m_layer_cells(&self) -> usize {
        self.m_table.len()
    }

    /// Number of o-layer cells.
    pub fn o_layer_cells(&self) -> usize {
        self.o_table.len()
    }

    /// Retained exception cells of one strictly-between cuboid, if any.
    pub fn exceptions_in(&self, cuboid: &CuboidSpec) -> Option<&CuboidTable> {
        self.exceptions.get(cuboid)
    }

    /// Iterates `(cuboid, key, measure)` over all retained exception cells
    /// between the layers.
    pub fn iter_exceptions(&self) -> impl Iterator<Item = (&CuboidSpec, &CellKey, &Isb)> {
        self.exceptions
            .iter()
            .flat_map(|(c, table)| table.iter().map(move |(k, m)| (c, k, m)))
    }

    /// Total retained exception cells between the layers.
    pub fn total_exception_cells(&self) -> u64 {
        self.exceptions.values().map(|t| t.len() as u64).sum()
    }

    /// Full tables retained along the popular path (empty for m/o-cubing).
    pub fn path_tables(&self) -> &FxHashMap<CuboidSpec, CuboidTable> {
        &self.path_tables
    }

    /// Looks a cell up in everything the cube retained: critical layers,
    /// path tables, then exception stores.
    pub fn get(&self, cuboid: &CuboidSpec, key: &CellKey) -> Option<&Isb> {
        if cuboid == self.layers.m_layer() {
            return self.m_table.get(key);
        }
        if cuboid == self.layers.o_layer() {
            return self.o_table.get(key);
        }
        if let Some(t) = self.path_tables.get(cuboid) {
            if let Some(m) = t.get(key) {
                return Some(m);
            }
        }
        self.exceptions.get(cuboid).and_then(|t| t.get(key))
    }

    /// Run statistics.
    #[inline]
    pub fn stats(&self) -> &RunStats {
        &self.stats
    }

    /// O-layer cells that pass the exception policy — the analyst's alarm
    /// list, the starting points of exception-guided drilling.
    pub fn exceptional_o_cells(&self) -> Vec<(&CellKey, &Isb)> {
        let o = self.layers.o_layer();
        let mut cells: Vec<(&CellKey, &Isb)> = self
            .o_table
            .iter()
            .filter(|(_, m)| self.policy.is_exception(o, m))
            .collect();
        cells.sort_by(|a, b| {
            crate::measure::exception_score(b.1)
                .partial_cmp(&crate::measure::exception_score(a.1))
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.0.cmp(b.0))
        });
        cells
    }
}
