//! Choosing between the two cubing algorithms.
//!
//! The paper's performance study ends: "The choice of which one should be
//! dependent on the **expected exception ratio**, the **total (main)
//! memory size**, the **desired response time**, and how computing
//! exception cells along a fixed path fits the needs of the application."
//! This module encodes that guidance as a transparent cost model over the
//! quantities the study measured (Figures 8–10):
//!
//! * **work**: m/o-cubing touches every cell of every lattice cuboid;
//!   popular-path touches the path cuboids plus the drilled share of the
//!   off-path cells (∝ exception ratio);
//! * **memory**: m/o-cubing retains the critical layers plus the
//!   exceptional share of the between-cells; popular-path additionally
//!   retains every path cuboid in full.
//!
//! The estimates are *relative* (cells, not seconds), which is exactly
//! what an algorithm choice needs; they are validated against the real
//! algorithms' run statistics in the tests.

use crate::layers::CriticalLayers;
use crate::result::Algorithm;
use regcube_olap::PopularPath;

/// Inputs to the advisor: what the application knows or expects.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlanInputs {
    /// Number of m-layer cells in a typical window.
    pub m_cells: u64,
    /// Expected fraction of aggregated cells that are exceptional (0..1),
    /// e.g. the previous window's measured rate.
    pub exception_ratio: f64,
    /// Optional memory budget in *cells* the application can retain
    /// (`None` = unconstrained).
    pub retained_cell_budget: Option<u64>,
    /// `true` when the analyst's drilling habits match a fixed path (the
    /// qualitative criterion the paper names last).
    pub drilling_follows_path: bool,
}

/// The advisor's cost estimates for one algorithm.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostEstimate {
    /// Cells the algorithm computes (its work measure).
    pub computed_cells: f64,
    /// Cells the algorithm retains (its memory measure).
    pub retained_cells: f64,
}

/// A recommendation with its reasoning.
#[derive(Debug, Clone, PartialEq)]
pub struct Recommendation {
    /// The recommended algorithm.
    pub algorithm: Algorithm,
    /// Cost estimate for Algorithm 1.
    pub mo: CostEstimate,
    /// Cost estimate for Algorithm 2.
    pub popular_path: CostEstimate,
    /// Human-readable rationale.
    pub rationale: String,
}

/// Estimates the per-cuboid cell population: each lattice cuboid's table
/// is bounded by the m-layer's cell count (aggregation only shrinks), and
/// coarser cuboids shrink geometrically. We use the conservative bound
/// `m_cells` per cuboid, which is tight near the m-layer and loose near
/// the o-layer — adequate for *relative* comparison because it biases
/// both algorithms identically.
fn cells_per_cuboid(m_cells: u64) -> f64 {
    m_cells as f64
}

/// Computes both cost estimates and recommends an algorithm.
pub fn recommend(layers: &CriticalLayers, inputs: &PlanInputs) -> Recommendation {
    let lattice = layers.lattice();
    let cuboids = lattice.count() as f64;
    let path_len = PopularPath::default_for(lattice)
        .map(|p| p.len() as f64)
        .unwrap_or(2.0);
    let per = cells_per_cuboid(inputs.m_cells);
    let rate = inputs.exception_ratio.clamp(0.0, 1.0);
    let between = (cuboids - 2.0).max(0.0);

    // Algorithm 1: computes every cuboid; retains m + o + exceptional
    // share of the between-cells.
    let mo = CostEstimate {
        computed_cells: cuboids * per,
        retained_cells: 2.0 * per + rate * between * per,
    };
    // Algorithm 2: computes the path in full plus the drilled share of
    // off-path cuboids; retains the whole path plus drilled exceptions.
    let off_path = (cuboids - path_len).max(0.0);
    let pp = CostEstimate {
        computed_cells: path_len * per + rate * off_path * per,
        retained_cells: path_len * per + rate * off_path * per,
    };

    // Memory budget first: a hard constraint beats speed, and the
    // retention estimates are deterministic (they are cell counts, not
    // timings).
    if let Some(budget) = inputs.retained_cell_budget {
        let b = budget as f64;
        let mo_fits = mo.retained_cells <= b;
        let pp_fits = pp.retained_cells <= b;
        if mo_fits != pp_fits {
            let (algorithm, name) = if mo_fits {
                (Algorithm::MoCubing, "m/o-cubing")
            } else {
                (Algorithm::PopularPath, "popular-path")
            };
            return Recommendation {
                algorithm,
                mo,
                popular_path: pp,
                rationale: format!("only {name} fits the retained-cell budget of {budget}"),
            };
        }
    }

    // Response time: qualitative bands, following the paper's own
    // analysis (and our Figure 8 measurements, EXPERIMENTS.md). Computed-
    // cell counts alone mislead here — popular-path's filtered scans pay
    // per-row parent checks that erase its cell-count advantage once
    // exceptions are plentiful.
    const LOW_RATE: f64 = 0.05; // drilling clearly cheap below this
    const HIGH_RATE: f64 = 0.5; // shared full computation clearly wins above
    if rate < LOW_RATE {
        Recommendation {
            algorithm: Algorithm::PopularPath,
            mo,
            popular_path: pp,
            rationale: format!(
                "low expected exception ratio {rate:.3}: drilling touches few \
                 cells (~{:.0} vs {:.0} computed)",
                pp.computed_cells, mo.computed_cells
            ),
        }
    } else if rate > HIGH_RATE {
        Recommendation {
            algorithm: Algorithm::MoCubing,
            mo,
            popular_path: pp,
            rationale: format!(
                "high expected exception ratio {rate:.3}: shared full \
                 computation beats per-row drill filtering (Figure 8a)"
            ),
        }
    } else if inputs.drilling_follows_path {
        Recommendation {
            algorithm: Algorithm::PopularPath,
            mo,
            popular_path: pp,
            rationale: format!(
                "moderate exception ratio {rate:.3} and analyst drilling \
                 matches the path: its cuboids double as the working set"
            ),
        }
    } else {
        Recommendation {
            algorithm: Algorithm::MoCubing,
            mo,
            popular_path: pp,
            rationale: format!(
                "moderate exception ratio {rate:.3} without path affinity: \
                 m/o-cubing reuses intermediate results more effectively"
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exception::ExceptionPolicy;
    use crate::measure::MTuple;
    use crate::{mo_cubing, popular_path};
    use regcube_olap::{CubeSchema, CuboidSpec};
    use regcube_regress::{Isb, TimeSeries};

    fn layers(dims: usize, depth: u8, fanout: u32) -> (CubeSchema, CriticalLayers) {
        let schema = CubeSchema::synthetic(dims, depth, fanout).unwrap();
        let l = CriticalLayers::new(
            &schema,
            CuboidSpec::new(vec![0; dims]),
            CuboidSpec::new(vec![depth; dims]),
        )
        .unwrap();
        (schema, l)
    }

    #[test]
    fn low_exception_rate_prefers_popular_path() {
        let (_, l) = layers(3, 2, 4);
        let rec = recommend(
            &l,
            &PlanInputs {
                m_cells: 10_000,
                exception_ratio: 0.001,
                retained_cell_budget: None,
                drilling_follows_path: false,
            },
        );
        assert_eq!(rec.algorithm, Algorithm::PopularPath);
        assert!(rec.popular_path.computed_cells < rec.mo.computed_cells);
    }

    #[test]
    fn high_exception_rate_prefers_mo_cubing() {
        let (_, l) = layers(3, 2, 4);
        let rec = recommend(
            &l,
            &PlanInputs {
                m_cells: 10_000,
                exception_ratio: 0.9,
                retained_cell_budget: None,
                drilling_follows_path: false,
            },
        );
        assert_eq!(rec.algorithm, Algorithm::MoCubing);
        assert!(rec.rationale.contains("high expected exception ratio"));
    }

    #[test]
    fn memory_budget_overrides_speed() {
        let (_, l) = layers(3, 2, 4);
        // At a low rate popular-path would win on time, but its path
        // retention blows a tight budget while m/o-cubing fits.
        let rec = recommend(
            &l,
            &PlanInputs {
                m_cells: 10_000,
                exception_ratio: 0.001,
                retained_cell_budget: Some(25_000),
                drilling_follows_path: false,
            },
        );
        assert_eq!(rec.algorithm, Algorithm::MoCubing);
        assert!(rec.rationale.contains("budget"));
    }

    #[test]
    fn path_affinity_breaks_moderate_rate_ties() {
        let (_, l) = layers(2, 2, 3);
        let mid = |follows| {
            recommend(
                &l,
                &PlanInputs {
                    m_cells: 1_000,
                    exception_ratio: 0.2,
                    retained_cell_budget: None,
                    drilling_follows_path: follows,
                },
            )
        };
        assert_eq!(mid(true).algorithm, Algorithm::PopularPath);
        assert_eq!(mid(false).algorithm, Algorithm::MoCubing);
    }

    #[test]
    fn estimates_track_real_run_statistics() {
        // The model's *ordering* must match reality on a real workload at
        // extreme rates.
        let (schema, l) = layers(2, 2, 3);
        let mut tuples = Vec::new();
        for a in 0..9u32 {
            for b in 0..9u32 {
                let slope = ((a * 9 + b) as f64) / 40.0 - 1.0;
                let z = TimeSeries::from_fn(0, 9, |t| slope * t as f64).unwrap();
                tuples.push(MTuple::new(vec![a, b], Isb::fit(&z).unwrap()));
            }
        }
        for (rate, threshold) in [(0.01, 1.1), (1.0, 0.0)] {
            let policy = ExceptionPolicy::slope_threshold(threshold);
            let a1 = mo_cubing::compute(&schema, &l, &policy, &tuples).unwrap();
            let a2 = popular_path::compute(&schema, &l, &policy, None, &tuples).unwrap();
            let rec = recommend(
                &l,
                &PlanInputs {
                    m_cells: tuples.len() as u64,
                    exception_ratio: rate,
                    retained_cell_budget: None,
                    drilling_follows_path: false,
                },
            );
            // Model ordering vs measured ordering on computed cells.
            let model_says_pp_cheaper = rec.popular_path.computed_cells <= rec.mo.computed_cells;
            let measured_pp_cheaper = a2.stats().cells_computed <= a1.stats().cells_computed;
            assert_eq!(
                model_says_pp_cheaper, measured_pp_cheaper,
                "rate {rate}: model and measurement disagree"
            );
        }
    }
}
