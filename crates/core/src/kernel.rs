//! The kernel layer: chunked, autovectorization-friendly primitives
//! under the columnar backend's hot loops.
//!
//! # Why a kernel layer
//!
//! Theorem 3.2 reduces every cube aggregation to *component-wise sums*
//! of ISB measures, and the [`crate::columnar::ColumnarTable`] already
//! stores each ISB component as its own dense vector — exactly the
//! struct-of-arrays shape SIMD wants. What the generic
//! [`crate::table::aggregate_into`] path still paid per source row was
//! a mixed-radix decode, a per-dimension projection, a re-encode, a
//! binary search and a five-vector staged append, followed by a
//! 40-byte-tuple sort in `finish`. The kernels here replace that with
//! contiguous block-at-a-time loops:
//!
//! * [`BlockProjector`] pushes blocks of dense cell ids through fused
//!   per-dimension ancestor LUTs (one remainder-chain division per
//!   dimension, no decode/encode round trip);
//! * [`fold_sorted_runs`] / [`fold_permuted_runs`] fold sorted runs of
//!   projected rows directly between component columns, bulk-copying
//!   collision-free spans;
//! * [`merge_two_runs`] merges a compacted column run with a freshly
//!   folded staged run, again span-at-a-time;
//! * [`screen_ge_abs`] is the chunked exception screen
//!   (`|slope| >= threshold`) over a slope column.
//!
//! Everything is safe Rust (`regcube-core` forbids `unsafe`): the
//! vector shape comes from fixed-size chunks ([`LANES`]) and
//! `extend_from_slice` bulk moves the autovectorizer lowers well, not
//! from explicit intrinsics.
//!
//! # Bit-exactness contract
//!
//! Every kernel is **bit-exact** with the scalar path it replaces: the
//! same f64 additions in the same left-to-right order (floating-point
//! addition is not reassociated — runs are summed sequentially, only
//! the surrounding bookkeeping is vectorized), the same
//! interval-mismatch errors via [`crate::measure::merge_sibling`], NaN
//! payloads propagated through unchanged, and the same u64-overflow
//! guard on dense id spaces (enforced at
//! [`crate::table::DenseCellCodec`] construction, before any kernel
//! runs). The contract is pinned by `tests/kernel_parity.rs` (scripted
//! + property tests, shard counts {1, 2, 3, 7}) and the golden suite.
//!
//! # Selecting the scalar fallback
//!
//! Dispatch is per-table/per-engine via [`KernelMode`]: `Auto` (the
//! default) runs the kernels and falls back per call site where a
//! kernel cannot apply (per-row hierarchy walks, oversized row counts);
//! `Scalar` forces the generic scalar path everywhere. The process-wide
//! default honors the `REGCUBE_SCALAR_KERNELS=1` environment variable
//! (read once), and
//! [`ColumnarCubingEngine::with_kernel_mode`](crate::columnar::ColumnarCubingEngine::with_kernel_mode)
//! overrides it programmatically. Which path folded each row is
//! reported in
//! [`RunStats::rows_folded_simd`](crate::stats::RunStats::rows_folded_simd) /
//! [`rows_folded_scalar`](crate::stats::RunStats::rows_folded_scalar).

use crate::measure::merge_sibling;
use crate::Result;
use regcube_regress::Isb;
use std::sync::OnceLock;

/// Lane width the chunked kernels are written around. Eight 64-bit
/// lanes span one AVX-512 register or two AVX2/NEON registers; the
/// compiler picks the actual vector width when it lowers the chunks.
pub const LANES: usize = 8;

/// Which implementation the columnar backend's hot loops run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum KernelMode {
    /// Run the chunked kernels, falling back to the scalar path per
    /// call site where a kernel cannot apply.
    #[default]
    Auto,
    /// Force the scalar fallback everywhere (the pre-kernel code path).
    Scalar,
}

impl KernelMode {
    /// The process-wide default: [`KernelMode::Scalar`] when the
    /// environment variable `REGCUBE_SCALAR_KERNELS=1` was set at first
    /// use, [`KernelMode::Auto`] otherwise. Read once and cached —
    /// tests that need a specific mode should set it programmatically
    /// (e.g. [`crate::columnar::ColumnarCubingEngine::with_kernel_mode`])
    /// instead of mutating the environment.
    pub fn from_env() -> KernelMode {
        static MODE: OnceLock<KernelMode> = OnceLock::new();
        *MODE.get_or_init(|| {
            if std::env::var("REGCUBE_SCALAR_KERNELS").is_ok_and(|v| v == "1") {
                KernelMode::Scalar
            } else {
                KernelMode::Auto
            }
        })
    }

    /// Whether this mode runs the chunked kernels.
    #[inline]
    pub fn use_kernel(self) -> bool {
        self == KernelMode::Auto
    }
}

/// `true` when every element equals `expected` (chunked scan; an empty
/// slice is trivially uniform).
pub fn all_equal_i64(values: &[i64], expected: i64) -> bool {
    let mut chunks = values.chunks_exact(LANES);
    for chunk in &mut chunks {
        let mut diff = 0i64;
        for &v in chunk {
            diff |= v ^ expected;
        }
        if diff != 0 {
            return false;
        }
    }
    chunks.remainder().iter().all(|&v| v == expected)
}

/// `true` when the slice is nondecreasing (chunked adjacent compare).
///
/// Projection through monotone hierarchies preserves the source
/// table's ascending id order, so the tier roll-up usually skips its
/// sort entirely — this is the test that proves it per block.
pub fn is_nondecreasing_u64(values: &[u64]) -> bool {
    if values.len() < 2 {
        return true;
    }
    let a = &values[..values.len() - 1];
    let b = &values[1..];
    let mut ok = true;
    for (ca, cb) in a.chunks(LANES).zip(b.chunks(LANES)) {
        let mut bad = false;
        for (&x, &y) in ca.iter().zip(cb) {
            bad |= x > y;
        }
        ok &= !bad;
        if !ok {
            return false;
        }
    }
    ok
}

/// Chunked exception screen: pushes the index of every `slopes[i]` with
/// `|slopes[i]| >= threshold` onto `hits` (ascending). `NaN` never
/// qualifies (`NaN >= t` is false), matching
/// [`crate::measure::exception_score`] exactly.
///
/// The caller guarantees `slopes.len() <= u32::MAX` (columnar tables
/// fall back to the scalar screen beyond that).
pub fn screen_ge_abs(slopes: &[f64], threshold: f64, hits: &mut Vec<u32>) {
    debug_assert!(u32::try_from(slopes.len()).is_ok());
    for (ci, chunk) in slopes.chunks(LANES).enumerate() {
        let mut mask = 0u32;
        for (j, &s) in chunk.iter().enumerate() {
            mask |= u32::from(s.abs() >= threshold) << j;
        }
        while mask != 0 {
            let j = mask.trailing_zeros();
            hits.push((ci * LANES) as u32 + j);
            mask &= mask - 1;
        }
    }
}

/// How one dimension of a [`BlockProjector`] maps its mixed-radix digit
/// into the target id.
#[derive(Debug, Clone)]
pub enum BlockDim {
    /// Source and target level coincide: the digit is scaled straight
    /// onto the target stride.
    Scale {
        /// Source-id stride of this dimension.
        src_stride: u64,
        /// Target-id stride of this dimension.
        tgt_stride: u64,
    },
    /// Fused ancestor lookup: `flut[digit]` is the ancestor member
    /// *already multiplied* by the target stride.
    Lut {
        /// Source-id stride of this dimension.
        src_stride: u64,
        /// Fused `ancestor(member) * tgt_stride` table.
        flut: Box<[u64]>,
    },
    /// The target collapses this dimension to a single member: the
    /// digit contributes nothing (only the remainder chain advances).
    Collapse {
        /// Source-id stride of this dimension.
        src_stride: u64,
    },
}

/// Blocked mixed-radix projection `source id → target id` for one
/// `source → target` cuboid pair: blocks of dense cell ids are pushed
/// through the per-dimension ancestor LUTs of
/// [`crate::table::Projector`] (fused with the target strides), one
/// remainder-chain division per dimension per row instead of a
/// decode → per-dim project → encode round trip. Built via
/// [`Projector::block_projector`](crate::table::Projector::block_projector).
#[derive(Debug, Clone)]
pub struct BlockProjector {
    dims: Vec<BlockDim>,
}

impl BlockProjector {
    /// Assembles a projector from per-dimension digit maps, ordered
    /// most-significant (largest source stride) first.
    pub fn new(dims: Vec<BlockDim>) -> Self {
        BlockProjector { dims }
    }

    /// Projects a block of source ids into `out` (same length),
    /// dimension-outer so each pass is a contiguous chunked loop.
    pub fn project_into(&self, ids: &[u64], out: &mut [u64]) {
        /// Rows per internal block: two 8 KiB scratch strips stay in L1.
        const BLOCK: usize = 1024;
        debug_assert_eq!(ids.len(), out.len());
        let mut rem = [0u64; BLOCK];
        for (ids_blk, out_blk) in ids.chunks(BLOCK).zip(out.chunks_mut(BLOCK)) {
            let n = ids_blk.len();
            let rem = &mut rem[..n];
            rem.copy_from_slice(ids_blk);
            out_blk.fill(0);
            for (d, dim) in self.dims.iter().enumerate() {
                let last = d + 1 == self.dims.len();
                match dim {
                    BlockDim::Scale {
                        src_stride,
                        tgt_stride,
                    } => {
                        let (s, t) = (*src_stride, *tgt_stride);
                        if s == 1 {
                            for (o, r) in out_blk.iter_mut().zip(rem.iter()) {
                                *o += r * t;
                            }
                        } else {
                            for (o, r) in out_blk.iter_mut().zip(rem.iter_mut()) {
                                let q = *r / s;
                                *r -= q * s;
                                *o += q * t;
                            }
                        }
                    }
                    BlockDim::Lut { src_stride, flut } => {
                        let s = *src_stride;
                        if s == 1 {
                            for (o, r) in out_blk.iter_mut().zip(rem.iter()) {
                                *o += flut[*r as usize];
                            }
                        } else {
                            for (o, r) in out_blk.iter_mut().zip(rem.iter_mut()) {
                                let q = *r / s;
                                *r -= q * s;
                                *o += flut[q as usize];
                            }
                        }
                    }
                    BlockDim::Collapse { src_stride } => {
                        let s = *src_stride;
                        if s > 1 && !last {
                            for r in rem.iter_mut() {
                                *r %= s;
                            }
                        }
                        // s == 1 or the last dimension: nothing
                        // downstream reads the remainder.
                    }
                }
            }
        }
    }
}

/// The five parallel component columns a fold reads from or writes to.
/// A thin borrow bundle so the fold kernels take one argument per side
/// instead of ten slices.
pub struct FoldColumns<'a> {
    /// Dense cell ids (sorted for [`merge_two_runs`] inputs).
    pub ids: &'a [u64],
    /// Interval starts (`t_b`).
    pub starts: &'a [i64],
    /// Interval ends (`t_e`).
    pub ends: &'a [i64],
    /// Regression bases (`α̂`).
    pub bases: &'a [f64],
    /// Regression slopes (`β̂`).
    pub slopes: &'a [f64],
}

/// The owned output columns a fold appends to.
#[derive(Default)]
pub struct FoldOutput {
    /// Dense cell ids, ascending and duplicate-free after a fold.
    pub ids: Vec<u64>,
    /// Interval starts.
    pub starts: Vec<i64>,
    /// Interval ends.
    pub ends: Vec<i64>,
    /// Regression bases.
    pub bases: Vec<f64>,
    /// Regression slopes.
    pub slopes: Vec<f64>,
}

impl FoldOutput {
    /// Pre-sizes every column for `n` rows.
    pub fn with_capacity(n: usize) -> Self {
        FoldOutput {
            ids: Vec::with_capacity(n),
            starts: Vec::with_capacity(n),
            ends: Vec::with_capacity(n),
            bases: Vec::with_capacity(n),
            slopes: Vec::with_capacity(n),
        }
    }

    /// Rows appended so far.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether no rows were appended.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    #[inline]
    fn push(&mut self, id: u64, start: i64, end: i64, base: f64, slope: f64) {
        self.ids.push(id);
        self.starts.push(start);
        self.ends.push(end);
        self.bases.push(base);
        self.slopes.push(slope);
    }

    /// Bulk-copies the contiguous row span `lo..hi` of `src`.
    fn extend_span(&mut self, src: &FoldColumns<'_>, ids: &[u64], lo: usize, hi: usize) {
        self.ids.extend_from_slice(&ids[lo..hi]);
        self.starts.extend_from_slice(&src.starts[lo..hi]);
        self.ends.extend_from_slice(&src.ends[lo..hi]);
        self.bases.extend_from_slice(&src.bases[lo..hi]);
        self.slopes.extend_from_slice(&src.slopes[lo..hi]);
    }
}

/// Reconstructs a stored row as an [`Isb`] (stored rows are valid by
/// construction) — only reached on the interval-mismatch error path, so
/// the exact scalar error surfaces.
fn isb_of(start: i64, end: i64, base: f64, slope: f64) -> Isb {
    Isb::new(start, end, base, slope).expect("stored rows are valid ISBs")
}

/// Folds the duplicate run `lo..hi` (all the same target id):
/// sequential left-to-right component sums — the same f64 additions in
/// the same order as repeated [`merge_sibling`] calls, without the Isb
/// round trips. Interval mismatches raise the scalar path's exact
/// error.
#[inline]
fn fold_run(
    src: &FoldColumns<'_>,
    order: impl Iterator<Item = usize>,
    out: &mut FoldOutput,
    id: u64,
) -> Result<()> {
    let mut rows = order;
    let first = rows.next().expect("runs are non-empty");
    let (s0, e0) = (src.starts[first], src.ends[first]);
    let mut base = src.bases[first];
    let mut slope = src.slopes[first];
    for i in rows {
        if src.starts[i] != s0 || src.ends[i] != e0 {
            let mut acc = isb_of(s0, e0, base, slope);
            merge_sibling(
                &mut acc,
                &isb_of(src.starts[i], src.ends[i], src.bases[i], src.slopes[i]),
            )?;
            unreachable!("mismatched intervals always fail the sibling merge");
        }
        base += src.bases[i];
        slope += src.slopes[i];
    }
    out.push(id, s0, e0, base, slope);
    Ok(())
}

/// Folds rows whose target ids are **already nondecreasing**: maximal
/// collision-free spans are bulk-copied with `extend_from_slice`;
/// duplicate runs are summed sequentially (see the private `fold_run` helper). `ids` are
/// the projected target ids, parallel to `src`'s component columns.
///
/// # Errors
/// Interval mismatches within a duplicate run (the scalar
/// [`merge_sibling`] error).
pub fn fold_sorted_runs(ids: &[u64], src: &FoldColumns<'_>, out: &mut FoldOutput) -> Result<()> {
    let n = ids.len();
    let mut i = 0;
    while i < n {
        // Advance over the collision-free span [i, k): each row's id
        // differs from its successor's.
        let mut k = i;
        while k + 1 < n && ids[k] != ids[k + 1] {
            k += 1;
        }
        if k + 1 == n {
            out.extend_span(src, ids, i, n);
            break;
        }
        out.extend_span(src, ids, i, k);
        // Rows k.. share ids[k]; fold the run.
        let mut m = k + 1;
        while m < n && ids[m] == ids[k] {
            m += 1;
        }
        fold_run(src, k..m, out, ids[k])?;
        i = m;
    }
    Ok(())
}

/// Folds rows through a sort permutation: `pairs` is `(target id, row
/// index into src)`, stably sorted by id (ties keep ascending row
/// index, i.e. arrival order — the scalar staged-compact order).
///
/// # Errors
/// Interval mismatches within a duplicate run.
pub fn fold_permuted_runs(
    pairs: &[(u64, u32)],
    src: &FoldColumns<'_>,
    out: &mut FoldOutput,
) -> Result<()> {
    let n = pairs.len();
    let mut i = 0;
    while i < n {
        let id = pairs[i].0;
        let mut m = i + 1;
        while m < n && pairs[m].0 == id {
            m += 1;
        }
        if m == i + 1 {
            let r = pairs[i].1 as usize;
            out.push(id, src.starts[r], src.ends[r], src.bases[r], src.slopes[r]);
        } else {
            fold_run(src, pairs[i..m].iter().map(|&(_, r)| r as usize), out, id)?;
        }
        i = m;
    }
    Ok(())
}

/// Merges two sorted duplicate-free runs (`a` = the compacted region,
/// `b` = the freshly folded staged rows): collision-free spans of
/// either side are bulk-copied (span ends found by `partition_point`,
/// not per-row compares); id collisions fold `a`'s row then `b`'s — the
/// scalar compact's exact accumulate order.
///
/// # Errors
/// Interval mismatches at a collision (the scalar [`merge_sibling`]
/// error).
pub fn merge_two_runs(
    a: &FoldColumns<'_>,
    b: &FoldColumns<'_>,
    out: &mut FoldOutput,
) -> Result<()> {
    let (na, nb) = (a.ids.len(), b.ids.len());
    let (mut i, mut j) = (0usize, 0usize);
    while i < na && j < nb {
        if a.ids[i] == b.ids[j] {
            if a.starts[i] != b.starts[j] || a.ends[i] != b.ends[j] {
                let mut acc = isb_of(a.starts[i], a.ends[i], a.bases[i], a.slopes[i]);
                merge_sibling(
                    &mut acc,
                    &isb_of(b.starts[j], b.ends[j], b.bases[j], b.slopes[j]),
                )?;
                unreachable!("mismatched intervals always fail the sibling merge");
            }
            out.push(
                a.ids[i],
                a.starts[i],
                a.ends[i],
                a.bases[i] + b.bases[j],
                a.slopes[i] + b.slopes[j],
            );
            i += 1;
            j += 1;
        } else if a.ids[i] < b.ids[j] {
            let hi = i + a.ids[i..na].partition_point(|&id| id < b.ids[j]);
            out.extend_span(a, a.ids, i, hi);
            i = hi;
        } else {
            let hi = j + b.ids[j..nb].partition_point(|&id| id < a.ids[i]);
            out.extend_span(b, b.ids, j, hi);
            j = hi;
        }
    }
    out.extend_span(a, a.ids, i, na);
    out.extend_span(b, b.ids, j, nb);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cols<'a>(
        ids: &'a [u64],
        starts: &'a [i64],
        ends: &'a [i64],
        bases: &'a [f64],
        slopes: &'a [f64],
    ) -> FoldColumns<'a> {
        FoldColumns {
            ids,
            starts,
            ends,
            bases,
            slopes,
        }
    }

    #[test]
    fn mode_dispatch() {
        assert!(KernelMode::Auto.use_kernel());
        assert!(!KernelMode::Scalar.use_kernel());
        assert_eq!(KernelMode::default(), KernelMode::Auto);
        // Whatever the process environment says, from_env is stable
        // across calls (OnceLock).
        assert_eq!(KernelMode::from_env(), KernelMode::from_env());
    }

    #[test]
    fn uniformity_and_order_scans() {
        assert!(all_equal_i64(&[], 7));
        assert!(all_equal_i64(&[7; 37], 7));
        let mut v = vec![7i64; 37];
        v[33] = 8;
        assert!(!all_equal_i64(&v, 7));

        assert!(is_nondecreasing_u64(&[]));
        assert!(is_nondecreasing_u64(&[5]));
        assert!(is_nondecreasing_u64(&[1, 1, 2, 9, 9, 100]));
        let mut w: Vec<u64> = (0..100).collect();
        assert!(is_nondecreasing_u64(&w));
        w.swap(70, 71);
        assert!(!is_nondecreasing_u64(&w));
    }

    #[test]
    fn screen_matches_scalar_predicate_including_nan() {
        let slopes = [0.5, -0.9, f64::NAN, 0.0, -0.4, 0.4, f64::INFINITY, 0.39];
        let mut hits = Vec::new();
        screen_ge_abs(&slopes, 0.4, &mut hits);
        let expected: Vec<u32> = slopes
            .iter()
            .enumerate()
            .filter(|(_, s)| s.abs() >= 0.4)
            .map(|(i, _)| i as u32)
            .collect();
        assert_eq!(hits, expected);
        hits.clear();
        screen_ge_abs(&slopes, 0.0, &mut hits);
        assert!(!hits.contains(&2), "NaN never qualifies, even at t = 0");
    }

    #[test]
    fn block_projector_remainder_chain() {
        // radices (3, 1, 4), strides (4, 4, 1): collapse dim 0 to one
        // member, keep dim 2 via a LUT halving members.
        let p = BlockProjector::new(vec![
            BlockDim::Collapse { src_stride: 4 },
            BlockDim::Scale {
                src_stride: 4,
                tgt_stride: 2,
            },
            BlockDim::Lut {
                src_stride: 1,
                flut: (0..4u64).map(|m| m / 2).collect(),
            },
        ]);
        let ids: Vec<u64> = (0..12).collect();
        let mut out = vec![0u64; ids.len()];
        p.project_into(&ids, &mut out);
        // Dim 1 has radix 1 (digit always 0), so only the last digit's
        // halved member survives.
        let expected: Vec<u64> = (0..12u64).map(|id| (id % 4) / 2).collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn sorted_fold_bulk_copies_and_sums_runs() {
        let ids = [1u64, 3, 3, 3, 5, 9];
        let starts = [0i64; 6];
        let ends = [9i64; 6];
        let bases = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let slopes = [0.1, 0.2, 0.3, 0.4, 0.5, 0.6];
        let src = cols(&ids, &starts, &ends, &bases, &slopes);
        let mut out = FoldOutput::default();
        fold_sorted_runs(&ids, &src, &mut out).unwrap();
        assert_eq!(out.ids, vec![1, 3, 5, 9]);
        assert_eq!(out.bases, vec![1.0, 2.0 + 3.0 + 4.0, 5.0, 6.0]);
        assert_eq!(out.slopes[1], 0.2 + 0.3 + 0.4);
    }

    #[test]
    fn permuted_fold_follows_pair_order() {
        let starts = [0i64; 4];
        let ends = [9i64; 4];
        let bases = [10.0, 20.0, 30.0, 40.0];
        let slopes = [1.0, 2.0, 3.0, 4.0];
        let ids = [0u64; 4]; // unused by the permuted fold
        let src = cols(&ids, &starts, &ends, &bases, &slopes);
        // Target ids: rows 2 and 0 collide on id 4; row order (2, 0)
        // would be wrong — stable sort keeps (0, 2).
        let pairs = [(4u64, 0u32), (4, 2), (7, 1), (8, 3)];
        let mut out = FoldOutput::default();
        fold_permuted_runs(&pairs, &src, &mut out).unwrap();
        assert_eq!(out.ids, vec![4, 7, 8]);
        assert_eq!(out.bases, vec![10.0 + 30.0, 20.0, 40.0]);
    }

    #[test]
    fn interval_mismatch_raises_the_scalar_error() {
        let ids = [2u64, 2];
        let starts = [0i64, 5];
        let ends = [9i64, 14];
        let bases = [1.0, 1.0];
        let slopes = [0.0, 0.0];
        let src = cols(&ids, &starts, &ends, &bases, &slopes);
        let mut out = FoldOutput::default();
        assert!(fold_sorted_runs(&ids, &src, &mut out).is_err());

        let a_ids = [2u64];
        let b_ids = [2u64];
        let a = cols(&a_ids, &starts[..1], &ends[..1], &bases[..1], &slopes[..1]);
        let b = cols(&b_ids, &starts[1..], &ends[1..], &bases[1..], &slopes[1..]);
        let mut out = FoldOutput::default();
        assert!(merge_two_runs(&a, &b, &mut out).is_err());
    }

    #[test]
    fn two_run_merge_interleaves_spans_and_collisions() {
        let a_ids = [1u64, 2, 5, 8];
        let a_starts = [0i64; 4];
        let a_ends = [9i64; 4];
        let a_bases = [1.0, 2.0, 5.0, 8.0];
        let a_slopes = [0.1, 0.2, 0.5, 0.8];
        let b_ids = [2u64, 3, 4, 9];
        let b_bases = [20.0, 30.0, 40.0, 90.0];
        let b_slopes = [2.0, 3.0, 4.0, 9.0];
        let a = cols(&a_ids, &a_starts, &a_ends, &a_bases, &a_slopes);
        let b = cols(&b_ids, &a_starts, &a_ends, &b_bases, &b_slopes);
        let mut out = FoldOutput::default();
        merge_two_runs(&a, &b, &mut out).unwrap();
        assert_eq!(out.ids, vec![1, 2, 3, 4, 5, 8, 9]);
        assert_eq!(out.bases, vec![1.0, 22.0, 30.0, 40.0, 5.0, 8.0, 90.0]);
        assert_eq!(out.slopes[1], 0.2 + 2.0);
    }

    #[test]
    fn nan_payloads_flow_through_folds() {
        let ids = [4u64, 4];
        let starts = [0i64; 2];
        let ends = [9i64; 2];
        let bases = [f64::NAN, 1.0];
        let slopes = [0.5, f64::NAN];
        let src = cols(&ids, &starts, &ends, &bases, &slopes);
        let mut out = FoldOutput::default();
        fold_sorted_runs(&ids, &src, &mut out).unwrap();
        assert!(out.bases[0].is_nan());
        assert!(out.slopes[0].is_nan());
    }
}
