//! `regcube-core` — regression(-measured) cubes over time-series streams.
//!
//! This crate is the primary contribution of *Chen, Dong, Han, Wah, Wang:
//! "Multi-Dimensional Regression Analysis of Time-Series Data Streams"
//! (VLDB 2002)*, assembled from the substrates:
//!
//! * the ISB regression measures and lossless aggregation theorems of
//!   [`regcube_regress`],
//! * the dimensions / cuboid lattice / H-tree machinery of
//!   [`regcube_olap`],
//! * the tilt time frame of [`regcube_tilt`].
//!
//! # The computation model (Framework 4.1)
//!
//! A full regression cube is unaffordable in a stream setting, so the cube
//! materializes exactly:
//!
//! 1. the **m-layer** (minimal interesting layer) — every cell, aggregated
//!    directly from the stream;
//! 2. the **o-layer** (observation layer) — every cell, the analyst's
//!    watch deck;
//! 3. between the two, **only exception cells**: cells whose regression
//!    slope magnitude passes a threshold ([`exception::ExceptionPolicy`]).
//!
//! Two algorithms realize the framework, faithful to the paper's
//! Section 4.4:
//!
//! * [`mo_cubing`] (**Algorithm 1**): computes *every* cell of every
//!   cuboid between the layers by shared bottom-up aggregation, retaining
//!   only the exceptions;
//! * [`popular_path`] (**Algorithm 2**): rolls up only the cuboids along a
//!   *popular path* (stored in the non-leaf nodes of a path-ordered
//!   H-tree), then drills from the o-layer downward, computing only the
//!   children of exception cells in off-path cuboids.
//!
//! Both return a [`result::CubeResult`] with identical critical layers;
//! Algorithm 1 retains a superset of Algorithm 2's exceptions (the paper's
//! footnote 7), which the cross-algorithm tests in `tests/` verify.
//!
//! Beyond the paper, the crate scales the same contract out: both
//! algorithms run behind the [`engine::CubingEngine`] trait, so they
//! compose with hash-partitioned parallel cubing ([`shard`]), a
//! worker-pool tier roll-up ([`pool`]), streaming exception consumers
//! ([`alarm`]) and a choice of physical table layout — the row
//! (hash-map) default or the struct-of-arrays [`columnar`] backend,
//! selected via [`engine::Backend`], whose hot fold/projection loops
//! run on the chunked [`kernel`] layer (bit-exact SIMD-friendly
//! kernels with a scalar fallback). The repository-level
//! `ARCHITECTURE.md` maps every paper section to its module and
//! documents how to add further backends.
//!
//! ```
//! use regcube_core::prelude::*;
//! use regcube_olap::{CubeSchema, CuboidSpec};
//! use regcube_regress::{Isb, TimeSeries};
//!
//! // A 2-dimension schema, 2 levels each, fanout 3.
//! let schema = CubeSchema::synthetic(2, 2, 3).unwrap();
//! let layers = CriticalLayers::new(
//!     &schema,
//!     CuboidSpec::new(vec![1, 0]),  // o-layer: (A1, *)
//!     CuboidSpec::new(vec![2, 2]),  // m-layer: (A2, B2)
//! ).unwrap();
//!
//! // Four m-layer streams with known trends.
//! let mut tuples = Vec::new();
//! for (a, b, slope) in [(0u32, 0u32, 0.9), (1, 3, 0.0), (4, 7, -0.8), (8, 8, 0.1)] {
//!     let series = TimeSeries::from_fn(0, 19, |t| slope * t as f64).unwrap();
//!     tuples.push(MTuple::new(vec![a, b], Isb::fit(&series).unwrap()));
//! }
//!
//! let policy = ExceptionPolicy::slope_threshold(0.5);
//! let cube = mo_cubing::compute(&schema, &layers, &policy, &tuples).unwrap();
//! assert_eq!(cube.m_layer_cells(), 4);
//! assert!(cube.total_exception_cells() > 0);
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod alarm;
pub mod arena;
pub mod columnar;
pub mod cube;
pub mod drill;
pub mod engine;
pub mod error;
pub mod exception;
pub mod history;
pub mod kernel;
pub mod layers;
pub mod measure;
pub mod mlr_cube;
pub mod mo_cubing;
pub mod plan;
pub mod pool;
pub mod popular_path;
pub mod query;
pub mod result;
pub mod shard;
pub mod stats;
pub mod table;

pub use alarm::{
    AlarmContext, AlarmLog, AlarmSink, DashboardSummary, LateAmendment, SinkSet, ThresholdEscalator,
};
pub use arena::{ArenaCubingEngine, ArenaTable, ChunkPool, KeyId, KeyInterner};
pub use columnar::{ColumnarCubingEngine, ColumnarTable};
pub use cube::RegressionCube;
pub use engine::{Backend, CubingEngine, MoCubingEngine, PopularPathEngine, UnitDelta};
pub use error::CoreError;
pub use exception::{ExceptionPolicy, RefMode};
pub use kernel::KernelMode;
pub use layers::CriticalLayers;
pub use measure::MTuple;
pub use pool::WorkerPool;
pub use popular_path::{DrillFrontier, Frontier};
pub use result::CubeResult;
pub use shard::ShardedEngine;
pub use stats::RunStats;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, CoreError>;

/// Convenient glob import for applications.
pub mod prelude {
    pub use crate::alarm::{
        AlarmContext, AlarmLog, AlarmSink, DashboardSummary, Episode, Escalation, SinkSet,
        ThresholdEscalator,
    };
    pub use crate::arena::ArenaCubingEngine;
    pub use crate::columnar::ColumnarCubingEngine;
    pub use crate::cube::RegressionCube;
    pub use crate::engine::{Backend, CubingEngine, MoCubingEngine, PopularPathEngine, UnitDelta};
    pub use crate::exception::{ExceptionPolicy, RefMode};
    pub use crate::layers::CriticalLayers;
    pub use crate::measure::MTuple;
    pub use crate::pool::WorkerPool;
    pub use crate::result::CubeResult;
    pub use crate::shard::ShardedEngine;
    pub use crate::{mo_cubing, popular_path};
}
