//! Error type for the regression-cube core.

use regcube_olap::OlapError;
use regcube_regress::RegressError;
use std::fmt;

/// Errors produced by cube construction and querying.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// A substrate OLAP operation failed (bad schema, cuboid, path, …).
    Olap(OlapError),
    /// A regression aggregation failed (interval mismatch, …).
    Regress(RegressError),
    /// The input tuple set was structurally invalid.
    BadInput {
        /// Description of the violation.
        detail: String,
    },
    /// A query addressed data the cube did not materialize.
    NotMaterialized {
        /// Description of what was asked for.
        detail: String,
    },
    /// An exception policy was invalid (e.g. negative threshold).
    BadPolicy {
        /// Description of the violation.
        detail: String,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Olap(e) => write!(f, "cube structure error: {e}"),
            CoreError::Regress(e) => write!(f, "regression error: {e}"),
            CoreError::BadInput { detail } => write!(f, "bad input: {detail}"),
            CoreError::NotMaterialized { detail } => {
                write!(f, "not materialized: {detail}")
            }
            CoreError::BadPolicy { detail } => write!(f, "bad exception policy: {detail}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Olap(e) => Some(e),
            CoreError::Regress(e) => Some(e),
            _ => None,
        }
    }
}

impl From<OlapError> for CoreError {
    fn from(e: OlapError) -> Self {
        CoreError::Olap(e)
    }
}

impl From<RegressError> for CoreError {
    fn from(e: RegressError) -> Self {
        CoreError::Regress(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error;

    #[test]
    fn conversions_and_sources() {
        let o: CoreError = OlapError::ArityMismatch {
            got: 1,
            expected: 2,
        }
        .into();
        let r: CoreError = RegressError::NoInputs.into();
        assert!(o.source().is_some());
        assert!(r.source().is_some());
        assert!(CoreError::BadInput { detail: "x".into() }
            .source()
            .is_none());
        for e in [
            o,
            r,
            CoreError::BadInput { detail: "a".into() },
            CoreError::NotMaterialized { detail: "b".into() },
            CoreError::BadPolicy { detail: "c".into() },
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
