//! Run statistics and analytical memory accounting.
//!
//! The performance study (Section 5) reports processing time and memory
//! usage. Besides wall-clock time we track *analytical* memory — the bytes
//! of live cell tables and trees as the algorithm proceeds — which is
//! allocator-independent and therefore stable across machines. The bench
//! harness additionally measures true allocator peaks (`regcube-bench`).

use std::time::Duration;

/// Statistics of one cube computation.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RunStats {
    /// Source rows folded into aggregations (the work measure).
    pub rows_folded: u64,
    /// Rows folded through the chunked [`crate::kernel`] layer (blocked
    /// LUT projection + run folds over the ISB component columns). For
    /// the columnar engine `rows_folded == rows_folded_simd +
    /// rows_folded_scalar`; backends without kernel dispatch leave both
    /// counters zero.
    pub rows_folded_simd: u64,
    /// Rows folded through the scalar per-row fallback — either forced
    /// (`REGCUBE_SCALAR_KERNELS=1`, [`crate::kernel::KernelMode::Scalar`])
    /// or because a fold is inherently per-row (hash-map layouts,
    /// `Walk`-projected dimensions, id spaces past the block-index
    /// range). See [`rows_folded_simd`](Self::rows_folded_simd) for the
    /// invariant.
    pub rows_folded_scalar: u64,
    /// Cells materialized across all cuboids (computed, before filtering).
    pub cells_computed: u64,
    /// Cells retained in the result (critical layers + exceptions).
    pub cells_retained: u64,
    /// Exception cells retained between the layers.
    pub exception_cells: u64,
    /// Cuboids whose tables were (at least partially) computed.
    pub cuboids_computed: u32,
    /// Off-path cuboids whose exception-guided drill output was
    /// **re-aggregated or retracted** since the unit opened (Algorithm
    /// 2 only; zero for Algorithm 1). The frontier-dirty replay
    /// re-aggregates a cuboid only when an ancestor's exception
    /// frontier changed or the batch touched its qualifying region
    /// (and retracts it when its candidates disappear), so this
    /// counter plus
    /// [`drill_skipped_cuboids`](Self::drill_skipped_cuboids) measures
    /// how much of step 3 each batch actually replays.
    pub drill_replayed_cuboids: u64,
    /// Off-path cuboids a same-window batch's step 3 left untouched
    /// (Algorithm 2 only): either their retained drill output was
    /// **reused verbatim** (ancestor frontiers unchanged, drilled
    /// region untouched by the batch) or they had **no drill
    /// candidates** at all (every ancestor frontier empty, nothing
    /// retained). Together with
    /// [`drill_replayed_cuboids`](Self::drill_replayed_cuboids) this
    /// partitions the off-path lattice each batch.
    pub drill_skipped_cuboids: u64,
    /// Cell keys interned into arena chunks
    /// ([`Backend::Arena`](crate::engine::Backend::Arena) only; zero for
    /// the row and columnar backends). Fresh interns only — hash-cons
    /// hits reuse an existing [`crate::arena::KeyId`] and do not count.
    pub keys_interned: u64,
    /// Whole arena epochs reclaimed in O(1) at window rollovers
    /// ([`crate::arena::ArenaTable::reset_epoch`]): each reclamation
    /// recycles a table's chunks, index and measure column in place
    /// instead of freeing cell by cell. Arena backend only.
    pub epochs_reclaimed: u64,
    /// Heap allocations the arena layer performed (new key chunks, index
    /// growth, measure-column growth). After the first unit builds the
    /// working set this should sit at zero in steady state — the figure
    /// the arena backend exists to crush. Arena backend only.
    pub arena_alloc_calls: u64,
    /// Chunk requests served without touching the allocator: free-list
    /// hits in the shared [`crate::arena::ChunkPool`] plus in-place reuse
    /// of a table's own chunks after an epoch reset. Arena backend only.
    pub arena_chunks_recycled: u64,
    /// Bytes the arena working set holds across epochs (chunks, probe
    /// indexes, measure columns, pool free list). Deliberately retained —
    /// this capacity is what makes steady-state rollovers
    /// allocation-free. Arena backend only.
    pub arena_bytes_retained: usize,
    /// Stream records that arrived **beyond the allowed lateness** and
    /// were dropped — deterministically counted, never silently lost.
    /// Only the stream layer's watermark path increments this; batch
    /// engines leave it zero.
    pub late_dropped: u64,
    /// Stream records that arrived for an **already-closed unit within
    /// the allowed lateness** and were applied as exact tilt-frame
    /// amendments (OLS linearity). Only the stream layer's watermark
    /// path increments this; batch engines leave it zero.
    pub late_amendments: u64,
    /// Units by which the effective (min-over-live-sources) watermark
    /// lagged the stream frontier, accumulated at each frontier advance
    /// — how long per-source accounting held closes back waiting for
    /// slow sources. Zero under the global watermark policy and for
    /// batch engines.
    pub watermark_held_units: u64,
    /// Sources evicted from the per-source watermark for idling more
    /// than the policy's `idle_units` behind the stream frontier (their
    /// watermark contribution is released so a silent sensor cannot
    /// freeze closes forever). Stream watermark path only.
    pub sources_evicted: u64,
    /// Immutable unit-boundary snapshots published for lock-free
    /// concurrent reads. Only the serving layers fill this in (the
    /// stream engine's snapshot hook and `regcube_serve`'s per-tenant
    /// publication); batch engines leave it zero.
    pub snapshots_published: u64,
    /// Published snapshots handed to readers (`regcube_serve`'s
    /// double-buffered snapshot cell counts every load). Serving layer
    /// only; batch engines leave it zero.
    pub snapshot_reads: u64,
    /// Ingest requests rejected with a **typed backpressure error**
    /// (`regcube_serve`'s bounded tenant queues report `Overloaded`
    /// instead of dropping silently — the rejected record is never
    /// enqueued, so the caller decides to retry or shed). Serving layer
    /// only; batch engines leave it zero.
    pub overload_rejections: u64,
    /// Wall-clock time of the computation.
    pub elapsed: Duration,
    /// Peak analytical bytes (retained + transient) during the run.
    pub peak_bytes: usize,
    /// Analytical bytes retained in the final result.
    pub retained_bytes: usize,
}

/// Tracks live analytical bytes and their high-water mark.
#[derive(Debug, Default, Clone, Copy)]
pub struct MemoryAccountant {
    live: usize,
    peak: usize,
}

impl MemoryAccountant {
    /// Creates an empty accountant.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers `bytes` as newly live.
    pub fn add(&mut self, bytes: usize) {
        self.live += bytes;
        self.peak = self.peak.max(self.live);
    }

    /// Releases `bytes` (saturating; double-frees clamp to zero).
    pub fn remove(&mut self, bytes: usize) {
        self.live = self.live.saturating_sub(bytes);
    }

    /// Currently live bytes.
    #[inline]
    pub fn live(&self) -> usize {
        self.live
    }

    /// High-water mark.
    #[inline]
    pub fn peak(&self) -> usize {
        self.peak
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accountant_tracks_peak() {
        let mut a = MemoryAccountant::new();
        a.add(100);
        a.add(50);
        assert_eq!(a.live(), 150);
        assert_eq!(a.peak(), 150);
        a.remove(120);
        assert_eq!(a.live(), 30);
        assert_eq!(a.peak(), 150);
        a.add(10);
        assert_eq!(a.peak(), 150, "peak unchanged below the mark");
        a.remove(1000);
        assert_eq!(a.live(), 0, "saturating removal");
    }

    #[test]
    fn stats_default_is_zeroed() {
        let s = RunStats::default();
        assert_eq!(s.cells_computed, 0);
        assert_eq!(s.elapsed, Duration::ZERO);
    }
}
