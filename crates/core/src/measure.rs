//! Cell measures and m-layer input tuples.

use crate::error::CoreError;
use crate::Result;
use regcube_regress::{aggregate, Isb};

/// One merged m-layer data stream: the member ids of its m-layer cell (one
/// id per dimension, at the m-layer's levels) plus the ISB of its time
/// series over the current analysis window.
///
/// This is the granularity the paper's experiments speak of ("100,000
/// merged (i.e., m-layer) data streams"); anything finer is folded into
/// these tuples by `regcube-stream`'s ingestion before cubing.
#[derive(Debug, Clone, PartialEq)]
pub struct MTuple {
    ids: Box<[u32]>,
    isb: Isb,
}

impl MTuple {
    /// Creates a tuple from m-layer member ids and a fitted ISB.
    pub fn new(ids: Vec<u32>, isb: Isb) -> Self {
        MTuple {
            ids: ids.into_boxed_slice(),
            isb,
        }
    }

    /// Member ids at the m-layer levels.
    #[inline]
    pub fn ids(&self) -> &[u32] {
        &self.ids
    }

    /// The tuple's regression measure.
    #[inline]
    pub fn isb(&self) -> &Isb {
        &self.isb
    }
}

/// Folds `next` into `acc` under standard-dimension (sibling) semantics —
/// Theorem 3.2. The cubing algorithms use this single merge everywhere,
/// so swapping in a different measure means changing one function.
///
/// # Errors
/// [`CoreError::Regress`] when the intervals differ (m-layer tuples must
/// share the analysis window).
pub fn merge_sibling(acc: &mut Isb, next: &Isb) -> Result<()> {
    aggregate::merge_standard_into(acc, next).map_err(CoreError::from)
}

/// The exception score of a measure: the magnitude of its regression
/// slope, the quantity thresholds compare against ("a regression line is
/// exceptional if its slope is ≥ the exception threshold").
#[inline]
pub fn exception_score(isb: &Isb) -> f64 {
    isb.slope().abs()
}

/// Validates a tuple set: consistent arity, ids within the m-layer's
/// cardinalities, and a common time interval.
///
/// # Errors
/// [`CoreError::BadInput`] describing the first violation found.
pub fn validate_tuples(
    schema: &regcube_olap::CubeSchema,
    m_layer: &regcube_olap::CuboidSpec,
    tuples: &[MTuple],
) -> Result<()> {
    let Some(first) = tuples.first() else {
        return Err(CoreError::BadInput {
            detail: "no input tuples".into(),
        });
    };
    let interval = first.isb().interval();
    for (i, t) in tuples.iter().enumerate() {
        if t.ids().len() != schema.num_dims() {
            return Err(CoreError::BadInput {
                detail: format!(
                    "tuple {i} has {} ids for {} dimensions",
                    t.ids().len(),
                    schema.num_dims()
                ),
            });
        }
        if t.isb().interval() != interval {
            return Err(CoreError::BadInput {
                detail: format!(
                    "tuple {i} covers {:?} but the window is {:?}",
                    t.isb().interval(),
                    interval
                ),
            });
        }
        for (d, &id) in t.ids().iter().enumerate() {
            let card = schema.dims()[d].hierarchy().cardinality(m_layer.level(d));
            if id >= card {
                return Err(CoreError::BadInput {
                    detail: format!(
                        "tuple {i} id {id} out of range for dimension {d} (cardinality {card})"
                    ),
                });
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use regcube_olap::{CubeSchema, CuboidSpec};
    use regcube_regress::TimeSeries;

    fn isb(slope: f64) -> Isb {
        let z = TimeSeries::from_fn(0, 9, |t| slope * t as f64).unwrap();
        Isb::fit(&z).unwrap()
    }

    #[test]
    fn tuple_accessors() {
        let t = MTuple::new(vec![1, 2], isb(0.5));
        assert_eq!(t.ids(), &[1, 2]);
        assert!((t.isb().slope() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn sibling_merge_and_score() {
        let mut acc = isb(0.5);
        merge_sibling(&mut acc, &isb(-0.2)).unwrap();
        assert!((acc.slope() - 0.3).abs() < 1e-12);
        assert!((exception_score(&acc) - 0.3).abs() < 1e-12);
        assert!((exception_score(&isb(-0.7)) - 0.7).abs() < 1e-12);

        let shifted = Isb::new(5, 14, 0.0, 0.0).unwrap();
        assert!(merge_sibling(&mut acc, &shifted).is_err());
    }

    #[test]
    fn tuple_validation() {
        let schema = CubeSchema::synthetic(2, 2, 3).unwrap();
        let m = CuboidSpec::new(vec![2, 2]);
        let good = vec![
            MTuple::new(vec![0, 8], isb(0.1)),
            MTuple::new(vec![4, 3], isb(0.2)),
        ];
        validate_tuples(&schema, &m, &good).unwrap();

        assert!(validate_tuples(&schema, &m, &[]).is_err());
        let bad_arity = vec![MTuple::new(vec![0], isb(0.1))];
        assert!(validate_tuples(&schema, &m, &bad_arity).is_err());
        let bad_id = vec![MTuple::new(vec![0, 9], isb(0.1))];
        assert!(validate_tuples(&schema, &m, &bad_id).is_err());
        let bad_window = vec![
            MTuple::new(vec![0, 0], isb(0.1)),
            MTuple::new(vec![1, 1], Isb::new(5, 9, 0.0, 0.0).unwrap()),
        ];
        assert!(validate_tuples(&schema, &m, &bad_window).is_err());
    }
}
