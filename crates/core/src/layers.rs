//! The two critical layers (paper Section 4.2).

use crate::Result;
use regcube_olap::{CubeSchema, CuboidSpec, Lattice};

/// The pair of critical cuboids the cube always materializes in full:
/// the **m-layer** (minimal interesting layer, "the minimal layer that an
/// analyst would like to study") and the **o-layer** (observation layer,
/// "the layer at which an analyst … checks and makes decisions").
///
/// Internally this is the cuboid [`Lattice`] spanned between them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CriticalLayers {
    lattice: Lattice,
}

impl CriticalLayers {
    /// Creates the layers, validating that the o-layer is an ancestor of
    /// the m-layer in the schema.
    ///
    /// # Errors
    /// Propagates lattice validation ([`regcube_olap::OlapError`]).
    pub fn new(schema: &CubeSchema, o_layer: CuboidSpec, m_layer: CuboidSpec) -> Result<Self> {
        Ok(CriticalLayers {
            lattice: Lattice::new(schema, o_layer, m_layer)?,
        })
    }

    /// Example 4's layers for a `(user, location)`-style schema with
    /// 3-level hierarchies: m-layer `(user-group, street-block)` =
    /// levels `(1, 2)`... generalized to "m-layer one level above the
    /// finest everywhere; o-layer `(*, L1)`-shaped": dimension 0 rolls to
    /// `*`, the rest to level 1. Useful as a sensible default.
    ///
    /// # Errors
    /// Propagates lattice validation errors for schemas of depth 0.
    pub fn default_for(schema: &CubeSchema) -> Result<Self> {
        let m: Vec<u8> = schema
            .dims()
            .iter()
            .map(|d| d.depth().saturating_sub(1).max(1))
            .collect();
        let mut o = vec![1u8; schema.num_dims()];
        o[0] = 0;
        for (d, level) in o.iter_mut().enumerate() {
            *level = (*level).min(m[d]);
        }
        CriticalLayers::new(schema, CuboidSpec::new(o), CuboidSpec::new(m))
    }

    /// The observation layer.
    #[inline]
    pub fn o_layer(&self) -> &CuboidSpec {
        self.lattice.o_layer()
    }

    /// The minimal interesting layer.
    #[inline]
    pub fn m_layer(&self) -> &CuboidSpec {
        self.lattice.m_layer()
    }

    /// The cuboid lattice between the layers (both inclusive).
    #[inline]
    pub fn lattice(&self) -> &Lattice {
        &self.lattice
    }

    /// Number of cuboids between the layers, inclusive.
    #[inline]
    pub fn cuboid_count(&self) -> u64 {
        self.lattice.count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn example5_layer_pair() {
        let schema = CubeSchema::synthetic(3, 3, 10).unwrap();
        let layers = CriticalLayers::new(
            &schema,
            CuboidSpec::new(vec![1, 0, 1]),
            CuboidSpec::new(vec![2, 2, 2]),
        )
        .unwrap();
        assert_eq!(layers.cuboid_count(), 12);
        assert_eq!(layers.o_layer().levels(), &[1, 0, 1]);
        assert_eq!(layers.m_layer().levels(), &[2, 2, 2]);
    }

    #[test]
    fn inverted_layers_are_rejected() {
        let schema = CubeSchema::synthetic(2, 2, 3).unwrap();
        assert!(CriticalLayers::new(
            &schema,
            CuboidSpec::new(vec![2, 2]),
            CuboidSpec::new(vec![1, 1]),
        )
        .is_err());
    }

    #[test]
    fn default_layers_are_valid() {
        for (d, l) in [(1usize, 2u8), (2, 3), (4, 2), (3, 1)] {
            let schema = CubeSchema::synthetic(d, l, 3).unwrap();
            let layers = CriticalLayers::default_for(&schema).unwrap();
            assert!(layers.o_layer().is_ancestor_or_equal(layers.m_layer()));
            schema.check_cuboid(layers.m_layer()).unwrap();
        }
    }
}
