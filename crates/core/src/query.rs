//! On-the-fly queries against a computed cube.
//!
//! Framework 4.1 deliberately materializes only the critical layers and
//! exception cells; Section 4.3 lists "not at all (leave everything to
//! on-the-fly computation)" as the other end of the spectrum. This module
//! provides that end for *point* queries: any cell between the layers can
//! be answered exactly by aggregating the retained m-layer with
//! Theorem 3.2 — the m-layer is always materialized, so no query ever
//! touches raw stream data.

use crate::measure::{exception_score, merge_sibling};
use crate::result::CubeResult;
use crate::Result;
use regcube_olap::cell::{project_key, CellKey};
use regcube_olap::{CubeSchema, CuboidSpec};
use regcube_regress::Isb;

/// Computes the measure of **any** cell in the lattice, materialized or
/// not: first consults the retained stores, then falls back to an exact
/// on-the-fly aggregation over the m-layer.
///
/// Returns `None` when no m-layer descendant contributes to the cell
/// (the cell is empty in this window).
///
/// # Errors
/// Propagates measure-merge failures (impossible for a cube built from
/// one validated window).
pub fn cell_measure(
    schema: &CubeSchema,
    cube: &CubeResult,
    cuboid: &CuboidSpec,
    key: &CellKey,
) -> Result<Option<Isb>> {
    if let Some(m) = cube.get(cuboid, key) {
        return Ok(Some(*m));
    }
    compute_from_m_layer(schema, cube, cuboid, key)
}

/// The pure on-the-fly path of [`cell_measure`] (skips retained stores),
/// exposed for verification and benchmarks.
///
/// # Errors
/// Propagates measure-merge failures.
pub fn compute_from_m_layer(
    schema: &CubeSchema,
    cube: &CubeResult,
    cuboid: &CuboidSpec,
    key: &CellKey,
) -> Result<Option<Isb>> {
    let m_layer = cube.layers().m_layer();
    let mut acc: Option<Isb> = None;
    for (m_key, isb) in cube.m_table() {
        let projected = project_key(schema, m_layer, m_key.ids(), cuboid);
        if projected.as_slice() != key.ids() {
            continue;
        }
        match &mut acc {
            Some(a) => merge_sibling(a, isb)?,
            None => acc = Some(*isb),
        }
    }
    Ok(acc)
}

/// A ranked cell for analyst lists.
#[derive(Debug, Clone, PartialEq)]
pub struct RankedCell {
    /// Cuboid of the cell.
    pub cuboid: CuboidSpec,
    /// Member-id key.
    pub key: CellKey,
    /// Measure.
    pub measure: Isb,
    /// `|slope|`, the ranking score.
    pub score: f64,
}

/// The `k` hottest cells of one cuboid, computed on the fly from the
/// m-layer (works for *any* lattice cuboid, materialized or not) —
/// the "which cells should I look at first?" query behind observation
/// dashboards.
///
/// # Errors
/// Propagates measure-merge failures.
pub fn top_k_cells(
    schema: &CubeSchema,
    cube: &CubeResult,
    cuboid: &CuboidSpec,
    k: usize,
) -> Result<Vec<RankedCell>> {
    let (table, _) = crate::table::aggregate_from(
        schema,
        cube.layers().m_layer(),
        cube.m_table(),
        cuboid,
        None,
    )?;
    let mut ranked: Vec<RankedCell> = table
        .into_iter()
        .map(|(key, measure)| RankedCell {
            cuboid: cuboid.clone(),
            key,
            score: exception_score(&measure),
            measure,
        })
        .collect();
    ranked.sort_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.key.cmp(&b.key))
    });
    ranked.truncate(k);
    Ok(ranked)
}

/// Compares a cell against its **siblings** (cells sharing a parent on
/// one dimension, Section 2.1): returns `(rank, out_of)` of the cell's
/// score among the sibling group along dimension `dim`, computed on the
/// fly. Analysts use this to judge whether an exception is local or an
/// artifact of a hot parent.
///
/// Returns `None` when the cell itself is empty, the dimension is at the
/// `*` level (no sibling group), or out of range.
///
/// # Errors
/// Propagates measure-merge failures.
pub fn sibling_rank(
    schema: &CubeSchema,
    cube: &CubeResult,
    cuboid: &CuboidSpec,
    key: &CellKey,
    dim: usize,
) -> Result<Option<(usize, usize)>> {
    if dim >= cuboid.num_dims() || cuboid.level(dim) == 0 {
        return Ok(None);
    }
    let Some(own) = cell_measure(schema, cube, cuboid, key)? else {
        return Ok(None);
    };
    let own_score = exception_score(&own);
    let level = cuboid.level(dim);
    let h = schema.dims()[dim].hierarchy();
    let parent = h.ancestor_unchecked(level, key.ids()[dim], level - 1);
    let siblings = h.children(dim, level - 1, parent)?;

    let mut rank = 1;
    let mut present = 0;
    for sib in siblings {
        let mut ids = key.ids().to_vec();
        ids[dim] = sib;
        let sib_key = CellKey::new(ids);
        if let Some(m) = cell_measure(schema, cube, cuboid, &sib_key)? {
            present += 1;
            if sib_key != *key && exception_score(&m) > own_score {
                rank += 1;
            }
        }
    }
    Ok(Some((rank, present)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exception::ExceptionPolicy;
    use crate::layers::CriticalLayers;
    use crate::measure::MTuple;
    use crate::mo_cubing;
    use regcube_olap::CubeSchema;
    use regcube_regress::TimeSeries;

    fn isb(slope: f64) -> Isb {
        let z = TimeSeries::from_fn(0, 9, |t| slope * t as f64).unwrap();
        Isb::fit(&z).unwrap()
    }

    fn setup() -> (CubeSchema, CubeResult) {
        let schema = CubeSchema::synthetic(2, 2, 2).unwrap();
        let layers = CriticalLayers::new(
            &schema,
            CuboidSpec::new(vec![0, 0]),
            CuboidSpec::new(vec![2, 2]),
        )
        .unwrap();
        let mut tuples = Vec::new();
        for a in 0..4u32 {
            for b in 0..4u32 {
                tuples.push(MTuple::new(vec![a, b], isb((a * 4 + b) as f64 / 10.0)));
            }
        }
        // A strict policy so almost nothing is materialized in between.
        let cube = mo_cubing::compute(
            &schema,
            &layers,
            &ExceptionPolicy::slope_threshold(100.0),
            &tuples,
        )
        .unwrap();
        (schema, cube)
    }

    #[test]
    fn on_the_fly_matches_direct_aggregation() {
        let (schema, cube) = setup();
        // (L1, L1) is not materialized (no exceptions, not a layer).
        let cuboid = CuboidSpec::new(vec![1, 1]);
        assert!(cube.exceptions_in(&cuboid).is_none());
        // Cell (1, 0) covers m-members a ∈ {2,3}, b ∈ {0,1}:
        // slopes (8+9+12+13)/10 = 4.2.
        let key = CellKey::new(vec![1, 0]);
        let m = cell_measure(&schema, &cube, &cuboid, &key)
            .unwrap()
            .expect("non-empty");
        assert!((m.slope() - 4.2).abs() < 1e-9, "slope {}", m.slope());
        // The pure fallback agrees.
        let fallback = compute_from_m_layer(&schema, &cube, &cuboid, &key)
            .unwrap()
            .unwrap();
        assert!(fallback.approx_eq(&m, 1e-12));
    }

    #[test]
    fn materialized_cells_short_circuit() {
        let (schema, cube) = setup();
        let m_layer = cube.layers().m_layer().clone();
        let key = CellKey::new(vec![3, 3]);
        let via_query = cell_measure(&schema, &cube, &m_layer, &key)
            .unwrap()
            .unwrap();
        assert!((via_query.slope() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn empty_cells_answer_none() {
        let (schema, cube) = setup();
        // All 16 m-cells exist here, so test an empty cell by building a
        // sparser cube.
        let layers = cube.layers().clone();
        let sparse = mo_cubing::compute(
            &schema,
            &layers,
            &ExceptionPolicy::never(),
            &[MTuple::new(vec![0, 0], isb(1.0))],
        )
        .unwrap();
        let cuboid = CuboidSpec::new(vec![1, 1]);
        let absent = CellKey::new(vec![1, 1]);
        assert!(cell_measure(&schema, &sparse, &cuboid, &absent)
            .unwrap()
            .is_none());
    }

    #[test]
    fn top_k_ranks_by_slope_magnitude() {
        let (schema, cube) = setup();
        let cuboid = CuboidSpec::new(vec![1, 1]);
        let top = top_k_cells(&schema, &cube, &cuboid, 2).unwrap();
        assert_eq!(top.len(), 2);
        // Hottest (L1,L1) cell is (1,1): m-members a∈{2,3}, b∈{2,3}:
        // (10+11+14+15)/10 = 5.0; then (1,0) = 4.2.
        assert_eq!(top[0].key, CellKey::new(vec![1, 1]));
        assert!((top[0].score - 5.0).abs() < 1e-9);
        assert_eq!(top[1].key, CellKey::new(vec![1, 0]));
        assert!(top[0].score >= top[1].score);

        // k larger than the population returns everything.
        let all = top_k_cells(&schema, &cube, &cuboid, 100).unwrap();
        assert_eq!(all.len(), 4);
    }

    #[test]
    fn sibling_rank_identifies_the_hot_branch() {
        let (schema, cube) = setup();
        let cuboid = CuboidSpec::new(vec![1, 1]);
        // Along dimension 0, cell (1,1) vs sibling (0,1): (1,1) is hotter.
        let (rank, out_of) = sibling_rank(&schema, &cube, &cuboid, &CellKey::new(vec![1, 1]), 0)
            .unwrap()
            .unwrap();
        assert_eq!((rank, out_of), (1, 2));
        let (rank0, _) = sibling_rank(&schema, &cube, &cuboid, &CellKey::new(vec![0, 1]), 0)
            .unwrap()
            .unwrap();
        assert_eq!(rank0, 2);

        // A * dimension has no sibling group.
        let apex = CuboidSpec::new(vec![0, 0]);
        assert!(
            sibling_rank(&schema, &cube, &apex, &CellKey::new(vec![0, 0]), 0)
                .unwrap()
                .is_none()
        );
        // Out-of-range dimension.
        assert!(
            sibling_rank(&schema, &cube, &cuboid, &CellKey::new(vec![1, 1]), 9)
                .unwrap()
                .is_none()
        );
    }
}
