//! Streaming consumers of [`UnitDelta`]s: the alarm subsystem.
//!
//! The paper's goal is monitoring "unusual changes of trends" *online*,
//! but computing the cube is only half of that — something must react
//! when cells become (or stop being) exceptional. The engines already
//! report exactly those transitions per ingested batch through
//! [`UnitDelta::appeared`]/[`UnitDelta::cleared`], sorted and
//! byte-identical at every shard count, so a consumer can maintain live
//! alarm state purely from the deltas with **no o-layer or
//! exception-store rescans** in the per-unit hot path.
//!
//! This module is that reaction layer:
//!
//! * [`AlarmSink`] — the consumer trait: one
//!   [`on_unit`](AlarmSink::on_unit) call per ingested batch, receiving
//!   the delta plus an [`AlarmContext`] for score lookups into the cube;
//! * [`AlarmLog`] — a ring-buffered, queryable history of exception
//!   *episodes* (`raised_at`/`cleared_at`/`peak_score` per
//!   `(cuboid, cell)`);
//! * [`ThresholdEscalator`] — promotes cells that stay exceptional for
//!   ≥ k units, or flap (raise/clear) ≥ f times within a sliding window
//!   of units, into [`Escalation`]s;
//! * [`DashboardSummary`] — O(1)-per-delta running counts per cuboid
//!   depth plus top-k hottest cells by residual score;
//! * [`SinkSet`] — shared-ownership fan-out used by the stream layer's
//!   `EngineConfig::with_sinks`: sinks live behind `Arc<Mutex<_>>` so
//!   the caller keeps a queryable handle while the engine drives them.
//!
//! A sink error never poisons the pipeline: [`SinkSet::dispatch`]
//! delivers the delta to every sink and collects the failures as
//! [`SinkError`]s for the caller to surface once.
//!
//! # Example
//!
//! ```
//! use regcube_core::alarm::{AlarmContext, AlarmLog, AlarmSink};
//! use regcube_core::{CriticalLayers, ExceptionPolicy, MTuple, MoCubingEngine};
//! use regcube_core::engine::CubingEngine;
//! use regcube_olap::{CubeSchema, CuboidSpec};
//! use regcube_regress::Isb;
//!
//! let schema = CubeSchema::synthetic(2, 2, 2).unwrap();
//! let layers = CriticalLayers::new(
//!     &schema,
//!     CuboidSpec::new(vec![0, 0]),
//!     CuboidSpec::new(vec![2, 2]),
//! ).unwrap();
//! let mut engine = MoCubingEngine::transient(
//!     schema, layers, ExceptionPolicy::slope_threshold(0.4),
//! ).unwrap();
//! let mut log = AlarmLog::new(64);
//!
//! // One hot stream: the covering coarse cells raise episodes.
//! let tuples = vec![MTuple::new(vec![0, 0], Isb::new(0, 9, 1.0, 0.9).unwrap())];
//! let delta = engine.ingest_unit(&tuples).unwrap();
//! log.on_unit(&delta, &AlarmContext::new(engine.result(), &delta)).unwrap();
//! assert!(!log.open_episodes().is_empty());
//! assert!(log.open_episodes().iter().all(|e| e.raised_at == 0));
//! ```

use crate::engine::UnitDelta;
use crate::measure::exception_score;
use crate::result::CubeResult;
use crate::Result;
use regcube_olap::cell::CellKey;
use regcube_olap::fxhash::FxHashMap;
use regcube_olap::CuboidSpec;
use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Mutex, PoisonError};

/// A between-layer cell address, the unit alarm state is keyed by.
pub type CellAddr = (CuboidSpec, CellKey);

/// What a sink can look up while consuming one delta: the engine's cube
/// after the batch was applied, plus the batch's unit clock.
///
/// The unit ordinal is the **cubing engine's** (increments per opened
/// window; empty stream units never reach the engine or its sinks).
#[derive(Debug, Clone, Copy)]
pub struct AlarmContext<'a> {
    result: &'a CubeResult,
    unit: u64,
    window: (i64, i64),
}

impl<'a> AlarmContext<'a> {
    /// Builds the context for one delta against the post-batch cube.
    pub fn new(result: &'a CubeResult, delta: &UnitDelta) -> Self {
        AlarmContext {
            result,
            unit: delta.unit,
            window: delta.window,
        }
    }

    /// The unit ordinal the delta belongs to.
    #[inline]
    pub fn unit(&self) -> u64 {
        self.unit
    }

    /// The unit's tick interval.
    #[inline]
    pub fn window(&self) -> (i64, i64) {
        self.window
    }

    /// The cube after the batch was applied.
    #[inline]
    pub fn result(&self) -> &'a CubeResult {
        self.result
    }

    /// The residual (exception) score of a retained cell — |slope| of
    /// its regression, the quantity thresholds test. `None` when the
    /// cube retains no such cell.
    pub fn score(&self, cuboid: &CuboidSpec, cell: &CellKey) -> Option<f64> {
        self.result.get(cuboid, cell).map(exception_score)
    }
}

/// A streaming consumer of [`UnitDelta`]s.
///
/// Implementations maintain whatever live view they need (episode logs,
/// dashboards, escalation state) strictly from the per-batch
/// appeared/cleared transitions — the contract that makes them cheap.
/// Deltas arrive in unit order and with `appeared`/`cleared` sorted by
/// `(cuboid, cell)`; under sharding the sink observes the merged delta,
/// identical at every shard count.
///
/// # Errors
/// A sink may fail ([`on_unit`](Self::on_unit) returns the crate error);
/// dispatchers treat that as the sink's problem, not the engine's — the
/// batch stays applied and the error is surfaced once to the caller.
///
/// ```
/// use regcube_core::alarm::{AlarmContext, AlarmSink};
/// use regcube_core::engine::{CubingEngine, MoCubingEngine, UnitDelta};
/// use regcube_core::{CriticalLayers, ExceptionPolicy, MTuple};
/// use regcube_olap::{CubeSchema, CuboidSpec};
/// use regcube_regress::Isb;
///
/// // The smallest useful sink: count exception transitions.
/// struct Counter {
///     raised: usize,
///     cleared: usize,
/// }
/// impl AlarmSink for Counter {
///     fn name(&self) -> &'static str {
///         "counter"
///     }
///     fn on_unit(
///         &mut self,
///         delta: &UnitDelta,
///         _ctx: &AlarmContext<'_>,
///     ) -> regcube_core::Result<()> {
///         self.raised += delta.appeared.len();
///         self.cleared += delta.cleared.len();
///         Ok(())
///     }
/// }
///
/// let schema = CubeSchema::synthetic(2, 2, 2).unwrap();
/// let layers = CriticalLayers::new(
///     &schema,
///     CuboidSpec::new(vec![0, 0]),
///     CuboidSpec::new(vec![2, 2]),
/// ).unwrap();
/// let mut engine = MoCubingEngine::transient(
///     schema,
///     layers,
///     ExceptionPolicy::slope_threshold(0.5),
/// ).unwrap();
/// let delta = engine
///     .ingest_unit(&[MTuple::new(vec![0, 0], Isb::new(0, 9, 1.0, 0.9).unwrap())])
///     .unwrap();
/// let mut sink = Counter { raised: 0, cleared: 0 };
/// sink.on_unit(&delta, &AlarmContext::new(engine.result(), &delta)).unwrap();
/// assert!(sink.raised > 0 && sink.cleared == 0);
/// ```
pub trait AlarmSink: Send {
    /// A short static name identifying the sink in error reports.
    fn name(&self) -> &'static str {
        "sink"
    }

    /// Consumes one batch's delta.
    ///
    /// # Errors
    /// Implementation-defined; see the trait docs for how dispatchers
    /// handle failures.
    fn on_unit(&mut self, delta: &UnitDelta, ctx: &AlarmContext<'_>) -> Result<()>;

    /// Consumes the late-record corrections applied since the previous
    /// batch (watermark-based out-of-order ingestion only; see
    /// [`LateAmendment`]). The default implementation ignores them —
    /// sinks that only track exception transitions need not care that
    /// warehoused history was corrected.
    ///
    /// # Errors
    /// Implementation-defined, handled like [`on_unit`](Self::on_unit).
    fn on_late_amendments(&mut self, amendments: &[LateAmendment]) -> Result<()> {
        let _ = amendments;
        Ok(())
    }

    /// Consumes one alarm revision: a late amendment changed a
    /// warehoused unit's exception verdict (or its score), so the
    /// exception history the sink derived from past deltas is stale for
    /// that `(cell, unit)`. The default implementation ignores
    /// revisions — sinks that only care about the live frontier need
    /// not replay history. [`AlarmLog`] and [`DashboardSummary`] patch
    /// their state so episode history and active sets never contradict
    /// the amended tilt frames.
    ///
    /// # Errors
    /// Implementation-defined, handled like [`on_unit`](Self::on_unit).
    fn on_revision(&mut self, revision: &AlarmRevision) -> Result<()> {
        let _ = revision;
        Ok(())
    }
}

/// One late-record correction applied to a cell's warehoused tilt-frame
/// history.
///
/// When a record arrives for a unit that has already closed but is still
/// newer than the low watermark, the stream layer amends the affected
/// m-layer and o-layer tilt-frame slots in place (exact by linearity of
/// the LSE fit — `Isb::amend_tick`) instead of dropping the record. Each
/// such correction is reported so downstream consumers see *corrections
/// rather than silence*: dashboards can re-render the amended span,
/// auditors can log it.
#[derive(Debug, Clone, PartialEq)]
pub struct LateAmendment {
    /// The m-layer cell whose history absorbed the record.
    pub m_cell: CellKey,
    /// The o-layer projection of that cell, amended alongside.
    pub o_cell: CellKey,
    /// The (already closed) stream unit the record belonged to.
    pub unit: u64,
    /// The record's tick.
    pub tick: i64,
    /// The record's value — the delta folded into the warehoused fits.
    pub delta: f64,
    /// Tilt level of the m-cell frame slot that absorbed the amendment.
    pub m_level: usize,
    /// Tilt level of the o-cell frame slot that absorbed the amendment.
    pub o_level: usize,
}

impl fmt::Display for LateAmendment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "late {} @ tick {} (unit {}): m-cell {} level {}, o-cell {} level {}",
            self.delta, self.tick, self.unit, self.m_cell, self.m_level, self.o_cell, self.o_level
        )
    }
}

/// A change to a warehoused unit's exception verdict caused by a late
/// amendment.
///
/// When a late record amends a closed unit's tilt-frame slot, the
/// amended cell (and the slot that scores against it as its reference)
/// is re-screened with the engine's policy. A verdict that flips or
/// moves is published as one of these typed events through
/// [`AlarmSink::on_revision`], so downstream exception history can be
/// patched instead of silently contradicting the amended frames. Every
/// variant carries the same coordinates: the revised cell, the finest
/// stream unit whose verdict changed, the tilt level of the re-screened
/// slot (0 = finest; coarser slots aggregate several units), and the
/// before/after residual scores.
#[derive(Debug, Clone, PartialEq)]
pub enum AlarmRevision {
    /// The unit was exceptional before the amendment and is not any
    /// more: the alarm it raised must be withdrawn.
    Retracted {
        /// The cuboid of the revised cell (the o-layer for engine-raised
        /// alarms).
        cuboid: CuboidSpec,
        /// The revised cell.
        cell: CellKey,
        /// The finest stream unit whose verdict changed.
        unit: u64,
        /// Tilt level of the re-screened slot (0 = finest).
        level: usize,
        /// The residual score before the amendment.
        old_score: f64,
        /// The residual score after the amendment.
        new_score: f64,
    },
    /// The unit was not exceptional before the amendment and now is:
    /// an alarm that should have fired at that unit.
    Raised {
        /// The cuboid of the revised cell.
        cuboid: CuboidSpec,
        /// The revised cell.
        cell: CellKey,
        /// The finest stream unit whose verdict changed.
        unit: u64,
        /// Tilt level of the re-screened slot (0 = finest).
        level: usize,
        /// The residual score before the amendment.
        old_score: f64,
        /// The residual score after the amendment.
        new_score: f64,
    },
    /// The unit was and stays exceptional, but its score moved: the
    /// alarm stands with a corrected magnitude.
    Rescored {
        /// The cuboid of the revised cell.
        cuboid: CuboidSpec,
        /// The revised cell.
        cell: CellKey,
        /// The finest stream unit whose verdict changed.
        unit: u64,
        /// Tilt level of the re-screened slot (0 = finest).
        level: usize,
        /// The residual score before the amendment.
        old_score: f64,
        /// The residual score after the amendment.
        new_score: f64,
    },
}

impl AlarmRevision {
    /// The cuboid of the revised cell.
    pub fn cuboid(&self) -> &CuboidSpec {
        match self {
            AlarmRevision::Retracted { cuboid, .. }
            | AlarmRevision::Raised { cuboid, .. }
            | AlarmRevision::Rescored { cuboid, .. } => cuboid,
        }
    }

    /// The revised cell.
    pub fn cell(&self) -> &CellKey {
        match self {
            AlarmRevision::Retracted { cell, .. }
            | AlarmRevision::Raised { cell, .. }
            | AlarmRevision::Rescored { cell, .. } => cell,
        }
    }

    /// The finest stream unit whose verdict changed.
    pub fn unit(&self) -> u64 {
        match self {
            AlarmRevision::Retracted { unit, .. }
            | AlarmRevision::Raised { unit, .. }
            | AlarmRevision::Rescored { unit, .. } => *unit,
        }
    }

    /// Tilt level of the re-screened slot (0 = finest).
    pub fn level(&self) -> usize {
        match self {
            AlarmRevision::Retracted { level, .. }
            | AlarmRevision::Raised { level, .. }
            | AlarmRevision::Rescored { level, .. } => *level,
        }
    }

    /// The residual score before the amendment.
    pub fn old_score(&self) -> f64 {
        match self {
            AlarmRevision::Retracted { old_score, .. }
            | AlarmRevision::Raised { old_score, .. }
            | AlarmRevision::Rescored { old_score, .. } => *old_score,
        }
    }

    /// The residual score after the amendment.
    pub fn new_score(&self) -> f64 {
        match self {
            AlarmRevision::Retracted { new_score, .. }
            | AlarmRevision::Raised { new_score, .. }
            | AlarmRevision::Rescored { new_score, .. } => *new_score,
        }
    }
}

impl fmt::Display for AlarmRevision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let kind = match self {
            AlarmRevision::Retracted { .. } => "retracted",
            AlarmRevision::Raised { .. } => "raised",
            AlarmRevision::Rescored { .. } => "rescored",
        };
        write!(
            f,
            "revision {kind} {}{} unit {} L{} score {:.6} -> {:.6}",
            self.cuboid(),
            self.cell(),
            self.unit(),
            self.level(),
            self.old_score(),
            self.new_score()
        )
    }
}

// ---------------------------------------------------------------------------
// AlarmLog
// ---------------------------------------------------------------------------

/// One exception episode of a between-layer cell: from the unit its
/// exception status appeared to the unit it cleared (open while `None`).
#[derive(Debug, Clone, PartialEq)]
pub struct Episode {
    /// The cuboid of the exceptional cell.
    pub cuboid: CuboidSpec,
    /// The cell key within the cuboid.
    pub cell: CellKey,
    /// Unit ordinal the episode was raised at. Stable across unit
    /// rollovers: a cell that stays exceptional into the next window is
    /// reported in neither `appeared` nor `cleared`, so its episode
    /// simply stays open.
    pub raised_at: u64,
    /// Unit ordinal the episode cleared at (`None` while open).
    pub cleared_at: Option<u64>,
    /// The largest residual score observed while the episode was open.
    pub peak_score: f64,
}

impl Episode {
    /// Whether the episode is still open.
    #[inline]
    pub fn is_open(&self) -> bool {
        self.cleared_at.is_none()
    }
}

impl fmt::Display for Episode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}{} raised_at={} cleared_at={} peak={:.6}",
            self.cuboid,
            self.cell,
            self.raised_at,
            match self.cleared_at {
                Some(u) => u.to_string(),
                None => "open".to_string(),
            },
            self.peak_score
        )
    }
}

/// A ring-buffered, queryable history of exception episodes.
///
/// Open episodes are tracked per `(cuboid, cell)`; each `cleared`
/// transition closes the matching episode and moves it into a bounded
/// ring of closed history (oldest evicted first). Peak scores of open
/// episodes are refreshed every unit from the cube's retained cells —
/// O(open episodes) per unit, never a table scan.
///
/// Cells whose residual score is missing or NaN (broken-sensor streams)
/// **never open episodes**; the suppression is counted in
/// [`suppressed`](Self::suppressed).
#[derive(Debug, Clone)]
pub struct AlarmLog {
    capacity: usize,
    open: FxHashMap<CellAddr, Episode>,
    closed: VecDeque<Episode>,
    opened_total: u64,
    closed_total: u64,
    evicted: u64,
    suppressed: u64,
    /// Episode patches applied by alarm revisions (late amendments that
    /// flipped or rescored a warehoused unit's verdict).
    revised_total: u64,
    /// The unit of the last consumed delta — the live frontier, used to
    /// decide whether a revised raise opens a live episode or lands in
    /// the closed ring as history.
    last_unit: Option<u64>,
}

impl AlarmLog {
    /// Creates a log retaining at most `capacity` closed episodes
    /// (clamped to at least 1). Open episodes are unbounded — they
    /// mirror the cube's live exception set.
    pub fn new(capacity: usize) -> Self {
        AlarmLog {
            capacity: capacity.max(1),
            open: FxHashMap::default(),
            closed: VecDeque::new(),
            opened_total: 0,
            closed_total: 0,
            evicted: 0,
            suppressed: 0,
            revised_total: 0,
            last_unit: None,
        }
    }

    /// Open episodes, sorted by `(cuboid, cell)`.
    pub fn open_episodes(&self) -> Vec<&Episode> {
        let mut out: Vec<&Episode> = self.open.values().collect();
        out.sort_unstable_by(|a, b| (&a.cuboid, &a.cell).cmp(&(&b.cuboid, &b.cell)));
        out
    }

    /// Closed episodes still in the ring, oldest first.
    pub fn closed_episodes(&self) -> impl Iterator<Item = &Episode> {
        self.closed.iter()
    }

    /// The episode currently open for a cell, if any.
    pub fn open_episode(&self, cuboid: &CuboidSpec, cell: &CellKey) -> Option<&Episode> {
        self.open.get(&(cuboid.clone(), cell.clone()))
    }

    /// Episodes (open first, then ring history oldest-first) of one cell.
    pub fn episodes_for(&self, cuboid: &CuboidSpec, cell: &CellKey) -> Vec<&Episode> {
        let mut out: Vec<&Episode> = self.open_episode(cuboid, cell).into_iter().collect();
        out.extend(
            self.closed
                .iter()
                .filter(|e| &e.cuboid == cuboid && &e.cell == cell),
        );
        out
    }

    /// Episodes ever opened.
    #[inline]
    pub fn opened_total(&self) -> u64 {
        self.opened_total
    }

    /// Episodes ever closed.
    #[inline]
    pub fn closed_total(&self) -> u64 {
        self.closed_total
    }

    /// Closed episodes evicted from the ring by newer ones.
    #[inline]
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// `appeared` transitions suppressed because the cell had no finite
    /// residual score (NaN/missing measures never alarm).
    #[inline]
    pub fn suppressed(&self) -> u64 {
        self.suppressed
    }

    /// Number of currently open episodes.
    #[inline]
    pub fn open_count(&self) -> usize {
        self.open.len()
    }

    /// Episode patches applied because of alarm revisions (see
    /// [`AlarmSink::on_revision`]).
    #[inline]
    pub fn revised_total(&self) -> u64 {
        self.revised_total
    }
}

impl AlarmSink for AlarmLog {
    fn name(&self) -> &'static str {
        "alarm-log"
    }

    fn on_unit(&mut self, delta: &UnitDelta, ctx: &AlarmContext<'_>) -> Result<()> {
        let unit = ctx.unit();
        self.last_unit = Some(unit);
        for (cuboid, cell) in &delta.appeared {
            let score = ctx.score(cuboid, cell).unwrap_or(f64::NAN);
            if !score.is_finite() {
                self.suppressed += 1;
                continue;
            }
            // Re-raising an open episode keeps its original raise point.
            self.open
                .entry((cuboid.clone(), cell.clone()))
                .or_insert_with(|| {
                    self.opened_total += 1;
                    Episode {
                        cuboid: cuboid.clone(),
                        cell: cell.clone(),
                        raised_at: unit,
                        cleared_at: None,
                        peak_score: score,
                    }
                });
        }
        // Refresh peaks of everything open from the post-batch cube: a
        // persisting episode's score keeps moving between its raise and
        // clear transitions.
        for ((cuboid, cell), episode) in &mut self.open {
            if let Some(score) = ctx.score(cuboid, cell) {
                if score > episode.peak_score {
                    episode.peak_score = score;
                }
            }
        }
        for (cuboid, cell) in &delta.cleared {
            // Cleared transitions without an open episode are the
            // suppressed (non-finite) raises; ignore them.
            if let Some(mut episode) = self.open.remove(&(cuboid.clone(), cell.clone())) {
                episode.cleared_at = Some(unit);
                self.closed_total += 1;
                if self.closed.len() == self.capacity {
                    self.closed.pop_front();
                    self.evicted += 1;
                }
                self.closed.push_back(episode);
            }
        }
        Ok(())
    }

    fn on_revision(&mut self, revision: &AlarmRevision) -> Result<()> {
        // Episode history is unit-grained; coarser slots aggregate many
        // units, so only finest-level revisions map onto episodes.
        if revision.level() != 0 {
            return Ok(());
        }
        let addr = (revision.cuboid().clone(), revision.cell().clone());
        let unit = revision.unit();
        match revision {
            AlarmRevision::Retracted { .. } => {
                let mut patched = false;
                if let Some(episode) = self.open.get_mut(&addr) {
                    if episode.raised_at == unit {
                        // The raise itself was invalidated. An episode
                        // still open past the revised unit stayed
                        // exceptional at every later unit (no cleared
                        // transition), so it survives from the next
                        // unit on; an episode whose only unit was the
                        // revised one disappears entirely.
                        if self.last_unit.is_some_and(|last| last > unit) {
                            episode.raised_at = unit + 1;
                        } else {
                            self.open.remove(&addr);
                        }
                        patched = true;
                    }
                }
                let before = self.closed.len();
                // A one-unit closed episode covering exactly the
                // revised unit was raised by the now-retracted verdict.
                self.closed.retain(|e| {
                    !(e.cuboid == addr.0
                        && e.cell == addr.1
                        && e.raised_at == unit
                        && e.cleared_at == Some(unit + 1))
                });
                patched |= self.closed.len() != before;
                if patched {
                    self.revised_total += 1;
                }
            }
            AlarmRevision::Raised { new_score, .. } => {
                if !new_score.is_finite() {
                    self.suppressed += 1;
                    return Ok(());
                }
                if let Some(episode) = self.open.get_mut(&addr) {
                    // The episode now started earlier than first seen.
                    if unit < episode.raised_at {
                        episode.raised_at = unit;
                    }
                    if *new_score > episode.peak_score {
                        episode.peak_score = *new_score;
                    }
                    self.revised_total += 1;
                } else if self.last_unit.map_or(true, |last| unit >= last) {
                    // The revised unit is the live frontier: the alarm
                    // should be burning right now.
                    self.opened_total += 1;
                    self.revised_total += 1;
                    self.open.insert(
                        addr.clone(),
                        Episode {
                            cuboid: addr.0,
                            cell: addr.1,
                            raised_at: unit,
                            cleared_at: None,
                            peak_score: *new_score,
                        },
                    );
                } else {
                    // Historical: the verdict held for that one unit
                    // only (later units reported no transition), so the
                    // patched record is a closed one-unit episode.
                    self.opened_total += 1;
                    self.closed_total += 1;
                    self.revised_total += 1;
                    if self.closed.len() == self.capacity {
                        self.closed.pop_front();
                        self.evicted += 1;
                    }
                    self.closed.push_back(Episode {
                        cuboid: addr.0,
                        cell: addr.1,
                        raised_at: unit,
                        cleared_at: Some(unit + 1),
                        peak_score: *new_score,
                    });
                }
            }
            AlarmRevision::Rescored { new_score, .. } => {
                if let Some(episode) = self.open.get_mut(&addr) {
                    if new_score.is_finite() && *new_score > episode.peak_score {
                        episode.peak_score = *new_score;
                        self.revised_total += 1;
                    }
                }
            }
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// ThresholdEscalator
// ---------------------------------------------------------------------------

/// Why a cell was escalated.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EscalationReason {
    /// The cell stayed exceptional for at least this many consecutive
    /// units.
    Persistent {
        /// Consecutive exceptional units at escalation time.
        units: u64,
    },
    /// The cell's exception status flipped (raise or clear) at least
    /// this many times within the sliding window.
    Flapping {
        /// Raise/clear transitions observed inside the window.
        transitions: u32,
    },
}

/// One promoted condition: a cell whose exception episodes crossed the
/// escalator's persistence or flap limits.
#[derive(Debug, Clone, PartialEq)]
pub struct Escalation {
    /// The cuboid of the escalated cell.
    pub cuboid: CuboidSpec,
    /// The cell key within the cuboid.
    pub cell: CellKey,
    /// Unit ordinal the escalation fired at.
    pub unit: u64,
    /// What crossed the limit.
    pub reason: EscalationReason,
}

#[derive(Debug, Clone, Default)]
struct CellTrack {
    /// Unit the current open episode was raised at.
    raised_at: Option<u64>,
    /// Units of raise/clear transitions inside the sliding window.
    transitions: VecDeque<u64>,
    /// The current open episode already escalated as persistent.
    persist_escalated: bool,
    /// Last unit a flapping escalation fired (re-fires only after a
    /// full window passes — flapping is chronic by nature).
    last_flap: Option<u64>,
}

/// Escalates cells whose episodes are *persistent* (exceptional for
/// ≥ `persist_units` consecutive units) or *flapping* (≥ `flap_limit`
/// raise/clear transitions within the last `flap_window` units).
///
/// Episode lifecycle is carried across unit-window rollovers for free:
/// the engines report a cell that stays exceptional into the next
/// window in neither `appeared` nor `cleared`, so its raise point —
/// like a tilted-time-frame slot — survives the rollover, and
/// persistence accumulates across windows. The flap window slides in
/// the same finest units the tilt frame ingests, aging transitions out
/// exactly like expiring fine slots.
///
/// Per-unit cost is O(|delta|) for the transition bookkeeping plus
/// O(tracked cells) for the persistence sweep, where tracked cells are
/// the open episodes and recently-flapped cells — never a table scan.
#[derive(Debug, Clone)]
pub struct ThresholdEscalator {
    persist_units: u64,
    flap_limit: u32,
    flap_window: u64,
    cells: FxHashMap<CellAddr, CellTrack>,
    escalations: Vec<Escalation>,
}

impl ThresholdEscalator {
    /// Creates an escalator: persistence after `persist_units`
    /// consecutive exceptional units (clamped to ≥ 1), flapping after
    /// `flap_limit` transitions (clamped to ≥ 2) within `flap_window`
    /// units (clamped to ≥ 1).
    pub fn new(persist_units: u64, flap_limit: u32, flap_window: u64) -> Self {
        ThresholdEscalator {
            persist_units: persist_units.max(1),
            flap_limit: flap_limit.max(2),
            flap_window: flap_window.max(1),
            cells: FxHashMap::default(),
            escalations: Vec::new(),
        }
    }

    /// All escalations so far, in firing order (within one unit, sorted
    /// by `(cuboid, cell)` — deterministic at every shard count).
    pub fn escalations(&self) -> &[Escalation] {
        &self.escalations
    }

    /// Removes and returns all recorded escalations.
    pub fn drain_escalations(&mut self) -> Vec<Escalation> {
        std::mem::take(&mut self.escalations)
    }

    /// Cells currently tracked (open or recently flapped).
    #[inline]
    pub fn tracked_cells(&self) -> usize {
        self.cells.len()
    }
}

impl AlarmSink for ThresholdEscalator {
    fn name(&self) -> &'static str {
        "threshold-escalator"
    }

    fn on_unit(&mut self, delta: &UnitDelta, ctx: &AlarmContext<'_>) -> Result<()> {
        let unit = ctx.unit();
        for (cuboid, cell) in &delta.appeared {
            if !ctx.score(cuboid, cell).unwrap_or(f64::NAN).is_finite() {
                continue; // mirror AlarmLog: NaN never opens an episode
            }
            let track = self
                .cells
                .entry((cuboid.clone(), cell.clone()))
                .or_default();
            if track.raised_at.is_none() {
                track.raised_at = Some(unit);
                track.transitions.push_back(unit);
            }
        }
        for (cuboid, cell) in &delta.cleared {
            if let Some(track) = self.cells.get_mut(&(cuboid.clone(), cell.clone())) {
                if track.raised_at.take().is_some() {
                    track.persist_escalated = false;
                    track.transitions.push_back(unit);
                }
            }
        }

        // Age the flap window, evaluate limits, drop dead tracks.
        let horizon = (unit + 1).saturating_sub(self.flap_window);
        let mut fired: Vec<Escalation> = Vec::new();
        self.cells.retain(|(cuboid, cell), track| {
            while track.transitions.front().is_some_and(|&t| t < horizon) {
                track.transitions.pop_front();
            }
            if let Some(raised) = track.raised_at {
                let span = unit - raised + 1;
                if !track.persist_escalated && span >= self.persist_units {
                    track.persist_escalated = true;
                    fired.push(Escalation {
                        cuboid: cuboid.clone(),
                        cell: cell.clone(),
                        unit,
                        reason: EscalationReason::Persistent { units: span },
                    });
                }
            }
            let flaps = track.transitions.len() as u32;
            if flaps >= self.flap_limit
                && track
                    .last_flap
                    .map_or(true, |last| unit >= last + self.flap_window)
            {
                track.last_flap = Some(unit);
                fired.push(Escalation {
                    cuboid: cuboid.clone(),
                    cell: cell.clone(),
                    unit,
                    reason: EscalationReason::Flapping { transitions: flaps },
                });
            }
            track.raised_at.is_some() || !track.transitions.is_empty()
        });
        // Hash-map sweep order is arbitrary; keep the record deterministic.
        fired.sort_unstable_by(|a, b| {
            (
                &a.cuboid,
                &a.cell,
                matches!(a.reason, EscalationReason::Flapping { .. }),
            )
                .cmp(&(
                    &b.cuboid,
                    &b.cell,
                    matches!(b.reason, EscalationReason::Flapping { .. }),
                ))
        });
        self.escalations.extend(fired);
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// DashboardSummary
// ---------------------------------------------------------------------------

/// O(1)-per-delta running dashboard of the live exception set.
///
/// Maintains, purely from appeared/cleared transitions:
///
/// * the count of active exception cells per cuboid **depth** (total
///   lattice depth — the drill level an analyst watches),
/// * the residual score of every active cell (refreshed on raise), for
///   top-k "hottest cells" queries,
/// * appeared/cleared/unit counters.
///
/// The per-unit update cost is O(|delta|): no o-layer or
/// exception-store rescans ever happen here. ([`hottest`](Self::hottest)
/// sorts the active set at *query* time, off the hot path.)
#[derive(Debug, Clone, Default)]
pub struct DashboardSummary {
    active: FxHashMap<CellAddr, f64>,
    by_depth: FxHashMap<u32, u64>,
    units_seen: u64,
    appeared_total: u64,
    cleared_total: u64,
    /// Alarm revisions consumed (frontier patches and historical ones).
    revisions_seen: u64,
    /// The unit of the last consumed delta — revisions of that unit
    /// patch the active set; older ones only count.
    last_unit: Option<u64>,
}

impl DashboardSummary {
    /// Creates an empty dashboard.
    pub fn new() -> Self {
        Self::default()
    }

    /// Currently active exception cells.
    #[inline]
    pub fn active_cells(&self) -> u64 {
        self.active.len() as u64
    }

    /// Active exception cells whose cuboid has the given total depth.
    pub fn active_at_depth(&self, depth: u32) -> u64 {
        self.by_depth.get(&depth).copied().unwrap_or(0)
    }

    /// `(depth, active count)` pairs, sorted by depth.
    pub fn depth_counts(&self) -> Vec<(u32, u64)> {
        let mut out: Vec<(u32, u64)> = self
            .by_depth
            .iter()
            .filter(|(_, &n)| n > 0)
            .map(|(&d, &n)| (d, n))
            .collect();
        out.sort_unstable();
        out
    }

    /// The `k` hottest active cells, hottest first, ties broken by
    /// `(cuboid, cell)`.
    ///
    /// Cells are ranked by their residual score **at raise time** — the
    /// price of the strict O(|delta|) hot path is that a cell ramping
    /// further *after* it raised keeps its entry score (its status
    /// never transitions, so no delta mentions it). For live scores use
    /// [`AlarmLog`]'s per-episode `peak_score` (refreshed every unit)
    /// or re-score the returned cells against the current cube.
    pub fn hottest(&self, k: usize) -> Vec<(&CuboidSpec, &CellKey, f64)> {
        let mut cells: Vec<(&CuboidSpec, &CellKey, f64)> = self
            .active
            .iter()
            .map(|((cuboid, cell), &score)| (cuboid, cell, score))
            .collect();
        cells.sort_unstable_by(|a, b| {
            b.2.total_cmp(&a.2)
                .then_with(|| (a.0, a.1).cmp(&(b.0, b.1)))
        });
        cells.truncate(k);
        cells
    }

    /// Units consumed.
    #[inline]
    pub fn units_seen(&self) -> u64 {
        self.units_seen
    }

    /// Appeared transitions consumed (including suppressed ones).
    #[inline]
    pub fn appeared_total(&self) -> u64 {
        self.appeared_total
    }

    /// Cleared transitions that closed an active cell.
    #[inline]
    pub fn cleared_total(&self) -> u64 {
        self.cleared_total
    }

    /// Alarm revisions consumed (see [`AlarmSink::on_revision`]).
    #[inline]
    pub fn revisions_seen(&self) -> u64 {
        self.revisions_seen
    }
}

impl AlarmSink for DashboardSummary {
    fn name(&self) -> &'static str {
        "dashboard-summary"
    }

    fn on_unit(&mut self, delta: &UnitDelta, ctx: &AlarmContext<'_>) -> Result<()> {
        self.units_seen += 1;
        self.last_unit = Some(ctx.unit());
        for (cuboid, cell) in &delta.appeared {
            self.appeared_total += 1;
            let score = ctx.score(cuboid, cell).unwrap_or(f64::NAN);
            if !score.is_finite() {
                continue; // mirror AlarmLog: NaN never activates a cell
            }
            if self
                .active
                .insert((cuboid.clone(), cell.clone()), score)
                .is_none()
            {
                *self.by_depth.entry(cuboid.total_depth()).or_insert(0) += 1;
            }
        }
        for (cuboid, cell) in &delta.cleared {
            if self
                .active
                .remove(&(cuboid.clone(), cell.clone()))
                .is_some()
            {
                self.cleared_total += 1;
                if let Some(n) = self.by_depth.get_mut(&cuboid.total_depth()) {
                    *n = n.saturating_sub(1);
                }
            }
        }
        Ok(())
    }

    fn on_revision(&mut self, revision: &AlarmRevision) -> Result<()> {
        self.revisions_seen += 1;
        // Only frontier-unit, base-resolution revisions can change what
        // "active right now" means; historical ones were already
        // superseded by later deltas and are only counted.
        if revision.level() != 0 || Some(revision.unit()) != self.last_unit {
            return Ok(());
        }
        let addr = (revision.cuboid().clone(), revision.cell().clone());
        match revision {
            AlarmRevision::Retracted { .. } => {
                if self.active.remove(&addr).is_some() {
                    self.cleared_total += 1;
                    if let Some(n) = self.by_depth.get_mut(&addr.0.total_depth()) {
                        *n = n.saturating_sub(1);
                    }
                }
            }
            AlarmRevision::Raised { new_score, .. } => {
                self.appeared_total += 1;
                if new_score.is_finite() && self.active.insert(addr.clone(), *new_score).is_none() {
                    *self.by_depth.entry(addr.0.total_depth()).or_insert(0) += 1;
                }
            }
            AlarmRevision::Rescored { new_score, .. } => {
                if new_score.is_finite() {
                    if let Some(score) = self.active.get_mut(&addr) {
                        *score = *new_score;
                    }
                }
            }
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// SinkSet — shared-ownership fan-out
// ---------------------------------------------------------------------------

/// A sink shared between the engine (which drives it) and the caller
/// (who queries it): any [`AlarmSink`] behind `Arc<Mutex<_>>`.
pub type SharedSink = Arc<Mutex<dyn AlarmSink + Send>>;

/// Wraps a sink for shared ownership: the returned handle stays
/// queryable after a clone of it is registered with an engine.
///
/// ```
/// use regcube_core::alarm::{self, AlarmLog, SharedSink};
///
/// let log = alarm::shared(AlarmLog::new(16));
/// let registered: SharedSink = log.clone();   // give this to the engine
/// assert_eq!(log.lock().unwrap().open_count(), 0);
/// # let _ = registered;
/// ```
pub fn shared<S: AlarmSink + 'static>(sink: S) -> Arc<Mutex<S>> {
    Arc::new(Mutex::new(sink))
}

/// One sink failure surfaced by [`SinkSet::dispatch`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SinkError {
    /// The failing sink's [`AlarmSink::name`].
    pub sink: &'static str,
    /// The rendered error.
    pub message: String,
}

impl fmt::Display for SinkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sink {}: {}", self.sink, self.message)
    }
}

/// An ordered set of shared sinks, dispatched to in registration order.
#[derive(Clone, Default)]
pub struct SinkSet {
    sinks: Vec<SharedSink>,
}

impl fmt::Debug for SinkSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SinkSet({} sinks)", self.sinks.len())
    }
}

impl SinkSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a sink.
    pub fn push(&mut self, sink: SharedSink) {
        self.sinks.push(sink);
    }

    /// Number of registered sinks.
    #[inline]
    pub fn len(&self) -> usize {
        self.sinks.len()
    }

    /// Whether the set is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.sinks.is_empty()
    }

    /// Delivers one delta to every sink. A failing (or even panicked —
    /// poisoned-mutex) sink never stops the fan-out: each failure is
    /// collected as a [`SinkError`] and the remaining sinks still run,
    /// so the caller surfaces errors exactly once and the engine's own
    /// state is untouched.
    pub fn dispatch(&self, delta: &UnitDelta, ctx: &AlarmContext<'_>) -> Vec<SinkError> {
        let mut errors = Vec::new();
        for sink in &self.sinks {
            let mut guard = sink.lock().unwrap_or_else(PoisonError::into_inner);
            if let Err(e) = guard.on_unit(delta, ctx) {
                errors.push(SinkError {
                    sink: guard.name(),
                    message: e.to_string(),
                });
            }
        }
        errors
    }

    /// Delivers a batch of late-record corrections to every sink, with
    /// the same error isolation as [`dispatch`](Self::dispatch). An
    /// empty batch is a no-op (sinks are not called).
    pub fn dispatch_amendments(&self, amendments: &[LateAmendment]) -> Vec<SinkError> {
        let mut errors = Vec::new();
        if amendments.is_empty() {
            return errors;
        }
        for sink in &self.sinks {
            let mut guard = sink.lock().unwrap_or_else(PoisonError::into_inner);
            if let Err(e) = guard.on_late_amendments(amendments) {
                errors.push(SinkError {
                    sink: guard.name(),
                    message: e.to_string(),
                });
            }
        }
        errors
    }

    /// Delivers a batch of alarm revisions (one call per revision per
    /// sink, in batch order) with the same error isolation as
    /// [`dispatch`](Self::dispatch). An empty batch is a no-op.
    pub fn dispatch_revisions(&self, revisions: &[AlarmRevision]) -> Vec<SinkError> {
        let mut errors = Vec::new();
        if revisions.is_empty() {
            return errors;
        }
        for sink in &self.sinks {
            let mut guard = sink.lock().unwrap_or_else(PoisonError::into_inner);
            for revision in revisions {
                if let Err(e) = guard.on_revision(revision) {
                    errors.push(SinkError {
                        sink: guard.name(),
                        message: e.to_string(),
                    });
                }
            }
        }
        errors
    }
}

impl FromIterator<SharedSink> for SinkSet {
    fn from_iter<I: IntoIterator<Item = SharedSink>>(iter: I) -> Self {
        SinkSet {
            sinks: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{CubingEngine, MoCubingEngine};
    use crate::{CriticalLayers, ExceptionPolicy, MTuple};
    use regcube_olap::CubeSchema;
    use regcube_regress::Isb;

    fn setup() -> MoCubingEngine {
        let schema = CubeSchema::synthetic(2, 2, 2).unwrap();
        let layers = CriticalLayers::new(
            &schema,
            CuboidSpec::new(vec![0, 0]),
            CuboidSpec::new(vec![2, 2]),
        )
        .unwrap();
        MoCubingEngine::transient(schema, layers, ExceptionPolicy::slope_threshold(0.4)).unwrap()
    }

    fn unit_tuples(unit: i64, slope: f64) -> Vec<MTuple> {
        let (s, e) = (unit * 10, unit * 10 + 9);
        vec![
            MTuple::new(vec![0, 0], Isb::new(s, e, 1.0, slope).unwrap()),
            MTuple::new(vec![3, 3], Isb::new(s, e, 1.0, 0.0).unwrap()),
        ]
    }

    /// Runs `units` slopes through a fresh engine and every given sink.
    fn drive(sinks: &SinkSet, slopes: &[f64]) -> Vec<Vec<SinkError>> {
        let mut engine = setup();
        slopes
            .iter()
            .enumerate()
            .map(|(u, &slope)| {
                let delta = engine.ingest_unit(&unit_tuples(u as i64, slope)).unwrap();
                sinks.dispatch(&delta, &AlarmContext::new(engine.result(), &delta))
            })
            .collect()
    }

    #[test]
    fn alarm_log_tracks_episode_lifecycle() {
        let log = shared(AlarmLog::new(8));
        let sinks: SinkSet = [log.clone() as SharedSink].into_iter().collect();
        // Hot for units 0-2, calm at 3, hot again at 4.
        let errors = drive(&sinks, &[0.9, 0.9, 0.9, 0.0, 0.9]);
        assert!(errors.iter().all(Vec::is_empty));

        let log = log.lock().unwrap();
        assert!(log.open_count() > 0);
        // Episodes raised at unit 0 survived the rollovers to unit 2.
        for e in log.open_episodes() {
            assert_eq!(e.raised_at, 4, "second episode opened at unit 4");
        }
        for e in log.closed_episodes() {
            assert_eq!(e.raised_at, 0, "first episode raised at 0: {e}");
            assert_eq!(e.cleared_at, Some(3), "cleared at the calm unit: {e}");
            assert!(e.peak_score > 0.0);
        }
        assert_eq!(
            log.opened_total(),
            log.closed_total() + log.open_count() as u64
        );
        assert_eq!(log.suppressed(), 0);
    }

    #[test]
    fn alarm_log_peak_follows_the_score() {
        let log = shared(AlarmLog::new(8));
        let sinks: SinkSet = [log.clone() as SharedSink].into_iter().collect();
        drive(&sinks, &[0.5, 1.5, 0.8]);
        let log = log.lock().unwrap();
        for e in log.open_episodes() {
            assert_eq!(e.raised_at, 0);
            assert!(
                e.peak_score >= 1.0,
                "peak {} must capture the unit-1 spike",
                e.peak_score
            );
        }
    }

    #[test]
    fn alarm_log_ring_evicts_oldest() {
        let log = shared(AlarmLog::new(1));
        let sinks: SinkSet = [log.clone() as SharedSink].into_iter().collect();
        // Two full episodes per cell: raise/clear, raise/clear.
        drive(&sinks, &[0.9, 0.0, 0.9, 0.0]);
        let log = log.lock().unwrap();
        assert_eq!(log.closed_episodes().count(), 1, "ring capacity 1");
        assert!(log.evicted() > 0);
        assert_eq!(log.open_count(), 0);
    }

    #[test]
    fn missing_scores_never_open_episodes() {
        let mut engine = setup();
        let delta = engine.ingest_unit(&unit_tuples(0, 0.0)).unwrap();
        // Hand-crafted delta naming a cell the cube does not retain.
        let fake = UnitDelta {
            appeared: vec![(CuboidSpec::new(vec![1, 1]), CellKey::new(vec![9, 9]))],
            ..delta.clone()
        };
        let mut log = AlarmLog::new(4);
        log.on_unit(&fake, &AlarmContext::new(engine.result(), &fake))
            .unwrap();
        assert_eq!(log.open_count(), 0);
        assert_eq!(log.suppressed(), 1);
        // The matching cleared transition is ignored, not mis-closed.
        let fake_clear = UnitDelta {
            appeared: Vec::new(),
            cleared: vec![(CuboidSpec::new(vec![1, 1]), CellKey::new(vec![9, 9]))],
            ..delta
        };
        log.on_unit(
            &fake_clear,
            &AlarmContext::new(engine.result(), &fake_clear),
        )
        .unwrap();
        assert_eq!(log.closed_total(), 0);
    }

    #[test]
    fn escalator_promotes_persistent_cells_once() {
        let esc = shared(ThresholdEscalator::new(3, 99, 8));
        let sinks: SinkSet = [esc.clone() as SharedSink].into_iter().collect();
        drive(&sinks, &[0.9, 0.9, 0.9, 0.9]);
        let esc = esc.lock().unwrap();
        assert!(!esc.escalations().is_empty());
        for e in esc.escalations() {
            assert_eq!(e.unit, 2, "k=3 units of persistence fire at unit 2");
            assert_eq!(e.reason, EscalationReason::Persistent { units: 3 });
        }
        // One escalation per cell, not one per unit.
        let mut cells: Vec<_> = esc
            .escalations()
            .iter()
            .map(|e| (&e.cuboid, &e.cell))
            .collect();
        cells.sort();
        cells.dedup();
        assert_eq!(cells.len(), esc.escalations().len());
    }

    #[test]
    fn escalator_detects_flapping() {
        let esc = shared(ThresholdEscalator::new(99, 3, 6));
        let sinks: SinkSet = [esc.clone() as SharedSink].into_iter().collect();
        // raise, clear, raise: 3 transitions within the window.
        drive(&sinks, &[0.9, 0.0, 0.9]);
        let esc = esc.lock().unwrap();
        assert!(!esc.escalations().is_empty());
        for e in esc.escalations() {
            assert!(matches!(
                e.reason,
                EscalationReason::Flapping { transitions: 3 }
            ));
        }
    }

    #[test]
    fn escalator_window_forgets_old_transitions() {
        let esc = shared(ThresholdEscalator::new(99, 3, 2));
        let sinks: SinkSet = [esc.clone() as SharedSink].into_iter().collect();
        // Transitions at units 0, 3, 6 — never 3 inside a 2-unit window.
        drive(&sinks, &[0.9, 0.9, 0.9, 0.0, 0.0, 0.0, 0.9]);
        let esc = esc.lock().unwrap();
        assert!(
            esc.escalations().is_empty(),
            "spread-out transitions must not flap: {:?}",
            esc.escalations()
        );
    }

    #[test]
    fn escalator_drains_and_prunes() {
        let esc = shared(ThresholdEscalator::new(2, 99, 2));
        let sinks: SinkSet = [esc.clone() as SharedSink].into_iter().collect();
        drive(&sinks, &[0.9, 0.9, 0.0, 0.0, 0.0, 0.0]);
        let mut esc = esc.lock().unwrap();
        let drained = esc.drain_escalations();
        assert!(!drained.is_empty());
        assert!(esc.escalations().is_empty());
        assert_eq!(esc.tracked_cells(), 0, "idle cells age out of the window");
    }

    #[test]
    fn dashboard_counts_match_a_full_rescan() {
        let dash = shared(DashboardSummary::new());
        let sinks: SinkSet = [dash.clone() as SharedSink].into_iter().collect();
        let mut engine = setup();
        for (u, slope) in [0.9, 0.0, 1.5, 0.9, 0.0].into_iter().enumerate() {
            let delta = engine.ingest_unit(&unit_tuples(u as i64, slope)).unwrap();
            sinks.dispatch(&delta, &AlarmContext::new(engine.result(), &delta));
            // From-scratch rescan of the retained exception stores.
            let dash = dash.lock().unwrap();
            let rescan = engine.result().total_exception_cells();
            assert_eq!(dash.active_cells(), rescan, "unit {u}");
            let mut by_depth: FxHashMap<u32, u64> = FxHashMap::default();
            for (c, _, _) in engine.result().iter_exceptions() {
                *by_depth.entry(c.total_depth()).or_insert(0) += 1;
            }
            for (depth, count) in dash.depth_counts() {
                assert_eq!(by_depth.get(&depth), Some(&count), "depth {depth}");
            }
            assert_eq!(dash.units_seen(), u as u64 + 1);
        }
    }

    #[test]
    fn dashboard_hottest_ranks_by_score() {
        let dash = shared(DashboardSummary::new());
        let sinks: SinkSet = [dash.clone() as SharedSink].into_iter().collect();
        drive(&sinks, &[2.0]);
        let dash = dash.lock().unwrap();
        let top = dash.hottest(3);
        assert!(!top.is_empty());
        assert!(top.len() <= 3);
        for pair in top.windows(2) {
            assert!(pair[0].2 >= pair[1].2, "hottest first");
        }
        assert!(dash.hottest(0).is_empty());
    }

    #[test]
    fn sink_errors_are_collected_not_propagated() {
        struct Failing;
        impl AlarmSink for Failing {
            fn name(&self) -> &'static str {
                "failing"
            }
            fn on_unit(&mut self, _: &UnitDelta, _: &AlarmContext<'_>) -> Result<()> {
                Err(crate::CoreError::BadInput {
                    detail: "sink exploded".into(),
                })
            }
        }
        let log = shared(AlarmLog::new(4));
        let mut sinks = SinkSet::new();
        sinks.push(shared(Failing));
        sinks.push(log.clone());
        assert_eq!(sinks.len(), 2);
        let errors = drive(&sinks, &[0.9]);
        // The failure is surfaced once per dispatch...
        assert_eq!(errors[0].len(), 1);
        assert_eq!(errors[0][0].sink, "failing");
        assert!(errors[0][0].message.contains("sink exploded"));
        assert!(errors[0][0].to_string().contains("failing"));
        // ...and the later sink still consumed the delta.
        assert!(log.lock().unwrap().open_count() > 0);
    }

    #[test]
    fn context_exposes_unit_window_and_result() {
        let mut engine = setup();
        let delta = engine.ingest_unit(&unit_tuples(2, 0.9)).unwrap();
        let ctx = AlarmContext::new(engine.result(), &delta);
        assert_eq!(ctx.unit(), 0, "first engine unit");
        assert_eq!(ctx.window(), (20, 29));
        assert_eq!(
            ctx.result().total_exception_cells(),
            engine.result().total_exception_cells()
        );
        let (cuboid, cell) = &delta.appeared[0];
        let score = ctx.score(cuboid, cell).unwrap();
        assert!(score >= 0.4, "appeared cells pass the threshold");
    }
}
