//! Exception policies: what makes a regression line *exceptional*.
//!
//! "A regression line is exceptional if its slope is ≥ the exception
//! threshold, where an exception threshold can be defined by a user or an
//! expert **for each cuboid c, for each dimension level d, or for the
//! whole cube**, depending on applications." (Section 4.3.)
//!
//! The policy also captures the *reference* choice — whether the tested
//! regression is the cell's own line or the change between consecutive
//! tilt-frame slots ("the current quarter vs. the previous one").

use crate::error::CoreError;
use crate::measure::exception_score;
use crate::Result;
use regcube_olap::cell::CellKey;
use regcube_olap::fxhash::{FxHashMap, FxHashSet};
use regcube_olap::CuboidSpec;
use regcube_regress::Isb;

/// Which regression line an exception test refers to (Section 4.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RefMode {
    /// The cell's own regression slope over its current window.
    #[default]
    OwnSlope,
    /// The difference between the newest and the previous time slot's
    /// slopes — "the current quarter vs. the last quarter".
    SlotDelta,
}

impl RefMode {
    /// Computes the score this mode tests against the threshold, given the
    /// newest measure and (optionally) the previous slot's measure.
    pub fn score(self, current: &Isb, previous: Option<&Isb>) -> f64 {
        match self {
            RefMode::OwnSlope => exception_score(current),
            RefMode::SlotDelta => match previous {
                Some(prev) => (current.slope() - prev.slope()).abs(),
                None => exception_score(current),
            },
        }
    }
}

/// A threshold policy with the paper's three scopes: per-cuboid overrides,
/// per-total-depth overrides, and a cube-wide default (resolution order:
/// cuboid → depth → default).
#[derive(Debug, Clone, PartialEq)]
pub struct ExceptionPolicy {
    default_threshold: f64,
    per_depth: FxHashMap<u32, f64>,
    per_cuboid: FxHashMap<CuboidSpec, f64>,
    ref_mode: RefMode,
}

impl ExceptionPolicy {
    /// A cube-wide slope-magnitude threshold.
    pub fn slope_threshold(threshold: f64) -> Self {
        ExceptionPolicy {
            default_threshold: threshold,
            per_depth: FxHashMap::default(),
            per_cuboid: FxHashMap::default(),
            ref_mode: RefMode::OwnSlope,
        }
    }

    /// A policy under which no cell is exceptional (threshold `+∞`).
    pub fn never() -> Self {
        ExceptionPolicy::slope_threshold(f64::INFINITY)
    }

    /// A policy under which every cell is exceptional (threshold `0`).
    pub fn always() -> Self {
        ExceptionPolicy::slope_threshold(0.0)
    }

    /// Adds a per-cuboid threshold override.
    ///
    /// # Errors
    /// [`CoreError::BadPolicy`] for negative or NaN thresholds.
    pub fn with_cuboid_threshold(mut self, cuboid: CuboidSpec, threshold: f64) -> Result<Self> {
        Self::check(threshold)?;
        self.per_cuboid.insert(cuboid, threshold);
        Ok(self)
    }

    /// Adds a per-total-depth threshold override ("for each dimension
    /// level d"): applies to every cuboid whose levels sum to `depth`.
    ///
    /// # Errors
    /// [`CoreError::BadPolicy`] for negative or NaN thresholds.
    pub fn with_depth_threshold(mut self, depth: u32, threshold: f64) -> Result<Self> {
        Self::check(threshold)?;
        self.per_depth.insert(depth, threshold);
        Ok(self)
    }

    /// Selects the reference mode (own slope vs. slot delta).
    pub fn with_ref_mode(mut self, mode: RefMode) -> Self {
        self.ref_mode = mode;
        self
    }

    fn check(threshold: f64) -> Result<()> {
        if threshold.is_nan() || threshold < 0.0 {
            return Err(CoreError::BadPolicy {
                detail: format!("threshold {threshold} must be a nonnegative number"),
            });
        }
        Ok(())
    }

    /// The reference mode.
    #[inline]
    pub fn ref_mode(&self) -> RefMode {
        self.ref_mode
    }

    /// The threshold effective for `cuboid`.
    pub fn threshold_for(&self, cuboid: &CuboidSpec) -> f64 {
        if let Some(&t) = self.per_cuboid.get(cuboid) {
            return t;
        }
        if let Some(&t) = self.per_depth.get(&cuboid.total_depth()) {
            return t;
        }
        self.default_threshold
    }

    /// Tests a cell measure in `cuboid` against the effective threshold
    /// (own-slope reference; slot-aware callers use [`RefMode::score`]).
    #[inline]
    pub fn is_exception(&self, cuboid: &CuboidSpec, measure: &Isb) -> bool {
        exception_score(measure) >= self.threshold_for(cuboid)
    }

    /// Re-screens one cell of `cuboid` into an exception-frontier set:
    /// inserts `key` when `measure` is exceptional, removes it
    /// otherwise. Returns the membership transition — `Some(true)` when
    /// the cell **appeared** on the frontier, `Some(false)` when it
    /// **cleared**, `None` when membership did not change. This is the
    /// one-cell diffing primitive the incremental popular-path drill
    /// ([`crate::popular_path::DrillFrontier`]) applies to exactly the
    /// cells a batch touched, instead of re-screening whole tables.
    pub fn screen_frontier_cell(
        &self,
        cuboid: &CuboidSpec,
        frontier: &mut FxHashSet<CellKey>,
        key: &CellKey,
        measure: &Isb,
    ) -> Option<bool> {
        if self.is_exception(cuboid, measure) {
            frontier.insert(key.clone()).then_some(true)
        } else {
            frontier.remove(key).then_some(false)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn isb(slope: f64) -> Isb {
        Isb::new(0, 9, 0.0, slope).unwrap()
    }

    #[test]
    fn global_threshold() {
        let p = ExceptionPolicy::slope_threshold(0.5);
        let c = CuboidSpec::new(vec![1, 1]);
        assert!(p.is_exception(&c, &isb(0.5)));
        assert!(p.is_exception(&c, &isb(-0.9)));
        assert!(!p.is_exception(&c, &isb(0.49)));
    }

    #[test]
    fn never_and_always() {
        let c = CuboidSpec::new(vec![1]);
        assert!(!ExceptionPolicy::never().is_exception(&c, &isb(1e12)));
        assert!(ExceptionPolicy::always().is_exception(&c, &isb(0.0)));
    }

    #[test]
    fn scope_resolution_order() {
        let special = CuboidSpec::new(vec![2, 0]);
        let same_depth = CuboidSpec::new(vec![1, 1]);
        let other = CuboidSpec::new(vec![1, 0]);
        let p = ExceptionPolicy::slope_threshold(0.5)
            .with_depth_threshold(2, 0.3)
            .unwrap()
            .with_cuboid_threshold(special.clone(), 0.1)
            .unwrap();
        assert_eq!(p.threshold_for(&special), 0.1); // cuboid override wins
        assert_eq!(p.threshold_for(&same_depth), 0.3); // depth override
        assert_eq!(p.threshold_for(&other), 0.5); // default
    }

    #[test]
    fn invalid_thresholds_are_rejected() {
        assert!(ExceptionPolicy::slope_threshold(0.5)
            .with_depth_threshold(1, -1.0)
            .is_err());
        assert!(ExceptionPolicy::slope_threshold(0.5)
            .with_cuboid_threshold(CuboidSpec::new(vec![1]), f64::NAN)
            .is_err());
    }

    #[test]
    fn ref_modes_score_differently() {
        let cur = isb(0.8);
        let prev = isb(0.7);
        assert!((RefMode::OwnSlope.score(&cur, Some(&prev)) - 0.8).abs() < 1e-12);
        assert!((RefMode::SlotDelta.score(&cur, Some(&prev)) - 0.1).abs() < 1e-9);
        // Without history, slot-delta falls back to the own slope.
        assert!((RefMode::SlotDelta.score(&cur, None) - 0.8).abs() < 1e-12);
        assert_eq!(RefMode::default(), RefMode::OwnSlope);
    }

    #[test]
    fn policy_builder_keeps_mode() {
        let p = ExceptionPolicy::slope_threshold(1.0).with_ref_mode(RefMode::SlotDelta);
        assert_eq!(p.ref_mode(), RefMode::SlotDelta);
    }
}
