//! Cuboid tables behind one storage seam.
//!
//! A cuboid's cell store can be laid out two ways: the row-oriented
//! [`CuboidTable`] (a hash map from [`CellKey`] to [`Isb`] — cheap point
//! updates, the default) and the struct-of-arrays
//! [`ColumnarTable`](crate::columnar::ColumnarTable) (sorted dense
//! cell-id index plus one vector per ISB component — the cache-friendly
//! layout of the hot roll-up path). The [`TableStorage`] trait is the
//! seam between them: the group-by-projection aggregation
//! ([`aggregate_into`]) and the exception screen
//! ([`collect_exceptions`]) are written once against the trait, so both
//! layouts share a single merge/exception code path and a new layout
//! only has to implement the trait.
//!
//! ```
//! use regcube_core::table::{aggregate_into, CuboidTable, TableStorage};
//! use regcube_olap::cell::CellKey;
//! use regcube_olap::{CubeSchema, CuboidSpec};
//! use regcube_regress::Isb;
//!
//! let schema = CubeSchema::synthetic(2, 2, 3).unwrap();
//! let fine = CuboidSpec::new(vec![2, 2]);
//! let mut table = CuboidTable::default();
//! table.merge_row(&[0, 1], &Isb::new(0, 9, 1.0, 0.5).unwrap()).unwrap();
//! table.merge_row(&[1, 1], &Isb::new(0, 9, 1.0, 0.25).unwrap()).unwrap();
//!
//! // Roll both cells up to the apex: their ISBs merge under Theorem 3.2.
//! let apex = CuboidSpec::new(vec![0, 0]);
//! let mut out = CuboidTable::default();
//! let rows = aggregate_into(&schema, &fine, &table, &apex, &mut out, None).unwrap();
//! assert_eq!((rows, out.len()), (2, 1));
//! assert_eq!(out[&CellKey::new(vec![0, 0])].slope(), 0.75);
//! ```

use crate::error::CoreError;
use crate::exception::ExceptionPolicy;
use crate::kernel::{BlockDim, BlockProjector};
use crate::measure::merge_sibling;
use crate::Result;
use regcube_olap::cell::CellKey;
use regcube_olap::fxhash::FxHashMap;
use regcube_olap::{CubeSchema, CuboidSpec};
use regcube_regress::Isb;

/// The row-oriented cell store of one cuboid: a hash map from cell keys
/// to measures.
pub type CuboidTable = FxHashMap<CellKey, Isb>;

/// A predicate over projected target-cell coordinates, deciding which
/// cells an aggregation materializes (Algorithm 2's drilling filter).
pub type CellFilter<'a> = &'a dyn Fn(&[u32]) -> bool;

/// One cuboid's cell store, abstracted over the physical layout.
///
/// The contract mirrors how the cubing algorithms consume tables:
/// rows are *merged in* one at a time under Theorem 3.2
/// ([`merge_row`](Self::merge_row)), [`finish`](Self::finish) is called
/// once after a batch of merges (layouts that stage appends compact
/// here; eager layouts no-op), and reads
/// ([`len`](Self::len)/[`try_for_each_cell`](Self::try_for_each_cell))
/// are only made on a finished table.
pub trait TableStorage {
    /// Number of materialized cells. Only meaningful on a finished
    /// table (after [`finish`](Self::finish)).
    fn len(&self) -> usize;

    /// Whether the (finished) table has no cells.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Folds one row into the cell at `ids`, creating it if absent and
    /// merging under Theorem 3.2 otherwise.
    ///
    /// # Errors
    /// Measure merge failures (interval mismatches — impossible for
    /// tables built from one validated tuple window).
    fn merge_row(&mut self, ids: &[u32], isb: &Isb) -> Result<()>;

    /// Compacts staged rows after a batch of [`merge_row`](Self::merge_row)
    /// calls. Layouts that merge eagerly (the hash map) no-op.
    ///
    /// # Errors
    /// Deferred merge failures from staged duplicate rows.
    fn finish(&mut self) -> Result<()>;

    /// Visits every cell of a finished table in the layout's natural
    /// order (hash order for rows, ascending cell id — i.e. sorted key
    /// order — for columns), stopping at the first error.
    ///
    /// # Errors
    /// Whatever `f` returns.
    fn try_for_each_cell<F: FnMut(&[u32], &Isb) -> Result<()>>(&self, f: F) -> Result<()>;

    /// Approximate retained bytes of the table (keys/index + measures +
    /// container overhead), for the analytical accounting in
    /// [`crate::stats`].
    fn approx_bytes(&self, num_dims: usize) -> usize;
}

impl TableStorage for CuboidTable {
    fn len(&self) -> usize {
        FxHashMap::len(self)
    }

    fn merge_row(&mut self, ids: &[u32], isb: &Isb) -> Result<()> {
        // Probing by slice first keeps the hot hit path allocation-free;
        // only a genuinely new cell pays for boxing the key.
        match self.get_mut(ids) {
            Some(acc) => merge_sibling(acc, isb),
            None => {
                self.insert(CellKey::new(ids.to_vec()), *isb);
                Ok(())
            }
        }
    }

    fn finish(&mut self) -> Result<()> {
        Ok(())
    }

    fn try_for_each_cell<F: FnMut(&[u32], &Isb) -> Result<()>>(&self, mut f: F) -> Result<()> {
        for (key, isb) in self.iter() {
            f(key.ids(), isb)?;
        }
        Ok(())
    }

    fn approx_bytes(&self, num_dims: usize) -> usize {
        table_bytes(self, num_dims)
    }
}

/// Approximate retained bytes of a row table (keys + measures + map
/// overhead), used by the analytical memory accounting in
/// [`crate::stats`].
///
/// Layout-aware rather than a flat slack factor: the hash map's bucket
/// array is sized from the table's reported *capacity* (a power of two
/// holding the capacity at ≤ 7/8 load, one `(CellKey, Isb)` slot plus
/// one control byte per bucket — the SwissTable layout `std::HashMap`
/// uses), and each occupied entry additionally owns its boxed key ids
/// on the heap. The bench suite checks this analytical figure against
/// real allocator measurements within a tolerance band.
pub fn table_bytes(table: &CuboidTable, num_dims: usize) -> usize {
    if table.capacity() == 0 {
        return 0;
    }
    let buckets = ((table.capacity() * 8).div_ceil(7)).next_power_of_two();
    let slot = std::mem::size_of::<(CellKey, Isb)>() + 1;
    buckets * slot + table.len() * num_dims * std::mem::size_of::<u32>()
}

/// Dense mixed-radix cell-id codec of one cuboid: per-dimension
/// cardinalities at the cuboid's levels plus the strides that map a
/// member-id tuple onto a single `u64` (`id = Σ ids[d] · strides[d]`,
/// last dimension fastest — ascending id order is ascending key order).
///
/// This is the shared key-compression layer of the dense backends: the
/// [`crate::columnar::ColumnarTable`] indexes its component columns
/// with it, and the [`crate::kernel::BlockProjector`] transforms these
/// ids block-at-a-time without a decode → project → encode round trip.
/// Construction applies the u64-overflow guard once, so every id the
/// codec produces is valid.
#[derive(Debug, Clone)]
pub struct DenseCellCodec {
    /// Per-dimension cardinality at the cuboid's levels.
    radices: Box<[u32]>,
    /// Mixed-radix strides, last dimension fastest.
    strides: Box<[u64]>,
}

impl DenseCellCodec {
    /// Builds the codec for one cuboid of `schema`.
    ///
    /// # Errors
    /// [`CoreError::BadInput`] when the cuboid's cell space does not fit
    /// a dense 64-bit id (astronomical cardinalities only).
    pub fn new(schema: &CubeSchema, cuboid: &CuboidSpec) -> Result<Self> {
        let radices: Box<[u32]> = (0..schema.num_dims())
            .map(|d| schema.dims()[d].hierarchy().cardinality(cuboid.level(d)))
            .collect();
        let mut strides = vec![0u64; radices.len()].into_boxed_slice();
        let mut stride: u64 = 1;
        for d in (0..radices.len()).rev() {
            strides[d] = stride;
            stride =
                stride
                    .checked_mul(u64::from(radices[d]))
                    .ok_or_else(|| CoreError::BadInput {
                        detail: format!("cuboid {cuboid} cell space overflows a dense 64-bit id"),
                    })?;
        }
        Ok(DenseCellCodec { radices, strides })
    }

    /// The dense cell id of a key (mixed-radix over the cuboid levels).
    #[inline]
    pub fn encode(&self, ids: &[u32]) -> u64 {
        ids.iter()
            .zip(self.strides.iter())
            .map(|(&id, &stride)| u64::from(id) * stride)
            .sum()
    }

    /// Decodes a dense cell id into per-dimension member ids.
    #[inline]
    pub fn decode_into(&self, id: u64, out: &mut [u32]) {
        for ((slot, &stride), &radix) in out.iter_mut().zip(self.strides.iter()).zip(&self.radices)
        {
            *slot = ((id / stride) % u64::from(radix)) as u32;
        }
    }

    /// Per-dimension cardinalities at the cuboid's levels.
    #[inline]
    pub fn radices(&self) -> &[u32] {
        &self.radices
    }

    /// Mixed-radix strides (last dimension fastest).
    #[inline]
    pub fn strides(&self) -> &[u64] {
        &self.strides
    }

    /// Number of dimensions the codec spans.
    #[inline]
    pub fn num_dims(&self) -> usize {
        self.radices.len()
    }
}

/// The largest per-dimension cardinality [`Projector`] materializes as
/// a lookup table; beyond it the projection falls back to per-row
/// hierarchy walks (bounding the table at 4 MiB per dimension).
const PROJECTOR_LUT_MAX: u32 = 1 << 20;

/// How one dimension of a [`Projector`] resolves ancestors.
enum DimProj<'a> {
    /// Source and target level coincide: the member is its own ancestor.
    Identity,
    /// `lut[member]` is the ancestor at the target level.
    Lut(Vec<u32>),
    /// Per-row hierarchy walk (huge cardinalities only).
    Walk {
        hierarchy: &'a regcube_olap::Hierarchy,
        from: u8,
        to: u8,
    },
}

/// Per-dimension ancestor lookup tables for one `source → target`
/// cuboid projection: `lut[d][member]` is the member's ancestor at the
/// target level. Built once per aggregation (O(Σ cardinalities)), so
/// the per-row projection is a plain indexed load instead of a
/// hierarchy walk.
pub struct Projector<'a> {
    dims: Vec<DimProj<'a>>,
}

impl<'a> Projector<'a> {
    /// Builds the lookup tables for projecting `source`-cuboid cells to
    /// the (ancestor-or-equal) `target` cuboid.
    pub fn new(schema: &'a CubeSchema, source: &CuboidSpec, target: &CuboidSpec) -> Self {
        let dims = (0..schema.num_dims())
            .map(|d| {
                let hierarchy = schema.dims()[d].hierarchy();
                let (from, to) = (source.level(d), target.level(d));
                let card = hierarchy.cardinality(from);
                if from == to {
                    DimProj::Identity
                } else if card <= PROJECTOR_LUT_MAX {
                    DimProj::Lut(
                        (0..card)
                            .map(|m| hierarchy.ancestor_unchecked(from, m, to))
                            .collect(),
                    )
                } else {
                    DimProj::Walk {
                        hierarchy,
                        from,
                        to,
                    }
                }
            })
            .collect();
        Projector { dims }
    }

    /// Projects one source key into `out` (same arity as the schema).
    #[inline]
    pub fn project_into(&self, ids: &[u32], out: &mut [u32]) {
        for ((&id, slot), dim) in ids.iter().zip(out.iter_mut()).zip(&self.dims) {
            *slot = match dim {
                DimProj::Identity => id,
                DimProj::Lut(lut) => lut[id as usize],
                DimProj::Walk {
                    hierarchy,
                    from,
                    to,
                } => hierarchy.ancestor_unchecked(*from, id, *to),
            };
        }
    }

    /// Lowers the per-dimension ancestor maps into a
    /// [`BlockProjector`] over dense mixed-radix ids — the blocked form
    /// the [`crate::kernel`] layer pushes id blocks through. The
    /// per-dimension LUTs are fused with the target strides
    /// (`flut[m] = ancestor(m) · tgt_stride`), dimensions the target
    /// collapses to a single member drop their lookup entirely, and
    /// same-level dimensions scale the digit straight across.
    ///
    /// Returns `None` when any dimension resolves ancestors by per-row
    /// hierarchy walks (cardinality beyond the LUT bound) — callers
    /// fall back to the scalar [`project_into`](Self::project_into)
    /// path.
    pub fn block_projector(
        &self,
        source: &DenseCellCodec,
        target: &DenseCellCodec,
    ) -> Option<BlockProjector> {
        debug_assert_eq!(source.num_dims(), self.dims.len());
        let mut dims = Vec::with_capacity(self.dims.len());
        for (d, dim) in self.dims.iter().enumerate() {
            let src_stride = source.strides()[d];
            let tgt_stride = target.strides()[d];
            dims.push(match dim {
                DimProj::Identity => BlockDim::Scale {
                    src_stride,
                    tgt_stride,
                },
                DimProj::Lut(lut) => {
                    if target.radices()[d] <= 1 {
                        BlockDim::Collapse { src_stride }
                    } else {
                        BlockDim::Lut {
                            src_stride,
                            flut: lut.iter().map(|&a| u64::from(a) * tgt_stride).collect(),
                        }
                    }
                }
                DimProj::Walk { .. } => return None,
            });
        }
        Some(BlockProjector::new(dims))
    }
}

/// Aggregates `source` into `target` by projecting every source cell to
/// the target cuboid and merging collisions under Theorem 3.2 — the one
/// group-by-projection primitive both algorithms and both storage
/// layouts share. `filter` decides which *target* cells to materialize:
/// `None` computes every cell (Algorithm 1), `Some(pred)` only
/// qualifying cells (Algorithm 2's drilling).
///
/// Returns the number of *source rows* folded (the work measure
/// reported in run statistics); the target is
/// [`finish`](TableStorage::finish)ed before returning.
///
/// # Errors
/// Propagates measure merge failures (interval mismatches — impossible
/// for tables built from one validated tuple window).
pub fn aggregate_into<S: TableStorage, T: TableStorage>(
    schema: &CubeSchema,
    source_cuboid: &CuboidSpec,
    source: &S,
    target_cuboid: &CuboidSpec,
    target: &mut T,
    filter: Option<CellFilter<'_>>,
) -> Result<u64> {
    let projector = Projector::new(schema, source_cuboid, target_cuboid);
    let mut projected = vec![0u32; schema.num_dims()];
    let mut rows: u64 = 0;
    source.try_for_each_cell(|ids, isb| {
        projector.project_into(ids, &mut projected);
        if let Some(pred) = filter {
            if !pred(&projected) {
                return Ok(());
            }
        }
        rows += 1;
        target.merge_row(&projected, isb)
    })?;
    target.finish()?;
    Ok(rows)
}

/// Row-layout convenience over [`aggregate_into`]: aggregates a new
/// [`CuboidTable`] for `target_cuboid` from a (descendant) `source`
/// table.
///
/// Returns the new table and the number of source rows folded.
///
/// # Errors
/// See [`aggregate_into`].
pub fn aggregate_from(
    schema: &CubeSchema,
    source_cuboid: &CuboidSpec,
    source: &CuboidTable,
    target_cuboid: &CuboidSpec,
    filter: Option<CellFilter<'_>>,
) -> Result<(CuboidTable, u64)> {
    let mut out = CuboidTable::default();
    let rows = aggregate_into(
        schema,
        source_cuboid,
        source,
        target_cuboid,
        &mut out,
        filter,
    )?;
    Ok((out, rows))
}

/// Drill aggregation: rolls the qualifying region of `source` up into a
/// new row table for `target_cuboid`, folding source cells in ascending
/// `(target key, source key)` order.
///
/// Unlike [`aggregate_from`], whose per-cell fold order follows the
/// source table's hash iteration order, the result here is a pure
/// function of the source's *contents* — independent of insertion
/// history, capacity or when the aggregation runs. That is the property
/// the frontier-dirty incremental drill replay relies on: an off-path
/// table retained from an earlier batch is byte-identical to the table
/// a from-scratch step-3 replay would compute now, as long as its
/// qualifying source region is unchanged.
///
/// The whole pass is allocation-free per row: the PR-4 [`Projector`]
/// LUTs project into one scratch buffer, qualifying rows append their
/// projected ids to one flat scratch vector, and the fold order is
/// established by sorting *indices* over that scratch — the only
/// per-cell allocation left is the one `CellKey` each distinct target
/// cell inserts into the output table.
///
/// Returns the new table and the number of qualifying source rows
/// folded.
///
/// # Errors
/// Propagates measure merge failures (interval mismatches — impossible
/// for tables built from one validated tuple window).
pub fn drill_aggregate(
    schema: &CubeSchema,
    source_cuboid: &CuboidSpec,
    source: &CuboidTable,
    target_cuboid: &CuboidSpec,
    qualify: impl Fn(&[u32]) -> bool,
) -> Result<(CuboidTable, u64)> {
    let projector = Projector::new(schema, source_cuboid, target_cuboid);
    let dims = schema.num_dims();
    let mut projected = vec![0u32; dims];
    // Projected target ids of every qualifying source row, flattened
    // into one scratch buffer (row i owns scratch[i*dims..][..dims]),
    // alongside the source row itself.
    let mut scratch: Vec<u32> = Vec::new();
    let mut rows: Vec<(&CellKey, &Isb)> = Vec::new();
    for (key, isb) in source {
        projector.project_into(key.ids(), &mut projected);
        if qualify(&projected) {
            scratch.extend_from_slice(&projected);
            rows.push((key, isb));
        }
    }
    let folded = rows.len() as u64;
    let target_ids = |i: usize| &scratch[i * dims..(i + 1) * dims];
    // Sort row *indices* into ascending (target key, source key) order
    // instead of boxing a key per row.
    let mut order: Vec<u32> = (0..rows.len() as u32).collect();
    order.sort_unstable_by(|&a, &b| {
        target_ids(a as usize)
            .cmp(target_ids(b as usize))
            .then_with(|| rows[a as usize].0.cmp(rows[b as usize].0))
    });
    let mut out = CuboidTable::default();
    let mut i = 0;
    while i < order.len() {
        // One run of equal target keys = one output cell, folded
        // left-to-right in the sorted order.
        let target = target_ids(order[i] as usize);
        let mut acc = *rows[order[i] as usize].1;
        i += 1;
        while i < order.len() && target_ids(order[i] as usize) == target {
            merge_sibling(&mut acc, rows[order[i] as usize].1)?;
            i += 1;
        }
        out.insert(CellKey::new(target.to_vec()), acc);
    }
    Ok((out, folded))
}

/// Screens a finished full table against the exception policy and
/// returns the exceptional cells as a row-layout store (exception sets
/// are small, so the retained form is always row-oriented) — the one
/// screening pass every backend shares.
pub fn collect_exceptions<S: TableStorage>(
    policy: &ExceptionPolicy,
    cuboid: &CuboidSpec,
    table: &S,
) -> CuboidTable {
    let mut exc = CuboidTable::default();
    table
        .try_for_each_cell(|ids, isb| {
            if policy.is_exception(cuboid, isb) {
                exc.insert(CellKey::new(ids.to_vec()), *isb);
            }
            Ok(())
        })
        .expect("screening never fails");
    exc
}

#[cfg(test)]
mod tests {
    use super::*;
    use regcube_olap::cell::project_key;
    use regcube_regress::TimeSeries;

    fn isb(slope: f64) -> Isb {
        let z = TimeSeries::from_fn(0, 9, |t| slope * t as f64).unwrap();
        Isb::fit(&z).unwrap()
    }

    fn schema() -> CubeSchema {
        CubeSchema::synthetic(2, 2, 3).unwrap()
    }

    #[test]
    fn aggregation_groups_by_ancestor() {
        let s = schema();
        let fine = CuboidSpec::new(vec![2, 2]);
        let coarse = CuboidSpec::new(vec![1, 0]);
        let mut src = CuboidTable::default();
        // Members 0 and 1 at L2 share L1 parent 0 (fanout 3); 3 has parent 1.
        src.insert(CellKey::new(vec![0, 5]), isb(0.1));
        src.insert(CellKey::new(vec![1, 7]), isb(0.2));
        src.insert(CellKey::new(vec![3, 5]), isb(0.4));

        let (out, rows) = aggregate_from(&s, &fine, &src, &coarse, None).unwrap();
        assert_eq!(rows, 3);
        assert_eq!(out.len(), 2);
        let a = out.get(&CellKey::new(vec![0, 0])).unwrap();
        assert!((a.slope() - 0.3).abs() < 1e-12, "0.1 + 0.2 grouped");
        let b = out.get(&CellKey::new(vec![1, 0])).unwrap();
        assert!((b.slope() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn identity_projection_copies() {
        let s = schema();
        let c = CuboidSpec::new(vec![2, 2]);
        let mut src = CuboidTable::default();
        src.insert(CellKey::new(vec![4, 4]), isb(-0.5));
        let (out, _) = aggregate_from(&s, &c, &src, &c, None).unwrap();
        assert_eq!(out.len(), 1);
        assert!((out[&CellKey::new(vec![4, 4])].slope() + 0.5).abs() < 1e-12);
    }

    #[test]
    fn filter_restricts_materialized_cells() {
        let s = schema();
        let fine = CuboidSpec::new(vec![2, 2]);
        let coarse = CuboidSpec::new(vec![1, 0]);
        let mut src = CuboidTable::default();
        src.insert(CellKey::new(vec![0, 5]), isb(0.1));
        src.insert(CellKey::new(vec![3, 5]), isb(0.4));

        let keep = |ids: &[u32]| ids[0] == 1;
        let (out, rows) = aggregate_from(&s, &fine, &src, &coarse, Some(&keep)).unwrap();
        assert_eq!(rows, 1, "filtered source rows are not folded");
        assert_eq!(out.len(), 1);
        assert!(out.contains_key(&CellKey::new(vec![1, 0])));
    }

    #[test]
    fn byte_accounting_tracks_layout() {
        let mut t = CuboidTable::default();
        assert_eq!(table_bytes(&t, 3), 0, "no capacity, no bytes");
        t.insert(CellKey::new(vec![0, 0, 0]), isb(0.0));
        let one = table_bytes(&t, 3);
        assert!(one > 0);
        // Growth is monotone in entries (capacity never shrinks on
        // insert) and the estimate stays within the physical layout's
        // ballpark: between the tight packed size and a generous upper
        // bound that covers a freshly-doubled, half-empty bucket array.
        let mut prev = one;
        for v in 1..=512u32 {
            t.insert(CellKey::new(vec![v, v, v]), isb(0.0));
            let now = table_bytes(&t, 3);
            assert!(now >= prev, "estimate shrank at {v} entries");
            prev = now;
        }
        let n = t.len();
        let packed =
            n * (std::mem::size_of::<(CellKey, Isb)>() + 1 + 3 * std::mem::size_of::<u32>());
        assert!(prev >= packed, "estimate below the packed minimum");
        assert!(
            prev <= packed * 3,
            "estimate above 3x the packed size: {prev} vs {packed}"
        );
    }

    #[test]
    fn projector_matches_project_key() {
        let s = schema();
        let fine = CuboidSpec::new(vec![2, 1]);
        for coarse in [
            CuboidSpec::new(vec![1, 0]),
            CuboidSpec::new(vec![0, 1]),
            CuboidSpec::new(vec![2, 1]),
        ] {
            let p = Projector::new(&s, &fine, &coarse);
            let mut out = vec![0u32; 2];
            for a in 0..9u32 {
                for b in 0..3u32 {
                    p.project_into(&[a, b], &mut out);
                    assert_eq!(out, project_key(&s, &fine, &[a, b], &coarse), "({a},{b})");
                }
            }
        }
    }

    #[test]
    fn merge_row_hits_without_allocating_a_key() {
        let mut t = CuboidTable::default();
        t.merge_row(&[1, 2], &isb(0.1)).unwrap();
        t.merge_row(&[1, 2], &isb(0.2)).unwrap();
        t.finish().unwrap();
        assert_eq!(TableStorage::len(&t), 1);
        let m = t.get([1u32, 2].as_slice()).unwrap();
        assert!((m.slope() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn codec_round_trips_and_guards_overflow() {
        let s = schema();
        let codec = DenseCellCodec::new(&s, &CuboidSpec::new(vec![2, 1])).unwrap();
        assert_eq!(codec.radices(), &[9, 3]);
        assert_eq!(codec.strides(), &[3, 1]);
        let mut out = vec![0u32; 2];
        for a in 0..9u32 {
            for b in 0..3u32 {
                let id = codec.encode(&[a, b]);
                codec.decode_into(id, &mut out);
                assert_eq!(out, vec![a, b]);
            }
        }
        // 6 dimensions with ~10^5 leaves each overflow u64.
        let big = CubeSchema::synthetic(6, 2, 2048).unwrap();
        assert!(DenseCellCodec::new(&big, &CuboidSpec::new(vec![2; 6])).is_err());
    }

    #[test]
    fn block_projector_matches_scalar_projection() {
        let s = schema();
        let fine = CuboidSpec::new(vec![2, 2]);
        let src = DenseCellCodec::new(&s, &fine).unwrap();
        for coarse in [
            CuboidSpec::new(vec![1, 0]),
            CuboidSpec::new(vec![0, 1]),
            CuboidSpec::new(vec![2, 1]),
            CuboidSpec::new(vec![2, 2]),
            CuboidSpec::new(vec![0, 0]),
        ] {
            let tgt = DenseCellCodec::new(&s, &coarse).unwrap();
            let p = Projector::new(&s, &fine, &coarse);
            let block = p.block_projector(&src, &tgt).expect("small cardinalities");
            let ids: Vec<u64> = (0..81u64).collect();
            let mut out = vec![0u64; ids.len()];
            block.project_into(&ids, &mut out);
            let mut key = vec![0u32; 2];
            let mut projected = vec![0u32; 2];
            for (&id, &got) in ids.iter().zip(&out) {
                src.decode_into(id, &mut key);
                p.project_into(&key, &mut projected);
                assert_eq!(got, tgt.encode(&projected), "{coarse} id {id}");
            }
        }
    }

    #[test]
    fn collect_exceptions_screens_with_the_policy() {
        let cuboid = CuboidSpec::new(vec![1, 1]);
        let mut t = CuboidTable::default();
        t.insert(CellKey::new(vec![0, 0]), isb(0.9));
        t.insert(CellKey::new(vec![1, 1]), isb(0.1));
        let exc = collect_exceptions(&ExceptionPolicy::slope_threshold(0.5), &cuboid, &t);
        assert_eq!(exc.len(), 1);
        assert!(exc.contains_key(&CellKey::new(vec![0, 0])));
    }
}
