//! Cuboid tables: hash maps from cell keys to measures, plus the shared
//! group-by-projection aggregation primitive both algorithms use.

use crate::measure::merge_sibling;
use crate::Result;
use regcube_olap::cell::{project_key, CellKey};
use regcube_olap::fxhash::FxHashMap;
use regcube_olap::{CubeSchema, CuboidSpec};
use regcube_regress::Isb;

/// The cell store of one cuboid.
pub type CuboidTable = FxHashMap<CellKey, Isb>;

/// A predicate over projected target-cell coordinates, deciding which
/// cells an aggregation materializes (Algorithm 2's drilling filter).
pub type CellFilter<'a> = &'a dyn Fn(&[u32]) -> bool;

/// Approximate retained bytes of a table (keys + measures + map overhead),
/// used by the analytical memory accounting in [`crate::stats`].
pub fn table_bytes(table: &CuboidTable, num_dims: usize) -> usize {
    // CellKey: boxed slice header + ids; Isb: 4 scalars; ~1.4x map slack.
    let per_entry = std::mem::size_of::<CellKey>()
        + num_dims * std::mem::size_of::<u32>()
        + std::mem::size_of::<Isb>();
    (table.len() * per_entry * 14) / 10
}

/// Aggregates `target` from a (descendant) `source` table by projecting
/// every source cell key to the target cuboid and merging collisions under
/// Theorem 3.2. `filter` decides which *target* cells to materialize —
/// `None` computes every cell (Algorithm 1), `Some(pred)` computes only
/// qualifying cells (Algorithm 2's drilling).
///
/// Returns the new table and the number of *source rows* folded (the work
/// measure reported in run statistics).
///
/// # Errors
/// Propagates measure merge failures (interval mismatches — impossible
/// for tables built from one validated tuple window).
pub fn aggregate_from(
    schema: &CubeSchema,
    source_cuboid: &CuboidSpec,
    source: &CuboidTable,
    target_cuboid: &CuboidSpec,
    filter: Option<CellFilter<'_>>,
) -> Result<(CuboidTable, u64)> {
    let mut out = CuboidTable::default();
    let mut rows: u64 = 0;
    for (key, isb) in source {
        let projected = project_key(schema, source_cuboid, key.ids(), target_cuboid);
        if let Some(pred) = filter {
            if !pred(&projected) {
                continue;
            }
        }
        rows += 1;
        match out.entry(CellKey::new(projected)) {
            std::collections::hash_map::Entry::Occupied(mut e) => {
                merge_sibling(e.get_mut(), isb)?;
            }
            std::collections::hash_map::Entry::Vacant(v) => {
                v.insert(*isb);
            }
        }
    }
    Ok((out, rows))
}

#[cfg(test)]
mod tests {
    use super::*;
    use regcube_regress::TimeSeries;

    fn isb(slope: f64) -> Isb {
        let z = TimeSeries::from_fn(0, 9, |t| slope * t as f64).unwrap();
        Isb::fit(&z).unwrap()
    }

    fn schema() -> CubeSchema {
        CubeSchema::synthetic(2, 2, 3).unwrap()
    }

    #[test]
    fn aggregation_groups_by_ancestor() {
        let s = schema();
        let fine = CuboidSpec::new(vec![2, 2]);
        let coarse = CuboidSpec::new(vec![1, 0]);
        let mut src = CuboidTable::default();
        // Members 0 and 1 at L2 share L1 parent 0 (fanout 3); 3 has parent 1.
        src.insert(CellKey::new(vec![0, 5]), isb(0.1));
        src.insert(CellKey::new(vec![1, 7]), isb(0.2));
        src.insert(CellKey::new(vec![3, 5]), isb(0.4));

        let (out, rows) = aggregate_from(&s, &fine, &src, &coarse, None).unwrap();
        assert_eq!(rows, 3);
        assert_eq!(out.len(), 2);
        let a = out.get(&CellKey::new(vec![0, 0])).unwrap();
        assert!((a.slope() - 0.3).abs() < 1e-12, "0.1 + 0.2 grouped");
        let b = out.get(&CellKey::new(vec![1, 0])).unwrap();
        assert!((b.slope() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn identity_projection_copies() {
        let s = schema();
        let c = CuboidSpec::new(vec![2, 2]);
        let mut src = CuboidTable::default();
        src.insert(CellKey::new(vec![4, 4]), isb(-0.5));
        let (out, _) = aggregate_from(&s, &c, &src, &c, None).unwrap();
        assert_eq!(out.len(), 1);
        assert!((out[&CellKey::new(vec![4, 4])].slope() + 0.5).abs() < 1e-12);
    }

    #[test]
    fn filter_restricts_materialized_cells() {
        let s = schema();
        let fine = CuboidSpec::new(vec![2, 2]);
        let coarse = CuboidSpec::new(vec![1, 0]);
        let mut src = CuboidTable::default();
        src.insert(CellKey::new(vec![0, 5]), isb(0.1));
        src.insert(CellKey::new(vec![3, 5]), isb(0.4));

        let keep = |ids: &[u32]| ids[0] == 1;
        let (out, rows) = aggregate_from(&s, &fine, &src, &coarse, Some(&keep)).unwrap();
        assert_eq!(rows, 1, "filtered source rows are not folded");
        assert_eq!(out.len(), 1);
        assert!(out.contains_key(&CellKey::new(vec![1, 0])));
    }

    #[test]
    fn byte_accounting_scales_with_entries() {
        let mut t = CuboidTable::default();
        assert_eq!(table_bytes(&t, 3), 0);
        t.insert(CellKey::new(vec![0, 0, 0]), isb(0.0));
        let one = table_bytes(&t, 3);
        t.insert(CellKey::new(vec![1, 1, 1]), isb(0.0));
        assert_eq!(table_bytes(&t, 3), 2 * one);
    }
}
