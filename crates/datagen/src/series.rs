//! Synthetic time-series models.
//!
//! The paper's streams are low-level measurements with trends to discover
//! (power usage per user/street/minute). These models generate them:
//! mostly quiet series plus a controllable share of strong trends, which
//! is what gives the exception-threshold sweeps of Figure 8 their range.

use rand::rngs::StdRng;
use rand::Rng;
use regcube_regress::TimeSeries;

/// A generative model for one stream's time series.
#[derive(Debug, Clone, PartialEq)]
pub enum SeriesModel {
    /// `base + slope·t + U(-noise, noise)` — the workhorse.
    LinearTrend {
        /// Intercept at `t = 0`.
        base: f64,
        /// Trend slope per tick.
        slope: f64,
        /// Uniform noise amplitude.
        noise: f64,
    },
    /// A random walk with step standard-deviation-ish amplitude `sigma`
    /// (uniform steps; heavy machinery is unnecessary here).
    RandomWalk {
        /// Starting value.
        start: f64,
        /// Maximum per-tick step magnitude.
        sigma: f64,
    },
    /// `base + amp·sin(2πt/period) + U(-noise, noise)` — daily/weekly
    /// periodicity.
    Seasonal {
        /// Mean level.
        base: f64,
        /// Oscillation amplitude.
        amp: f64,
        /// Period in ticks.
        period: f64,
        /// Uniform noise amplitude.
        noise: f64,
    },
    /// A quiet series with one sudden level shift at a fraction of the
    /// window — the "dramatic change" Example 1 wants alerts for.
    LevelShift {
        /// Level before the shift.
        before: f64,
        /// Level after the shift.
        after: f64,
        /// Shift position as a fraction of the window (0..1).
        at_frac: f64,
        /// Uniform noise amplitude.
        noise: f64,
    },
}

impl SeriesModel {
    /// Samples a series over `[start, start + len - 1]`.
    ///
    /// # Panics
    /// Panics when `len == 0` (callers validate window widths).
    pub fn sample(&self, rng: &mut StdRng, start: i64, len: usize) -> TimeSeries {
        assert!(len > 0, "series length must be positive");
        let values: Vec<f64> = match self {
            SeriesModel::LinearTrend { base, slope, noise } => (0..len)
                .map(|i| {
                    let t = start + i as i64;
                    base + slope * t as f64 + sym_noise(rng, *noise)
                })
                .collect(),
            SeriesModel::RandomWalk { start: s0, sigma } => {
                let mut v = *s0;
                (0..len)
                    .map(|_| {
                        v += sym_noise(rng, *sigma);
                        v
                    })
                    .collect()
            }
            SeriesModel::Seasonal {
                base,
                amp,
                period,
                noise,
            } => (0..len)
                .map(|i| {
                    let t = (start + i as i64) as f64;
                    base + amp * (std::f64::consts::TAU * t / period).sin() + sym_noise(rng, *noise)
                })
                .collect(),
            SeriesModel::LevelShift {
                before,
                after,
                at_frac,
                noise,
            } => {
                let cut = ((len as f64) * at_frac.clamp(0.0, 1.0)) as usize;
                (0..len)
                    .map(|i| {
                        let level = if i < cut { *before } else { *after };
                        level + sym_noise(rng, *noise)
                    })
                    .collect()
            }
        };
        TimeSeries::new(start, values).expect("len > 0")
    }
}

fn sym_noise(rng: &mut StdRng, amp: f64) -> f64 {
    if amp <= 0.0 {
        0.0
    } else {
        rng.random_range(-amp..amp)
    }
}

/// The tuple-population mixture: which share of streams trend how hard.
///
/// `hot_fraction` of streams get slopes drawn from `hot_slope` magnitude,
/// the rest from `quiet_slope`; both mix in noise. The defaults make a
/// 1% exception rate reachable at moderate thresholds while 100% needs
/// threshold ~0 — the range Figure 8 sweeps.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrendMixture {
    /// Fraction of streams with strong trends (0..1).
    pub hot_fraction: f64,
    /// Maximum |slope| of hot streams.
    pub hot_slope: f64,
    /// Maximum |slope| of quiet streams.
    pub quiet_slope: f64,
    /// Noise amplitude for every stream.
    pub noise: f64,
    /// Base value range (uniform in `0..base_range`).
    pub base_range: f64,
}

impl Default for TrendMixture {
    fn default() -> Self {
        TrendMixture {
            hot_fraction: 0.05,
            hot_slope: 2.0,
            quiet_slope: 0.05,
            noise: 0.05,
            base_range: 10.0,
        }
    }
}

impl TrendMixture {
    /// Draws one stream's model.
    pub fn draw(&self, rng: &mut StdRng) -> SeriesModel {
        let hot = rng.random_bool(self.hot_fraction.clamp(0.0, 1.0));
        let max = if hot {
            self.hot_slope
        } else {
            self.quiet_slope
        };
        let slope = rng.random_range(-max..max);
        SeriesModel::LinearTrend {
            base: rng.random_range(0.0..self.base_range.max(f64::MIN_POSITIVE)),
            slope,
            noise: self.noise,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use regcube_regress::LinearFit;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn linear_trend_recovers_slope() {
        let m = SeriesModel::LinearTrend {
            base: 1.0,
            slope: 0.5,
            noise: 0.0,
        };
        let z = m.sample(&mut rng(), 10, 20);
        assert_eq!(z.interval(), (10, 29));
        let fit = LinearFit::fit(&z);
        assert!((fit.slope - 0.5).abs() < 1e-12);
        assert!((fit.base - 1.0).abs() < 1e-12);
    }

    #[test]
    fn noise_is_bounded() {
        let m = SeriesModel::LinearTrend {
            base: 0.0,
            slope: 0.0,
            noise: 0.25,
        };
        let z = m.sample(&mut rng(), 0, 100);
        assert!(z.values().iter().all(|v| v.abs() < 0.25));
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let m = SeriesModel::RandomWalk {
            start: 5.0,
            sigma: 1.0,
        };
        let a = m.sample(&mut rng(), 0, 50);
        let b = m.sample(&mut rng(), 0, 50);
        assert_eq!(a, b);
    }

    #[test]
    fn seasonal_oscillates_around_base() {
        let m = SeriesModel::Seasonal {
            base: 10.0,
            amp: 2.0,
            period: 8.0,
            noise: 0.0,
        };
        let z = m.sample(&mut rng(), 0, 64);
        assert!((z.mean() - 10.0).abs() < 0.2);
        assert!(z.max() <= 12.0 + 1e-9);
        assert!(z.min() >= 8.0 - 1e-9);
    }

    #[test]
    fn level_shift_changes_the_mean() {
        let m = SeriesModel::LevelShift {
            before: 0.0,
            after: 10.0,
            at_frac: 0.5,
            noise: 0.0,
        };
        let z = m.sample(&mut rng(), 0, 20);
        assert_eq!(z.value_at(0), Some(0.0));
        assert_eq!(z.value_at(19), Some(10.0));
        let fit = LinearFit::fit(&z);
        assert!(fit.slope > 0.2, "a shift reads as a strong positive trend");
    }

    #[test]
    fn mixture_produces_hot_and_quiet_streams() {
        let mix = TrendMixture {
            hot_fraction: 0.3,
            ..TrendMixture::default()
        };
        let mut r = rng();
        let mut hot = 0;
        let n = 2000;
        for _ in 0..n {
            if let SeriesModel::LinearTrend { slope, .. } = mix.draw(&mut r) {
                if slope.abs() > mix.quiet_slope {
                    hot += 1;
                }
            }
        }
        let frac = hot as f64 / n as f64;
        assert!((frac - 0.3).abs() < 0.05, "hot fraction {frac}");
    }
}
