//! Dataset generation: schema + m-layer tuples.

use crate::error::DatagenError;
use crate::series::TrendMixture;
use crate::spec::DatasetSpec;
use crate::Result;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use regcube_olap::{CubeSchema, CuboidSpec};
use regcube_regress::{Isb, TimeSeries};

/// One generated m-layer stream: member ids at the m-layer plus its
/// fitted ISB (and optionally the raw series for ingestion tests).
#[derive(Debug, Clone, PartialEq)]
pub struct GenTuple {
    /// Member ids, one per dimension, at the m-layer levels.
    pub ids: Vec<u32>,
    /// LSE fit of the stream over the analysis window.
    pub isb: Isb,
}

/// A complete synthetic dataset: schema, layer cuboids and tuples.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// The generating specification.
    pub spec: DatasetSpec,
    /// Schema with one balanced hierarchy per dimension.
    pub schema: CubeSchema,
    /// The o-layer cuboid (level 1 on every dimension).
    pub o_layer: CuboidSpec,
    /// The m-layer cuboid (level `L` on every dimension).
    pub m_layer: CuboidSpec,
    /// The merged m-layer streams.
    pub tuples: Vec<GenTuple>,
}

impl Dataset {
    /// Generates the dataset for `spec` with the default trend mixture.
    ///
    /// # Errors
    /// [`DatagenError`] for invalid shapes (propagated from the schema
    /// substrate).
    pub fn generate(spec: DatasetSpec) -> Result<Self> {
        Dataset::generate_with(spec, TrendMixture::default())
    }

    /// Generates the dataset with an explicit trend mixture.
    ///
    /// # Errors
    /// [`DatagenError`] for invalid shapes.
    pub fn generate_with(spec: DatasetSpec, mixture: TrendMixture) -> Result<Self> {
        let schema = CubeSchema::synthetic(spec.dims, spec.levels, spec.fanout).map_err(|e| {
            DatagenError::Substrate {
                detail: e.to_string(),
            }
        })?;
        let m_layer = CuboidSpec::new(vec![spec.m_level(); spec.dims]);
        let o_layer = CuboidSpec::new(vec![spec.o_level(); spec.dims]);
        let card =
            spec.fanout
                .checked_pow(u32::from(spec.levels))
                .ok_or(DatagenError::BadParameters {
                    detail: "m-layer cardinality overflow".into(),
                })?;

        let mut rng = StdRng::seed_from_u64(spec.seed);
        let mut tuples = Vec::with_capacity(spec.tuples);
        let mut seen = regcube_olap::fxhash::FxHashMap::default();
        for _ in 0..spec.tuples {
            let ids: Vec<u32> = (0..spec.dims).map(|_| rng.random_range(0..card)).collect();
            let model = mixture.draw(&mut rng);
            let series = model.sample(&mut rng, 0, spec.series_len);
            let isb = Isb::fit(&series).map_err(|e| DatagenError::Substrate {
                detail: e.to_string(),
            })?;
            // The generator may hit the same m-cell twice ("merged"
            // streams); fold duplicates here so `tuples.len()` equals the
            // number of *distinct* m-layer streams, as the paper counts.
            match seen.entry(ids.clone()) {
                std::collections::hash_map::Entry::Occupied(e) => {
                    let idx: usize = *e.get();
                    let t: &mut GenTuple = &mut tuples[idx];
                    t.isb =
                        regcube_regress::aggregate::merge_standard(&[t.isb, isb]).map_err(|e| {
                            DatagenError::Substrate {
                                detail: e.to_string(),
                            }
                        })?;
                }
                std::collections::hash_map::Entry::Vacant(v) => {
                    v.insert(tuples.len());
                    tuples.push(GenTuple { ids, isb });
                }
            }
        }
        Ok(Dataset {
            spec,
            schema,
            o_layer,
            m_layer,
            tuples,
        })
    }

    /// A truncated copy with only the first `n` tuples — the paper's
    /// Figure 9 takes "appropriate subsets of the same 100K data set".
    pub fn subset(&self, n: usize) -> Dataset {
        Dataset {
            spec: self.spec,
            schema: self.schema.clone(),
            o_layer: self.o_layer.clone(),
            m_layer: self.m_layer.clone(),
            tuples: self.tuples[..n.min(self.tuples.len())].to_vec(),
        }
    }

    /// The common analysis window of all tuples.
    pub fn window(&self) -> (i64, i64) {
        (0, self.spec.series_len as i64 - 1)
    }
}

/// Generates raw sub-m-layer records for ingestion tests: each m-layer
/// tuple is split into `children` primitive streams (one hierarchy level
/// below on dimension 0) whose sum reproduces the tuple's series shape.
///
/// Returns `(primitive_layer, records)` where each record is
/// `(primitive_ids, tick, value)`.
pub fn primitive_records(
    dataset: &Dataset,
    rng_seed: u64,
) -> (CuboidSpec, Vec<(Vec<u32>, i64, f64)>) {
    let spec = dataset.spec;
    let fanout = spec.fanout;
    let mut primitive_levels = vec![spec.m_level(); spec.dims];
    // One level finer on dimension 0 when the hierarchy allows it.
    let deepen = dataset.schema.dims()[0].depth() > spec.m_level();
    if deepen {
        primitive_levels[0] += 1;
    }
    let primitive = CuboidSpec::new(primitive_levels);
    let mut rng = StdRng::seed_from_u64(rng_seed);
    let mut records = Vec::new();
    let (wb, we) = dataset.window();
    for tuple in &dataset.tuples {
        let children = if deepen { fanout.min(3) } else { 1 };
        for c in 0..children {
            let mut ids = tuple.ids.clone();
            if deepen {
                ids[0] = tuple.ids[0] * fanout + c;
            }
            let share = 1.0 / children as f64;
            for t in wb..=we {
                let v = tuple.isb.predict(t) * share + rng.random_range(-0.01..0.01);
                records.push((ids.clone(), t, v));
            }
        }
    }
    (primitive, records)
}

/// Reconstructs per-tuple time series from the ISBs for callers that need
/// series (the fitted line re-sampled; exact for the regression measures,
/// which is all the cube consumes).
pub fn resampled_series(tuple: &GenTuple) -> TimeSeries {
    let (b, e) = tuple.isb.interval();
    TimeSeries::from_fn(b, e, |t| tuple.isb.predict(t)).expect("non-empty window")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_spec() -> DatasetSpec {
        DatasetSpec::new(2, 2, 3, 200).unwrap().with_seed(7)
    }

    #[test]
    fn generation_is_deterministic() {
        let a = Dataset::generate(small_spec()).unwrap();
        let b = Dataset::generate(small_spec()).unwrap();
        assert_eq!(a.tuples, b.tuples);
        let c = Dataset::generate(small_spec().with_seed(8)).unwrap();
        assert_ne!(a.tuples, c.tuples);
    }

    #[test]
    fn shapes_follow_the_spec() {
        let d = Dataset::generate(small_spec()).unwrap();
        assert_eq!(d.schema.num_dims(), 2);
        assert_eq!(d.m_layer.levels(), &[2, 2]);
        assert_eq!(d.o_layer.levels(), &[1, 1]);
        // 200 draws into 9^2 = 81 cells: heavy merging, E[distinct] ≈ 74.
        assert!(d.tuples.len() <= 81, "duplicates are merged");
        assert!(d.tuples.len() > 50, "most cells get hit at least once");
        let card = 9;
        for t in &d.tuples {
            assert_eq!(t.ids.len(), 2);
            assert!(t.ids.iter().all(|&id| id < card));
            assert_eq!(t.isb.interval(), d.window());
        }
    }

    #[test]
    fn duplicate_cells_are_merged_not_repeated() {
        // Tiny space (card 2 per dim = 4 cells) with many tuples forces
        // collisions; distinct ids must be unique.
        let spec = DatasetSpec::new(2, 1, 2, 100).unwrap();
        let d = Dataset::generate(spec).unwrap();
        let mut keys: Vec<&[u32]> = d.tuples.iter().map(|t| t.ids.as_slice()).collect();
        keys.sort();
        keys.dedup();
        assert_eq!(keys.len(), d.tuples.len());
        assert!(d.tuples.len() <= 4);
    }

    #[test]
    fn subsets_truncate() {
        let d = Dataset::generate(small_spec()).unwrap();
        let s = d.subset(50);
        assert_eq!(s.tuples.len(), 50);
        assert_eq!(s.tuples[..], d.tuples[..50]);
        let all = d.subset(10_000);
        assert_eq!(all.tuples.len(), d.tuples.len());
    }

    #[test]
    fn primitive_records_roll_up_to_the_tuples() {
        // depth == m_level here, so records stay at the m-layer (share=1).
        let d = Dataset::generate(DatasetSpec::new(2, 2, 3, 20).unwrap()).unwrap();
        let (layer, records) = primitive_records(&d, 1);
        assert_eq!(layer.levels(), &[2, 2]);
        let ticks = d.spec.series_len;
        assert_eq!(records.len(), d.tuples.len() * ticks);
        // Sum of record values per tuple ≈ sum of the fitted line.
        let t0 = &d.tuples[0];
        let total: f64 = records
            .iter()
            .filter(|(ids, _, _)| ids == &t0.ids)
            .map(|(_, _, v)| v)
            .sum();
        assert!((total - t0.isb.sum_z()).abs() < 0.01 * ticks as f64 + 0.5);
    }

    #[test]
    fn resampled_series_match_the_fit() {
        let d = Dataset::generate(small_spec()).unwrap();
        let t = &d.tuples[0];
        let z = resampled_series(t);
        let refit = Isb::fit(&z).unwrap();
        assert!(refit.approx_eq(&t.isb, 1e-9));
    }
}
