//! Error type for the data generator.

use std::fmt;

/// Errors produced by spec parsing and dataset generation.
#[derive(Debug, Clone, PartialEq)]
pub enum DatagenError {
    /// A dataset name did not follow the `D?L?C?T?` convention.
    BadSpecString {
        /// The offending input.
        input: String,
        /// What went wrong.
        detail: String,
    },
    /// Spec parameters are out of range (zero dimensions, overflow, …).
    BadParameters {
        /// Description of the violation.
        detail: String,
    },
    /// An underlying substrate failed (hierarchy construction, fitting).
    Substrate {
        /// Description of the failure.
        detail: String,
    },
}

impl fmt::Display for DatagenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DatagenError::BadSpecString { input, detail } => {
                write!(f, "cannot parse dataset spec {input:?}: {detail}")
            }
            DatagenError::BadParameters { detail } => {
                write!(f, "bad generator parameters: {detail}")
            }
            DatagenError::Substrate { detail } => write!(f, "substrate failure: {detail}"),
        }
    }
}

impl std::error::Error for DatagenError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays() {
        for e in [
            DatagenError::BadSpecString {
                input: "X".into(),
                detail: "no D".into(),
            },
            DatagenError::BadParameters { detail: "d".into() },
            DatagenError::Substrate { detail: "s".into() },
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
