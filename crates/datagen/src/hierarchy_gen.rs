//! Random ragged hierarchies — real dimensions (cities, product
//! taxonomies) are not perfectly balanced; this module generates
//! reproducible ragged concept hierarchies for robustness testing of the
//! cubing algorithms.

use crate::error::DatagenError;
use crate::Result;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use regcube_olap::{CubeSchema, Dimension, Hierarchy};

/// Generates a ragged hierarchy of the given depth: level `l + 1` has
/// between `1x` and `2x·fanout` children per level-`l` member (at least
/// one each, so no member is childless).
///
/// # Errors
/// [`DatagenError::BadParameters`] for zero depth/fanout, or if a level
/// would exceed `u32` capacity.
pub fn ragged_hierarchy(rng: &mut StdRng, depth: u8, fanout: u32) -> Result<Hierarchy> {
    if depth == 0 || fanout == 0 {
        return Err(DatagenError::BadParameters {
            detail: format!("ragged hierarchy needs depth/fanout > 0, got {depth}/{fanout}"),
        });
    }
    let mut parents: Vec<Vec<u32>> = Vec::with_capacity(depth as usize);
    let mut prev_card: u64 = 1;
    for _ in 0..depth {
        let mut level: Vec<u32> = Vec::new();
        for parent in 0..prev_card {
            let children = rng.random_range(1..=(2 * fanout).max(2));
            for _ in 0..children {
                level.push(parent as u32);
            }
        }
        if level.len() as u64 > u32::MAX as u64 {
            return Err(DatagenError::BadParameters {
                detail: "ragged hierarchy cardinality overflow".into(),
            });
        }
        prev_card = level.len() as u64;
        parents.push(level);
    }
    Hierarchy::from_parents(parents).map_err(|e| DatagenError::Substrate {
        detail: e.to_string(),
    })
}

/// Generates a schema of `dims` ragged dimensions, reproducible from the
/// seed.
///
/// # Errors
/// Propagates hierarchy/schema construction failures.
pub fn ragged_schema(seed: u64, dims: usize, depth: u8, fanout: u32) -> Result<CubeSchema> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut dimensions = Vec::with_capacity(dims);
    for i in 0..dims {
        let h = ragged_hierarchy(&mut rng, depth, fanout)?;
        dimensions.push(Dimension::new(format!("R{i}"), h));
    }
    CubeSchema::new(dimensions).map_err(|e| DatagenError::Substrate {
        detail: e.to_string(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ragged_hierarchies_are_structurally_valid() {
        let mut rng = StdRng::seed_from_u64(9);
        let h = ragged_hierarchy(&mut rng, 3, 4).unwrap();
        assert_eq!(h.depth(), 3);
        // Every member of every level has a valid parent; every parent
        // has at least one child.
        for level in 1..=3u8 {
            for m in 0..h.cardinality(level) {
                assert!(h.parent(level, m) < h.cardinality(level - 1));
            }
        }
        for level in 0..3u8 {
            for m in 0..h.cardinality(level) {
                assert!(
                    !h.children(0, level, m).unwrap().is_empty(),
                    "member {m} at level {level} is childless"
                );
            }
        }
    }

    #[test]
    fn generation_is_reproducible() {
        let a = ragged_schema(7, 3, 2, 3).unwrap();
        let b = ragged_schema(7, 3, 2, 3).unwrap();
        assert_eq!(a, b);
        let c = ragged_schema(8, 3, 2, 3).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn degenerate_parameters_are_rejected() {
        let mut rng = StdRng::seed_from_u64(0);
        assert!(ragged_hierarchy(&mut rng, 0, 3).is_err());
        assert!(ragged_hierarchy(&mut rng, 3, 0).is_err());
    }

    #[test]
    fn cardinalities_grow_with_depth() {
        let mut rng = StdRng::seed_from_u64(1);
        let h = ragged_hierarchy(&mut rng, 3, 5).unwrap();
        assert!(h.cardinality(1) >= 1);
        assert!(h.cardinality(2) >= h.cardinality(1));
        assert!(h.cardinality(3) >= h.cardinality(2));
        assert_eq!(
            h.total_members(),
            (1..=3).map(|l| u64::from(h.cardinality(l))).sum::<u64>()
        );
    }
}
