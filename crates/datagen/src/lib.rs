//! Synthetic hierarchical stream generator for `regcube` — the stand-in
//! for the paper's data generator ("similar in spirit to the IBM data
//! generator designed for testing data mining algorithms").
//!
//! Dataset names follow the paper's convention: **`D3L3C10T100K`** means
//! 3 dimensions, 3 levels per dimension *from the m-layer to the o-layer
//! inclusive*, node fan-out (cardinality) 10, and 100K merged m-layer
//! tuples ([`spec::DatasetSpec`] parses and prints the notation).
//!
//! Each generated tuple is one *merged m-layer data stream*: random member
//! coordinates at the m-layer plus a synthetic time series from a
//! configurable trend mixture ([`series::SeriesModel`]) — mostly quiet
//! streams with a tunable fraction of strongly trending ones, so exception
//! thresholds at different quantiles produce the exception rates the
//! paper's Figure 8 sweeps ([`calibrate`]).

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod calibrate;
pub mod error;
pub mod generate;
pub mod hierarchy_gen;
pub mod series;
pub mod spec;

pub use error::DatagenError;
pub use generate::{Dataset, GenTuple};
pub use hierarchy_gen::{ragged_hierarchy, ragged_schema};
pub use series::SeriesModel;
pub use spec::DatasetSpec;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, DatagenError>;
