//! Dataset specifications in the paper's `DxLxCxTx` notation.

use crate::error::DatagenError;
use crate::Result;
use std::fmt;
use std::str::FromStr;

/// A synthetic dataset shape: `D3L3C10T100K` = 3 dimensions, 3 levels per
/// dimension from the m-layer to the o-layer inclusive, fan-out 10,
/// 100,000 merged m-layer tuples.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DatasetSpec {
    /// Number of standard dimensions (`D`).
    pub dims: usize,
    /// Levels per dimension from m-layer to o-layer inclusive (`L`).
    pub levels: u8,
    /// Fan-out / per-node cardinality (`C`).
    pub fanout: u32,
    /// Number of merged m-layer tuples (`T`).
    pub tuples: usize,
    /// Ticks per tuple time series (the analysis window width).
    pub series_len: usize,
    /// RNG seed for reproducibility.
    pub seed: u64,
}

impl DatasetSpec {
    /// Default window width used when the notation does not carry one.
    pub const DEFAULT_SERIES_LEN: usize = 20;

    /// Creates a spec, validating all parameters.
    ///
    /// # Errors
    /// [`DatagenError::BadParameters`] for zero-sized shapes or level
    /// counts beyond `u8`.
    pub fn new(dims: usize, levels: u8, fanout: u32, tuples: usize) -> Result<Self> {
        if dims == 0 || levels == 0 || fanout == 0 || tuples == 0 {
            return Err(DatagenError::BadParameters {
                detail: format!("D{dims}L{levels}C{fanout}T{tuples} has a zero parameter"),
            });
        }
        Ok(DatasetSpec {
            dims,
            levels,
            fanout,
            tuples,
            series_len: Self::DEFAULT_SERIES_LEN,
            seed: 0x5eed_cafe,
        })
    }

    /// Sets the series window width.
    #[must_use]
    pub fn with_series_len(mut self, len: usize) -> Self {
        self.series_len = len.max(2);
        self
    }

    /// Sets the RNG seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The paper's Figure 8 dataset: `D3L3C10T100K`.
    pub fn d3l3c10t100k() -> Self {
        DatasetSpec::new(3, 3, 10, 100_000).expect("static spec")
    }

    /// The m-layer hierarchy level of every dimension: with `L` levels
    /// from m to o inclusive and the o-layer at level 1, the m-layer sits
    /// at level `L`.
    pub fn m_level(&self) -> u8 {
        self.levels
    }

    /// The o-layer hierarchy level of every dimension (level 1, so that
    /// m-to-o spans exactly `L` levels inclusive).
    pub fn o_level(&self) -> u8 {
        1
    }

    /// Number of cuboids between the layers: `L^D`.
    pub fn lattice_cuboids(&self) -> u64 {
        (u64::from(self.levels)).pow(self.dims as u32)
    }
}

impl fmt::Display for DatasetSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let t = self.tuples;
        if t % 1_000_000 == 0 {
            write!(
                f,
                "D{}L{}C{}T{}M",
                self.dims,
                self.levels,
                self.fanout,
                t / 1_000_000
            )
        } else if t % 1000 == 0 {
            write!(
                f,
                "D{}L{}C{}T{}K",
                self.dims,
                self.levels,
                self.fanout,
                t / 1000
            )
        } else {
            write!(f, "D{}L{}C{}T{}", self.dims, self.levels, self.fanout, t)
        }
    }
}

impl FromStr for DatasetSpec {
    type Err = DatagenError;

    fn from_str(s: &str) -> Result<Self> {
        let bad = |detail: &str| DatagenError::BadSpecString {
            input: s.to_string(),
            detail: detail.to_string(),
        };
        let upper = s.to_ascii_uppercase();
        let mut fields: [Option<u64>; 4] = [None; 4];
        let order = ['D', 'L', 'C', 'T'];
        let bytes = upper.as_bytes();
        let mut i = 0;
        let mut field_idx = 0;
        while i < bytes.len() {
            let c = bytes[i] as char;
            if field_idx >= 4 || c != order[field_idx] {
                return Err(bad(&format!(
                    "expected '{}'",
                    order.get(field_idx).unwrap_or(&'?')
                )));
            }
            i += 1;
            let start = i;
            while i < bytes.len() && bytes[i].is_ascii_digit() {
                i += 1;
            }
            if start == i {
                return Err(bad(&format!("missing number after '{c}'")));
            }
            let mut value: u64 = upper[start..i]
                .parse()
                .map_err(|_| bad("number overflow"))?;
            // Optional K/M multiplier (only meaningful on T, accepted
            // anywhere the paper's notation would use it).
            if i < bytes.len() && (bytes[i] as char == 'K' || bytes[i] as char == 'M') {
                value *= if bytes[i] as char == 'K' {
                    1_000
                } else {
                    1_000_000
                };
                i += 1;
            }
            fields[field_idx] = Some(value);
            field_idx += 1;
        }
        let [Some(d), Some(l), Some(c), Some(t)] = fields else {
            return Err(bad("expected all of D, L, C, T"));
        };
        if l > u8::MAX as u64 {
            return Err(bad("level count exceeds 255"));
        }
        DatasetSpec::new(d as usize, l as u8, c as u32, t as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_paper_names() {
        let s: DatasetSpec = "D3L3C10T100K".parse().unwrap();
        assert_eq!(s.dims, 3);
        assert_eq!(s.levels, 3);
        assert_eq!(s.fanout, 10);
        assert_eq!(s.tuples, 100_000);
        assert_eq!(s.to_string(), "D3L3C10T100K");

        // The Figure 10 dataset family is written D2C10T10K in the paper
        // with L swept separately; our parser requires the L field.
        assert!("D2C10T10K".parse::<DatasetSpec>().is_err());
        let s2: DatasetSpec = "D2L4C10T10K".parse().unwrap();
        assert_eq!(s2.levels, 4);
        assert_eq!(s2.lattice_cuboids(), 16);
    }

    #[test]
    fn parse_rejects_malformed_names() {
        for bad in [
            "",
            "D3",
            "L3C10T5",
            "D3L3C10",
            "D3L3C10T",
            "DXL3C10T5",
            "D3L3C10T5X",
        ] {
            assert!(bad.parse::<DatasetSpec>().is_err(), "{bad}");
        }
        assert!("D0L3C10T5".parse::<DatasetSpec>().is_err());
        assert!("D3L999C10T5".parse::<DatasetSpec>().is_err());
    }

    #[test]
    fn display_round_trips() {
        for name in ["D3L3C10T100K", "D2L5C4T1M", "D1L2C3T7"] {
            let spec: DatasetSpec = name.parse().unwrap();
            assert_eq!(spec.to_string(), name);
            let again: DatasetSpec = spec.to_string().parse().unwrap();
            assert_eq!(spec, again);
        }
    }

    #[test]
    fn layer_levels_follow_the_convention() {
        let s: DatasetSpec = "D3L3C10T1K".parse().unwrap();
        assert_eq!(s.m_level(), 3);
        assert_eq!(s.o_level(), 1);
        // Levels from m to o inclusive = 3 (levels 3, 2, 1).
        assert_eq!(s.lattice_cuboids(), 27);
    }

    #[test]
    fn builders() {
        let s = DatasetSpec::d3l3c10t100k()
            .with_series_len(32)
            .with_seed(99);
        assert_eq!(s.series_len, 32);
        assert_eq!(s.seed, 99);
        let tiny = DatasetSpec::new(1, 1, 2, 1).unwrap().with_series_len(0);
        assert_eq!(tiny.series_len, 2, "window clamps to 2");
    }
}
