//! Exception-threshold calibration.
//!
//! The paper's Figure 8 sweeps "the percentage of aggregated cells that
//! belong to exception cells" from 0.1% to 100%. Given a target rate, the
//! matching slope threshold is a quantile of the cells' |slope|
//! distribution. This module provides quantiles over arbitrary score
//! collections; the bench harness feeds it the full cube's cell scores
//! (m-layer scores make a cheaper approximation for quick runs).

use crate::generate::GenTuple;

/// The threshold that makes (approximately) `rate` of the given scores
/// exceptional, i.e. the `(1 - rate)` quantile.
///
/// * `rate >= 1.0` returns `0.0` (everything exceptional).
/// * `rate <= 0.0` returns `f64::INFINITY` (nothing exceptional).
/// * An empty slice returns `f64::INFINITY`.
///
/// Scores need not be sorted; a copy is sorted internally.
pub fn threshold_for_rate(scores: &[f64], rate: f64) -> f64 {
    if scores.is_empty() || rate <= 0.0 {
        return f64::INFINITY;
    }
    if rate >= 1.0 {
        return 0.0;
    }
    let mut sorted: Vec<f64> = scores.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    // We want the smallest threshold T with |{s >= T}| / n ≈ rate:
    // the element at index ceil(n·(1-rate)), clamped.
    let n = sorted.len();
    let idx = ((n as f64) * (1.0 - rate)).ceil() as usize;
    let idx = idx.min(n - 1);
    sorted[idx]
}

/// The fraction of `scores` at or above `threshold`.
pub fn rate_at_threshold(scores: &[f64], threshold: f64) -> f64 {
    if scores.is_empty() {
        return 0.0;
    }
    let hits = scores.iter().filter(|s| **s >= threshold).count();
    hits as f64 / scores.len() as f64
}

/// Convenience: |slope| scores of a tuple set (the m-layer approximation).
pub fn m_layer_scores(tuples: &[GenTuple]) -> Vec<f64> {
    tuples.iter().map(|t| t.isb.slope().abs()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::Dataset;
    use crate::spec::DatasetSpec;

    #[test]
    fn quantile_inverts_rate() {
        let scores: Vec<f64> = (0..1000).map(|i| i as f64 / 1000.0).collect();
        for rate in [0.001, 0.01, 0.1, 0.5, 0.9] {
            let t = threshold_for_rate(&scores, rate);
            let achieved = rate_at_threshold(&scores, t);
            assert!(
                (achieved - rate).abs() <= 2.0 / 1000.0,
                "rate {rate}: threshold {t} achieves {achieved}"
            );
        }
    }

    #[test]
    fn edge_rates() {
        let scores = vec![1.0, 2.0, 3.0];
        assert_eq!(threshold_for_rate(&scores, 0.0), f64::INFINITY);
        assert_eq!(threshold_for_rate(&scores, -0.5), f64::INFINITY);
        assert_eq!(threshold_for_rate(&scores, 1.0), 0.0);
        assert_eq!(threshold_for_rate(&scores, 2.0), 0.0);
        assert_eq!(threshold_for_rate(&[], 0.5), f64::INFINITY);
        assert_eq!(rate_at_threshold(&[], 1.0), 0.0);
        assert_eq!(rate_at_threshold(&scores, 0.0), 1.0);
        assert_eq!(rate_at_threshold(&scores, 10.0), 0.0);
    }

    #[test]
    fn calibration_on_generated_data_hits_the_target() {
        let d = Dataset::generate(DatasetSpec::new(2, 2, 4, 2000).unwrap()).unwrap();
        let scores = m_layer_scores(&d.tuples);
        for rate in [0.01, 0.1, 0.5] {
            let t = threshold_for_rate(&scores, rate);
            let achieved = rate_at_threshold(&scores, t);
            assert!(
                (achieved - rate).abs() < 0.02,
                "rate {rate} achieved {achieved}"
            );
        }
    }

    #[test]
    fn unsorted_input_is_handled() {
        let scores = vec![0.9, 0.1, 0.5, 0.3, 0.7];
        let t = threshold_for_rate(&scores, 0.4);
        assert!((0.5..=0.9).contains(&t), "threshold {t}");
    }
}
