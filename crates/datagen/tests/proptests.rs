//! Property tests for the data generator: naming round-trips, structural
//! bounds of generated datasets, and calibration inverses.

use proptest::prelude::*;
use regcube_datagen::calibrate::{rate_at_threshold, threshold_for_rate};
use regcube_datagen::{Dataset, DatasetSpec};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Display -> parse is the identity on valid specs.
    #[test]
    fn spec_display_parse_round_trip(
        dims in 1usize..6,
        levels in 1u8..6,
        fanout in 1u32..20,
        tuples in 1usize..2_000_000,
    ) {
        let spec = DatasetSpec::new(dims, levels, fanout, tuples).unwrap();
        let parsed: DatasetSpec = spec.to_string().parse().unwrap();
        prop_assert_eq!(spec, parsed);
    }

    /// Generated datasets respect their spec: distinct keys, ids within
    /// the m-layer cardinality, one shared window.
    #[test]
    fn generated_datasets_respect_bounds(seed in 0u64..1_000) {
        let spec = DatasetSpec::new(2, 2, 3, 120).unwrap().with_seed(seed);
        let d = Dataset::generate(spec).unwrap();
        let card = 9u32;
        let mut keys = std::collections::BTreeSet::new();
        for t in &d.tuples {
            prop_assert_eq!(t.ids.len(), 2);
            prop_assert!(t.ids.iter().all(|&id| id < card));
            prop_assert_eq!(t.isb.interval(), d.window());
            prop_assert!(keys.insert(t.ids.clone()), "duplicate key {:?}", t.ids);
        }
        prop_assert!(!d.tuples.is_empty());
    }

    /// threshold_for_rate / rate_at_threshold are approximate inverses on
    /// arbitrary score multisets.
    #[test]
    fn calibration_inverse(
        scores in prop::collection::vec(0.0..10.0f64, 10..300),
        rate in 0.01..0.99f64,
    ) {
        let t = threshold_for_rate(&scores, rate);
        let achieved = rate_at_threshold(&scores, t);
        // Ties and discreteness allow a one-element slack... plus
        // duplicates; bound the error by the largest tie group.
        let slack = {
            let mut sorted = scores.clone();
            sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let max_ties = sorted
                .chunk_by(|a, b| a == b)
                .map(<[f64]>::len)
                .max()
                .unwrap_or(1);
            (max_ties as f64 + 1.0) / scores.len() as f64
        };
        prop_assert!(
            achieved >= rate - slack && achieved <= rate + slack,
            "rate {rate} achieved {achieved} (slack {slack})"
        );
        // Monotonicity: higher rates never raise the threshold.
        let t2 = threshold_for_rate(&scores, (rate + 0.3).min(1.0));
        prop_assert!(t2 <= t);
    }

    /// Subsets are prefixes and never exceed the parent.
    #[test]
    fn subsets_are_prefixes(n in 1usize..200) {
        let d = Dataset::generate(DatasetSpec::new(2, 1, 4, 200).unwrap()).unwrap();
        let s = d.subset(n);
        prop_assert!(s.tuples.len() <= n);
        prop_assert_eq!(&s.tuples[..], &d.tuples[..s.tuples.len()]);
    }
}
