//! The dashboard query: a compact, allocation-light digest of one
//! tenant's published snapshot — what a fleet overview polls per
//! tenant, thousands of times a second, without ever touching an
//! engine lock.

use crate::tenant::TenantId;
use regcube_stream::CubeSnapshot;

/// A digest of one tenant at one published unit boundary. Computed
/// entirely from an immutable [`CubeSnapshot`], so building one is a
/// pure read — it runs concurrently with that tenant's ingestion.
#[derive(Debug, Clone, PartialEq)]
pub struct DashboardSummary {
    /// Whose cube this summarizes.
    pub tenant: TenantId,
    /// The snapshot's publication epoch (units closed at capture).
    pub epoch: u64,
    /// The last closed unit, if any.
    pub unit: Option<i64>,
    /// Retained m-layer cells in the cube (0 before the first
    /// non-empty close).
    pub m_cells: usize,
    /// Retained o-layer cells.
    pub o_cells: usize,
    /// Retained exception cells across intermediate cuboids.
    pub exceptions: usize,
    /// Alarms raised by the last closed unit.
    pub alarms: usize,
    /// The hottest alarm of the last closed unit, as
    /// `(cell key, score)` — the headline number on a tenant tile.
    pub top_alarm: Option<(String, f64)>,
    /// Cells retained across the whole cube at capture time
    /// ([`RunStats::cells_retained`](regcube_core::RunStats)).
    pub cells_retained: u64,
    /// Beyond-lateness records dropped (and counted) by this tenant's
    /// engine ([`RunStats::late_dropped`](regcube_core::RunStats)) —
    /// nonzero means the tenant's producers lag past the allowed
    /// lateness and history is losing their records.
    pub late_dropped: u64,
    /// Late records that amended already-warehoused units
    /// ([`RunStats::late_amendments`](regcube_core::RunStats)) —
    /// stragglers that arrived within the allowed lateness and were
    /// folded into the tilt frames exactly.
    pub late_amendments: u64,
}

impl DashboardSummary {
    /// Digests one published snapshot.
    pub fn of(tenant: TenantId, snapshot: &CubeSnapshot) -> Self {
        let (m_cells, o_cells, exceptions) = match snapshot.try_cube() {
            None => (0, 0, 0),
            Some(cube) => (
                cube.m_table().len(),
                cube.o_table().len(),
                cube.iter_exceptions().count(),
            ),
        };
        let top_alarm = snapshot
            .alarms()
            .first()
            .map(|a| (a.key.to_string(), a.score));
        DashboardSummary {
            tenant,
            epoch: snapshot.epoch(),
            unit: snapshot.unit(),
            m_cells,
            o_cells,
            exceptions,
            alarms: snapshot.alarms().len(),
            top_alarm,
            cells_retained: snapshot.stats().cells_retained,
            late_dropped: snapshot.stats().late_dropped,
            late_amendments: snapshot.stats().late_amendments,
        }
    }
}
