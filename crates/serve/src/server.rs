//! The multi-tenant [`Server`]: admission control, shared worker
//! pools, and the pump that multiplexes every tenant's cube over them.

use crate::cell::SnapshotCell;
use crate::dashboard::DashboardSummary;
use crate::error::ServeError;
use crate::tenant::{Tenant, TenantId, TenantPump};
use regcube_core::alarm::SharedSink;
use regcube_core::pool::{default_threads, WorkerPool};
use regcube_core::RunStats;
use regcube_stream::{CubeSnapshot, EngineConfig, RawRecord};
use std::collections::BTreeMap;
use std::sync::{Arc, RwLock};

/// Server-wide knobs. All defaults are safe for tests and examples;
/// real deployments size `max_tenants` / `queue_capacity` to their
/// memory budget.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Admission-control cap on concurrently hosted tenants.
    pub max_tenants: usize,
    /// Bounded per-tenant ingest-queue capacity, in records; a full
    /// queue rejects with [`ServeError::Overloaded`].
    pub queue_capacity: usize,
    /// Threads of the pump (dispatch) pool.
    pub pump_threads: usize,
    /// Threads of the cubing pool shared by every tenant's sharded
    /// cubing engine.
    pub cubing_threads: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            max_tenants: 4096,
            queue_capacity: 1024,
            pump_threads: default_threads(),
            cubing_threads: default_threads(),
        }
    }
}

impl ServeConfig {
    /// Starts from the defaults.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the tenant admission cap (clamped to at least 1).
    #[must_use]
    pub fn with_max_tenants(mut self, max_tenants: usize) -> Self {
        self.max_tenants = max_tenants.max(1);
        self
    }

    /// Sets the per-tenant queue capacity (clamped to at least 1).
    #[must_use]
    pub fn with_queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity.max(1);
        self
    }

    /// Sets the pump-pool thread count (clamped to at least 1).
    #[must_use]
    pub fn with_pump_threads(mut self, threads: usize) -> Self {
        self.pump_threads = threads.max(1);
        self
    }

    /// Sets the shared cubing-pool thread count (clamped to at least 1).
    #[must_use]
    pub fn with_cubing_threads(mut self, threads: usize) -> Self {
        self.cubing_threads = threads.max(1);
        self
    }
}

/// A multi-tenant cube server.
///
/// Each tenant owns a private [`OnlineEngine`](regcube_stream::OnlineEngine)
/// plus a bounded ingest queue and a snapshot cell; all tenants share
/// two [`WorkerPool`]s — one that pumps tenants in parallel and one
/// that the tenants' sharded cubing engines fan their per-unit batches
/// over. The pools are deliberately distinct: a pump job drives
/// `close_unit`, which dispatches cubing work, and `WorkerPool::run`
/// must never be entered from a job of the same pool (nesting
/// deadlock — see `regcube_core::pool`).
///
/// Reads ([`snapshot`](Self::snapshot), or a held
/// [`TenantReader`]) never take an engine lock: they clone an `Arc`
/// out of the tenant's double-buffered cell, so dashboards keep
/// answering at full speed while ingestion and unit closes run.
pub struct Server {
    config: ServeConfig,
    pump_pool: WorkerPool,
    cubing_pool: Arc<WorkerPool>,
    tenants: RwLock<BTreeMap<TenantId, Arc<Tenant>>>,
}

impl Server {
    /// Creates a server with the given configuration.
    pub fn new(config: ServeConfig) -> Self {
        let pump_pool = WorkerPool::new(config.pump_threads);
        let cubing_pool = Arc::new(WorkerPool::new(config.cubing_threads));
        Server {
            config,
            pump_pool,
            cubing_pool,
            tenants: RwLock::new(BTreeMap::new()),
        }
    }

    /// Admits a new tenant whose cube is described by `config`. The
    /// tenant's cubing engine is rebound to the server's shared cubing
    /// pool (any pool set on `config` is replaced).
    ///
    /// # Errors
    /// [`ServeError::AdmissionDenied`] at the tenant cap,
    /// [`ServeError::DuplicateTenant`] on an id collision, and any
    /// engine-construction failure as [`ServeError::Stream`].
    pub fn create_tenant(
        &self,
        id: impl Into<TenantId>,
        config: EngineConfig,
    ) -> Result<(), ServeError> {
        let id = id.into();
        let mut tenants = self.tenants.write().expect("tenant map lock");
        if tenants.contains_key(&id) {
            return Err(ServeError::DuplicateTenant { tenant: id });
        }
        if tenants.len() >= self.config.max_tenants {
            return Err(ServeError::AdmissionDenied {
                max_tenants: self.config.max_tenants,
            });
        }
        let config = config.with_cubing_pool(Arc::clone(&self.cubing_pool));
        let tenant = Arc::new(Tenant::new(id.clone(), config, self.config.queue_capacity)?);
        tenants.insert(id, tenant);
        Ok(())
    }

    /// Writes a durable checkpoint of one tenant's engine to `path`
    /// (see [`regcube_stream::checkpoint`]). The write serializes with
    /// the tenant's pumps on its engine lock; queued-but-unpumped
    /// records are *not* in the checkpoint — call
    /// [`pump_tenant`](Self::pump_tenant) first to capture them.
    ///
    /// # Errors
    /// [`ServeError::UnknownTenant`], or the engine's typed
    /// [`StreamError::Checkpoint`](regcube_stream::StreamError) as
    /// [`ServeError::Stream`] (mid-unit strict-order engine, I/O).
    pub fn checkpoint_tenant(
        &self,
        id: &TenantId,
        path: impl AsRef<std::path::Path>,
    ) -> Result<(), ServeError> {
        self.tenant(id)?.write_checkpoint(path)
    }

    /// Admits a tenant restored from a checkpoint file written by
    /// [`checkpoint_tenant`](Self::checkpoint_tenant) (or
    /// [`OnlineEngine::write_checkpoint`](regcube_stream::OnlineEngine::write_checkpoint)).
    /// Admission control is identical to [`create_tenant`](Self::create_tenant);
    /// `config` must describe the same analysis as the checkpointed
    /// engine. The restored state is published as the tenant's first
    /// snapshot, so readers see the recovered cube immediately.
    ///
    /// # Errors
    /// [`ServeError::AdmissionDenied`] / [`ServeError::DuplicateTenant`]
    /// as for creation, and a missing, torn, corrupt or incompatible
    /// checkpoint as [`ServeError::Stream`] — in which case no tenant
    /// is admitted (restore is all-or-nothing).
    pub fn restore_tenant(
        &self,
        id: impl Into<TenantId>,
        config: EngineConfig,
        path: impl AsRef<std::path::Path>,
    ) -> Result<(), ServeError> {
        let id = id.into();
        let mut tenants = self.tenants.write().expect("tenant map lock");
        if tenants.contains_key(&id) {
            return Err(ServeError::DuplicateTenant { tenant: id });
        }
        if tenants.len() >= self.config.max_tenants {
            return Err(ServeError::AdmissionDenied {
                max_tenants: self.config.max_tenants,
            });
        }
        let config = config.with_cubing_pool(Arc::clone(&self.cubing_pool));
        let ticks_per_unit = config.ticks_per_unit as i64;
        let engine = config.restore(path)?;
        let tenant = Arc::new(Tenant::from_engine(
            id.clone(),
            ticks_per_unit,
            engine,
            self.config.queue_capacity,
        ));
        tenants.insert(id, tenant);
        Ok(())
    }

    /// Removes a tenant. In-flight readers holding its snapshots or a
    /// [`TenantReader`] keep working off their `Arc`s; the tenant just
    /// stops being servable by id.
    ///
    /// # Errors
    /// [`ServeError::UnknownTenant`] if no such tenant exists.
    pub fn drop_tenant(&self, id: &TenantId) -> Result<(), ServeError> {
        self.tenants
            .write()
            .expect("tenant map lock")
            .remove(id)
            .map(|_| ())
            .ok_or_else(|| ServeError::UnknownTenant { tenant: id.clone() })
    }

    /// Enqueues one record for a tenant. Non-blocking: a full queue is
    /// the typed [`ServeError::Overloaded`] — the record is *not*
    /// accepted and nothing previously accepted is disturbed.
    ///
    /// # Errors
    /// [`ServeError::UnknownTenant`] or [`ServeError::Overloaded`].
    pub fn ingest(&self, id: &TenantId, record: &RawRecord) -> Result<(), ServeError> {
        self.tenant(id)?.try_enqueue(record)
    }

    /// Pumps every tenant with queued records, fanning the drains out
    /// over the pump pool (one job per tenant). A tenant's stream
    /// errors are contained in its own [`TenantPump`]; a saturated or
    /// erroring tenant never stalls the others.
    pub fn pump(&self) -> Vec<TenantPump> {
        let busy: Vec<Arc<Tenant>> = {
            let tenants = self.tenants.read().expect("tenant map lock");
            tenants
                .values()
                .filter(|t| t.queued() > 0)
                .map(Arc::clone)
                .collect()
        };
        if busy.is_empty() {
            return Vec::new();
        }
        self.pump_pool.run(
            busy.into_iter()
                .map(|tenant| move || tenant.pump())
                .collect(),
        )
    }

    /// Pumps one tenant inline on the calling thread.
    ///
    /// # Errors
    /// [`ServeError::UnknownTenant`].
    pub fn pump_tenant(&self, id: &TenantId) -> Result<TenantPump, ServeError> {
        Ok(self.tenant(id)?.pump())
    }

    /// Drains a tenant's queue, closes its open unit (empty units
    /// close too — the paper's clock tick), and publishes the new
    /// boundary snapshot.
    ///
    /// # Errors
    /// [`ServeError::UnknownTenant`].
    pub fn close_unit(&self, id: &TenantId) -> Result<TenantPump, ServeError> {
        Ok(self.tenant(id)?.close_unit())
    }

    /// Drains a tenant's queue and flushes its engine (reorder buffer
    /// included), publishing the final boundary.
    ///
    /// # Errors
    /// [`ServeError::UnknownTenant`].
    pub fn flush(&self, id: &TenantId) -> Result<TenantPump, ServeError> {
        Ok(self.tenant(id)?.flush())
    }

    /// The tenant's most recently published boundary snapshot — the
    /// lock-free read path.
    ///
    /// # Errors
    /// [`ServeError::UnknownTenant`].
    pub fn snapshot(&self, id: &TenantId) -> Result<Arc<CubeSnapshot>, ServeError> {
        Ok(self.tenant(id)?.snapshot())
    }

    /// Digests one tenant's latest published snapshot into a
    /// [`DashboardSummary`] — a pure read off the snapshot cell.
    ///
    /// # Errors
    /// [`ServeError::UnknownTenant`].
    pub fn summary(&self, id: &TenantId) -> Result<DashboardSummary, ServeError> {
        let tenant = self.tenant(id)?;
        Ok(DashboardSummary::of(id.clone(), &tenant.snapshot()))
    }

    /// Digests every tenant, sorted by id — the fleet overview query.
    pub fn summaries(&self) -> Vec<DashboardSummary> {
        let tenants: Vec<Arc<Tenant>> = {
            let map = self.tenants.read().expect("tenant map lock");
            map.values().map(Arc::clone).collect()
        };
        tenants
            .iter()
            .map(|t| DashboardSummary::of(t.id().clone(), &t.snapshot()))
            .collect()
    }

    /// A standalone read handle on one tenant: cheap to clone, usable
    /// from any thread, bypasses the tenant map on every read (no
    /// shared lock at all on the hot read path).
    ///
    /// # Errors
    /// [`ServeError::UnknownTenant`].
    pub fn reader(&self, id: &TenantId) -> Result<TenantReader, ServeError> {
        Ok(TenantReader {
            tenant: self.tenant(id)?,
        })
    }

    /// Per-tenant statistics: the engine's counters with the serving
    /// counters ([`RunStats::snapshot_reads`],
    /// [`RunStats::overload_rejections`]) filled in.
    ///
    /// # Errors
    /// [`ServeError::UnknownTenant`].
    pub fn tenant_stats(&self, id: &TenantId) -> Result<RunStats, ServeError> {
        Ok(self.tenant(id)?.stats())
    }

    /// Registers an alarm sink on one tenant's engine — the per-tenant
    /// fan-out point for exception notifications.
    ///
    /// # Errors
    /// [`ServeError::UnknownTenant`].
    pub fn add_sink(&self, id: &TenantId, sink: SharedSink) -> Result<(), ServeError> {
        self.tenant(id)?.add_sink(sink);
        Ok(())
    }

    /// The ids of all hosted tenants, sorted.
    pub fn tenant_ids(&self) -> Vec<TenantId> {
        self.tenants
            .read()
            .expect("tenant map lock")
            .keys()
            .cloned()
            .collect()
    }

    /// How many tenants are currently hosted.
    pub fn tenant_count(&self) -> usize {
        self.tenants.read().expect("tenant map lock").len()
    }

    fn tenant(&self, id: &TenantId) -> Result<Arc<Tenant>, ServeError> {
        self.tenants
            .read()
            .expect("tenant map lock")
            .get(id)
            .map(Arc::clone)
            .ok_or_else(|| ServeError::UnknownTenant { tenant: id.clone() })
    }
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("config", &self.config)
            .field("tenants", &self.tenant_count())
            .finish_non_exhaustive()
    }
}

/// A cloneable, lock-free read handle on one tenant's published
/// snapshots. Holding one keeps the tenant's state readable even if
/// the tenant is dropped from the server.
#[derive(Clone)]
pub struct TenantReader {
    tenant: Arc<Tenant>,
}

impl TenantReader {
    /// Whose snapshots this handle reads.
    pub fn id(&self) -> &TenantId {
        self.tenant.id()
    }

    /// The most recently published boundary snapshot.
    pub fn snapshot(&self) -> Arc<CubeSnapshot> {
        self.tenant.snapshot()
    }

    /// Digests the latest published snapshot.
    pub fn summary(&self) -> DashboardSummary {
        DashboardSummary::of(self.tenant.id().clone(), &self.tenant.snapshot())
    }

    /// The cell behind the handle — exposed for tests and benchmarks
    /// that want the raw read counter.
    pub fn cell(&self) -> &SnapshotCell {
        &self.tenant.cell
    }
}

impl std::fmt::Debug for TenantReader {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TenantReader")
            .field("tenant", self.tenant.id())
            .finish()
    }
}
