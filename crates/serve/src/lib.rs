//! Multi-tenant serving layer for `regcube` — dashboards that never
//! block the stream.
//!
//! The paper's engine is single-writer by construction: `close_unit`
//! takes `&mut self`, so a dashboard querying the live engine
//! serializes with ingestion. This crate breaks that coupling for a
//! fleet of independent cubes:
//!
//! * [`server::Server`] hosts many **tenants**, each a private
//!   [`OnlineEngine`](regcube_stream::OnlineEngine) built from its own
//!   [`EngineConfig`](regcube_stream::EngineConfig), all multiplexed
//!   over two shared [`WorkerPool`](regcube_core::pool::WorkerPool)s
//!   (one pumps tenants in parallel, one runs their sharded cubing —
//!   kept distinct to avoid the pool's documented nesting deadlock);
//! * at every unit boundary the tenant publishes an immutable
//!   [`CubeSnapshot`](regcube_stream::CubeSnapshot) through a
//!   double-buffered, epoch-swapped [`cell::SnapshotCell`] — readers
//!   clone an `Arc` and then drill, scan and inspect alarms entirely
//!   without locks, byte-identically to the live engine at that
//!   boundary;
//! * ingest admission is a **bounded queue** per tenant: a full queue
//!   is the typed [`ServeError::Overloaded`](error::ServeError) back
//!   to the producer — accepted records are never lost, rejections are
//!   counted in
//!   [`RunStats::overload_rejections`](regcube_core::RunStats), and a
//!   saturated tenant cannot stall another tenant's unit closes;
//! * per-tenant [`AlarmSink`](regcube_core::alarm::AlarmSink) fan-out
//!   via [`server::Server::add_sink`].

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod cell;
pub mod dashboard;
pub mod error;
pub mod server;
pub mod tenant;

pub use cell::SnapshotCell;
pub use dashboard::DashboardSummary;
pub use error::ServeError;
pub use server::{ServeConfig, Server, TenantReader};
pub use tenant::{TenantId, TenantPump};
