//! Error type of the serving layer.

use crate::tenant::TenantId;
use regcube_stream::StreamError;
use std::fmt;

/// Errors produced by the multi-tenant server.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// The tenant's bounded ingest queue is full: the record was **not**
    /// enqueued (and nothing already accepted was touched) — the typed
    /// backpressure signal. Callers decide whether to retry after a
    /// [`pump`](crate::server::Server::pump), shed the record, or slow
    /// the producer; the server never drops silently.
    Overloaded {
        /// The saturated tenant.
        tenant: TenantId,
        /// Its configured queue capacity in records.
        capacity: usize,
    },
    /// Admission control rejected a new tenant: the server already
    /// hosts its configured maximum.
    AdmissionDenied {
        /// The configured tenant cap.
        max_tenants: usize,
    },
    /// A tenant with this id already exists.
    DuplicateTenant {
        /// The contested id.
        tenant: TenantId,
    },
    /// No tenant with this id exists.
    UnknownTenant {
        /// The unknown id.
        tenant: TenantId,
    },
    /// A failure from the tenant's underlying stream engine.
    Stream(StreamError),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Overloaded { tenant, capacity } => write!(
                f,
                "tenant {tenant} overloaded: ingest queue full ({capacity} records); \
                 pump the server or slow the producer and retry"
            ),
            ServeError::AdmissionDenied { max_tenants } => {
                write!(
                    f,
                    "admission denied: server already hosts {max_tenants} tenants"
                )
            }
            ServeError::DuplicateTenant { tenant } => {
                write!(f, "tenant {tenant} already exists")
            }
            ServeError::UnknownTenant { tenant } => write!(f, "unknown tenant {tenant}"),
            ServeError::Stream(e) => write!(f, "stream engine error: {e}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Stream(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StreamError> for ServeError {
    fn from(e: StreamError) -> Self {
        ServeError::Stream(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error;

    #[test]
    fn displays_and_sources() {
        let cases: Vec<ServeError> = vec![
            ServeError::Overloaded {
                tenant: TenantId::from("acme"),
                capacity: 8,
            },
            ServeError::AdmissionDenied { max_tenants: 2 },
            ServeError::DuplicateTenant {
                tenant: TenantId::from("acme"),
            },
            ServeError::UnknownTenant {
                tenant: TenantId::from("ghost"),
            },
            StreamError::BadConfig { detail: "x".into() }.into(),
        ];
        for c in &cases {
            assert!(!c.to_string().is_empty());
        }
        assert!(cases[4].source().is_some());
        assert!(cases[0].source().is_none());
    }
}
